// The partition directory: the durable catalog of a sharded server's
// partitions.
//
// Each entry maps a tenant-visible name to a chunk-store partition id plus
// its ownership state (serving here, or moved to another server's address).
// The whole table is pickled into a single chunk of a dedicated directory
// partition inside the same chunk store that holds the data, so every
// directory mutation rides the store's ordinary trusted commit machinery:
// it is crypto-validated on read, atomic with respect to crashes, and —
// crucially — committed in the *same batch* as the partition mutation it
// describes (Create writes the new partition and the new table in one
// commit; Drop deallocates and updates the table in one commit). A crash
// can therefore never leave a partition allocated but uncataloged, or
// cataloged but missing.
//
// The directory partition announces itself with a magic header in its
// first chunk, so Open() finds it by scanning the store's partitions — no
// out-of-band root pointer is needed, and a store that has never had a
// directory gets one created on first open.

#ifndef SRC_SHARD_DIRECTORY_H_
#define SRC_SHARD_DIRECTORY_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/chunk/chunk_store.h"

namespace tdb::shard {

struct PartitionEntry {
  PartitionId id = 0;
  std::string name;
  // Mirrors PartitionState (serving/moved); draining is a transient
  // in-memory engine state and is never persisted.
  bool moved = false;
  std::string moved_to;  // target server address once moved
  // Bumped on every ownership change; lets operators order hand-off events.
  uint64_t epoch = 0;
};

class PartitionDirectory {
 public:
  // Opens the store's directory, creating an empty one (its own partition,
  // keyed with `params`) if the store has none. `chunks` must outlive the
  // directory.
  static Result<std::unique_ptr<PartitionDirectory>> Open(ChunkStore* chunks,
                                                          CryptoParams params);

  PartitionDirectory(const PartitionDirectory&) = delete;
  PartitionDirectory& operator=(const PartitionDirectory&) = delete;

  // Allocates a fresh partition keyed with `params` and catalogs it under
  // `name` — one atomic commit. Names are unique.
  Result<PartitionEntry> Create(const std::string& name, CryptoParams params);

  // Catalogs an *existing* partition (e.g. one restored by a hand-off
  // import) under `name`.
  Result<PartitionEntry> Adopt(PartitionId id, const std::string& name);

  // Deallocates the partition (all chunks and copies) and removes its entry
  // — one atomic commit.
  Status Drop(const std::string& name);

  Result<PartitionEntry> Lookup(const std::string& name) const;
  Result<PartitionEntry> Find(PartitionId id) const;
  std::vector<PartitionEntry> List() const;

  // Ownership transitions, persisted immediately. MarkMoved keeps the
  // partition's data (the source retains it until the operator drops it);
  // MarkServing reclaims ownership (hand-off rollback or import activate).
  Status MarkMoved(PartitionId id, const std::string& address);
  Status MarkServing(PartitionId id);

  PartitionId directory_partition() const { return chunk_.partition; }

 private:
  PartitionDirectory(ChunkStore* chunks, ChunkId chunk,
                     std::vector<PartitionEntry> entries)
      : chunks_(chunks), chunk_(chunk), entries_(std::move(entries)) {}

  Bytes PickleLocked() const;
  // Applies `batch` (which must already carry the table write) atomically.
  Status CommitLocked(ChunkStore::Batch batch);

  ChunkStore* chunks_;
  const ChunkId chunk_;  // the table's chunk in the directory partition

  mutable std::mutex mu_;
  std::vector<PartitionEntry> entries_;
};

}  // namespace tdb::shard

#endif  // SRC_SHARD_DIRECTORY_H_
