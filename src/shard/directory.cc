#include "src/shard/directory.h"

#include <algorithm>
#include <utility>

#include "src/common/pickle.h"

namespace tdb::shard {

namespace {

// "TDBd" — identifies the directory partition's table chunk.
constexpr uint32_t kDirectoryMagic = 0x54444264;
constexpr uint8_t kDirectoryVersion = 1;

Bytes PickleEntries(const std::vector<PartitionEntry>& entries) {
  PickleWriter w;
  w.WriteU32(kDirectoryMagic);
  w.WriteU8(kDirectoryVersion);
  w.WriteVarint(entries.size());
  for (const PartitionEntry& e : entries) {
    w.WriteVarint(e.id);
    w.WriteString(e.name);
    w.WriteU8(e.moved ? 1 : 0);
    w.WriteString(e.moved_to);
    w.WriteVarint(e.epoch);
  }
  return w.Take();
}

Result<std::vector<PartitionEntry>> UnpickleEntries(ByteView data) {
  PickleReader r(data);
  uint32_t magic = r.ReadU32();
  uint8_t version = r.ReadU8();
  if (!r.ok() || magic != kDirectoryMagic) {
    return NotFoundError("not a partition directory chunk");
  }
  if (version != kDirectoryVersion) {
    return CorruptionError("unsupported partition directory version " +
                           std::to_string(version));
  }
  uint64_t count = r.ReadVarint();
  std::vector<PartitionEntry> entries;
  entries.reserve(count);
  for (uint64_t i = 0; i < count && r.ok(); ++i) {
    PartitionEntry e;
    e.id = static_cast<PartitionId>(r.ReadVarint());
    e.name = r.ReadString();
    e.moved = r.ReadU8() != 0;
    e.moved_to = r.ReadString();
    e.epoch = r.ReadVarint();
    entries.push_back(std::move(e));
  }
  TDB_RETURN_IF_ERROR(r.Done());
  return entries;
}

}  // namespace

Result<std::unique_ptr<PartitionDirectory>> PartitionDirectory::Open(
    ChunkStore* chunks, CryptoParams params) {
  // The directory partition identifies itself by content: the magic header
  // of its first chunk. Scan for it — partitions without a written first
  // chunk or with other content simply fail the probe.
  for (PartitionId pid : chunks->ListPartitions()) {
    ChunkId probe(pid, ChunkPosition(0, 0));
    Result<Bytes> table = chunks->Read(probe);
    if (!table.ok()) {
      continue;
    }
    Result<std::vector<PartitionEntry>> entries = UnpickleEntries(*table);
    if (!entries.ok()) {
      if (entries.status().code() == StatusCode::kNotFound) {
        continue;  // some tenant's chunk, not ours
      }
      return entries.status();
    }
    return std::unique_ptr<PartitionDirectory>(
        new PartitionDirectory(chunks, probe, std::move(*entries)));
  }

  // First open: create the directory partition and an empty table.
  TDB_ASSIGN_OR_RETURN(PartitionId pid, chunks->AllocatePartition());
  ChunkStore::Batch batch;
  batch.WritePartition(pid, std::move(params));
  TDB_RETURN_IF_ERROR(chunks->Commit(std::move(batch)));
  TDB_ASSIGN_OR_RETURN(ChunkId chunk, chunks->AllocateChunk(pid));
  TDB_RETURN_IF_ERROR(chunks->WriteChunk(chunk, PickleEntries({})));
  return std::unique_ptr<PartitionDirectory>(
      new PartitionDirectory(chunks, chunk, {}));
}

Bytes PartitionDirectory::PickleLocked() const {
  return PickleEntries(entries_);
}

Status PartitionDirectory::CommitLocked(ChunkStore::Batch batch) {
  return chunks_->Commit(std::move(batch));
}

Result<PartitionEntry> PartitionDirectory::Create(const std::string& name,
                                                  CryptoParams params) {
  if (name.empty()) {
    return InvalidArgumentError("partition name must not be empty");
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (const PartitionEntry& e : entries_) {
    if (e.name == name) {
      return AlreadyExistsError("partition '" + name + "' already exists");
    }
  }
  TDB_ASSIGN_OR_RETURN(PartitionId pid, chunks_->AllocatePartition());
  PartitionEntry entry;
  entry.id = pid;
  entry.name = name;
  entries_.push_back(entry);
  ChunkStore::Batch batch;
  batch.WritePartition(pid, std::move(params));
  batch.WriteChunk(chunk_, PickleLocked());
  Status status = CommitLocked(std::move(batch));
  if (!status.ok()) {
    entries_.pop_back();
    return status;
  }
  return entry;
}

Result<PartitionEntry> PartitionDirectory::Adopt(PartitionId id,
                                                 const std::string& name) {
  if (name.empty()) {
    return InvalidArgumentError("partition name must not be empty");
  }
  if (!chunks_->PartitionExists(id)) {
    return NotFoundError("partition " + std::to_string(id) +
                         " does not exist in the chunk store");
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (const PartitionEntry& e : entries_) {
    if (e.name == name || e.id == id) {
      return AlreadyExistsError("partition '" + name + "' (id " +
                                std::to_string(id) + ") already cataloged");
    }
  }
  PartitionEntry entry;
  entry.id = id;
  entry.name = name;
  entries_.push_back(entry);
  ChunkStore::Batch batch;
  batch.WriteChunk(chunk_, PickleLocked());
  Status status = CommitLocked(std::move(batch));
  if (!status.ok()) {
    entries_.pop_back();
    return status;
  }
  return entry;
}

Status PartitionDirectory::Drop(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = std::find_if(entries_.begin(), entries_.end(),
                         [&](const PartitionEntry& e) { return e.name == name; });
  if (it == entries_.end()) {
    return NotFoundError("partition '" + name + "' does not exist");
  }
  PartitionEntry removed = *it;
  entries_.erase(it);
  ChunkStore::Batch batch;
  // A moved partition's data was deallocated (or retained) at hand-off
  // finish time; only drop chunk-store state that is still ours.
  if (chunks_->PartitionExists(removed.id)) {
    batch.DeallocatePartition(removed.id);
  }
  batch.WriteChunk(chunk_, PickleLocked());
  Status status = CommitLocked(std::move(batch));
  if (!status.ok()) {
    entries_.push_back(std::move(removed));
  }
  return status;
}

Result<PartitionEntry> PartitionDirectory::Lookup(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const PartitionEntry& e : entries_) {
    if (e.name == name) {
      return e;
    }
  }
  return NotFoundError("partition '" + name + "' does not exist");
}

Result<PartitionEntry> PartitionDirectory::Find(PartitionId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const PartitionEntry& e : entries_) {
    if (e.id == id) {
      return e;
    }
  }
  return NotFoundError("partition " + std::to_string(id) +
                       " is not cataloged");
}

std::vector<PartitionEntry> PartitionDirectory::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_;
}

Status PartitionDirectory::MarkMoved(PartitionId id,
                                     const std::string& address) {
  std::lock_guard<std::mutex> lock(mu_);
  for (PartitionEntry& e : entries_) {
    if (e.id == id) {
      PartitionEntry saved = e;
      e.moved = true;
      e.moved_to = address;
      ++e.epoch;
      ChunkStore::Batch batch;
      batch.WriteChunk(chunk_, PickleLocked());
      Status status = CommitLocked(std::move(batch));
      if (!status.ok()) {
        e = saved;
      }
      return status;
    }
  }
  return NotFoundError("partition " + std::to_string(id) +
                       " is not cataloged");
}

Status PartitionDirectory::MarkServing(PartitionId id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (PartitionEntry& e : entries_) {
    if (e.id == id) {
      PartitionEntry saved = e;
      e.moved = false;
      e.moved_to.clear();
      ++e.epoch;
      ChunkStore::Batch batch;
      batch.WriteChunk(chunk_, PickleLocked());
      Status status = CommitLocked(std::move(batch));
      if (!status.ok()) {
        e = saved;
      }
      return status;
    }
  }
  return NotFoundError("partition " + std::to_string(id) +
                       " is not cataloged");
}

}  // namespace tdb::shard
