// The sharded-service engine layer: one partition, one engine.
//
// A PartitionEngine owns everything per-partition that the service layer
// needs — an ObjectStore (its own LockManager, object cache and group-commit
// queue) over the shared ChunkStore — plus the ownership state machine that
// live hand-off drives:
//
//   kServing  --StartDraining-->  kDraining  --MarkMoved-->  kMoved
//       ^                             |
//       +---------ResumeServing------+
//
// While draining or moved, new transactions are refused with a retryable
// kMoved status carrying the target address; transactions already admitted
// run to completion (they hold 2PL locks and are counted), and WaitDrained
// blocks until the last one finishes — the quiesce step of an ownership
// cut-over.
//
// The EngineRegistry owns the set of engines a server serves, keyed by
// partition id, and one store-level group-commit *combiner* queue. Every
// engine's ObjectStore chains into the combiner (two-level group commit,
// see group_commit.h): per-partition leaders merge their own sessions'
// commits, then park on the combiner, whose leader merges batches from
// different partitions — disjoint by construction — into a single
// chunk-store commit. One flush amortizes across partitions, which is what
// makes aggregate commit throughput scale with served partitions even
// though the chunk store serializes commits.

#ifndef SRC_SHARD_PARTITION_ENGINE_H_
#define SRC_SHARD_PARTITION_ENGINE_H_

#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/object/object_store.h"

namespace tdb::shard {

enum class PartitionState : uint8_t {
  kServing = 0,
  kDraining = 1,  // cut-over in progress: no new transactions, drain old
  kMoved = 2,     // ownership transferred; clients are redirected
};

const char* PartitionStateName(PartitionState state);

class PartitionEngine {
 public:
  // `chunks` and `registry` must outlive the engine. The engine serves
  // `partition`, which must already exist in the chunk store.
  PartitionEngine(ChunkStore* chunks, PartitionId partition,
                  const TypeRegistry* registry, ObjectStoreOptions options);

  PartitionEngine(const PartitionEngine&) = delete;
  PartitionEngine& operator=(const PartitionEngine&) = delete;

  // Admission-checked transaction entry points. Refused with kMoved while
  // draining or moved (message = target address). Every admitted
  // transaction must be balanced by exactly one TxnFinished call once it is
  // committed/aborted/destroyed.
  Result<std::unique_ptr<Transaction>> Begin();
  Result<std::unique_ptr<Transaction>> BeginReadOnly();
  void TxnFinished();

  // Hand-off state machine. StartDraining fails unless currently serving;
  // ResumeServing aborts a cut-over (fails if already moved); MarkMoved
  // finalizes it (valid from serving or draining).
  Status StartDraining(const std::string& target);
  Status ResumeServing();
  Status MarkMoved(const std::string& target);

  // Blocks until no admitted transaction remains, or `timeout` elapses.
  // Returns true when drained.
  bool WaitDrained(std::chrono::milliseconds timeout);

  PartitionState state() const;
  // Target address once draining/moved; empty while serving.
  std::string moved_to() const;

  PartitionId partition() const { return store_.partition(); }
  ObjectStore* store() { return &store_; }
  // Transactions admitted and not yet finished (the `sessions` gauge).
  size_t active_txns() const;

 private:
  Status AdmitLocked() const;

  ObjectStore store_;

  mutable std::mutex mu_;
  std::condition_variable drained_cv_;
  PartitionState state_ = PartitionState::kServing;
  std::string moved_to_;
  size_t active_txns_ = 0;
};

struct EngineRegistryOptions {
  // Per-engine object-store configuration (commit_chain is overwritten by
  // the registry when combine_commits is set).
  ObjectStoreOptions store_options;
  // Chain every engine's group-commit queue into one store-level combiner
  // so concurrent leaders of different partitions share a flush.
  bool combine_commits = true;
  // Most engine batches the combiner's leader may merge into one
  // chunk-store commit.
  size_t combine_max_batch = 256;
};

class EngineRegistry {
 public:
  // `chunks` and `registry` must outlive this object (and all engines).
  EngineRegistry(ChunkStore* chunks, const TypeRegistry* registry,
                 EngineRegistryOptions options = {});

  EngineRegistry(const EngineRegistry&) = delete;
  EngineRegistry& operator=(const EngineRegistry&) = delete;

  // Starts serving `partition` (which must exist in the chunk store).
  Result<std::shared_ptr<PartitionEngine>> Add(PartitionId partition);
  // Stops serving `partition`. The engine object stays alive until the last
  // session holding it lets go, but is no longer routable.
  Status Remove(PartitionId partition);

  // nullptr when the partition is not served here.
  std::shared_ptr<PartitionEngine> Find(PartitionId partition) const;
  // The single served engine, or nullptr unless exactly one is served —
  // the default route for clients that do not name a partition.
  std::shared_ptr<PartitionEngine> Solo() const;

  std::vector<std::shared_ptr<PartitionEngine>> Engines() const;
  size_t size() const;

  GroupCommitQueue* combiner() { return &combiner_; }

 private:
  ChunkStore* chunks_;
  const TypeRegistry* registry_;
  EngineRegistryOptions options_;
  GroupCommitQueue combiner_;

  mutable std::mutex mu_;
  std::map<PartitionId, std::shared_ptr<PartitionEngine>> engines_;
};

}  // namespace tdb::shard

#endif  // SRC_SHARD_PARTITION_ENGINE_H_
