#include "src/shard/partition_engine.h"

#include <utility>

#include "src/obs/metrics.h"

namespace tdb::shard {

const char* PartitionStateName(PartitionState state) {
  switch (state) {
    case PartitionState::kServing:
      return "serving";
    case PartitionState::kDraining:
      return "draining";
    case PartitionState::kMoved:
      return "moved";
  }
  return "unknown";
}

PartitionEngine::PartitionEngine(ChunkStore* chunks, PartitionId partition,
                                 const TypeRegistry* registry,
                                 ObjectStoreOptions options)
    : store_(chunks, partition, registry, options) {}

Status PartitionEngine::AdmitLocked() const {
  if (state_ == PartitionState::kServing) {
    return OkStatus();
  }
  if (!moved_to_.empty()) {
    return MovedError(moved_to_);
  }
  return MovedError("partition " + std::to_string(store_.partition()) +
                    " is being handed off; retry");
}

Result<std::unique_ptr<Transaction>> PartitionEngine::Begin() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    TDB_RETURN_IF_ERROR(AdmitLocked());
    ++active_txns_;
  }
  return store_.Begin();
}

Result<std::unique_ptr<Transaction>> PartitionEngine::BeginReadOnly() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    TDB_RETURN_IF_ERROR(AdmitLocked());
    ++active_txns_;
  }
  Result<std::unique_ptr<Transaction>> txn = store_.BeginReadOnly();
  if (!txn.ok()) {
    TxnFinished();
  }
  return txn;
}

void PartitionEngine::TxnFinished() {
  std::lock_guard<std::mutex> lock(mu_);
  if (active_txns_ > 0 && --active_txns_ == 0) {
    drained_cv_.notify_all();
  }
}

Status PartitionEngine::StartDraining(const std::string& target) {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ != PartitionState::kServing) {
    return FailedPreconditionError(
        "partition " + std::to_string(store_.partition()) + " is " +
        PartitionStateName(state_) + ", cannot start draining");
  }
  state_ = PartitionState::kDraining;
  moved_to_ = target;
  return OkStatus();
}

Status PartitionEngine::ResumeServing() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == PartitionState::kMoved) {
    return FailedPreconditionError("partition " +
                                   std::to_string(store_.partition()) +
                                   " has already moved");
  }
  state_ = PartitionState::kServing;
  moved_to_.clear();
  return OkStatus();
}

Status PartitionEngine::MarkMoved(const std::string& target) {
  std::lock_guard<std::mutex> lock(mu_);
  state_ = PartitionState::kMoved;
  moved_to_ = target;
  return OkStatus();
}

bool PartitionEngine::WaitDrained(std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  return drained_cv_.wait_for(lock, timeout,
                              [this] { return active_txns_ == 0; });
}

PartitionState PartitionEngine::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

std::string PartitionEngine::moved_to() const {
  std::lock_guard<std::mutex> lock(mu_);
  return moved_to_;
}

size_t PartitionEngine::active_txns() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_txns_;
}

EngineRegistry::EngineRegistry(ChunkStore* chunks, const TypeRegistry* registry,
                               EngineRegistryOptions options)
    : chunks_(chunks),
      registry_(registry),
      options_(options),
      combiner_(chunks, options.combine_max_batch) {}

Result<std::shared_ptr<PartitionEngine>> EngineRegistry::Add(
    PartitionId partition) {
  if (!chunks_->PartitionExists(partition)) {
    return NotFoundError("partition " + std::to_string(partition) +
                         " does not exist in the chunk store");
  }
  ObjectStoreOptions store_options = options_.store_options;
  if (options_.combine_commits) {
    store_options.commit_chain = &combiner_;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (engines_.count(partition) != 0) {
    return AlreadyExistsError("partition " + std::to_string(partition) +
                              " is already served");
  }
  auto engine = std::make_shared<PartitionEngine>(chunks_, partition,
                                                  registry_, store_options);
  engines_[partition] = engine;
  return engine;
}

Status EngineRegistry::Remove(PartitionId partition) {
  std::lock_guard<std::mutex> lock(mu_);
  if (engines_.erase(partition) == 0) {
    return NotFoundError("partition " + std::to_string(partition) +
                         " is not served");
  }
  return OkStatus();
}

std::shared_ptr<PartitionEngine> EngineRegistry::Find(
    PartitionId partition) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = engines_.find(partition);
  return it == engines_.end() ? nullptr : it->second;
}

std::shared_ptr<PartitionEngine> EngineRegistry::Solo() const {
  std::lock_guard<std::mutex> lock(mu_);
  return engines_.size() == 1 ? engines_.begin()->second : nullptr;
}

std::vector<std::shared_ptr<PartitionEngine>> EngineRegistry::Engines() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::shared_ptr<PartitionEngine>> out;
  out.reserve(engines_.size());
  for (const auto& [id, engine] : engines_) {
    out.push_back(engine);
  }
  return out;
}

size_t EngineRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return engines_.size();
}

}  // namespace tdb::shard
