#include "src/common/bytes.h"

namespace tdb {

Bytes BytesFromString(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string StringFromBytes(ByteView b) {
  return std::string(b.begin(), b.end());
}

std::string HexEncode(ByteView b) {
  static const char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(b.size() * 2);
  for (uint8_t byte : b) {
    out.push_back(kDigits[byte >> 4]);
    out.push_back(kDigits[byte & 0xf]);
  }
  return out;
}

namespace {
int HexNibble(char c) {
  if (c >= '0' && c <= '9') {
    return c - '0';
  }
  if (c >= 'a' && c <= 'f') {
    return c - 'a' + 10;
  }
  if (c >= 'A' && c <= 'F') {
    return c - 'A' + 10;
  }
  return -1;
}
}  // namespace

Bytes HexDecode(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    return {};
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = HexNibble(hex[i]);
    int lo = HexNibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return {};
    }
    out.push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  return out;
}

void Append(Bytes& dst, ByteView src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

bool ConstantTimeEqual(ByteView a, ByteView b) {
  if (a.size() != b.size()) {
    return false;
  }
  uint8_t acc = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    acc |= static_cast<uint8_t>(a[i] ^ b[i]);
  }
  return acc == 0;
}

void PutU16(Bytes& dst, uint16_t v) {
  dst.push_back(static_cast<uint8_t>(v));
  dst.push_back(static_cast<uint8_t>(v >> 8));
}

void PutU32(Bytes& dst, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    dst.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutU64(Bytes& dst, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    dst.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

uint16_t GetU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0]) | static_cast<uint16_t>(p[1]) << 8;
}

uint32_t GetU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | p[i];
  }
  return v;
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | p[i];
  }
  return v;
}

}  // namespace tdb
