#include "src/common/stats.h"

#include <cmath>

namespace tdb {

void RunningStats::Add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) {
      min_ = x;
    }
    if (x > max_) {
      max_ = x;
    }
  }
  ++n_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

LinearRegression::LinearRegression(size_t num_predictors)
    : k_(num_predictors) {}

void LinearRegression::Add(const std::vector<double>& xs, double y) {
  rows_.push_back(xs);
  ys_.push_back(y);
}

std::vector<double> LinearRegression::Solve() const {
  const size_t m = k_ + 1;  // intercept + predictors
  if (rows_.size() < m) {
    return {};
  }
  // Build normal equations A * beta = b where A = X^T X, b = X^T y and the
  // design matrix X has a leading column of ones.
  std::vector<std::vector<double>> a(m, std::vector<double>(m, 0.0));
  std::vector<double> b(m, 0.0);
  for (size_t r = 0; r < rows_.size(); ++r) {
    std::vector<double> x(m);
    x[0] = 1.0;
    for (size_t j = 0; j < k_; ++j) {
      x[j + 1] = rows_[r][j];
    }
    for (size_t i = 0; i < m; ++i) {
      for (size_t j = 0; j < m; ++j) {
        a[i][j] += x[i] * x[j];
      }
      b[i] += x[i] * ys_[r];
    }
  }
  // Gaussian elimination with partial pivoting.
  for (size_t col = 0; col < m; ++col) {
    size_t pivot = col;
    for (size_t r = col + 1; r < m; ++r) {
      if (std::fabs(a[r][col]) > std::fabs(a[pivot][col])) {
        pivot = r;
      }
    }
    if (std::fabs(a[pivot][col]) < 1e-12) {
      return {};
    }
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    for (size_t r = 0; r < m; ++r) {
      if (r == col) {
        continue;
      }
      double factor = a[r][col] / a[col][col];
      for (size_t c = col; c < m; ++c) {
        a[r][c] -= factor * a[col][c];
      }
      b[r] -= factor * b[col];
    }
  }
  std::vector<double> beta(m);
  for (size_t i = 0; i < m; ++i) {
    beta[i] = b[i] / a[i][i];
  }
  return beta;
}

double LinearRegression::RSquared(const std::vector<double>& beta) const {
  if (beta.size() != k_ + 1 || ys_.empty()) {
    return 0.0;
  }
  double mean = 0.0;
  for (double y : ys_) {
    mean += y;
  }
  mean /= static_cast<double>(ys_.size());
  double ss_tot = 0.0;
  double ss_res = 0.0;
  for (size_t r = 0; r < rows_.size(); ++r) {
    double pred = beta[0];
    for (size_t j = 0; j < k_; ++j) {
      pred += beta[j + 1] * rows_[r][j];
    }
    ss_res += (ys_[r] - pred) * (ys_[r] - pred);
    ss_tot += (ys_[r] - mean) * (ys_[r] - mean);
  }
  if (ss_tot == 0.0) {
    return 1.0;
  }
  return 1.0 - ss_res / ss_tot;
}

}  // namespace tdb
