// A sharded LRU cache keyed by ChunkId, built for read-path concurrency:
// the key space is split across N shards (N = next power of two >= the
// machine's hardware concurrency by default), each with its own mutex,
// hash table, and LRU list, so concurrent readers touching different
// shards never contend and readers contending on one shard serialize on
// a leaf mutex held for a few pointer operations — never across I/O,
// crypto, or another lock.
//
// Used by the object store (decoded-object cache) and the chunk store
// (validated-chunk cache). Values are returned by copy; both users store
// cheap-to-copy values (shared_ptr / refcounted byte buffers).
//
// Metric emission: lookup hit/miss counters are the caller's business
// (callers may veto a hit, e.g. on a generation mismatch); evictions are
// only visible here, so the cache emits them itself under the configured
// name plus the generic `cache.shard_evictions`.

#ifndef SRC_COMMON_SHARDED_CACHE_H_
#define SRC_COMMON_SHARDED_CACHE_H_

#include <algorithm>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/chunk/chunk_id.h"
#include "src/common/thread_pool.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace tdb {

inline size_t NextPow2(size_t n) {
  size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

// Shard count used when the caller does not pin one: enough shards that
// every hardware thread can hold a different shard mutex at once.
inline size_t DefaultCacheShards() {
  return NextPow2(HardwareConcurrency());
}

template <typename Value>
class ShardedLruCache {
 public:
  struct Metrics {
    const char* evictions = nullptr;     // e.g. "object.cache_evictions"
    const char* trace_module = nullptr;  // e.g. "object_cache"
  };

  // `capacity` is the total entry budget across all shards (0 disables the
  // cache entirely); `shards` must be a power of two, or 0 for the default.
  ShardedLruCache(size_t capacity, size_t shards, Metrics metrics)
      : metrics_(metrics) {
    size_t n = shards != 0 ? NextPow2(shards) : DefaultCacheShards();
    shard_mask_ = n - 1;
    per_shard_capacity_ = capacity == 0 ? 0 : std::max<size_t>(1, capacity / n);
    shards_ = std::vector<Shard>(n);
  }

  ShardedLruCache(const ShardedLruCache&) = delete;
  ShardedLruCache& operator=(const ShardedLruCache&) = delete;

  bool enabled() const { return per_shard_capacity_ != 0; }
  size_t shard_count() const { return shards_.size(); }

  std::optional<Value> Get(const ChunkId& key) {
    if (!enabled()) {
      return std::nullopt;
    }
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) {
      return std::nullopt;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
    return it->second.value;
  }

  void Put(const ChunkId& key, Value value) {
    if (!enabled()) {
      return;
    }
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      it->second.value = std::move(value);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
      return;
    }
    shard.lru.push_front(key);
    shard.map.emplace(key, Entry{std::move(value), shard.lru.begin()});
    while (shard.map.size() > per_shard_capacity_ && !shard.lru.empty()) {
      ChunkId victim = shard.lru.back();
      shard.lru.pop_back();
      shard.map.erase(victim);
      obs::Count("cache.shard_evictions");
      if (metrics_.evictions != nullptr) {
        obs::Count(metrics_.evictions);
      }
      if (metrics_.trace_module != nullptr) {
        obs::TraceEmit(obs::TraceKind::kCacheEviction, metrics_.trace_module,
                       victim.position.rank);
      }
    }
  }

  void Erase(const ChunkId& key) {
    if (!enabled()) {
      return;
    }
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      shard.lru.erase(it->second.lru_it);
      shard.map.erase(it);
    }
  }

  // Drops every entry of `partition` — used when a partition (e.g. a
  // drained snapshot copy) is deallocated and its ids may be reused.
  void ErasePartition(PartitionId partition) {
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      for (auto it = shard.map.begin(); it != shard.map.end();) {
        if (it->first.partition == partition) {
          shard.lru.erase(it->second.lru_it);
          it = shard.map.erase(it);
        } else {
          ++it;
        }
      }
    }
  }

  void Clear() {
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.map.clear();
      shard.lru.clear();
    }
  }

  size_t size() const {
    size_t total = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      total += shard.map.size();
    }
    return total;
  }

 private:
  struct Entry {
    Value value;
    std::list<ChunkId>::iterator lru_it;
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<ChunkId, Entry> map;
    std::list<ChunkId> lru;
  };

  Shard& ShardFor(const ChunkId& key) {
    // Pack() concentrates entropy in the low rank bits; a multiplicative
    // mix spreads sequential ranks across shards.
    uint64_t h = key.Pack() * 0x9E3779B97F4A7C15ULL;
    return shards_[(h >> 32) & shard_mask_];
  }

  Metrics metrics_;
  size_t shard_mask_ = 0;
  size_t per_shard_capacity_ = 0;
  std::vector<Shard> shards_;
};

}  // namespace tdb

#endif  // SRC_COMMON_SHARDED_CACHE_H_
