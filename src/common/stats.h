// Statistics helpers for the benchmark harness: running mean/σ (Figure 12),
// and ordinary least squares for the cost models of §9.2.2/§9.2.3, which the
// paper fits by linear regression (e.g. "132 µs + 36 µs per chunk + 0.24 µs
// per byte").

#ifndef SRC_COMMON_STATS_H_
#define SRC_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace tdb {

// Welford's online mean/variance.
class RunningStats {
 public:
  void Add(double x);
  size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  double variance() const;  // sample variance
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Ordinary least squares: y ≈ beta0 + beta1*x1 + ... + betak*xk.
// Solves the normal equations with Gaussian elimination; k is small (≤3).
class LinearRegression {
 public:
  explicit LinearRegression(size_t num_predictors);

  // xs.size() must equal num_predictors.
  void Add(const std::vector<double>& xs, double y);

  // Returns {beta0, beta1, ..., betak}; empty if the system is singular or
  // there are fewer observations than coefficients.
  std::vector<double> Solve() const;

  // Coefficient of determination for the solved model (call after Solve()).
  double RSquared(const std::vector<double>& beta) const;

 private:
  size_t k_;
  std::vector<std::vector<double>> rows_;  // each row: predictors
  std::vector<double> ys_;
};

}  // namespace tdb

#endif  // SRC_COMMON_STATS_H_
