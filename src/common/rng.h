// Deterministic pseudo-random generator (xoshiro256**) used for workload
// generation, randomized property tests, and backup-set ids. Deterministic
// seeding keeps tests and benchmarks reproducible.

#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cstdint>

#include "src/common/bytes.h"

namespace tdb {

class Rng {
 public:
  explicit Rng(uint64_t seed);

  uint64_t NextU64();
  // Uniform in [0, bound); bound must be > 0.
  uint64_t NextBelow(uint64_t bound);
  // Uniform in [lo, hi] inclusive; lo <= hi.
  uint64_t NextInRange(uint64_t lo, uint64_t hi);
  double NextDouble();  // [0, 1)
  bool NextBool();

  Bytes NextBytes(size_t n);

 private:
  uint64_t s_[4];
};

}  // namespace tdb

#endif  // SRC_COMMON_RNG_H_
