#include "src/common/crash_point.h"

#include <cmath>

namespace tdb {

void CrashPointController::Arm(uint64_t crash_point, double tear_fraction) {
  armed_ = true;
  crashed_ = false;
  crash_point_ = crash_point;
  points_ = 0;
  if (tear_fraction < 0.0) tear_fraction = 0.0;
  if (tear_fraction > 1.0) tear_fraction = 1.0;
  tear_fraction_ = tear_fraction;
}

void CrashPointController::Disarm() {
  armed_ = false;
  crashed_ = false;
  crash_point_ = kNeverCrash;
  points_ = 0;
  tear_fraction_ = 0.0;
}

CrashPointController::Decision CrashPointController::OnPoint() {
  if (crashed_) {
    return Decision::kDead;
  }
  uint64_t point = points_++;
  if (armed_ && point == crash_point_) {
    crashed_ = true;
    return Decision::kCrashNow;
  }
  return Decision::kProceed;
}

size_t CrashPointController::TornPrefix(size_t size) const {
  size_t keep = static_cast<size_t>(
      std::floor(static_cast<double>(size) * tear_fraction_));
  return keep > size ? size : keep;
}

Status CrashPointController::CrashedStatus() {
  return IoError("injected crash point: device is down");
}

}  // namespace tdb
