#include "src/common/crash_point.h"

#include <cmath>

namespace tdb {

void CrashPointController::Arm(uint64_t crash_point, double tear_fraction) {
  std::lock_guard<std::mutex> lock(mu_);
  armed_ = true;
  crashed_ = false;
  crash_point_ = crash_point;
  points_ = 0;
  if (tear_fraction < 0.0) tear_fraction = 0.0;
  if (tear_fraction > 1.0) tear_fraction = 1.0;
  tear_fraction_ = tear_fraction;
}

void CrashPointController::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_ = false;
  crashed_ = false;
  crash_point_ = kNeverCrash;
  points_ = 0;
  tear_fraction_ = 0.0;
}

CrashPointController::Decision CrashPointController::OnPoint() {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) {
    return Decision::kDead;
  }
  uint64_t point = points_++;
  if (armed_ && point == crash_point_) {
    crashed_ = true;
    return Decision::kCrashNow;
  }
  return Decision::kProceed;
}

bool CrashPointController::armed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return armed_;
}

bool CrashPointController::crashed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashed_;
}

uint64_t CrashPointController::points() const {
  std::lock_guard<std::mutex> lock(mu_);
  return points_;
}

double CrashPointController::tear_fraction() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tear_fraction_;
}

size_t CrashPointController::TornPrefix(size_t size) const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t keep = static_cast<size_t>(
      std::floor(static_cast<double>(size) * tear_fraction_));
  return keep > size ? size : keep;
}

Status CrashPointController::CrashedStatus() {
  return IoError("injected crash point: device is down");
}

}  // namespace tdb
