// Status / Result error model used throughout TDB.
//
// TDB never throws on hot paths; every fallible operation returns a Status or
// a Result<T>. Tamper detection is an ordinary status code
// (StatusCode::kTamperDetected) so callers can reject data and keep running,
// as the paper requires (§1: "such data fails validation when a trusted
// program reads it").

#ifndef SRC_COMMON_STATUS_H_
#define SRC_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace tdb {

enum class StatusCode {
  kOk = 0,
  // The untrusted store contents failed cryptographic validation.
  kTamperDetected,
  // A chunk/partition/object id is not allocated, not written, or unknown.
  kNotFound,
  // An argument violates the operation's contract (e.g., zero-size segment).
  kInvalidArgument,
  // Allocation or commit would exceed a configured capacity.
  kOutOfSpace,
  // The operation conflicts with concurrent state (e.g., id already written).
  kAlreadyExists,
  // A lock could not be acquired within its timeout (deadlock breaking, §7).
  kTimeout,
  // Underlying storage failed in a non-cryptographic way (I/O error).
  kIoError,
  // The store/log contents are structurally malformed (corruption that is
  // detected before cryptographic checks, e.g. impossible sizes).
  kCorruption,
  // A precondition about module state does not hold (e.g., use after close).
  kFailedPrecondition,
  // Feature intentionally not available in the current configuration.
  kUnimplemented,
  // The addressed resource now lives elsewhere (e.g. a partition handed off
  // to another server); the message carries the new address. Retryable.
  kMoved,
};

std::string_view StatusCodeName(StatusCode code);

// A cheap, copyable status word with an optional message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

Status OkStatus();
Status TamperDetectedError(std::string message);
Status NotFoundError(std::string message);
Status InvalidArgumentError(std::string message);
Status OutOfSpaceError(std::string message);
Status AlreadyExistsError(std::string message);
Status TimeoutError(std::string message);
Status IoError(std::string message);
Status CorruptionError(std::string message);
Status FailedPreconditionError(std::string message);
Status UnimplementedError(std::string message);
Status MovedError(std::string message);

// Result<T> holds either a value or a non-OK Status.
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(data_).ok() && "Result must not hold OK status");
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) {
      return kOk;
    }
    return std::get<Status>(data_);
  }

  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> data_;
};

}  // namespace tdb

// Propagates a non-OK Status from an expression returning Status.
#define TDB_RETURN_IF_ERROR(expr)                  \
  do {                                             \
    ::tdb::Status tdb_status_ = (expr);            \
    if (!tdb_status_.ok()) {                       \
      return tdb_status_;                          \
    }                                              \
  } while (0)

#define TDB_CONCAT_IMPL_(a, b) a##b
#define TDB_CONCAT_(a, b) TDB_CONCAT_IMPL_(a, b)

// Evaluates an expression returning Result<T>; on success binds the value to
// `lhs`, otherwise propagates the status.
#define TDB_ASSIGN_OR_RETURN(lhs, expr)                             \
  auto TDB_CONCAT_(tdb_result_, __LINE__) = (expr);                 \
  if (!TDB_CONCAT_(tdb_result_, __LINE__).ok()) {                   \
    return TDB_CONCAT_(tdb_result_, __LINE__).status();             \
  }                                                                 \
  lhs = std::move(TDB_CONCAT_(tdb_result_, __LINE__)).value()

#endif  // SRC_COMMON_STATUS_H_
