// Pickling streams: compact, portable serialization used for chunk headers,
// map chunks, leaders, commit chunks, backup descriptors, and application
// objects (§2.2 "TDB pickles objects using application-provided methods so
// the stored representation is compact and portable").
//
// Integers are varint-encoded; byte strings and strings are length-prefixed.
// The reader is fail-soft: reading past the end or hitting a malformed varint
// sets an error flag checked once via Done()/ok(), so the parsing code for a
// record stays linear.

#ifndef SRC_COMMON_PICKLE_H_
#define SRC_COMMON_PICKLE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/bytes.h"
#include "src/common/status.h"

namespace tdb {

class PickleWriter {
 public:
  PickleWriter() = default;

  void WriteU8(uint8_t v);
  void WriteU16(uint16_t v);
  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteVarint(uint64_t v);
  void WriteI64(int64_t v);  // zigzag varint
  void WriteBool(bool v);
  void WriteBytes(ByteView b);    // length-prefixed
  void WriteString(std::string_view s);
  void WriteRaw(ByteView b);      // no length prefix

  const Bytes& data() const { return data_; }
  Bytes Take() { return std::move(data_); }
  size_t size() const { return data_.size(); }

 private:
  Bytes data_;
};

class PickleReader {
 public:
  explicit PickleReader(ByteView data) : data_(data) {}

  uint8_t ReadU8();
  uint16_t ReadU16();
  uint32_t ReadU32();
  uint64_t ReadU64();
  uint64_t ReadVarint();
  int64_t ReadI64();
  bool ReadBool();
  Bytes ReadBytes();
  std::string ReadString();
  Bytes ReadRaw(size_t n);

  bool ok() const { return ok_; }
  size_t remaining() const { return data_.size() - pos_; }

  // Returns OK iff no read failed and the input was fully consumed.
  Status Done() const;
  // Returns OK iff no read failed (trailing bytes allowed).
  Status Check() const;

 private:
  bool Need(size_t n);

  ByteView data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace tdb

#endif  // SRC_COMMON_PICKLE_H_
