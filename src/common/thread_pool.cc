#include "src/common/thread_pool.h"

#include <atomic>
#include <cassert>
#include <memory>

namespace tdb {

size_t HardwareConcurrency() {
  size_t n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

ThreadPool::ThreadPool(size_t num_workers) {
  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) {
    t.join();
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // shutdown with a drained queue
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  assert(!workers_.empty() && "Submit on a pool with no workers never runs");
  Enqueue(std::move(task));
}

void ThreadPool::Enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

namespace {

// Shared between the caller and helper tasks; held by shared_ptr so a helper
// that wakes after the caller returned only touches live memory.
struct ForState {
  explicit ForState(size_t n) : total(n) {}
  const size_t total;
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  std::mutex mu;
  std::condition_variable done_cv;
};

// Claims iterations until the range is exhausted. Returns the number done.
size_t DrainRange(ForState& st, const std::function<void(size_t)>& fn) {
  size_t did = 0;
  for (;;) {
    size_t i = st.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= st.total) {
      return did;
    }
    fn(i);
    ++did;
  }
}

}  // namespace

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) {
    return;
  }
  if (workers_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }

  auto st = std::make_shared<ForState>(n);
  // The caller takes a share of the work, so n-1 helpers suffice; extra
  // helpers beyond the worker count would only queue up to find no work.
  size_t helpers = workers_.size() < n - 1 ? workers_.size() : n - 1;
  for (size_t h = 0; h < helpers; ++h) {
    Enqueue([st, &fn]() mutable {
      size_t did = DrainRange(*st, fn);
      if (did > 0 &&
          st->done.fetch_add(did, std::memory_order_acq_rel) + did ==
              st->total) {
        std::lock_guard<std::mutex> lock(st->mu);
        st->done_cv.notify_all();
      }
    });
  }

  size_t did = DrainRange(*st, fn);
  if (did > 0) {
    st->done.fetch_add(did, std::memory_order_acq_rel);
  }
  std::unique_lock<std::mutex> lock(st->mu);
  st->done_cv.wait(lock, [&] {
    return st->done.load(std::memory_order_acquire) == st->total;
  });
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (pool != nullptr && pool->num_workers() > 0) {
    pool->ParallelFor(n, fn);
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    fn(i);
  }
}

}  // namespace tdb
