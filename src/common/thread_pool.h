// A small worker pool for CPU-bound crypto fan-out.
//
// The chunk store serializes all mutation under one mutex (paper §4.2), but
// the per-chunk hash/encrypt work inside a commit, checkpoint, clean, or
// backup is embarrassingly parallel once IVs have been reserved serially.
// ParallelFor distributes those builds across workers while the calling
// thread participates, so a pool with zero workers degrades to a plain loop
// and the caller always makes progress even if every worker is busy.
//
// Tasks must be pure CPU work: they must not throw, must not block on locks
// held by the caller (in particular ChunkStore::mu_), and must communicate
// results only through pre-sized per-index slots.

#ifndef SRC_COMMON_THREAD_POOL_H_
#define SRC_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tdb {

// Threads to use when ChunkStoreOptions::crypto_threads asks for the default;
// always at least 1 (std::thread::hardware_concurrency may return 0).
size_t HardwareConcurrency();

class ThreadPool {
 public:
  // Spawns `num_workers` threads; 0 is allowed and makes ParallelFor inline.
  explicit ThreadPool(size_t num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_workers() const { return workers_.size(); }

  // Invokes fn(i) for every i in [0, n), distributing iterations across the
  // workers and the calling thread. Returns once all n iterations finished.
  // fn must be safe to call concurrently from multiple threads.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  // Queues a standalone task for a worker. Unlike ParallelFor tasks, a
  // submitted task may block (the server uses one per live session), so a
  // pool shared with ParallelFor callers should be sized for the blocking
  // load. Tasks still queued at destruction run to completion before the
  // destructor returns; with zero workers nothing ever runs, so Submit
  // requires num_workers() > 0.
  void Submit(std::function<void()> task);

 private:
  void WorkerLoop();
  void Enqueue(std::function<void()> task);

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::function<void()>> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

// Runs fn(i) for i in [0, n): inline when pool is null or trivial, otherwise
// via pool->ParallelFor. The serial path is bit-for-bit the same loop the
// parallel path computes, just on one thread.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn);

}  // namespace tdb

#endif  // SRC_COMMON_THREAD_POOL_H_
