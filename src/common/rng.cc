#include "src/common/rng.h"

namespace tdb {

namespace {
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) {
    s = SplitMix64(x);
  }
}

uint64_t Rng::NextU64() {
  uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (~bound + 1) % bound;
  while (true) {
    uint64_t r = NextU64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

uint64_t Rng::NextInRange(uint64_t lo, uint64_t hi) {
  return lo + NextBelow(hi - lo + 1);
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool() { return (NextU64() & 1) != 0; }

Bytes Rng::NextBytes(size_t n) {
  Bytes out;
  out.reserve(n);
  while (out.size() < n) {
    uint64_t r = NextU64();
    for (int i = 0; i < 8 && out.size() < n; ++i) {
      out.push_back(static_cast<uint8_t>(r >> (8 * i)));
    }
  }
  return out;
}

}  // namespace tdb
