#include "src/common/pickle.h"

namespace tdb {

void PickleWriter::WriteU8(uint8_t v) { data_.push_back(v); }

void PickleWriter::WriteU16(uint16_t v) { PutU16(data_, v); }

void PickleWriter::WriteU32(uint32_t v) { PutU32(data_, v); }

void PickleWriter::WriteU64(uint64_t v) { PutU64(data_, v); }

void PickleWriter::WriteVarint(uint64_t v) {
  while (v >= 0x80) {
    data_.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  data_.push_back(static_cast<uint8_t>(v));
}

void PickleWriter::WriteI64(int64_t v) {
  uint64_t zz = (static_cast<uint64_t>(v) << 1) ^
                static_cast<uint64_t>(v >> 63);
  WriteVarint(zz);
}

void PickleWriter::WriteBool(bool v) { WriteU8(v ? 1 : 0); }

void PickleWriter::WriteBytes(ByteView b) {
  WriteVarint(b.size());
  Append(data_, b);
}

void PickleWriter::WriteString(std::string_view s) {
  WriteVarint(s.size());
  data_.insert(data_.end(), s.begin(), s.end());
}

void PickleWriter::WriteRaw(ByteView b) { Append(data_, b); }

bool PickleReader::Need(size_t n) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

uint8_t PickleReader::ReadU8() {
  if (!Need(1)) {
    return 0;
  }
  return data_[pos_++];
}

uint16_t PickleReader::ReadU16() {
  if (!Need(2)) {
    return 0;
  }
  uint16_t v = GetU16(data_.data() + pos_);
  pos_ += 2;
  return v;
}

uint32_t PickleReader::ReadU32() {
  if (!Need(4)) {
    return 0;
  }
  uint32_t v = GetU32(data_.data() + pos_);
  pos_ += 4;
  return v;
}

uint64_t PickleReader::ReadU64() {
  if (!Need(8)) {
    return 0;
  }
  uint64_t v = GetU64(data_.data() + pos_);
  pos_ += 8;
  return v;
}

uint64_t PickleReader::ReadVarint() {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (!Need(1) || shift > 63) {
      ok_ = false;
      return 0;
    }
    uint8_t byte = data_[pos_++];
    v |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      return v;
    }
    shift += 7;
  }
}

int64_t PickleReader::ReadI64() {
  uint64_t zz = ReadVarint();
  return static_cast<int64_t>((zz >> 1) ^ (~(zz & 1) + 1));
}

bool PickleReader::ReadBool() { return ReadU8() != 0; }

Bytes PickleReader::ReadBytes() {
  uint64_t n = ReadVarint();
  return ReadRaw(n);
}

std::string PickleReader::ReadString() {
  uint64_t n = ReadVarint();
  if (!Need(n)) {
    return {};
  }
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return s;
}

Bytes PickleReader::ReadRaw(size_t n) {
  if (!Need(n)) {
    return {};
  }
  Bytes b(data_.begin() + pos_, data_.begin() + pos_ + n);
  pos_ += n;
  return b;
}

Status PickleReader::Done() const {
  if (!ok_) {
    return CorruptionError("pickle: truncated or malformed record");
  }
  if (pos_ != data_.size()) {
    return CorruptionError("pickle: trailing bytes after record");
  }
  return OkStatus();
}

Status PickleReader::Check() const {
  if (!ok_) {
    return CorruptionError("pickle: truncated or malformed record");
  }
  return OkStatus();
}

}  // namespace tdb
