// Deterministic crash-point injection (the ALICE / torn-write discipline):
// every durability-relevant operation on an instrumented device — a segment
// write, a log append, a flush, a truncate, a trusted-store update — is one
// numbered "crash point". One controller is shared by every wrapped device
// in a test run, so points are numbered globally in execution order across
// the untrusted store, the trusted store, the archival sink, and the XDB
// files at once.
//
// Protocol: pass 1 arms the controller with kNeverCrash and runs the
// workload to completion to learn the total point count N; passes 2..N+1 arm
// it to crash at each point k in [0, N). Crashing at point k means every
// operation before k completed normally and operation k fails *instead of*
// executing — optionally persisting a torn prefix of the in-flight write
// first — and every later operation fails too (the machine is down until the
// test "reboots" by reopening the stores against the raw devices).
//
// Wrappers over the individual device interfaces live next to those
// interfaces: CrashPointStore/CrashPointSink (src/store), CrashPointRegister/
// CrashPointCounter (src/platform), CrashPointPageFile/CrashPointAppendFile
// (src/xdb).

#ifndef SRC_COMMON_CRASH_POINT_H_
#define SRC_COMMON_CRASH_POINT_H_

#include <cstdint>
#include <mutex>

#include "src/common/status.h"

namespace tdb {

class CrashPointController {
 public:
  enum class Decision : uint8_t {
    kProceed,   // not the crash point: perform the operation normally
    kCrashNow,  // this op trips the crash: persist the torn prefix, then fail
    kDead,      // a crash already happened: fail with no side effects
  };

  // Arm with kNeverCrash to count points without crashing (the learning
  // pass).
  static constexpr uint64_t kNeverCrash = ~0ULL;

  // Starts a fresh run that crashes at the crash_point-th operation from
  // now (0 = the very next one). tear_fraction in [0, 1] is the prefix
  // fraction of the in-flight write persisted at the crash; operations that
  // are contractually crash-atomic (superblock, trusted register) ignore it.
  void Arm(uint64_t crash_point, double tear_fraction = 0.0);
  // Stops injecting and counting; crashed() resets to false.
  void Disarm();

  // Called by wrappers once per durability-relevant operation.
  Decision OnPoint();

  bool armed() const;
  bool crashed() const;
  // Operations observed since the last Arm/Disarm (the learning pass reads
  // this as the total point count N).
  uint64_t points() const;
  double tear_fraction() const;

  // How many bytes of an in-flight write of `size` bytes a kCrashNow
  // decision persists.
  size_t TornPrefix(size_t size) const;

  // The error every operation returns once the crash has tripped.
  static Status CrashedStatus();

 private:
  // The controller is shared by every wrapped device, and the torture
  // harness drives those devices from traffic, maintenance, and backup
  // threads concurrently (while another thread may be mid-Arm), so all
  // state sits behind a mutex. The single-threaded sweep is unaffected:
  // point numbering stays execution-ordered.
  mutable std::mutex mu_;
  bool armed_ = false;
  bool crashed_ = false;
  uint64_t crash_point_ = kNeverCrash;
  uint64_t points_ = 0;
  double tear_fraction_ = 0.0;
};

}  // namespace tdb

#endif  // SRC_COMMON_CRASH_POINT_H_
