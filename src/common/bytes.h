// Byte-buffer helpers shared by all TDB modules.
//
// Bytes is the unit of chunk state, cipher text, hashes, and pickled objects.
// ByteView is a non-owning read-only view.

#ifndef SRC_COMMON_BYTES_H_
#define SRC_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace tdb {

using Bytes = std::vector<uint8_t>;
using ByteView = std::span<const uint8_t>;

// Converts between Bytes and std::string (no encoding; raw bytes).
Bytes BytesFromString(std::string_view s);
std::string StringFromBytes(ByteView b);

// Lower-case hex encoding, e.g. {0xde, 0xad} -> "dead".
std::string HexEncode(ByteView b);
// Inverse of HexEncode; returns empty on malformed input of odd length or
// non-hex characters.
Bytes HexDecode(std::string_view hex);

// Appends `src` to `dst`.
void Append(Bytes& dst, ByteView src);

// Constant-time equality for secrets and MACs.
bool ConstantTimeEqual(ByteView a, ByteView b);

// Little-endian fixed-width integer packing used by the log format.
void PutU16(Bytes& dst, uint16_t v);
void PutU32(Bytes& dst, uint32_t v);
void PutU64(Bytes& dst, uint64_t v);
uint16_t GetU16(const uint8_t* p);
uint32_t GetU32(const uint8_t* p);
uint64_t GetU64(const uint8_t* p);

}  // namespace tdb

#endif  // SRC_COMMON_BYTES_H_
