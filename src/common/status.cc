#include "src/common/status.h"

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace tdb {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kTamperDetected:
      return "TAMPER_DETECTED";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kOutOfSpace:
      return "OUT_OF_SPACE";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kTimeout:
      return "TIMEOUT";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kCorruption:
      return "CORRUPTION";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kMoved:
      return "MOVED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status OkStatus() { return Status(); }

Status TamperDetectedError(std::string message) {
  // Every tamper alarm in the system is constructed here, so emitting the
  // structured event at this single chokepoint guarantees a 1:1 mapping
  // between alarms raised and `tamper_detected` trace events. The message
  // carries the location and cause (e.g. which chunk/segment failed which
  // check). Benign parse/decrypt failures on torn log tails use
  // CorruptionError and never reach this path.
  obs::TraceEmit(obs::TraceKind::kTamperDetected, "tamper", 0, 0, message);
  obs::Count("tamper.alarms");
  return Status(StatusCode::kTamperDetected, std::move(message));
}
Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status OutOfSpaceError(std::string message) {
  return Status(StatusCode::kOutOfSpace, std::move(message));
}
Status AlreadyExistsError(std::string message) {
  return Status(StatusCode::kAlreadyExists, std::move(message));
}
Status TimeoutError(std::string message) {
  return Status(StatusCode::kTimeout, std::move(message));
}
Status IoError(std::string message) {
  return Status(StatusCode::kIoError, std::move(message));
}
Status CorruptionError(std::string message) {
  return Status(StatusCode::kCorruption, std::move(message));
}
Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
Status UnimplementedError(std::string message) {
  return Status(StatusCode::kUnimplemented, std::move(message));
}
Status MovedError(std::string message) {
  return Status(StatusCode::kMoved, std::move(message));
}

}  // namespace tdb
