#include "src/collect/index.h"

#include <algorithm>

namespace tdb {

Bytes EncodeU64Key(uint64_t value) {
  Bytes out(8);
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<uint8_t>(value >> (56 - 8 * i));  // big-endian
  }
  return out;
}

Bytes EncodeI64Key(int64_t value) {
  // Flip the sign bit so two's-complement order matches lexicographic order.
  return EncodeU64Key(static_cast<uint64_t>(value) ^ (1ULL << 63));
}

Bytes EncodeStringKey(std::string_view value) {
  return BytesFromString(value);
}

Status KeyFunctionRegistry::Register(const std::string& name, KeyFn fn) {
  auto [_, inserted] = functions_.emplace(name, std::move(fn));
  if (!inserted) {
    return AlreadyExistsError("key function '" + name + "' already registered");
  }
  return OkStatus();
}

Result<const KeyFunctionRegistry::KeyFn*> KeyFunctionRegistry::Get(
    const std::string& name) const {
  auto it = functions_.find(name);
  if (it == functions_.end()) {
    return NotFoundError("key function '" + name + "' is not registered");
  }
  return &it->second;
}

void IndexObject::PickleFields(PickleWriter& w) const {
  w.WriteString(index_name);
  w.WriteString(key_fn);
  w.WriteBool(sorted);
  w.WriteU64(btree_root);
  w.WriteVarint(entries.size());
  for (const auto& [key, id] : entries) {
    w.WriteBytes(key);
    w.WriteU64(id);
  }
}

Result<ObjectPtr> IndexObject::UnpickleFields(PickleReader& r) {
  auto index = std::make_shared<IndexObject>();
  index->index_name = r.ReadString();
  index->key_fn = r.ReadString();
  index->sorted = r.ReadBool();
  index->btree_root = r.ReadU64();
  uint64_t n = r.ReadVarint();
  TDB_RETURN_IF_ERROR(r.Check());
  index->entries.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Bytes key = r.ReadBytes();
    uint64_t id = r.ReadU64();
    index->entries.emplace_back(std::move(key), id);
  }
  TDB_RETURN_IF_ERROR(r.Check());
  return ObjectPtr(index);
}

void IndexObject::Add(const Bytes& key, uint64_t packed_id) {
  auto pos = std::lower_bound(entries.begin(), entries.end(),
                              std::make_pair(key, packed_id));
  entries.insert(pos, {key, packed_id});
}

void IndexObject::Remove(const Bytes& key, uint64_t packed_id) {
  auto pos = std::lower_bound(entries.begin(), entries.end(),
                              std::make_pair(key, packed_id));
  if (pos != entries.end() && pos->first == key && pos->second == packed_id) {
    entries.erase(pos);
  }
}

std::vector<uint64_t> IndexObject::Exact(const Bytes& key) const {
  std::vector<uint64_t> out;
  auto pos = std::lower_bound(
      entries.begin(), entries.end(), key,
      [](const auto& entry, const Bytes& k) { return entry.first < k; });
  for (; pos != entries.end() && pos->first == key; ++pos) {
    out.push_back(pos->second);
  }
  return out;
}

std::vector<uint64_t> IndexObject::Range(const Bytes& lo,
                                         const Bytes& hi) const {
  std::vector<uint64_t> out;
  auto pos = std::lower_bound(
      entries.begin(), entries.end(), lo,
      [](const auto& entry, const Bytes& k) { return entry.first < k; });
  for (; pos != entries.end() && pos->first <= hi; ++pos) {
    out.push_back(pos->second);
  }
  return out;
}

void CollectionObject::PickleFields(PickleWriter& w) const {
  w.WriteString(collection_name);
  w.WriteVarint(members.size());
  for (uint64_t id : members) {
    w.WriteU64(id);
  }
  w.WriteVarint(index_object_ids.size());
  for (uint64_t id : index_object_ids) {
    w.WriteU64(id);
  }
}

Result<ObjectPtr> CollectionObject::UnpickleFields(PickleReader& r) {
  auto collection = std::make_shared<CollectionObject>();
  collection->collection_name = r.ReadString();
  uint64_t num_members = r.ReadVarint();
  TDB_RETURN_IF_ERROR(r.Check());
  collection->members.reserve(num_members);
  for (uint64_t i = 0; i < num_members; ++i) {
    collection->members.push_back(r.ReadU64());
  }
  uint64_t num_indexes = r.ReadVarint();
  TDB_RETURN_IF_ERROR(r.Check());
  for (uint64_t i = 0; i < num_indexes; ++i) {
    collection->index_object_ids.push_back(r.ReadU64());
  }
  TDB_RETURN_IF_ERROR(r.Check());
  return ObjectPtr(collection);
}

void DirectoryObject::PickleFields(PickleWriter& w) const {
  w.WriteVarint(collections.size());
  for (const auto& [name, id] : collections) {
    w.WriteString(name);
    w.WriteU64(id);
  }
}

Result<ObjectPtr> DirectoryObject::UnpickleFields(PickleReader& r) {
  auto directory = std::make_shared<DirectoryObject>();
  uint64_t n = r.ReadVarint();
  TDB_RETURN_IF_ERROR(r.Check());
  for (uint64_t i = 0; i < n; ++i) {
    std::string name = r.ReadString();
    uint64_t id = r.ReadU64();
    directory->collections[name] = id;
  }
  TDB_RETURN_IF_ERROR(r.Check());
  return ObjectPtr(directory);
}

}  // namespace tdb
