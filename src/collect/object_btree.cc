#include "src/collect/object_btree.h"

#include <algorithm>

namespace tdb {

namespace {

using Entry = std::pair<Bytes, uint64_t>;

bool EntryLess(const Entry& a, const Entry& b) {
  if (a.first != b.first) {
    return a.first < b.first;
  }
  return a.second < b.second;
}

}  // namespace

void BTreeNodeObject::PickleFields(PickleWriter& w) const {
  w.WriteBool(leaf);
  if (leaf) {
    w.WriteVarint(entries.size());
    for (const auto& [key, value] : entries) {
      w.WriteBytes(key);
      w.WriteU64(value);
    }
  } else {
    w.WriteVarint(separators.size());
    for (const auto& [key, value] : separators) {
      w.WriteBytes(key);
      w.WriteU64(value);
    }
    for (uint64_t child : children) {
      w.WriteU64(child);
    }
  }
}

Result<ObjectPtr> BTreeNodeObject::UnpickleFields(PickleReader& r) {
  auto node = std::make_shared<BTreeNodeObject>();
  node->leaf = r.ReadBool();
  uint64_t n = r.ReadVarint();
  TDB_RETURN_IF_ERROR(r.Check());
  if (node->leaf) {
    node->entries.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      Bytes key = r.ReadBytes();
      uint64_t value = r.ReadU64();
      node->entries.emplace_back(std::move(key), value);
    }
  } else {
    node->separators.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      Bytes key = r.ReadBytes();
      uint64_t value = r.ReadU64();
      node->separators.emplace_back(std::move(key), value);
    }
    node->children.reserve(n + 1);
    for (uint64_t i = 0; i < n + 1; ++i) {
      node->children.push_back(r.ReadU64());
    }
  }
  TDB_RETURN_IF_ERROR(r.Check());
  return ObjectPtr(node);
}

Status ObjectBTree::RegisterTypes(TypeRegistry& registry) {
  return RegisterType<BTreeNodeObject>(registry);
}

Result<ObjectId> ObjectBTree::Create(Transaction& txn) {
  return txn.Insert(std::make_shared<BTreeNodeObject>());
}

Result<std::shared_ptr<const BTreeNodeObject>> ObjectBTree::ReadNode(
    ObjectId id, bool for_update) {
  TDB_ASSIGN_OR_RETURN(ObjectPtr object,
                       for_update ? txn_->GetForUpdate(id) : txn_->Get(id));
  auto node = std::dynamic_pointer_cast<const BTreeNodeObject>(object);
  if (node == nullptr) {
    return CorruptionError("b-tree node object has wrong type");
  }
  return node;
}

Result<std::optional<ObjectBTree::SplitResult>> ObjectBTree::InsertRec(
    ObjectId node_id, const Bytes& key, uint64_t value, bool is_root) {
  TDB_ASSIGN_OR_RETURN(auto node, ReadNode(node_id, /*for_update=*/true));
  auto updated = std::make_shared<BTreeNodeObject>(*node);
  if (updated->leaf) {
    Entry entry{key, value};
    auto pos = std::lower_bound(updated->entries.begin(),
                                updated->entries.end(), entry, EntryLess);
    if (pos != updated->entries.end() && *pos == entry) {
      return std::optional<SplitResult>{};  // duplicate pair: no-op
    }
    updated->entries.insert(pos, std::move(entry));
    if (updated->entries.size() <= kMaxNodeEntries) {
      TDB_RETURN_IF_ERROR(txn_->Put(node_id, updated));
      return std::optional<SplitResult>{};
    }
    // Split.
    auto right = std::make_shared<BTreeNodeObject>();
    size_t mid = updated->entries.size() / 2;
    right->entries.assign(updated->entries.begin() + mid,
                          updated->entries.end());
    updated->entries.resize(mid);
    Entry separator = right->entries.front();
    if (is_root) {
      // Keep the root id stable: both halves become children.
      auto left = std::make_shared<BTreeNodeObject>(*updated);
      TDB_ASSIGN_OR_RETURN(ObjectId left_id, txn_->Insert(left));
      TDB_ASSIGN_OR_RETURN(ObjectId right_id, txn_->Insert(right));
      auto new_root = std::make_shared<BTreeNodeObject>();
      new_root->leaf = false;
      new_root->separators.push_back(separator);
      new_root->children = {left_id.Pack(), right_id.Pack()};
      TDB_RETURN_IF_ERROR(txn_->Put(node_id, new_root));
      return std::optional<SplitResult>{};
    }
    TDB_ASSIGN_OR_RETURN(ObjectId right_id, txn_->Insert(right));
    TDB_RETURN_IF_ERROR(txn_->Put(node_id, updated));
    SplitResult split;
    split.separator = std::move(separator);
    split.right_id = right_id.Pack();
    return std::optional<SplitResult>(std::move(split));
  }

  Entry probe{key, value};
  size_t idx = std::upper_bound(updated->separators.begin(),
                                updated->separators.end(), probe, EntryLess) -
               updated->separators.begin();
  TDB_ASSIGN_OR_RETURN(
      std::optional<SplitResult> child_split,
      InsertRec(ChunkId::Unpack(updated->children[idx]), key, value,
                /*is_root=*/false));
  if (!child_split.has_value()) {
    return std::optional<SplitResult>{};
  }
  updated->separators.insert(updated->separators.begin() + idx,
                             child_split->separator);
  updated->children.insert(updated->children.begin() + idx + 1,
                           child_split->right_id);
  if (updated->separators.size() <= kMaxNodeEntries) {
    TDB_RETURN_IF_ERROR(txn_->Put(node_id, updated));
    return std::optional<SplitResult>{};
  }
  // Split interior node; the middle separator moves up.
  size_t mid = updated->separators.size() / 2;
  Entry separator = updated->separators[mid];
  auto right = std::make_shared<BTreeNodeObject>();
  right->leaf = false;
  right->separators.assign(updated->separators.begin() + mid + 1,
                           updated->separators.end());
  right->children.assign(updated->children.begin() + mid + 1,
                         updated->children.end());
  updated->separators.resize(mid);
  updated->children.resize(mid + 1);
  if (is_root) {
    auto left = std::make_shared<BTreeNodeObject>(*updated);
    TDB_ASSIGN_OR_RETURN(ObjectId left_id, txn_->Insert(left));
    TDB_ASSIGN_OR_RETURN(ObjectId right_id, txn_->Insert(right));
    auto new_root = std::make_shared<BTreeNodeObject>();
    new_root->leaf = false;
    new_root->separators.push_back(separator);
    new_root->children = {left_id.Pack(), right_id.Pack()};
    TDB_RETURN_IF_ERROR(txn_->Put(node_id, new_root));
    return std::optional<SplitResult>{};
  }
  TDB_ASSIGN_OR_RETURN(ObjectId right_id, txn_->Insert(right));
  TDB_RETURN_IF_ERROR(txn_->Put(node_id, updated));
  SplitResult split;
  split.separator = std::move(separator);
  split.right_id = right_id.Pack();
  return std::optional<SplitResult>(std::move(split));
}

Status ObjectBTree::Insert(const Bytes& key, uint64_t value) {
  return InsertRec(root_, key, value, /*is_root=*/true).status();
}

Result<bool> ObjectBTree::RemoveRec(ObjectId node_id, const Bytes& key,
                                    uint64_t value) {
  TDB_ASSIGN_OR_RETURN(auto node, ReadNode(node_id, /*for_update=*/true));
  if (node->leaf) {
    Entry entry{key, value};
    auto updated = std::make_shared<BTreeNodeObject>(*node);
    auto pos = std::lower_bound(updated->entries.begin(),
                                updated->entries.end(), entry, EntryLess);
    if (pos == updated->entries.end() || !(*pos == entry)) {
      return false;
    }
    updated->entries.erase(pos);
    TDB_RETURN_IF_ERROR(txn_->Put(node_id, updated));
    return true;
  }
  // Underfull/empty leaves are tolerated (no rebalancing): secondary-index
  // deletions are comparatively rare and lookups stay correct.
  Entry probe{key, value};
  size_t idx = std::upper_bound(node->separators.begin(),
                                node->separators.end(), probe, EntryLess) -
               node->separators.begin();
  return RemoveRec(ChunkId::Unpack(node->children[idx]), key, value);
}

Status ObjectBTree::Remove(const Bytes& key, uint64_t value) {
  TDB_ASSIGN_OR_RETURN(bool removed, RemoveRec(root_, key, value));
  if (!removed) {
    return NotFoundError("(key, value) pair not in index");
  }
  return OkStatus();
}

Status ObjectBTree::CollectRange(ObjectId node_id, const Bytes& lo,
                                 const Bytes& hi, std::vector<uint64_t>& out) {
  TDB_ASSIGN_OR_RETURN(auto node, ReadNode(node_id, /*for_update=*/false));
  if (node->leaf) {
    for (const auto& [key, value] : node->entries) {
      if (key < lo) {
        continue;
      }
      if (hi < key) {
        break;
      }
      out.push_back(value);
    }
    return OkStatus();
  }
  // Visit every child whose key range can intersect [lo, hi]. Child i holds
  // entries in [separators[i-1], separators[i]) by (key, value) order, so by
  // key it covers [separators[i-1].key, separators[i].key] inclusive (equal
  // keys with smaller values stay left of a separator).
  for (size_t i = 0; i < node->children.size(); ++i) {
    if (i > 0 && hi < node->separators[i - 1].first) {
      break;  // this child and everything after it starts above hi
    }
    if (i < node->separators.size() && node->separators[i].first < lo) {
      continue;  // everything in this child is below lo
    }
    TDB_RETURN_IF_ERROR(
        CollectRange(ChunkId::Unpack(node->children[i]), lo, hi, out));
  }
  return OkStatus();
}

Result<std::vector<uint64_t>> ObjectBTree::Exact(const Bytes& key) {
  return Range(key, key);
}

Result<std::vector<uint64_t>> ObjectBTree::Range(const Bytes& lo,
                                                 const Bytes& hi) {
  std::vector<uint64_t> out;
  TDB_RETURN_IF_ERROR(CollectRange(root_, lo, hi, out));
  return out;
}

Result<uint64_t> ObjectBTree::Count() {
  // A full-range scan; Bytes supports any key, so count leaves directly.
  std::vector<ObjectId> stack{root_};
  uint64_t count = 0;
  while (!stack.empty()) {
    ObjectId id = stack.back();
    stack.pop_back();
    TDB_ASSIGN_OR_RETURN(auto node, ReadNode(id, /*for_update=*/false));
    if (node->leaf) {
      count += node->entries.size();
    } else {
      for (uint64_t child : node->children) {
        stack.push_back(ChunkId::Unpack(child));
      }
    }
  }
  return count;
}

}  // namespace tdb
