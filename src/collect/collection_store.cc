#include "src/collect/collection_store.h"

#include <algorithm>

#include "src/collect/object_btree.h"
#include "src/obs/profiler.h"

namespace tdb {

namespace {

template <typename T>
std::shared_ptr<T> CloneOf(const T& object) {
  return std::make_shared<T>(object);
}

}  // namespace

Status CollectionStore::RegisterTypes(TypeRegistry& registry) {
  TDB_RETURN_IF_ERROR(RegisterType<CollectionObject>(registry));
  TDB_RETURN_IF_ERROR(RegisterType<IndexObject>(registry));
  TDB_RETURN_IF_ERROR(ObjectBTree::RegisterTypes(registry));
  return RegisterType<DirectoryObject>(registry);
}

Status CollectionStore::IndexAddEntry(Transaction& txn, ObjectId index_id,
                                      const IndexObject& index,
                                      const Bytes& key,
                                      uint64_t packed_object_id) {
  if (index.btree_root != 0) {
    ObjectBTree tree(&txn, ChunkId::Unpack(index.btree_root));
    return tree.Insert(key, packed_object_id);
  }
  auto updated = std::make_shared<IndexObject>(index);
  updated->Add(key, packed_object_id);
  return txn.Put(index_id, updated);
}

Status CollectionStore::IndexRemoveEntry(Transaction& txn, ObjectId index_id,
                                         const IndexObject& index,
                                         const Bytes& key,
                                         uint64_t packed_object_id) {
  if (index.btree_root != 0) {
    ObjectBTree tree(&txn, ChunkId::Unpack(index.btree_root));
    Status removed = tree.Remove(key, packed_object_id);
    if (removed.code() == StatusCode::kNotFound) {
      return OkStatus();  // mirror IndexObject::Remove's tolerance
    }
    return removed;
  }
  auto updated = std::make_shared<IndexObject>(index);
  updated->Remove(key, packed_object_id);
  return txn.Put(index_id, updated);
}

Result<ObjectId> CollectionStore::Format(Transaction& txn) {
  return txn.Insert(std::make_shared<DirectoryObject>());
}

Result<std::shared_ptr<const CollectionObject>> CollectionStore::GetCollection(
    Transaction& txn, ObjectId id, bool for_update) {
  TDB_ASSIGN_OR_RETURN(ObjectPtr object,
                       for_update ? txn.GetForUpdate(id) : txn.Get(id));
  auto collection = std::dynamic_pointer_cast<const CollectionObject>(object);
  if (collection == nullptr) {
    return InvalidArgumentError("object " + id.ToString() +
                                " is not a collection");
  }
  return collection;
}

Result<std::pair<ObjectId, std::shared_ptr<const IndexObject>>>
CollectionStore::GetIndex(Transaction& txn, const CollectionObject& collection,
                          const std::string& index_name, bool for_update) {
  for (uint64_t packed : collection.index_object_ids) {
    ObjectId id = ChunkId::Unpack(packed);
    TDB_ASSIGN_OR_RETURN(ObjectPtr object,
                         for_update ? txn.GetForUpdate(id) : txn.Get(id));
    auto index = std::dynamic_pointer_cast<const IndexObject>(object);
    if (index == nullptr) {
      return CorruptionError("collection references a non-index object");
    }
    if (index->index_name == index_name) {
      return std::make_pair(id, index);
    }
  }
  return NotFoundError("collection has no index named '" + index_name + "'");
}

Result<Bytes> CollectionStore::KeyFor(const std::string& key_fn,
                                      const Pickled& object) {
  TDB_ASSIGN_OR_RETURN(const KeyFunctionRegistry::KeyFn* fn,
                       key_fns_->Get(key_fn));
  return (*fn)(object);
}

Result<ObjectId> CollectionStore::CreateCollection(
    Transaction& txn, const std::string& name,
    const std::vector<IndexSpec>& indexes) {
  ProfileScope scope("collection_store");
  TDB_ASSIGN_OR_RETURN(ObjectPtr dir_object, txn.GetForUpdate(directory_id_));
  auto directory = std::dynamic_pointer_cast<const DirectoryObject>(dir_object);
  if (directory == nullptr) {
    return CorruptionError("directory object has wrong type");
  }
  if (directory->collections.count(name) > 0) {
    return AlreadyExistsError("collection '" + name + "' exists");
  }
  auto collection = std::make_shared<CollectionObject>();
  collection->collection_name = name;
  for (const IndexSpec& spec : indexes) {
    TDB_RETURN_IF_ERROR(key_fns_->Get(spec.key_fn).status());
    auto index = std::make_shared<IndexObject>();
    index->index_name = spec.name;
    index->key_fn = spec.key_fn;
    index->sorted = spec.sorted || spec.scalable;
    if (spec.scalable) {
      TDB_ASSIGN_OR_RETURN(ObjectId root, ObjectBTree::Create(txn));
      index->btree_root = root.Pack();
    }
    TDB_ASSIGN_OR_RETURN(ObjectId index_id, txn.Insert(index));
    collection->index_object_ids.push_back(index_id.Pack());
  }
  TDB_ASSIGN_OR_RETURN(ObjectId collection_id, txn.Insert(collection));
  auto new_directory = CloneOf(*directory);
  new_directory->collections[name] = collection_id.Pack();
  TDB_RETURN_IF_ERROR(txn.Put(directory_id_, new_directory));
  return collection_id;
}

Result<ObjectId> CollectionStore::FindCollection(Transaction& txn,
                                                 const std::string& name) {
  ProfileScope scope("collection_store");
  TDB_ASSIGN_OR_RETURN(ObjectPtr dir_object, txn.Get(directory_id_));
  auto directory = std::dynamic_pointer_cast<const DirectoryObject>(dir_object);
  if (directory == nullptr) {
    return CorruptionError("directory object has wrong type");
  }
  auto it = directory->collections.find(name);
  if (it == directory->collections.end()) {
    return NotFoundError("no collection named '" + name + "'");
  }
  return ChunkId::Unpack(it->second);
}

Status CollectionStore::DropCollection(Transaction& txn,
                                       const std::string& name) {
  ProfileScope scope("collection_store");
  TDB_ASSIGN_OR_RETURN(ObjectId collection_id, FindCollection(txn, name));
  TDB_ASSIGN_OR_RETURN(auto collection,
                       GetCollection(txn, collection_id, /*for_update=*/true));
  // Drops the collection and its indexes; member objects stay (they may be
  // shared with other collections).
  for (uint64_t packed : collection->index_object_ids) {
    TDB_RETURN_IF_ERROR(txn.Delete(ChunkId::Unpack(packed)));
  }
  TDB_RETURN_IF_ERROR(txn.Delete(collection_id));
  TDB_ASSIGN_OR_RETURN(ObjectPtr dir_object, txn.GetForUpdate(directory_id_));
  auto directory = std::dynamic_pointer_cast<const DirectoryObject>(dir_object);
  auto new_directory = CloneOf(*directory);
  new_directory->collections.erase(name);
  return txn.Put(directory_id_, new_directory);
}

Result<std::vector<std::string>> CollectionStore::ListCollections(
    Transaction& txn) {
  TDB_ASSIGN_OR_RETURN(ObjectPtr dir_object, txn.Get(directory_id_));
  auto directory = std::dynamic_pointer_cast<const DirectoryObject>(dir_object);
  if (directory == nullptr) {
    return CorruptionError("directory object has wrong type");
  }
  std::vector<std::string> names;
  names.reserve(directory->collections.size());
  for (const auto& [name, _] : directory->collections) {
    names.push_back(name);
  }
  return names;
}

Status CollectionStore::AddIndex(Transaction& txn, ObjectId collection_id,
                                 const IndexSpec& spec) {
  ProfileScope scope("collection_store");
  TDB_ASSIGN_OR_RETURN(auto collection,
                       GetCollection(txn, collection_id, /*for_update=*/true));
  for (uint64_t packed : collection->index_object_ids) {
    TDB_ASSIGN_OR_RETURN(ObjectPtr object, txn.Get(ChunkId::Unpack(packed)));
    auto index = std::dynamic_pointer_cast<const IndexObject>(object);
    if (index != nullptr && index->index_name == spec.name) {
      return AlreadyExistsError("index '" + spec.name + "' exists");
    }
  }
  auto index = std::make_shared<IndexObject>();
  index->index_name = spec.name;
  index->key_fn = spec.key_fn;
  index->sorted = spec.sorted || spec.scalable;
  std::optional<ObjectBTree> tree;
  if (spec.scalable) {
    TDB_ASSIGN_OR_RETURN(ObjectId root, ObjectBTree::Create(txn));
    index->btree_root = root.Pack();
    tree.emplace(&txn, root);
  }
  // Backfill from the current members.
  for (uint64_t packed : collection->members) {
    ObjectId member_id = ChunkId::Unpack(packed);
    TDB_ASSIGN_OR_RETURN(ObjectPtr member, txn.Get(member_id));
    TDB_ASSIGN_OR_RETURN(Bytes key, KeyFor(spec.key_fn, *member));
    if (tree.has_value()) {
      TDB_RETURN_IF_ERROR(tree->Insert(key, packed));
    } else {
      index->Add(key, packed);
    }
  }
  TDB_ASSIGN_OR_RETURN(ObjectId index_id, txn.Insert(index));
  auto new_collection = CloneOf(*collection);
  new_collection->index_object_ids.push_back(index_id.Pack());
  return txn.Put(collection_id, new_collection);
}

Status CollectionStore::DropIndex(Transaction& txn, ObjectId collection_id,
                                  const std::string& index_name) {
  ProfileScope scope("collection_store");
  TDB_ASSIGN_OR_RETURN(auto collection,
                       GetCollection(txn, collection_id, /*for_update=*/true));
  TDB_ASSIGN_OR_RETURN(auto found,
                       GetIndex(txn, *collection, index_name, false));
  TDB_RETURN_IF_ERROR(txn.Delete(found.first));
  auto new_collection = CloneOf(*collection);
  std::erase(new_collection->index_object_ids, found.first.Pack());
  return txn.Put(collection_id, new_collection);
}

Result<ObjectId> CollectionStore::Insert(Transaction& txn,
                                         ObjectId collection_id,
                                         ObjectPtr object) {
  ProfileScope scope("collection_store");
  TDB_ASSIGN_OR_RETURN(auto collection,
                       GetCollection(txn, collection_id, /*for_update=*/true));
  TDB_ASSIGN_OR_RETURN(ObjectId object_id, txn.Insert(object));
  auto new_collection = CloneOf(*collection);
  new_collection->members.push_back(object_id.Pack());
  TDB_RETURN_IF_ERROR(txn.Put(collection_id, new_collection));
  for (uint64_t packed : collection->index_object_ids) {
    ObjectId index_id = ChunkId::Unpack(packed);
    TDB_ASSIGN_OR_RETURN(ObjectPtr index_object, txn.GetForUpdate(index_id));
    auto index = std::dynamic_pointer_cast<const IndexObject>(index_object);
    TDB_ASSIGN_OR_RETURN(Bytes key, KeyFor(index->key_fn, *object));
    TDB_RETURN_IF_ERROR(
        IndexAddEntry(txn, index_id, *index, key, object_id.Pack()));
  }
  return object_id;
}

Status CollectionStore::Update(Transaction& txn, ObjectId collection_id,
                               ObjectId object_id, ObjectPtr object) {
  ProfileScope scope("collection_store");
  TDB_ASSIGN_OR_RETURN(auto collection,
                       GetCollection(txn, collection_id, /*for_update=*/false));
  TDB_ASSIGN_OR_RETURN(ObjectPtr old_object, txn.GetForUpdate(object_id));
  for (uint64_t packed : collection->index_object_ids) {
    ObjectId index_id = ChunkId::Unpack(packed);
    TDB_ASSIGN_OR_RETURN(ObjectPtr index_object, txn.GetForUpdate(index_id));
    auto index = std::dynamic_pointer_cast<const IndexObject>(index_object);
    TDB_ASSIGN_OR_RETURN(Bytes old_key, KeyFor(index->key_fn, *old_object));
    TDB_ASSIGN_OR_RETURN(Bytes new_key, KeyFor(index->key_fn, *object));
    if (old_key != new_key) {
      if (index->btree_root != 0) {
        ObjectBTree tree(&txn, ChunkId::Unpack(index->btree_root));
        Status removed = tree.Remove(old_key, object_id.Pack());
        if (!removed.ok() && removed.code() != StatusCode::kNotFound) {
          return removed;
        }
        TDB_RETURN_IF_ERROR(tree.Insert(new_key, object_id.Pack()));
      } else {
        // One clone for both edits — separate clones would each start from
        // the same snapshot and the second Put would undo the first.
        auto updated = std::make_shared<IndexObject>(*index);
        updated->Remove(old_key, object_id.Pack());
        updated->Add(new_key, object_id.Pack());
        TDB_RETURN_IF_ERROR(txn.Put(index_id, updated));
      }
    }
  }
  return txn.Put(object_id, std::move(object));
}

Status CollectionStore::Remove(Transaction& txn, ObjectId collection_id,
                               ObjectId object_id) {
  ProfileScope scope("collection_store");
  TDB_ASSIGN_OR_RETURN(auto collection,
                       GetCollection(txn, collection_id, /*for_update=*/true));
  TDB_ASSIGN_OR_RETURN(ObjectPtr old_object, txn.GetForUpdate(object_id));
  for (uint64_t packed : collection->index_object_ids) {
    ObjectId index_id = ChunkId::Unpack(packed);
    TDB_ASSIGN_OR_RETURN(ObjectPtr index_object, txn.GetForUpdate(index_id));
    auto index = std::dynamic_pointer_cast<const IndexObject>(index_object);
    TDB_ASSIGN_OR_RETURN(Bytes key, KeyFor(index->key_fn, *old_object));
    TDB_RETURN_IF_ERROR(
        IndexRemoveEntry(txn, index_id, *index, key, object_id.Pack()));
  }
  auto new_collection = CloneOf(*collection);
  std::erase(new_collection->members, object_id.Pack());
  TDB_RETURN_IF_ERROR(txn.Put(collection_id, new_collection));
  return txn.Delete(object_id);
}

Result<std::vector<ObjectId>> CollectionStore::Scan(Transaction& txn,
                                                    ObjectId collection_id) {
  ProfileScope scope("collection_store");
  TDB_ASSIGN_OR_RETURN(auto collection,
                       GetCollection(txn, collection_id, /*for_update=*/false));
  std::vector<ObjectId> out;
  out.reserve(collection->members.size());
  for (uint64_t packed : collection->members) {
    out.push_back(ChunkId::Unpack(packed));
  }
  return out;
}

Result<std::vector<ObjectId>> CollectionStore::LookupExact(
    Transaction& txn, ObjectId collection_id, const std::string& index_name,
    const Bytes& key) {
  ProfileScope scope("collection_store");
  TDB_ASSIGN_OR_RETURN(auto collection,
                       GetCollection(txn, collection_id, /*for_update=*/false));
  TDB_ASSIGN_OR_RETURN(auto found,
                       GetIndex(txn, *collection, index_name, false));
  std::vector<uint64_t> hits;
  if (found.second->btree_root != 0) {
    ObjectBTree tree(&txn, ChunkId::Unpack(found.second->btree_root));
    TDB_ASSIGN_OR_RETURN(hits, tree.Exact(key));
  } else {
    hits = found.second->Exact(key);
  }
  std::vector<ObjectId> out;
  for (uint64_t packed : hits) {
    out.push_back(ChunkId::Unpack(packed));
  }
  return out;
}

Result<std::vector<ObjectId>> CollectionStore::LookupRange(
    Transaction& txn, ObjectId collection_id, const std::string& index_name,
    const Bytes& lo, const Bytes& hi) {
  ProfileScope scope("collection_store");
  TDB_ASSIGN_OR_RETURN(auto collection,
                       GetCollection(txn, collection_id, /*for_update=*/false));
  TDB_ASSIGN_OR_RETURN(auto found,
                       GetIndex(txn, *collection, index_name, false));
  if (!found.second->sorted) {
    return InvalidArgumentError("range lookup requires a sorted index");
  }
  std::vector<uint64_t> hits;
  if (found.second->btree_root != 0) {
    ObjectBTree tree(&txn, ChunkId::Unpack(found.second->btree_root));
    TDB_ASSIGN_OR_RETURN(hits, tree.Range(lo, hi));
  } else {
    hits = found.second->Range(lo, hi);
  }
  std::vector<ObjectId> out;
  for (uint64_t packed : hits) {
    out.push_back(ChunkId::Unpack(packed));
  }
  return out;
}

}  // namespace tdb
