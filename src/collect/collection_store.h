// The collection store (§8): collections of objects sharing one or more
// functional indexes. Indexes are maintained automatically as objects are
// inserted, updated, and removed, and can be added or dropped dynamically.
// Collections and indexes are themselves objects in the underlying object
// store, so they inherit transactions and trusted storage for free.

#ifndef SRC_COLLECT_COLLECTION_STORE_H_
#define SRC_COLLECT_COLLECTION_STORE_H_

#include <string>
#include <vector>

#include "src/collect/index.h"
#include "src/object/object_store.h"

namespace tdb {

struct IndexSpec {
  std::string name;
  std::string key_fn;  // registered in the KeyFunctionRegistry
  bool sorted = false;
  // Store index contents in an object-backed B-tree (object_btree.h) instead
  // of a single inline object — use for large collections, where fetching
  // the whole index per lookup would defeat the cache. Scalable indexes are
  // always sorted.
  bool scalable = false;
};

class CollectionStore {
 public:
  // Registers the collection store's own object types. Call once on the
  // TypeRegistry shared with the object store.
  static Status RegisterTypes(TypeRegistry& registry);

  // Creates the root directory object (call once on a fresh database, inside
  // a transaction); keep the returned id, it is the handle to everything.
  static Result<ObjectId> Format(Transaction& txn);

  CollectionStore(ObjectStore* objects, const KeyFunctionRegistry* key_fns,
                  ObjectId directory_id)
      : objects_(objects), key_fns_(key_fns), directory_id_(directory_id) {}

  // --- collection management ---
  Result<ObjectId> CreateCollection(Transaction& txn, const std::string& name,
                                    const std::vector<IndexSpec>& indexes = {});
  Result<ObjectId> FindCollection(Transaction& txn, const std::string& name);
  Status DropCollection(Transaction& txn, const std::string& name);
  Result<std::vector<std::string>> ListCollections(Transaction& txn);

  // --- dynamic index management ---
  Status AddIndex(Transaction& txn, ObjectId collection, const IndexSpec& spec);
  Status DropIndex(Transaction& txn, ObjectId collection,
                   const std::string& index_name);

  // --- member operations (indexes maintained automatically) ---
  Result<ObjectId> Insert(Transaction& txn, ObjectId collection,
                          ObjectPtr object);
  Status Update(Transaction& txn, ObjectId collection, ObjectId object_id,
                ObjectPtr object);
  Status Remove(Transaction& txn, ObjectId collection, ObjectId object_id);

  // --- iterators (§2.2: scan, exact-match, and range) ---
  Result<std::vector<ObjectId>> Scan(Transaction& txn, ObjectId collection);
  Result<std::vector<ObjectId>> LookupExact(Transaction& txn,
                                            ObjectId collection,
                                            const std::string& index_name,
                                            const Bytes& key);
  // Inclusive range over a sorted index.
  Result<std::vector<ObjectId>> LookupRange(Transaction& txn,
                                            ObjectId collection,
                                            const std::string& index_name,
                                            const Bytes& lo, const Bytes& hi);

  ObjectId directory_id() const { return directory_id_; }

 private:
  Result<std::shared_ptr<const CollectionObject>> GetCollection(
      Transaction& txn, ObjectId id, bool for_update);
  Result<std::pair<ObjectId, std::shared_ptr<const IndexObject>>> GetIndex(
      Transaction& txn, const CollectionObject& collection,
      const std::string& index_name, bool for_update);
  Result<Bytes> KeyFor(const std::string& key_fn, const Pickled& object);

  // Representation-agnostic index entry maintenance (inline or B-tree).
  Status IndexAddEntry(Transaction& txn, ObjectId index_id,
                       const IndexObject& index, const Bytes& key,
                       uint64_t packed_object_id);
  Status IndexRemoveEntry(Transaction& txn, ObjectId index_id,
                          const IndexObject& index, const Bytes& key,
                          uint64_t packed_object_id);

  ObjectStore* objects_;
  const KeyFunctionRegistry* key_fns_;
  ObjectId directory_id_;
};

}  // namespace tdb

#endif  // SRC_COLLECT_COLLECTION_STORE_H_
