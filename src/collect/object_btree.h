// A B-tree whose nodes are objects in the object store: the scalable index
// structure behind large collections (§2.2: "TDB allows the database to
// scale … It uses scalable data structures and fetches data piecemeal on
// demand"). Entries are (key, value) pairs with duplicate keys allowed;
// uniqueness is by the full pair, which is what a secondary index needs.
//
// The root node's object id is stable across splits (the root is rewritten
// in place when it splits), so an index can hold a single reference to its
// tree forever. All operations run inside the caller's transaction and
// inherit its atomicity and isolation.

#ifndef SRC_COLLECT_OBJECT_BTREE_H_
#define SRC_COLLECT_OBJECT_BTREE_H_

#include <vector>

#include "src/object/object_store.h"

namespace tdb {

inline constexpr uint32_t kBTreeNodeTypeTag = 0xF0000004;

class BTreeNodeObject final : public Pickled {
 public:
  static constexpr uint32_t kTypeTag = kBTreeNodeTypeTag;

  bool leaf = true;
  // Leaf payload: sorted by (key, value).
  std::vector<std::pair<Bytes, uint64_t>> entries;
  // Interior payload: separators are full (key, value) pairs — routing on
  // the key alone would misplace duplicate keys that straddle a split.
  // separators[i] = smallest entry in children[i+1].
  std::vector<std::pair<Bytes, uint64_t>> separators;
  std::vector<uint64_t> children;  // packed ObjectIds, separators.size() + 1

  uint32_t type_tag() const override { return kTypeTag; }
  void PickleFields(PickleWriter& w) const override;
  static Result<ObjectPtr> UnpickleFields(PickleReader& r);
};

class ObjectBTree {
 public:
  // Max entries (leaf) / keys (interior) per node before splitting.
  static constexpr size_t kMaxNodeEntries = 32;

  static Status RegisterTypes(TypeRegistry& registry);

  // Creates an empty tree; returns the (stable) root object id.
  static Result<ObjectId> Create(Transaction& txn);

  ObjectBTree(Transaction* txn, ObjectId root) : txn_(txn), root_(root) {}

  Status Insert(const Bytes& key, uint64_t value);
  // Removes one (key, value) pair; kNotFound if absent.
  Status Remove(const Bytes& key, uint64_t value);

  Result<std::vector<uint64_t>> Exact(const Bytes& key);
  // Inclusive key range, in order.
  Result<std::vector<uint64_t>> Range(const Bytes& lo, const Bytes& hi);
  Result<uint64_t> Count();

 private:
  struct SplitResult {
    std::pair<Bytes, uint64_t> separator;
    uint64_t right_id = 0;
  };

  Result<std::shared_ptr<const BTreeNodeObject>> ReadNode(ObjectId id,
                                                          bool for_update);
  Result<std::optional<SplitResult>> InsertRec(ObjectId node_id,
                                               const Bytes& key,
                                               uint64_t value, bool is_root);
  Result<bool> RemoveRec(ObjectId node_id, const Bytes& key, uint64_t value);
  Status CollectRange(ObjectId node_id, const Bytes& lo, const Bytes& hi,
                      std::vector<uint64_t>& out);

  Transaction* txn_;
  ObjectId root_;
};

}  // namespace tdb

#endif  // SRC_COLLECT_OBJECT_BTREE_H_
