// Functional indexes (§8, [Hwa94]): keys are extracted from objects by
// deterministic, registered functions, so no separate data definition
// language is needed. Indexes may be unsorted (exact-match only) or sorted
// (exact-match and range), which is possible because indexed objects are
// decrypted inside the trust boundary.
//
// Keys are byte strings compared lexicographically; the Encode* helpers
// produce order-preserving encodings for common field types.

#ifndef SRC_COLLECT_INDEX_H_
#define SRC_COLLECT_INDEX_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/object/pickler.h"

namespace tdb {

// Order-preserving key encodings.
Bytes EncodeU64Key(uint64_t value);
Bytes EncodeI64Key(int64_t value);
Bytes EncodeStringKey(std::string_view value);

class KeyFunctionRegistry {
 public:
  using KeyFn = std::function<Result<Bytes>(const Pickled&)>;

  Status Register(const std::string& name, KeyFn fn);
  Result<const KeyFn*> Get(const std::string& name) const;

 private:
  std::map<std::string, KeyFn> functions_;
};

// Reserved type tags for collection-store objects.
inline constexpr uint32_t kCollectionTypeTag = 0xF0000001;
inline constexpr uint32_t kIndexTypeTag = 0xF0000002;
inline constexpr uint32_t kDirectoryTypeTag = 0xF0000003;

// An index over one collection, stored as an object.
class IndexObject final : public Pickled {
 public:
  static constexpr uint32_t kTypeTag = kIndexTypeTag;

  std::string index_name;
  std::string key_fn;
  bool sorted = false;
  // Inline representation: (key, packed object id), kept sorted by
  // (key, id). Used when btree_root == 0.
  std::vector<std::pair<Bytes, uint64_t>> entries;
  // Scalable representation: the packed object id of an ObjectBTree root
  // (object_btree.h). When non-zero, `entries` is unused and index contents
  // live in B-tree node objects, so large indexes are fetched piecemeal.
  uint64_t btree_root = 0;

  uint32_t type_tag() const override { return kIndexTypeTag; }
  void PickleFields(PickleWriter& w) const override;
  static Result<ObjectPtr> UnpickleFields(PickleReader& r);

  void Add(const Bytes& key, uint64_t packed_id);
  void Remove(const Bytes& key, uint64_t packed_id);
  std::vector<uint64_t> Exact(const Bytes& key) const;
  // Inclusive range; requires sorted (callers enforce).
  std::vector<uint64_t> Range(const Bytes& lo, const Bytes& hi) const;
};

// A collection: member objects plus attached indexes.
class CollectionObject final : public Pickled {
 public:
  static constexpr uint32_t kTypeTag = kCollectionTypeTag;

  std::string collection_name;
  std::vector<uint64_t> members;           // packed object ids
  std::vector<uint64_t> index_object_ids;  // packed ids of IndexObjects

  uint32_t type_tag() const override { return kCollectionTypeTag; }
  void PickleFields(PickleWriter& w) const override;
  static Result<ObjectPtr> UnpickleFields(PickleReader& r);
};

// Maps collection names to collection object ids.
class DirectoryObject final : public Pickled {
 public:
  static constexpr uint32_t kTypeTag = kDirectoryTypeTag;

  std::map<std::string, uint64_t> collections;  // name -> packed object id

  uint32_t type_tag() const override { return kDirectoryTypeTag; }
  void PickleFields(PickleWriter& w) const override;
  static Result<ObjectPtr> UnpickleFields(PickleReader& r);
};

}  // namespace tdb

#endif  // SRC_COLLECT_INDEX_H_
