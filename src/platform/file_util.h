// Small-file I/O helpers for the trusted platform model: whole-file read and
// crash-durable whole-file write. "Durable" here means the full POSIX
// discipline — fsync the file data before close, check the close result, and
// fsync the containing directory so the creation or replacement of the file
// name itself survives a power loss.

#ifndef SRC_PLATFORM_FILE_UTIL_H_
#define SRC_PLATFORM_FILE_UTIL_H_

#include <string>

#include "src/common/bytes.h"
#include "src/common/status.h"

namespace tdb {

// Reads the entire contents of `path`. Returns kNotFound if the file cannot
// be opened and kIoError if its size cannot be determined (unseekable paths
// such as pipes) or the read comes up short.
Result<Bytes> ReadWholeFile(const std::string& path);

// Replaces the contents of `path` with `data`, durably: the data is fsynced
// to the device before close, the fclose result is checked, and the
// containing directory is fsynced so a newly created file's directory entry
// is durable too. Returns kIoError if any step fails — including paths that
// cannot be synced at all.
Status WriteWholeFileDurable(const std::string& path, ByteView data);

// Flushes directory metadata (file creation, deletion, rename) to stable
// storage. An empty `dir` means the current directory.
Status FsyncDir(const std::string& dir);

}  // namespace tdb

#endif  // SRC_PLATFORM_FILE_UTIL_H_
