#include "src/platform/crash_point_trusted.h"

namespace tdb {

Result<Bytes> CrashPointRegister::Read() const {
  if (controller_->crashed()) return CrashPointController::CrashedStatus();
  return base_->Read();
}

Status CrashPointRegister::Write(ByteView value) {
  // Atomic per the TamperResistantRegister contract: on a crash the register
  // keeps its previous value in full.
  if (controller_->OnPoint() == CrashPointController::Decision::kProceed) {
    return base_->Write(value);
  }
  return CrashPointController::CrashedStatus();
}

Result<uint64_t> CrashPointCounter::Read() const {
  if (controller_->crashed()) return CrashPointController::CrashedStatus();
  return base_->Read();
}

Status CrashPointCounter::AdvanceTo(uint64_t value) {
  if (controller_->OnPoint() == CrashPointController::Decision::kProceed) {
    return base_->AdvanceTo(value);
  }
  return CrashPointController::CrashedStatus();
}

}  // namespace tdb
