// The trusted platform model of §2.1: a small secret store (read-only, e.g.
// a 16-byte key), and a small tamper-resistant store that is either a
// writable register or a monotonic counter, updated atomically with respect
// to crashes.
//
// The paper emulated the tamper-resistant store with a file on a second disk
// (§9.1); we provide in-memory stores for tests and file-backed stores for
// durability, both with an optional modelled flush latency so benchmarks can
// reproduce the paper's device assumptions (EEPROM ≈ 5 ms, disk ≈ 10-20 ms).

#ifndef SRC_PLATFORM_TRUSTED_STORE_H_
#define SRC_PLATFORM_TRUSTED_STORE_H_

#include <chrono>
#include <memory>
#include <string>

#include "src/common/bytes.h"
#include "src/common/status.h"

namespace tdb {

// Read-only persistent secret (the master key). Only trusted programs can
// read it; in this process-level model, possession of the object is the
// capability.
class SecretStore {
 public:
  virtual ~SecretStore() = default;
  virtual Result<Bytes> Read() const = 0;
};

class MemSecretStore final : public SecretStore {
 public:
  explicit MemSecretStore(Bytes secret) : secret_(std::move(secret)) {}
  Result<Bytes> Read() const override { return secret_; }

 private:
  Bytes secret_;
};

// Small writable tamper-resistant persistent register. Write() is atomic
// with respect to crashes and durable on return.
class TamperResistantRegister {
 public:
  virtual ~TamperResistantRegister() = default;
  virtual Result<Bytes> Read() const = 0;
  virtual Status Write(ByteView value) = 0;
};

// Monotonic counter variant (§4.8.2.2): cannot be decremented by any program.
class MonotonicCounter {
 public:
  virtual ~MonotonicCounter() = default;
  virtual Result<uint64_t> Read() const = 0;
  // Advances the counter; returns kInvalidArgument if value < current.
  virtual Status AdvanceTo(uint64_t value) = 0;
};

// Models the write/flush latency of a trusted-store device. A zero latency
// (the default) makes tests fast; benchmarks set it to the paper's constants.
struct TrustedStoreOptions {
  std::chrono::microseconds write_latency{0};
};

class MemTamperResistantRegister final : public TamperResistantRegister {
 public:
  explicit MemTamperResistantRegister(TrustedStoreOptions options = {})
      : options_(options) {}

  Result<Bytes> Read() const override { return value_; }
  Status Write(ByteView value) override;

 private:
  TrustedStoreOptions options_;
  Bytes value_;
};

class MemMonotonicCounter final : public MonotonicCounter {
 public:
  explicit MemMonotonicCounter(TrustedStoreOptions options = {})
      : options_(options) {}

  Result<uint64_t> Read() const override { return value_; }
  Status AdvanceTo(uint64_t value) override;

 private:
  TrustedStoreOptions options_;
  uint64_t value_ = 0;
};

// File-backed register with crash-atomic updates: two slots, each holding
// (sequence, length, payload, checksum); a torn write corrupts at most the
// slot being written, and the reader picks the valid slot with the higher
// sequence number.
class FileTamperResistantRegister final : public TamperResistantRegister {
 public:
  static Result<std::unique_ptr<FileTamperResistantRegister>> Open(
      const std::string& path, TrustedStoreOptions options = {});

  Result<Bytes> Read() const override;
  Status Write(ByteView value) override;

  // The path of a slot file. Write() with sequence number s targets slot
  // s % 2; crash tests use this to tear the in-flight slot file.
  static std::string SlotPathForTesting(const std::string& base, int slot);

 private:
  FileTamperResistantRegister(std::string path, TrustedStoreOptions options)
      : path_(std::move(path)), options_(options) {}

  std::string path_;
  TrustedStoreOptions options_;
  uint64_t sequence_ = 0;
  Bytes cached_;
  bool have_cached_ = false;
};

// File-backed monotonic counter built on the register.
class FileMonotonicCounter final : public MonotonicCounter {
 public:
  static Result<std::unique_ptr<FileMonotonicCounter>> Open(
      const std::string& path, TrustedStoreOptions options = {});

  Result<uint64_t> Read() const override;
  Status AdvanceTo(uint64_t value) override;

 private:
  explicit FileMonotonicCounter(
      std::unique_ptr<FileTamperResistantRegister> reg)
      : reg_(std::move(reg)) {}

  std::unique_ptr<FileTamperResistantRegister> reg_;
};

// Applies the modelled device latency (no-op when zero).
void ApplyTrustedStoreLatency(const TrustedStoreOptions& options);

}  // namespace tdb

#endif  // SRC_PLATFORM_TRUSTED_STORE_H_
