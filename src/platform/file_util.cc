#include "src/platform/file_util.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>

namespace tdb {

Result<Bytes> ReadWholeFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return NotFoundError("cannot open " + path);
  if (std::fseek(f, 0, SEEK_END) != 0) {
    std::fclose(f);
    return IoError("cannot seek to end of " + path);
  }
  long size = std::ftell(f);
  if (size < 0) {
    // ftell fails (e.g. with -1) on unseekable files; the old cast to size_t
    // turned that into a ~SIZE_MAX allocation.
    std::fclose(f);
    return IoError("cannot determine size of " + path);
  }
  if (std::fseek(f, 0, SEEK_SET) != 0) {
    std::fclose(f);
    return IoError("cannot seek to start of " + path);
  }
  Bytes data(static_cast<size_t>(size));
  size_t got =
      data.empty() ? 0 : std::fread(data.data(), 1, data.size(), f);
  std::fclose(f);
  if (got != data.size()) return IoError("short read from " + path);
  return data;
}

Status FsyncDir(const std::string& dir) {
  const char* name = dir.empty() ? "." : dir.c_str();
  int fd = ::open(name, O_RDONLY | O_DIRECTORY);
  if (fd < 0) return IoError("cannot open directory " + dir);
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return IoError("fsync failed for directory " + dir);
  return OkStatus();
}

Status WriteWholeFileDurable(const std::string& path, ByteView data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return IoError("cannot create " + path);
  bool ok = true;
  if (!data.empty()) {
    ok = std::fwrite(data.data(), 1, data.size(), f) == data.size();
  }
  // fflush moves the stdio buffer into the kernel; fsync moves the kernel
  // page cache onto the device. Durability needs both, and fclose can still
  // report a deferred write error.
  if (std::fflush(f) != 0) ok = false;
  if (::fsync(::fileno(f)) != 0) ok = false;
  if (std::fclose(f) != 0) ok = false;
  if (!ok) return IoError("durable write to " + path + " failed");
  // A newly created file's name lives in the directory; the entry is durable
  // only once the directory itself is flushed.
  size_t slash = path.find_last_of('/');
  return FsyncDir(slash == std::string::npos ? std::string()
                                             : path.substr(0, slash));
}

}  // namespace tdb
