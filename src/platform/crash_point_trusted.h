// Crash-point injection wrappers for the trusted platform stores (see
// src/common/crash_point.h for the protocol). The tamper-resistant register
// and the monotonic counter are contractually crash-atomic and durable on
// return, so their update operations are single all-or-nothing crash points —
// never torn. Reads pass through until the crash trips and fail afterwards.

#ifndef SRC_PLATFORM_CRASH_POINT_TRUSTED_H_
#define SRC_PLATFORM_CRASH_POINT_TRUSTED_H_

#include "src/common/crash_point.h"
#include "src/platform/trusted_store.h"

namespace tdb {

class CrashPointRegister final : public TamperResistantRegister {
 public:
  CrashPointRegister(TamperResistantRegister* base,
                     CrashPointController* controller)
      : base_(base), controller_(controller) {}

  Result<Bytes> Read() const override;
  Status Write(ByteView value) override;

 private:
  TamperResistantRegister* base_;
  CrashPointController* controller_;
};

class CrashPointCounter final : public MonotonicCounter {
 public:
  CrashPointCounter(MonotonicCounter* base, CrashPointController* controller)
      : base_(base), controller_(controller) {}

  Result<uint64_t> Read() const override;
  Status AdvanceTo(uint64_t value) override;

 private:
  MonotonicCounter* base_;
  CrashPointController* controller_;
};

}  // namespace tdb

#endif  // SRC_PLATFORM_CRASH_POINT_TRUSTED_H_
