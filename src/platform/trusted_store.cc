#include "src/platform/trusted_store.h"

#include <filesystem>
#include <thread>

#include "src/common/pickle.h"
#include "src/obs/profiler.h"
#include "src/platform/file_util.h"
#include "src/crypto/sha256.h"

namespace tdb {

void ApplyTrustedStoreLatency(const TrustedStoreOptions& options) {
  if (options.write_latency.count() > 0) {
    std::this_thread::sleep_for(options.write_latency);
  }
}

Status MemTamperResistantRegister::Write(ByteView value) {
  ApplyTrustedStoreLatency(options_);
  ProfileCount("tamper_resistant_store.writes");
  value_.assign(value.begin(), value.end());
  return OkStatus();
}

Status MemMonotonicCounter::AdvanceTo(uint64_t value) {
  if (value < value_) {
    return InvalidArgumentError("monotonic counter cannot be decremented");
  }
  ApplyTrustedStoreLatency(options_);
  ProfileCount("tamper_resistant_store.writes");
  value_ = value;
  return OkStatus();
}

namespace {

// On-disk slot: u64 sequence, pickled payload, sha256 checksum over both.
Bytes EncodeSlot(uint64_t sequence, ByteView payload) {
  PickleWriter w;
  w.WriteU64(sequence);
  w.WriteBytes(payload);
  Bytes body = w.Take();
  Bytes check = Sha256::Hash(body);
  PickleWriter out;
  out.WriteBytes(body);
  out.WriteBytes(check);
  return out.Take();
}

struct DecodedSlot {
  uint64_t sequence;
  Bytes payload;
};

Result<DecodedSlot> DecodeSlot(ByteView raw) {
  PickleReader outer(raw);
  Bytes body = outer.ReadBytes();
  Bytes check = outer.ReadBytes();
  TDB_RETURN_IF_ERROR(outer.Check());
  if (!ConstantTimeEqual(Sha256::Hash(body), check)) {
    return CorruptionError("trusted register slot checksum mismatch");
  }
  PickleReader inner(body);
  DecodedSlot slot;
  slot.sequence = inner.ReadU64();
  slot.payload = inner.ReadBytes();
  TDB_RETURN_IF_ERROR(inner.Done());
  return slot;
}

}  // namespace

std::string FileTamperResistantRegister::SlotPathForTesting(
    const std::string& base, int slot) {
  return base + ".slot" + std::to_string(slot);
}

namespace {

std::string SlotPath(const std::string& base, int slot) {
  return FileTamperResistantRegister::SlotPathForTesting(base, slot);
}

}  // namespace

Result<std::unique_ptr<FileTamperResistantRegister>>
FileTamperResistantRegister::Open(const std::string& path,
                                  TrustedStoreOptions options) {
  auto reg = std::unique_ptr<FileTamperResistantRegister>(
      new FileTamperResistantRegister(path, options));
  // Prime the cache: pick the valid slot with the highest sequence.
  uint64_t best_seq = 0;
  bool found = false;
  Bytes best_payload;
  for (int slot = 0; slot < 2; ++slot) {
    Result<Bytes> raw = ReadWholeFile(SlotPath(path, slot));
    if (!raw.ok()) {
      continue;
    }
    Result<DecodedSlot> decoded = DecodeSlot(*raw);
    if (!decoded.ok()) {
      continue;
    }
    if (!found || decoded->sequence > best_seq) {
      found = true;
      best_seq = decoded->sequence;
      best_payload = std::move(decoded->payload);
    }
  }
  if (found) {
    reg->sequence_ = best_seq;
    reg->cached_ = std::move(best_payload);
    reg->have_cached_ = true;
  }
  return reg;
}

Result<Bytes> FileTamperResistantRegister::Read() const {
  if (!have_cached_) {
    return Bytes{};
  }
  return cached_;
}

Status FileTamperResistantRegister::Write(ByteView value) {
  ApplyTrustedStoreLatency(options_);
  ProfileCount("tamper_resistant_store.writes");
  uint64_t next_seq = sequence_ + 1;
  // Alternate slots so the previous value survives a torn write.
  int slot = static_cast<int>(next_seq % 2);
  // Durable write: fsync the slot data and the containing directory — the
  // register's crash-atomicity contract is void if either slot can still sit
  // in a volatile cache when Write() returns.
  TDB_RETURN_IF_ERROR(WriteWholeFileDurable(SlotPath(path_, slot),
                                            EncodeSlot(next_seq, value)));
  sequence_ = next_seq;
  cached_.assign(value.begin(), value.end());
  have_cached_ = true;
  return OkStatus();
}

Result<std::unique_ptr<FileMonotonicCounter>> FileMonotonicCounter::Open(
    const std::string& path, TrustedStoreOptions options) {
  TDB_ASSIGN_OR_RETURN(std::unique_ptr<FileTamperResistantRegister> reg,
                       FileTamperResistantRegister::Open(path, options));
  return std::unique_ptr<FileMonotonicCounter>(
      new FileMonotonicCounter(std::move(reg)));
}

Result<uint64_t> FileMonotonicCounter::Read() const {
  TDB_ASSIGN_OR_RETURN(Bytes raw, reg_->Read());
  if (raw.empty()) {
    return static_cast<uint64_t>(0);
  }
  if (raw.size() != 8) {
    return CorruptionError("counter register has unexpected size");
  }
  return GetU64(raw.data());
}

Status FileMonotonicCounter::AdvanceTo(uint64_t value) {
  TDB_ASSIGN_OR_RETURN(uint64_t current, Read());
  if (value < current) {
    return InvalidArgumentError("monotonic counter cannot be decremented");
  }
  Bytes enc;
  PutU64(enc, value);
  return reg_->Write(enc);
}

}  // namespace tdb
