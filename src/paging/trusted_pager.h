// Trusted paging (§10 "Potential extensions"): the trusted processing
// environment protects only a bounded amount of volatile memory, so a
// trusted program whose state outgrows it must page to untrusted storage.
// "This problem may be solved by using a page fault handler to store
// encrypted and validated pages in the chunk store."
//
// TrustedPager models that handler: a flat page-addressed space with a
// bounded resident set. Faulted-in pages are decrypted and validated by the
// chunk store; evicted dirty pages are encrypted, hashed, and committed.
// Any tampering with a paged-out page surfaces as kTamperDetected at
// fault-in time.

#ifndef SRC_PAGING_TRUSTED_PAGER_H_
#define SRC_PAGING_TRUSTED_PAGER_H_

#include <list>
#include <map>
#include <memory>

#include "src/chunk/chunk_store.h"

namespace tdb {

struct TrustedPagerOptions {
  size_t page_size = 4096;
  // Maximum pages held in trusted memory; beyond this, LRU pages are paged
  // out to the chunk store.
  size_t resident_pages = 16;
  // Dirty evictions are buffered and committed in groups of this many pages
  // to amortize commit overhead.
  size_t writeback_batch = 4;
};

class TrustedPager {
 public:
  // Pages live in their own partition with the given parameters.
  static Result<std::unique_ptr<TrustedPager>> Create(
      ChunkStore* chunks, CryptoParams params, TrustedPagerOptions options = {});

  // Byte-addressed access across page boundaries; pages are faulted in and
  // allocated on demand (unbacked reads return zeros).
  Status Write(uint64_t address, ByteView data);
  Result<Bytes> Read(uint64_t address, size_t length);

  // Pages out all dirty state (e.g., before the trusted environment is
  // suspended).
  Status FlushAll();

  struct Stats {
    uint64_t faults = 0;       // pages loaded from the chunk store
    uint64_t evictions = 0;    // pages dropped from trusted memory
    uint64_t writebacks = 0;   // dirty pages committed
  };
  Stats stats() const { return stats_; }
  size_t resident_count() const { return resident_.size(); }
  PartitionId partition() const { return partition_; }

 private:
  TrustedPager(ChunkStore* chunks, PartitionId partition,
               TrustedPagerOptions options)
      : chunks_(chunks), partition_(partition), options_(options) {}

  struct Page {
    Bytes data;
    bool dirty = false;
    std::list<uint64_t>::iterator lru_it;
  };

  // Faults the page in (or materializes a zero page) and returns it.
  Result<Page*> Touch(uint64_t page_no, bool will_write);
  Status EvictIfNeeded();
  Status WriteBack(const std::vector<uint64_t>& page_numbers);

  ChunkStore* chunks_;
  PartitionId partition_;
  TrustedPagerOptions options_;
  std::map<uint64_t, Page> resident_;
  std::list<uint64_t> lru_;  // front = most recent
  std::map<uint64_t, ChunkId> backing_;  // page -> chunk (once paged out)
  Stats stats_;
};

}  // namespace tdb

#endif  // SRC_PAGING_TRUSTED_PAGER_H_
