#include "src/paging/trusted_pager.h"

#include <algorithm>
#include <cstring>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace tdb {

Result<std::unique_ptr<TrustedPager>> TrustedPager::Create(
    ChunkStore* chunks, CryptoParams params, TrustedPagerOptions options) {
  if (options.page_size == 0 || options.resident_pages == 0) {
    return InvalidArgumentError("page size and resident capacity must be > 0");
  }
  TDB_ASSIGN_OR_RETURN(PartitionId partition, chunks->AllocatePartition());
  ChunkStore::Batch batch;
  batch.WritePartition(partition, std::move(params));
  TDB_RETURN_IF_ERROR(chunks->Commit(std::move(batch)));
  return std::unique_ptr<TrustedPager>(
      new TrustedPager(chunks, partition, options));
}

Result<TrustedPager::Page*> TrustedPager::Touch(uint64_t page_no,
                                                bool will_write) {
  auto it = resident_.find(page_no);
  if (it != resident_.end()) {
    lru_.erase(it->second.lru_it);
    lru_.push_front(page_no);
    it->second.lru_it = lru_.begin();
    it->second.dirty |= will_write;
    obs::Count("paging.page_hits");
    obs::TraceEmit(obs::TraceKind::kCacheHit, "paging", page_no);
    return &it->second;
  }
  // Page fault: load from the chunk store (validated) or make a zero page.
  Bytes data;
  auto backing = backing_.find(page_no);
  if (backing != backing_.end()) {
    TDB_ASSIGN_OR_RETURN(data, chunks_->Read(backing->second));
    if (data.size() != options_.page_size) {
      return TamperDetectedError("paged-out page has wrong size");
    }
    ++stats_.faults;
    obs::Count("paging.faults");
    obs::TraceEmit(obs::TraceKind::kPageFault, "paging", page_no);
  } else {
    data.assign(options_.page_size, 0);
    obs::Count("paging.zero_fills");
  }
  TDB_RETURN_IF_ERROR(EvictIfNeeded());
  lru_.push_front(page_no);
  Page& page = resident_[page_no];
  page.data = std::move(data);
  page.dirty = will_write;
  page.lru_it = lru_.begin();
  return &page;
}

Status TrustedPager::EvictIfNeeded() {
  if (resident_.size() < options_.resident_pages) {
    return OkStatus();
  }
  // Gather LRU victims; write dirty ones back in one commit.
  std::vector<uint64_t> dirty_victims;
  std::vector<uint64_t> victims;
  size_t needed = resident_.size() + 1 - options_.resident_pages;
  size_t batch = std::max(needed, options_.writeback_batch);
  for (auto it = lru_.rbegin(); it != lru_.rend() && victims.size() < batch;
       ++it) {
    victims.push_back(*it);
    if (resident_[*it].dirty) {
      dirty_victims.push_back(*it);
    }
  }
  TDB_RETURN_IF_ERROR(WriteBack(dirty_victims));
  for (uint64_t page_no : victims) {
    auto it = resident_.find(page_no);
    lru_.erase(it->second.lru_it);
    resident_.erase(it);
    ++stats_.evictions;
    obs::TraceEmit(obs::TraceKind::kCacheEviction, "paging", page_no);
  }
  obs::Count("paging.evictions", victims.size());
  return OkStatus();
}

Status TrustedPager::WriteBack(const std::vector<uint64_t>& page_numbers) {
  if (page_numbers.empty()) {
    return OkStatus();
  }
  ChunkStore::Batch batch;
  for (uint64_t page_no : page_numbers) {
    if (backing_.count(page_no) == 0) {
      TDB_ASSIGN_OR_RETURN(ChunkId id, chunks_->AllocateChunk(partition_));
      backing_[page_no] = id;
    }
    batch.WriteChunk(backing_[page_no], resident_[page_no].data);
  }
  TDB_RETURN_IF_ERROR(chunks_->Commit(std::move(batch)));
  for (uint64_t page_no : page_numbers) {
    resident_[page_no].dirty = false;
    ++stats_.writebacks;
    obs::TraceEmit(obs::TraceKind::kPageWriteback, "paging", page_no);
  }
  obs::Count("paging.writebacks", page_numbers.size());
  return OkStatus();
}

Status TrustedPager::Write(uint64_t address, ByteView data) {
  size_t written = 0;
  while (written < data.size()) {
    uint64_t page_no = (address + written) / options_.page_size;
    size_t offset = (address + written) % options_.page_size;
    size_t take = std::min(data.size() - written, options_.page_size - offset);
    TDB_ASSIGN_OR_RETURN(Page * page, Touch(page_no, /*will_write=*/true));
    std::memcpy(page->data.data() + offset, data.data() + written, take);
    written += take;
  }
  return OkStatus();
}

Result<Bytes> TrustedPager::Read(uint64_t address, size_t length) {
  Bytes out;
  out.reserve(length);
  size_t read = 0;
  while (read < length) {
    uint64_t page_no = (address + read) / options_.page_size;
    size_t offset = (address + read) % options_.page_size;
    size_t take = std::min(length - read, options_.page_size - offset);
    TDB_ASSIGN_OR_RETURN(Page * page, Touch(page_no, /*will_write=*/false));
    out.insert(out.end(), page->data.begin() + offset,
               page->data.begin() + offset + take);
    read += take;
  }
  return out;
}

Status TrustedPager::FlushAll() {
  std::vector<uint64_t> dirty;
  for (const auto& [page_no, page] : resident_) {
    if (page.dirty) {
      dirty.push_back(page_no);
    }
  }
  return WriteBack(dirty);
}

}  // namespace tdb
