// POSIX TCP transport: length-prefixed binary framing (4-byte big-endian
// frame length, then the frame body), poll-based read/write timeouts on
// non-blocking sockets, TCP_NODELAY (frames are latency-sensitive RPCs),
// and graceful shutdown — Close() half-closes the socket so an in-flight
// Recv on another thread (or on the peer) unblocks, and a Listener uses a
// self-pipe so Shutdown() wakes a blocked Accept.
//
// Addresses are "ip:port" with a numeric IPv4 ip, e.g. "127.0.0.1:7478";
// port 0 binds an ephemeral port, resolved by Listener::address().
// Frames larger than kMaxFrameBytes are rejected as corruption — an
// untrusted network peer must not be able to make the server allocate
// arbitrary memory from a 4-byte header.

#ifndef SRC_NET_TCP_H_
#define SRC_NET_TCP_H_

#include <cstddef>
#include <string>

#include "src/net/transport.h"

namespace tdb::net {

inline constexpr size_t kMaxFrameBytes = 16 * 1024 * 1024;

class TcpTransport : public Transport {
 public:
  Result<std::unique_ptr<Listener>> Listen(const std::string& address) override;

  Result<std::unique_ptr<Connection>> Connect(
      const std::string& address, std::chrono::milliseconds timeout) override;
};

}  // namespace tdb::net

#endif  // SRC_NET_TCP_H_
