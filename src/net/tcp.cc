#include "src/net/tcp.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace tdb::net {

namespace {

using Clock = std::chrono::steady_clock;

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

Status ParseAddress(const std::string& address, sockaddr_in* out) {
  size_t colon = address.rfind(':');
  if (colon == std::string::npos) {
    return InvalidArgumentError("tcp address must be ip:port, got \"" +
                                address + "\"");
  }
  std::string host = address.substr(0, colon);
  if (host.empty()) {
    host = "0.0.0.0";
  }
  char* end = nullptr;
  long port = std::strtol(address.c_str() + colon + 1, &end, 10);
  if (end == address.c_str() + colon + 1 || *end != '\0' || port < 0 ||
      port > 65535) {
    return InvalidArgumentError("bad tcp port in \"" + address + "\"");
  }
  std::memset(out, 0, sizeof(*out));
  out->sin_family = AF_INET;
  out->sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &out->sin_addr) != 1) {
    return InvalidArgumentError("tcp host must be a numeric IPv4 address: \"" +
                                host + "\"");
  }
  return OkStatus();
}

std::string FormatAddress(const sockaddr_in& sa) {
  char host[INET_ADDRSTRLEN] = "?";
  inet_ntop(AF_INET, &sa.sin_addr, host, sizeof(host));
  return std::string(host) + ":" + std::to_string(ntohs(sa.sin_port));
}

Status SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return IoError(Errno("fcntl(O_NONBLOCK)"));
  }
  return OkStatus();
}

void SetNoDelay(int fd) {
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

// Waits for `events` on fd until `deadline`. Returns 1 when ready, 0 on
// deadline expiry, -1 on poll error (errno set).
int PollFd(int fd, short events, Clock::time_point deadline) {
  for (;;) {
    auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    if (remaining.count() < 0) {
      return 0;
    }
    pollfd p{fd, events, 0};
    int r = poll(&p, 1, static_cast<int>(remaining.count()) + 1);
    if (r < 0 && errno == EINTR) {
      continue;
    }
    if (r == 0) {
      continue;  // re-check the deadline
    }
    return r;
  }
}

class TcpConnection final : public Connection {
 public:
  TcpConnection(int fd, std::string peer) : fd_(fd), peer_(std::move(peer)) {}

  ~TcpConnection() override {
    Close();
    ::close(fd_);
  }

  Status Send(ByteView frame, std::chrono::milliseconds timeout) override {
    if (frame.size() > kMaxFrameBytes) {
      return InvalidArgumentError("tcp frame exceeds kMaxFrameBytes");
    }
    auto deadline = Clock::now() + timeout;
    uint8_t header[4] = {static_cast<uint8_t>(frame.size() >> 24),
                         static_cast<uint8_t>(frame.size() >> 16),
                         static_cast<uint8_t>(frame.size() >> 8),
                         static_cast<uint8_t>(frame.size())};
    TDB_RETURN_IF_ERROR(WriteAll(header, sizeof(header), deadline));
    return WriteAll(frame.data(), frame.size(), deadline);
  }

  Result<Bytes> Recv(std::chrono::milliseconds timeout) override {
    auto deadline = Clock::now() + timeout;
    uint8_t header[4];
    // A timeout before the first header byte leaves the stream intact and
    // is reported as kTimeout; a stall mid-frame breaks framing and is an
    // I/O error.
    TDB_RETURN_IF_ERROR(
        ReadAll(header, sizeof(header), deadline, /*idle_ok=*/true));
    uint32_t len = static_cast<uint32_t>(header[0]) << 24 |
                   static_cast<uint32_t>(header[1]) << 16 |
                   static_cast<uint32_t>(header[2]) << 8 |
                   static_cast<uint32_t>(header[3]);
    if (len > kMaxFrameBytes) {
      return CorruptionError("tcp frame length " + std::to_string(len) +
                             " exceeds the " +
                             std::to_string(kMaxFrameBytes) + "-byte cap");
    }
    Bytes body(len);
    TDB_RETURN_IF_ERROR(ReadAll(body.data(), len, deadline, /*idle_ok=*/false));
    return body;
  }

  void Close() override {
    if (!closed_.exchange(true)) {
      // Half-close both directions; the fd itself stays open until the
      // destructor so a concurrent Send/Recv never races a reused fd.
      ::shutdown(fd_, SHUT_RDWR);
    }
  }

  std::string peer() const override { return peer_; }

 private:
  Status WriteAll(const uint8_t* data, size_t n, Clock::time_point deadline) {
    size_t off = 0;
    while (off < n) {
      ssize_t w = ::send(fd_, data + off, n - off, MSG_NOSIGNAL);
      if (w > 0) {
        off += static_cast<size_t>(w);
        continue;
      }
      if (w < 0 && errno == EINTR) {
        continue;
      }
      if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        int r = PollFd(fd_, POLLOUT, deadline);
        if (r == 0) {
          return TimeoutError("tcp send timed out");
        }
        if (r < 0) {
          return IoError(Errno("poll"));
        }
        continue;
      }
      return IoError(Errno("tcp send"));
    }
    return OkStatus();
  }

  Status ReadAll(uint8_t* data, size_t n, Clock::time_point deadline,
                 bool idle_ok) {
    size_t off = 0;
    while (off < n) {
      ssize_t r = ::recv(fd_, data + off, n - off, 0);
      if (r > 0) {
        off += static_cast<size_t>(r);
        continue;
      }
      if (r == 0) {
        return off == 0 && idle_ok
                   ? IoError("tcp connection closed by peer")
                   : IoError("tcp connection closed mid-frame");
      }
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        int p = PollFd(fd_, POLLIN, deadline);
        if (p == 0) {
          return off == 0 && idle_ok ? TimeoutError("tcp recv timed out")
                                     : IoError("tcp recv stalled mid-frame");
        }
        if (p < 0) {
          return IoError(Errno("poll"));
        }
        continue;
      }
      return IoError(Errno("tcp recv"));
    }
    return OkStatus();
  }

  int fd_;
  std::atomic<bool> closed_{false};
  std::string peer_;
};

class TcpListener final : public Listener {
 public:
  TcpListener(int fd, int wake_rd, int wake_wr, std::string address)
      : fd_(fd), wake_rd_(wake_rd), wake_wr_(wake_wr),
        address_(std::move(address)) {}

  ~TcpListener() override {
    Shutdown();
    ::close(fd_);
    ::close(wake_rd_);
    ::close(wake_wr_);
  }

  Result<std::unique_ptr<Connection>> Accept(
      std::chrono::milliseconds timeout) override {
    auto deadline = Clock::now() + timeout;
    for (;;) {
      if (shutdown_.load(std::memory_order_acquire)) {
        return FailedPreconditionError("listener shut down");
      }
      pollfd fds[2] = {{fd_, POLLIN, 0}, {wake_rd_, POLLIN, 0}};
      auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - Clock::now());
      if (remaining.count() < 0) {
        return TimeoutError("accept timed out");
      }
      int r = poll(fds, 2, static_cast<int>(remaining.count()) + 1);
      if (r < 0 && errno == EINTR) {
        continue;
      }
      if (r < 0) {
        return IoError(Errno("poll"));
      }
      if (r == 0) {
        continue;  // re-check deadline / shutdown
      }
      if (fds[1].revents != 0) {
        return FailedPreconditionError("listener shut down");
      }
      sockaddr_in sa{};
      socklen_t salen = sizeof(sa);
      int cfd = ::accept(fd_, reinterpret_cast<sockaddr*>(&sa), &salen);
      if (cfd < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
            errno == ECONNABORTED) {
          continue;
        }
        return IoError(Errno("accept"));
      }
      Status nb = SetNonBlocking(cfd);
      if (!nb.ok()) {
        ::close(cfd);
        return nb;
      }
      SetNoDelay(cfd);
      return std::unique_ptr<Connection>(
          new TcpConnection(cfd, FormatAddress(sa)));
    }
  }

  std::string address() const override { return address_; }

  void Shutdown() override {
    if (!shutdown_.exchange(true, std::memory_order_acq_rel)) {
      uint8_t byte = 1;
      (void)!::write(wake_wr_, &byte, 1);
    }
  }

 private:
  int fd_;
  int wake_rd_;
  int wake_wr_;
  std::string address_;
  std::atomic<bool> shutdown_{false};
};

}  // namespace

Result<std::unique_ptr<Listener>> TcpTransport::Listen(
    const std::string& address) {
  sockaddr_in sa{};
  TDB_RETURN_IF_ERROR(ParseAddress(address, &sa));
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return IoError(Errno("socket"));
  }
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) < 0 ||
      ::listen(fd, 128) < 0) {
    Status s = IoError(Errno("bind/listen"));
    ::close(fd);
    return s;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    Status s = IoError(Errno("getsockname"));
    ::close(fd);
    return s;
  }
  Status nb = SetNonBlocking(fd);
  if (!nb.ok()) {
    ::close(fd);
    return nb;
  }
  int wake[2];
  if (::pipe(wake) < 0) {
    Status s = IoError(Errno("pipe"));
    ::close(fd);
    return s;
  }
  return std::unique_ptr<Listener>(
      new TcpListener(fd, wake[0], wake[1], FormatAddress(bound)));
}

Result<std::unique_ptr<Connection>> TcpTransport::Connect(
    const std::string& address, std::chrono::milliseconds timeout) {
  sockaddr_in sa{};
  TDB_RETURN_IF_ERROR(ParseAddress(address, &sa));
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return IoError(Errno("socket"));
  }
  Status nb = SetNonBlocking(fd);
  if (!nb.ok()) {
    ::close(fd);
    return nb;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) < 0) {
    if (errno != EINPROGRESS) {
      Status s = IoError(Errno("connect"));
      ::close(fd);
      return s;
    }
    int r = PollFd(fd, POLLOUT, Clock::now() + timeout);
    if (r <= 0) {
      ::close(fd);
      return r == 0 ? TimeoutError("tcp connect timed out")
                    : IoError(Errno("poll"));
    }
    int err = 0;
    socklen_t errlen = sizeof(err);
    if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &errlen) < 0 || err != 0) {
      ::close(fd);
      errno = err != 0 ? err : errno;
      return IoError(Errno("connect"));
    }
  }
  SetNoDelay(fd);
  return std::unique_ptr<Connection>(new TcpConnection(fd, address));
}

}  // namespace tdb::net
