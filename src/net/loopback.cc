#include "src/net/loopback.h"

#include <condition_variable>
#include <deque>
#include <utility>

namespace tdb::net {

namespace {

// One direction of a loopback connection.
struct FrameQueue {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Bytes> frames;
  bool closed = false;

  Status Push(ByteView frame) {
    {
      std::lock_guard<std::mutex> lock(mu);
      if (closed) {
        return IoError("loopback connection closed");
      }
      frames.emplace_back(frame.begin(), frame.end());
    }
    cv.notify_one();
    return OkStatus();
  }

  Result<Bytes> Pop(std::chrono::milliseconds timeout) {
    std::unique_lock<std::mutex> lock(mu);
    if (!cv.wait_for(lock, timeout,
                     [this] { return !frames.empty() || closed; })) {
      return TimeoutError("loopback recv timed out");
    }
    if (frames.empty()) {  // closed and fully drained
      return IoError("loopback connection closed");
    }
    Bytes frame = std::move(frames.front());
    frames.pop_front();
    return frame;
  }

  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu);
      closed = true;
    }
    cv.notify_all();
  }
};

class LoopbackConnection final : public Connection {
 public:
  LoopbackConnection(std::shared_ptr<FrameQueue> in,
                     std::shared_ptr<FrameQueue> out, std::string peer)
      : in_(std::move(in)), out_(std::move(out)), peer_(std::move(peer)) {}

  ~LoopbackConnection() override { Close(); }

  Status Send(ByteView frame, std::chrono::milliseconds /*timeout*/) override {
    // The queue is unbounded, so a send either succeeds immediately or the
    // peer is gone; the timeout never comes into play.
    return out_->Push(frame);
  }

  Result<Bytes> Recv(std::chrono::milliseconds timeout) override {
    return in_->Pop(timeout);
  }

  void Close() override {
    in_->Close();
    out_->Close();
  }

  std::string peer() const override { return peer_; }

 private:
  std::shared_ptr<FrameQueue> in_;
  std::shared_ptr<FrameQueue> out_;
  std::string peer_;
};

}  // namespace

struct LoopbackTransport::ListenerState {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::unique_ptr<Connection>> pending;
  bool shutdown = false;
};

struct LoopbackTransport::Registry {
  std::mutex mu;
  std::map<std::string, std::shared_ptr<ListenerState>> listeners;
};

namespace {

class LoopbackListener final : public Listener {
 public:
  LoopbackListener(std::shared_ptr<LoopbackTransport::Registry> registry,
                   std::shared_ptr<LoopbackTransport::ListenerState> state,
                   std::string address)
      : registry_(std::move(registry)),
        state_(std::move(state)),
        address_(std::move(address)) {}

  ~LoopbackListener() override { Shutdown(); }

  Result<std::unique_ptr<Connection>> Accept(
      std::chrono::milliseconds timeout) override {
    std::unique_lock<std::mutex> lock(state_->mu);
    if (!state_->cv.wait_for(lock, timeout, [this] {
          return !state_->pending.empty() || state_->shutdown;
        })) {
      return TimeoutError("accept timed out");
    }
    if (state_->shutdown) {
      return FailedPreconditionError("listener shut down");
    }
    std::unique_ptr<Connection> conn = std::move(state_->pending.front());
    state_->pending.pop_front();
    return conn;
  }

  std::string address() const override { return address_; }

  void Shutdown() override {
    {
      std::lock_guard<std::mutex> lock(registry_->mu);
      auto it = registry_->listeners.find(address_);
      if (it != registry_->listeners.end() && it->second == state_) {
        registry_->listeners.erase(it);
      }
    }
    std::deque<std::unique_ptr<Connection>> orphaned;
    {
      std::lock_guard<std::mutex> lock(state_->mu);
      state_->shutdown = true;
      orphaned.swap(state_->pending);
    }
    state_->cv.notify_all();
    for (auto& conn : orphaned) {
      conn->Close();  // never-accepted clients observe a closed connection
    }
  }

 private:
  std::shared_ptr<LoopbackTransport::Registry> registry_;
  std::shared_ptr<LoopbackTransport::ListenerState> state_;
  std::string address_;
};

}  // namespace

LoopbackTransport::LoopbackTransport() : registry_(std::make_shared<Registry>()) {}

LoopbackTransport::~LoopbackTransport() = default;

Result<std::unique_ptr<Listener>> LoopbackTransport::Listen(
    const std::string& address) {
  if (address.empty()) {
    return InvalidArgumentError("loopback address must be non-empty");
  }
  auto state = std::make_shared<ListenerState>();
  {
    std::lock_guard<std::mutex> lock(registry_->mu);
    auto [it, inserted] = registry_->listeners.emplace(address, state);
    if (!inserted) {
      return AlreadyExistsError("already listening on loopback:" + address);
    }
  }
  return std::unique_ptr<Listener>(
      new LoopbackListener(registry_, std::move(state), address));
}

Result<std::unique_ptr<Connection>> LoopbackTransport::Connect(
    const std::string& address, std::chrono::milliseconds /*timeout*/) {
  std::shared_ptr<ListenerState> state;
  {
    std::lock_guard<std::mutex> lock(registry_->mu);
    auto it = registry_->listeners.find(address);
    if (it == registry_->listeners.end()) {
      return NotFoundError("no loopback listener at " + address);
    }
    state = it->second;
  }
  auto client_to_server = std::make_shared<FrameQueue>();
  auto server_to_client = std::make_shared<FrameQueue>();
  auto server_side = std::make_unique<LoopbackConnection>(
      client_to_server, server_to_client, "loopback-client");
  auto client_side = std::make_unique<LoopbackConnection>(
      server_to_client, client_to_server, "loopback:" + address);
  {
    std::lock_guard<std::mutex> lock(state->mu);
    if (state->shutdown) {
      return NotFoundError("loopback listener at " + address + " shut down");
    }
    state->pending.push_back(std::move(server_side));
  }
  state->cv.notify_one();
  return std::unique_ptr<Connection>(std::move(client_side));
}

}  // namespace tdb::net
