// In-process loopback transport: connections are pairs of bounded-latency
// frame queues, addresses are arbitrary strings scoped to one transport
// instance. Deterministic and dependency-free — the transport used by the
// server tests (including under sanitizers) and the server bench, so the
// full client/server/request/commit path runs with no sockets involved.
//
// Queues are unbounded: tests drive bounded request/response traffic, and
// the synchronous wire protocol above (one outstanding request per
// connection) keeps depth at one in practice.

#ifndef SRC_NET_LOOPBACK_H_
#define SRC_NET_LOOPBACK_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "src/net/transport.h"

namespace tdb::net {

class LoopbackTransport : public Transport {
 public:
  LoopbackTransport();
  ~LoopbackTransport() override;

  // Any non-empty string is a valid address; Listen fails with
  // kAlreadyExists if something is already listening on it.
  Result<std::unique_ptr<Listener>> Listen(const std::string& address) override;

  // Fails with kNotFound if nothing is listening at `address` (connections
  // are never silently queued against a future listener).
  Result<std::unique_ptr<Connection>> Connect(
      const std::string& address, std::chrono::milliseconds timeout) override;

  // Shared with the listener implementation in loopback.cc.
  struct ListenerState;
  struct Registry;

 private:
  std::shared_ptr<Registry> registry_;
};

}  // namespace tdb::net

#endif  // SRC_NET_LOOPBACK_H_
