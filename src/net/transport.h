// Message transport abstraction for the TDB service layer.
//
// A Transport produces Listeners (server side) and Connections (both
// sides). Connections move whole frames — one frame per request or
// response; framing (length prefixes, ordering) is the transport's job, so
// the wire format above this layer never sees partial messages.
//
// Two implementations exist:
//  * LoopbackTransport (loopback.h) — in-process queues; deterministic,
//    dependency-free, used by tests and the server bench.
//  * TcpTransport (tcp.h) — POSIX TCP with length-prefixed binary framing,
//    poll-based read/write timeouts, and graceful shutdown.
//
// Threading: a Connection supports one thread in Send concurrently with one
// thread in Recv; Close may be called from any thread to unblock both.
// Listener::Accept is single-consumer; Shutdown may be called from any
// thread and unblocks a pending Accept.

#ifndef SRC_NET_TRANSPORT_H_
#define SRC_NET_TRANSPORT_H_

#include <chrono>
#include <memory>
#include <string>

#include "src/common/bytes.h"
#include "src/common/status.h"

namespace tdb::net {

class Connection {
 public:
  virtual ~Connection() = default;

  // Sends one frame. Blocks at most `timeout`; returns kTimeout if the
  // frame could not be fully handed to the transport in time (the
  // connection is then in an undefined framing state and must be closed),
  // kIoError if the peer is gone.
  virtual Status Send(ByteView frame, std::chrono::milliseconds timeout) = 0;

  // Receives the next whole frame. Returns kTimeout if none arrived within
  // `timeout` (the connection remains usable), kIoError once the peer has
  // closed and all delivered frames were consumed.
  virtual Result<Bytes> Recv(std::chrono::milliseconds timeout) = 0;

  // Closes both directions and unblocks any in-flight Send/Recv on this
  // connection and, eventually, on the peer. Idempotent.
  virtual void Close() = 0;

  // Human-readable peer name for logs/metrics.
  virtual std::string peer() const = 0;
};

class Listener {
 public:
  virtual ~Listener() = default;

  // Waits up to `timeout` for an inbound connection. Returns kTimeout if
  // none arrived, kFailedPrecondition after Shutdown().
  virtual Result<std::unique_ptr<Connection>> Accept(
      std::chrono::milliseconds timeout) = 0;

  // The address clients should Connect to (with ephemeral TCP ports
  // resolved to the actually-bound port).
  virtual std::string address() const = 0;

  // Stops accepting: pending and future Accept calls return
  // kFailedPrecondition; connections not yet accepted are closed.
  // Idempotent.
  virtual void Shutdown() = 0;
};

class Transport {
 public:
  virtual ~Transport() = default;

  virtual Result<std::unique_ptr<Listener>> Listen(
      const std::string& address) = 0;

  virtual Result<std::unique_ptr<Connection>> Connect(
      const std::string& address, std::chrono::milliseconds timeout) = 0;
};

}  // namespace tdb::net

#endif  // SRC_NET_TRANSPORT_H_
