#include "src/crypto/suite.h"

#include "src/crypto/hmac.h"
#include "src/crypto/sha1.h"
#include "src/crypto/sha256.h"

namespace tdb {

std::string_view CipherAlgName(CipherAlg alg) {
  switch (alg) {
    case CipherAlg::kNone:
      return "none";
    case CipherAlg::kDes:
      return "des-cbc";
    case CipherAlg::kTripleDes:
      return "3des-cbc";
    case CipherAlg::kAes128:
      return "aes128-cbc";
  }
  return "unknown";
}

std::string_view HashAlgName(HashAlg alg) {
  switch (alg) {
    case HashAlg::kSha1:
      return "sha1";
    case HashAlg::kSha256:
      return "sha256";
  }
  return "unknown";
}

size_t CipherKeySize(CipherAlg alg) {
  switch (alg) {
    case CipherAlg::kNone:
      return 0;
    case CipherAlg::kDes:
      return Des::kKeySize;
    case CipherAlg::kTripleDes:
      return TripleDes::kKeySize;
    case CipherAlg::kAes128:
      return Aes128::kKeySize;
  }
  return 0;
}

size_t HashDigestSize(HashAlg alg) {
  switch (alg) {
    case HashAlg::kSha1:
      return Sha1::kDigestSize;
    case HashAlg::kSha256:
      return Sha256::kDigestSize;
  }
  return 0;
}

Bytes HashData(HashAlg alg, ByteView data) {
  switch (alg) {
    case HashAlg::kSha1:
      return Sha1::Hash(data);
    case HashAlg::kSha256:
      return Sha256::Hash(data);
  }
  return {};
}

StreamingHash::StreamingHash(HashAlg alg) : alg_(alg) {}

void StreamingHash::Update(ByteView data) {
  switch (alg_) {
    case HashAlg::kSha1:
      sha1_.Update(data);
      return;
    case HashAlg::kSha256:
      sha256_.Update(data);
      return;
  }
}

Bytes StreamingHash::Finish() {
  switch (alg_) {
    case HashAlg::kSha1:
      return sha1_.Finish();
    case HashAlg::kSha256:
      return sha256_.Finish();
  }
  return {};
}

Bytes MacData(HashAlg alg, ByteView key, ByteView data) {
  switch (alg) {
    case HashAlg::kSha1:
      return HmacSha1(key, data);
    case HashAlg::kSha256:
      return HmacSha256(key, data);
  }
  return {};
}

Result<std::unique_ptr<Cipher>> MakeCipher(CipherAlg alg, ByteView key) {
  switch (alg) {
    case CipherAlg::kNone:
      return std::unique_ptr<Cipher>(new NullCipher());
    case CipherAlg::kDes: {
      TDB_ASSIGN_OR_RETURN(Des des, Des::Create(key));
      return std::unique_ptr<Cipher>(new DesCbc(des, "des-cbc"));
    }
    case CipherAlg::kTripleDes: {
      TDB_ASSIGN_OR_RETURN(TripleDes tdes, TripleDes::Create(key));
      return std::unique_ptr<Cipher>(new TripleDesCbc(tdes, "3des-cbc"));
    }
    case CipherAlg::kAes128: {
      TDB_ASSIGN_OR_RETURN(Aes128 aes, Aes128::Create(key));
      return std::unique_ptr<Cipher>(new Aes128Cbc(aes, "aes128-cbc"));
    }
  }
  return InvalidArgumentError("unknown cipher algorithm");
}

void CryptoParams::Pickle(PickleWriter& w) const {
  w.WriteU8(static_cast<uint8_t>(cipher));
  w.WriteU8(static_cast<uint8_t>(hash));
  w.WriteBytes(key);
}

Result<CryptoParams> CryptoParams::Unpickle(PickleReader& r) {
  CryptoParams p;
  uint8_t cipher = r.ReadU8();
  uint8_t hash = r.ReadU8();
  p.key = r.ReadBytes();
  TDB_RETURN_IF_ERROR(r.Check());
  if (cipher > static_cast<uint8_t>(CipherAlg::kAes128)) {
    return CorruptionError("unknown cipher id in pickled params");
  }
  if (hash > static_cast<uint8_t>(HashAlg::kSha256)) {
    return CorruptionError("unknown hash id in pickled params");
  }
  p.cipher = static_cast<CipherAlg>(cipher);
  p.hash = static_cast<HashAlg>(hash);
  return p;
}

Result<CryptoSuite> CryptoSuite::Create(CryptoParams params) {
  if (params.key.size() != CipherKeySize(params.cipher) &&
      !(params.cipher == CipherAlg::kNone && !params.key.empty())) {
    // kNone still allows a key (used for MACs on unencrypted partitions).
    if (params.cipher != CipherAlg::kNone) {
      return InvalidArgumentError("key length does not match cipher");
    }
  }
  CryptoSuite suite(std::move(params));
  TDB_ASSIGN_OR_RETURN(std::unique_ptr<Cipher> cipher,
                       MakeCipher(suite.params_.cipher, suite.params_.key));
  suite.cipher_ = std::move(cipher);
  return suite;
}

}  // namespace tdb
