// AES-128 (FIPS 197). The modern block cipher offered as a per-partition
// option alongside the paper's DES/3DES ("There are other, more secure,
// algorithms that run faster than DES", §9.2.1).

#ifndef SRC_CRYPTO_AES_H_
#define SRC_CRYPTO_AES_H_

#include <cstdint>

#include "src/common/bytes.h"
#include "src/common/status.h"

namespace tdb {

class Aes128 {
 public:
  static constexpr size_t kBlockSize = 16;
  static constexpr size_t kKeySize = 16;

  static Result<Aes128> Create(ByteView key);

  void EncryptBlock(const uint8_t* in, uint8_t* out) const;
  void DecryptBlock(const uint8_t* in, uint8_t* out) const;

 private:
  Aes128() = default;
  void ExpandKey(const uint8_t* key);

  static constexpr int kRounds = 10;
  uint8_t round_keys_[(kRounds + 1) * 16];
};

}  // namespace tdb

#endif  // SRC_CRYPTO_AES_H_
