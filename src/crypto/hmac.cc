#include "src/crypto/hmac.h"

#include "src/crypto/sha1.h"
#include "src/crypto/sha256.h"

namespace tdb {

namespace {

template <typename HasherT>
Bytes HmacImpl(ByteView key, ByteView data) {
  constexpr size_t kBlock = HasherT::kBlockSize;
  Bytes k(key.begin(), key.end());
  if (k.size() > kBlock) {
    k = HasherT::Hash(k);
  }
  k.resize(kBlock, 0);

  Bytes ipad(kBlock), opad(kBlock);
  for (size_t i = 0; i < kBlock; ++i) {
    ipad[i] = static_cast<uint8_t>(k[i] ^ 0x36);
    opad[i] = static_cast<uint8_t>(k[i] ^ 0x5c);
  }

  HasherT inner;
  inner.Update(ipad);
  inner.Update(data);
  Bytes inner_digest = inner.Finish();

  HasherT outer;
  outer.Update(opad);
  outer.Update(inner_digest);
  return outer.Finish();
}

}  // namespace

Bytes HmacSha1(ByteView key, ByteView data) {
  return HmacImpl<Sha1>(key, data);
}

Bytes HmacSha256(ByteView key, ByteView data) {
  return HmacImpl<Sha256>(key, data);
}

}  // namespace tdb
