// SHA-256 (FIPS 180-2). The modern collision-resistant hash alternative
// offered for partitions whose data warrants stronger protection than SHA-1
// (the paper lets each partition pick its own hash function, §2.2).

#ifndef SRC_CRYPTO_SHA256_H_
#define SRC_CRYPTO_SHA256_H_

#include <cstdint>

#include "src/common/bytes.h"

namespace tdb {

class Sha256 {
 public:
  static constexpr size_t kDigestSize = 32;
  static constexpr size_t kBlockSize = 64;

  Sha256();

  void Update(ByteView data);
  // Finalizes and returns the 32-byte digest; resets for reuse.
  Bytes Finish();

  static Bytes Hash(ByteView data);

 private:
  void Reset();
  void ProcessBlock(const uint8_t* block) { ProcessBlocks(block, 1); }
  // Compresses `n` consecutive blocks, carrying the chaining state in
  // registers across blocks instead of reloading h_ per block.
  void ProcessBlocks(const uint8_t* data, size_t n);

  uint32_t h_[8];
  uint8_t buffer_[kBlockSize];
  size_t buffer_len_;
  uint64_t total_len_;
};

}  // namespace tdb

#endif  // SRC_CRYPTO_SHA256_H_
