#include "src/crypto/sha1.h"

#include <cstring>

namespace tdb {

namespace {
inline uint32_t Rotl32(uint32_t x, int n) { return (x << n) | (x >> (32 - n)); }
}  // namespace

Sha1::Sha1() { Reset(); }

void Sha1::Reset() {
  h_[0] = 0x67452301;
  h_[1] = 0xEFCDAB89;
  h_[2] = 0x98BADCFE;
  h_[3] = 0x10325476;
  h_[4] = 0xC3D2E1F0;
  buffer_len_ = 0;
  total_len_ = 0;
}

void Sha1::ProcessBlocks(const uint8_t* data, size_t n) {
  uint32_t h0 = h_[0], h1 = h_[1], h2 = h_[2], h3 = h_[3], h4 = h_[4];
  for (size_t blk = 0; blk < n; ++blk, data += kBlockSize) {
    uint32_t w[80];
    for (int i = 0; i < 16; ++i) {
      w[i] = static_cast<uint32_t>(data[i * 4]) << 24 |
             static_cast<uint32_t>(data[i * 4 + 1]) << 16 |
             static_cast<uint32_t>(data[i * 4 + 2]) << 8 |
             static_cast<uint32_t>(data[i * 4 + 3]);
    }
    for (int i = 16; i < 80; ++i) {
      w[i] = Rotl32(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
    }

    uint32_t a = h0, b = h1, c = h2, d = h3, e = h4;
    for (int i = 0; i < 80; ++i) {
      uint32_t f, k;
      if (i < 20) {
        f = (b & c) | (~b & d);
        k = 0x5A827999;
      } else if (i < 40) {
        f = b ^ c ^ d;
        k = 0x6ED9EBA1;
      } else if (i < 60) {
        f = (b & c) | (b & d) | (c & d);
        k = 0x8F1BBCDC;
      } else {
        f = b ^ c ^ d;
        k = 0xCA62C1D6;
      }
      uint32_t temp = Rotl32(a, 5) + f + e + k + w[i];
      e = d;
      d = c;
      c = Rotl32(b, 30);
      b = a;
      a = temp;
    }
    h0 += a;
    h1 += b;
    h2 += c;
    h3 += d;
    h4 += e;
  }
  h_[0] = h0;
  h_[1] = h1;
  h_[2] = h2;
  h_[3] = h3;
  h_[4] = h4;
}

void Sha1::Update(ByteView data) {
  if (data.empty()) {
    return;  // an empty view may carry a null pointer, which memcpy forbids
  }
  total_len_ += data.size();
  size_t pos = 0;
  if (buffer_len_ > 0) {
    size_t need = kBlockSize - buffer_len_;
    size_t take = data.size() < need ? data.size() : need;
    std::memcpy(buffer_ + buffer_len_, data.data(), take);
    buffer_len_ += take;
    pos = take;
    if (buffer_len_ == kBlockSize) {
      ProcessBlock(buffer_);
      buffer_len_ = 0;
    }
  }
  if (size_t whole = (data.size() - pos) / kBlockSize; whole > 0) {
    ProcessBlocks(data.data() + pos, whole);
    pos += whole * kBlockSize;
  }
  if (pos < data.size()) {
    std::memcpy(buffer_, data.data() + pos, data.size() - pos);
    buffer_len_ = data.size() - pos;
  }
}

Bytes Sha1::Finish() {
  uint64_t bit_len = total_len_ * 8;
  // Pad with 0x80, zeros to byte 56 of the final block, then the big-endian
  // 64-bit message bit length.
  buffer_[buffer_len_++] = 0x80;
  if (buffer_len_ > 56) {
    std::memset(buffer_ + buffer_len_, 0, kBlockSize - buffer_len_);
    ProcessBlock(buffer_);
    buffer_len_ = 0;
  }
  std::memset(buffer_ + buffer_len_, 0, 56 - buffer_len_);
  for (int i = 0; i < 8; ++i) {
    buffer_[56 + i] = static_cast<uint8_t>(bit_len >> (56 - 8 * i));
  }
  ProcessBlock(buffer_);

  Bytes digest(kDigestSize);
  for (int i = 0; i < 5; ++i) {
    digest[i * 4] = static_cast<uint8_t>(h_[i] >> 24);
    digest[i * 4 + 1] = static_cast<uint8_t>(h_[i] >> 16);
    digest[i * 4 + 2] = static_cast<uint8_t>(h_[i] >> 8);
    digest[i * 4 + 3] = static_cast<uint8_t>(h_[i]);
  }
  Reset();
  return digest;
}

Bytes Sha1::Hash(ByteView data) {
  Sha1 h;
  h.Update(data);
  return h.Finish();
}

}  // namespace tdb
