#include "src/crypto/cbc.h"

#include <cstring>

namespace tdb {

Bytes NullCipher::Encrypt(ByteView plaintext) {
  return Bytes(plaintext.begin(), plaintext.end());
}

Bytes NullCipher::EncryptWithSeq(uint64_t, ByteView plaintext) const {
  return Bytes(plaintext.begin(), plaintext.end());
}

Result<Bytes> NullCipher::Decrypt(ByteView ciphertext) const {
  return Bytes(ciphertext.begin(), ciphertext.end());
}

template <typename BlockCipherT>
Bytes CbcCipher<BlockCipherT>::Encrypt(ByteView plaintext) {
  return EncryptWithSeq(ReserveSeqs(1), plaintext);
}

template <typename BlockCipherT>
Bytes CbcCipher<BlockCipherT>::EncryptWithSeq(uint64_t seq,
                                              ByteView plaintext) const {
  constexpr size_t b = BlockCipherT::kBlockSize;
  size_t pad = b - plaintext.size() % b;  // 1..b
  size_t padded_size = plaintext.size() + pad;

  // One allocation, written in place: IV block then the CBC chain.
  Bytes out(b + padded_size);
  uint8_t counter_block[b] = {0};
  std::memcpy(counter_block, &seq, sizeof(seq) < b ? sizeof(seq) : b);
  block_.EncryptBlock(counter_block, out.data());  // IV = E_k(seq)

  const uint8_t* prev = out.data();
  uint8_t block[b];
  for (size_t off = 0; off < padded_size; off += b) {
    for (size_t i = 0; i < b; ++i) {
      size_t idx = off + i;
      uint8_t p = idx < plaintext.size() ? plaintext[idx]
                                         : static_cast<uint8_t>(pad);
      block[i] = static_cast<uint8_t>(p ^ prev[i]);
    }
    uint8_t* dst = out.data() + b + off;
    block_.EncryptBlock(block, dst);
    prev = dst;
  }
  return out;
}

template <typename BlockCipherT>
Result<Bytes> CbcCipher<BlockCipherT>::Decrypt(ByteView ciphertext) const {
  constexpr size_t b = BlockCipherT::kBlockSize;
  if (ciphertext.size() < 2 * b || ciphertext.size() % b != 0) {
    return CorruptionError("CBC: ciphertext length not a multiple of block");
  }
  Bytes out(ciphertext.size() - b);
  for (size_t off = b; off < ciphertext.size(); off += b) {
    uint8_t dec[b];
    block_.DecryptBlock(ciphertext.data() + off, dec);
    const uint8_t* prev = ciphertext.data() + off - b;  // IV for first block
    uint8_t* dst = out.data() + off - b;
    for (size_t i = 0; i < b; ++i) {
      dst[i] = static_cast<uint8_t>(dec[i] ^ prev[i]);
    }
  }
  // Strip PKCS#7 padding.
  uint8_t pad = out.back();
  if (pad == 0 || pad > b || pad > out.size()) {
    return CorruptionError("CBC: invalid padding");
  }
  for (size_t i = out.size() - pad; i < out.size(); ++i) {
    if (out[i] != pad) {
      return CorruptionError("CBC: invalid padding");
    }
  }
  out.resize(out.size() - pad);
  return out;
}

template class CbcCipher<Des>;
template class CbcCipher<TripleDes>;
template class CbcCipher<Aes128>;

}  // namespace tdb
