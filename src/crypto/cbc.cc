#include "src/crypto/cbc.h"

#include <cstring>

namespace tdb {

Bytes NullCipher::Encrypt(ByteView plaintext) {
  return Bytes(plaintext.begin(), plaintext.end());
}

Result<Bytes> NullCipher::Decrypt(ByteView ciphertext) const {
  return Bytes(ciphertext.begin(), ciphertext.end());
}

template <typename BlockCipherT>
Bytes CbcCipher<BlockCipherT>::NextIv() {
  constexpr size_t b = BlockCipherT::kBlockSize;
  uint8_t counter_block[b] = {0};
  uint64_t c = ++iv_counter_;
  std::memcpy(counter_block, &c, sizeof(c) < b ? sizeof(c) : b);
  Bytes iv(b);
  block_.EncryptBlock(counter_block, iv.data());
  return iv;
}

template <typename BlockCipherT>
Bytes CbcCipher<BlockCipherT>::Encrypt(ByteView plaintext) {
  constexpr size_t b = BlockCipherT::kBlockSize;
  Bytes iv = NextIv();
  size_t pad = b - plaintext.size() % b;  // 1..b
  size_t padded_size = plaintext.size() + pad;

  Bytes out;
  out.reserve(b + padded_size);
  Append(out, iv);

  uint8_t prev[b];
  std::memcpy(prev, iv.data(), b);
  uint8_t block[b];
  for (size_t off = 0; off < padded_size; off += b) {
    for (size_t i = 0; i < b; ++i) {
      size_t idx = off + i;
      uint8_t p = idx < plaintext.size() ? plaintext[idx]
                                         : static_cast<uint8_t>(pad);
      block[i] = static_cast<uint8_t>(p ^ prev[i]);
    }
    uint8_t enc[b];
    block_.EncryptBlock(block, enc);
    out.insert(out.end(), enc, enc + b);
    std::memcpy(prev, enc, b);
  }
  return out;
}

template <typename BlockCipherT>
Result<Bytes> CbcCipher<BlockCipherT>::Decrypt(ByteView ciphertext) const {
  constexpr size_t b = BlockCipherT::kBlockSize;
  if (ciphertext.size() < 2 * b || ciphertext.size() % b != 0) {
    return CorruptionError("CBC: ciphertext length not a multiple of block");
  }
  const uint8_t* prev = ciphertext.data();  // IV
  Bytes out;
  out.reserve(ciphertext.size() - b);
  for (size_t off = b; off < ciphertext.size(); off += b) {
    uint8_t dec[b];
    block_.DecryptBlock(ciphertext.data() + off, dec);
    for (size_t i = 0; i < b; ++i) {
      out.push_back(static_cast<uint8_t>(dec[i] ^ prev[i]));
    }
    prev = ciphertext.data() + off;
  }
  // Strip PKCS#7 padding.
  uint8_t pad = out.back();
  if (pad == 0 || pad > b || pad > out.size()) {
    return CorruptionError("CBC: invalid padding");
  }
  for (size_t i = out.size() - pad; i < out.size(); ++i) {
    if (out[i] != pad) {
      return CorruptionError("CBC: invalid padding");
    }
  }
  out.resize(out.size() - pad);
  return out;
}

template class CbcCipher<Des>;
template class CbcCipher<TripleDes>;
template class CbcCipher<Aes128>;

}  // namespace tdb
