// The cryptographic parameter registry: each partition protects its chunks
// with its own (secret key, cipher, collision-resistant hash function)
// triple (§2.2). CryptoSuite bundles one such triple with ready-to-use
// operations; CryptoParams is its serializable description stored in the
// partition leader (§5.2).

#ifndef SRC_CRYPTO_SUITE_H_
#define SRC_CRYPTO_SUITE_H_

#include <memory>
#include <string_view>

#include "src/common/bytes.h"
#include "src/common/pickle.h"
#include "src/common/status.h"
#include "src/crypto/cbc.h"
#include "src/crypto/sha1.h"
#include "src/crypto/sha256.h"

namespace tdb {

enum class CipherAlg : uint8_t {
  kNone = 0,       // no secrecy
  kDes = 1,        // paper's default for ordinary partitions
  kTripleDes = 2,  // paper's choice for the system partition
  kAes128 = 3,     // modern default
};

enum class HashAlg : uint8_t {
  kSha1 = 0,    // paper's choice
  kSha256 = 1,  // modern default
};

std::string_view CipherAlgName(CipherAlg alg);
std::string_view HashAlgName(HashAlg alg);

// Key length required by a cipher (0 for kNone).
size_t CipherKeySize(CipherAlg alg);
// Digest length produced by a hash algorithm.
size_t HashDigestSize(HashAlg alg);

// One-shot hash.
Bytes HashData(HashAlg alg, ByteView data);

// Incremental hash across heterogeneous inputs (used for the sequential
// residual-log hash of §4.8.2.1 and backup signatures of §6.2).
class StreamingHash {
 public:
  explicit StreamingHash(HashAlg alg);
  void Update(ByteView data);
  Bytes Finish();
  HashAlg alg() const { return alg_; }

 private:
  HashAlg alg_;
  Sha1 sha1_;
  Sha256 sha256_;
};

// HMAC with the suite's hash algorithm.
Bytes MacData(HashAlg alg, ByteView key, ByteView data);

Result<std::unique_ptr<Cipher>> MakeCipher(CipherAlg alg, ByteView key);

// Serializable per-partition cryptographic parameters.
struct CryptoParams {
  CipherAlg cipher = CipherAlg::kAes128;
  HashAlg hash = HashAlg::kSha256;
  Bytes key;  // CipherKeySize(cipher) bytes; also keys the MAC

  void Pickle(PickleWriter& w) const;
  static Result<CryptoParams> Unpickle(PickleReader& r);
};

// A live suite: validated params plus an instantiated cipher.
class CryptoSuite {
 public:
  static Result<CryptoSuite> Create(CryptoParams params);

  const CryptoParams& params() const { return params_; }
  HashAlg hash_alg() const { return params_.hash; }
  size_t digest_size() const { return HashDigestSize(params_.hash); }

  Bytes Encrypt(ByteView plaintext) const { return cipher_->Encrypt(plaintext); }
  // Atomic IV reservation + thread-safe deferred encryption (see Cipher).
  // ReserveSeqs may be called from any thread; racing reservers get
  // disjoint sequence ranges (commits under the store mutex can overlap a
  // backup stream reading the same suites).
  uint64_t ReserveSeqs(size_t n) const { return cipher_->ReserveSeqs(n); }
  Bytes EncryptWithSeq(uint64_t seq, ByteView plaintext) const {
    return cipher_->EncryptWithSeq(seq, plaintext);
  }
  Result<Bytes> Decrypt(ByteView ciphertext) const {
    return cipher_->Decrypt(ciphertext);
  }
  size_t CiphertextSize(size_t n) const { return cipher_->CiphertextSize(n); }

  Bytes Hash(ByteView data) const { return HashData(params_.hash, data); }
  Bytes Mac(ByteView data) const {
    return MacData(params_.hash, params_.key, data);
  }

 private:
  explicit CryptoSuite(CryptoParams params) : params_(std::move(params)) {}

  CryptoParams params_;
  // shared_ptr so CryptoSuite stays copyable; the cipher is stateful only in
  // its IV counter, which tolerates sharing (atomically monotonic).
  std::shared_ptr<Cipher> cipher_;
};

}  // namespace tdb

#endif  // SRC_CRYPTO_SUITE_H_
