// DES and Triple-DES (EDE3) block ciphers (FIPS 46-3).
//
// The paper uses 3DES-CBC for the system partition and DES-CBC for ordinary
// partitions (§9.2.1). Both are obsolete for new designs; they are
// implemented for fidelity, and AES-128 (src/crypto/aes.h) is the modern
// alternative.

#ifndef SRC_CRYPTO_DES_H_
#define SRC_CRYPTO_DES_H_

#include <cstdint>

#include "src/common/bytes.h"
#include "src/common/status.h"

namespace tdb {

// Single DES; 8-byte key (parity bits ignored), 8-byte block.
class Des {
 public:
  static constexpr size_t kBlockSize = 8;
  static constexpr size_t kKeySize = 8;

  // Key must be exactly kKeySize bytes.
  static Result<Des> Create(ByteView key);

  void EncryptBlock(const uint8_t* in, uint8_t* out) const;
  void DecryptBlock(const uint8_t* in, uint8_t* out) const;

 private:
  Des() = default;
  void ExpandKey(const uint8_t* key);
  static uint64_t Feistel(uint64_t block, const uint64_t* subkeys);

  uint64_t subkeys_[16];          // encryption order
  uint64_t reverse_subkeys_[16];  // decryption order
};

// Triple DES in EDE3 mode; 24-byte key (three independent DES keys).
class TripleDes {
 public:
  static constexpr size_t kBlockSize = 8;
  static constexpr size_t kKeySize = 24;

  static Result<TripleDes> Create(ByteView key);

  void EncryptBlock(const uint8_t* in, uint8_t* out) const;
  void DecryptBlock(const uint8_t* in, uint8_t* out) const;

 private:
  TripleDes(Des k1, Des k2, Des k3) : k1_(k1), k2_(k2), k3_(k3) {}

  Des k1_, k2_, k3_;
};

}  // namespace tdb

#endif  // SRC_CRYPTO_DES_H_
