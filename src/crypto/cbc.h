// The Cipher interface and CBC-mode implementations over the block ciphers.
//
// A partition encrypts each chunk version independently (§4.9.1), so the
// Cipher interface is message-oriented: Encrypt produces a self-contained
// ciphertext (IV prepended) and Decrypt recovers the plaintext. IVs are
// derived by encrypting a per-cipher message counter, which never repeats
// under one key and is unpredictable to parties without the key.

#ifndef SRC_CRYPTO_CBC_H_
#define SRC_CRYPTO_CBC_H_

#include <atomic>
#include <memory>
#include <string_view>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/crypto/aes.h"
#include "src/crypto/des.h"

namespace tdb {

class Cipher {
 public:
  virtual ~Cipher() = default;

  // Encrypts `plaintext`; the result embeds everything Decrypt needs.
  virtual Bytes Encrypt(ByteView plaintext) = 0;

  // Splits Encrypt into its serial and parallel halves. ReserveSeqs claims
  // `n` consecutive message sequence numbers (the IV counter values Encrypt
  // would have consumed) and returns the first; reservations are atomic, so
  // independent reservers (e.g. a backup walking a partition while commits
  // keep flowing) never overlap. EncryptWithSeq then encrypts under a
  // reserved number from any thread — it reads no mutable state, so a batch
  // whose numbers were reserved in commit order yields byte-identical
  // ciphertexts whether the encrypts run serially or fanned out across a
  // pool.
  virtual uint64_t ReserveSeqs(size_t n) = 0;
  virtual Bytes EncryptWithSeq(uint64_t seq, ByteView plaintext) const = 0;

  // Inverse of Encrypt. Returns kCorruption if the ciphertext is structurally
  // invalid (bad length or padding). Note: padding checks are an integrity
  // *heuristic* only; real tamper detection is the hash tree above.
  virtual Result<Bytes> Decrypt(ByteView ciphertext) const = 0;

  // Ciphertext size for a plaintext of `plaintext_size` bytes (IV + padding).
  virtual size_t CiphertextSize(size_t plaintext_size) const = 0;

  virtual std::string_view name() const = 0;
};

// Identity cipher for partitions that need tamper detection but no secrecy
// (§2.2: an application "may have no need to encrypt some data").
class NullCipher final : public Cipher {
 public:
  Bytes Encrypt(ByteView plaintext) override;
  uint64_t ReserveSeqs(size_t) override { return 0; }
  Bytes EncryptWithSeq(uint64_t, ByteView plaintext) const override;
  Result<Bytes> Decrypt(ByteView ciphertext) const override;
  size_t CiphertextSize(size_t plaintext_size) const override {
    return plaintext_size;
  }
  std::string_view name() const override { return "none"; }
};

// CBC mode with PKCS#7 padding over any fixed-size block cipher.
template <typename BlockCipherT>
class CbcCipher final : public Cipher {
 public:
  CbcCipher(BlockCipherT block_cipher, std::string_view name)
      : block_(std::move(block_cipher)), name_(name) {}

  Bytes Encrypt(ByteView plaintext) override;
  uint64_t ReserveSeqs(size_t n) override {
    // Matches the pre-increment in the serial path: the first reserved
    // message uses counter value iv_counter_ + 1. fetch_add keeps ranges
    // disjoint when reservers race (IV reuse would break CBC secrecy).
    return iv_counter_.fetch_add(n, std::memory_order_relaxed) + 1;
  }
  Bytes EncryptWithSeq(uint64_t seq, ByteView plaintext) const override;
  Result<Bytes> Decrypt(ByteView ciphertext) const override;

  size_t CiphertextSize(size_t plaintext_size) const override {
    constexpr size_t b = BlockCipherT::kBlockSize;
    // IV block + padded payload (always at least one padding byte).
    return b + (plaintext_size / b + 1) * b;
  }

  std::string_view name() const override { return name_; }

 private:
  BlockCipherT block_;
  std::string_view name_;
  std::atomic<uint64_t> iv_counter_{0};
};

using DesCbc = CbcCipher<Des>;
using TripleDesCbc = CbcCipher<TripleDes>;
using Aes128Cbc = CbcCipher<Aes128>;

}  // namespace tdb

#endif  // SRC_CRYPTO_CBC_H_
