#include "src/crypto/sha256.h"

#include <cstring>

namespace tdb {

namespace {

inline uint32_t Rotr32(uint32_t x, int n) { return (x >> n) | (x << (32 - n)); }

constexpr uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

}  // namespace

Sha256::Sha256() { Reset(); }

void Sha256::Reset() {
  h_[0] = 0x6a09e667;
  h_[1] = 0xbb67ae85;
  h_[2] = 0x3c6ef372;
  h_[3] = 0xa54ff53a;
  h_[4] = 0x510e527f;
  h_[5] = 0x9b05688c;
  h_[6] = 0x1f83d9ab;
  h_[7] = 0x5be0cd19;
  buffer_len_ = 0;
  total_len_ = 0;
}

void Sha256::ProcessBlocks(const uint8_t* data, size_t n) {
  uint32_t s[8];
  for (int i = 0; i < 8; ++i) s[i] = h_[i];
  for (size_t blk = 0; blk < n; ++blk, data += kBlockSize) {
    uint32_t w[64];
    for (int i = 0; i < 16; ++i) {
      w[i] = static_cast<uint32_t>(data[i * 4]) << 24 |
             static_cast<uint32_t>(data[i * 4 + 1]) << 16 |
             static_cast<uint32_t>(data[i * 4 + 2]) << 8 |
             static_cast<uint32_t>(data[i * 4 + 3]);
    }
    for (int i = 16; i < 64; ++i) {
      uint32_t s0 =
          Rotr32(w[i - 15], 7) ^ Rotr32(w[i - 15], 18) ^ (w[i - 15] >> 3);
      uint32_t s1 =
          Rotr32(w[i - 2], 17) ^ Rotr32(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }

    uint32_t a = s[0], b = s[1], c = s[2], d = s[3];
    uint32_t e = s[4], f = s[5], g = s[6], h = s[7];
    for (int i = 0; i < 64; ++i) {
      uint32_t s1 = Rotr32(e, 6) ^ Rotr32(e, 11) ^ Rotr32(e, 25);
      uint32_t ch = (e & f) ^ (~e & g);
      uint32_t temp1 = h + s1 + ch + kK[i] + w[i];
      uint32_t s0 = Rotr32(a, 2) ^ Rotr32(a, 13) ^ Rotr32(a, 22);
      uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      uint32_t temp2 = s0 + maj;
      h = g;
      g = f;
      f = e;
      e = d + temp1;
      d = c;
      c = b;
      b = a;
      a = temp1 + temp2;
    }
    s[0] += a;
    s[1] += b;
    s[2] += c;
    s[3] += d;
    s[4] += e;
    s[5] += f;
    s[6] += g;
    s[7] += h;
  }
  for (int i = 0; i < 8; ++i) h_[i] = s[i];
}

void Sha256::Update(ByteView data) {
  if (data.empty()) {
    return;  // an empty view may carry a null pointer, which memcpy forbids
  }
  total_len_ += data.size();
  size_t pos = 0;
  if (buffer_len_ > 0) {
    size_t need = kBlockSize - buffer_len_;
    size_t take = data.size() < need ? data.size() : need;
    std::memcpy(buffer_ + buffer_len_, data.data(), take);
    buffer_len_ += take;
    pos = take;
    if (buffer_len_ == kBlockSize) {
      ProcessBlock(buffer_);
      buffer_len_ = 0;
    }
  }
  if (size_t whole = (data.size() - pos) / kBlockSize; whole > 0) {
    ProcessBlocks(data.data() + pos, whole);
    pos += whole * kBlockSize;
  }
  if (pos < data.size()) {
    std::memcpy(buffer_, data.data() + pos, data.size() - pos);
    buffer_len_ = data.size() - pos;
  }
}

Bytes Sha256::Finish() {
  uint64_t bit_len = total_len_ * 8;
  buffer_[buffer_len_++] = 0x80;
  if (buffer_len_ > 56) {
    std::memset(buffer_ + buffer_len_, 0, kBlockSize - buffer_len_);
    ProcessBlock(buffer_);
    buffer_len_ = 0;
  }
  std::memset(buffer_ + buffer_len_, 0, 56 - buffer_len_);
  for (int i = 0; i < 8; ++i) {
    buffer_[56 + i] = static_cast<uint8_t>(bit_len >> (56 - 8 * i));
  }
  ProcessBlock(buffer_);

  Bytes digest(kDigestSize);
  for (int i = 0; i < 8; ++i) {
    digest[i * 4] = static_cast<uint8_t>(h_[i] >> 24);
    digest[i * 4 + 1] = static_cast<uint8_t>(h_[i] >> 16);
    digest[i * 4 + 2] = static_cast<uint8_t>(h_[i] >> 8);
    digest[i * 4 + 3] = static_cast<uint8_t>(h_[i]);
  }
  Reset();
  return digest;
}

Bytes Sha256::Hash(ByteView data) {
  Sha256 h;
  h.Update(data);
  return h.Finish();
}

}  // namespace tdb
