// HMAC (RFC 2104) over the project hash functions. Used as the symmetric-key
// "signature" on commit chunks and backups — the paper notes the signature
// "need not be publicly verifiable, so it may be based on symmetric-key
// encryption" (§4.8.2.2); HMAC is the standard such construction.

#ifndef SRC_CRYPTO_HMAC_H_
#define SRC_CRYPTO_HMAC_H_

#include "src/common/bytes.h"

namespace tdb {

Bytes HmacSha1(ByteView key, ByteView data);
Bytes HmacSha256(ByteView key, ByteView data);

}  // namespace tdb

#endif  // SRC_CRYPTO_HMAC_H_
