// SHA-1 (FIPS 180-1), the collision-resistant hash function the paper uses
// for chunk descriptors and the residual-log hash (§2.2, §9.2.1).
//
// SHA-1 is cryptographically broken for new designs; it is implemented here
// for fidelity with the paper. SHA-256 (src/crypto/sha256.h) is offered as
// the modern alternative and is the default for new partitions.

#ifndef SRC_CRYPTO_SHA1_H_
#define SRC_CRYPTO_SHA1_H_

#include <cstdint>

#include "src/common/bytes.h"

namespace tdb {

class Sha1 {
 public:
  static constexpr size_t kDigestSize = 20;
  static constexpr size_t kBlockSize = 64;

  Sha1();

  void Update(ByteView data);
  // Finalizes and returns the 20-byte digest; the object resets to a fresh
  // state afterwards so it can be reused.
  Bytes Finish();

  static Bytes Hash(ByteView data);

 private:
  void Reset();
  void ProcessBlock(const uint8_t* block) { ProcessBlocks(block, 1); }
  // Compresses `n` consecutive blocks, carrying the chaining state in
  // registers across blocks instead of reloading h_ per block.
  void ProcessBlocks(const uint8_t* data, size_t n);

  uint32_t h_[5];
  uint8_t buffer_[kBlockSize];
  size_t buffer_len_;
  uint64_t total_len_;
};

}  // namespace tdb

#endif  // SRC_CRYPTO_SHA1_H_
