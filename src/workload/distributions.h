// Key and value-size distributions for the YCSB-style workload driver
// (Cooper et al., "Benchmarking Cloud Serving Systems with YCSB").
//
// All generators draw from a caller-owned seeded Rng (src/common/rng.h), so
// a fixed seed reproduces the exact key sequence — which is what makes
// checked-in bench runs and the torture harness replayable.
//
//  * Uniform  — every key equally likely.
//  * Zipfian  — rank-skewed (theta 0.99 like YCSB); ranks are scrambled
//    across the key space with an FNV hash so the hot keys are not all
//    clustered at the low indexes (YCSB's "scrambled zipfian").
//  * Hotspot  — a fraction of operations (default 80%) hit a fraction of
//    the key space (default 20%), uniformly within each region.
//  * Latest   — zipfian over recency: the most recently inserted keys are
//    the hottest (YCSB workload D's read side).
//
// Every generator is asked for a key below a caller-supplied bound `n` so
// the key space may grow between calls (inserts during the run); the
// zipfian harmonic sums are extended incrementally when n grows.

#ifndef SRC_WORKLOAD_DISTRIBUTIONS_H_
#define SRC_WORKLOAD_DISTRIBUTIONS_H_

#include <cstdint>

#include "src/common/rng.h"

namespace tdb::workload {

// Bare zipfian over ranks [0, n): rank 0 is the most popular. The Gray et
// al. rejection-free inversion used by YCSB, with the harmonic sum zeta(n)
// extended incrementally as n grows.
class ZipfianGenerator {
 public:
  static constexpr double kDefaultTheta = 0.99;

  explicit ZipfianGenerator(uint64_t n, double theta = kDefaultTheta);

  // Draws a rank in [0, current n).
  uint64_t Next(Rng& rng);

  // Extends the key space; no-op if new_n <= n. Shrinking is not supported.
  void Grow(uint64_t new_n);

  uint64_t n() const { return n_; }

 private:
  double Eta() const;

  uint64_t n_ = 0;
  double theta_;
  double zetan_ = 0.0;   // zeta(n, theta), extended incrementally
  double zeta2_ = 0.0;   // zeta(2, theta), fixed
  double alpha_;
};

enum class KeyDistributionKind : uint8_t {
  kUniform,
  kZipfian,
  kHotspot,
  kLatest,
};

const char* KeyDistributionName(KeyDistributionKind kind);

struct HotspotParams {
  double hot_key_fraction = 0.2;  // fraction of the key space that is hot
  double hot_op_fraction = 0.8;   // fraction of operations aimed at it
};

// Facade over the four kinds. Not thread-safe: each driver thread owns one
// (plus its own Rng), which is also what keeps the per-thread op sequence
// deterministic under a fixed seed.
class KeyDistribution {
 public:
  KeyDistribution(KeyDistributionKind kind, uint64_t initial_n,
                  HotspotParams hotspot = {});

  // A key index in [0, n); n may differ between calls (key space growth).
  uint64_t Next(Rng& rng, uint64_t n);

  KeyDistributionKind kind() const { return kind_; }

 private:
  KeyDistributionKind kind_;
  ZipfianGenerator zipf_;
  HotspotParams hotspot_;
};

// Uniform value sizes in [min_bytes, max_bytes].
class ValueSizeDistribution {
 public:
  ValueSizeDistribution(uint64_t min_bytes, uint64_t max_bytes)
      : min_(min_bytes), max_(max_bytes < min_bytes ? min_bytes : max_bytes) {}

  uint64_t Next(Rng& rng) {
    return min_ == max_ ? min_ : rng.NextInRange(min_, max_);
  }

 private:
  uint64_t min_;
  uint64_t max_;
};

}  // namespace tdb::workload

#endif  // SRC_WORKLOAD_DISTRIBUTIONS_H_
