// The minimal database facade the vending workload (§9.5.1) runs against.
//
// The paper compares TDB with "a system that layers cryptography on top of
// an off-the-shelf embedded database" on the *same* benchmark. To keep that
// comparison honest, the workload logic is written once against this facade
// and both backends implement it: the TDB backend maps it onto the
// collection/object stores, the XDB backend onto encrypted B-trees with
// manually maintained index trees. Operation counts (Figure 10) are tallied
// here, uniformly for both systems.

#ifndef SRC_WORKLOAD_RECORD_H_
#define SRC_WORKLOAD_RECORD_H_

#include <array>
#include <string>

#include "src/common/bytes.h"
#include "src/common/pickle.h"
#include "src/common/status.h"

namespace tdb {

// A generic record with four indexable integer fields and a payload blob.
// Collections index field i with index #i (a collection with k indexes
// indexes fields 0..k-1).
struct Record {
  std::array<uint64_t, 4> fields = {0, 0, 0, 0};
  Bytes payload;

  Bytes Pickle() const {
    PickleWriter w;
    for (uint64_t f : fields) {
      w.WriteU64(f);
    }
    w.WriteBytes(payload);
    return w.Take();
  }
  static Result<Record> Unpickle(ByteView data) {
    PickleReader r(data);
    Record rec;
    for (uint64_t& f : rec.fields) {
      f = r.ReadU64();
    }
    rec.payload = r.ReadBytes();
    TDB_RETURN_IF_ERROR(r.Done());
    return rec;
  }
};

struct WorkloadCounts {
  uint64_t reads = 0;
  uint64_t updates = 0;
  uint64_t deletes = 0;
  uint64_t adds = 0;
  uint64_t commits = 0;
};

class WorkloadStore {
 public:
  virtual ~WorkloadStore() = default;

  // Creates a collection with `num_indexes` (1..4) functional indexes over
  // Record fields 0..num_indexes-1.
  virtual Status CreateCollection(const std::string& name,
                                  int num_indexes) = 0;

  // All data operations happen inside a transaction.
  virtual Status Begin() = 0;
  virtual Status Commit() = 0;

  virtual Result<uint64_t> Insert(const std::string& collection,
                                  const Record& record) = 0;
  virtual Result<Record> Get(const std::string& collection, uint64_t id) = 0;
  virtual Status Update(const std::string& collection, uint64_t id,
                        const Record& record) = 0;
  virtual Status Delete(const std::string& collection, uint64_t id) = 0;
  // Ids of records whose field `field` equals `key`.
  virtual Result<std::vector<uint64_t>> LookupByField(
      const std::string& collection, int field, uint64_t key) = 0;

  const WorkloadCounts& counts() const { return counts_; }
  void ResetCounts() { counts_ = WorkloadCounts{}; }

 protected:
  WorkloadCounts counts_;
};

}  // namespace tdb

#endif  // SRC_WORKLOAD_RECORD_H_
