// YCSB-style workload engine (Cooper et al., PAPERS.md): the standard A–F
// operation mixes over the key distributions in distributions.h, generated
// deterministically from a seed and runnable against two backends —
//
//  * InProcessBackend: ObjectStore transactions in this process, and
//  * WireBackend: TdbClient over a net::Transport (loopback or TCP), so the
//    same traffic exercises framing, sessions, 2PL, and group commit.
//
// The driver loads a dataset (one object per key, variable value sizes),
// then runs N operations across worker threads. Each operation runs in its
// own transaction by default (ops_per_txn batches more); scans are L
// consecutive key reads inside one transaction. Lock-timeout aborts are
// retried with fresh keys, like a client would. Latency is sampled per
// committed transaction and per backend call, and the result reports
// p50/p95/p99/p999.
//
// The torture harness (torture.h) reuses the driver with `stop` and
// `tolerate_failures` to keep traffic flowing while maintenance and crash
// injection run underneath.

#ifndef SRC_WORKLOAD_YCSB_H_
#define SRC_WORKLOAD_YCSB_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/object/object_store.h"
#include "src/server/client.h"
#include "src/workload/distributions.h"

namespace tdb::workload {

// ---------------------------------------------------------------------------
// Workload specification

enum class YcsbOpKind : uint8_t { kRead, kUpdate, kInsert, kScan, kRmw };

const char* YcsbOpName(YcsbOpKind kind);

struct WorkloadSpec {
  std::string name = "custom";
  // Operation mix; must sum to ~1.0.
  double read = 1.0;
  double update = 0.0;
  double insert = 0.0;
  double scan = 0.0;
  double rmw = 0.0;

  KeyDistributionKind dist = KeyDistributionKind::kZipfian;
  HotspotParams hotspot;

  uint64_t record_count = 1000;  // loaded before the run
  uint64_t value_min = 100;      // payload bytes
  uint64_t value_max = 100;
  uint64_t max_scan_len = 20;    // scan length uniform in [1, max_scan_len]

  // The standard YCSB mixes:
  //   A 50/50 read/update zipfian     B 95/5 read/update zipfian
  //   C 100 read zipfian              D 95/5 read/insert latest
  //   E 95/5 scan/insert zipfian      F 50/50 read/rmw zipfian
  static Result<WorkloadSpec> StandardMix(char mix);
};

// ---------------------------------------------------------------------------
// Backends

// One driver thread's connection to the system under test. Object ids cross
// this interface packed (ChunkId::Pack), exactly as they cross the wire.
class YcsbBackend {
 public:
  virtual ~YcsbBackend() = default;

  virtual Status Begin() = 0;
  // Begins a read-only snapshot transaction where the backend supports one;
  // the default falls back to a regular transaction.
  virtual Status BeginReadOnly() { return Begin(); }
  virtual Status Commit() = 0;
  virtual void Abort() = 0;

  virtual Result<uint64_t> Insert(const std::string& value) = 0;
  // Both reads return the value size so the driver can sanity-check data
  // actually moved.
  virtual Result<size_t> Read(uint64_t packed_id) = 0;
  virtual Result<size_t> ReadForUpdate(uint64_t packed_id) = 0;
  // Exclusive-locked read returning the value itself — what a
  // read-modify-write that depends on the old value (e.g. a balance
  // transfer) needs.
  virtual Result<std::string> ReadValueForUpdate(uint64_t packed_id) = 0;
  virtual Status Update(uint64_t packed_id, const std::string& value) = 0;

  virtual const char* name() const = 0;
};

// Direct ObjectStore transactions (the store is thread-safe; each backend
// instance is one thread's transaction stream).
class InProcessBackend final : public YcsbBackend {
 public:
  explicit InProcessBackend(ObjectStore* store) : store_(store) {}
  ~InProcessBackend() override;

  Status Begin() override;
  Status BeginReadOnly() override;
  Status Commit() override;
  void Abort() override;
  Result<uint64_t> Insert(const std::string& value) override;
  Result<size_t> Read(uint64_t packed_id) override;
  Result<size_t> ReadForUpdate(uint64_t packed_id) override;
  Result<std::string> ReadValueForUpdate(uint64_t packed_id) override;
  Status Update(uint64_t packed_id, const std::string& value) override;
  const char* name() const override { return "local"; }

 private:
  ObjectStore* store_;
  std::unique_ptr<Transaction> txn_;
};

// TdbClient over a transport; Connect before use. The registry must have
// server::BlobValue registered (the driver's value type).
class WireBackend final : public YcsbBackend {
 public:
  explicit WireBackend(const TypeRegistry* registry,
                       server::TdbClientOptions options = {})
      : client_(registry, options) {}

  Status Connect(net::Transport* transport, const std::string& address) {
    return client_.Connect(transport, address);
  }

  Status Begin() override { return client_.Begin(); }
  Status BeginReadOnly() override { return client_.BeginReadOnly(); }
  Status Commit() override { return client_.Commit(); }
  void Abort() override;
  Result<uint64_t> Insert(const std::string& value) override;
  Result<size_t> Read(uint64_t packed_id) override;
  Result<size_t> ReadForUpdate(uint64_t packed_id) override;
  Result<std::string> ReadValueForUpdate(uint64_t packed_id) override;
  Status Update(uint64_t packed_id, const std::string& value) override;
  const char* name() const override { return "wire"; }

 private:
  server::TdbClient client_;
};

// ---------------------------------------------------------------------------
// Shared key table

// The published key space: index -> packed object id. Loads and committed
// inserts publish here; readers pick indexes below size(). Thread-safe.
class KeyTable {
 public:
  void Reset(std::vector<uint64_t> ids);
  uint64_t size() const;
  uint64_t Get(uint64_t index) const;
  void Publish(uint64_t packed_id);
  std::vector<uint64_t> Snapshot() const;

 private:
  mutable std::mutex mu_;
  std::vector<uint64_t> ids_;
};

// ---------------------------------------------------------------------------
// Driver

struct DriverOptions {
  uint64_t operations = 10000;  // total across all threads
  int threads = 1;
  uint64_t seed = 42;
  uint64_t ops_per_txn = 1;
  // A lock-timeout abort retries the transaction with fresh keys up to this
  // many times before the attempt is dropped (conservation-safe either way).
  int txn_retry_limit = 16;

  // Run transactions whose drawn operations are all reads/scans as
  // lock-free snapshot transactions (BeginReadOnly) instead of 2PL.
  bool snapshot_reads = false;

  // Torture hooks: stop early when *stop becomes true; treat backend
  // failures as "system went down" (stop the thread, keep the partial
  // result) instead of failing the run.
  const std::atomic<bool>* stop = nullptr;
  bool tolerate_failures = false;
};

struct LatencySummary {
  uint64_t count = 0;
  double mean_us = 0.0;
  double stddev_us = 0.0;  // sample stddev (n-1); 0 with fewer than 2 samples
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  double max_us = 0.0;

  static LatencySummary FromSamples(std::vector<double> samples_us);
};

struct DriverResult {
  Status status = OkStatus();  // first hard failure (always ok if tolerated)
  double wall_us = 0.0;

  uint64_t reads = 0;
  uint64_t updates = 0;
  uint64_t inserts = 0;
  uint64_t scans = 0;
  uint64_t scan_items = 0;  // keys touched by scans
  uint64_t rmws = 0;
  uint64_t txns_committed = 0;
  uint64_t txns_aborted = 0;  // lock-timeout retries + dropped attempts
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;

  // End-to-end transaction latency (begin..commit ack) — the user-visible
  // number — plus commit-call latency on its own.
  LatencySummary txn_latency;
  LatencySummary commit_latency;

  uint64_t ops() const { return reads + updates + inserts + scans + rmws; }
  double ops_per_sec() const {
    return wall_us > 0.0 ? 1e6 * static_cast<double>(ops()) / wall_us : 0.0;
  }
};

class YcsbDriver {
 public:
  YcsbDriver(WorkloadSpec spec, DriverOptions options);

  // Loads spec.record_count records through `backend` (batched commits) and
  // publishes their ids into `table`.
  Status Load(YcsbBackend& backend, KeyTable& table);

  // Runs options.operations across the backends (one per thread;
  // backends.size() overrides options.threads).
  DriverResult Run(const std::vector<YcsbBackend*>& backends, KeyTable& table);

  const WorkloadSpec& spec() const { return spec_; }

 private:
  struct ThreadResult;
  void RunThread(int thread_index, uint64_t op_budget, YcsbBackend& backend,
                 KeyTable& table, ThreadResult& out);

  WorkloadSpec spec_;
  DriverOptions options_;
  std::atomic<bool> internal_stop_{false};
};

}  // namespace tdb::workload

#endif  // SRC_WORKLOAD_YCSB_H_
