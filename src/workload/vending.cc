#include "src/workload/vending.h"

namespace tdb {

namespace {
constexpr int kReservedCollections = 5;  // goods/contracts/accounts/licenses/receipts
}  // namespace

std::string VendingWorkload::FillerName(int index) const {
  char buf[8];
  std::snprintf(buf, sizeof(buf), "c%02d", index + kReservedCollections);
  return buf;
}

Record VendingWorkload::MakeRecord(uint64_t f0, uint64_t f1) {
  Record rec;
  rec.fields = {f0, f1, rng_.NextBelow(1000), rng_.NextBelow(1000)};
  rec.payload = rng_.NextBytes(config_.payload_size);
  return rec;
}

Status VendingWorkload::Setup() {
  // Schema: 30 collections with 1-4 indexes each.
  TDB_RETURN_IF_ERROR(store_->CreateCollection("goods", 2));
  TDB_RETURN_IF_ERROR(store_->CreateCollection("contracts", 2));
  TDB_RETURN_IF_ERROR(store_->CreateCollection("accounts", 1));
  TDB_RETURN_IF_ERROR(store_->CreateCollection("licenses", 2));
  TDB_RETURN_IF_ERROR(store_->CreateCollection("receipts", 1));
  int num_fillers = config_.num_collections - kReservedCollections;
  for (int i = 0; i < num_fillers; ++i) {
    TDB_RETURN_IF_ERROR(store_->CreateCollection(FillerName(i), i % 4 + 1));
  }

  // Initial data.
  TDB_RETURN_IF_ERROR(store_->Begin());
  for (int g = 0; g < config_.num_goods; ++g) {
    TDB_ASSIGN_OR_RETURN(uint64_t id,
                         store_->Insert("goods", MakeRecord(g, 100 + g)));
    good_ids_.push_back(id);
  }
  for (int c = 0; c < config_.num_consumers; ++c) {
    TDB_ASSIGN_OR_RETURN(uint64_t id,
                         store_->Insert("accounts", MakeRecord(c, 10000)));
    account_ids_.push_back(id);
  }
  for (int c = 0; c < config_.num_consumers; ++c) {
    for (int g = 0; g < config_.num_goods; ++g) {
      TDB_ASSIGN_OR_RETURN(uint64_t id,
                           store_->Insert("licenses", MakeRecord(c, g)));
      license_ids_.push_back(id);
    }
  }
  for (int i = 0; i < config_.initial_receipts; ++i) {
    TDB_ASSIGN_OR_RETURN(uint64_t id,
                         store_->Insert("receipts", MakeRecord(i, i % 7)));
    receipt_pool_.push_back(id);
  }
  TDB_RETURN_IF_ERROR(store_->Commit());

  for (int i = 0; i < num_fillers; ++i) {
    TDB_RETURN_IF_ERROR(store_->Begin());
    std::string name = FillerName(i);
    for (int j = 0; j < config_.filler_per_collection; ++j) {
      Record record = MakeRecord(j, i);
      TDB_ASSIGN_OR_RETURN(uint64_t id, store_->Insert(name, record));
      filler_ids_[name].push_back(id);
      filler_records_[{name, id}] = std::move(record);
    }
    TDB_RETURN_IF_ERROR(store_->Commit());
  }

  // Warm the cache: touch everything once.
  TDB_RETURN_IF_ERROR(store_->Begin());
  for (uint64_t id : good_ids_) {
    TDB_RETURN_IF_ERROR(store_->Get("goods", id).status());
  }
  for (uint64_t id : account_ids_) {
    TDB_RETURN_IF_ERROR(store_->Get("accounts", id).status());
  }
  for (const auto& [name, ids] : filler_ids_) {
    for (uint64_t id : ids) {
      TDB_RETURN_IF_ERROR(store_->Get(name, id).status());
    }
  }
  TDB_RETURN_IF_ERROR(store_->Commit());
  store_->ResetCounts();
  return OkStatus();
}

Status VendingWorkload::FillerReads(int collections, int reads_each) {
  int num_fillers = config_.num_collections - kReservedCollections;
  for (int i = 0; i < collections; ++i) {
    std::string name = FillerName((filler_cursor_ + i) % num_fillers);
    const std::vector<uint64_t>& ids = filler_ids_[name];
    for (int j = 0; j < reads_each; ++j) {
      uint64_t id = ids[rng_.NextBelow(ids.size())];
      TDB_RETURN_IF_ERROR(store_->Get(name, id).status());
    }
  }
  return OkStatus();
}

Status VendingWorkload::FillerUpdates(int collections, int updates_each) {
  int num_fillers = config_.num_collections - kReservedCollections;
  for (int i = 0; i < collections; ++i) {
    std::string name = FillerName((filler_cursor_ + i) % num_fillers);
    std::vector<uint64_t>& ids = filler_ids_[name];
    for (int j = 0; j < updates_each; ++j) {
      uint64_t id = ids[rng_.NextBelow(ids.size())];
      Record& rec = filler_records_[{name, id}];
      rec.fields[2] += 1;
      TDB_RETURN_IF_ERROR(store_->Update(name, id, rec));
    }
  }
  ++filler_cursor_;
  return OkStatus();
}

Status VendingWorkload::FillerAdds(int adds) {
  int num_fillers = config_.num_collections - kReservedCollections;
  for (int i = 0; i < adds; ++i) {
    std::string name = FillerName(static_cast<int>(rng_.NextBelow(num_fillers)));
    Record record = MakeRecord(rng_.NextBelow(1000), i);
    TDB_ASSIGN_OR_RETURN(uint64_t id, store_->Insert(name, record));
    filler_ids_[name].push_back(id);
    filler_records_[{name, id}] = std::move(record);
  }
  return OkStatus();
}

Status VendingWorkload::Bind(int good_index) {
  // Transaction 1: create the three alternative contracts and rebind the
  // good's catalog entry.
  TDB_RETURN_IF_ERROR(store_->Begin());
  uint64_t good_id = good_ids_[good_index];
  TDB_ASSIGN_OR_RETURN(Record good, store_->Get("goods", good_id));
  for (int contract = 0; contract < 3; ++contract) {
    // Field 0 holds the good index so contracts are findable by good.
    TDB_RETURN_IF_ERROR(
        store_->Insert("contracts", MakeRecord(good_index, contract)).status());
  }
  good.fields[3] += 1;  // bump the good's binding generation
  TDB_RETURN_IF_ERROR(store_->Update("goods", good_id, good));
  TDB_RETURN_IF_ERROR(FillerReads(12, 3));
  TDB_RETURN_IF_ERROR(FillerUpdates(12, 3));
  TDB_RETURN_IF_ERROR(FillerAdds(8));
  TDB_RETURN_IF_ERROR(store_->Commit());

  // Transaction 2: vendor-side bookkeeping and audit trail.
  TDB_RETURN_IF_ERROR(store_->Begin());
  TDB_RETURN_IF_ERROR(FillerReads(11, 3));
  TDB_RETURN_IF_ERROR(FillerUpdates(12, 3));
  TDB_RETURN_IF_ERROR(FillerAdds(11));
  if (!receipt_pool_.empty()) {
    uint64_t victim = receipt_pool_.front();
    receipt_pool_.erase(receipt_pool_.begin());
    TDB_RETURN_IF_ERROR(store_->Delete("receipts", victim));
  }
  return store_->Commit();
}

Status VendingWorkload::Release(int good_index, int consumer_index) {
  TDB_RETURN_IF_ERROR(store_->Begin());
  uint64_t good_id = good_ids_[good_index];
  TDB_RETURN_IF_ERROR(store_->Get("goods", good_id).status());
  // Find the good's contracts and pick one of the three at random (§9.5.1).
  TDB_ASSIGN_OR_RETURN(std::vector<uint64_t> contract_ids,
                       store_->LookupByField("contracts", 0, good_index));
  size_t inspect = std::min<size_t>(contract_ids.size(), 3);
  for (size_t i = 0; i < inspect; ++i) {
    TDB_RETURN_IF_ERROR(store_->Get("contracts", contract_ids[i]).status());
  }
  // Debit the consumer's account.
  uint64_t account_id = account_ids_[consumer_index];
  TDB_ASSIGN_OR_RETURN(Record account, store_->Get("accounts", account_id));
  if (account.fields[1] > 0) {
    account.fields[1] -= 1;
  }
  TDB_RETURN_IF_ERROR(store_->Update("accounts", account_id, account));
  // Count the use against the license.
  uint64_t license_id =
      license_ids_[consumer_index * config_.num_goods + good_index];
  TDB_ASSIGN_OR_RETURN(Record license, store_->Get("licenses", license_id));
  license.fields[2] += 1;
  TDB_RETURN_IF_ERROR(store_->Update("licenses", license_id, license));
  // Receipt turnover: occasionally add, always retire one.
  if (rng_.NextBelow(10) < 4) {
    TDB_ASSIGN_OR_RETURN(
        uint64_t id,
        store_->Insert("receipts", MakeRecord(consumer_index, good_index)));
    receipt_pool_.push_back(id);
  }
  if (!receipt_pool_.empty()) {
    uint64_t victim = receipt_pool_.front();
    receipt_pool_.erase(receipt_pool_.begin());
    TDB_RETURN_IF_ERROR(store_->Delete("receipts", victim));
  }
  // Consumer-side bookkeeping across the cached working set.
  TDB_RETURN_IF_ERROR(FillerReads(10, 7));
  TDB_RETURN_IF_ERROR(FillerUpdates(15, 1));
  return store_->Commit();
}

Status VendingWorkload::RunBindExperiment(int operations) {
  for (int i = 0; i < operations; ++i) {
    TDB_RETURN_IF_ERROR(Bind(i % config_.num_goods));
  }
  return OkStatus();
}

Status VendingWorkload::RunReleaseExperiment(int operations) {
  for (int i = 0; i < operations; ++i) {
    TDB_RETURN_IF_ERROR(Release(i % config_.num_goods,
                                i % config_.num_consumers));
  }
  return OkStatus();
}

}  // namespace tdb
