#include "src/workload/tdb_backend.h"

namespace tdb {

Result<ObjectPtr> RecordObject::UnpickleFields(PickleReader& r) {
  auto object = std::make_shared<RecordObject>();
  for (uint64_t& f : object->record.fields) {
    f = r.ReadU64();
  }
  object->record.payload = r.ReadBytes();
  TDB_RETURN_IF_ERROR(r.Check());
  return ObjectPtr(object);
}

Result<std::unique_ptr<TdbWorkloadStore>> TdbWorkloadStore::Create(
    ChunkStore* chunks, ObjectStoreOptions object_options) {
  auto store = std::unique_ptr<TdbWorkloadStore>(new TdbWorkloadStore());
  store->registry_ = std::make_unique<TypeRegistry>();
  TDB_RETURN_IF_ERROR(RegisterType<RecordObject>(*store->registry_));
  TDB_RETURN_IF_ERROR(CollectionStore::RegisterTypes(*store->registry_));
  store->key_fns_ = std::make_unique<KeyFunctionRegistry>();
  for (int field = 0; field < 4; ++field) {
    TDB_RETURN_IF_ERROR(store->key_fns_->Register(
        "field" + std::to_string(field),
        [field](const Pickled& object) -> Result<Bytes> {
          const auto* record = dynamic_cast<const RecordObject*>(&object);
          if (record == nullptr) {
            return InvalidArgumentError("not a RecordObject");
          }
          return EncodeU64Key(record->record.fields[field]);
        }));
  }

  // One partition per workload database, using the paper's configuration for
  // ordinary partitions: DES-CBC and SHA-1 (§9.2.1).
  TDB_ASSIGN_OR_RETURN(PartitionId pid, chunks->AllocatePartition());
  ChunkStore::Batch batch;
  CryptoParams params;
  params.cipher = CipherAlg::kDes;
  params.hash = HashAlg::kSha1;
  params.key = Bytes(8, 0x5C);
  batch.WritePartition(pid, params);
  TDB_RETURN_IF_ERROR(chunks->Commit(std::move(batch)));

  store->objects_ = std::make_unique<ObjectStore>(
      chunks, pid, store->registry_.get(), object_options);
  auto txn = store->objects_->Begin();
  TDB_ASSIGN_OR_RETURN(ObjectId directory, CollectionStore::Format(*txn));
  TDB_RETURN_IF_ERROR(txn->Commit());
  store->collections_ = std::make_unique<CollectionStore>(
      store->objects_.get(), store->key_fns_.get(), directory);
  return store;
}

Result<ObjectId> TdbWorkloadStore::CollectionId(const std::string& name) {
  auto it = collection_ids_.find(name);
  if (it != collection_ids_.end()) {
    return it->second;
  }
  TDB_ASSIGN_OR_RETURN(ObjectId id, collections_->FindCollection(*txn_, name));
  collection_ids_[name] = id;
  return id;
}

Status TdbWorkloadStore::CreateCollection(const std::string& name,
                                          int num_indexes) {
  auto txn = objects_->Begin();
  std::vector<IndexSpec> specs;
  for (int field = 0; field < num_indexes; ++field) {
    specs.push_back(IndexSpec{"f" + std::to_string(field),
                              "field" + std::to_string(field),
                              /*sorted=*/true});
  }
  TDB_ASSIGN_OR_RETURN(ObjectId id,
                       collections_->CreateCollection(*txn, name, specs));
  TDB_RETURN_IF_ERROR(txn->Commit());
  collection_ids_[name] = id;
  return OkStatus();
}

Status TdbWorkloadStore::Begin() {
  if (txn_ != nullptr && txn_->active()) {
    return FailedPreconditionError("transaction already open");
  }
  txn_ = objects_->Begin();
  return OkStatus();
}

Status TdbWorkloadStore::Commit() {
  if (txn_ == nullptr) {
    return FailedPreconditionError("no open transaction");
  }
  Status status = txn_->Commit();
  txn_.reset();
  if (status.ok()) {
    ++counts_.commits;
  }
  return status;
}

Result<uint64_t> TdbWorkloadStore::Insert(const std::string& collection,
                                          const Record& record) {
  TDB_ASSIGN_OR_RETURN(ObjectId cid, CollectionId(collection));
  TDB_ASSIGN_OR_RETURN(
      ObjectId id,
      collections_->Insert(*txn_, cid, std::make_shared<RecordObject>(record)));
  ++counts_.adds;
  return id.Pack();
}

Result<Record> TdbWorkloadStore::Get(const std::string& collection,
                                     uint64_t id) {
  TDB_ASSIGN_OR_RETURN(ObjectPtr object, txn_->Get(ChunkId::Unpack(id)));
  const auto* record = dynamic_cast<const RecordObject*>(object.get());
  if (record == nullptr) {
    return CorruptionError("object is not a record");
  }
  ++counts_.reads;
  return record->record;
}

Status TdbWorkloadStore::Update(const std::string& collection, uint64_t id,
                                const Record& record) {
  TDB_ASSIGN_OR_RETURN(ObjectId cid, CollectionId(collection));
  TDB_RETURN_IF_ERROR(collections_->Update(
      *txn_, cid, ChunkId::Unpack(id), std::make_shared<RecordObject>(record)));
  ++counts_.updates;
  return OkStatus();
}

Status TdbWorkloadStore::Delete(const std::string& collection, uint64_t id) {
  TDB_ASSIGN_OR_RETURN(ObjectId cid, CollectionId(collection));
  TDB_RETURN_IF_ERROR(collections_->Remove(*txn_, cid, ChunkId::Unpack(id)));
  ++counts_.deletes;
  return OkStatus();
}

Result<std::vector<uint64_t>> TdbWorkloadStore::LookupByField(
    const std::string& collection, int field, uint64_t key) {
  TDB_ASSIGN_OR_RETURN(ObjectId cid, CollectionId(collection));
  TDB_ASSIGN_OR_RETURN(
      std::vector<ObjectId> hits,
      collections_->LookupExact(*txn_, cid, "f" + std::to_string(field),
                                EncodeU64Key(key)));
  ++counts_.reads;
  std::vector<uint64_t> out;
  out.reserve(hits.size());
  for (ObjectId id : hits) {
    out.push_back(id.Pack());
  }
  return out;
}

}  // namespace tdb
