// The TDB backend for the vending workload: records become objects in the
// collection store, collections get functional indexes on record fields,
// and each facade transaction is an object-store transaction.

#ifndef SRC_WORKLOAD_TDB_BACKEND_H_
#define SRC_WORKLOAD_TDB_BACKEND_H_

#include <memory>

#include "src/collect/collection_store.h"
#include "src/workload/record.h"

namespace tdb {

// A Pickled wrapper for workload records.
class RecordObject final : public Pickled {
 public:
  static constexpr uint32_t kTypeTag = 300;

  RecordObject() = default;
  explicit RecordObject(Record record) : record(std::move(record)) {}

  Record record;

  uint32_t type_tag() const override { return kTypeTag; }
  void PickleFields(PickleWriter& w) const override {
    w.WriteRaw(record.Pickle());
  }
  static Result<ObjectPtr> UnpickleFields(PickleReader& r);
};

class TdbWorkloadStore final : public WorkloadStore {
 public:
  // Creates its own partition, registries, object and collection stores on
  // top of an existing chunk store.
  static Result<std::unique_ptr<TdbWorkloadStore>> Create(
      ChunkStore* chunks, ObjectStoreOptions object_options = {});

  Status CreateCollection(const std::string& name, int num_indexes) override;
  Status Begin() override;
  Status Commit() override;
  Result<uint64_t> Insert(const std::string& collection,
                          const Record& record) override;
  Result<Record> Get(const std::string& collection, uint64_t id) override;
  Status Update(const std::string& collection, uint64_t id,
                const Record& record) override;
  Status Delete(const std::string& collection, uint64_t id) override;
  Result<std::vector<uint64_t>> LookupByField(const std::string& collection,
                                              int field,
                                              uint64_t key) override;

  ObjectStore* object_store() { return objects_.get(); }

 private:
  TdbWorkloadStore() = default;

  Result<ObjectId> CollectionId(const std::string& name);

  std::unique_ptr<TypeRegistry> registry_;
  std::unique_ptr<KeyFunctionRegistry> key_fns_;
  std::unique_ptr<ObjectStore> objects_;
  std::unique_ptr<CollectionStore> collections_;
  std::unique_ptr<Transaction> txn_;
  std::map<std::string, ObjectId> collection_ids_;
};

}  // namespace tdb

#endif  // SRC_WORKLOAD_TDB_BACKEND_H_
