#include "src/workload/ycsb.h"

#include <algorithm>
#include <cmath>
#include <thread>
#include <utility>

#include "src/obs/metrics.h"
#include "src/obs/percentile.h"
#include "src/server/blob.h"

namespace tdb::workload {

namespace {

using server::BlobValue;

const BlobValue* AsBlob(const ObjectPtr& object) {
  return dynamic_cast<const BlobValue*>(object.get());
}

Result<size_t> BlobSize(const Result<ObjectPtr>& object) {
  TDB_RETURN_IF_ERROR(object.status());
  const BlobValue* blob = AsBlob(*object);
  if (blob == nullptr) {
    return CorruptionError("workload read returned a non-blob object");
  }
  return blob->value.size();
}

Result<std::string> BlobString(const Result<ObjectPtr>& object) {
  TDB_RETURN_IF_ERROR(object.status());
  const BlobValue* blob = AsBlob(*object);
  if (blob == nullptr) {
    return CorruptionError("workload read returned a non-blob object");
  }
  return blob->value;
}

}  // namespace

const char* YcsbOpName(YcsbOpKind kind) {
  switch (kind) {
    case YcsbOpKind::kRead:
      return "read";
    case YcsbOpKind::kUpdate:
      return "update";
    case YcsbOpKind::kInsert:
      return "insert";
    case YcsbOpKind::kScan:
      return "scan";
    case YcsbOpKind::kRmw:
      return "rmw";
  }
  return "unknown";
}

Result<WorkloadSpec> WorkloadSpec::StandardMix(char mix) {
  if (mix >= 'a' && mix <= 'z') {
    mix = static_cast<char>(mix - 'a' + 'A');
  }
  WorkloadSpec spec;
  spec.read = spec.update = spec.insert = spec.scan = spec.rmw = 0.0;
  spec.dist = KeyDistributionKind::kZipfian;
  switch (mix) {
    case 'A':
      spec.read = 0.5;
      spec.update = 0.5;
      break;
    case 'B':
      spec.read = 0.95;
      spec.update = 0.05;
      break;
    case 'C':
      spec.read = 1.0;
      break;
    case 'D':
      spec.read = 0.95;
      spec.insert = 0.05;
      spec.dist = KeyDistributionKind::kLatest;
      break;
    case 'E':
      spec.scan = 0.95;
      spec.insert = 0.05;
      break;
    case 'F':
      spec.read = 0.5;
      spec.rmw = 0.5;
      break;
    default:
      return InvalidArgumentError(std::string("unknown YCSB mix '") + mix +
                                  "' (expected A..F)");
  }
  spec.name = std::string(1, mix);
  return spec;
}

// ---------------------------------------------------------------------------
// Backends

InProcessBackend::~InProcessBackend() { Abort(); }

Status InProcessBackend::Begin() {
  if (txn_ != nullptr && txn_->active()) {
    return FailedPreconditionError("transaction already open");
  }
  txn_ = store_->Begin();
  return OkStatus();
}

Status InProcessBackend::BeginReadOnly() {
  if (txn_ != nullptr && txn_->active()) {
    return FailedPreconditionError("transaction already open");
  }
  TDB_ASSIGN_OR_RETURN(txn_, store_->BeginReadOnly());
  return OkStatus();
}

Status InProcessBackend::Commit() {
  if (txn_ == nullptr) {
    return FailedPreconditionError("no open transaction");
  }
  Status status = txn_->Commit();
  txn_.reset();
  return status;
}

void InProcessBackend::Abort() {
  if (txn_ != nullptr) {
    if (txn_->active()) {
      txn_->Abort();
    }
    txn_.reset();
  }
}

Result<uint64_t> InProcessBackend::Insert(const std::string& value) {
  if (txn_ == nullptr) {
    return FailedPreconditionError("no open transaction");
  }
  TDB_ASSIGN_OR_RETURN(ObjectId id,
                       txn_->Insert(std::make_shared<BlobValue>(value)));
  return id.Pack();
}

Result<size_t> InProcessBackend::Read(uint64_t packed_id) {
  if (txn_ == nullptr) {
    return FailedPreconditionError("no open transaction");
  }
  return BlobSize(txn_->Get(ChunkId::Unpack(packed_id)));
}

Result<size_t> InProcessBackend::ReadForUpdate(uint64_t packed_id) {
  if (txn_ == nullptr) {
    return FailedPreconditionError("no open transaction");
  }
  return BlobSize(txn_->GetForUpdate(ChunkId::Unpack(packed_id)));
}

Result<std::string> InProcessBackend::ReadValueForUpdate(uint64_t packed_id) {
  if (txn_ == nullptr) {
    return FailedPreconditionError("no open transaction");
  }
  return BlobString(txn_->GetForUpdate(ChunkId::Unpack(packed_id)));
}

Status InProcessBackend::Update(uint64_t packed_id, const std::string& value) {
  if (txn_ == nullptr) {
    return FailedPreconditionError("no open transaction");
  }
  return txn_->Put(ChunkId::Unpack(packed_id),
                   std::make_shared<BlobValue>(value));
}

void WireBackend::Abort() {
  if (client_.in_transaction()) {
    (void)client_.Abort();
  }
}

Result<uint64_t> WireBackend::Insert(const std::string& value) {
  TDB_ASSIGN_OR_RETURN(ObjectId id, client_.Insert(BlobValue(value)));
  return id.Pack();
}

Result<size_t> WireBackend::Read(uint64_t packed_id) {
  return BlobSize(client_.Get(ChunkId::Unpack(packed_id)));
}

Result<size_t> WireBackend::ReadForUpdate(uint64_t packed_id) {
  return BlobSize(client_.GetForUpdate(ChunkId::Unpack(packed_id)));
}

Result<std::string> WireBackend::ReadValueForUpdate(uint64_t packed_id) {
  return BlobString(client_.GetForUpdate(ChunkId::Unpack(packed_id)));
}

Status WireBackend::Update(uint64_t packed_id, const std::string& value) {
  return client_.Put(ChunkId::Unpack(packed_id), BlobValue(value));
}

// ---------------------------------------------------------------------------
// KeyTable

void KeyTable::Reset(std::vector<uint64_t> ids) {
  std::lock_guard<std::mutex> lock(mu_);
  ids_ = std::move(ids);
}

uint64_t KeyTable::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ids_.size();
}

uint64_t KeyTable::Get(uint64_t index) const {
  std::lock_guard<std::mutex> lock(mu_);
  return index < ids_.size() ? ids_[index] : 0;
}

void KeyTable::Publish(uint64_t packed_id) {
  std::lock_guard<std::mutex> lock(mu_);
  ids_.push_back(packed_id);
}

std::vector<uint64_t> KeyTable::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ids_;
}

// ---------------------------------------------------------------------------
// Latency summary

LatencySummary LatencySummary::FromSamples(std::vector<double> samples_us) {
  LatencySummary out;
  if (samples_us.empty()) {
    return out;
  }
  std::sort(samples_us.begin(), samples_us.end());
  out.count = samples_us.size();
  out.mean_us = obs::Mean(samples_us);
  out.stddev_us = obs::SampleStddev(samples_us);
  out.p50_us = obs::SortedQuantile(samples_us, 0.50);
  out.p95_us = obs::SortedQuantile(samples_us, 0.95);
  out.p99_us = obs::SortedQuantile(samples_us, 0.99);
  out.p999_us = obs::SortedQuantile(samples_us, 0.999);
  out.max_us = samples_us.back();
  return out;
}

// ---------------------------------------------------------------------------
// Driver

YcsbDriver::YcsbDriver(WorkloadSpec spec, DriverOptions options)
    : spec_(std::move(spec)), options_(options) {}

namespace {

// A payload whose first bytes carry a sequence stamp so repeated updates of
// one key produce distinct values; the tail is a fixed fill (generating
// random bytes per op would benchmark the generator, not the store).
std::string MakeValue(uint64_t stamp, uint64_t size) {
  std::string value(static_cast<size_t>(size < 8 ? 8 : size), 'v');
  for (int i = 0; i < 8; ++i) {
    value[i] = static_cast<char>((stamp >> (i * 8)) & 0xFF);
  }
  return value;
}

double NowUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Status YcsbDriver::Load(YcsbBackend& backend, KeyTable& table) {
  constexpr uint64_t kLoadBatch = 128;
  Rng rng(options_.seed);
  ValueSizeDistribution vsize(spec_.value_min, spec_.value_max);
  std::vector<uint64_t> ids;
  ids.reserve(spec_.record_count);
  uint64_t loaded = 0;
  while (loaded < spec_.record_count) {
    uint64_t batch = std::min(kLoadBatch, spec_.record_count - loaded);
    TDB_RETURN_IF_ERROR(backend.Begin());
    std::vector<uint64_t> pending;
    pending.reserve(batch);
    for (uint64_t i = 0; i < batch; ++i) {
      auto id = backend.Insert(MakeValue(loaded + i, vsize.Next(rng)));
      if (!id.ok()) {
        backend.Abort();
        return id.status();
      }
      pending.push_back(*id);
    }
    TDB_RETURN_IF_ERROR(backend.Commit());
    ids.insert(ids.end(), pending.begin(), pending.end());
    loaded += batch;
  }
  table.Reset(std::move(ids));
  return OkStatus();
}

struct YcsbDriver::ThreadResult {
  Status hard_failure = OkStatus();  // non-timeout backend failure
  bool halted = false;               // stopped early (tolerated failure)
  uint64_t reads = 0;
  uint64_t updates = 0;
  uint64_t inserts = 0;
  uint64_t scans = 0;
  uint64_t scan_items = 0;
  uint64_t rmws = 0;
  uint64_t txns_committed = 0;
  uint64_t txns_aborted = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  std::vector<double> txn_latency_us;
  std::vector<double> commit_latency_us;
};

void YcsbDriver::RunThread(int thread_index, uint64_t op_budget,
                           YcsbBackend& backend, KeyTable& table,
                           ThreadResult& out) {
  Rng rng(options_.seed + 0x9E3779B97F4A7C15ULL *
                              static_cast<uint64_t>(thread_index + 1));
  KeyDistribution dist(spec_.dist, std::max<uint64_t>(table.size(), 1),
                       spec_.hotspot);
  ValueSizeDistribution vsize(spec_.value_min, spec_.value_max);

  const double t_read = spec_.read;
  const double t_update = t_read + spec_.update;
  const double t_insert = t_update + spec_.insert;
  const double t_scan = t_insert + spec_.scan;

  auto stopped = [&] {
    return internal_stop_.load(std::memory_order_relaxed) ||
           (options_.stop != nullptr &&
            options_.stop->load(std::memory_order_relaxed));
  };
  // A backend failure that is not a lock timeout: under tolerate_failures
  // (torture with crash injection) the thread halts with a partial result;
  // otherwise it fails the whole run.
  auto hard_fail = [&](const Status& status) {
    if (options_.tolerate_failures) {
      out.halted = true;
    } else {
      out.hard_failure = status;
      internal_stop_.store(true, std::memory_order_relaxed);
    }
    backend.Abort();
  };

  uint64_t done = 0;
  uint64_t stamp = static_cast<uint64_t>(thread_index) << 48;
  while (done < op_budget && !stopped()) {
    uint64_t batch = std::min<uint64_t>(
        std::max<uint64_t>(options_.ops_per_txn, 1), op_budget - done);
    bool committed = false;
    for (int attempt = 0; attempt <= options_.txn_retry_limit; ++attempt) {
      if (stopped()) {
        return;
      }
      ThreadResult staged;  // applied only if this attempt commits
      std::vector<uint64_t> pending_inserts;
      // Draw every operation's kind up front (one NextDouble per op, as
      // before) so a transaction known to be all reads/scans can run as a
      // lock-free snapshot transaction.
      std::vector<YcsbOpKind> kinds(batch);
      bool all_reads = true;
      for (uint64_t op = 0; op < batch; ++op) {
        double p = rng.NextDouble();
        kinds[op] = p < t_read     ? YcsbOpKind::kRead
                    : p < t_update ? YcsbOpKind::kUpdate
                    : p < t_insert ? YcsbOpKind::kInsert
                    : p < t_scan   ? YcsbOpKind::kScan
                                   : YcsbOpKind::kRmw;
        all_reads = all_reads && (kinds[op] == YcsbOpKind::kRead ||
                                  kinds[op] == YcsbOpKind::kScan);
      }
      bool use_snapshot = options_.snapshot_reads && all_reads;
      double txn_start = NowUs();
      Status status = use_snapshot ? backend.BeginReadOnly() : backend.Begin();
      if (!status.ok()) {
        hard_fail(status);
        return;
      }
      bool timeout = false;
      for (uint64_t op = 0; op < batch && !timeout; ++op) {
        uint64_t n = table.size();
        Status op_status = OkStatus();
        if (kinds[op] == YcsbOpKind::kRead) {
          auto size = backend.Read(table.Get(dist.Next(rng, n)));
          if (size.ok()) {
            ++staged.reads;
            staged.bytes_read += *size;
          }
          op_status = size.status();
        } else if (kinds[op] == YcsbOpKind::kUpdate) {
          std::string value = MakeValue(++stamp, vsize.Next(rng));
          staged.bytes_written += value.size();
          op_status = backend.Update(table.Get(dist.Next(rng, n)), value);
          if (op_status.ok()) {
            ++staged.updates;
          }
        } else if (kinds[op] == YcsbOpKind::kInsert) {
          std::string value = MakeValue(++stamp, vsize.Next(rng));
          staged.bytes_written += value.size();
          auto id = backend.Insert(value);
          if (id.ok()) {
            ++staged.inserts;
            pending_inserts.push_back(*id);
          }
          op_status = id.status();
        } else if (kinds[op] == YcsbOpKind::kScan) {
          uint64_t start = dist.Next(rng, n);
          uint64_t len = 1 + rng.NextBelow(std::max<uint64_t>(
                                 spec_.max_scan_len, 1));
          uint64_t end = std::min(start + len, n);
          for (uint64_t k = start; k < end; ++k) {
            auto size = backend.Read(table.Get(k));
            if (!size.ok()) {
              op_status = size.status();
              break;
            }
            ++staged.scan_items;
            staged.bytes_read += *size;
          }
          if (op_status.ok()) {
            ++staged.scans;
          }
        } else {
          uint64_t key = table.Get(dist.Next(rng, n));
          auto size = backend.ReadForUpdate(key);
          op_status = size.status();
          if (op_status.ok()) {
            staged.bytes_read += *size;
            std::string value = MakeValue(++stamp, vsize.Next(rng));
            staged.bytes_written += value.size();
            op_status = backend.Update(key, value);
            if (op_status.ok()) {
              ++staged.rmws;
            }
          }
        }
        if (!op_status.ok()) {
          if (op_status.code() == StatusCode::kTimeout) {
            timeout = true;  // deadlock broken under us: retry the txn
          } else {
            hard_fail(op_status);
            return;
          }
        }
      }
      if (timeout) {
        backend.Abort();
        ++out.txns_aborted;
        continue;
      }
      double commit_start = NowUs();
      status = backend.Commit();
      double txn_end = NowUs();
      if (status.ok()) {
        for (uint64_t id : pending_inserts) {
          table.Publish(id);
        }
        out.reads += staged.reads;
        out.updates += staged.updates;
        out.inserts += staged.inserts;
        out.scans += staged.scans;
        out.scan_items += staged.scan_items;
        out.rmws += staged.rmws;
        out.bytes_read += staged.bytes_read;
        out.bytes_written += staged.bytes_written;
        ++out.txns_committed;
        out.txn_latency_us.push_back(txn_end - txn_start);
        out.commit_latency_us.push_back(txn_end - commit_start);
        // Mirror the samples into the registry so tails are also available
        // from SnapshotJson (and over kStats) without the sample vectors.
        obs::Observe("ycsb.txn_us", txn_end - txn_start);
        obs::Observe("ycsb.commit_us", txn_end - commit_start);
        committed = true;
        break;
      }
      ++out.txns_aborted;
      if (status.code() != StatusCode::kTimeout) {
        hard_fail(status);
        return;
      }
    }
    // Whether this batch committed or exhausted its retries, the budget is
    // spent: the driver models an open workload, not a must-succeed queue.
    (void)committed;
    done += batch;
  }
}

DriverResult YcsbDriver::Run(const std::vector<YcsbBackend*>& backends,
                             KeyTable& table) {
  DriverResult result;
  if (backends.empty()) {
    result.status = InvalidArgumentError("no backends supplied");
    return result;
  }
  internal_stop_.store(false, std::memory_order_relaxed);
  const int threads = static_cast<int>(backends.size());
  std::vector<ThreadResult> per_thread(threads);

  uint64_t per = options_.operations / threads;
  uint64_t extra = options_.operations % threads;

  auto start = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (int t = 0; t < threads; ++t) {
      uint64_t budget = per + (static_cast<uint64_t>(t) < extra ? 1 : 0);
      workers.emplace_back([this, t, budget, &backends, &table, &per_thread] {
        RunThread(t, budget, *backends[t], table, per_thread[t]);
      });
    }
    for (auto& w : workers) {
      w.join();
    }
  }
  auto end = std::chrono::steady_clock::now();
  result.wall_us =
      std::chrono::duration<double, std::micro>(end - start).count();

  std::vector<double> txn_lat;
  std::vector<double> commit_lat;
  for (ThreadResult& tr : per_thread) {
    if (!tr.hard_failure.ok() && result.status.ok()) {
      result.status = tr.hard_failure;
    }
    result.reads += tr.reads;
    result.updates += tr.updates;
    result.inserts += tr.inserts;
    result.scans += tr.scans;
    result.scan_items += tr.scan_items;
    result.rmws += tr.rmws;
    result.txns_committed += tr.txns_committed;
    result.txns_aborted += tr.txns_aborted;
    result.bytes_read += tr.bytes_read;
    result.bytes_written += tr.bytes_written;
    txn_lat.insert(txn_lat.end(), tr.txn_latency_us.begin(),
                   tr.txn_latency_us.end());
    commit_lat.insert(commit_lat.end(), tr.commit_latency_us.begin(),
                      tr.commit_latency_us.end());
  }
  result.txn_latency = LatencySummary::FromSamples(std::move(txn_lat));
  result.commit_latency = LatencySummary::FromSamples(std::move(commit_lat));
  return result;
}

}  // namespace tdb::workload
