// The soak/torture harness (samba's tdbtorture, grown up): YCSB driver
// traffic plus balance-transfer transactions run continuously while a
// maintenance thread overlaps checkpoints, segment cleaning, and chained
// incremental backups (each verified by restoring onto a fresh store), and a
// disruptor thread arms crash-point injection against the live untrusted
// store — then the harness "reboots" (reopen + crash recovery) and asserts
// the conservation invariants:
//
//  * the sum of all account balances never changes (every transfer commits
//    atomically or not at all, across group commit, cleaning, and crashes);
//  * every acknowledged insert stays readable after recovery;
//  * recovery and every read is tamper-free (no kTamperDetected);
//  * every restored backup shows a consistent snapshot (same balance sum).
//
// Runs in two modes: kLocal drives the ObjectStore directly; kWire puts a
// TdbServer/TdbClient pair (loopback transport) in the path so sessions,
// framing, idle timeouts, and group commit are under fire too — in kWire
// mode a crash also takes the server down and recovery restarts it.
//
// Duration is wall-clock bounded; tests default to a couple of seconds and
// honor the TDB_SOAK_SECONDS environment variable for long soaks.

#ifndef SRC_WORKLOAD_TORTURE_H_
#define SRC_WORKLOAD_TORTURE_H_

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "src/backup/backup_store.h"
#include "src/common/crash_point.h"
#include "src/net/loopback.h"
#include "src/server/server.h"
#include "src/store/archival_store.h"
#include "src/store/crash_point_store.h"
#include "src/workload/ycsb.h"

namespace tdb::workload {

enum class TortureMode : uint8_t { kLocal, kWire };

struct TortureOptions {
  TortureMode mode = TortureMode::kLocal;
  std::chrono::milliseconds duration{2000};
  // One disruption cycle: traffic runs, maintenance interleaves, at most one
  // injected crash, then verification.
  std::chrono::milliseconds epoch{500};
  uint64_t seed = 42;

  int driver_threads = 3;
  int transfer_threads = 2;
  uint64_t accounts = 16;
  int64_t seed_balance = 1000;

  uint64_t records = 512;
  uint64_t value_min = 64;
  uint64_t value_max = 512;
  // Kept well below `records` so steady-state reads miss the object cache
  // and exercise the chunk read/validate path while the cleaner runs.
  size_t object_cache_capacity = 128;

  bool crash_injection = true;
  // Verify a restore every Nth backup (restores are expensive).
  int restore_verify_every = 2;

  // Applies TDB_SOAK_SECONDS (if set and parseable) to `duration`.
  void ApplySoakEnv();
};

struct TortureReport {
  uint64_t epochs = 0;
  uint64_t crashes = 0;
  uint64_t recoveries = 0;
  uint64_t checkpoints = 0;
  uint64_t cleans = 0;
  uint64_t backups = 0;
  uint64_t restores_verified = 0;
  uint64_t driver_txns_committed = 0;
  uint64_t driver_txns_aborted = 0;
  uint64_t driver_ops = 0;
  uint64_t transfers_committed = 0;
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
  std::string Summary() const;
};

class TortureHarness {
 public:
  explicit TortureHarness(TortureOptions options);
  ~TortureHarness();

  // Builds the stack, loads the dataset, and soaks for options.duration.
  // A non-OK status means the harness itself could not run; invariant
  // violations land in the report instead.
  Result<TortureReport> Run();

 private:
  Status BuildStack(bool fresh);
  void TearDownStack();
  Status LoadData();
  void RunEpoch(TortureReport& report);
  void MaintenanceLoop(const std::atomic<bool>& stop, TortureReport& report);
  void TransferLoop(int thread_index, const std::atomic<bool>& stop,
                    std::atomic<uint64_t>& committed);
  Status BackupAndMaybeVerify(TortureReport& report, bool force_verify = false);
  void VerifyInvariants(const char* when, TortureReport& report);
  Status RecoverAfterCrash(TortureReport& report);
  void Violation(TortureReport& report, std::string what);

  // One transfer transaction against whatever the mode's access path is.
  Status TransferOnce(YcsbBackend& backend, Rng& rng);

  std::unique_ptr<YcsbBackend> NewBackend();
  ObjectStore* verify_store();

  TortureOptions options_;
  Rng rng_;

  // Devices (survive "reboots"):
  MemUntrustedStore base_;
  CrashPointController controller_;
  CrashPointStore crash_store_;
  MemSecretStore secret_;
  MemMonotonicCounter counter_;
  MemArchive archive_;

  // The rebuildable stack:
  TypeRegistry registry_;
  std::unique_ptr<ChunkStore> chunks_;
  std::unique_ptr<ObjectStore> objects_;        // kLocal (and verification)
  std::unique_ptr<net::LoopbackTransport> transport_;  // kWire
  std::unique_ptr<server::TdbServer> server_;          // kWire

  PartitionId partition_ = 0;
  std::vector<uint64_t> account_ids_;  // packed
  int64_t expected_total_ = 0;
  KeyTable table_;
  uint64_t epoch_seed_ = 0;

  // Incremental backup chain state.
  PartitionId base_snapshot_ = 0;
  std::vector<std::string> backup_streams_;
  uint64_t next_backup_id_ = 1;

  std::mutex violations_mu_;
};

}  // namespace tdb::workload

#endif  // SRC_WORKLOAD_TORTURE_H_
