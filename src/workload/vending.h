// The vending benchmark of §9.5.1: a digital-goods rights-management
// database with 30 collections (goods, contracts, accounts, licenses,
// receipts, and ancillary state), each with one to four indexes.
//
//   Bind:    a vendor binds three alternative contracts to a digital good
//            (two commits; contract creation plus catalog/vendor bookkeeping
//            across many collections).
//   Release: a consumer releases the good under one of the three contracts,
//            picked pseudo-randomly (one commit; account debit, license
//            update, receipt turnover, and cache-resident bookkeeping).
//
// The exact schema of the paper's benchmark is not published; this workload
// reproduces its published *operation profile* (Figure 10: roughly 78 reads,
// 18 updates, 1 delete, 0.4 adds, 1 commit per release; 72 reads, 73
// updates, 1 delete, 22 adds, 2 commits per bind). Actual counts are
// measured and reported by bench_vending.

#ifndef SRC_WORKLOAD_VENDING_H_
#define SRC_WORKLOAD_VENDING_H_

#include <map>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/workload/record.h"

namespace tdb {

struct VendingConfig {
  int num_collections = 30;
  int num_goods = 40;
  int num_consumers = 20;
  int filler_per_collection = 30;
  int initial_receipts = 120;
  size_t payload_size = 300;
  uint64_t seed = 1234;
};

class VendingWorkload {
 public:
  VendingWorkload(WorkloadStore* store, VendingConfig config)
      : store_(store), config_(config), rng_(config.seed) {}

  // Creates the schema and initial data, and warms the cache (§9.5.1: "The
  // benchmark loads the cache before executing an experiment").
  Status Setup();

  Status Bind(int good_index);
  Status Release(int good_index, int consumer_index);

  // The paper's experiments: 10 consecutive operations each.
  Status RunBindExperiment(int operations = 10);
  Status RunReleaseExperiment(int operations = 10);

 private:
  std::string FillerName(int index) const;
  Record MakeRecord(uint64_t f0, uint64_t f1);
  Status FillerReads(int collections, int reads_each);
  Status FillerUpdates(int collections, int updates_each);
  Status FillerAdds(int adds);

  WorkloadStore* store_;
  VendingConfig config_;
  Rng rng_;

  std::vector<uint64_t> good_ids_;
  std::vector<uint64_t> account_ids_;
  std::vector<uint64_t> license_ids_;  // consumer-major [c * goods + g]
  std::vector<uint64_t> receipt_pool_;
  std::map<std::string, std::vector<uint64_t>> filler_ids_;
  // The application's own copies of filler records, so bookkeeping updates
  // need no read (the paper's bind profile has roughly as many updates as
  // reads, which implies blind updates from application state).
  std::map<std::pair<std::string, uint64_t>, Record> filler_records_;
  int filler_cursor_ = 0;
};

}  // namespace tdb

#endif  // SRC_WORKLOAD_VENDING_H_
