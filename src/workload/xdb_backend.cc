#include "src/workload/xdb_backend.h"

#include "src/collect/index.h"

namespace tdb {

Result<std::unique_ptr<XdbWorkloadStore>> XdbWorkloadStore::Create(
    Xdb* db, MonotonicCounter* counter, uint32_t counter_flush_interval) {
  auto store = std::unique_ptr<XdbWorkloadStore>(new XdbWorkloadStore());
  CryptoParams params;
  params.cipher = CipherAlg::kDes;
  params.hash = HashAlg::kSha1;
  params.key = Bytes(8, 0x5C);
  TDB_ASSIGN_OR_RETURN(CryptoSuite suite, CryptoSuite::Create(params));
  store->secure_ = std::make_unique<SecureXdb>(db, std::move(suite), counter,
                                               counter_flush_interval);
  return store;
}

Bytes XdbWorkloadStore::IndexKey(uint64_t field_value, uint64_t id) {
  Bytes key;
  for (int i = 0; i < 8; ++i) {
    key.push_back(static_cast<uint8_t>(field_value >> (56 - 8 * i)));
  }
  for (int i = 0; i < 8; ++i) {
    key.push_back(static_cast<uint8_t>(id >> (56 - 8 * i)));
  }
  return key;
}

Status XdbWorkloadStore::CreateCollection(const std::string& name,
                                          int num_indexes) {
  TDB_RETURN_IF_ERROR(secure_->CreateTree(name));
  for (int field = 0; field < num_indexes; ++field) {
    TDB_RETURN_IF_ERROR(secure_->CreateTree(IndexTree(name, field)));
  }
  index_counts_[name] = num_indexes;
  next_ids_[name] = 1;
  return OkStatus();
}

Status XdbWorkloadStore::Begin() { return OkStatus(); }

Status XdbWorkloadStore::Commit() {
  TDB_RETURN_IF_ERROR(secure_->Commit());
  ++counts_.commits;
  return OkStatus();
}

Status XdbWorkloadStore::AddIndexEntries(const std::string& collection,
                                         uint64_t id, const Record& record) {
  for (int field = 0; field < index_counts_[collection]; ++field) {
    TDB_RETURN_IF_ERROR(secure_->Put(IndexTree(collection, field),
                                     IndexKey(record.fields[field], id), {}));
  }
  return OkStatus();
}

Status XdbWorkloadStore::RemoveIndexEntries(const std::string& collection,
                                            uint64_t id,
                                            const Record& record) {
  for (int field = 0; field < index_counts_[collection]; ++field) {
    TDB_RETURN_IF_ERROR(secure_->Delete(IndexTree(collection, field),
                                        IndexKey(record.fields[field], id)));
  }
  return OkStatus();
}

Result<uint64_t> XdbWorkloadStore::Insert(const std::string& collection,
                                          const Record& record) {
  uint64_t id = next_ids_[collection]++;
  TDB_RETURN_IF_ERROR(
      secure_->Put(collection, EncodeU64Key(id), record.Pickle()));
  TDB_RETURN_IF_ERROR(AddIndexEntries(collection, id, record));
  ++counts_.adds;
  return id;
}

Result<Record> XdbWorkloadStore::Get(const std::string& collection,
                                     uint64_t id) {
  TDB_ASSIGN_OR_RETURN(Bytes stored, secure_->Get(collection, EncodeU64Key(id)));
  TDB_ASSIGN_OR_RETURN(Record record, Record::Unpickle(stored));
  ++counts_.reads;
  return record;
}

Status XdbWorkloadStore::Update(const std::string& collection, uint64_t id,
                                const Record& record) {
  TDB_ASSIGN_OR_RETURN(Bytes old_stored,
                       secure_->Get(collection, EncodeU64Key(id)));
  TDB_ASSIGN_OR_RETURN(Record old_record, Record::Unpickle(old_stored));
  // Reindex changed fields.
  for (int field = 0; field < index_counts_[collection]; ++field) {
    if (old_record.fields[field] != record.fields[field]) {
      TDB_RETURN_IF_ERROR(
          secure_->Delete(IndexTree(collection, field),
                          IndexKey(old_record.fields[field], id)));
      TDB_RETURN_IF_ERROR(secure_->Put(IndexTree(collection, field),
                                       IndexKey(record.fields[field], id), {}));
    }
  }
  TDB_RETURN_IF_ERROR(
      secure_->Put(collection, EncodeU64Key(id), record.Pickle()));
  ++counts_.updates;
  return OkStatus();
}

Status XdbWorkloadStore::Delete(const std::string& collection, uint64_t id) {
  TDB_ASSIGN_OR_RETURN(Bytes old_stored,
                       secure_->Get(collection, EncodeU64Key(id)));
  TDB_ASSIGN_OR_RETURN(Record old_record, Record::Unpickle(old_stored));
  TDB_RETURN_IF_ERROR(RemoveIndexEntries(collection, id, old_record));
  TDB_RETURN_IF_ERROR(secure_->Delete(collection, EncodeU64Key(id)));
  ++counts_.deletes;
  return OkStatus();
}

Result<std::vector<uint64_t>> XdbWorkloadStore::LookupByField(
    const std::string& collection, int field, uint64_t key) {
  if (field >= index_counts_[collection]) {
    return InvalidArgumentError("field is not indexed");
  }
  std::vector<uint64_t> out;
  Bytes lo = IndexKey(key, 0);
  Bytes hi = IndexKey(key, ~0ULL);
  TDB_RETURN_IF_ERROR(secure_->Scan(
      IndexTree(collection, field), lo, hi, [&](ByteView k, ByteView) {
        uint64_t id = 0;
        for (int i = 8; i < 16; ++i) {
          id = (id << 8) | k[i];
        }
        out.push_back(id);
        return true;
      }));
  ++counts_.reads;
  return out;
}

}  // namespace tdb
