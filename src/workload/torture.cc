#include "src/workload/torture.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <thread>
#include <utility>

#include "src/backup/backup_store.h"
#include "src/server/blob.h"

namespace tdb::workload {

namespace {

constexpr uint64_t kGolden = 0x9E3779B97F4A7C15ULL;

CryptoParams TorturePartitionParams() {
  return CryptoParams{CipherAlg::kAes128, HashAlg::kSha256, Bytes(16, 0x7E)};
}

// Account balances travel as 8-byte little-endian int64 blobs.
std::string EncodeBalance(int64_t balance) {
  std::string out(8, '\0');
  uint64_t u = static_cast<uint64_t>(balance);
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<char>((u >> (i * 8)) & 0xFF);
  }
  return out;
}

Result<int64_t> DecodeBalance(const std::string& value) {
  if (value.size() != 8) {
    return CorruptionError("account blob is not an 8-byte balance");
  }
  uint64_t u = 0;
  for (int i = 0; i < 8; ++i) {
    u |= static_cast<uint64_t>(static_cast<uint8_t>(value[i])) << (i * 8);
  }
  return static_cast<int64_t>(u);
}

// RestoreStream validates an incremental chain within one call, so a chain
// archived as separate streams is restored by concatenating the streams
// (full first, then each incremental in creation order) into one source.
class ChainSource final : public ArchivalSource {
 public:
  explicit ChainSource(std::vector<std::unique_ptr<ArchivalSource>> parts)
      : parts_(std::move(parts)) {}

  Result<Bytes> Read(size_t n) override {
    if (n == 0) {
      // A zero-byte read returns nothing on any stream; it must not be
      // mistaken for end-of-part (frames with empty payloads are real).
      return Bytes{};
    }
    while (index_ < parts_.size()) {
      TDB_ASSIGN_OR_RETURN(Bytes out, parts_[index_]->Read(n));
      if (!out.empty()) {
        return out;
      }
      ++index_;
    }
    return Bytes{};
  }

 private:
  std::vector<std::unique_ptr<ArchivalSource>> parts_;
  size_t index_ = 0;
};

// The traffic mix the driver runs during torture: read-heavy with enough
// updates, inserts, scans, and RMWs to keep every code path under fire.
WorkloadSpec TortureSpec(const TortureOptions& options) {
  WorkloadSpec spec;
  spec.name = "torture";
  spec.read = 0.50;
  spec.update = 0.25;
  spec.insert = 0.05;
  spec.scan = 0.15;
  spec.rmw = 0.05;
  spec.dist = KeyDistributionKind::kZipfian;
  spec.record_count = options.records;
  spec.value_min = options.value_min;
  spec.value_max = options.value_max;
  spec.max_scan_len = 8;
  return spec;
}

}  // namespace

void TortureOptions::ApplySoakEnv() {
  const char* env = std::getenv("TDB_SOAK_SECONDS");
  if (env == nullptr || *env == '\0') {
    return;
  }
  char* end = nullptr;
  long seconds = std::strtol(env, &end, 10);
  if (end == env || seconds <= 0) {
    return;
  }
  duration = std::chrono::milliseconds(seconds * 1000);
}

std::string TortureReport::Summary() const {
  std::ostringstream out;
  out << "epochs=" << epochs << " crashes=" << crashes
      << " recoveries=" << recoveries << " checkpoints=" << checkpoints
      << " cleans=" << cleans << " backups=" << backups
      << " restores_verified=" << restores_verified
      << " driver_txns=" << driver_txns_committed << "/+"
      << driver_txns_aborted << " aborted, driver_ops=" << driver_ops
      << " transfers=" << transfers_committed
      << " violations=" << violations.size();
  for (const std::string& v : violations) {
    out << "\n  VIOLATION: " << v;
  }
  return out.str();
}

TortureHarness::TortureHarness(TortureOptions options)
    : options_(options),
      rng_(options.seed),
      crash_store_(&base_, &controller_),
      secret_(Bytes(32, 0xC4)) {}

TortureHarness::~TortureHarness() { TearDownStack(); }

Status TortureHarness::BuildStack(bool fresh) {
  ChunkStoreOptions chunk_options;
  chunk_options.validation.mode = ValidationMode::kCounter;

  TrustedServices trusted{&secret_, nullptr, &counter_};
  if (fresh) {
    TDB_ASSIGN_OR_RETURN(chunks_, ChunkStore::Create(&crash_store_, trusted,
                                                     chunk_options));
    TDB_ASSIGN_OR_RETURN(partition_, chunks_->AllocatePartition());
    ChunkStore::Batch batch;
    batch.WritePartition(partition_, TorturePartitionParams());
    TDB_RETURN_IF_ERROR(chunks_->Commit(std::move(batch)));
    TDB_RETURN_IF_ERROR(RegisterType<server::BlobValue>(registry_));
  } else {
    TDB_ASSIGN_OR_RETURN(chunks_, ChunkStore::Open(&crash_store_, trusted,
                                                   chunk_options));
    if (!chunks_->PartitionExists(partition_)) {
      return CorruptionError("served partition vanished across recovery");
    }
  }

  if (options_.mode == TortureMode::kLocal) {
    ObjectStoreOptions object_options;
    object_options.lock_timeout = std::chrono::milliseconds(100);
    object_options.cache_capacity = options_.object_cache_capacity;
    object_options.group_commit = true;
    objects_ = std::make_unique<ObjectStore>(chunks_.get(), partition_,
                                             &registry_, object_options);
  } else {
    transport_ = std::make_unique<net::LoopbackTransport>();
    server::TdbServerOptions server_options;
    server_options.lock_timeout = std::chrono::milliseconds(100);
    server_options.cache_capacity = options_.object_cache_capacity;
    server_options.group_commit = true;
    server_ = std::make_unique<server::TdbServer>(chunks_.get(), partition_,
                                                  &registry_, server_options);
    TDB_RETURN_IF_ERROR(server_->Start(transport_.get(), "torture"));
  }
  return OkStatus();
}

void TortureHarness::TearDownStack() {
  if (server_ != nullptr) {
    server_->Stop();
  }
  server_.reset();
  transport_.reset();
  objects_.reset();
  chunks_.reset();
}

// The quiesced-verification access path: the local store, or the store the
// server shares with in-process callers.
ObjectStore* TortureHarness::verify_store() {
  if (options_.mode == TortureMode::kLocal) {
    return objects_.get();
  }
  return server_ != nullptr ? server_->object_store() : nullptr;
}

std::unique_ptr<YcsbBackend> TortureHarness::NewBackend() {
  if (options_.mode == TortureMode::kLocal) {
    return std::make_unique<InProcessBackend>(objects_.get());
  }
  auto backend = std::make_unique<WireBackend>(&registry_);
  if (!backend->Connect(transport_.get(), server_->address()).ok()) {
    return nullptr;
  }
  return backend;
}

Status TortureHarness::LoadData() {
  std::unique_ptr<YcsbBackend> backend = NewBackend();
  if (backend == nullptr) {
    return IoError("could not connect the loading backend");
  }

  // The accounts whose balance sum is conserved for the rest of the run.
  TDB_RETURN_IF_ERROR(backend->Begin());
  account_ids_.clear();
  for (uint64_t i = 0; i < options_.accounts; ++i) {
    TDB_ASSIGN_OR_RETURN(uint64_t id,
                         backend->Insert(EncodeBalance(options_.seed_balance)));
    account_ids_.push_back(id);
  }
  TDB_RETURN_IF_ERROR(backend->Commit());
  expected_total_ =
      static_cast<int64_t>(options_.accounts) * options_.seed_balance;

  DriverOptions load_options;
  load_options.seed = options_.seed;
  YcsbDriver loader(TortureSpec(options_), load_options);
  return loader.Load(*backend, table_);
}

Status TortureHarness::TransferOnce(YcsbBackend& backend, Rng& rng) {
  uint64_t a = rng.NextBelow(options_.accounts);
  uint64_t b = rng.NextBelow(options_.accounts);
  if (a == b) {
    b = (b + 1) % options_.accounts;
  }
  // Lock in index order to keep deadlocks (and timeout aborts) rare.
  uint64_t first = std::min(a, b);
  uint64_t second = std::max(a, b);
  int64_t amount = static_cast<int64_t>(1 + rng.NextBelow(20));

  TDB_RETURN_IF_ERROR(backend.Begin());
  auto fail = [&](const Status& status) {
    backend.Abort();
    return status;
  };
  auto value_first = backend.ReadValueForUpdate(account_ids_[first]);
  if (!value_first.ok()) return fail(value_first.status());
  auto value_second = backend.ReadValueForUpdate(account_ids_[second]);
  if (!value_second.ok()) return fail(value_second.status());
  auto balance_first = DecodeBalance(*value_first);
  if (!balance_first.ok()) return fail(balance_first.status());
  auto balance_second = DecodeBalance(*value_second);
  if (!balance_second.ok()) return fail(balance_second.status());

  // Move `amount` from a to b (signs depend on which index sorted first).
  int64_t delta_first = (first == a) ? -amount : amount;
  Status status = backend.Update(account_ids_[first],
                                 EncodeBalance(*balance_first + delta_first));
  if (!status.ok()) return fail(status);
  status = backend.Update(account_ids_[second],
                          EncodeBalance(*balance_second - delta_first));
  if (!status.ok()) return fail(status);
  return backend.Commit();
}

void TortureHarness::TransferLoop(int thread_index,
                                  const std::atomic<bool>& stop,
                                  std::atomic<uint64_t>& committed) {
  std::unique_ptr<YcsbBackend> backend = NewBackend();
  if (backend == nullptr) {
    return;  // connect raced a crash; the epoch runs without this thread
  }
  Rng rng(epoch_seed_ + kGolden * static_cast<uint64_t>(thread_index + 101));
  while (!stop.load(std::memory_order_relaxed)) {
    Status status = TransferOnce(*backend, rng);
    if (status.ok()) {
      committed.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (status.code() == StatusCode::kTimeout) {
      continue;  // deadlock broken; conservation holds either way
    }
    // Any other failure means the system went down under us (the crash flag
    // is set before the error propagates). A failure while healthy is the
    // maintenance/verify threads' job to flag; this thread just stops.
    break;
  }
}

Status TortureHarness::BackupAndMaybeVerify(TortureReport& report,
                                            bool force_verify) {
  // Bound restore cost (and snapshot pinning): start a fresh full-backup
  // chain every few incrementals.
  constexpr size_t kMaxChain = 4;
  PartitionId base = backup_streams_.size() >= kMaxChain ? 0 : base_snapshot_;
  if (base == 0) {
    backup_streams_.clear();
  }

  uint64_t id = next_backup_id_++;
  std::string stream = "backup-" + std::to_string(id);
  std::unique_ptr<ArchivalSink> raw_sink = archive_.OpenSink(stream);
  CrashPointSink sink(raw_sink.get(), &controller_);

  BackupStore backup(chunks_.get());
  auto created = backup.CreateBackupSet({{partition_, base}}, /*set_id=*/id,
                                        /*created_unix=*/1700000000 + id,
                                        &sink);
  TDB_RETURN_IF_ERROR(created.status());
  TDB_RETURN_IF_ERROR(sink.Close());

  // The chain only advances once the stream is fully archived; a failure
  // above leaves the previous chain state (and a dangling partial stream
  // the restore path never sees).
  PartitionId old_snapshot = base_snapshot_;
  base_snapshot_ = created->snapshots[0];
  backup_streams_.push_back(stream);
  ++report.backups;
  if (old_snapshot != 0) {
    ChunkStore::Batch drop;
    drop.DeallocatePartition(old_snapshot);
    TDB_RETURN_IF_ERROR(chunks_->Commit(std::move(drop)));
  }

  bool verify_now =
      options_.restore_verify_every > 0 &&
      (report.backups % static_cast<uint64_t>(options_.restore_verify_every)) ==
          0;
  if (!force_verify && !verify_now) {
    return OkStatus();
  }

  // Restore the whole chain onto a fresh store (same secret, fresh counter)
  // and check the snapshot is consistent: the balance sum is conserved at
  // every committed state, so any honest snapshot shows the seed total.
  std::vector<std::unique_ptr<ArchivalSource>> parts;
  for (const std::string& name : backup_streams_) {
    TDB_ASSIGN_OR_RETURN(auto part, archive_.OpenSource(name));
    parts.push_back(std::move(part));
  }
  ChainSource chain(std::move(parts));

  MemUntrustedStore scratch_store;
  MemMonotonicCounter scratch_counter;
  ChunkStoreOptions chunk_options;
  chunk_options.validation.mode = ValidationMode::kCounter;
  TDB_ASSIGN_OR_RETURN(
      auto scratch_chunks,
      ChunkStore::Create(&scratch_store,
                         TrustedServices{&secret_, nullptr, &scratch_counter},
                         chunk_options));
  BackupStore restorer(scratch_chunks.get());
  TDB_ASSIGN_OR_RETURN(auto restored, restorer.RestoreStream(&chain));
  if (restored.restored.size() != 1 || restored.restored[0] != partition_) {
    return CorruptionError("restore did not yield the served partition");
  }

  ObjectStore restored_objects(scratch_chunks.get(), partition_, &registry_);
  std::unique_ptr<Transaction> txn = restored_objects.Begin();
  int64_t total = 0;
  for (uint64_t packed : account_ids_) {
    TDB_ASSIGN_OR_RETURN(ObjectPtr object, txn->Get(ObjectId::Unpack(packed)));
    const auto* blob = dynamic_cast<const server::BlobValue*>(object.get());
    if (blob == nullptr) {
      return CorruptionError("restored account is not a blob");
    }
    TDB_ASSIGN_OR_RETURN(int64_t balance, DecodeBalance(blob->value));
    total += balance;
  }
  txn->Abort();
  if (total != expected_total_) {
    return CorruptionError("restored snapshot broke conservation: " +
                         std::to_string(total) + " != " +
                         std::to_string(expected_total_));
  }
  ++report.restores_verified;
  return OkStatus();
}

void TortureHarness::MaintenanceLoop(const std::atomic<bool>& stop,
                                     TortureReport& report) {
  uint64_t step = 0;
  while (!stop.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    if (stop.load(std::memory_order_relaxed)) {
      return;
    }
    Status status = OkStatus();
    switch (step++ % 3) {
      case 0:
        status = chunks_->Checkpoint();
        if (status.ok()) ++report.checkpoints;
        break;
      case 1: {
        auto cleaned = chunks_->Clean(2);
        status = cleaned.status();
        if (status.ok()) report.cleans += *cleaned;
        break;
      }
      default:
        status = BackupAndMaybeVerify(report);
        break;
    }
    if (!status.ok()) {
      if (controller_.crashed()) {
        return;  // injected crash took the device down mid-operation
      }
      Violation(report, std::string("maintenance failed while healthy: ") +
                            status.ToString());
      return;
    }
  }
}

void TortureHarness::Violation(TortureReport& report, std::string what) {
  std::lock_guard<std::mutex> lock(violations_mu_);
  report.violations.push_back(std::move(what));
}

void TortureHarness::VerifyInvariants(const char* when,
                                      TortureReport& report) {
  ObjectStore* store = verify_store();
  if (store == nullptr) {
    Violation(report, std::string(when) + ": no store to verify");
    return;
  }
  std::unique_ptr<Transaction> txn = store->Begin();

  int64_t total = 0;
  for (uint64_t packed : account_ids_) {
    auto object = txn->Get(ObjectId::Unpack(packed));
    if (!object.ok()) {
      Violation(report, std::string(when) + ": account read failed: " +
                            object.status().ToString());
      txn->Abort();
      return;
    }
    const auto* blob = dynamic_cast<const server::BlobValue*>(object->get());
    auto balance =
        blob != nullptr ? DecodeBalance(blob->value)
                        : Result<int64_t>(CorruptionError("non-blob account"));
    if (!balance.ok()) {
      Violation(report, std::string(when) + ": account decode failed: " +
                            balance.status().ToString());
      txn->Abort();
      return;
    }
    total += *balance;
  }
  if (total != expected_total_) {
    Violation(report, std::string(when) +
                          ": conservation broken: " + std::to_string(total) +
                          " != " + std::to_string(expected_total_));
  }

  // Every acknowledged insert must still be readable, tamper-free. This
  // sweeps far past the object cache, so it exercises chunk read+validate.
  std::vector<uint64_t> keys = table_.Snapshot();
  for (uint64_t packed : keys) {
    auto object = txn->Get(ObjectId::Unpack(packed));
    if (!object.ok()) {
      Violation(report, std::string(when) + ": acknowledged key " +
                            std::to_string(packed) +
                            " unreadable: " + object.status().ToString());
      txn->Abort();
      return;
    }
  }
  txn->Abort();
}

Status TortureHarness::RecoverAfterCrash(TortureReport& report) {
  TearDownStack();
  // Half the recoveries model full power loss (the device's volatile write
  // cache is gone); the other half a process crash with the device intact.
  if (rng_.NextBool()) {
    base_.Crash();
  }
  controller_.Disarm();
  TDB_RETURN_IF_ERROR(BuildStack(/*fresh=*/false));
  ++report.recoveries;
  VerifyInvariants("after recovery", report);
  return OkStatus();
}

void TortureHarness::RunEpoch(TortureReport& report) {
  ++report.epochs;
  epoch_seed_ = rng_.NextU64();

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> transfers{0};

  // Driver backends: one per thread.
  std::vector<std::unique_ptr<YcsbBackend>> backends;
  std::vector<YcsbBackend*> backend_ptrs;
  for (int t = 0; t < options_.driver_threads; ++t) {
    std::unique_ptr<YcsbBackend> backend = NewBackend();
    if (backend != nullptr) {
      backend_ptrs.push_back(backend.get());
      backends.push_back(std::move(backend));
    }
  }
  if (backend_ptrs.empty()) {
    Violation(report, "epoch could not connect any driver backend");
    return;
  }

  DriverOptions driver_options;
  driver_options.operations = 1ULL << 40;  // bounded by `stop`, not count
  driver_options.seed = epoch_seed_;
  driver_options.stop = &stop;
  driver_options.tolerate_failures = true;
  YcsbDriver driver(TortureSpec(options_), driver_options);

  DriverResult driver_result;
  std::thread driver_thread([&] {
    driver_result = driver.Run(backend_ptrs, table_);
  });
  std::vector<std::thread> transfer_threads;
  for (int t = 0; t < options_.transfer_threads; ++t) {
    transfer_threads.emplace_back(
        [this, t, &stop, &transfers] { TransferLoop(t, stop, transfers); });
  }
  std::thread maintenance(
      [this, &stop, &report] { MaintenanceLoop(stop, report); });

  // The disruptor: most epochs arm a crash at a random upcoming durability
  // point with a random tear; the rest soak crash-free.
  if (options_.crash_injection && rng_.NextDouble() < 0.7) {
    const double tears[] = {0.0, 0.5, 1.0};
    controller_.Arm(rng_.NextBelow(1500), tears[rng_.NextBelow(3)]);
  }

  auto deadline = std::chrono::steady_clock::now() + options_.epoch;
  while (std::chrono::steady_clock::now() < deadline &&
         !controller_.crashed()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  stop.store(true, std::memory_order_relaxed);
  driver_thread.join();
  for (std::thread& t : transfer_threads) {
    t.join();
  }
  maintenance.join();

  report.driver_txns_committed += driver_result.txns_committed;
  report.driver_txns_aborted += driver_result.txns_aborted;
  report.driver_ops += driver_result.ops();
  report.transfers_committed += transfers.load(std::memory_order_relaxed);

  // Close client connections before tearing the server down.
  backends.clear();

  if (controller_.crashed()) {
    ++report.crashes;
    Status status = RecoverAfterCrash(report);
    if (!status.ok()) {
      Violation(report,
                std::string("recovery failed: ") + status.ToString());
    }
    return;
  }
  // No crash this epoch: disarm so verification reads cannot trip a stale
  // crash point, then verify in place.
  controller_.Disarm();
  VerifyInvariants("after epoch", report);
}

Result<TortureReport> TortureHarness::Run() {
  TDB_RETURN_IF_ERROR(BuildStack(/*fresh=*/true));
  TDB_RETURN_IF_ERROR(LoadData());

  TortureReport report;
  VerifyInvariants("after load", report);

  auto deadline = std::chrono::steady_clock::now() + options_.duration;
  while (std::chrono::steady_clock::now() < deadline) {
    RunEpoch(report);
    if (report.violations.size() >= 8) {
      break;  // a cascade; the first few violations tell the story
    }
  }
  VerifyInvariants("at end", report);

  // Always end with a restore-verified backup of the final state. The cadence
  // above is wall-clock driven, so a short soak on a slow (sanitized) build
  // may not reach a verification step on its own; the final state must
  // survive the full backup/restore round trip regardless.
  Status final_backup = BackupAndMaybeVerify(report, /*force_verify=*/true);
  if (!final_backup.ok()) {
    Violation(report, std::string("final verified backup failed: ") +
                          final_backup.ToString());
  }
  return report;
}

}  // namespace tdb::workload
