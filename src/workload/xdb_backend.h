// The XDB backend for the vending workload: the "cryptography layered on an
// off-the-shelf embedded database" system of §9.5. Each collection is an
// encrypted B-tree (id → record) plus one index tree per indexed field; the
// layer above XDB maintains the index trees itself, since XDB knows nothing
// about the records it stores.

#ifndef SRC_WORKLOAD_XDB_BACKEND_H_
#define SRC_WORKLOAD_XDB_BACKEND_H_

#include <map>
#include <memory>

#include "src/workload/record.h"
#include "src/xdb/crypto_layer.h"

namespace tdb {

class XdbWorkloadStore final : public WorkloadStore {
 public:
  // Uses the same cryptographic parameters as the TDB backend, per §9.5:
  // "We configured both systems to use the same cryptographic parameters".
  static Result<std::unique_ptr<XdbWorkloadStore>> Create(
      Xdb* db, MonotonicCounter* counter, uint32_t counter_flush_interval);

  Status CreateCollection(const std::string& name, int num_indexes) override;
  Status Begin() override;
  Status Commit() override;
  Result<uint64_t> Insert(const std::string& collection,
                          const Record& record) override;
  Result<Record> Get(const std::string& collection, uint64_t id) override;
  Status Update(const std::string& collection, uint64_t id,
                const Record& record) override;
  Status Delete(const std::string& collection, uint64_t id) override;
  Result<std::vector<uint64_t>> LookupByField(const std::string& collection,
                                              int field,
                                              uint64_t key) override;

 private:
  XdbWorkloadStore() = default;

  static std::string IndexTree(const std::string& collection, int field) {
    return collection + ".i" + std::to_string(field);
  }
  static Bytes IndexKey(uint64_t field_value, uint64_t id);

  Status AddIndexEntries(const std::string& collection, uint64_t id,
                         const Record& record);
  Status RemoveIndexEntries(const std::string& collection, uint64_t id,
                            const Record& record);

  std::unique_ptr<SecureXdb> secure_;
  std::map<std::string, int> index_counts_;
  std::map<std::string, uint64_t> next_ids_;
};

}  // namespace tdb

#endif  // SRC_WORKLOAD_XDB_BACKEND_H_
