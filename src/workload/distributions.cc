#include "src/workload/distributions.h"

#include <cmath>

namespace tdb::workload {

namespace {

// FNV-1a over the 8 key bytes: spreads zipfian ranks across the key space
// so "hot" does not mean "low index" (YCSB's ScrambledZipfian idea).
uint64_t ScrambleKey(uint64_t value) {
  uint64_t h = 14695981039346656037ULL;
  for (int i = 0; i < 8; ++i) {
    h ^= (value >> (i * 8)) & 0xFF;
    h *= 1099511628211ULL;
  }
  return h;
}

double ZetaStatic(uint64_t from, uint64_t to, double theta, double base) {
  double sum = base;
  for (uint64_t i = from; i < to; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
  }
  return sum;
}

}  // namespace

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta)
    : theta_(theta), alpha_(1.0 / (1.0 - theta)) {
  if (n == 0) {
    n = 1;
  }
  zeta2_ = ZetaStatic(0, 2, theta_, 0.0);
  zetan_ = ZetaStatic(0, n, theta_, 0.0);
  n_ = n;
}

void ZipfianGenerator::Grow(uint64_t new_n) {
  if (new_n <= n_) {
    return;
  }
  zetan_ = ZetaStatic(n_, new_n, theta_, zetan_);
  n_ = new_n;
}

double ZipfianGenerator::Eta() const {
  return (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2_ / zetan_);
}

uint64_t ZipfianGenerator::Next(Rng& rng) {
  // Gray et al. "Quickly generating billion-record synthetic databases".
  double u = rng.NextDouble();
  double uz = u * zetan_;
  if (uz < 1.0) {
    return 0;
  }
  if (uz < 1.0 + std::pow(0.5, theta_)) {
    return 1;
  }
  double eta = Eta();
  uint64_t rank = static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta * u - eta + 1.0, alpha_));
  return rank >= n_ ? n_ - 1 : rank;
}

const char* KeyDistributionName(KeyDistributionKind kind) {
  switch (kind) {
    case KeyDistributionKind::kUniform:
      return "uniform";
    case KeyDistributionKind::kZipfian:
      return "zipfian";
    case KeyDistributionKind::kHotspot:
      return "hotspot";
    case KeyDistributionKind::kLatest:
      return "latest";
  }
  return "unknown";
}

KeyDistribution::KeyDistribution(KeyDistributionKind kind, uint64_t initial_n,
                                 HotspotParams hotspot)
    : kind_(kind), zipf_(initial_n), hotspot_(hotspot) {}

uint64_t KeyDistribution::Next(Rng& rng, uint64_t n) {
  if (n == 0) {
    n = 1;
  }
  switch (kind_) {
    case KeyDistributionKind::kUniform:
      return rng.NextBelow(n);
    case KeyDistributionKind::kZipfian: {
      zipf_.Grow(n);
      uint64_t rank = zipf_.Next(rng);
      return ScrambleKey(rank) % n;
    }
    case KeyDistributionKind::kHotspot: {
      uint64_t hot_n = static_cast<uint64_t>(
          static_cast<double>(n) * hotspot_.hot_key_fraction);
      if (hot_n == 0) {
        hot_n = 1;
      }
      if (hot_n >= n) {
        return rng.NextBelow(n);
      }
      if (rng.NextDouble() < hotspot_.hot_op_fraction) {
        return rng.NextBelow(hot_n);
      }
      return hot_n + rng.NextBelow(n - hot_n);
    }
    case KeyDistributionKind::kLatest: {
      zipf_.Grow(n);
      uint64_t rank = zipf_.Next(rng);
      // Rank 0 = the newest key. Ranks are unscrambled on purpose: recency
      // is the axis of skew.
      if (rank >= n) {
        rank = n - 1;
      }
      return n - 1 - rank;
    }
  }
  return 0;
}

}  // namespace tdb::workload
