// TdbServer: the networked front end over the object store (service layer).
//
// Many clients connect over a Transport; each accepted connection becomes a
// Session serviced by a worker from the shared ThreadPool. A session maps
// its connection to at most one open ObjectStore transaction and enforces a
// per-session idle timeout (idle sessions lose their locks: the open
// transaction is aborted and the connection closed). New connections beyond
// `max_sessions` are rejected with a busy response before a session or a
// worker is committed to them — the backpressure cap.
//
// The throughput mechanism is group commit (see group_commit.h): the
// server's ObjectStore is configured so concurrent session commits coalesce
// into shared chunk-store batch commits. Every layer reports into src/obs:
// sessions opened/rejected/idle-timed-out, requests and request latency,
// and (from the queue itself) commit batch sizes and queue wait.
//
// Shutdown is graceful: Stop() stops the acceptor, closes every live
// session connection (which aborts their open transactions), and joins the
// workers; acknowledged commits are durable before their response is sent,
// so a shutdown (or crash) never takes back an acknowledged commit.

#ifndef SRC_SERVER_SERVER_H_
#define SRC_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "src/common/thread_pool.h"
#include "src/net/transport.h"
#include "src/object/object_store.h"
#include "src/server/wire.h"

namespace tdb::server {

struct TdbServerOptions {
  // Concurrent sessions admitted; further connections get a busy response.
  size_t max_sessions = 64;
  // Worker threads servicing sessions; 0 sizes the pool to max_sessions
  // (each live session occupies one worker for its lifetime).
  size_t worker_threads = 0;
  // A session idle longer than this has its transaction aborted and its
  // connection closed.
  std::chrono::milliseconds idle_timeout{30000};
  // Per-frame send timeout for responses.
  std::chrono::milliseconds io_timeout{5000};
  // A request whose handle+send time reaches this emits a slow_request
  // trace event (when tracing is enabled). The recv stage is excluded from
  // the threshold — under the poll loop it mostly measures client think
  // time — but is still reported in the event's stage breakdown. Zero
  // disables slow-request events.
  std::chrono::microseconds slow_request_threshold{100000};

  // Object-store configuration for the served partition.
  bool group_commit = true;
  size_t group_commit_max_batch = 64;
  std::chrono::milliseconds lock_timeout{500};
  size_t cache_capacity = 4096;
};

class TdbServer {
 public:
  // Serves objects of `partition` from `chunks`; both must outlive the
  // server, and `registry` must know every type clients may store.
  TdbServer(ChunkStore* chunks, PartitionId partition,
            const TypeRegistry* registry, TdbServerOptions options = {});
  ~TdbServer();

  TdbServer(const TdbServer&) = delete;
  TdbServer& operator=(const TdbServer&) = delete;

  // Binds `address` on `transport` (which must outlive the server) and
  // starts accepting. Call once.
  Status Start(net::Transport* transport, const std::string& address);

  // Graceful shutdown; idempotent, also run by the destructor.
  void Stop();

  // The bound address (ephemeral ports resolved) once Start succeeded.
  std::string address() const;

  // The served store — shared with in-process callers (e.g. tests driving
  // tamper checks or local transactions against the same partition).
  ObjectStore* object_store() { return objects_.get(); }

  struct Stats {
    uint64_t sessions_opened = 0;
    uint64_t sessions_rejected = 0;
    uint64_t idle_timeouts = 0;
    uint64_t requests = 0;
    size_t active_sessions = 0;
  };
  Stats GetStats() const;

 private:
  // One live connection's server-side state. Lives on its worker's stack.
  struct Session {
    uint64_t id = 0;
    std::unique_ptr<Transaction> txn;
    std::chrono::steady_clock::time_point last_activity;
  };

  void AcceptLoop();
  void ServeSession(std::shared_ptr<net::Connection> conn);
  Response Handle(Session& session, const Request& request);

  // Publishes server/session/queue state as registry gauges and refreshes
  // the chunk store's gauges, so a SnapshotJson taken right after (kStats)
  // reflects the live server.
  void PublishGauges();

  ChunkStore* chunks_;
  const TypeRegistry* registry_;
  TdbServerOptions options_;
  std::unique_ptr<ObjectStore> objects_;

  std::unique_ptr<net::Listener> listener_;
  std::unique_ptr<ThreadPool> workers_;
  std::thread acceptor_;
  std::atomic<bool> stop_{false};
  bool started_ = false;

  // Live sessions' connections, so Stop can unblock their Recv calls.
  mutable std::mutex sessions_mu_;
  std::map<uint64_t, net::Connection*> live_sessions_;
  uint64_t next_session_id_ = 1;

  std::atomic<uint64_t> sessions_opened_{0};
  std::atomic<uint64_t> sessions_rejected_{0};
  std::atomic<uint64_t> idle_timeouts_{0};
  std::atomic<uint64_t> requests_{0};
};

}  // namespace tdb::server

#endif  // SRC_SERVER_SERVER_H_
