// TdbServer: the networked front end over the partition engines (service
// layer).
//
// Many clients connect over a Transport; each accepted connection becomes a
// Session serviced by a worker from the shared ThreadPool. A session maps
// its connection to at most one open transaction on one PartitionEngine
// (begin names the partition; the engine registry routes) and enforces a
// per-session idle timeout (idle sessions lose their locks: the open
// transaction is aborted and the connection closed). New connections beyond
// `max_sessions` are rejected with a busy response before a session or a
// worker is committed to them — the backpressure cap.
//
// A server is either *sharded* — constructed over a PartitionDirectory, it
// serves every cataloged partition, answers the directory CRUD ops, and
// participates in live hand-off — or *single-partition* (the legacy
// constructor), which serves exactly one partition and rejects directory
// ops. Either way each served partition gets its own engine (ObjectStore:
// locks, cache, group-commit queue), and all engines chain their commits
// into one store-level combiner (two-level group commit, group_commit.h) so
// concurrent leaders of different partitions share a flush.
//
// Live hand-off (kHandoffExport/Import/Cutover/Activate/Finish; see wire.h
// and the DESIGN.md §10 crash contract): the source ships a COW snapshot
// and chained incrementals; the target stages the streams and applies them
// in one atomic restore at activate; cut-over drains the source engine and
// returns a final incremental; finish persists the moved state so clients
// are redirected (retryable kMoved status carrying the new address) even
// across a source restart.
//
// Shutdown is graceful: Stop() stops the acceptor, closes every live
// session connection (which aborts their open transactions), and joins the
// workers; acknowledged commits are durable before their response is sent,
// so a shutdown (or crash) never takes back an acknowledged commit.

#ifndef SRC_SERVER_SERVER_H_
#define SRC_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/net/transport.h"
#include "src/object/object_store.h"
#include "src/server/wire.h"
#include "src/shard/directory.h"
#include "src/shard/partition_engine.h"

namespace tdb::server {

struct TdbServerOptions {
  // Concurrent sessions admitted; further connections get a busy response.
  size_t max_sessions = 64;
  // Worker threads servicing sessions; 0 sizes the pool to max_sessions
  // (each live session occupies one worker for its lifetime).
  size_t worker_threads = 0;
  // A session idle longer than this has its transaction aborted and its
  // connection closed.
  std::chrono::milliseconds idle_timeout{30000};
  // Per-frame send timeout for responses.
  std::chrono::milliseconds io_timeout{5000};
  // A request whose handle+send time reaches this emits a slow_request
  // trace event (when tracing is enabled). The recv stage is excluded from
  // the threshold — under the poll loop it mostly measures client think
  // time — but is still reported in the event's stage breakdown. Zero
  // disables slow-request events.
  std::chrono::microseconds slow_request_threshold{100000};

  // Per-partition object-store configuration.
  bool group_commit = true;
  size_t group_commit_max_batch = 64;
  std::chrono::milliseconds lock_timeout{500};
  size_t cache_capacity = 4096;

  // Chain every engine's group-commit queue into one store-level combiner
  // (two-level group commit): leaders of different partitions merge into a
  // single chunk-store commit, so one flush amortizes across partitions.
  bool combine_commits = true;
  size_t combine_max_batch = 256;

  // How long a hand-off cut-over waits for in-flight transactions to drain
  // before giving up (the partition resumes serving on timeout).
  std::chrono::milliseconds drain_timeout{5000};

  // Cipher/hash/key for partitions created via kPartitionCreate. The create
  // op is refused while the key is empty.
  CryptoParams new_partition_params;
};

class TdbServer {
 public:
  // Single-partition server: serves objects of `partition` from `chunks`;
  // both must outlive the server, and `registry` must know every type
  // clients may store. Directory and hand-off ops are rejected.
  TdbServer(ChunkStore* chunks, PartitionId partition,
            const TypeRegistry* registry, TdbServerOptions options = {});

  // Sharded server: serves every partition cataloged in `directory` (minus
  // the moved ones) and answers directory CRUD and hand-off ops. The
  // directory must be the one for `chunks` and must outlive the server.
  TdbServer(ChunkStore* chunks, shard::PartitionDirectory* directory,
            const TypeRegistry* registry, TdbServerOptions options = {});

  ~TdbServer();

  TdbServer(const TdbServer&) = delete;
  TdbServer& operator=(const TdbServer&) = delete;

  // Binds `address` on `transport` (which must outlive the server) and
  // starts accepting. Call once.
  Status Start(net::Transport* transport, const std::string& address);

  // Graceful shutdown; idempotent, also run by the destructor.
  void Stop();

  // The bound address (ephemeral ports resolved) once Start succeeded.
  std::string address() const;

  // The sole served partition's store — shared with in-process callers
  // (e.g. tests driving tamper checks or local transactions against the
  // same partition). nullptr unless exactly one partition is served.
  ObjectStore* object_store() {
    std::shared_ptr<shard::PartitionEngine> solo = engines_.Solo();
    return solo == nullptr ? nullptr : solo->store();
  }

  shard::EngineRegistry* engines() { return &engines_; }
  shard::PartitionDirectory* directory() { return directory_; }

  struct Stats {
    uint64_t sessions_opened = 0;
    uint64_t sessions_rejected = 0;
    uint64_t idle_timeouts = 0;
    uint64_t requests = 0;
    size_t active_sessions = 0;
  };
  Stats GetStats() const;

 private:
  // One live connection's server-side state. Lives on its worker's stack.
  struct Session {
    uint64_t id = 0;
    // Engine the open transaction runs on; set by begin, cleared (with a
    // TxnFinished) when the transaction ends.
    std::shared_ptr<shard::PartitionEngine> engine;
    std::unique_ptr<Transaction> txn;
    std::chrono::steady_clock::time_point last_activity;
  };

  void AcceptLoop();
  void ServeSession(std::shared_ptr<net::Connection> conn);
  Response Handle(Session& session, const Request& request);
  Response HandleBegin(Session& session, const Request& request);
  Response HandleAdmin(const Request& request);
  // Ends the session's transaction bookkeeping (engine pin + drain count).
  void FinishTxn(Session& session);

  // Snapshots `partition` (incremental against `base` when nonzero) into a
  // backup stream; records the new snapshot id in the hand-off chain.
  Result<Bytes> ExportPartition(PartitionId partition, PartitionId base,
                                PartitionId* snapshot_out);
  // Deallocates the snapshot chain accumulated for `partition`.
  void DropHandoffSnapshots(PartitionId partition);

  // Publishes server/session/queue state plus the per-partition
  // `shard.partition.<id>.*` gauges and refreshes the chunk store's gauges,
  // so a SnapshotJson taken right after (kStats) reflects the live server.
  void PublishGauges();

  ChunkStore* chunks_;
  const TypeRegistry* registry_;
  TdbServerOptions options_;
  shard::EngineRegistry engines_;
  shard::PartitionDirectory* directory_ = nullptr;  // null = single-partition

  std::unique_ptr<net::Listener> listener_;
  std::unique_ptr<ThreadPool> workers_;
  std::thread acceptor_;
  std::atomic<bool> stop_{false};
  bool started_ = false;

  // Live sessions' connections, so Stop can unblock their Recv calls.
  mutable std::mutex sessions_mu_;
  std::map<uint64_t, net::Connection*> live_sessions_;
  uint64_t next_session_id_ = 1;

  // Hand-off state: the source's snapshot chain per partition, and the
  // target's staged (not yet applied) import streams. In-memory by design —
  // a crashed hand-off is restarted by the coordinator; only the directory
  // state (ownership) is durable.
  std::mutex handoff_mu_;
  std::map<PartitionId, std::vector<PartitionId>> handoff_snapshots_;
  std::map<PartitionId, Bytes> staged_imports_;

  std::atomic<uint64_t> sessions_opened_{0};
  std::atomic<uint64_t> sessions_rejected_{0};
  std::atomic<uint64_t> idle_timeouts_{0};
  std::atomic<uint64_t> requests_{0};
};

}  // namespace tdb::server

#endif  // SRC_SERVER_SERVER_H_
