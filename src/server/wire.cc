#include "src/server/wire.h"

#include "src/common/pickle.h"

namespace tdb::server {

namespace {

Status CheckHeader(PickleReader& r, const char* what) {
  uint8_t magic = r.ReadU8();
  uint8_t version = r.ReadU8();
  if (!r.ok() || magic != kWireMagic) {
    return CorruptionError(std::string("bad wire magic in ") + what);
  }
  if (version != kWireVersion) {
    return UnimplementedError("unsupported wire version " +
                              std::to_string(version));
  }
  return OkStatus();
}

constexpr OpInfo kOpTable[] = {
    {Op::kPing, "ping", "wire.op.ping.us", "wire.rtt.ping.us"},
    {Op::kBegin, "begin", "wire.op.begin.us", "wire.rtt.begin.us"},
    {Op::kGet, "get", "wire.op.get.us", "wire.rtt.get.us"},
    {Op::kGetForUpdate, "get_for_update", "wire.op.get_for_update.us",
     "wire.rtt.get_for_update.us"},
    {Op::kInsert, "insert", "wire.op.insert.us", "wire.rtt.insert.us"},
    {Op::kPut, "put", "wire.op.put.us", "wire.rtt.put.us"},
    {Op::kDelete, "delete", "wire.op.delete.us", "wire.rtt.delete.us"},
    {Op::kCommit, "commit", "wire.op.commit.us", "wire.rtt.commit.us"},
    {Op::kAbort, "abort", "wire.op.abort.us", "wire.rtt.abort.us"},
    {Op::kBeginReadOnly, "begin_read_only", "wire.op.begin_read_only.us",
     "wire.rtt.begin_read_only.us"},
    {Op::kStats, "stats", "wire.op.stats.us", "wire.rtt.stats.us"},
    {Op::kStatsReset, "stats_reset", "wire.op.stats_reset.us",
     "wire.rtt.stats_reset.us"},
    {Op::kPartitionCreate, "partition_create", "wire.op.partition_create.us",
     "wire.rtt.partition_create.us"},
    {Op::kPartitionDrop, "partition_drop", "wire.op.partition_drop.us",
     "wire.rtt.partition_drop.us"},
    {Op::kPartitionList, "partition_list", "wire.op.partition_list.us",
     "wire.rtt.partition_list.us"},
    {Op::kPartitionLookup, "partition_lookup", "wire.op.partition_lookup.us",
     "wire.rtt.partition_lookup.us"},
    {Op::kHandoffExport, "handoff_export", "wire.op.handoff_export.us",
     "wire.rtt.handoff_export.us"},
    {Op::kHandoffImport, "handoff_import", "wire.op.handoff_import.us",
     "wire.rtt.handoff_import.us"},
    {Op::kHandoffCutover, "handoff_cutover", "wire.op.handoff_cutover.us",
     "wire.rtt.handoff_cutover.us"},
    {Op::kHandoffActivate, "handoff_activate", "wire.op.handoff_activate.us",
     "wire.rtt.handoff_activate.us"},
    {Op::kHandoffFinish, "handoff_finish", "wire.op.handoff_finish.us",
     "wire.rtt.handoff_finish.us"},
};

}  // namespace

const OpInfo* FindOpInfo(Op op) {
  for (const OpInfo& info : kOpTable) {
    if (info.op == op) {
      return &info;
    }
  }
  return nullptr;
}

const char* OpName(Op op) {
  const OpInfo* info = FindOpInfo(op);
  return info == nullptr ? "unknown" : info->name;
}

Bytes EncodeRequest(const Request& request) {
  PickleWriter w;
  w.WriteU8(kWireMagic);
  w.WriteU8(kWireVersion);
  w.WriteU8(static_cast<uint8_t>(request.op));
  w.WriteVarint(request.partition);
  w.WriteVarint(request.object_id);
  w.WriteBytes(request.object);
  return w.Take();
}

Result<Request> DecodeRequest(ByteView frame) {
  PickleReader r(frame);
  TDB_RETURN_IF_ERROR(CheckHeader(r, "request"));
  Request request;
  uint8_t op = r.ReadU8();
  if (FindOpInfo(static_cast<Op>(op)) == nullptr) {
    return CorruptionError("unknown request op " + std::to_string(op));
  }
  request.op = static_cast<Op>(op);
  request.partition = r.ReadVarint();
  request.object_id = r.ReadVarint();
  request.object = r.ReadBytes();
  TDB_RETURN_IF_ERROR(r.Done());
  return request;
}

Bytes EncodeResponse(const Response& response) {
  PickleWriter w;
  w.WriteU8(kWireMagic);
  w.WriteU8(kWireVersion);
  w.WriteU8(static_cast<uint8_t>(response.code));
  w.WriteString(response.message);
  w.WriteVarint(response.object_id);
  w.WriteBytes(response.object);
  return w.Take();
}

Result<Response> DecodeResponse(ByteView frame) {
  PickleReader r(frame);
  TDB_RETURN_IF_ERROR(CheckHeader(r, "response"));
  Response response;
  uint8_t code = r.ReadU8();
  if (code > static_cast<uint8_t>(StatusCode::kMoved)) {
    return CorruptionError("unknown status code " + std::to_string(code));
  }
  response.code = static_cast<StatusCode>(code);
  response.message = r.ReadString();
  response.object_id = r.ReadVarint();
  response.object = r.ReadBytes();
  TDB_RETURN_IF_ERROR(r.Done());
  return response;
}

Response ResponseFromStatus(const Status& status) {
  Response response;
  response.code = status.code();
  response.message = status.message();
  return response;
}

Status StatusFromResponse(const Response& response) {
  return Status(response.code, response.message);
}

Bytes PickleEntryList(const std::vector<shard::PartitionEntry>& entries) {
  PickleWriter w;
  w.WriteVarint(entries.size());
  for (const shard::PartitionEntry& e : entries) {
    w.WriteVarint(e.id);
    w.WriteString(e.name);
    w.WriteU8(e.moved ? 1 : 0);
    w.WriteString(e.moved_to);
    w.WriteVarint(e.epoch);
  }
  return w.Take();
}

Result<std::vector<shard::PartitionEntry>> UnpickleEntryList(ByteView data) {
  PickleReader r(data);
  uint64_t count = r.ReadVarint();
  std::vector<shard::PartitionEntry> entries;
  entries.reserve(count);
  for (uint64_t i = 0; i < count && r.ok(); ++i) {
    shard::PartitionEntry e;
    e.id = static_cast<PartitionId>(r.ReadVarint());
    e.name = r.ReadString();
    e.moved = r.ReadU8() != 0;
    e.moved_to = r.ReadString();
    e.epoch = r.ReadVarint();
    entries.push_back(std::move(e));
  }
  TDB_RETURN_IF_ERROR(r.Done());
  return entries;
}

}  // namespace tdb::server
