#include "src/server/wire.h"

#include "src/common/pickle.h"

namespace tdb::server {

namespace {

Status CheckHeader(PickleReader& r, const char* what) {
  uint8_t magic = r.ReadU8();
  uint8_t version = r.ReadU8();
  if (!r.ok() || magic != kWireMagic) {
    return CorruptionError(std::string("bad wire magic in ") + what);
  }
  if (version != kWireVersion) {
    return UnimplementedError("unsupported wire version " +
                              std::to_string(version));
  }
  return OkStatus();
}

}  // namespace

const char* OpName(Op op) {
  switch (op) {
    case Op::kPing:
      return "ping";
    case Op::kBegin:
      return "begin";
    case Op::kGet:
      return "get";
    case Op::kGetForUpdate:
      return "get_for_update";
    case Op::kInsert:
      return "insert";
    case Op::kPut:
      return "put";
    case Op::kDelete:
      return "delete";
    case Op::kCommit:
      return "commit";
    case Op::kAbort:
      return "abort";
    case Op::kBeginReadOnly:
      return "begin_read_only";
  }
  return "unknown";
}

Bytes EncodeRequest(const Request& request) {
  PickleWriter w;
  w.WriteU8(kWireMagic);
  w.WriteU8(kWireVersion);
  w.WriteU8(static_cast<uint8_t>(request.op));
  w.WriteVarint(request.object_id);
  w.WriteBytes(request.object);
  return w.Take();
}

Result<Request> DecodeRequest(ByteView frame) {
  PickleReader r(frame);
  TDB_RETURN_IF_ERROR(CheckHeader(r, "request"));
  Request request;
  uint8_t op = r.ReadU8();
  if (op < static_cast<uint8_t>(Op::kPing) ||
      op > static_cast<uint8_t>(Op::kBeginReadOnly)) {
    return CorruptionError("unknown request op " + std::to_string(op));
  }
  request.op = static_cast<Op>(op);
  request.object_id = r.ReadVarint();
  request.object = r.ReadBytes();
  TDB_RETURN_IF_ERROR(r.Done());
  return request;
}

Bytes EncodeResponse(const Response& response) {
  PickleWriter w;
  w.WriteU8(kWireMagic);
  w.WriteU8(kWireVersion);
  w.WriteU8(static_cast<uint8_t>(response.code));
  w.WriteString(response.message);
  w.WriteVarint(response.object_id);
  w.WriteBytes(response.object);
  return w.Take();
}

Result<Response> DecodeResponse(ByteView frame) {
  PickleReader r(frame);
  TDB_RETURN_IF_ERROR(CheckHeader(r, "response"));
  Response response;
  uint8_t code = r.ReadU8();
  if (code > static_cast<uint8_t>(StatusCode::kUnimplemented)) {
    return CorruptionError("unknown status code " + std::to_string(code));
  }
  response.code = static_cast<StatusCode>(code);
  response.message = r.ReadString();
  response.object_id = r.ReadVarint();
  response.object = r.ReadBytes();
  TDB_RETURN_IF_ERROR(r.Done());
  return response;
}

Response ResponseFromStatus(const Status& status) {
  Response response;
  response.code = status.code();
  response.message = status.message();
  return response;
}

Status StatusFromResponse(const Response& response) {
  return Status(response.code, response.message);
}

}  // namespace tdb::server
