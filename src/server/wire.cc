#include "src/server/wire.h"

#include "src/common/pickle.h"

namespace tdb::server {

namespace {

Status CheckHeader(PickleReader& r, const char* what) {
  uint8_t magic = r.ReadU8();
  uint8_t version = r.ReadU8();
  if (!r.ok() || magic != kWireMagic) {
    return CorruptionError(std::string("bad wire magic in ") + what);
  }
  if (version != kWireVersion) {
    return UnimplementedError("unsupported wire version " +
                              std::to_string(version));
  }
  return OkStatus();
}

constexpr OpInfo kOpTable[] = {
    {Op::kPing, "ping", "wire.op.ping.us", "wire.rtt.ping.us"},
    {Op::kBegin, "begin", "wire.op.begin.us", "wire.rtt.begin.us"},
    {Op::kGet, "get", "wire.op.get.us", "wire.rtt.get.us"},
    {Op::kGetForUpdate, "get_for_update", "wire.op.get_for_update.us",
     "wire.rtt.get_for_update.us"},
    {Op::kInsert, "insert", "wire.op.insert.us", "wire.rtt.insert.us"},
    {Op::kPut, "put", "wire.op.put.us", "wire.rtt.put.us"},
    {Op::kDelete, "delete", "wire.op.delete.us", "wire.rtt.delete.us"},
    {Op::kCommit, "commit", "wire.op.commit.us", "wire.rtt.commit.us"},
    {Op::kAbort, "abort", "wire.op.abort.us", "wire.rtt.abort.us"},
    {Op::kBeginReadOnly, "begin_read_only", "wire.op.begin_read_only.us",
     "wire.rtt.begin_read_only.us"},
    {Op::kStats, "stats", "wire.op.stats.us", "wire.rtt.stats.us"},
    {Op::kStatsReset, "stats_reset", "wire.op.stats_reset.us",
     "wire.rtt.stats_reset.us"},
};

}  // namespace

const OpInfo* FindOpInfo(Op op) {
  for (const OpInfo& info : kOpTable) {
    if (info.op == op) {
      return &info;
    }
  }
  return nullptr;
}

const char* OpName(Op op) {
  const OpInfo* info = FindOpInfo(op);
  return info == nullptr ? "unknown" : info->name;
}

Bytes EncodeRequest(const Request& request) {
  PickleWriter w;
  w.WriteU8(kWireMagic);
  w.WriteU8(kWireVersion);
  w.WriteU8(static_cast<uint8_t>(request.op));
  w.WriteVarint(request.object_id);
  w.WriteBytes(request.object);
  return w.Take();
}

Result<Request> DecodeRequest(ByteView frame) {
  PickleReader r(frame);
  TDB_RETURN_IF_ERROR(CheckHeader(r, "request"));
  Request request;
  uint8_t op = r.ReadU8();
  if (FindOpInfo(static_cast<Op>(op)) == nullptr) {
    return CorruptionError("unknown request op " + std::to_string(op));
  }
  request.op = static_cast<Op>(op);
  request.object_id = r.ReadVarint();
  request.object = r.ReadBytes();
  TDB_RETURN_IF_ERROR(r.Done());
  return request;
}

Bytes EncodeResponse(const Response& response) {
  PickleWriter w;
  w.WriteU8(kWireMagic);
  w.WriteU8(kWireVersion);
  w.WriteU8(static_cast<uint8_t>(response.code));
  w.WriteString(response.message);
  w.WriteVarint(response.object_id);
  w.WriteBytes(response.object);
  return w.Take();
}

Result<Response> DecodeResponse(ByteView frame) {
  PickleReader r(frame);
  TDB_RETURN_IF_ERROR(CheckHeader(r, "response"));
  Response response;
  uint8_t code = r.ReadU8();
  if (code > static_cast<uint8_t>(StatusCode::kUnimplemented)) {
    return CorruptionError("unknown status code " + std::to_string(code));
  }
  response.code = static_cast<StatusCode>(code);
  response.message = r.ReadString();
  response.object_id = r.ReadVarint();
  response.object = r.ReadBytes();
  TDB_RETURN_IF_ERROR(r.Done());
  return response;
}

Response ResponseFromStatus(const Status& status) {
  Response response;
  response.code = status.code();
  response.message = status.message();
  return response;
}

Status StatusFromResponse(const Response& response) {
  return Status(response.code, response.message);
}

}  // namespace tdb::server
