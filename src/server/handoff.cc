#include "src/server/handoff.h"

namespace tdb::server {

Status MovePartition(TdbClient& source, TdbClient& target,
                     const std::string& name,
                     const std::string& target_address,
                     HandoffOptions options) {
  TDB_ASSIGN_OR_RETURN(shard::PartitionEntry entry,
                       source.PartitionLookup(name));
  if (entry.moved) {
    return FailedPreconditionError("partition '" + name +
                                   "' already moved to " + entry.moved_to);
  }
  const PartitionId pid = entry.id;

  // Full copy, then incremental catch-up while writes keep landing.
  TDB_ASSIGN_OR_RETURN(TdbClient::HandoffStream full,
                       source.HandoffExport(pid, 0));
  TDB_RETURN_IF_ERROR(target.HandoffImport(pid, 0, full.stream));
  PartitionId base = full.snapshot;
  for (size_t round = 0; round < options.catchup_rounds; ++round) {
    TDB_ASSIGN_OR_RETURN(TdbClient::HandoffStream delta,
                         source.HandoffExport(pid, base));
    TDB_RETURN_IF_ERROR(target.HandoffImport(pid, base, delta.stream));
    base = delta.snapshot;
  }

  // Cut over: drain + final delta. From here the source redirects clients;
  // any failure before the finish step rolls the source back to serving.
  TDB_ASSIGN_OR_RETURN(TdbClient::HandoffStream final_delta,
                       source.HandoffCutover(pid, target_address, base));
  Status applied =
      target.HandoffImport(pid, final_delta.snapshot, final_delta.stream);
  if (applied.ok()) {
    applied = target.HandoffActivate(pid, name);
  }
  if (!applied.ok()) {
    (void)source.HandoffFinish(pid, "");  // abort: resume serving
    return applied;
  }
  return source.HandoffFinish(pid, target_address);
}

}  // namespace tdb::server
