#include "src/server/client.h"

#include "src/common/bytes.h"
#include "src/obs/metrics.h"

namespace tdb::server {

TdbClient::TdbClient(const TypeRegistry* registry, TdbClientOptions options)
    : registry_(registry), options_(options) {}

TdbClient::~TdbClient() { Disconnect(); }

Status TdbClient::Connect(net::Transport* transport,
                          const std::string& address) {
  if (conn_ != nullptr) {
    return FailedPreconditionError("client already connected");
  }
  TDB_ASSIGN_OR_RETURN(conn_,
                       transport->Connect(address, options_.connect_timeout));
  return OkStatus();
}

void TdbClient::Disconnect() {
  if (conn_ != nullptr) {
    conn_->Close();
    conn_.reset();
  }
  in_transaction_ = false;
}

Result<Response> TdbClient::RoundTrip(const Request& request) {
  if (conn_ == nullptr) {
    return FailedPreconditionError("client is not connected");
  }
  // Client-side span: the full round trip (send + server + recv) per op.
  obs::LatencyTimer timer(FindOpInfo(request.op)->client_histogram);
  TDB_RETURN_IF_ERROR(
      conn_->Send(EncodeRequest(request), options_.request_timeout));
  TDB_ASSIGN_OR_RETURN(Bytes frame, conn_->Recv(options_.request_timeout));
  return DecodeResponse(frame);
}

Status TdbClient::Ping() {
  TDB_ASSIGN_OR_RETURN(Response response, RoundTrip(Request{.op = Op::kPing}));
  return StatusFromResponse(response);
}

Status TdbClient::Begin(PartitionId partition) {
  TDB_ASSIGN_OR_RETURN(
      Response response,
      RoundTrip(Request{.op = Op::kBegin, .partition = partition}));
  Status status = StatusFromResponse(response);
  in_transaction_ = status.ok();
  return status;
}

Status TdbClient::BeginReadOnly(PartitionId partition) {
  TDB_ASSIGN_OR_RETURN(
      Response response,
      RoundTrip(Request{.op = Op::kBeginReadOnly, .partition = partition}));
  Status status = StatusFromResponse(response);
  in_transaction_ = status.ok();
  return status;
}

Status TdbClient::Commit() {
  TDB_ASSIGN_OR_RETURN(Response response,
                       RoundTrip(Request{.op = Op::kCommit}));
  // Success or not, the server-side transaction is finished.
  in_transaction_ = false;
  return StatusFromResponse(response);
}

Status TdbClient::Abort() {
  TDB_ASSIGN_OR_RETURN(Response response, RoundTrip(Request{.op = Op::kAbort}));
  in_transaction_ = false;
  return StatusFromResponse(response);
}

Result<ObjectPtr> TdbClient::GetInternal(ObjectId id, Op op) {
  Request request;
  request.op = op;
  request.object_id = id.Pack();
  TDB_ASSIGN_OR_RETURN(Response response, RoundTrip(request));
  TDB_RETURN_IF_ERROR(StatusFromResponse(response));
  return registry_->Unpickle(response.object);
}

Result<ObjectPtr> TdbClient::Get(ObjectId id) {
  return GetInternal(id, Op::kGet);
}

Result<ObjectPtr> TdbClient::GetForUpdate(ObjectId id) {
  return GetInternal(id, Op::kGetForUpdate);
}

Result<ObjectId> TdbClient::Insert(const Pickled& object) {
  Request request;
  request.op = Op::kInsert;
  request.object = registry_->Pickle(object);
  TDB_ASSIGN_OR_RETURN(Response response, RoundTrip(request));
  TDB_RETURN_IF_ERROR(StatusFromResponse(response));
  return ChunkId::Unpack(response.object_id);
}

Status TdbClient::Put(ObjectId id, const Pickled& object) {
  Request request;
  request.op = Op::kPut;
  request.object_id = id.Pack();
  request.object = registry_->Pickle(object);
  TDB_ASSIGN_OR_RETURN(Response response, RoundTrip(request));
  return StatusFromResponse(response);
}

Status TdbClient::Delete(ObjectId id) {
  Request request;
  request.op = Op::kDelete;
  request.object_id = id.Pack();
  TDB_ASSIGN_OR_RETURN(Response response, RoundTrip(request));
  return StatusFromResponse(response);
}

Result<std::string> TdbClient::FetchStats() {
  TDB_ASSIGN_OR_RETURN(Response response, RoundTrip(Request{.op = Op::kStats}));
  TDB_RETURN_IF_ERROR(StatusFromResponse(response));
  return StringFromBytes(response.object);
}

Status TdbClient::ResetStats() {
  TDB_ASSIGN_OR_RETURN(Response response,
                       RoundTrip(Request{.op = Op::kStatsReset}));
  return StatusFromResponse(response);
}

Result<PartitionId> TdbClient::PartitionCreate(const std::string& name) {
  Request request;
  request.op = Op::kPartitionCreate;
  request.object = BytesFromString(name);
  TDB_ASSIGN_OR_RETURN(Response response, RoundTrip(request));
  TDB_RETURN_IF_ERROR(StatusFromResponse(response));
  return static_cast<PartitionId>(response.object_id);
}

Status TdbClient::PartitionDrop(const std::string& name) {
  Request request;
  request.op = Op::kPartitionDrop;
  request.object = BytesFromString(name);
  TDB_ASSIGN_OR_RETURN(Response response, RoundTrip(request));
  return StatusFromResponse(response);
}

Result<std::vector<shard::PartitionEntry>> TdbClient::PartitionList() {
  TDB_ASSIGN_OR_RETURN(Response response,
                       RoundTrip(Request{.op = Op::kPartitionList}));
  TDB_RETURN_IF_ERROR(StatusFromResponse(response));
  return UnpickleEntryList(response.object);
}

Result<shard::PartitionEntry> TdbClient::PartitionLookup(
    const std::string& name) {
  Request request;
  request.op = Op::kPartitionLookup;
  request.object = BytesFromString(name);
  TDB_ASSIGN_OR_RETURN(Response response, RoundTrip(request));
  TDB_RETURN_IF_ERROR(StatusFromResponse(response));
  TDB_ASSIGN_OR_RETURN(std::vector<shard::PartitionEntry> entries,
                       UnpickleEntryList(response.object));
  if (entries.size() != 1) {
    return CorruptionError("partition lookup returned " +
                           std::to_string(entries.size()) + " entries");
  }
  return entries[0];
}

Result<TdbClient::HandoffStream> TdbClient::HandoffExport(
    PartitionId partition, PartitionId base) {
  Request request;
  request.op = Op::kHandoffExport;
  request.partition = partition;
  request.object_id = base;
  TDB_ASSIGN_OR_RETURN(Response response, RoundTrip(request));
  TDB_RETURN_IF_ERROR(StatusFromResponse(response));
  HandoffStream out;
  out.snapshot = static_cast<PartitionId>(response.object_id);
  out.stream = std::move(response.object);
  return out;
}

Status TdbClient::HandoffImport(PartitionId partition, PartitionId base,
                                ByteView stream) {
  Request request;
  request.op = Op::kHandoffImport;
  request.partition = partition;
  request.object_id = base;
  request.object = Bytes(stream.begin(), stream.end());
  TDB_ASSIGN_OR_RETURN(Response response, RoundTrip(request));
  return StatusFromResponse(response);
}

Result<TdbClient::HandoffStream> TdbClient::HandoffCutover(
    PartitionId partition, const std::string& target, PartitionId base) {
  Request request;
  request.op = Op::kHandoffCutover;
  request.partition = partition;
  request.object_id = base;
  request.object = BytesFromString(target);
  TDB_ASSIGN_OR_RETURN(Response response, RoundTrip(request));
  TDB_RETURN_IF_ERROR(StatusFromResponse(response));
  HandoffStream out;
  out.snapshot = static_cast<PartitionId>(response.object_id);
  out.stream = std::move(response.object);
  return out;
}

Status TdbClient::HandoffActivate(PartitionId partition,
                                  const std::string& name) {
  Request request;
  request.op = Op::kHandoffActivate;
  request.partition = partition;
  request.object = BytesFromString(name);
  TDB_ASSIGN_OR_RETURN(Response response, RoundTrip(request));
  return StatusFromResponse(response);
}

Status TdbClient::HandoffFinish(PartitionId partition,
                                const std::string& target) {
  Request request;
  request.op = Op::kHandoffFinish;
  request.partition = partition;
  request.object = BytesFromString(target);
  TDB_ASSIGN_OR_RETURN(Response response, RoundTrip(request));
  return StatusFromResponse(response);
}

}  // namespace tdb::server
