#include "src/server/client.h"

#include "src/common/bytes.h"
#include "src/obs/metrics.h"

namespace tdb::server {

TdbClient::TdbClient(const TypeRegistry* registry, TdbClientOptions options)
    : registry_(registry), options_(options) {}

TdbClient::~TdbClient() { Disconnect(); }

Status TdbClient::Connect(net::Transport* transport,
                          const std::string& address) {
  if (conn_ != nullptr) {
    return FailedPreconditionError("client already connected");
  }
  TDB_ASSIGN_OR_RETURN(conn_,
                       transport->Connect(address, options_.connect_timeout));
  return OkStatus();
}

void TdbClient::Disconnect() {
  if (conn_ != nullptr) {
    conn_->Close();
    conn_.reset();
  }
  in_transaction_ = false;
}

Result<Response> TdbClient::RoundTrip(const Request& request) {
  if (conn_ == nullptr) {
    return FailedPreconditionError("client is not connected");
  }
  // Client-side span: the full round trip (send + server + recv) per op.
  obs::LatencyTimer timer(FindOpInfo(request.op)->client_histogram);
  TDB_RETURN_IF_ERROR(
      conn_->Send(EncodeRequest(request), options_.request_timeout));
  TDB_ASSIGN_OR_RETURN(Bytes frame, conn_->Recv(options_.request_timeout));
  return DecodeResponse(frame);
}

Status TdbClient::Ping() {
  TDB_ASSIGN_OR_RETURN(Response response, RoundTrip(Request{.op = Op::kPing}));
  return StatusFromResponse(response);
}

Status TdbClient::Begin() {
  TDB_ASSIGN_OR_RETURN(Response response, RoundTrip(Request{.op = Op::kBegin}));
  Status status = StatusFromResponse(response);
  in_transaction_ = status.ok();
  return status;
}

Status TdbClient::BeginReadOnly() {
  TDB_ASSIGN_OR_RETURN(Response response,
                       RoundTrip(Request{.op = Op::kBeginReadOnly}));
  Status status = StatusFromResponse(response);
  in_transaction_ = status.ok();
  return status;
}

Status TdbClient::Commit() {
  TDB_ASSIGN_OR_RETURN(Response response,
                       RoundTrip(Request{.op = Op::kCommit}));
  // Success or not, the server-side transaction is finished.
  in_transaction_ = false;
  return StatusFromResponse(response);
}

Status TdbClient::Abort() {
  TDB_ASSIGN_OR_RETURN(Response response, RoundTrip(Request{.op = Op::kAbort}));
  in_transaction_ = false;
  return StatusFromResponse(response);
}

Result<ObjectPtr> TdbClient::GetInternal(ObjectId id, Op op) {
  Request request;
  request.op = op;
  request.object_id = id.Pack();
  TDB_ASSIGN_OR_RETURN(Response response, RoundTrip(request));
  TDB_RETURN_IF_ERROR(StatusFromResponse(response));
  return registry_->Unpickle(response.object);
}

Result<ObjectPtr> TdbClient::Get(ObjectId id) {
  return GetInternal(id, Op::kGet);
}

Result<ObjectPtr> TdbClient::GetForUpdate(ObjectId id) {
  return GetInternal(id, Op::kGetForUpdate);
}

Result<ObjectId> TdbClient::Insert(const Pickled& object) {
  Request request;
  request.op = Op::kInsert;
  request.object = registry_->Pickle(object);
  TDB_ASSIGN_OR_RETURN(Response response, RoundTrip(request));
  TDB_RETURN_IF_ERROR(StatusFromResponse(response));
  return ChunkId::Unpack(response.object_id);
}

Status TdbClient::Put(ObjectId id, const Pickled& object) {
  Request request;
  request.op = Op::kPut;
  request.object_id = id.Pack();
  request.object = registry_->Pickle(object);
  TDB_ASSIGN_OR_RETURN(Response response, RoundTrip(request));
  return StatusFromResponse(response);
}

Status TdbClient::Delete(ObjectId id) {
  Request request;
  request.op = Op::kDelete;
  request.object_id = id.Pack();
  TDB_ASSIGN_OR_RETURN(Response response, RoundTrip(request));
  return StatusFromResponse(response);
}

Result<std::string> TdbClient::FetchStats() {
  TDB_ASSIGN_OR_RETURN(Response response, RoundTrip(Request{.op = Op::kStats}));
  TDB_RETURN_IF_ERROR(StatusFromResponse(response));
  return StringFromBytes(response.object);
}

Status TdbClient::ResetStats() {
  TDB_ASSIGN_OR_RETURN(Response response,
                       RoundTrip(Request{.op = Op::kStatsReset}));
  return StatusFromResponse(response);
}

}  // namespace tdb::server
