// The TDB service wire format: one pickled request or response per
// transport frame, built on the same PickleWriter/PickleReader streams used
// for chunk headers and stored objects (src/common/pickle.h).
//
// Every message starts with a magic byte and a protocol version so a
// mis-directed or corrupted frame fails decoding instead of being
// misinterpreted. Object payloads cross the wire in their *pickled* form
// (type tag + fields) — exactly the representation the object store
// persists — so client and server only need a shared TypeRegistry, and the
// server never sees plaintext-specific structure it doesn't already know.
//
// The protocol is synchronous per connection: one request, one response,
// in order. A session holds at most one open transaction; Begin/Commit/
// Abort delimit it.

#ifndef SRC_SERVER_WIRE_H_
#define SRC_SERVER_WIRE_H_

#include <string>

#include "src/common/bytes.h"
#include "src/common/status.h"

namespace tdb::server {

inline constexpr uint8_t kWireMagic = 0xDB;
inline constexpr uint8_t kWireVersion = 1;

enum class Op : uint8_t {
  kPing = 1,
  kBegin = 2,
  kGet = 3,
  kGetForUpdate = 4,
  kInsert = 5,
  kPut = 6,
  kDelete = 7,
  kCommit = 8,
  kAbort = 9,
  // Begins a read-only snapshot transaction (lock-free reads; writes and
  // GetForUpdate are rejected server-side).
  kBeginReadOnly = 10,
  // Returns the server's full observability snapshot (SnapshotJson plus
  // server gauges) in the response object. Allowed outside a transaction.
  kStats = 11,
  // Resets the server's metrics/profiler/trace state. Allowed outside a
  // transaction.
  kStatsReset = 12,
};

// Static metadata for one wire op. The table in wire.cc is the single
// source of truth: request decoding, OpName, and the per-op histogram names
// used by the server and client span instrumentation all derive from it.
struct OpInfo {
  Op op;
  const char* name;              // stable snake_case wire name
  const char* server_histogram;  // "wire.op.<name>.us" (server handle+send)
  const char* client_histogram;  // "wire.rtt.<name>.us" (client round trip)
};

// Table entry for `op`, or nullptr when the byte is not a valid wire op.
const OpInfo* FindOpInfo(Op op);

const char* OpName(Op op);

struct Request {
  Op op = Op::kPing;
  uint64_t object_id = 0;  // packed ChunkId: Get/GetForUpdate/Put/Delete
  Bytes object;            // pickled object: Insert/Put
};

struct Response {
  StatusCode code = StatusCode::kOk;
  std::string message;     // status message when code != kOk
  uint64_t object_id = 0;  // Insert: new id; Begin: transaction id
  Bytes object;            // Get/GetForUpdate: pickled object
};

Bytes EncodeRequest(const Request& request);
Result<Request> DecodeRequest(ByteView frame);

Bytes EncodeResponse(const Response& response);
Result<Response> DecodeResponse(ByteView frame);

// Builds the error/ok response corresponding to a Status (payload fields
// left empty), and the inverse for the client side.
Response ResponseFromStatus(const Status& status);
Status StatusFromResponse(const Response& response);

}  // namespace tdb::server

#endif  // SRC_SERVER_WIRE_H_
