// The TDB service wire format: one pickled request or response per
// transport frame, built on the same PickleWriter/PickleReader streams used
// for chunk headers and stored objects (src/common/pickle.h).
//
// Every message starts with a magic byte and a protocol version so a
// mis-directed or corrupted frame fails decoding instead of being
// misinterpreted. Object payloads cross the wire in their *pickled* form
// (type tag + fields) — exactly the representation the object store
// persists — so client and server only need a shared TypeRegistry, and the
// server never sees plaintext-specific structure it doesn't already know.
//
// The protocol is synchronous per connection: one request, one response,
// in order. A session holds at most one open transaction; Begin/Commit/
// Abort delimit it.

#ifndef SRC_SERVER_WIRE_H_
#define SRC_SERVER_WIRE_H_

#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/shard/directory.h"

namespace tdb::server {

inline constexpr uint8_t kWireMagic = 0xDB;
// Version 2 added the partition id to every request (sharded service) and
// the directory/hand-off op family. Decoding rejects any other version: a
// v1 peer gets a clear kUnimplemented status, never a misparsed frame.
inline constexpr uint8_t kWireVersion = 2;

enum class Op : uint8_t {
  kPing = 1,
  kBegin = 2,
  kGet = 3,
  kGetForUpdate = 4,
  kInsert = 5,
  kPut = 6,
  kDelete = 7,
  kCommit = 8,
  kAbort = 9,
  // Begins a read-only snapshot transaction (lock-free reads; writes and
  // GetForUpdate are rejected server-side).
  kBeginReadOnly = 10,
  // Returns the server's full observability snapshot (SnapshotJson plus
  // server gauges) in the response object. Allowed outside a transaction.
  kStats = 11,
  // Resets the server's metrics/profiler/trace state. Allowed outside a
  // transaction.
  kStatsReset = 12,

  // --- partition directory CRUD (sharded servers; outside a transaction) ---
  // Creates + catalogs + serves a fresh partition named by request.object;
  // response.object_id = its partition id.
  kPartitionCreate = 13,
  // Drops the partition named by request.object (data and catalog entry).
  kPartitionDrop = 14,
  // response.object = pickled directory listing (see PickleEntryList).
  kPartitionList = 15,
  // Looks up the name in request.object; response.object = its pickled
  // entry, response.object_id = its partition id. Serves as the "moved"
  // redirect query: a moved entry carries the new server's address.
  kPartitionLookup = 16,

  // --- live hand-off (admin ops on the source/target server) ---
  // Source: snapshots request.partition and returns a backup stream in
  // response.object — full when request.object_id (the base snapshot) is 0,
  // else incremental against it. response.object_id = the new snapshot's
  // id, the base for the next incremental in the chain.
  kHandoffExport = 17,
  // Target: applies a backup stream (request.object) to the local chunk
  // store; the partition keeps its id but is not served yet.
  kHandoffImport = 18,
  // Source: atomic ownership cut-over of request.partition. Stops admitting
  // transactions (clients get a retryable kMoved status pointing at the
  // address in request.object), drains the in-flight ones, then exports the
  // final incremental (base = request.object_id) exactly like kHandoffExport.
  // The partition stays in the draining state until kHandoffFinish.
  kHandoffCutover = 19,
  // Target: catalogs the imported request.partition under the name in
  // request.object and starts serving it.
  kHandoffActivate = 20,
  // Source: finalizes — marks the directory entry moved to the address in
  // request.object, stops routing to the engine, and deallocates the
  // hand-off snapshot chain. The partition's data is retained until an
  // explicit kPartitionDrop.
  kHandoffFinish = 21,
};

// Static metadata for one wire op. The table in wire.cc is the single
// source of truth: request decoding, OpName, and the per-op histogram names
// used by the server and client span instrumentation all derive from it.
struct OpInfo {
  Op op;
  const char* name;              // stable snake_case wire name
  const char* server_histogram;  // "wire.op.<name>.us" (server handle+send)
  const char* client_histogram;  // "wire.rtt.<name>.us" (client round trip)
};

// Table entry for `op`, or nullptr when the byte is not a valid wire op.
const OpInfo* FindOpInfo(Op op);

const char* OpName(Op op);

struct Request {
  Op op = Op::kPing;
  // Partition the request addresses: Begin/BeginReadOnly (0 = the server's
  // sole partition, rejected when it serves several) and the hand-off ops.
  // Carried on every frame; ignored by ops that don't route by partition.
  uint64_t partition = 0;
  uint64_t object_id = 0;  // packed ChunkId: Get/GetForUpdate/Put/Delete
  Bytes object;            // pickled object: Insert/Put; name/stream: admin
};

struct Response {
  StatusCode code = StatusCode::kOk;
  std::string message;     // status message when code != kOk
  uint64_t object_id = 0;  // Insert: new id; Begin: transaction id
  Bytes object;            // Get/GetForUpdate: pickled object
};

Bytes EncodeRequest(const Request& request);
Result<Request> DecodeRequest(ByteView frame);

Bytes EncodeResponse(const Response& response);
Result<Response> DecodeResponse(ByteView frame);

// Builds the error/ok response corresponding to a Status (payload fields
// left empty), and the inverse for the client side.
Response ResponseFromStatus(const Status& status);
Status StatusFromResponse(const Response& response);

// Directory listings (kPartitionList) and single entries (kPartitionLookup)
// cross the wire in this pickled form.
Bytes PickleEntryList(const std::vector<shard::PartitionEntry>& entries);
Result<std::vector<shard::PartitionEntry>> UnpickleEntryList(ByteView data);

}  // namespace tdb::server

#endif  // SRC_SERVER_WIRE_H_
