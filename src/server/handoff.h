// HandoffDriver: the coordinator side of a live partition hand-off.
//
// Drives the wire protocol between a source and a target server (wire.h,
// kHandoff*): ship a full COW snapshot, chase the still-live partition with
// chained incrementals, then cut over — the source drains in-flight
// transactions and hands back the final incremental, the target applies the
// whole staged chain in one atomic restore and starts serving, and the
// source persists the move so clients are redirected from then on. Client
// writes keep flowing on the source until the cut-over call, and every
// acknowledged commit is covered by the final incremental, so the move
// loses nothing and stalls writers only for the drain + final-delta window.
//
// The driver is deliberately stateless between steps: if it (or either
// server) dies mid-way, re-running Move restarts from a fresh full export —
// the target's staging buffer resets on a full stream, and the source keeps
// both data and ownership until the finish step. See DESIGN.md §10 for the
// stage-by-stage crash contract.

#ifndef SRC_SERVER_HANDOFF_H_
#define SRC_SERVER_HANDOFF_H_

#include <string>

#include "src/server/client.h"

namespace tdb::server {

struct HandoffOptions {
  // Incremental catch-up rounds between the full copy and the cut-over.
  // More rounds shrink the final delta (and so the cut-over stall) while
  // the partition keeps taking writes.
  size_t catchup_rounds = 2;
};

// Moves the partition named `name` from the server behind `source` to the
// server behind `target`. Both clients must be connected; `target_address`
// is what redirected clients will be told to dial. On failure the source
// keeps serving (a failed cut-over is rolled back with a finish-abort).
Status MovePartition(TdbClient& source, TdbClient& target,
                     const std::string& name,
                     const std::string& target_address,
                     HandoffOptions options = {});

}  // namespace tdb::server

#endif  // SRC_SERVER_HANDOFF_H_
