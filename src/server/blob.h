// BlobValue: the untyped "bag of bytes" object used by the tdb_server /
// tdb_cli example pair and the server bench. Real applications define their
// own Pickled types (see tests/object_store_test.cc for a typed example);
// the server itself is type-agnostic and only needs client and server to
// register the same tags.

#ifndef SRC_SERVER_BLOB_H_
#define SRC_SERVER_BLOB_H_

#include <memory>
#include <string>
#include <utility>

#include "src/object/pickler.h"

namespace tdb::server {

class BlobValue final : public Pickled {
 public:
  static constexpr uint32_t kTypeTag = 0xB10B;

  BlobValue() = default;
  explicit BlobValue(std::string value) : value(std::move(value)) {}

  std::string value;

  uint32_t type_tag() const override { return kTypeTag; }
  void PickleFields(PickleWriter& w) const override { w.WriteString(value); }
  static Result<ObjectPtr> UnpickleFields(PickleReader& r) {
    auto blob = std::make_shared<BlobValue>();
    blob->value = r.ReadString();
    return ObjectPtr(blob);
  }
};

}  // namespace tdb::server

#endif  // SRC_SERVER_BLOB_H_
