// TdbClient: the client side of the TDB service protocol.
//
// Mirrors the Transaction API (Begin/Get/GetForUpdate/Insert/Put/Delete/
// Commit/Abort) over a Transport connection, one synchronous request per
// call. Objects are pickled with the client's TypeRegistry before they
// cross the wire and unpickled on the way back, so application code handles
// ObjectPtr values exactly as it would against an in-process ObjectStore.
//
// A TdbClient drives one connection and is confined to one thread at a time
// (the protocol allows one outstanding request per connection). For
// concurrent traffic, open one client per thread — the server coalesces
// their commits via group commit.

#ifndef SRC_SERVER_CLIENT_H_
#define SRC_SERVER_CLIENT_H_

#include <chrono>
#include <memory>
#include <string>

#include "src/chunk/chunk_id.h"
#include "src/net/transport.h"
#include "src/object/pickler.h"
#include "src/server/wire.h"

namespace tdb::server {

using ObjectId = ChunkId;

struct TdbClientOptions {
  // Per-request timeout: covers the round trip including server-side lock
  // waits and the (group-) commit flush.
  std::chrono::milliseconds request_timeout{30000};
  std::chrono::milliseconds connect_timeout{5000};
};

class TdbClient {
 public:
  // `registry` must outlive the client and know every type exchanged.
  explicit TdbClient(const TypeRegistry* registry,
                     TdbClientOptions options = {});
  ~TdbClient();

  TdbClient(const TdbClient&) = delete;
  TdbClient& operator=(const TdbClient&) = delete;

  Status Connect(net::Transport* transport, const std::string& address);
  void Disconnect();
  bool connected() const { return conn_ != nullptr; }

  Status Ping();

  // Transaction control. The server allows one open transaction per
  // session; Commit/Abort end it. `partition` routes the transaction on a
  // sharded server (0 = the server's sole partition, an error when it
  // serves several). A kMoved status is retryable: its message is the
  // address of the server now owning the partition.
  Status Begin(PartitionId partition = 0);
  // Begins a read-only snapshot transaction: the server serves every Get
  // from a pinned COW partition copy without taking locks; GetForUpdate and
  // writes are rejected until Commit/Abort.
  Status BeginReadOnly(PartitionId partition = 0);
  Status Commit();
  Status Abort();
  bool in_transaction() const { return in_transaction_; }

  Result<ObjectPtr> Get(ObjectId id);
  Result<ObjectPtr> GetForUpdate(ObjectId id);
  Result<ObjectId> Insert(const Pickled& object);
  Status Put(ObjectId id, const Pickled& object);
  Status Delete(ObjectId id);

  // Remote stats: the server's full observability snapshot (SnapshotJson,
  // gauges refreshed) as a JSON string, and a reset of the server's
  // metrics/profiler/trace state. Both work outside a transaction.
  Result<std::string> FetchStats();
  Status ResetStats();

  // --- partition directory (sharded servers; outside a transaction) ---
  Result<PartitionId> PartitionCreate(const std::string& name);
  Status PartitionDrop(const std::string& name);
  Result<std::vector<shard::PartitionEntry>> PartitionList();
  Result<shard::PartitionEntry> PartitionLookup(const std::string& name);

  // --- live hand-off admin (see wire.h for the protocol) ---
  struct HandoffStream {
    PartitionId snapshot = 0;  // base for the next incremental
    Bytes stream;              // backup stream to import on the target
  };
  // Source: export a full (base 0) or incremental backup of `partition`.
  Result<HandoffStream> HandoffExport(PartitionId partition, PartitionId base);
  // Target: stage a stream (a full stream resets the staging buffer).
  Status HandoffImport(PartitionId partition, PartitionId base,
                       ByteView stream);
  // Source: drain + final incremental; clients are redirected to `target`.
  Result<HandoffStream> HandoffCutover(PartitionId partition,
                                       const std::string& target,
                                       PartitionId base);
  // Target: apply the staged chain atomically and start serving.
  Status HandoffActivate(PartitionId partition, const std::string& name);
  // Source: persist the move (empty `target` aborts and resumes serving).
  Status HandoffFinish(PartitionId partition, const std::string& target);

 private:
  Result<Response> RoundTrip(const Request& request);
  Result<ObjectPtr> GetInternal(ObjectId id, Op op);

  const TypeRegistry* registry_;
  TdbClientOptions options_;
  std::unique_ptr<net::Connection> conn_;
  bool in_transaction_ = false;
};

}  // namespace tdb::server

#endif  // SRC_SERVER_CLIENT_H_
