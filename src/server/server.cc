#include "src/server/server.h"

#include <algorithm>
#include <cstdio>
#include <ctime>
#include <utility>

#include "src/backup/backup_store.h"
#include "src/common/rng.h"
#include "src/obs/metrics.h"
#include "src/obs/snapshot.h"
#include "src/obs/trace.h"

namespace tdb::server {

namespace {

// How long a session worker sleeps in Recv before re-checking the stop flag
// and the idle clock; bounds shutdown latency, not request latency.
constexpr std::chrono::milliseconds kRecvPollInterval{200};

double MicrosBetween(std::chrono::steady_clock::time_point from,
                     std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

shard::EngineRegistryOptions RegistryOptions(const TdbServerOptions& options) {
  shard::EngineRegistryOptions out;
  out.store_options.lock_timeout = options.lock_timeout;
  out.store_options.cache_capacity = options.cache_capacity;
  out.store_options.group_commit = options.group_commit;
  out.store_options.group_commit_max_batch = options.group_commit_max_batch;
  out.combine_commits = options.combine_commits;
  out.combine_max_batch = options.combine_max_batch;
  return out;
}

// Hand-off streams travel as wire payloads, not archive files; these adapt
// a Bytes buffer to the archival sink/source interfaces.
class BytesSink : public ArchivalSink {
 public:
  Status Write(ByteView data) override {
    buffer_.insert(buffer_.end(), data.begin(), data.end());
    return OkStatus();
  }
  Status Close() override { return OkStatus(); }
  Bytes Take() { return std::move(buffer_); }

 private:
  Bytes buffer_;
};

class BytesSource : public ArchivalSource {
 public:
  explicit BytesSource(ByteView data) : data_(data) {}
  Result<Bytes> Read(size_t n) override {
    n = std::min(n, data_.size() - pos_);
    Bytes out(data_.begin() + pos_, data_.begin() + pos_ + n);
    pos_ += n;
    return out;
  }

 private:
  ByteView data_;
  size_t pos_ = 0;
};

uint64_t RandomSetId() {
  static std::atomic<uint64_t> salt{0};
  Rng rng(static_cast<uint64_t>(
              std::chrono::steady_clock::now().time_since_epoch().count()) ^
          (salt.fetch_add(1) << 32));
  return rng.NextU64();
}

}  // namespace

TdbServer::TdbServer(ChunkStore* chunks, PartitionId partition,
                     const TypeRegistry* registry, TdbServerOptions options)
    : chunks_(chunks),
      registry_(registry),
      options_(options),
      engines_(chunks, registry, RegistryOptions(options)) {
  // A missing partition surfaces as kNotFound on the first begin.
  (void)engines_.Add(partition);
}

TdbServer::TdbServer(ChunkStore* chunks, shard::PartitionDirectory* directory,
                     const TypeRegistry* registry, TdbServerOptions options)
    : chunks_(chunks),
      registry_(registry),
      options_(options),
      engines_(chunks, registry, RegistryOptions(options)),
      directory_(directory) {
  for (const shard::PartitionEntry& entry : directory_->List()) {
    if (!entry.moved) {
      (void)engines_.Add(entry.id);
    }
  }
}

TdbServer::~TdbServer() { Stop(); }

Status TdbServer::Start(net::Transport* transport, const std::string& address) {
  if (started_) {
    return FailedPreconditionError("server already started");
  }
  if (options_.max_sessions == 0) {
    return InvalidArgumentError("max_sessions must be positive");
  }
  TDB_ASSIGN_OR_RETURN(listener_, transport->Listen(address));
  size_t workers = options_.worker_threads != 0 ? options_.worker_threads
                                                : options_.max_sessions;
  workers_ = std::make_unique<ThreadPool>(workers);
  stop_.store(false, std::memory_order_release);
  started_ = true;
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return OkStatus();
}

void TdbServer::Stop() {
  if (!started_) {
    return;
  }
  stop_.store(true, std::memory_order_release);
  listener_->Shutdown();
  if (acceptor_.joinable()) {
    acceptor_.join();
  }
  {
    // Unblock every session worker parked in Recv; each aborts its open
    // transaction on the way out.
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (auto& [id, conn] : live_sessions_) {
      conn->Close();
    }
  }
  workers_.reset();  // joins the session workers (runs any never-started task)
  listener_.reset();
  started_ = false;
}

std::string TdbServer::address() const {
  return listener_ != nullptr ? listener_->address() : std::string();
}

void TdbServer::PublishGauges() {
  Stats stats = GetStats();
  obs::SetGauge("server.sessions.active",
                static_cast<double>(stats.active_sessions));
  obs::SetGauge("server.sessions.opened",
                static_cast<double>(stats.sessions_opened));
  obs::SetGauge("server.sessions.rejected",
                static_cast<double>(stats.sessions_rejected));
  obs::SetGauge("server.idle_timeouts",
                static_cast<double>(stats.idle_timeouts));
  obs::SetGauge("server.requests", static_cast<double>(stats.requests));
  std::vector<std::shared_ptr<shard::PartitionEngine>> engines =
      engines_.Engines();
  obs::SetGauge("shard.partitions", static_cast<double>(engines.size()));
  double queue_depth = 0;
  for (const std::shared_ptr<shard::PartitionEngine>& engine : engines) {
    const std::string prefix =
        "shard.partition." + std::to_string(engine->partition());
    obs::SetGauge((prefix + ".sessions").c_str(),
                  static_cast<double>(engine->active_txns()));
    obs::SetGauge((prefix + ".commits").c_str(),
                  static_cast<double>(engine->store()->counts().commits));
    obs::SetGauge((prefix + ".queue_depth").c_str(),
                  static_cast<double>(
                      engine->store()->group_commit_queue_depth()));
    obs::SetGauge((prefix + ".state").c_str(),
                  static_cast<double>(engine->state()));
    queue_depth += static_cast<double>(
        engine->store()->group_commit_queue_depth());
  }
  obs::SetGauge("server.group_commit.queue_depth", queue_depth);
  // ChunkStore::GetStats publishes the chunk gauges (live/used log bytes)
  // as a side effect.
  (void)chunks_->GetStats();
}

TdbServer::Stats TdbServer::GetStats() const {
  Stats stats;
  stats.sessions_opened = sessions_opened_.load(std::memory_order_relaxed);
  stats.sessions_rejected = sessions_rejected_.load(std::memory_order_relaxed);
  stats.idle_timeouts = idle_timeouts_.load(std::memory_order_relaxed);
  stats.requests = requests_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(sessions_mu_);
  stats.active_sessions = live_sessions_.size();
  return stats;
}

void TdbServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    Result<std::unique_ptr<net::Connection>> accepted =
        listener_->Accept(kRecvPollInterval);
    if (!accepted.ok()) {
      if (accepted.status().code() == StatusCode::kTimeout) {
        continue;
      }
      return;  // listener shut down (or died); Stop joins us
    }
    std::shared_ptr<net::Connection> conn(std::move(*accepted));
    size_t active;
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      active = live_sessions_.size();
    }
    if (active >= options_.max_sessions) {
      // Backpressure: answer the session's first request with a busy status
      // before any worker is committed to it.
      sessions_rejected_.fetch_add(1, std::memory_order_relaxed);
      obs::Count("server.sessions_rejected");
      (void)conn->Send(
          EncodeResponse(ResponseFromStatus(FailedPreconditionError(
              "server busy: session limit reached"))),
          options_.io_timeout);
      conn->Close();
      continue;
    }
    workers_->Submit([this, conn]() mutable { ServeSession(std::move(conn)); });
  }
}

void TdbServer::FinishTxn(Session& session) {
  session.txn.reset();
  if (session.engine != nullptr) {
    session.engine->TxnFinished();
    session.engine.reset();
  }
}

void TdbServer::ServeSession(std::shared_ptr<net::Connection> conn) {
  Session session;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    session.id = next_session_id_++;
    live_sessions_[session.id] = conn.get();
    obs::SetGauge("server.active_sessions",
                  static_cast<double>(live_sessions_.size()));
  }
  sessions_opened_.fetch_add(1, std::memory_order_relaxed);
  obs::Count("server.sessions_opened");
  session.last_activity = std::chrono::steady_clock::now();

  const auto poll = std::min(options_.idle_timeout, kRecvPollInterval);
  // Start of the recv stage for the next request: the previous response's
  // send completion (or session start). Includes client think time, so it is
  // reported but never counted against the slow-request threshold.
  auto recv_start = session.last_activity;
  while (!stop_.load(std::memory_order_acquire)) {
    Result<Bytes> frame = conn->Recv(poll);
    if (!frame.ok()) {
      if (frame.status().code() != StatusCode::kTimeout) {
        break;  // peer gone
      }
      if (std::chrono::steady_clock::now() - session.last_activity >=
          options_.idle_timeout) {
        idle_timeouts_.fetch_add(1, std::memory_order_relaxed);
        obs::Count("server.idle_timeouts");
        break;  // the epilogue below aborts the transaction, freeing locks
      }
      continue;
    }
    const auto recv_end = std::chrono::steady_clock::now();
    session.last_activity = recv_end;

    Result<Request> request = DecodeRequest(*frame);
    if (!request.ok()) {
      // The stream's framing can no longer be trusted; answer and hang up.
      (void)conn->Send(EncodeResponse(ResponseFromStatus(request.status())),
                       options_.io_timeout);
      break;
    }
    requests_.fetch_add(1, std::memory_order_relaxed);
    obs::Count("server.requests");
    Response response;
    {
      obs::LatencyTimer timer("server.request_us");
      response = Handle(session, *request);
    }
    const auto handle_end = std::chrono::steady_clock::now();
    const bool sent =
        conn->Send(EncodeResponse(response), options_.io_timeout).ok();
    const auto send_end = std::chrono::steady_clock::now();

    // Per-request span: stage histograms plus a per-op server histogram
    // (handle+send — the part the server is responsible for).
    const double recv_us = MicrosBetween(recv_start, recv_end);
    const double handle_us = MicrosBetween(recv_end, handle_end);
    const double send_us = MicrosBetween(handle_end, send_end);
    const OpInfo* op_info = FindOpInfo(request->op);
    obs::Observe(op_info->server_histogram, handle_us + send_us);
    obs::Observe("wire.stage.recv_us", recv_us);
    obs::Observe("wire.stage.handle_us", handle_us);
    obs::Observe("wire.stage.send_us", send_us);
    const auto threshold = options_.slow_request_threshold;
    if (threshold.count() > 0 &&
        handle_us + send_us >= static_cast<double>(threshold.count())) {
      char detail[160];
      std::snprintf(detail, sizeof(detail),
                    "op=%s recv_us=%.0f handle_us=%.0f send_us=%.0f",
                    op_info->name, recv_us, handle_us, send_us);
      obs::TraceEmit(obs::TraceKind::kSlowRequest, "server", session.id,
                     static_cast<uint64_t>(handle_us + send_us), detail);
    }
    if (!sent) {
      break;
    }
    recv_start = send_end;
  }

  if (session.txn != nullptr && session.txn->active()) {
    session.txn->Abort();
  }
  FinishTxn(session);
  conn->Close();
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    live_sessions_.erase(session.id);
    obs::SetGauge("server.active_sessions",
                  static_cast<double>(live_sessions_.size()));
  }
  obs::Count("server.sessions_closed");
}

Response TdbServer::HandleBegin(Session& session, const Request& request) {
  if (session.txn != nullptr && session.txn->active()) {
    return ResponseFromStatus(
        FailedPreconditionError("transaction already open"));
  }
  std::shared_ptr<shard::PartitionEngine> engine;
  if (request.partition == 0) {
    engine = engines_.Solo();
    if (engine == nullptr) {
      return ResponseFromStatus(InvalidArgumentError(
          "server serves " + std::to_string(engines_.size()) +
          " partitions; begin must name one"));
    }
  } else {
    PartitionId pid = static_cast<PartitionId>(request.partition);
    engine = engines_.Find(pid);
    if (engine == nullptr) {
      // The "moved" redirect: a cataloged-but-moved partition tells the
      // client where it lives now; anything else is unknown.
      if (directory_ != nullptr) {
        Result<shard::PartitionEntry> entry = directory_->Find(pid);
        if (entry.ok() && entry->moved) {
          return ResponseFromStatus(MovedError(entry->moved_to));
        }
      }
      return ResponseFromStatus(
          NotFoundError("unknown partition " + std::to_string(pid)));
    }
  }
  Result<std::unique_ptr<Transaction>> txn =
      request.op == Op::kBegin ? engine->Begin() : engine->BeginReadOnly();
  if (!txn.ok()) {
    return ResponseFromStatus(txn.status());
  }
  session.engine = std::move(engine);
  session.txn = std::move(*txn);
  Response response;
  response.object_id = session.txn->id();
  return response;
}

Result<Bytes> TdbServer::ExportPartition(PartitionId partition,
                                         PartitionId base,
                                         PartitionId* snapshot_out) {
  BackupStore backup(chunks_);
  BytesSink sink;
  TDB_ASSIGN_OR_RETURN(
      BackupStore::CreateResult created,
      backup.CreateBackupSet({{partition, base}}, RandomSetId(),
                             static_cast<uint64_t>(std::time(nullptr)),
                             &sink));
  {
    std::lock_guard<std::mutex> lock(handoff_mu_);
    handoff_snapshots_[partition].push_back(created.snapshots[0]);
  }
  if (snapshot_out != nullptr) {
    *snapshot_out = created.snapshots[0];
  }
  return sink.Take();
}

void TdbServer::DropHandoffSnapshots(PartitionId partition) {
  std::vector<PartitionId> snapshots;
  {
    std::lock_guard<std::mutex> lock(handoff_mu_);
    auto it = handoff_snapshots_.find(partition);
    if (it == handoff_snapshots_.end()) {
      return;
    }
    snapshots = std::move(it->second);
    handoff_snapshots_.erase(it);
  }
  ChunkStore::Batch batch;
  for (PartitionId snapshot : snapshots) {
    if (chunks_->PartitionExists(snapshot)) {
      batch.DeallocatePartition(snapshot);
    }
  }
  (void)chunks_->Commit(std::move(batch));
}

Response TdbServer::HandleAdmin(const Request& request) {
  const PartitionId pid = static_cast<PartitionId>(request.partition);
  switch (request.op) {
    case Op::kPartitionCreate: {
      if (directory_ == nullptr) {
        return ResponseFromStatus(FailedPreconditionError(
            "server has no partition directory (single-partition mode)"));
      }
      if (options_.new_partition_params.key.empty()) {
        return ResponseFromStatus(FailedPreconditionError(
            "server has no key configured for new partitions"));
      }
      Result<shard::PartitionEntry> entry = directory_->Create(
          StringFromBytes(request.object), options_.new_partition_params);
      if (!entry.ok()) {
        return ResponseFromStatus(entry.status());
      }
      Result<std::shared_ptr<shard::PartitionEngine>> engine =
          engines_.Add(entry->id);
      if (!engine.ok()) {
        return ResponseFromStatus(engine.status());
      }
      Response response;
      response.object_id = entry->id;
      return response;
    }
    case Op::kPartitionDrop: {
      if (directory_ == nullptr) {
        return ResponseFromStatus(FailedPreconditionError(
            "server has no partition directory (single-partition mode)"));
      }
      const std::string name = StringFromBytes(request.object);
      Result<shard::PartitionEntry> entry = directory_->Lookup(name);
      if (!entry.ok()) {
        return ResponseFromStatus(entry.status());
      }
      // Unroute first so no new transaction can begin on a partition whose
      // chunks are about to be deallocated; in-flight ones fail on commit.
      (void)engines_.Remove(entry->id);
      DropHandoffSnapshots(entry->id);
      return ResponseFromStatus(directory_->Drop(name));
    }
    case Op::kPartitionList: {
      if (directory_ == nullptr) {
        return ResponseFromStatus(FailedPreconditionError(
            "server has no partition directory (single-partition mode)"));
      }
      Response response;
      response.object = PickleEntryList(directory_->List());
      return response;
    }
    case Op::kPartitionLookup: {
      if (directory_ == nullptr) {
        return ResponseFromStatus(FailedPreconditionError(
            "server has no partition directory (single-partition mode)"));
      }
      Result<shard::PartitionEntry> entry =
          directory_->Lookup(StringFromBytes(request.object));
      if (!entry.ok()) {
        return ResponseFromStatus(entry.status());
      }
      Response response;
      response.object_id = entry->id;
      response.object = PickleEntryList({*entry});
      return response;
    }
    case Op::kHandoffExport: {
      if (engines_.Find(pid) == nullptr) {
        return ResponseFromStatus(
            NotFoundError("partition " + std::to_string(pid) +
                          " is not served here"));
      }
      const PartitionId base = static_cast<PartitionId>(request.object_id);
      PartitionId snapshot = 0;
      Result<Bytes> stream = ExportPartition(pid, base, &snapshot);
      if (!stream.ok()) {
        return ResponseFromStatus(stream.status());
      }
      if (base == 0) {
        obs::TraceEmit(obs::TraceKind::kPartitionHandoffBegin, "shard", pid,
                       snapshot);
      }
      Response response;
      response.object_id = snapshot;
      response.object = std::move(*stream);
      return response;
    }
    case Op::kHandoffImport: {
      std::lock_guard<std::mutex> lock(handoff_mu_);
      Bytes& staged = staged_imports_[pid];
      if (request.object_id == 0) {
        // A full stream restarts the staging buffer: the chain is rebuilt
        // from scratch (retry after a torn stream or coordinator restart).
        staged.clear();
      }
      staged.insert(staged.end(), request.object.begin(),
                    request.object.end());
      return Response{};
    }
    case Op::kHandoffCutover: {
      std::shared_ptr<shard::PartitionEngine> engine = engines_.Find(pid);
      if (engine == nullptr) {
        return ResponseFromStatus(
            NotFoundError("partition " + std::to_string(pid) +
                          " is not served here"));
      }
      const std::string target = StringFromBytes(request.object);
      Status status = engine->StartDraining(target);
      if (!status.ok()) {
        return ResponseFromStatus(status);
      }
      if (!engine->WaitDrained(options_.drain_timeout)) {
        (void)engine->ResumeServing();
        return ResponseFromStatus(TimeoutError(
            "partition " + std::to_string(pid) +
            " did not drain within the cut-over window; still serving"));
      }
      // Drained and not admitting: this incremental is the partition's
      // final state. The engine stays draining (clients are redirected via
      // its moved_to) until kHandoffFinish persists the move.
      const PartitionId base = static_cast<PartitionId>(request.object_id);
      PartitionId snapshot = 0;
      Result<Bytes> stream = ExportPartition(pid, base, &snapshot);
      if (!stream.ok()) {
        (void)engine->ResumeServing();
        return ResponseFromStatus(stream.status());
      }
      obs::TraceEmit(obs::TraceKind::kPartitionHandoffCutover, "shard", pid,
                     snapshot, target);
      Response response;
      response.object_id = snapshot;
      response.object = std::move(*stream);
      return response;
    }
    case Op::kHandoffActivate: {
      Bytes staged;
      {
        std::lock_guard<std::mutex> lock(handoff_mu_);
        auto it = staged_imports_.find(pid);
        if (it == staged_imports_.end()) {
          return ResponseFromStatus(FailedPreconditionError(
              "no staged import for partition " + std::to_string(pid)));
        }
        staged = std::move(it->second);
        staged_imports_.erase(it);
      }
      // Apply the whole chain in one atomic restore: the partition either
      // arrives fully (and is served) or not at all — a torn stream or
      // validation failure leaves this store untouched.
      BackupStore backup(chunks_);
      BytesSource source(staged);
      Result<BackupStore::RestoreResult> restored =
          backup.RestoreStream(&source);
      if (!restored.ok()) {
        return ResponseFromStatus(restored.status());
      }
      if (directory_ != nullptr) {
        const std::string name = StringFromBytes(request.object);
        Result<shard::PartitionEntry> entry = directory_->Find(pid);
        Status cataloged = entry.ok() ? directory_->MarkServing(pid)
                                      : directory_->Adopt(pid, name).status();
        if (!cataloged.ok()) {
          return ResponseFromStatus(cataloged);
        }
      }
      Result<std::shared_ptr<shard::PartitionEngine>> engine =
          engines_.Add(pid);
      if (!engine.ok()) {
        return ResponseFromStatus(engine.status());
      }
      return Response{};
    }
    case Op::kHandoffFinish: {
      const std::string target = StringFromBytes(request.object);
      std::shared_ptr<shard::PartitionEngine> engine = engines_.Find(pid);
      if (target.empty()) {
        // Abort/rollback: reclaim ownership (the partition may have been
        // unrouted by a crashed finish) and discard the snapshot chain.
        Status status = OkStatus();
        if (engine != nullptr) {
          status = engine->ResumeServing();
        } else {
          Result<std::shared_ptr<shard::PartitionEngine>> added =
              engines_.Add(pid);
          if (!added.ok()) {
            status = added.status();
          }
        }
        if (status.ok() && directory_ != nullptr) {
          status = directory_->MarkServing(pid);
        }
        DropHandoffSnapshots(pid);
        return ResponseFromStatus(status);
      }
      if (engine != nullptr) {
        (void)engine->MarkMoved(target);
      }
      if (directory_ != nullptr) {
        Status status = directory_->MarkMoved(pid, target);
        if (!status.ok()) {
          return ResponseFromStatus(status);
        }
      }
      (void)engines_.Remove(pid);
      DropHandoffSnapshots(pid);
      obs::TraceEmit(obs::TraceKind::kPartitionHandoffComplete, "shard", pid,
                     0, target);
      return Response{};
    }
    default:
      return ResponseFromStatus(InvalidArgumentError("unhandled admin op"));
  }
}

Response TdbServer::Handle(Session& session, const Request& request) {
  switch (request.op) {
    case Op::kPing:
      return Response{};
    case Op::kBegin:
    case Op::kBeginReadOnly:
      return HandleBegin(session, request);
    case Op::kStats: {
      // Refresh every live gauge first so the snapshot a remote tdb_stats
      // parses is current, not whatever the last slow path happened to set.
      PublishGauges();
      Response response;
      response.object = BytesFromString(obs::SnapshotJson());
      return response;
    }
    case Op::kStatsReset: {
      obs::ResetAll();
      return Response{};
    }
    case Op::kPartitionCreate:
    case Op::kPartitionDrop:
    case Op::kPartitionList:
    case Op::kPartitionLookup:
    case Op::kHandoffExport:
    case Op::kHandoffImport:
    case Op::kHandoffCutover:
    case Op::kHandoffActivate:
    case Op::kHandoffFinish:
      return HandleAdmin(request);
    default:
      break;
  }
  if (session.txn == nullptr || !session.txn->active()) {
    return ResponseFromStatus(
        FailedPreconditionError("no open transaction (send begin first)"));
  }

  // Validate client-supplied object ids before they reach the stores: a
  // session may only address data chunks of its transaction's partition —
  // never the system partition, another partition, or map/leader chunks.
  auto checked_id = [&](uint64_t packed) -> Result<ObjectId> {
    ObjectId id = ChunkId::Unpack(packed);
    if (id.partition != session.engine->partition() ||
        id.position.height != 0) {
      return InvalidArgumentError("object id " + id.ToString() +
                                  " is outside the session's partition");
    }
    return id;
  };

  switch (request.op) {
    case Op::kGet:
    case Op::kGetForUpdate: {
      Result<ObjectId> id = checked_id(request.object_id);
      if (!id.ok()) {
        return ResponseFromStatus(id.status());
      }
      Result<ObjectPtr> object = request.op == Op::kGet
                                     ? session.txn->Get(*id)
                                     : session.txn->GetForUpdate(*id);
      if (!object.ok()) {
        return ResponseFromStatus(object.status());
      }
      Response response;
      response.object = registry_->Pickle(**object);
      return response;
    }
    case Op::kInsert: {
      Result<ObjectPtr> object = registry_->Unpickle(request.object);
      if (!object.ok()) {
        return ResponseFromStatus(object.status());
      }
      Result<ObjectId> id = session.txn->Insert(std::move(*object));
      if (!id.ok()) {
        return ResponseFromStatus(id.status());
      }
      Response response;
      response.object_id = id->Pack();
      return response;
    }
    case Op::kPut: {
      Result<ObjectId> id = checked_id(request.object_id);
      if (!id.ok()) {
        return ResponseFromStatus(id.status());
      }
      Result<ObjectPtr> object = registry_->Unpickle(request.object);
      if (!object.ok()) {
        return ResponseFromStatus(object.status());
      }
      return ResponseFromStatus(session.txn->Put(*id, std::move(*object)));
    }
    case Op::kDelete: {
      Result<ObjectId> id = checked_id(request.object_id);
      if (!id.ok()) {
        return ResponseFromStatus(id.status());
      }
      return ResponseFromStatus(session.txn->Delete(*id));
    }
    case Op::kCommit: {
      // The response is sent only after this returns, i.e. after the
      // (possibly group-) commit flushed — acknowledgement implies
      // durability.
      Status status = session.txn->Commit();
      FinishTxn(session);
      return ResponseFromStatus(status);
    }
    case Op::kAbort: {
      session.txn->Abort();
      FinishTxn(session);
      return Response{};
    }
    default:
      return ResponseFromStatus(
          InvalidArgumentError("unhandled request op"));
  }
}

}  // namespace tdb::server
