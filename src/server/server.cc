#include "src/server/server.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "src/obs/metrics.h"
#include "src/obs/snapshot.h"
#include "src/obs/trace.h"

namespace tdb::server {

namespace {

// How long a session worker sleeps in Recv before re-checking the stop flag
// and the idle clock; bounds shutdown latency, not request latency.
constexpr std::chrono::milliseconds kRecvPollInterval{200};

double MicrosBetween(std::chrono::steady_clock::time_point from,
                     std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

}  // namespace

TdbServer::TdbServer(ChunkStore* chunks, PartitionId partition,
                     const TypeRegistry* registry, TdbServerOptions options)
    : chunks_(chunks), registry_(registry), options_(options) {
  ObjectStoreOptions store_options;
  store_options.lock_timeout = options_.lock_timeout;
  store_options.cache_capacity = options_.cache_capacity;
  store_options.group_commit = options_.group_commit;
  store_options.group_commit_max_batch = options_.group_commit_max_batch;
  objects_ =
      std::make_unique<ObjectStore>(chunks, partition, registry, store_options);
}

TdbServer::~TdbServer() { Stop(); }

Status TdbServer::Start(net::Transport* transport, const std::string& address) {
  if (started_) {
    return FailedPreconditionError("server already started");
  }
  if (options_.max_sessions == 0) {
    return InvalidArgumentError("max_sessions must be positive");
  }
  TDB_ASSIGN_OR_RETURN(listener_, transport->Listen(address));
  size_t workers = options_.worker_threads != 0 ? options_.worker_threads
                                                : options_.max_sessions;
  workers_ = std::make_unique<ThreadPool>(workers);
  stop_.store(false, std::memory_order_release);
  started_ = true;
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return OkStatus();
}

void TdbServer::Stop() {
  if (!started_) {
    return;
  }
  stop_.store(true, std::memory_order_release);
  listener_->Shutdown();
  if (acceptor_.joinable()) {
    acceptor_.join();
  }
  {
    // Unblock every session worker parked in Recv; each aborts its open
    // transaction on the way out.
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (auto& [id, conn] : live_sessions_) {
      conn->Close();
    }
  }
  workers_.reset();  // joins the session workers (runs any never-started task)
  listener_.reset();
  started_ = false;
}

std::string TdbServer::address() const {
  return listener_ != nullptr ? listener_->address() : std::string();
}

void TdbServer::PublishGauges() {
  Stats stats = GetStats();
  obs::SetGauge("server.sessions.active",
                static_cast<double>(stats.active_sessions));
  obs::SetGauge("server.sessions.opened",
                static_cast<double>(stats.sessions_opened));
  obs::SetGauge("server.sessions.rejected",
                static_cast<double>(stats.sessions_rejected));
  obs::SetGauge("server.idle_timeouts",
                static_cast<double>(stats.idle_timeouts));
  obs::SetGauge("server.requests", static_cast<double>(stats.requests));
  obs::SetGauge("server.group_commit.queue_depth",
                static_cast<double>(objects_->group_commit_queue_depth()));
  // ChunkStore::GetStats publishes the chunk gauges (live/used log bytes)
  // as a side effect.
  (void)chunks_->GetStats();
}

TdbServer::Stats TdbServer::GetStats() const {
  Stats stats;
  stats.sessions_opened = sessions_opened_.load(std::memory_order_relaxed);
  stats.sessions_rejected = sessions_rejected_.load(std::memory_order_relaxed);
  stats.idle_timeouts = idle_timeouts_.load(std::memory_order_relaxed);
  stats.requests = requests_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(sessions_mu_);
  stats.active_sessions = live_sessions_.size();
  return stats;
}

void TdbServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    Result<std::unique_ptr<net::Connection>> accepted =
        listener_->Accept(kRecvPollInterval);
    if (!accepted.ok()) {
      if (accepted.status().code() == StatusCode::kTimeout) {
        continue;
      }
      return;  // listener shut down (or died); Stop joins us
    }
    std::shared_ptr<net::Connection> conn(std::move(*accepted));
    size_t active;
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      active = live_sessions_.size();
    }
    if (active >= options_.max_sessions) {
      // Backpressure: answer the session's first request with a busy status
      // before any worker is committed to it.
      sessions_rejected_.fetch_add(1, std::memory_order_relaxed);
      obs::Count("server.sessions_rejected");
      (void)conn->Send(
          EncodeResponse(ResponseFromStatus(FailedPreconditionError(
              "server busy: session limit reached"))),
          options_.io_timeout);
      conn->Close();
      continue;
    }
    workers_->Submit([this, conn]() mutable { ServeSession(std::move(conn)); });
  }
}

void TdbServer::ServeSession(std::shared_ptr<net::Connection> conn) {
  Session session;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    session.id = next_session_id_++;
    live_sessions_[session.id] = conn.get();
    obs::SetGauge("server.active_sessions",
                  static_cast<double>(live_sessions_.size()));
  }
  sessions_opened_.fetch_add(1, std::memory_order_relaxed);
  obs::Count("server.sessions_opened");
  session.last_activity = std::chrono::steady_clock::now();

  const auto poll = std::min(options_.idle_timeout, kRecvPollInterval);
  // Start of the recv stage for the next request: the previous response's
  // send completion (or session start). Includes client think time, so it is
  // reported but never counted against the slow-request threshold.
  auto recv_start = session.last_activity;
  while (!stop_.load(std::memory_order_acquire)) {
    Result<Bytes> frame = conn->Recv(poll);
    if (!frame.ok()) {
      if (frame.status().code() != StatusCode::kTimeout) {
        break;  // peer gone
      }
      if (std::chrono::steady_clock::now() - session.last_activity >=
          options_.idle_timeout) {
        idle_timeouts_.fetch_add(1, std::memory_order_relaxed);
        obs::Count("server.idle_timeouts");
        break;  // the epilogue below aborts the transaction, freeing locks
      }
      continue;
    }
    const auto recv_end = std::chrono::steady_clock::now();
    session.last_activity = recv_end;

    Result<Request> request = DecodeRequest(*frame);
    if (!request.ok()) {
      // The stream's framing can no longer be trusted; answer and hang up.
      (void)conn->Send(EncodeResponse(ResponseFromStatus(request.status())),
                       options_.io_timeout);
      break;
    }
    requests_.fetch_add(1, std::memory_order_relaxed);
    obs::Count("server.requests");
    Response response;
    {
      obs::LatencyTimer timer("server.request_us");
      response = Handle(session, *request);
    }
    const auto handle_end = std::chrono::steady_clock::now();
    const bool sent =
        conn->Send(EncodeResponse(response), options_.io_timeout).ok();
    const auto send_end = std::chrono::steady_clock::now();

    // Per-request span: stage histograms plus a per-op server histogram
    // (handle+send — the part the server is responsible for).
    const double recv_us = MicrosBetween(recv_start, recv_end);
    const double handle_us = MicrosBetween(recv_end, handle_end);
    const double send_us = MicrosBetween(handle_end, send_end);
    const OpInfo* op_info = FindOpInfo(request->op);
    obs::Observe(op_info->server_histogram, handle_us + send_us);
    obs::Observe("wire.stage.recv_us", recv_us);
    obs::Observe("wire.stage.handle_us", handle_us);
    obs::Observe("wire.stage.send_us", send_us);
    const auto threshold = options_.slow_request_threshold;
    if (threshold.count() > 0 &&
        handle_us + send_us >= static_cast<double>(threshold.count())) {
      char detail[160];
      std::snprintf(detail, sizeof(detail),
                    "op=%s recv_us=%.0f handle_us=%.0f send_us=%.0f",
                    op_info->name, recv_us, handle_us, send_us);
      obs::TraceEmit(obs::TraceKind::kSlowRequest, "server", session.id,
                     static_cast<uint64_t>(handle_us + send_us), detail);
    }
    if (!sent) {
      break;
    }
    recv_start = send_end;
  }

  if (session.txn != nullptr && session.txn->active()) {
    session.txn->Abort();
  }
  conn->Close();
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    live_sessions_.erase(session.id);
    obs::SetGauge("server.active_sessions",
                  static_cast<double>(live_sessions_.size()));
  }
  obs::Count("server.sessions_closed");
}

Response TdbServer::Handle(Session& session, const Request& request) {
  switch (request.op) {
    case Op::kPing:
      return Response{};
    case Op::kBegin: {
      if (session.txn != nullptr && session.txn->active()) {
        return ResponseFromStatus(
            FailedPreconditionError("transaction already open"));
      }
      session.txn = objects_->Begin();
      Response response;
      response.object_id = session.txn->id();
      return response;
    }
    case Op::kBeginReadOnly: {
      if (session.txn != nullptr && session.txn->active()) {
        return ResponseFromStatus(
            FailedPreconditionError("transaction already open"));
      }
      Result<std::unique_ptr<Transaction>> txn = objects_->BeginReadOnly();
      if (!txn.ok()) {
        return ResponseFromStatus(txn.status());
      }
      session.txn = std::move(*txn);
      Response response;
      response.object_id = session.txn->id();
      return response;
    }
    case Op::kStats: {
      // Refresh every live gauge first so the snapshot a remote tdb_stats
      // parses is current, not whatever the last slow path happened to set.
      PublishGauges();
      Response response;
      response.object = BytesFromString(obs::SnapshotJson());
      return response;
    }
    case Op::kStatsReset: {
      obs::ResetAll();
      return Response{};
    }
    default:
      break;
  }
  if (session.txn == nullptr || !session.txn->active()) {
    return ResponseFromStatus(
        FailedPreconditionError("no open transaction (send begin first)"));
  }

  // Validate client-supplied object ids before they reach the stores: a
  // session may only address data chunks of the served partition — never
  // the system partition, another partition, or map/leader chunks.
  auto checked_id = [&](uint64_t packed) -> Result<ObjectId> {
    ObjectId id = ChunkId::Unpack(packed);
    if (id.partition != objects_->partition() || id.position.height != 0) {
      return InvalidArgumentError("object id " + id.ToString() +
                                  " is outside the served partition");
    }
    return id;
  };

  switch (request.op) {
    case Op::kGet:
    case Op::kGetForUpdate: {
      Result<ObjectId> id = checked_id(request.object_id);
      if (!id.ok()) {
        return ResponseFromStatus(id.status());
      }
      Result<ObjectPtr> object = request.op == Op::kGet
                                     ? session.txn->Get(*id)
                                     : session.txn->GetForUpdate(*id);
      if (!object.ok()) {
        return ResponseFromStatus(object.status());
      }
      Response response;
      response.object = registry_->Pickle(**object);
      return response;
    }
    case Op::kInsert: {
      Result<ObjectPtr> object = registry_->Unpickle(request.object);
      if (!object.ok()) {
        return ResponseFromStatus(object.status());
      }
      Result<ObjectId> id = session.txn->Insert(std::move(*object));
      if (!id.ok()) {
        return ResponseFromStatus(id.status());
      }
      Response response;
      response.object_id = id->Pack();
      return response;
    }
    case Op::kPut: {
      Result<ObjectId> id = checked_id(request.object_id);
      if (!id.ok()) {
        return ResponseFromStatus(id.status());
      }
      Result<ObjectPtr> object = registry_->Unpickle(request.object);
      if (!object.ok()) {
        return ResponseFromStatus(object.status());
      }
      return ResponseFromStatus(session.txn->Put(*id, std::move(*object)));
    }
    case Op::kDelete: {
      Result<ObjectId> id = checked_id(request.object_id);
      if (!id.ok()) {
        return ResponseFromStatus(id.status());
      }
      return ResponseFromStatus(session.txn->Delete(*id));
    }
    case Op::kCommit: {
      // The response is sent only after this returns, i.e. after the
      // (possibly group-) commit flushed — acknowledgement implies
      // durability.
      Status status = session.txn->Commit();
      session.txn.reset();
      return ResponseFromStatus(status);
    }
    case Op::kAbort: {
      session.txn->Abort();
      session.txn.reset();
      return Response{};
    }
    default:
      return ResponseFromStatus(
          InvalidArgumentError("unhandled request op"));
  }
}

}  // namespace tdb::server
