// The backup store (§6): creates and restores backup sets on the untrusted
// archival store.
//
// A backup set covers one or more partitions, snapshot consistently in a
// single commit (copy-on-write partition copies, §6.1). Partition backups
// are full or incremental (relative to a previous snapshot, §6.2), carry an
// encrypted descriptor, the chunk versions, a signature binding descriptor
// and chunks, and a plain checksum so untrusted tooling can verify transport
// integrity without keys.
//
// Restores enforce (§6.3): incremental backups apply in creation order with
// no missing links, and a backup set is restored in full or not at all. All
// restored partitions are committed atomically, and a trusted-program
// approval hook can reject frequent restores or old backups.

#ifndef SRC_BACKUP_BACKUP_STORE_H_
#define SRC_BACKUP_BACKUP_STORE_H_

#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "src/chunk/chunk_store.h"
#include "src/store/archival_store.h"

namespace tdb {

struct BackupDescriptor {
  PartitionId source = 0;         // the partition being backed up
  PartitionId snapshot = 0;       // snapshot this backup was taken from
  PartitionId base_snapshot = 0;  // 0 = full backup
  uint64_t backup_set_id = 0;     // random id shared by the whole set
  uint32_t set_size = 0;          // number of partition backups in the set
  CryptoParams params;            // partition cipher/hash/key
  uint64_t created_unix = 0;

  bool incremental() const { return base_snapshot != 0; }

  Bytes Pickle() const;
  static Result<BackupDescriptor> Unpickle(ByteView data);
};

class BackupStore {
 public:
  struct PartitionSpec {
    PartitionId source = 0;
    // Snapshot of `source` from a previous backup; 0 requests a full backup.
    PartitionId base_snapshot = 0;
  };

  struct CreateResult {
    uint64_t backup_set_id = 0;
    // Snapshot partition created per spec; keep these ids to pass as
    // base_snapshot for the next incremental backup.
    std::vector<PartitionId> snapshots;
    uint64_t bytes_written = 0;
    uint64_t chunks_written = 0;
  };

  // Hook consulted before applying a restored partition backup. Returning a
  // non-OK status aborts the restore (e.g. to deny rolling back to an old
  // backup).
  using RestoreApprover = std::function<Status(const BackupDescriptor&)>;

  explicit BackupStore(ChunkStore* chunks) : chunks_(chunks) {}

  // Creates one backup set: snapshots all sources in a single commit, then
  // streams each partition backup to `sink`. `set_id` should be random.
  Result<CreateResult> CreateBackupSet(const std::vector<PartitionSpec>& specs,
                                       uint64_t set_id, uint64_t created_unix,
                                       ArchivalSink* sink);

  struct RestoreResult {
    std::vector<PartitionId> restored;  // source partition ids
    uint64_t chunks_applied = 0;
  };

  // Reads a stream of one or more backup sets and applies them. All state is
  // committed in one atomic commit at the end.
  Result<RestoreResult> RestoreStream(ArchivalSource* source,
                                      RestoreApprover approver = nullptr);

 private:
  Status WritePartitionBackup(PartitionId snapshot,
                              const BackupDescriptor& descriptor,
                              ArchivalSink* sink, CreateResult& result);

  ChunkStore* chunks_;
};

}  // namespace tdb

#endif  // SRC_BACKUP_BACKUP_STORE_H_
