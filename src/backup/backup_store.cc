#include "src/backup/backup_store.h"

#include <algorithm>

#include "src/obs/metrics.h"
#include "src/obs/profiler.h"
#include "src/obs/trace.h"
#include "src/crypto/sha256.h"

namespace tdb {

namespace {

// Per-chunk record header inside a partition backup (encrypted with the
// system cipher, like version headers in the log, §5.4).
struct ChunkRecordHeader {
  uint64_t position = 0;  // packed ChunkPosition (height always 0)
  bool written = true;    // false = deallocated since the base snapshot
  uint32_t body_size = 0;

  Bytes Pickle() const {
    PickleWriter w;
    w.WriteU64(position);
    w.WriteBool(written);
    w.WriteU32(body_size);
    return w.Take();
  }
  static Result<ChunkRecordHeader> Unpickle(ByteView data) {
    PickleReader r(data);
    ChunkRecordHeader h;
    h.position = r.ReadU64();
    h.written = r.ReadBool();
    h.body_size = r.ReadU32();
    TDB_RETURN_IF_ERROR(r.Done());
    return h;
  }
};

// Length-prefixed framing on the archival stream.
Status WriteFrame(ArchivalSink* sink, ByteView payload, Sha256* checksum) {
  Bytes frame;
  PutU32(frame, static_cast<uint32_t>(payload.size()));
  Append(frame, payload);
  if (checksum != nullptr) {
    checksum->Update(frame);
  }
  return sink->Write(frame);
}

// Reads one frame; empty optional at end of stream. A frame with zero length
// is returned as an empty Bytes.
Result<std::optional<Bytes>> ReadFrame(ArchivalSource* source,
                                       Sha256* checksum) {
  TDB_ASSIGN_OR_RETURN(Bytes len_bytes, source->Read(4));
  if (len_bytes.empty()) {
    return std::optional<Bytes>{};
  }
  if (len_bytes.size() != 4) {
    return CorruptionError("truncated frame length in backup stream");
  }
  uint32_t len = GetU32(len_bytes.data());
  if (len > (64u << 20)) {
    return CorruptionError("unreasonable frame length in backup stream");
  }
  TDB_ASSIGN_OR_RETURN(Bytes payload, source->Read(len));
  if (payload.size() != len) {
    return CorruptionError("truncated frame payload in backup stream");
  }
  if (checksum != nullptr) {
    checksum->Update(len_bytes);
    checksum->Update(payload);
  }
  return std::optional<Bytes>(std::move(payload));
}

Bytes SignatureInput(ByteView descriptor_plain, ByteView chunks_digest) {
  Bytes input(descriptor_plain.begin(), descriptor_plain.end());
  Append(input, chunks_digest);
  return input;
}

}  // namespace

Bytes BackupDescriptor::Pickle() const {
  PickleWriter w;
  w.WriteU16(source);
  w.WriteU16(snapshot);
  w.WriteU16(base_snapshot);
  w.WriteU64(backup_set_id);
  w.WriteU32(set_size);
  params.Pickle(w);
  w.WriteU64(created_unix);
  return w.Take();
}

Result<BackupDescriptor> BackupDescriptor::Unpickle(ByteView data) {
  PickleReader r(data);
  BackupDescriptor d;
  d.source = r.ReadU16();
  d.snapshot = r.ReadU16();
  d.base_snapshot = r.ReadU16();
  d.backup_set_id = r.ReadU64();
  d.set_size = r.ReadU32();
  TDB_ASSIGN_OR_RETURN(d.params, CryptoParams::Unpickle(r));
  d.created_unix = r.ReadU64();
  TDB_RETURN_IF_ERROR(r.Done());
  return d;
}

Result<BackupStore::CreateResult> BackupStore::CreateBackupSet(
    const std::vector<PartitionSpec>& specs, uint64_t set_id,
    uint64_t created_unix, ArchivalSink* sink) {
  ProfileScope scope("backup_store");
  if (specs.empty()) {
    return InvalidArgumentError("backup set must cover at least one partition");
  }
  // Snapshot all sources in one commit: a consistent cut (§6.1).
  CreateResult result;
  result.backup_set_id = set_id;
  ChunkStore::Batch batch;
  for (const PartitionSpec& spec : specs) {
    TDB_ASSIGN_OR_RETURN(PartitionId snap, chunks_->AllocatePartition());
    result.snapshots.push_back(snap);
    batch.CopyPartition(snap, spec.source);
  }
  TDB_RETURN_IF_ERROR(chunks_->Commit(std::move(batch)));

  // Stream each partition backup.
  for (size_t i = 0; i < specs.size(); ++i) {
    BackupDescriptor descriptor;
    descriptor.source = specs[i].source;
    descriptor.snapshot = result.snapshots[i];
    descriptor.base_snapshot = specs[i].base_snapshot;
    descriptor.backup_set_id = set_id;
    descriptor.set_size = static_cast<uint32_t>(specs.size());
    TDB_ASSIGN_OR_RETURN(descriptor.params,
                         chunks_->PartitionParams(specs[i].source));
    descriptor.created_unix = created_unix;
    TDB_RETURN_IF_ERROR(
        WritePartitionBackup(result.snapshots[i], descriptor, sink, result));
  }
  obs::Count("backup.sets_created");
  obs::Count("backup.chunks_written", result.chunks_written);
  obs::Count("backup.bytes_written", result.bytes_written);
  obs::TraceEmit(obs::TraceKind::kBackupWrite, "backup_store",
                 result.chunks_written, result.bytes_written);
  return result;
}

Status BackupStore::WritePartitionBackup(PartitionId snapshot,
                                         const BackupDescriptor& descriptor,
                                         ArchivalSink* sink,
                                         CreateResult& result) {
  const CryptoSuite& system = chunks_->system_suite();
  TDB_ASSIGN_OR_RETURN(CryptoSuite partition_suite,
                       CryptoSuite::Create(descriptor.params));

  Sha256 checksum;
  StreamingHash chunks_hash(descriptor.params.hash);

  Bytes descriptor_plain = descriptor.Pickle();
  TDB_RETURN_IF_ERROR(
      WriteFrame(sink, system.Encrypt(descriptor_plain), &checksum));

  // Which positions go into the backup?
  std::vector<ChunkPosition> positions;
  if (descriptor.incremental()) {
    TDB_ASSIGN_OR_RETURN(std::vector<ChunkPosition> diff,
                         chunks_->Diff(descriptor.base_snapshot, snapshot));
    positions = std::move(diff);
  } else {
    TDB_ASSIGN_OR_RETURN(uint64_t num_positions,
                         chunks_->PartitionNumPositions(snapshot));
    for (uint64_t rank = 0; rank < num_positions; ++rank) {
      positions.emplace_back(0, rank);
    }
  }

  // Chunks are framed in position order, but each chunk's crypto — Hp(chunk)
  // and the body/header encryption (§6.2) — is independent, so positions are
  // processed in bounded batches: read serially, reserve IVs in position
  // order (keeping the archive bytes identical at any thread count), fan the
  // crypto out, then frame serially. The signature's chunk digest absorbs
  // Hp(body) per chunk rather than the raw body stream, which is what makes
  // the per-chunk hashing parallelizable; RestoreStream mirrors this.
  constexpr size_t kCryptoBatch = 64;
  struct PendingChunk {
    uint64_t packed_position = 0;
    bool written = false;
    Bytes body;  // plaintext, written chunks only
    uint64_t body_seq = 0;
    uint64_t header_seq = 0;
    Bytes body_ct;    // filled by the fan-out
    Bytes header_ct;  // filled by the fan-out
    Bytes digest;     // Hp(body), filled by the fan-out
  };
  ThreadPool* pool = chunks_->crypto_pool();
  for (size_t start = 0; start < positions.size(); start += kCryptoBatch) {
    size_t end = std::min(positions.size(), start + kCryptoBatch);
    std::vector<PendingChunk> pend;
    pend.reserve(end - start);
    for (size_t pi = start; pi < end; ++pi) {
      const ChunkPosition& pos = positions[pi];
      Result<Bytes> body = chunks_->Read(ChunkId(snapshot, pos));
      PendingChunk pc;
      pc.packed_position = (static_cast<uint64_t>(pos.height) << 40) | pos.rank;
      if (body.ok()) {
        pc.written = true;
        pc.body = std::move(*body);
        pc.body_seq = partition_suite.ReserveSeqs(1);
        pc.header_seq = system.ReserveSeqs(1);
      } else if (body.status().code() == StatusCode::kNotFound) {
        if (!descriptor.incremental()) {
          continue;  // full backups carry only written chunks
        }
        pc.header_seq = system.ReserveSeqs(1);
      } else {
        return body.status();
      }
      pend.push_back(std::move(pc));
    }
    ParallelFor(pool, pend.size(), [&](size_t i) {
      PendingChunk& pc = pend[i];
      ChunkRecordHeader header;
      header.position = pc.packed_position;
      header.written = pc.written;
      if (pc.written) {
        pc.digest = partition_suite.Hash(pc.body);
        pc.body_ct = partition_suite.EncryptWithSeq(pc.body_seq, pc.body);
        header.body_size = static_cast<uint32_t>(pc.body_ct.size());
      }
      pc.header_ct = system.EncryptWithSeq(pc.header_seq, header.Pickle());
    });
    for (PendingChunk& pc : pend) {
      TDB_RETURN_IF_ERROR(WriteFrame(sink, pc.header_ct, &checksum));
      Bytes pos_bytes;
      PutU64(pos_bytes, pc.packed_position);
      chunks_hash.Update(pos_bytes);
      if (pc.written) {
        TDB_RETURN_IF_ERROR(WriteFrame(sink, pc.body_ct, &checksum));
        chunks_hash.Update(pc.digest);
        result.bytes_written += pc.body.size();
      } else {
        chunks_hash.Update(BytesFromString("<deallocated>"));
      }
      ++result.chunks_written;
    }
  }
  // End-of-chunks marker.
  TDB_RETURN_IF_ERROR(WriteFrame(sink, {}, &checksum));

  // Signature binds the descriptor to the chunk contents (§6.2).
  Bytes signature = system.Mac(
      SignatureInput(descriptor_plain, chunks_hash.Finish()));
  TDB_RETURN_IF_ERROR(WriteFrame(sink, signature, &checksum));

  // Plain checksum over every preceding frame of this partition backup.
  TDB_RETURN_IF_ERROR(WriteFrame(sink, checksum.Finish(), nullptr));
  return OkStatus();
}

Result<BackupStore::RestoreResult> BackupStore::RestoreStream(
    ArchivalSource* source, RestoreApprover approver) {
  ProfileScope scope("backup_store");
  const CryptoSuite& system = chunks_->system_suite();

  struct FoldedPartition {
    CryptoParams params;
    bool saw_full = false;
    PartitionId last_snapshot = 0;
    // rank -> new state; nullopt = deallocated
    std::map<uint64_t, std::optional<Bytes>> state;
  };
  std::map<PartitionId, FoldedPartition> folded;
  std::map<uint64_t, std::pair<uint32_t, uint32_t>> sets;  // id -> (size, seen)

  while (true) {
    Sha256 checksum;
    TDB_ASSIGN_OR_RETURN(std::optional<Bytes> desc_frame,
                         ReadFrame(source, &checksum));
    if (!desc_frame.has_value()) {
      break;  // end of stream
    }
    Result<Bytes> desc_plain = system.Decrypt(*desc_frame);
    if (!desc_plain.ok()) {
      return TamperDetectedError("backup descriptor fails to decrypt");
    }
    TDB_ASSIGN_OR_RETURN(BackupDescriptor descriptor,
                         BackupDescriptor::Unpickle(*desc_plain));
    if (approver) {
      TDB_RETURN_IF_ERROR(approver(descriptor));
    }
    TDB_ASSIGN_OR_RETURN(CryptoSuite partition_suite,
                         CryptoSuite::Create(descriptor.params));

    FoldedPartition& fp = folded[descriptor.source];
    if (descriptor.incremental()) {
      if (fp.last_snapshot == 0) {
        return FailedPreconditionError(
            "incremental backup without a preceding full backup for "
            "partition " +
            std::to_string(descriptor.source));
      }
      if (descriptor.base_snapshot != fp.last_snapshot) {
        return FailedPreconditionError(
            "incremental backup chain is broken for partition " +
            std::to_string(descriptor.source));
      }
    } else {
      fp.saw_full = true;
      fp.state.clear();
      fp.params = descriptor.params;
    }

    StreamingHash chunks_hash(descriptor.params.hash);
    uint64_t applied = 0;
    while (true) {
      TDB_ASSIGN_OR_RETURN(std::optional<Bytes> header_frame,
                           ReadFrame(source, &checksum));
      if (!header_frame.has_value()) {
        return CorruptionError("backup stream ends inside a partition backup");
      }
      if (header_frame->empty()) {
        break;  // end-of-chunks marker
      }
      Result<Bytes> header_plain = system.Decrypt(*header_frame);
      if (!header_plain.ok()) {
        return TamperDetectedError("backup chunk header fails to decrypt");
      }
      TDB_ASSIGN_OR_RETURN(ChunkRecordHeader header,
                           ChunkRecordHeader::Unpickle(*header_plain));
      uint64_t rank = header.position & 0xFFFFFFFFFFULL;
      Bytes pos_bytes;
      PutU64(pos_bytes, header.position);
      chunks_hash.Update(pos_bytes);
      if (header.written) {
        TDB_ASSIGN_OR_RETURN(std::optional<Bytes> body_frame,
                             ReadFrame(source, &checksum));
        if (!body_frame.has_value() ||
            body_frame->size() != header.body_size) {
          return CorruptionError("backup chunk body missing or mis-sized");
        }
        Result<Bytes> body = partition_suite.Decrypt(*body_frame);
        if (!body.ok()) {
          return TamperDetectedError("backup chunk body fails to decrypt");
        }
        // The signature covers Hp(body) per chunk (see WritePartitionBackup).
        chunks_hash.Update(partition_suite.Hash(*body));
        fp.state[rank] = std::move(*body);
      } else {
        chunks_hash.Update(BytesFromString("<deallocated>"));
        fp.state[rank] = std::nullopt;
      }
      ++applied;
    }

    // Verify the signature before trusting anything we just folded in.
    TDB_ASSIGN_OR_RETURN(std::optional<Bytes> signature_frame,
                         ReadFrame(source, &checksum));
    if (!signature_frame.has_value()) {
      return CorruptionError("backup stream missing signature");
    }
    Bytes expected_signature =
        system.Mac(SignatureInput(*desc_plain, chunks_hash.Finish()));
    if (!ConstantTimeEqual(*signature_frame, expected_signature)) {
      return TamperDetectedError("backup signature mismatch for partition " +
                                 std::to_string(descriptor.source));
    }
    Bytes checksum_expected = checksum.Finish();
    TDB_ASSIGN_OR_RETURN(std::optional<Bytes> checksum_frame,
                         ReadFrame(source, nullptr));
    if (!checksum_frame.has_value() ||
        !ConstantTimeEqual(*checksum_frame, checksum_expected)) {
      return CorruptionError("backup checksum mismatch");
    }

    fp.last_snapshot = descriptor.snapshot;
    fp.params = descriptor.params;
    auto& [size, seen] = sets[descriptor.backup_set_id];
    size = descriptor.set_size;
    ++seen;
    (void)applied;
  }

  // Set completeness (§6.3): partial backup sets cannot be restored.
  for (const auto& [set_id, counts] : sets) {
    if (counts.first != counts.second) {
      return FailedPreconditionError(
          "backup set " + std::to_string(set_id) +
          " is incomplete: " + std::to_string(counts.second) + " of " +
          std::to_string(counts.first) + " partition backups present");
    }
  }
  if (folded.empty()) {
    return InvalidArgumentError("backup stream contained no backups");
  }

  // Apply everything in one atomic commit.
  RestoreResult result;
  ChunkStore::Batch batch;
  for (auto& [source_id, fp] : folded) {
    batch.RestorePartition(source_id, fp.params);
    // A full backup replaces the partition: chunks present now but absent
    // from the folded state must go away.
    if (fp.saw_full && chunks_->PartitionExists(source_id)) {
      TDB_ASSIGN_OR_RETURN(uint64_t existing,
                           chunks_->PartitionNumPositions(source_id));
      for (uint64_t rank = 0; rank < existing; ++rank) {
        ChunkId id(source_id, 0, rank);
        if (fp.state.count(rank) == 0 && chunks_->ChunkWritten(id)) {
          batch.DeallocateChunk(id);
        }
      }
    }
    for (auto& [rank, state] : fp.state) {
      ChunkId id(source_id, 0, rank);
      if (state.has_value()) {
        batch.RestoreChunk(id, std::move(*state));
        ++result.chunks_applied;
      } else if (chunks_->ChunkWritten(id)) {
        batch.DeallocateChunk(id);
        ++result.chunks_applied;
      }
    }
    result.restored.push_back(source_id);
  }
  TDB_RETURN_IF_ERROR(chunks_->Commit(std::move(batch)));
  obs::Count("backup.restores");
  obs::Count("backup.chunks_restored", result.chunks_applied);
  obs::TraceEmit(obs::TraceKind::kBackupRestore, "backup_store",
                 result.chunks_applied, result.restored.size());
  return result;
}

}  // namespace tdb
