#include "src/store/tamper_store.h"

namespace tdb {

Status TamperStore::WriteDurable(uint32_t segment, uint32_t offset,
                                 ByteView data) {
  TDB_RETURN_IF_ERROR(base_->Write(segment, offset, data));
  ++tamper_count_;
  return base_->Flush();
}

Status TamperStore::FlipBits(uint32_t segment, uint32_t offset,
                             uint8_t xor_mask) {
  if (xor_mask == 0) {
    return InvalidArgumentError("xor mask must flip at least one bit");
  }
  TDB_ASSIGN_OR_RETURN(Bytes byte, base_->Read(segment, offset, 1));
  byte[0] ^= xor_mask;
  return WriteDurable(segment, offset, byte);
}

Status TamperStore::Overwrite(uint32_t segment, uint32_t offset,
                              ByteView data) {
  return WriteDurable(segment, offset, data);
}

Status TamperStore::OverwriteRandom(uint32_t segment, uint32_t offset,
                                    size_t len, Rng& rng) {
  if (len == 0) {
    return InvalidArgumentError("cannot overwrite an empty region");
  }
  TDB_ASSIGN_OR_RETURN(Bytes old, base_->Read(segment, offset, len));
  Bytes junk = rng.NextBytes(len);
  if (junk == old) {
    junk[0] ^= 0xFF;  // a no-op overwrite would make the test vacuous
  }
  return WriteDurable(segment, offset, junk);
}

Status TamperStore::SwapSegments(uint32_t a, uint32_t b) {
  if (a == b) {
    return InvalidArgumentError("cannot swap a segment with itself");
  }
  TDB_ASSIGN_OR_RETURN(Bytes seg_a, base_->Read(a, 0, segment_size()));
  TDB_ASSIGN_OR_RETURN(Bytes seg_b, base_->Read(b, 0, segment_size()));
  TDB_RETURN_IF_ERROR(base_->Write(a, 0, seg_b));
  TDB_RETURN_IF_ERROR(WriteDurable(b, 0, seg_a));
  return OkStatus();
}

Status TamperStore::TruncateSegment(uint32_t segment, uint32_t from_offset) {
  if (from_offset >= segment_size()) {
    return InvalidArgumentError("truncation offset past end of segment");
  }
  Bytes zeros(segment_size() - from_offset, 0);
  return WriteDurable(segment, from_offset, zeros);
}

Status TamperStore::GrowSegment(uint32_t segment, uint32_t from_offset,
                                Rng& rng) {
  if (from_offset >= segment_size()) {
    return InvalidArgumentError("grow offset past end of segment");
  }
  Bytes junk = rng.NextBytes(segment_size() - from_offset);
  return WriteDurable(segment, from_offset, junk);
}

Result<Bytes> TamperStore::CaptureSegment(uint32_t segment) const {
  return base_->Read(segment, 0, segment_size());
}

Status TamperStore::ReplaySegment(uint32_t segment, ByteView captured) {
  if (captured.size() != segment_size()) {
    return InvalidArgumentError("captured segment has the wrong size");
  }
  return WriteDurable(segment, 0, captured);
}

Result<Bytes> TamperStore::CaptureSuperblock() const {
  return base_->ReadSuperblock();
}

Status TamperStore::ReplaySuperblock(ByteView captured) {
  TDB_RETURN_IF_ERROR(base_->WriteSuperblock(captured));
  ++tamper_count_;
  return OkStatus();
}

Result<TamperStore::StoreImage> TamperStore::CaptureStore() const {
  StoreImage image;
  image.segments.reserve(num_segments());
  for (uint32_t s = 0; s < num_segments(); ++s) {
    TDB_ASSIGN_OR_RETURN(Bytes seg, CaptureSegment(s));
    image.segments.push_back(std::move(seg));
  }
  TDB_ASSIGN_OR_RETURN(image.superblock, CaptureSuperblock());
  return image;
}

Status TamperStore::ReplayStore(const StoreImage& image) {
  if (image.segments.size() != num_segments()) {
    return InvalidArgumentError("captured image has the wrong segment count");
  }
  for (uint32_t s = 0; s < num_segments(); ++s) {
    TDB_RETURN_IF_ERROR(ReplaySegment(s, image.segments[s]));
  }
  return ReplaySuperblock(image.superblock);
}

}  // namespace tdb
