// Crash-point injection wrappers for the store layer (see
// src/common/crash_point.h for the protocol). CrashPointStore instruments an
// UntrustedStore; CrashPointSink instruments an ArchivalSink. Both share a
// CrashPointController with the trusted-store and XDB wrappers so crash
// points are numbered globally across every device a workload touches.
//
// Point inventory:
//   UntrustedStore::Write           one point, tearable (prefix may persist)
//   UntrustedStore::Flush           one point (crash = flush never happened)
//   UntrustedStore::WriteSuperblock one point, crash-atomic per the contract
//                                   (all-or-nothing, never torn)
//   ArchivalSink::Write             one point, tearable
//   ArchivalSink::Close             one point
// Reads are not durability points; they pass through until the crash trips
// and fail afterwards (the machine is down).

#ifndef SRC_STORE_CRASH_POINT_STORE_H_
#define SRC_STORE_CRASH_POINT_STORE_H_

#include "src/common/crash_point.h"
#include "src/store/archival_store.h"
#include "src/store/untrusted_store.h"

namespace tdb {

class CrashPointStore final : public UntrustedStore {
 public:
  CrashPointStore(UntrustedStore* base, CrashPointController* controller)
      : base_(base), controller_(controller) {}

  size_t segment_size() const override { return base_->segment_size(); }
  uint32_t num_segments() const override { return base_->num_segments(); }

  Result<Bytes> Read(uint32_t segment, uint32_t offset,
                     size_t len) const override;
  Status Write(uint32_t segment, uint32_t offset, ByteView data) override;
  Status Flush() override;

  Result<Bytes> ReadSuperblock() const override;
  Status WriteSuperblock(ByteView data) override;

 private:
  UntrustedStore* base_;
  CrashPointController* controller_;
};

class CrashPointSink final : public ArchivalSink {
 public:
  CrashPointSink(ArchivalSink* base, CrashPointController* controller)
      : base_(base), controller_(controller) {}

  Status Write(ByteView data) override;
  Status Close() override;

 private:
  ArchivalSink* base_;
  CrashPointController* controller_;
};

}  // namespace tdb

#endif  // SRC_STORE_CRASH_POINT_STORE_H_
