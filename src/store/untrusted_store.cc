#include "src/store/untrusted_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstring>
#include <thread>

#include "src/common/pickle.h"
#include "src/obs/profiler.h"

namespace tdb {

MemUntrustedStore::MemUntrustedStore(UntrustedStoreOptions options)
    : options_(options),
      segments_(options.num_segments),
      durable_segments_(options.num_segments),
      dirty_(options.num_segments, false) {
  for (uint32_t i = 0; i < options_.num_segments; ++i) {
    segments_[i].resize(options_.segment_size, 0);
    durable_segments_[i].resize(options_.segment_size, 0);
  }
}

Status MemUntrustedStore::CheckRange(uint32_t segment, uint32_t offset,
                                     size_t len) const {
  if (segment >= options_.num_segments) {
    return InvalidArgumentError("segment index out of range");
  }
  if (offset + len > options_.segment_size) {
    return InvalidArgumentError("read/write past end of segment");
  }
  return OkStatus();
}

Result<Bytes> MemUntrustedStore::Read(uint32_t segment, uint32_t offset,
                                      size_t len) const {
  TDB_RETURN_IF_ERROR(CheckRange(segment, offset, len));
  ProfileCount("untrusted_store.reads");
  ProfileCount("untrusted_store.bytes_read", len);
  const Bytes& seg = segments_[segment];
  return Bytes(seg.begin() + offset, seg.begin() + offset + len);
}

Status MemUntrustedStore::Write(uint32_t segment, uint32_t offset,
                                ByteView data) {
  TDB_RETURN_IF_ERROR(CheckRange(segment, offset, data.size()));
  std::memcpy(segments_[segment].data() + offset, data.data(), data.size());
  dirty_[segment] = true;
  bytes_written_ += data.size();
  ProfileCount("untrusted_store.bytes_written", data.size());
  return OkStatus();
}

Status MemUntrustedStore::Flush() {
  if (options_.flush_latency.count() > 0) {
    std::this_thread::sleep_for(options_.flush_latency);
  }
  for (uint32_t i = 0; i < options_.num_segments; ++i) {
    if (dirty_[i]) {
      durable_segments_[i] = segments_[i];
      dirty_[i] = false;
    }
  }
  ++flush_count_;
  ProfileCount("untrusted_store.flushes");
  return OkStatus();
}

Result<Bytes> MemUntrustedStore::ReadSuperblock() const { return superblock_; }

Status MemUntrustedStore::WriteSuperblock(ByteView data) {
  superblock_.assign(data.begin(), data.end());
  ProfileCount("untrusted_store.superblock_writes");
  return OkStatus();
}

void MemUntrustedStore::Crash() {
  for (uint32_t i = 0; i < options_.num_segments; ++i) {
    if (dirty_[i]) {
      segments_[i] = durable_segments_[i];
      dirty_[i] = false;
    }
  }
}

void MemUntrustedStore::CorruptByte(uint32_t segment, uint32_t offset,
                                    uint8_t xor_mask) {
  segments_[segment][offset] ^= xor_mask;
  durable_segments_[segment][offset] = segments_[segment][offset];
}

void MemUntrustedStore::CorruptRange(uint32_t segment, uint32_t offset,
                                     ByteView replacement) {
  std::memcpy(segments_[segment].data() + offset, replacement.data(),
              replacement.size());
  durable_segments_[segment] = segments_[segment];
}

Bytes MemUntrustedStore::DumpSegment(uint32_t segment) const {
  return segments_[segment];
}

void MemUntrustedStore::RestoreSegment(uint32_t segment, ByteView content) {
  segments_[segment].assign(content.begin(), content.end());
  segments_[segment].resize(options_.segment_size, 0);
  durable_segments_[segment] = segments_[segment];
}

void MemUntrustedStore::RestoreSuperblock(ByteView content) {
  superblock_.assign(content.begin(), content.end());
}

Result<std::unique_ptr<FileUntrustedStore>> FileUntrustedStore::Open(
    const std::string& path, UntrustedStoreOptions options) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return IoError("cannot open " + path);
  }
  uint64_t total = kSuperblockRegion + static_cast<uint64_t>(options.num_segments) *
                                           options.segment_size;
  if (::ftruncate(fd, static_cast<off_t>(total)) != 0) {
    ::close(fd);
    return IoError("cannot size " + path);
  }
  return std::unique_ptr<FileUntrustedStore>(
      new FileUntrustedStore(fd, options));
}

FileUntrustedStore::~FileUntrustedStore() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

Result<Bytes> FileUntrustedStore::Read(uint32_t segment, uint32_t offset,
                                       size_t len) const {
  if (segment >= options_.num_segments ||
      offset + len > options_.segment_size) {
    return InvalidArgumentError("read past end of segment");
  }
  Bytes out(len);
  ssize_t got = ::pread(fd_, out.data(), len,
                        static_cast<off_t>(FileOffset(segment, offset)));
  if (got != static_cast<ssize_t>(len)) {
    return IoError("short read");
  }
  ProfileCount("untrusted_store.reads");
  ProfileCount("untrusted_store.bytes_read", len);
  return out;
}

Status FileUntrustedStore::Write(uint32_t segment, uint32_t offset,
                                 ByteView data) {
  if (segment >= options_.num_segments ||
      offset + data.size() > options_.segment_size) {
    return InvalidArgumentError("write past end of segment");
  }
  ssize_t wrote = ::pwrite(fd_, data.data(), data.size(),
                           static_cast<off_t>(FileOffset(segment, offset)));
  if (wrote != static_cast<ssize_t>(data.size())) {
    return IoError("short write");
  }
  ProfileCount("untrusted_store.bytes_written", data.size());
  return OkStatus();
}

Status FileUntrustedStore::Flush() {
  if (options_.flush_latency.count() > 0) {
    std::this_thread::sleep_for(options_.flush_latency);
  }
  if (::fdatasync(fd_) != 0) {
    return IoError("fdatasync failed");
  }
  ProfileCount("untrusted_store.flushes");
  return OkStatus();
}

Result<Bytes> FileUntrustedStore::ReadSuperblock() const {
  Bytes header(4);
  ssize_t got = ::pread(fd_, header.data(), 4, 0);
  if (got != 4) {
    return IoError("cannot read superblock length");
  }
  uint32_t len = GetU32(header.data());
  if (len == 0) {
    return Bytes{};
  }
  if (len > kSuperblockRegion - 4) {
    return CorruptionError("superblock length out of range");
  }
  Bytes out(len);
  got = ::pread(fd_, out.data(), len, 4);
  if (got != static_cast<ssize_t>(len)) {
    return IoError("short superblock read");
  }
  return out;
}

Status FileUntrustedStore::WriteSuperblock(ByteView data) {
  if (data.size() > kSuperblockRegion - 4) {
    return InvalidArgumentError("superblock data too large");
  }
  Bytes buf;
  PutU32(buf, static_cast<uint32_t>(data.size()));
  Append(buf, data);
  ssize_t wrote = ::pwrite(fd_, buf.data(), buf.size(), 0);
  if (wrote != static_cast<ssize_t>(buf.size())) {
    return IoError("short superblock write");
  }
  if (::fdatasync(fd_) != 0) {
    return IoError("fdatasync failed");
  }
  ProfileCount("untrusted_store.superblock_writes");
  return OkStatus();
}

}  // namespace tdb
