#include "src/store/untrusted_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstring>
#include <thread>

#include "src/common/pickle.h"
#include "src/crypto/sha256.h"
#include "src/obs/profiler.h"

namespace tdb {

MemUntrustedStore::MemUntrustedStore(UntrustedStoreOptions options)
    : options_(options),
      segments_(options.num_segments),
      durable_segments_(options.num_segments),
      dirty_(options.num_segments, false) {
  for (uint32_t i = 0; i < options_.num_segments; ++i) {
    segments_[i].resize(options_.segment_size, 0);
    durable_segments_[i].resize(options_.segment_size, 0);
  }
}

Status MemUntrustedStore::CheckRange(uint32_t segment, uint32_t offset,
                                     size_t len) const {
  if (segment >= options_.num_segments) {
    return InvalidArgumentError("segment index out of range");
  }
  if (offset + len > options_.segment_size) {
    return InvalidArgumentError("read/write past end of segment");
  }
  return OkStatus();
}

Result<Bytes> MemUntrustedStore::Read(uint32_t segment, uint32_t offset,
                                      size_t len) const {
  TDB_RETURN_IF_ERROR(CheckRange(segment, offset, len));
  std::shared_lock<std::shared_mutex> lock(io_mu_);
  ProfileCount("untrusted_store.reads");
  ProfileCount("untrusted_store.bytes_read", len);
  const Bytes& seg = segments_[segment];
  return Bytes(seg.begin() + offset, seg.begin() + offset + len);
}

Status MemUntrustedStore::Write(uint32_t segment, uint32_t offset,
                                ByteView data) {
  TDB_RETURN_IF_ERROR(CheckRange(segment, offset, data.size()));
  std::unique_lock<std::shared_mutex> lock(io_mu_);
  std::memcpy(segments_[segment].data() + offset, data.data(), data.size());
  dirty_[segment] = true;
  bytes_written_ += data.size();
  ProfileCount("untrusted_store.bytes_written", data.size());
  return OkStatus();
}

Status MemUntrustedStore::Flush() {
  if (options_.flush_latency.count() > 0) {
    std::this_thread::sleep_for(options_.flush_latency);
  }
  std::unique_lock<std::shared_mutex> lock(io_mu_);
  for (uint32_t i = 0; i < options_.num_segments; ++i) {
    if (dirty_[i]) {
      durable_segments_[i] = segments_[i];
      dirty_[i] = false;
    }
  }
  ++flush_count_;
  ProfileCount("untrusted_store.flushes");
  return OkStatus();
}

Result<Bytes> MemUntrustedStore::ReadSuperblock() const {
  std::shared_lock<std::shared_mutex> lock(io_mu_);
  return superblock_;
}

Status MemUntrustedStore::WriteSuperblock(ByteView data) {
  std::unique_lock<std::shared_mutex> lock(io_mu_);
  superblock_.assign(data.begin(), data.end());
  ProfileCount("untrusted_store.superblock_writes");
  return OkStatus();
}

void MemUntrustedStore::Crash() {
  std::unique_lock<std::shared_mutex> lock(io_mu_);
  for (uint32_t i = 0; i < options_.num_segments; ++i) {
    if (dirty_[i]) {
      segments_[i] = durable_segments_[i];
      dirty_[i] = false;
    }
  }
}

void MemUntrustedStore::CorruptByte(uint32_t segment, uint32_t offset,
                                    uint8_t xor_mask) {
  std::unique_lock<std::shared_mutex> lock(io_mu_);
  segments_[segment][offset] ^= xor_mask;
  durable_segments_[segment][offset] = segments_[segment][offset];
}

void MemUntrustedStore::CorruptRange(uint32_t segment, uint32_t offset,
                                     ByteView replacement) {
  std::unique_lock<std::shared_mutex> lock(io_mu_);
  std::memcpy(segments_[segment].data() + offset, replacement.data(),
              replacement.size());
  durable_segments_[segment] = segments_[segment];
}

Bytes MemUntrustedStore::DumpSegment(uint32_t segment) const {
  std::shared_lock<std::shared_mutex> lock(io_mu_);
  return segments_[segment];
}

void MemUntrustedStore::RestoreSegment(uint32_t segment, ByteView content) {
  std::unique_lock<std::shared_mutex> lock(io_mu_);
  segments_[segment].assign(content.begin(), content.end());
  segments_[segment].resize(options_.segment_size, 0);
  durable_segments_[segment] = segments_[segment];
}

void MemUntrustedStore::RestoreSuperblock(ByteView content) {
  std::unique_lock<std::shared_mutex> lock(io_mu_);
  superblock_.assign(content.begin(), content.end());
}

namespace {

struct SuperblockSlot {
  uint64_t sequence = 0;
  Bytes payload;
  bool valid = false;
};

// Decodes one superblock slot; `raw` is the full kSuperblockSlotSize bytes.
SuperblockSlot DecodeSuperblockSlot(ByteView raw) {
  SuperblockSlot slot;
  if (raw.size() < FileUntrustedStore::kSuperblockSlotHeader +
                       FileUntrustedStore::kSuperblockSlotChecksum) {
    return slot;
  }
  uint64_t seq = GetU64(raw.data());
  uint32_t len = GetU32(raw.data() + 8);
  if (seq == 0 || len > FileUntrustedStore::kMaxSuperblockPayload) {
    return slot;
  }
  size_t body = FileUntrustedStore::kSuperblockSlotHeader + len;
  Bytes check = Sha256::Hash(raw.first(body));
  if (!ConstantTimeEqual(
          check, raw.subspan(body,
                             FileUntrustedStore::kSuperblockSlotChecksum))) {
    return slot;
  }
  slot.sequence = seq;
  slot.payload.assign(raw.begin() + FileUntrustedStore::kSuperblockSlotHeader,
                      raw.begin() + body);
  slot.valid = true;
  return slot;
}

SuperblockSlot ReadSuperblockSlot(int fd, int index) {
  Bytes raw(FileUntrustedStore::kSuperblockSlotSize);
  ssize_t got = ::pread(
      fd, raw.data(), raw.size(),
      static_cast<off_t>(index * FileUntrustedStore::kSuperblockSlotSize));
  if (got != static_cast<ssize_t>(raw.size())) {
    return SuperblockSlot{};
  }
  return DecodeSuperblockSlot(raw);
}

}  // namespace

Result<std::unique_ptr<FileUntrustedStore>> FileUntrustedStore::Open(
    const std::string& path, UntrustedStoreOptions options) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return IoError("cannot open " + path);
  }
  uint64_t total = kSuperblockRegion + static_cast<uint64_t>(options.num_segments) *
                                           options.segment_size;
  if (::ftruncate(fd, static_cast<off_t>(total)) != 0) {
    ::close(fd);
    return IoError("cannot size " + path);
  }
  auto store = std::unique_ptr<FileUntrustedStore>(
      new FileUntrustedStore(fd, options));
  for (int i = 0; i < 2; ++i) {
    SuperblockSlot slot = ReadSuperblockSlot(fd, i);
    if (slot.valid && slot.sequence > store->superblock_seq_) {
      store->superblock_seq_ = slot.sequence;
    }
  }
  return store;
}

FileUntrustedStore::~FileUntrustedStore() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

Result<Bytes> FileUntrustedStore::Read(uint32_t segment, uint32_t offset,
                                       size_t len) const {
  if (segment >= options_.num_segments ||
      offset + len > options_.segment_size) {
    return InvalidArgumentError("read past end of segment");
  }
  Bytes out(len);
  ssize_t got = ::pread(fd_, out.data(), len,
                        static_cast<off_t>(FileOffset(segment, offset)));
  if (got != static_cast<ssize_t>(len)) {
    return IoError("short read");
  }
  ProfileCount("untrusted_store.reads");
  ProfileCount("untrusted_store.bytes_read", len);
  return out;
}

Status FileUntrustedStore::Write(uint32_t segment, uint32_t offset,
                                 ByteView data) {
  if (segment >= options_.num_segments ||
      offset + data.size() > options_.segment_size) {
    return InvalidArgumentError("write past end of segment");
  }
  ssize_t wrote = ::pwrite(fd_, data.data(), data.size(),
                           static_cast<off_t>(FileOffset(segment, offset)));
  if (wrote != static_cast<ssize_t>(data.size())) {
    return IoError("short write");
  }
  ProfileCount("untrusted_store.bytes_written", data.size());
  return OkStatus();
}

Status FileUntrustedStore::Flush() {
  if (options_.flush_latency.count() > 0) {
    std::this_thread::sleep_for(options_.flush_latency);
  }
  if (::fdatasync(fd_) != 0) {
    return IoError("fdatasync failed");
  }
  ProfileCount("untrusted_store.flushes");
  return OkStatus();
}

Result<Bytes> FileUntrustedStore::ReadSuperblock() const {
  // Pick the valid slot with the highest sequence number; a torn write only
  // ever damages one slot, so the previous superblock is always readable.
  // Neither slot valid means the store was never (completely) formatted —
  // return empty, the same as a fresh store.
  SuperblockSlot best;
  for (int i = 0; i < 2; ++i) {
    SuperblockSlot slot = ReadSuperblockSlot(fd_, i);
    if (slot.valid && (!best.valid || slot.sequence > best.sequence)) {
      best = std::move(slot);
    }
  }
  if (!best.valid) {
    return Bytes{};
  }
  return best.payload;
}

Status FileUntrustedStore::WriteSuperblock(ByteView data) {
  if (data.size() > kMaxSuperblockPayload) {
    return InvalidArgumentError("superblock data too large");
  }
  uint64_t next_seq = superblock_seq_ + 1;
  Bytes buf;
  PutU64(buf, next_seq);
  PutU32(buf, static_cast<uint32_t>(data.size()));
  Append(buf, data);
  Append(buf, Sha256::Hash(buf));
  // Alternate slots so the previous superblock survives a torn write.
  int slot = static_cast<int>(next_seq % 2);
  ssize_t wrote =
      ::pwrite(fd_, buf.data(), buf.size(),
               static_cast<off_t>(slot * kSuperblockSlotSize));
  if (wrote != static_cast<ssize_t>(buf.size())) {
    return IoError("short superblock write");
  }
  if (::fdatasync(fd_) != 0) {
    return IoError("fdatasync failed");
  }
  superblock_seq_ = next_seq;
  ProfileCount("untrusted_store.superblock_writes");
  return OkStatus();
}

}  // namespace tdb
