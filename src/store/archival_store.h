// The archival store of §2.1: untrusted, stream-oriented storage used for
// backups. "It need not provide efficient random access to data, only input
// and output streams. It might be a tape or an ftp server."

#ifndef SRC_STORE_ARCHIVAL_STORE_H_
#define SRC_STORE_ARCHIVAL_STORE_H_

#include <map>
#include <memory>
#include <string>

#include "src/common/bytes.h"
#include "src/common/status.h"

namespace tdb {

// Output stream for one backup stream.
class ArchivalSink {
 public:
  virtual ~ArchivalSink() = default;
  virtual Status Write(ByteView data) = 0;
  virtual Status Close() = 0;
};

// Input stream over a previously written backup stream.
class ArchivalSource {
 public:
  virtual ~ArchivalSource() = default;
  // Reads up to `n` bytes; returns fewer only at end of stream. An empty
  // result means end of stream.
  virtual Result<Bytes> Read(size_t n) = 0;
};

// In-memory archive: a named map of byte streams.
class MemArchive {
 public:
  std::unique_ptr<ArchivalSink> OpenSink(const std::string& name);
  // Returns kNotFound if no stream with this name was closed.
  Result<std::unique_ptr<ArchivalSource>> OpenSource(const std::string& name);

  bool Contains(const std::string& name) const;
  // Attacker primitive: mutate an archived stream in place.
  Status Corrupt(const std::string& name, size_t offset, uint8_t xor_mask);
  size_t StreamSize(const std::string& name) const;

 private:
  friend class MemArchivalSink;
  std::map<std::string, Bytes> streams_;
};

// File-backed sink/source.
Result<std::unique_ptr<ArchivalSink>> OpenFileSink(const std::string& path);
Result<std::unique_ptr<ArchivalSource>> OpenFileSource(const std::string& path);

}  // namespace tdb

#endif  // SRC_STORE_ARCHIVAL_STORE_H_
