// Adversarial wrapper around an UntrustedStore. The paper's threat model
// (§2) lets *any* program — the adversary included — read and write the
// untrusted store. Where FaultyStore models a benign device that crashes,
// TamperStore models a malicious device: every primitive mutates durable
// state through the base store's own Write/Flush, so it works against any
// UntrustedStore implementation (memory- or file-backed).
//
// Tamper kinds:
//  - FlipBits / Overwrite / OverwriteRandom: corrupt bytes in place.
//  - CaptureSegment/ReplaySegment, CaptureSuperblock/ReplaySuperblock,
//    CaptureStore/ReplayStore: snapshot authentic state and replay it later —
//    the rollback attack with stale-but-authentic ciphertext (§4.6, §4.8).
//  - SwapSegments: splice authentic bytes into the wrong place.
//  - TruncateSegment: zero a segment tail (appends silently lost).
//  - GrowSegment: random bytes past the log tail (forged appends).

#ifndef SRC_STORE_TAMPER_STORE_H_
#define SRC_STORE_TAMPER_STORE_H_

#include <vector>

#include "src/common/rng.h"
#include "src/store/untrusted_store.h"

namespace tdb {

class TamperStore final : public UntrustedStore {
 public:
  explicit TamperStore(UntrustedStore* base) : base_(base) {}

  size_t segment_size() const override { return base_->segment_size(); }
  uint32_t num_segments() const override { return base_->num_segments(); }

  Result<Bytes> Read(uint32_t segment, uint32_t offset,
                     size_t len) const override {
    return base_->Read(segment, offset, len);
  }
  Status Write(uint32_t segment, uint32_t offset, ByteView data) override {
    return base_->Write(segment, offset, data);
  }
  Status Flush() override { return base_->Flush(); }
  Result<Bytes> ReadSuperblock() const override {
    return base_->ReadSuperblock();
  }
  Status WriteSuperblock(ByteView data) override {
    return base_->WriteSuperblock(data);
  }

  // A consistent snapshot of the whole untrusted store, for wholesale
  // rollback: every segment plus the superblock.
  struct StoreImage {
    std::vector<Bytes> segments;
    Bytes superblock;
  };

  // --- in-place corruption ---

  // XORs `xor_mask` into the byte at (segment, offset).
  Status FlipBits(uint32_t segment, uint32_t offset, uint8_t xor_mask);
  // Replaces a region with chosen bytes.
  Status Overwrite(uint32_t segment, uint32_t offset, ByteView data);
  // Replaces `len` bytes with bytes drawn from `rng`; guarantees the stored
  // region actually changed (never a no-op).
  Status OverwriteRandom(uint32_t segment, uint32_t offset, size_t len,
                         Rng& rng);

  // --- structural attacks ---

  // Exchanges the full contents of two segments.
  Status SwapSegments(uint32_t a, uint32_t b);
  // Zeroes the segment from `from_offset` to its end.
  Status TruncateSegment(uint32_t segment, uint32_t from_offset);
  // Fills the segment from `from_offset` to its end with random bytes.
  Status GrowSegment(uint32_t segment, uint32_t from_offset, Rng& rng);

  // --- capture & replay (the rollback attack) ---

  Result<Bytes> CaptureSegment(uint32_t segment) const;
  Status ReplaySegment(uint32_t segment, ByteView captured);
  Result<Bytes> CaptureSuperblock() const;
  Status ReplaySuperblock(ByteView captured);
  Result<StoreImage> CaptureStore() const;
  Status ReplayStore(const StoreImage& image);

  uint64_t tamper_count() const { return tamper_count_; }

 private:
  // Writes directly to the base store and flushes, as an attacker with raw
  // device access would — no volatile cache shields the mutation.
  Status WriteDurable(uint32_t segment, uint32_t offset, ByteView data);

  UntrustedStore* base_;
  uint64_t tamper_count_ = 0;
};

}  // namespace tdb

#endif  // SRC_STORE_TAMPER_STORE_H_
