// The untrusted store of §2.1: bulk persistent storage with efficient random
// access, readable and writable by *any* program — the adversary included.
// TDB's log-structured chunk store divides it into fixed-size segments
// (§4.9.4) plus a small fixed superblock region outside the log that holds
// the location of the current leader chunk (§4.9.2).
//
// Durability model: Write() may be buffered by the device; data is guaranteed
// durable only after Flush() returns. MemUntrustedStore models this
// faithfully (Crash() discards unflushed writes), which the crash-recovery
// tests rely on. WriteSuperblock() is atomic and durable on return.
//
// Concurrency: Read() must be safe to call concurrently with other Reads and
// with Write()/Flush() — the chunk store validates cold reads outside its
// mutex, so device reads overlap commits. A Read that overlaps a Write to the
// same range may return a mix of old and new bytes; the caller's
// cryptographic validation rejects such torn reads.

#ifndef SRC_STORE_UNTRUSTED_STORE_H_
#define SRC_STORE_UNTRUSTED_STORE_H_

#include <chrono>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"

namespace tdb {

struct UntrustedStoreOptions {
  size_t segment_size = 64 * 1024;
  uint32_t num_segments = 4096;
  // Modelled device latency applied per Flush (benchmarks only).
  std::chrono::microseconds flush_latency{0};
};

class UntrustedStore {
 public:
  virtual ~UntrustedStore() = default;

  virtual size_t segment_size() const = 0;
  virtual uint32_t num_segments() const = 0;

  virtual Result<Bytes> Read(uint32_t segment, uint32_t offset,
                             size_t len) const = 0;
  virtual Status Write(uint32_t segment, uint32_t offset, ByteView data) = 0;
  // Durability barrier for all prior Writes.
  virtual Status Flush() = 0;

  virtual Result<Bytes> ReadSuperblock() const = 0;
  virtual Status WriteSuperblock(ByteView data) = 0;
};

// In-memory store with an explicit volatile write cache. Also the tamper
// testbed: Corrupt* methods mutate durable state directly, modelling an
// attacker with full access to the device.
class MemUntrustedStore final : public UntrustedStore {
 public:
  explicit MemUntrustedStore(UntrustedStoreOptions options = {});

  size_t segment_size() const override { return options_.segment_size; }
  uint32_t num_segments() const override { return options_.num_segments; }

  Result<Bytes> Read(uint32_t segment, uint32_t offset,
                     size_t len) const override;
  Status Write(uint32_t segment, uint32_t offset, ByteView data) override;
  Status Flush() override;

  Result<Bytes> ReadSuperblock() const override;
  Status WriteSuperblock(ByteView data) override;

  // --- crash & tamper testbed (not part of the UntrustedStore contract) ---

  // Discards all unflushed writes, as a power failure would.
  void Crash();

  // Attacker operations: mutate the current (visible) state directly.
  void CorruptByte(uint32_t segment, uint32_t offset, uint8_t xor_mask);
  void CorruptRange(uint32_t segment, uint32_t offset, ByteView replacement);
  // Snapshot/restore a whole segment — the replay attack primitive.
  Bytes DumpSegment(uint32_t segment) const;
  void RestoreSegment(uint32_t segment, ByteView content);
  Bytes DumpSuperblock() const { return superblock_; }
  void RestoreSuperblock(ByteView content);

  uint64_t flush_count() const {
    std::shared_lock<std::shared_mutex> lock(io_mu_);
    return flush_count_;
  }
  uint64_t bytes_written() const {
    std::shared_lock<std::shared_mutex> lock(io_mu_);
    return bytes_written_;
  }

 private:
  Status CheckRange(uint32_t segment, uint32_t offset, size_t len) const;

  // Readers share; Write/Flush/Crash/Corrupt*/Restore* are exclusive. The
  // file-backed store needs no equivalent (pread/pwrite on one fd).
  mutable std::shared_mutex io_mu_;
  UntrustedStoreOptions options_;
  std::vector<Bytes> segments_;          // current view (includes unflushed)
  std::vector<Bytes> durable_segments_;  // survives Crash()
  std::vector<bool> dirty_;
  Bytes superblock_;
  uint64_t flush_count_ = 0;
  uint64_t bytes_written_ = 0;
};

// File-backed store. Layout: 4 KiB superblock region, then segments.
//
// The superblock region holds two checksummed slots so WriteSuperblock keeps
// its crash-atomicity contract on a real disk: each write goes to the slot
// the previous write did NOT use (alternating on a sequence number), so a
// torn superblock write can only damage the slot being written and the
// reader falls back to the intact previous slot.
class FileUntrustedStore final : public UntrustedStore {
 public:
  // Each slot: u64 sequence | u32 length | payload | 32-byte SHA-256 over
  // the preceding bytes. Exposed for crash tests that tear a slot directly.
  static constexpr size_t kSuperblockRegion = 4096;
  static constexpr size_t kSuperblockSlotSize = kSuperblockRegion / 2;
  static constexpr size_t kSuperblockSlotHeader = 8 + 4;   // seq + length
  static constexpr size_t kSuperblockSlotChecksum = 32;    // SHA-256
  static constexpr size_t kMaxSuperblockPayload =
      kSuperblockSlotSize - kSuperblockSlotHeader - kSuperblockSlotChecksum;

  static Result<std::unique_ptr<FileUntrustedStore>> Open(
      const std::string& path, UntrustedStoreOptions options = {});
  ~FileUntrustedStore() override;

  size_t segment_size() const override { return options_.segment_size; }
  uint32_t num_segments() const override { return options_.num_segments; }

  Result<Bytes> Read(uint32_t segment, uint32_t offset,
                     size_t len) const override;
  Status Write(uint32_t segment, uint32_t offset, ByteView data) override;
  Status Flush() override;

  Result<Bytes> ReadSuperblock() const override;
  Status WriteSuperblock(ByteView data) override;

 private:
  FileUntrustedStore(int fd, UntrustedStoreOptions options)
      : fd_(fd), options_(options) {}

  uint64_t FileOffset(uint32_t segment, uint32_t offset) const {
    return kSuperblockRegion +
           static_cast<uint64_t>(segment) * options_.segment_size + offset;
  }

  int fd_ = -1;
  UntrustedStoreOptions options_;
  // Sequence number of the newest valid superblock slot (0 = none yet);
  // primed at Open, advanced by WriteSuperblock.
  uint64_t superblock_seq_ = 0;
};

}  // namespace tdb

#endif  // SRC_STORE_UNTRUSTED_STORE_H_
