#include "src/store/archival_store.h"

#include <cstdio>
#include <map>

namespace tdb {

namespace {

class MemSink final : public ArchivalSink {
 public:
  MemSink(MemArchive* archive, std::string name, Bytes* target)
      : target_(target) {
    (void)archive;
    (void)name;
  }

  Status Write(ByteView data) override {
    buffer_.insert(buffer_.end(), data.begin(), data.end());
    return OkStatus();
  }

  Status Close() override {
    *target_ = std::move(buffer_);
    return OkStatus();
  }

 private:
  Bytes buffer_;
  Bytes* target_;
};

class MemSource final : public ArchivalSource {
 public:
  explicit MemSource(Bytes data) : data_(std::move(data)) {}

  Result<Bytes> Read(size_t n) override {
    size_t take = std::min(n, data_.size() - pos_);
    Bytes out(data_.begin() + pos_, data_.begin() + pos_ + take);
    pos_ += take;
    return out;
  }

 private:
  Bytes data_;
  size_t pos_ = 0;
};

class FileSink final : public ArchivalSink {
 public:
  explicit FileSink(std::FILE* f) : f_(f) {}
  ~FileSink() override {
    if (f_ != nullptr) {
      std::fclose(f_);
    }
  }

  Status Write(ByteView data) override {
    if (f_ == nullptr) {
      return FailedPreconditionError("sink closed");
    }
    if (std::fwrite(data.data(), 1, data.size(), f_) != data.size()) {
      return IoError("archive write failed");
    }
    return OkStatus();
  }

  Status Close() override {
    if (f_ == nullptr) {
      return OkStatus();
    }
    int rc = std::fflush(f_);
    std::fclose(f_);
    f_ = nullptr;
    if (rc != 0) {
      return IoError("archive flush failed");
    }
    return OkStatus();
  }

 private:
  std::FILE* f_;
};

class FileSource final : public ArchivalSource {
 public:
  explicit FileSource(std::FILE* f) : f_(f) {}
  ~FileSource() override {
    if (f_ != nullptr) {
      std::fclose(f_);
    }
  }

  Result<Bytes> Read(size_t n) override {
    Bytes out(n);
    size_t got = std::fread(out.data(), 1, n, f_);
    out.resize(got);
    return out;
  }

 private:
  std::FILE* f_;
};

}  // namespace

std::unique_ptr<ArchivalSink> MemArchive::OpenSink(const std::string& name) {
  return std::make_unique<MemSink>(this, name, &streams_[name]);
}

Result<std::unique_ptr<ArchivalSource>> MemArchive::OpenSource(
    const std::string& name) {
  auto it = streams_.find(name);
  if (it == streams_.end()) {
    return NotFoundError("no archived stream named " + name);
  }
  return std::unique_ptr<ArchivalSource>(new MemSource(it->second));
}

bool MemArchive::Contains(const std::string& name) const {
  return streams_.count(name) > 0;
}

Status MemArchive::Corrupt(const std::string& name, size_t offset,
                           uint8_t xor_mask) {
  auto it = streams_.find(name);
  if (it == streams_.end()) {
    return NotFoundError("no archived stream named " + name);
  }
  if (offset >= it->second.size()) {
    return InvalidArgumentError("corrupt offset past end of stream");
  }
  it->second[offset] ^= xor_mask;
  return OkStatus();
}

size_t MemArchive::StreamSize(const std::string& name) const {
  auto it = streams_.find(name);
  return it == streams_.end() ? 0 : it->second.size();
}

Result<std::unique_ptr<ArchivalSink>> OpenFileSink(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return IoError("cannot create " + path);
  }
  return std::unique_ptr<ArchivalSink>(new FileSink(f));
}

Result<std::unique_ptr<ArchivalSource>> OpenFileSource(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return NotFoundError("cannot open " + path);
  }
  return std::unique_ptr<ArchivalSource>(new FileSource(f));
}

}  // namespace tdb
