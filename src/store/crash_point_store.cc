#include "src/store/crash_point_store.h"

namespace tdb {

Result<Bytes> CrashPointStore::Read(uint32_t segment, uint32_t offset,
                                    size_t len) const {
  if (controller_->crashed()) return CrashPointController::CrashedStatus();
  return base_->Read(segment, offset, len);
}

Status CrashPointStore::Write(uint32_t segment, uint32_t offset,
                              ByteView data) {
  switch (controller_->OnPoint()) {
    case CrashPointController::Decision::kProceed:
      return base_->Write(segment, offset, data);
    case CrashPointController::Decision::kCrashNow: {
      size_t keep = controller_->TornPrefix(data.size());
      if (keep > 0) {
        // The torn prefix reaches the device (still subject to the device's
        // own write cache — the driver decides whether unflushed writes
        // survive the crash).
        (void)base_->Write(segment, offset, data.first(keep));
      }
      return CrashPointController::CrashedStatus();
    }
    case CrashPointController::Decision::kDead:
      break;
  }
  return CrashPointController::CrashedStatus();
}

Status CrashPointStore::Flush() {
  if (controller_->OnPoint() == CrashPointController::Decision::kProceed) {
    return base_->Flush();
  }
  return CrashPointController::CrashedStatus();
}

Result<Bytes> CrashPointStore::ReadSuperblock() const {
  if (controller_->crashed()) return CrashPointController::CrashedStatus();
  return base_->ReadSuperblock();
}

Status CrashPointStore::WriteSuperblock(ByteView data) {
  // Crash-atomic per the UntrustedStore contract: the crash either happens
  // before the write (nothing persists) or after (all of it does) — never a
  // torn prefix.
  if (controller_->OnPoint() == CrashPointController::Decision::kProceed) {
    return base_->WriteSuperblock(data);
  }
  return CrashPointController::CrashedStatus();
}

Status CrashPointSink::Write(ByteView data) {
  switch (controller_->OnPoint()) {
    case CrashPointController::Decision::kProceed:
      return base_->Write(data);
    case CrashPointController::Decision::kCrashNow: {
      size_t keep = controller_->TornPrefix(data.size());
      if (keep > 0) (void)base_->Write(data.first(keep));
      return CrashPointController::CrashedStatus();
    }
    case CrashPointController::Decision::kDead:
      break;
  }
  return CrashPointController::CrashedStatus();
}

Status CrashPointSink::Close() {
  if (controller_->OnPoint() == CrashPointController::Decision::kProceed) {
    return base_->Close();
  }
  return CrashPointController::CrashedStatus();
}

}  // namespace tdb
