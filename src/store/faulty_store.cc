#include "src/store/faulty_store.h"

namespace tdb {

Result<Bytes> FaultyStore::Read(uint32_t segment, uint32_t offset,
                                size_t len) const {
  return base_->Read(segment, offset, len);
}

Status FaultyStore::Write(uint32_t segment, uint32_t offset, ByteView data) {
  if (faulted_) {
    return IoError("injected fault: store is down");
  }
  if (armed_) {
    if (writes_until_fault_ == 0) {
      faulted_ = true;
      if (tear_ && data.size() > 1) {
        // Persist a prefix, then fail: a torn write.
        (void)base_->Write(segment, offset, data.subspan(0, data.size() / 2));
      }
      return IoError("injected fault: write failed");
    }
    --writes_until_fault_;
  }
  ++write_count_;
  return base_->Write(segment, offset, data);
}

Status FaultyStore::Flush() {
  if (faulted_) {
    return IoError("injected fault: store is down");
  }
  ++flush_count_;
  return base_->Flush();
}

Result<Bytes> FaultyStore::ReadSuperblock() const {
  return base_->ReadSuperblock();
}

Status FaultyStore::WriteSuperblock(ByteView data) {
  if (faulted_) {
    return IoError("injected fault: store is down");
  }
  if (armed_) {
    if (writes_until_fault_ == 0) {
      faulted_ = true;
      return IoError("injected fault: superblock write failed");
    }
    --writes_until_fault_;
  }
  ++write_count_;
  return base_->WriteSuperblock(data);
}

void FaultyStore::FailAfterWrites(uint64_t n, bool tear) {
  armed_ = true;
  tear_ = tear;
  writes_until_fault_ = n;
  faulted_ = false;
}

void FaultyStore::ClearFault() {
  armed_ = false;
  faulted_ = false;
}

}  // namespace tdb
