#include "src/store/faulty_store.h"

#include <cmath>

namespace tdb {

Status FaultyStore::CheckReadFault() const {
  if (read_faulted_) {
    return IoError("injected fault: read failed");
  }
  if (read_armed_) {
    if (reads_until_fault_ == 0) {
      read_faulted_ = true;
      return IoError("injected fault: read failed");
    }
    --reads_until_fault_;
  }
  ++read_count_;
  return OkStatus();
}

Result<Bytes> FaultyStore::Read(uint32_t segment, uint32_t offset,
                                size_t len) const {
  TDB_RETURN_IF_ERROR(CheckReadFault());
  return base_->Read(segment, offset, len);
}

Status FaultyStore::Write(uint32_t segment, uint32_t offset, ByteView data) {
  if (write_faulted_) {
    return IoError("injected fault: store is down");
  }
  if (write_armed_) {
    if (writes_until_fault_ == 0) {
      write_faulted_ = true;
      if (tear_) {
        size_t keep = static_cast<size_t>(
            std::floor(static_cast<double>(data.size()) * tear_fraction_));
        if (keep > data.size()) keep = data.size();
        if (keep > 0) {
          // Persist a prefix, then fail: a torn write.
          (void)base_->Write(segment, offset, data.subspan(0, keep));
        }
      }
      return IoError("injected fault: write failed");
    }
    --writes_until_fault_;
  }
  ++write_count_;
  return base_->Write(segment, offset, data);
}

Status FaultyStore::Flush() {
  if (write_faulted_) {
    return IoError("injected fault: store is down");
  }
  ++flush_count_;
  return base_->Flush();
}

Result<Bytes> FaultyStore::ReadSuperblock() const {
  TDB_RETURN_IF_ERROR(CheckReadFault());
  return base_->ReadSuperblock();
}

Status FaultyStore::WriteSuperblock(ByteView data) {
  if (write_faulted_) {
    return IoError("injected fault: store is down");
  }
  if (write_armed_) {
    if (writes_until_fault_ == 0) {
      write_faulted_ = true;
      return IoError("injected fault: superblock write failed");
    }
    --writes_until_fault_;
  }
  ++write_count_;
  return base_->WriteSuperblock(data);
}

void FaultyStore::FailAfterWrites(uint64_t n) {
  write_armed_ = true;
  writes_until_fault_ = n;
  write_faulted_ = false;
}

void FaultyStore::FailAfterReads(uint64_t n) {
  read_armed_ = true;
  reads_until_fault_ = n;
  read_faulted_ = false;
}

void FaultyStore::SetTearFraction(double fraction) {
  if (fraction < 0.0) fraction = 0.0;
  if (fraction > 1.0) fraction = 1.0;
  tear_fraction_ = fraction;
  tear_ = true;
}

void FaultyStore::ClearFault() {
  write_armed_ = false;
  write_faulted_ = false;
  read_armed_ = false;
  read_faulted_ = false;
  tear_ = false;
  tear_fraction_ = 0.0;
}

}  // namespace tdb
