// Fault-injection wrapper around an UntrustedStore, used by crash-recovery
// and error-propagation tests. It can fail writes after a countdown and can
// tear the write that trips the countdown (persisting only a prefix), which
// models a power failure in the middle of a device write.

#ifndef SRC_STORE_FAULTY_STORE_H_
#define SRC_STORE_FAULTY_STORE_H_

#include "src/store/untrusted_store.h"

namespace tdb {

class FaultyStore final : public UntrustedStore {
 public:
  explicit FaultyStore(UntrustedStore* base) : base_(base) {}

  size_t segment_size() const override { return base_->segment_size(); }
  uint32_t num_segments() const override { return base_->num_segments(); }

  Result<Bytes> Read(uint32_t segment, uint32_t offset,
                     size_t len) const override;
  Status Write(uint32_t segment, uint32_t offset, ByteView data) override;
  Status Flush() override;
  Result<Bytes> ReadSuperblock() const override;
  Status WriteSuperblock(ByteView data) override;

  // After `n` more successful writes, the next write fails with kIoError
  // (and, if `tear` is set, persists only the first half of its data before
  // failing). Further writes and flushes keep failing until ClearFault().
  void FailAfterWrites(uint64_t n, bool tear = false);
  void ClearFault();
  bool faulted() const { return faulted_; }

  uint64_t write_count() const { return write_count_; }
  uint64_t flush_count() const { return flush_count_; }

 private:
  UntrustedStore* base_;
  uint64_t write_count_ = 0;
  uint64_t flush_count_ = 0;
  bool armed_ = false;
  bool tear_ = false;
  uint64_t writes_until_fault_ = 0;
  bool faulted_ = false;
};

}  // namespace tdb

#endif  // SRC_STORE_FAULTY_STORE_H_
