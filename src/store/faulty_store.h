// Fault-injection wrapper around an UntrustedStore, used by crash-recovery
// and error-propagation tests. It can fail writes after a countdown and can
// tear the write that trips the countdown (persisting only a configurable
// prefix fraction), which models a power failure in the middle of a device
// write. It can also fail reads after a countdown, modelling a device whose
// medium goes bad between commit and recovery.

#ifndef SRC_STORE_FAULTY_STORE_H_
#define SRC_STORE_FAULTY_STORE_H_

#include "src/store/untrusted_store.h"

namespace tdb {

class FaultyStore final : public UntrustedStore {
 public:
  explicit FaultyStore(UntrustedStore* base) : base_(base) {}

  size_t segment_size() const override { return base_->segment_size(); }
  uint32_t num_segments() const override { return base_->num_segments(); }

  Result<Bytes> Read(uint32_t segment, uint32_t offset,
                     size_t len) const override;
  Status Write(uint32_t segment, uint32_t offset, ByteView data) override;
  Status Flush() override;
  Result<Bytes> ReadSuperblock() const override;
  Status WriteSuperblock(ByteView data) override;

  // After `n` more successful writes, the next write fails with kIoError
  // (and, if a tear fraction is set, persists that prefix fraction of its
  // data before failing). Further writes and flushes keep failing until
  // ClearFault().
  void FailAfterWrites(uint64_t n);
  // After `n` more successful reads (segment or superblock), reads fail with
  // kIoError until ClearFault(). Writes are unaffected.
  void FailAfterReads(uint64_t n);
  // Fraction in [0, 1] of the tripping write's bytes persisted before the
  // injected failure. 0 persists nothing (clean fail), 1 persists everything
  // (the write succeeded at the device but the ack was lost).
  void SetTearFraction(double fraction);
  void ClearFault();
  bool faulted() const { return write_faulted_ || read_faulted_; }

  uint64_t write_count() const { return write_count_; }
  uint64_t read_count() const { return read_count_; }
  uint64_t flush_count() const { return flush_count_; }

 private:
  Status CheckReadFault() const;

  UntrustedStore* base_;
  uint64_t write_count_ = 0;
  uint64_t flush_count_ = 0;
  bool write_armed_ = false;
  double tear_fraction_ = 0.0;
  bool tear_ = false;
  uint64_t writes_until_fault_ = 0;
  bool write_faulted_ = false;
  // Read-path state is mutable because Read()/ReadSuperblock() are const in
  // the UntrustedStore contract; fault bookkeeping is not logical state.
  mutable uint64_t read_count_ = 0;
  mutable bool read_armed_ = false;
  mutable uint64_t reads_until_fault_ = 0;
  mutable bool read_faulted_ = false;
};

}  // namespace tdb

#endif  // SRC_STORE_FAULTY_STORE_H_
