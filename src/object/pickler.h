// Application object pickling (§2.2, §7).
//
// TDB stores abstract objects that applications access without explicitly
// invoking encryption, validation, or pickling. Applications implement
// Pickled for each object type and register an unpickle function in a
// TypeRegistry; the stored representation is a type tag followed by the
// object's pickled fields — compact and portable.

#ifndef SRC_OBJECT_PICKLER_H_
#define SRC_OBJECT_PICKLER_H_

#include <functional>
#include <map>
#include <memory>

#include "src/common/bytes.h"
#include "src/common/pickle.h"
#include "src/common/status.h"

namespace tdb {

class Pickled {
 public:
  virtual ~Pickled() = default;

  // Stable identifier of this object's type; must be registered.
  virtual uint32_t type_tag() const = 0;

  // Serializes the object's fields (the tag is written by the registry).
  virtual void PickleFields(PickleWriter& w) const = 0;
};

// Objects are immutable once stored; updates store a new value.
using ObjectPtr = std::shared_ptr<const Pickled>;

class TypeRegistry {
 public:
  using UnpickleFn = std::function<Result<ObjectPtr>(PickleReader&)>;

  Status Register(uint32_t tag, UnpickleFn fn);

  // tag + fields.
  Bytes Pickle(const Pickled& object) const;
  Result<ObjectPtr> Unpickle(ByteView data) const;

 private:
  std::map<uint32_t, UnpickleFn> types_;
};

// Convenience helper: register a default-constructible type T that has
//   static constexpr uint32_t kTypeTag;
//   static Result<ObjectPtr> UnpickleFields(PickleReader&);
template <typename T>
Status RegisterType(TypeRegistry& registry) {
  return registry.Register(T::kTypeTag, &T::UnpickleFields);
}

}  // namespace tdb

#endif  // SRC_OBJECT_PICKLER_H_
