#include "src/object/lock_manager.h"

namespace tdb {

bool LockManager::Compatible(const LockState& state, uint64_t owner,
                             LockMode mode) const {
  for (const auto& [holder, held] : state.holders) {
    if (holder == owner) {
      continue;
    }
    if (mode == LockMode::kExclusive || held == LockMode::kExclusive) {
      return false;
    }
  }
  return true;
}

Status LockManager::Acquire(uint64_t owner, const ChunkId& id, LockMode mode) {
  std::unique_lock<std::mutex> lock(mu_);
  auto deadline = std::chrono::steady_clock::now() + timeout_;
  while (true) {
    LockState& state = locks_[id];
    auto held = state.holders.find(owner);
    if (held != state.holders.end() &&
        (held->second == LockMode::kExclusive || mode == LockMode::kShared)) {
      return OkStatus();  // already strong enough
    }
    if (Compatible(state, owner, mode)) {
      state.holders[owner] = mode;
      return OkStatus();
    }
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      return TimeoutError("lock wait timed out on " + id.ToString() +
                          " (possible deadlock, transaction should abort)");
    }
  }
}

void LockManager::ReleaseAll(uint64_t owner) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = locks_.begin(); it != locks_.end();) {
    it->second.holders.erase(owner);
    if (it->second.holders.empty()) {
      it = locks_.erase(it);
    } else {
      ++it;
    }
  }
  cv_.notify_all();
}

size_t LockManager::locked_object_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return locks_.size();
}

}  // namespace tdb
