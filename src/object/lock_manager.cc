#include "src/object/lock_manager.h"

#include "src/obs/metrics.h"

namespace tdb {

bool LockManager::Compatible(const LockState& state, uint64_t owner,
                             LockMode mode) const {
  for (const auto& [holder, held] : state.holders) {
    if (holder == owner) {
      continue;
    }
    if (mode == LockMode::kExclusive || held == LockMode::kExclusive) {
      return false;
    }
  }
  return true;
}

Status LockManager::Acquire(uint64_t owner, const ChunkId& id, LockMode mode) {
  const bool timed = obs::MetricsRegistry::Instance().enabled();
  const auto started = timed ? std::chrono::steady_clock::now()
                             : std::chrono::steady_clock::time_point{};
  bool contended = false;
  auto record = [&](bool granted) {
    obs::Count(granted ? "lock.acquires" : "lock.timeouts");
    if (contended) {
      obs::Count("lock.contended");
    }
    if (timed) {
      obs::Observe("lock.wait_us",
                   std::chrono::duration<double, std::micro>(
                       std::chrono::steady_clock::now() - started)
                       .count());
    }
  };

  std::unique_lock<std::mutex> lock(mu_);
  // References into the map stay valid across rehashes and other erases;
  // this entry itself cannot be erased while we hold mu_ or have registered
  // as a waiter.
  LockState& state = locks_[id];
  auto deadline = std::chrono::steady_clock::now() + timeout_;

  auto try_grant = [&]() {
    auto held = state.holders.find(owner);
    if (held != state.holders.end() &&
        (held->second == LockMode::kExclusive || mode == LockMode::kShared)) {
      return true;  // already strong enough
    }
    if (Compatible(state, owner, mode)) {
      state.holders[owner] = mode;
      return true;
    }
    return false;
  };

  while (true) {
    if (try_grant()) {
      record(/*granted=*/true);
      return OkStatus();
    }
    contended = true;
    ++state.waiters;
    std::cv_status wait = cv_.wait_until(lock, deadline);
    --state.waiters;
    if (wait == std::cv_status::timeout) {
      // The lock may have been released in the same instant the deadline
      // expired (the broadcast and the timeout race); grant rather than
      // fail spuriously if it is free now.
      if (try_grant()) {
        record(/*granted=*/true);
        return OkStatus();
      }
      // Deregister cleanly: if we were the last party interested in this
      // id, drop the now-empty state before surfacing the timeout.
      if (state.holders.empty() && state.waiters == 0) {
        locks_.erase(id);
      }
      record(/*granted=*/false);
      return TimeoutError("lock wait timed out on " + id.ToString() +
                          " (possible deadlock, transaction should abort)");
    }
  }
}

void LockManager::ReleaseAll(uint64_t owner) {
  bool wake = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = locks_.begin(); it != locks_.end();) {
      if (it->second.holders.erase(owner) > 0 && it->second.waiters > 0) {
        wake = true;
      }
      if (it->second.holders.empty() && it->second.waiters == 0) {
        it = locks_.erase(it);
      } else {
        ++it;
      }
    }
  }
  // Broadcast (rather than signal) because waiters wait for different ids
  // on one condition variable — but only when a freed id had waiters.
  if (wake) {
    cv_.notify_all();
  }
}

size_t LockManager::locked_object_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t held = 0;
  for (const auto& [id, state] : locks_) {
    if (!state.holders.empty()) {
      ++held;
    }
  }
  return held;
}

}  // namespace tdb
