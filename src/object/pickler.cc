#include "src/object/pickler.h"

namespace tdb {

Status TypeRegistry::Register(uint32_t tag, UnpickleFn fn) {
  auto [_, inserted] = types_.emplace(tag, std::move(fn));
  if (!inserted) {
    return AlreadyExistsError("type tag " + std::to_string(tag) +
                              " already registered");
  }
  return OkStatus();
}

Bytes TypeRegistry::Pickle(const Pickled& object) const {
  PickleWriter w;
  w.WriteVarint(object.type_tag());
  object.PickleFields(w);
  return w.Take();
}

Result<ObjectPtr> TypeRegistry::Unpickle(ByteView data) const {
  PickleReader r(data);
  uint64_t tag = r.ReadVarint();
  TDB_RETURN_IF_ERROR(r.Check());
  auto it = types_.find(static_cast<uint32_t>(tag));
  if (it == types_.end()) {
    return CorruptionError("unknown object type tag " + std::to_string(tag));
  }
  TDB_ASSIGN_OR_RETURN(ObjectPtr object, it->second(r));
  TDB_RETURN_IF_ERROR(r.Done());
  return object;
}

}  // namespace tdb
