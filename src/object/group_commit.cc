#include "src/object/group_commit.h"

#include <algorithm>
#include <chrono>
#include <vector>

#include "src/obs/metrics.h"

namespace tdb {

GroupCommitQueue::GroupCommitQueue(ChunkStore* chunks, size_t max_batch,
                                   GroupCommitQueue* next)
    : chunks_(chunks), max_batch_(max_batch == 0 ? 1 : max_batch), next_(next) {}

Status GroupCommitQueue::Commit(ChunkStore::Batch batch) {
  if (batch.empty()) {
    // Read-only transaction: ChunkStore::Commit is a no-op for an empty
    // batch, so don't occupy a queue slot.
    return chunks_->Commit(std::move(batch));
  }

  Waiter me;
  me.batch = std::move(batch);

  const bool timed = obs::MetricsRegistry::Instance().enabled();
  const auto enqueued =
      timed ? std::chrono::steady_clock::now() : std::chrono::steady_clock::time_point{};

  std::unique_lock<std::mutex> lock(mu_);
  queue_.push_back(&me);
  // Park until a leader finished our batch, or we reach the front and
  // inherit leadership ourselves.
  while (!me.done && queue_.front() != &me) {
    cv_.wait(lock);
  }
  if (timed) {
    obs::Observe("object.group_commit_wait_us",
                 std::chrono::duration<double, std::micro>(
                     std::chrono::steady_clock::now() - enqueued)
                     .count());
  }
  if (me.done) {
    return me.result;
  }

  // Leader: absorb every batch queued behind us, up to the cap. The waiters
  // we absorb stay parked (their frames, and thus their write batches and
  // their 2PL locks, stay alive) until we mark them done.
  const size_t group_size = std::min(queue_.size(), max_batch_);
  std::vector<Waiter*> group(queue_.begin(), queue_.begin() + group_size);
  ChunkStore::Batch merged = std::move(me.batch);
  for (size_t i = 1; i < group_size; ++i) {
    merged.Append(std::move(group[i]->batch));
  }
  lock.unlock();

  Status status = next_ != nullptr ? next_->Commit(std::move(merged))
                                   : chunks_->Commit(std::move(merged));

  lock.lock();
  for (Waiter* w : group) {
    w->result = status;
    w->done = true;
  }
  queue_.erase(queue_.begin(), queue_.begin() + group_size);
  lock.unlock();
  // Wake the followers we finished and the next leader (if any queued
  // behind the group while we were committing).
  cv_.notify_all();

  obs::Count("object.group_commits");
  obs::Observe("object.group_commit_batch", static_cast<double>(group_size));
  return status;
}

size_t GroupCommitQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace tdb
