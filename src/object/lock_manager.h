// Two-phase locking for the object store (§7): shared/exclusive locks on
// object ids, with lock-wait timeouts as the deadlock-breaking mechanism
// ("implements two-phase locking on objects and breaks deadlocks using
// timeouts"). Originally geared to low concurrency; hardened for the
// networked service layer, where many sessions block on the same ids:
// waiters are tracked per lock so a timed-out waiter deregisters itself
// (and garbage-collects an empty lock state) before returning kTimeout,
// a release only broadcasts when someone is actually waiting, and
// acquires/timeouts/wait latency are exported through the MetricsRegistry
// (`lock.acquires`, `lock.contended`, `lock.timeouts`, `lock.wait_us`).

#ifndef SRC_OBJECT_LOCK_MANAGER_H_
#define SRC_OBJECT_LOCK_MANAGER_H_

#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <unordered_map>

#include "src/chunk/chunk_id.h"
#include "src/common/status.h"

namespace tdb {

enum class LockMode { kShared, kExclusive };

class LockManager {
 public:
  explicit LockManager(std::chrono::milliseconds timeout) : timeout_(timeout) {}

  // Blocks until the lock is granted or the timeout elapses (kTimeout).
  // Re-acquisition and shared→exclusive upgrade by the same owner are
  // supported; upgrades can deadlock and are resolved by the timeout.
  Status Acquire(uint64_t owner, const ChunkId& id, LockMode mode);

  // Releases everything `owner` holds (end of the two-phase protocol).
  void ReleaseAll(uint64_t owner);

  // Ids currently held by at least one owner (ids with only waiters are
  // not counted).
  size_t locked_object_count() const;

 private:
  struct LockState {
    std::map<uint64_t, LockMode> holders;
    // Threads parked in Acquire on this id. A non-zero count keeps the
    // entry alive (waiters hold a reference to it across cv waits) and is
    // what makes a release broadcast worthwhile.
    size_t waiters = 0;
  };

  bool Compatible(const LockState& state, uint64_t owner, LockMode mode) const;

  std::chrono::milliseconds timeout_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<ChunkId, LockState> locks_;
};

}  // namespace tdb

#endif  // SRC_OBJECT_LOCK_MANAGER_H_
