// Two-phase locking for the object store (§7): shared/exclusive locks on
// object ids, with lock-wait timeouts as the deadlock-breaking mechanism
// ("implements two-phase locking on objects and breaks deadlocks using
// timeouts"). Geared to low concurrency, as the paper intends.

#ifndef SRC_OBJECT_LOCK_MANAGER_H_
#define SRC_OBJECT_LOCK_MANAGER_H_

#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <unordered_map>

#include "src/chunk/chunk_id.h"
#include "src/common/status.h"

namespace tdb {

enum class LockMode { kShared, kExclusive };

class LockManager {
 public:
  explicit LockManager(std::chrono::milliseconds timeout) : timeout_(timeout) {}

  // Blocks until the lock is granted or the timeout elapses (kTimeout).
  // Re-acquisition and shared→exclusive upgrade by the same owner are
  // supported; upgrades can deadlock and are resolved by the timeout.
  Status Acquire(uint64_t owner, const ChunkId& id, LockMode mode);

  // Releases everything `owner` holds (end of the two-phase protocol).
  void ReleaseAll(uint64_t owner);

  size_t locked_object_count() const;

 private:
  struct LockState {
    std::map<uint64_t, LockMode> holders;
  };

  bool Compatible(const LockState& state, uint64_t owner, LockMode mode) const;

  std::chrono::milliseconds timeout_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<ChunkId, LockState> locks_;
};

}  // namespace tdb

#endif  // SRC_OBJECT_LOCK_MANAGER_H_
