// Group commit for concurrent transactions.
//
// The chunk store serializes commits under one mutex, and each commit pays
// the full Merkle/crypto/flush path (commit record, leader updates, trusted
// counter or register write). When many transactions commit concurrently,
// that cost can be amortized: callers park their already-built batches on a
// queue, the caller at the front becomes the *leader*, coalesces every
// queued batch (up to a cap) into one chunk-store commit, and wakes each
// follower only after the shared flush — so an acknowledged commit is
// exactly as durable as a solo one, but N concurrent commits perform one
// chunk-store commit instead of N.
//
// Correctness leans on two-phase locking above this layer: every parked
// transaction still holds exclusive locks on its write set while it waits,
// so merged batches touch disjoint chunk ids and the combined batch is
// equivalent to any serial order of its members. The one visible semantic
// difference from solo commits is failure coupling: if the merged commit
// fails (out of space, I/O error, poisoned store), every member of that
// batch fails with the same status.
//
// Queues chain: a queue constructed with a `next` queue submits its merged
// batch there instead of to the chunk store. The sharded service uses this
// for two-level group commit — each partition engine runs its own queue
// (per-partition leader), and every engine leader parks on one store-level
// combiner queue, which merges batches from *different* partitions (disjoint
// by construction: a partition is served by exactly one engine) into a
// single chunk-store commit. One flush then amortizes across partitions as
// well as across transactions.

#ifndef SRC_OBJECT_GROUP_COMMIT_H_
#define SRC_OBJECT_GROUP_COMMIT_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>

#include "src/chunk/chunk_store.h"

namespace tdb {

class GroupCommitQueue {
 public:
  // `chunks` must outlive the queue. `max_batch` caps how many waiting
  // transactions one leader may absorb (>= 1). When `next` is non-null the
  // leader submits its merged batch to `next` (which must also outlive this
  // queue) instead of committing it directly; chains must be acyclic.
  GroupCommitQueue(ChunkStore* chunks, size_t max_batch,
                   GroupCommitQueue* next = nullptr);

  // Commits `batch` as part of a coalesced chunk-store commit. Blocks until
  // the batch containing it is durable (or failed); returns the shared
  // commit status. Safe to call from many threads.
  Status Commit(ChunkStore::Batch batch);

  // Transactions currently parked on the queue (including the leader);
  // a point-in-time reading for gauges.
  size_t depth() const;

 private:
  struct Waiter {
    ChunkStore::Batch batch;
    Status result;
    bool done = false;
  };

  ChunkStore* chunks_;
  const size_t max_batch_;
  GroupCommitQueue* const next_;  // null = commit straight to the store

  mutable std::mutex mu_;
  std::condition_variable cv_;
  // Waiters in arrival order; the front waiter is the leader. Entries point
  // into the stack frames of blocked Commit calls.
  std::deque<Waiter*> queue_;
};

}  // namespace tdb

#endif  // SRC_OBJECT_GROUP_COMMIT_H_
