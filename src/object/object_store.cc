#include "src/object/object_store.h"

#include "src/obs/metrics.h"
#include "src/obs/profiler.h"
#include "src/obs/trace.h"

namespace tdb {

ObjectStore::ObjectStore(ChunkStore* chunks, PartitionId partition,
                         const TypeRegistry* registry,
                         ObjectStoreOptions options)
    : chunks_(chunks),
      partition_(partition),
      registry_(registry),
      options_(options),
      locks_(options.lock_timeout),
      cache_(options.cache_capacity, options.cache_shards,
             {"object.cache_evictions", "object_cache"}) {
  if (options_.group_commit) {
    group_commit_ = std::make_unique<GroupCommitQueue>(
        chunks_, options_.group_commit_max_batch, options_.commit_chain);
  }
  obs::SetGauge("cache.shards", cache_.shard_count());
}

ObjectStore::~ObjectStore() {
  std::lock_guard<std::mutex> lock(snap_mu_);
  if (snapshot_ != nullptr && snapshot_->refs == 0) {
    DeallocSnapshotLocked(*snapshot_);
  }
}

std::unique_ptr<Transaction> ObjectStore::Begin() {
  return std::unique_ptr<Transaction>(
      new Transaction(this, next_txn_id_.fetch_add(1)));
}

Result<std::unique_ptr<Transaction>> ObjectStore::BeginReadOnly() {
  std::shared_ptr<SnapshotState> snap;
  {
    std::lock_guard<std::mutex> lock(snap_mu_);
    uint64_t version = data_version_.load(std::memory_order_acquire);
    if (snapshot_ != nullptr && snapshot_->version != version) {
      // A write commit moved the partition past this snapshot. Retire it;
      // the last pinned reader (or this call, if none is left) deallocates.
      snapshot_->retired = true;
      if (snapshot_->refs == 0) {
        DeallocSnapshotLocked(*snapshot_);
      }
      snapshot_ = nullptr;
    }
    if (snapshot_ == nullptr) {
      TDB_ASSIGN_OR_RETURN(PartitionId copy_id, chunks_->AllocatePartition());
      ChunkStore::Batch batch;
      batch.CopyPartition(copy_id, partition_);
      TDB_RETURN_IF_ERROR(chunks_->Commit(std::move(batch)));
      snapshot_ = std::make_shared<SnapshotState>();
      snapshot_->copy_id = copy_id;
      snapshot_->version = version;
      obs::Count("snapshot.created");
    } else {
      obs::Count("snapshot.reused");
    }
    snapshot_->refs++;
    snap = snapshot_;
  }
  obs::SetGauge("snapshot.pins", pins_.fetch_add(1) + 1);
  return std::unique_ptr<Transaction>(
      new Transaction(this, next_txn_id_.fetch_add(1), std::move(snap)));
}

void ObjectStore::ReleaseSnapshot(const std::shared_ptr<SnapshotState>& snap) {
  {
    std::lock_guard<std::mutex> lock(snap_mu_);
    snap->refs--;
    if (snap->refs == 0 && snap->retired) {
      DeallocSnapshotLocked(*snap);
    }
  }
  obs::SetGauge("snapshot.pins", pins_.fetch_sub(1) - 1);
}

void ObjectStore::DeallocSnapshotLocked(const SnapshotState& snap) {
  // Best effort: a failed deallocation (e.g. poisoned store) strands the
  // copy until the store reopens, which recovery handles anyway.
  ChunkStore::Batch batch;
  batch.DeallocatePartition(snap.copy_id);
  Status st = chunks_->Commit(std::move(batch));
  (void)st;
  cache_.ErasePartition(snap.copy_id);
  obs::Count("snapshot.deallocated");
}

size_t ObjectStore::snapshot_pins() const {
  return pins_.load(std::memory_order_relaxed);
}

std::optional<ObjectPtr> ObjectStore::CacheGet(const ObjectId& id) {
  std::optional<ObjectPtr> hit = cache_.Get(id);
  if (hit.has_value()) {
    obs::Count("cache.shard_hits");
    obs::Count("object.cache_hits");
    obs::TraceEmit(obs::TraceKind::kCacheHit, "object_cache",
                   id.position.rank);
  } else {
    obs::Count("cache.shard_misses");
    obs::Count("object.cache_misses");
    obs::TraceEmit(obs::TraceKind::kCacheMiss, "object_cache",
                   id.position.rank);
  }
  return hit;
}

void ObjectStore::CachePut(const ObjectId& id, ObjectPtr object) {
  cache_.Put(id, std::move(object));
}

void ObjectStore::CacheErase(const ObjectId& id) { cache_.Erase(id); }

Result<ObjectPtr> ObjectStore::LoadObject(const ObjectId& id) {
  TDB_ASSIGN_OR_RETURN(Bytes pickled, chunks_->Read(id));
  return registry_->Unpickle(pickled);
}

ObjectStore::OpCounts ObjectStore::counts() const {
  OpCounts out;
  out.reads = counts_.reads.load(std::memory_order_relaxed);
  out.updates = counts_.updates.load(std::memory_order_relaxed);
  out.deletes = counts_.deletes.load(std::memory_order_relaxed);
  out.adds = counts_.adds.load(std::memory_order_relaxed);
  out.commits = counts_.commits.load(std::memory_order_relaxed);
  return out;
}

void ObjectStore::ResetCounts() {
  counts_.reads.store(0, std::memory_order_relaxed);
  counts_.updates.store(0, std::memory_order_relaxed);
  counts_.deletes.store(0, std::memory_order_relaxed);
  counts_.adds.store(0, std::memory_order_relaxed);
  counts_.commits.store(0, std::memory_order_relaxed);
}

size_t ObjectStore::cache_size() const { return cache_.size(); }

// ---------------------------------------------------------------------------
// Transaction

Transaction::~Transaction() {
  if (active_) {
    Abort();
  }
}

void Transaction::ReleasePin() {
  if (snapshot_ != nullptr) {
    store_->ReleaseSnapshot(snapshot_);
    snapshot_.reset();
  }
}

Result<ObjectPtr> Transaction::GetSnapshot(ObjectId id) {
  // The snapshot copy shares positions with the source partition, so the
  // caller-visible id maps to the copy by swapping the partition. No locks:
  // the copy is immutable while pinned.
  ObjectId snap_id(snapshot_->copy_id, id.position);
  store_->counts_.reads.fetch_add(1, std::memory_order_relaxed);
  if (std::optional<ObjectPtr> cached = store_->CacheGet(snap_id)) {
    return *cached;
  }
  TDB_ASSIGN_OR_RETURN(ObjectPtr object, store_->LoadObject(snap_id));
  store_->CachePut(snap_id, object);
  return object;
}

Result<ObjectPtr> Transaction::GetInternal(ObjectId id, LockMode mode) {
  ProfileScope scope("object_store");
  if (!active_) {
    return FailedPreconditionError("transaction is finished");
  }
  if (read_only_) {
    if (mode != LockMode::kShared) {
      return FailedPreconditionError(
          "cannot lock for update in a read-only transaction");
    }
    return GetSnapshot(id);
  }
  TDB_RETURN_IF_ERROR(store_->locks_.Acquire(txn_id_, id, mode));
  store_->counts_.reads.fetch_add(1, std::memory_order_relaxed);
  auto pending = write_set_.find(id);
  if (pending != write_set_.end()) {
    if (!pending->second.has_value()) {
      return NotFoundError("object deleted in this transaction");
    }
    return *pending->second;
  }
  if (std::optional<ObjectPtr> cached = store_->CacheGet(id)) {
    return *cached;
  }
  TDB_ASSIGN_OR_RETURN(ObjectPtr object, store_->LoadObject(id));
  store_->CachePut(id, object);
  return object;
}

Result<ObjectPtr> Transaction::Get(ObjectId id) {
  return GetInternal(id, LockMode::kShared);
}

Result<ObjectPtr> Transaction::GetForUpdate(ObjectId id) {
  return GetInternal(id, LockMode::kExclusive);
}

Result<ObjectId> Transaction::Insert(ObjectPtr object) {
  ProfileScope scope("object_store");
  if (!active_) {
    return FailedPreconditionError("transaction is finished");
  }
  if (read_only_) {
    return FailedPreconditionError("read-only transaction cannot insert");
  }
  if (object == nullptr) {
    return InvalidArgumentError("cannot insert a null object");
  }
  TDB_ASSIGN_OR_RETURN(ObjectId id,
                       store_->chunks_->AllocateChunk(store_->partition_));
  TDB_RETURN_IF_ERROR(
      store_->locks_.Acquire(txn_id_, id, LockMode::kExclusive));
  write_set_[id] = std::move(object);
  store_->counts_.adds.fetch_add(1, std::memory_order_relaxed);
  return id;
}

Status Transaction::Put(ObjectId id, ObjectPtr object) {
  ProfileScope scope("object_store");
  if (!active_) {
    return FailedPreconditionError("transaction is finished");
  }
  if (read_only_) {
    return FailedPreconditionError("read-only transaction cannot put");
  }
  if (object == nullptr) {
    return InvalidArgumentError("cannot put a null object");
  }
  TDB_RETURN_IF_ERROR(
      store_->locks_.Acquire(txn_id_, id, LockMode::kExclusive));
  write_set_[id] = std::move(object);
  store_->counts_.updates.fetch_add(1, std::memory_order_relaxed);
  return OkStatus();
}

Status Transaction::Delete(ObjectId id) {
  ProfileScope scope("object_store");
  if (!active_) {
    return FailedPreconditionError("transaction is finished");
  }
  if (read_only_) {
    return FailedPreconditionError("read-only transaction cannot delete");
  }
  TDB_RETURN_IF_ERROR(
      store_->locks_.Acquire(txn_id_, id, LockMode::kExclusive));
  auto pending = write_set_.find(id);
  bool inserted_here =
      pending != write_set_.end() && pending->second.has_value() &&
      !store_->chunks_->ChunkWritten(id);
  if (inserted_here) {
    // Inserted and deleted within this transaction: nothing to persist.
    write_set_.erase(pending);
  } else {
    if (pending == write_set_.end() && !store_->chunks_->ChunkWritten(id)) {
      return NotFoundError("object " + id.ToString() + " does not exist");
    }
    write_set_[id] = std::nullopt;
  }
  store_->counts_.deletes.fetch_add(1, std::memory_order_relaxed);
  return OkStatus();
}

Status Transaction::Commit() {
  ProfileScope scope("object_store");
  if (!active_) {
    return FailedPreconditionError("transaction is finished");
  }
  if (read_only_) {
    ReleasePin();
    active_ = false;
    return OkStatus();
  }
  ChunkStore::Batch batch;
  for (const auto& [id, value] : write_set_) {
    if (value.has_value()) {
      batch.WriteChunk(id, store_->registry_->Pickle(**value));
    } else if (store_->chunks_->ChunkWritten(id)) {
      batch.DeallocateChunk(id);
    }
  }
  bool wrote = !batch.empty();
  // With group commit enabled the call parks on the queue and a leader
  // flushes a merged batch; either way the call returns only once this
  // transaction's writes are durable (or failed). The write locks acquired
  // above are held across the wait, which is what makes merging safe.
  Status status =
      store_->group_commit_ != nullptr
          ? store_->group_commit_->Commit(std::move(batch))
          : (store_->options_.commit_chain != nullptr
                 ? store_->options_.commit_chain->Commit(std::move(batch))
                 : store_->chunks_->Commit(std::move(batch)));
  if (status.ok()) {
    for (auto& [id, value] : write_set_) {
      if (value.has_value()) {
        store_->CachePut(id, std::move(*value));
      } else {
        store_->CacheErase(id);
      }
    }
    if (wrote) {
      // Retires the current read snapshot: the next BeginReadOnly copies
      // afresh. An atomic bump, not snap_mu_ — writers never wait on
      // snapshot bookkeeping.
      store_->data_version_.fetch_add(1, std::memory_order_acq_rel);
    }
    store_->counts_.commits.fetch_add(1, std::memory_order_relaxed);
    obs::Count("object.txn_commits");
  }
  write_set_.clear();
  store_->locks_.ReleaseAll(txn_id_);
  active_ = false;
  return status;
}

void Transaction::Abort() {
  if (read_only_) {
    ReleasePin();
    active_ = false;
    return;
  }
  write_set_.clear();
  store_->locks_.ReleaseAll(txn_id_);
  active_ = false;
}

}  // namespace tdb
