#include "src/object/object_store.h"

#include "src/obs/metrics.h"
#include "src/obs/profiler.h"
#include "src/obs/trace.h"

namespace tdb {

ObjectStore::ObjectStore(ChunkStore* chunks, PartitionId partition,
                         const TypeRegistry* registry,
                         ObjectStoreOptions options)
    : chunks_(chunks),
      partition_(partition),
      registry_(registry),
      options_(options),
      locks_(options.lock_timeout) {
  if (options_.group_commit) {
    group_commit_ = std::make_unique<GroupCommitQueue>(
        chunks_, options_.group_commit_max_batch);
  }
}

std::unique_ptr<Transaction> ObjectStore::Begin() {
  return std::unique_ptr<Transaction>(
      new Transaction(this, next_txn_id_.fetch_add(1)));
}

std::optional<ObjectPtr> ObjectStore::CacheGet(const ObjectId& id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(id);
  if (it == cache_.end()) {
    obs::Count("object.cache_misses");
    obs::TraceEmit(obs::TraceKind::kCacheMiss, "object_cache",
                   id.position.rank);
    return std::nullopt;
  }
  lru_.erase(it->second.lru_it);
  lru_.push_front(id);
  it->second.lru_it = lru_.begin();
  obs::Count("object.cache_hits");
  obs::TraceEmit(obs::TraceKind::kCacheHit, "object_cache", id.position.rank);
  return it->second.object;
}

void ObjectStore::CachePut(const ObjectId& id, ObjectPtr object) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(id);
  if (it != cache_.end()) {
    it->second.object = std::move(object);
    lru_.erase(it->second.lru_it);
    lru_.push_front(id);
    it->second.lru_it = lru_.begin();
    return;
  }
  lru_.push_front(id);
  cache_[id] = CacheEntry{std::move(object), lru_.begin()};
  while (cache_.size() > options_.cache_capacity && !lru_.empty()) {
    ObjectId victim = lru_.back();
    lru_.pop_back();
    obs::Count("object.cache_evictions");
    obs::TraceEmit(obs::TraceKind::kCacheEviction, "object_cache",
                   victim.position.rank);
    cache_.erase(victim);
  }
}

void ObjectStore::CacheErase(const ObjectId& id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(id);
  if (it != cache_.end()) {
    lru_.erase(it->second.lru_it);
    cache_.erase(it);
  }
}

Result<ObjectPtr> ObjectStore::LoadObject(const ObjectId& id) {
  TDB_ASSIGN_OR_RETURN(Bytes pickled, chunks_->Read(id));
  return registry_->Unpickle(pickled);
}

ObjectStore::OpCounts ObjectStore::counts() const {
  OpCounts out;
  out.reads = counts_.reads.load(std::memory_order_relaxed);
  out.updates = counts_.updates.load(std::memory_order_relaxed);
  out.deletes = counts_.deletes.load(std::memory_order_relaxed);
  out.adds = counts_.adds.load(std::memory_order_relaxed);
  out.commits = counts_.commits.load(std::memory_order_relaxed);
  return out;
}

void ObjectStore::ResetCounts() {
  counts_.reads.store(0, std::memory_order_relaxed);
  counts_.updates.store(0, std::memory_order_relaxed);
  counts_.deletes.store(0, std::memory_order_relaxed);
  counts_.adds.store(0, std::memory_order_relaxed);
  counts_.commits.store(0, std::memory_order_relaxed);
}

size_t ObjectStore::cache_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.size();
}

// ---------------------------------------------------------------------------
// Transaction

Transaction::~Transaction() {
  if (active_) {
    Abort();
  }
}

Result<ObjectPtr> Transaction::GetInternal(ObjectId id, LockMode mode) {
  ProfileScope scope("object_store");
  if (!active_) {
    return FailedPreconditionError("transaction is finished");
  }
  TDB_RETURN_IF_ERROR(store_->locks_.Acquire(txn_id_, id, mode));
  store_->counts_.reads.fetch_add(1, std::memory_order_relaxed);
  auto pending = write_set_.find(id);
  if (pending != write_set_.end()) {
    if (!pending->second.has_value()) {
      return NotFoundError("object deleted in this transaction");
    }
    return *pending->second;
  }
  if (std::optional<ObjectPtr> cached = store_->CacheGet(id)) {
    return *cached;
  }
  TDB_ASSIGN_OR_RETURN(ObjectPtr object, store_->LoadObject(id));
  store_->CachePut(id, object);
  return object;
}

Result<ObjectPtr> Transaction::Get(ObjectId id) {
  return GetInternal(id, LockMode::kShared);
}

Result<ObjectPtr> Transaction::GetForUpdate(ObjectId id) {
  return GetInternal(id, LockMode::kExclusive);
}

Result<ObjectId> Transaction::Insert(ObjectPtr object) {
  ProfileScope scope("object_store");
  if (!active_) {
    return FailedPreconditionError("transaction is finished");
  }
  if (object == nullptr) {
    return InvalidArgumentError("cannot insert a null object");
  }
  TDB_ASSIGN_OR_RETURN(ObjectId id,
                       store_->chunks_->AllocateChunk(store_->partition_));
  TDB_RETURN_IF_ERROR(
      store_->locks_.Acquire(txn_id_, id, LockMode::kExclusive));
  write_set_[id] = std::move(object);
  store_->counts_.adds.fetch_add(1, std::memory_order_relaxed);
  return id;
}

Status Transaction::Put(ObjectId id, ObjectPtr object) {
  ProfileScope scope("object_store");
  if (!active_) {
    return FailedPreconditionError("transaction is finished");
  }
  if (object == nullptr) {
    return InvalidArgumentError("cannot put a null object");
  }
  TDB_RETURN_IF_ERROR(
      store_->locks_.Acquire(txn_id_, id, LockMode::kExclusive));
  write_set_[id] = std::move(object);
  store_->counts_.updates.fetch_add(1, std::memory_order_relaxed);
  return OkStatus();
}

Status Transaction::Delete(ObjectId id) {
  ProfileScope scope("object_store");
  if (!active_) {
    return FailedPreconditionError("transaction is finished");
  }
  TDB_RETURN_IF_ERROR(
      store_->locks_.Acquire(txn_id_, id, LockMode::kExclusive));
  auto pending = write_set_.find(id);
  bool inserted_here =
      pending != write_set_.end() && pending->second.has_value() &&
      !store_->chunks_->ChunkWritten(id);
  if (inserted_here) {
    // Inserted and deleted within this transaction: nothing to persist.
    write_set_.erase(pending);
  } else {
    if (pending == write_set_.end() && !store_->chunks_->ChunkWritten(id)) {
      return NotFoundError("object " + id.ToString() + " does not exist");
    }
    write_set_[id] = std::nullopt;
  }
  store_->counts_.deletes.fetch_add(1, std::memory_order_relaxed);
  return OkStatus();
}

Status Transaction::Commit() {
  ProfileScope scope("object_store");
  if (!active_) {
    return FailedPreconditionError("transaction is finished");
  }
  ChunkStore::Batch batch;
  for (const auto& [id, value] : write_set_) {
    if (value.has_value()) {
      batch.WriteChunk(id, store_->registry_->Pickle(**value));
    } else if (store_->chunks_->ChunkWritten(id)) {
      batch.DeallocateChunk(id);
    }
  }
  // With group commit enabled the call parks on the queue and a leader
  // flushes a merged batch; either way the call returns only once this
  // transaction's writes are durable (or failed). The write locks acquired
  // above are held across the wait, which is what makes merging safe.
  Status status = store_->group_commit_ != nullptr
                      ? store_->group_commit_->Commit(std::move(batch))
                      : store_->chunks_->Commit(std::move(batch));
  if (status.ok()) {
    for (auto& [id, value] : write_set_) {
      if (value.has_value()) {
        store_->CachePut(id, std::move(*value));
      } else {
        store_->CacheErase(id);
      }
    }
    store_->counts_.commits.fetch_add(1, std::memory_order_relaxed);
    obs::Count("object.txn_commits");
  }
  write_set_.clear();
  store_->locks_.ReleaseAll(txn_id_);
  active_ = false;
  return status;
}

void Transaction::Abort() {
  write_set_.clear();
  store_->locks_.ReleaseAll(txn_id_);
  active_ = false;
}

}  // namespace tdb
