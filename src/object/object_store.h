// The object store (§7): type-safe, transactional access to named objects.
//
// Each object is stored in its own chunk (the paper's choice: smaller commit
// volume, simpler cache, at the cost of inter-object clustering — which the
// cache makes unimportant). Transactions use two-phase locking with timeout
// deadlock breaking and no-steal buffering: modified objects stay in the
// transaction's write set until commit, when they are committed to the chunk
// store in one atomic batch.
//
// Read-only transactions (BeginReadOnly) bypass two-phase locking entirely:
// they pin a copy-on-write partition snapshot (§5.1 CopyPartition) and read
// from it. Snapshots are created lazily — the first read-only transaction
// after a write commit copies the partition; later read-only transactions
// share that copy until the next write commit retires it — and a snapshot is
// deallocated when its last reader drains. A read-only transaction therefore
// sees a consistent image as of its Begin, never blocks or is blocked by
// writers, and never touches the LockManager.
//
// The object cache holds decrypted, validated, unpickled objects — caching
// at this level is what makes repeated access cheap (§3). It is sharded
// (per-shard mutex + LRU) so concurrent readers do not serialize on one
// cache lock; snapshot reads are cached under the snapshot copy's partition
// id, so they can never observe post-snapshot writes.
//
// Threading contract (audited for the networked service layer):
//  * ObjectStore itself is thread-safe: Begin(), BeginReadOnly(), the object
//    cache, the counters, the lock manager, and the underlying ChunkStore
//    may all be driven from many threads at once.
//  * A Transaction is confined to one thread at a time — calls on the same
//    transaction must not race (including its destructor). Different
//    transactions may run on different threads concurrently; two-phase
//    locking with timeout deadlock breaking keeps read-write transactions
//    serializable, and a caller whose operation returns kTimeout must abort
//    and retry.
//  * Read-only transactions take no locks: their reads go through the
//    sharded object cache (leaf mutexes, held for pointer operations only)
//    and, below it, the chunk store. They serialize before every write
//    commit that follows their snapshot and after every one that precedes
//    it.
//  * The TypeRegistry must be fully registered before the first Begin() and
//    is read-only afterwards; ObjectPtr values are immutable, so a cached
//    object may be handed to any number of threads.
//  * With options.group_commit set, concurrent Transaction::Commit calls
//    park on a GroupCommitQueue and a leader flushes them as one chunk-store
//    batch. Each caller still holds its write locks while parked and is
//    acknowledged only after the shared flush, so a successful Commit()
//    implies durability exactly as in the solo path. See group_commit.h for
//    the failure-coupling caveat.

#ifndef SRC_OBJECT_OBJECT_STORE_H_
#define SRC_OBJECT_OBJECT_STORE_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "src/chunk/chunk_store.h"
#include "src/common/sharded_cache.h"
#include "src/object/group_commit.h"
#include "src/object/lock_manager.h"
#include "src/object/pickler.h"

namespace tdb {

using ObjectId = ChunkId;

struct ObjectStoreOptions {
  std::chrono::milliseconds lock_timeout{500};
  size_t cache_capacity = 4096;  // objects
  // Object-cache shards; 0 = next power of two >= hardware concurrency.
  size_t cache_shards = 0;

  // Coalesce concurrent Transaction::Commit calls into shared chunk-store
  // batch commits (group commit). Worth it when many threads/sessions
  // commit concurrently; a solo committer pays one extra queue hop.
  bool group_commit = false;
  // Most transactions one leader may merge into a single batch.
  size_t group_commit_max_batch = 64;
  // Optional store-level queue this store's commits chain into (two-level
  // group commit; see group_commit.h). With group_commit set, the store's
  // own queue leader submits merged batches there; without it, every write
  // commit parks there directly. The sharded service points every partition
  // engine at one combiner so batches from different partitions share a
  // flush. Must outlive the store. nullptr = commit straight to the chunk
  // store.
  GroupCommitQueue* commit_chain = nullptr;
};

class ObjectStore;

// A pinned copy-on-write snapshot shared by concurrent read-only
// transactions. Guarded by ObjectStore::snap_mu_ (refs/retired); copy_id and
// version are immutable once published.
struct SnapshotState {
  PartitionId copy_id = 0;
  uint64_t version = 0;  // data_version_ the copy was taken at
  size_t refs = 0;       // read-only transactions currently pinning it
  bool retired = false;  // superseded; deallocate when refs drains to 0
};

// A serializable transaction. Not thread-safe itself; different transactions
// may run on different threads. Destroying an uncommitted transaction aborts
// it.
class Transaction {
 public:
  ~Transaction();
  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  // Reads an object under a shared lock (lock-free against a pinned snapshot
  // for read-only transactions).
  Result<ObjectPtr> Get(ObjectId id);
  // Reads under an exclusive lock (avoids upgrade deadlocks when the caller
  // knows it will write). Fails on read-only transactions.
  Result<ObjectPtr> GetForUpdate(ObjectId id);

  // Creates a new object; its id is stable immediately (usable in other
  // objects written by this same transaction, §4.1).
  Result<ObjectId> Insert(ObjectPtr object);
  // Replaces an object's state.
  Status Put(ObjectId id, ObjectPtr object);
  // Removes an object.
  Status Delete(ObjectId id);

  // Atomically applies all buffered writes. The transaction is finished
  // afterwards (success or not). For a read-only transaction this just
  // releases the snapshot pin and always succeeds.
  Status Commit();
  // Discards all buffered writes and releases locks (or the snapshot pin).
  void Abort();

  bool active() const { return active_; }
  uint64_t id() const { return txn_id_; }
  bool read_only() const { return read_only_; }
  // Partition id of the pinned snapshot copy; 0 for read-write transactions.
  PartitionId snapshot_partition() const {
    return snapshot_ != nullptr ? snapshot_->copy_id : 0;
  }

 private:
  friend class ObjectStore;
  Transaction(ObjectStore* store, uint64_t txn_id)
      : store_(store), txn_id_(txn_id) {}
  Transaction(ObjectStore* store, uint64_t txn_id,
              std::shared_ptr<SnapshotState> snapshot)
      : store_(store),
        txn_id_(txn_id),
        read_only_(true),
        snapshot_(std::move(snapshot)) {}

  Result<ObjectPtr> GetInternal(ObjectId id, LockMode mode);
  Result<ObjectPtr> GetSnapshot(ObjectId id);
  void ReleasePin();

  ObjectStore* store_;
  uint64_t txn_id_;
  bool active_ = true;
  bool read_only_ = false;
  std::shared_ptr<SnapshotState> snapshot_;  // set iff read_only_
  // nullopt value = delete. No-steal: everything stays here until commit.
  std::unordered_map<ObjectId, std::optional<ObjectPtr>> write_set_;
};

class ObjectStore {
 public:
  // Objects live as chunks of `partition`; `registry` must outlive the store
  // and know every stored type.
  ObjectStore(ChunkStore* chunks, PartitionId partition,
              const TypeRegistry* registry, ObjectStoreOptions options = {});
  // Deallocates the current snapshot if no reader still pins it. Transactions
  // must not outlive the store.
  ~ObjectStore();

  std::unique_ptr<Transaction> Begin();

  // Begins a read-only snapshot transaction: pins the current COW partition
  // copy (creating one if the last write commit retired it) and serves every
  // Get from it without touching the LockManager. Fails only if the copy
  // cannot be created (e.g. the chunk store is poisoned or out of space).
  Result<std::unique_ptr<Transaction>> BeginReadOnly();

  PartitionId partition() const { return partition_; }
  ChunkStore* chunk_store() { return chunks_; }
  const TypeRegistry& registry() const { return *registry_; }

  // Operation counters in the shape of Figure 10. Maintained as relaxed
  // atomics so concurrent transactions never contend on a counter lock;
  // counts() is a consistent-enough snapshot for reporting, not a fence.
  struct OpCounts {
    uint64_t reads = 0;
    uint64_t updates = 0;
    uint64_t deletes = 0;
    uint64_t adds = 0;
    uint64_t commits = 0;
  };
  OpCounts counts() const;
  void ResetCounts();

  size_t cache_size() const;
  size_t cache_shards() const { return cache_.shard_count(); }
  // Read-only transactions currently pinning a snapshot (snapshot.pins).
  size_t snapshot_pins() const;
  // Commits parked on the group-commit queue right now; 0 when group commit
  // is disabled.
  size_t group_commit_queue_depth() const {
    return group_commit_ == nullptr ? 0 : group_commit_->depth();
  }

 private:
  friend class Transaction;

  // Cache access (sharded; see sharded_cache.h).
  std::optional<ObjectPtr> CacheGet(const ObjectId& id);
  void CachePut(const ObjectId& id, ObjectPtr object);
  void CacheErase(const ObjectId& id);

  Result<ObjectPtr> LoadObject(const ObjectId& id);

  // Snapshot lifecycle (snap_mu_). Release decrements the pin and
  // deallocates a retired snapshot when the last reader drains; Dealloc
  // commits the partition deallocation and purges the object cache.
  void ReleaseSnapshot(const std::shared_ptr<SnapshotState>& snap);
  void DeallocSnapshotLocked(const SnapshotState& snap);

  ChunkStore* chunks_;
  PartitionId partition_;
  const TypeRegistry* registry_;
  ObjectStoreOptions options_;
  LockManager locks_;
  std::unique_ptr<GroupCommitQueue> group_commit_;  // null when disabled

  ShardedLruCache<ObjectPtr> cache_;

  // Version of the partition's committed state: bumped by every successful
  // write commit. A snapshot taken at version V is current until the counter
  // moves past V; BeginReadOnly retires a stale snapshot and copies afresh.
  std::atomic<uint64_t> data_version_{0};

  // snap_mu_ guards snapshot_ and every SnapshotState's refs/retired. It is
  // ordered before the chunk store's mutex (snapshot creation/deallocation
  // commit under it) and is never taken by the write-commit path, so writers
  // do not serialize with snapshot bookkeeping.
  std::mutex snap_mu_;
  std::shared_ptr<SnapshotState> snapshot_;  // current (non-retired) snapshot
  std::atomic<size_t> pins_{0};

  std::atomic<uint64_t> next_txn_id_{1};
  struct CountCells {
    std::atomic<uint64_t> reads{0};
    std::atomic<uint64_t> updates{0};
    std::atomic<uint64_t> deletes{0};
    std::atomic<uint64_t> adds{0};
    std::atomic<uint64_t> commits{0};
  };
  CountCells counts_;
};

}  // namespace tdb

#endif  // SRC_OBJECT_OBJECT_STORE_H_
