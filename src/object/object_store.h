// The object store (§7): type-safe, transactional access to named objects.
//
// Each object is stored in its own chunk (the paper's choice: smaller commit
// volume, simpler cache, at the cost of inter-object clustering — which the
// cache makes unimportant). Transactions use two-phase locking with timeout
// deadlock breaking and no-steal buffering: modified objects stay in the
// transaction's write set until commit, when they are committed to the chunk
// store in one atomic batch.
//
// The object cache holds decrypted, validated, unpickled objects — caching
// at this level is what makes repeated access cheap (§3).
//
// Threading contract (audited for the networked service layer):
//  * ObjectStore itself is thread-safe: Begin(), the object cache, the
//    counters, the lock manager, and the underlying ChunkStore may all be
//    driven from many threads at once.
//  * A Transaction is confined to one thread at a time — calls on the same
//    transaction must not race (including its destructor). Different
//    transactions may run on different threads concurrently; two-phase
//    locking with timeout deadlock breaking keeps them serializable, and a
//    caller whose operation returns kTimeout must abort and retry.
//  * The TypeRegistry must be fully registered before the first Begin() and
//    is read-only afterwards; ObjectPtr values are immutable, so a cached
//    object may be handed to any number of threads.
//  * With options.group_commit set, concurrent Transaction::Commit calls
//    park on a GroupCommitQueue and a leader flushes them as one chunk-store
//    batch. Each caller still holds its write locks while parked and is
//    acknowledged only after the shared flush, so a successful Commit()
//    implies durability exactly as in the solo path. See group_commit.h for
//    the failure-coupling caveat.

#ifndef SRC_OBJECT_OBJECT_STORE_H_
#define SRC_OBJECT_OBJECT_STORE_H_

#include <atomic>
#include <chrono>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "src/chunk/chunk_store.h"
#include "src/object/group_commit.h"
#include "src/object/lock_manager.h"
#include "src/object/pickler.h"

namespace tdb {

using ObjectId = ChunkId;

struct ObjectStoreOptions {
  std::chrono::milliseconds lock_timeout{500};
  size_t cache_capacity = 4096;  // objects

  // Coalesce concurrent Transaction::Commit calls into shared chunk-store
  // batch commits (group commit). Worth it when many threads/sessions
  // commit concurrently; a solo committer pays one extra queue hop.
  bool group_commit = false;
  // Most transactions one leader may merge into a single batch.
  size_t group_commit_max_batch = 64;
};

class ObjectStore;

// A serializable transaction. Not thread-safe itself; different transactions
// may run on different threads. Destroying an uncommitted transaction aborts
// it.
class Transaction {
 public:
  ~Transaction();
  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  // Reads an object under a shared lock.
  Result<ObjectPtr> Get(ObjectId id);
  // Reads under an exclusive lock (avoids upgrade deadlocks when the caller
  // knows it will write).
  Result<ObjectPtr> GetForUpdate(ObjectId id);

  // Creates a new object; its id is stable immediately (usable in other
  // objects written by this same transaction, §4.1).
  Result<ObjectId> Insert(ObjectPtr object);
  // Replaces an object's state.
  Status Put(ObjectId id, ObjectPtr object);
  // Removes an object.
  Status Delete(ObjectId id);

  // Atomically applies all buffered writes. The transaction is finished
  // afterwards (success or not).
  Status Commit();
  // Discards all buffered writes and releases locks.
  void Abort();

  bool active() const { return active_; }
  uint64_t id() const { return txn_id_; }

 private:
  friend class ObjectStore;
  Transaction(ObjectStore* store, uint64_t txn_id)
      : store_(store), txn_id_(txn_id) {}

  Result<ObjectPtr> GetInternal(ObjectId id, LockMode mode);

  ObjectStore* store_;
  uint64_t txn_id_;
  bool active_ = true;
  // nullopt value = delete. No-steal: everything stays here until commit.
  std::unordered_map<ObjectId, std::optional<ObjectPtr>> write_set_;
};

class ObjectStore {
 public:
  // Objects live as chunks of `partition`; `registry` must outlive the store
  // and know every stored type.
  ObjectStore(ChunkStore* chunks, PartitionId partition,
              const TypeRegistry* registry, ObjectStoreOptions options = {});

  std::unique_ptr<Transaction> Begin();

  PartitionId partition() const { return partition_; }
  ChunkStore* chunk_store() { return chunks_; }
  const TypeRegistry& registry() const { return *registry_; }

  // Operation counters in the shape of Figure 10. Maintained as relaxed
  // atomics so concurrent transactions never contend on a counter lock;
  // counts() is a consistent-enough snapshot for reporting, not a fence.
  struct OpCounts {
    uint64_t reads = 0;
    uint64_t updates = 0;
    uint64_t deletes = 0;
    uint64_t adds = 0;
    uint64_t commits = 0;
  };
  OpCounts counts() const;
  void ResetCounts();

  size_t cache_size() const;

 private:
  friend class Transaction;

  // Cache access (store mutex).
  std::optional<ObjectPtr> CacheGet(const ObjectId& id);
  void CachePut(const ObjectId& id, ObjectPtr object);
  void CacheErase(const ObjectId& id);

  Result<ObjectPtr> LoadObject(const ObjectId& id);

  ChunkStore* chunks_;
  PartitionId partition_;
  const TypeRegistry* registry_;
  ObjectStoreOptions options_;
  LockManager locks_;
  std::unique_ptr<GroupCommitQueue> group_commit_;  // null when disabled

  // mu_ guards only the object cache; it is never held while calling into
  // the chunk store or the lock manager, so it cannot participate in a
  // deadlock cycle with them.
  mutable std::mutex mu_;
  struct CacheEntry {
    ObjectPtr object;
    std::list<ObjectId>::iterator lru_it;
  };
  std::unordered_map<ObjectId, CacheEntry> cache_;
  std::list<ObjectId> lru_;

  std::atomic<uint64_t> next_txn_id_{1};
  struct CountCells {
    std::atomic<uint64_t> reads{0};
    std::atomic<uint64_t> updates{0};
    std::atomic<uint64_t> deletes{0};
    std::atomic<uint64_t> adds{0};
    std::atomic<uint64_t> commits{0};
  };
  CountCells counts_;
};

}  // namespace tdb

#endif  // SRC_OBJECT_OBJECT_STORE_H_
