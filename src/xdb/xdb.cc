#include "src/xdb/xdb.h"

#include "src/common/pickle.h"

namespace tdb {

namespace {
constexpr uint32_t kXdbMagic = 0x58444201;  // "XDB" v1
}  // namespace

Result<std::unique_ptr<Xdb>> Xdb::Create(PageFile* data, AppendFile* log,
                                         XdbOptions options) {
  auto db = std::unique_ptr<Xdb>(new Xdb(data, log, options));
  if (data->page_count() == 0) {
    TDB_RETURN_IF_ERROR(data->Extend(1));  // header page
  }
  db->header_dirty_ = true;
  TDB_RETURN_IF_ERROR(db->StoreHeader());
  TDB_RETURN_IF_ERROR(db->pager_.FlushDirty());
  return db;
}

Result<std::unique_ptr<Xdb>> Xdb::Open(PageFile* data, AppendFile* log,
                                       XdbOptions options) {
  auto db = std::unique_ptr<Xdb>(new Xdb(data, log, options));
  // Redo: replay complete commits onto the data file, then drop the log.
  TDB_RETURN_IF_ERROR(db->wal_.Recover(
      [data](uint32_t page_no, ByteView contents) -> Status {
        if (page_no >= data->page_count()) {
          TDB_RETURN_IF_ERROR(data->Extend(page_no + 1));
        }
        return data->WritePage(page_no, contents);
      }));
  TDB_RETURN_IF_ERROR(data->Flush());
  TDB_RETURN_IF_ERROR(db->wal_.Checkpoint());
  TDB_RETURN_IF_ERROR(db->LoadHeader());
  return db;
}

Status Xdb::LoadHeader() {
  TDB_ASSIGN_OR_RETURN(Bytes page, pager_.Read(0));
  PickleReader r(page);
  if (r.ReadU32() != kXdbMagic) {
    return CorruptionError("not an XDB database");
  }
  uint64_t num_roots = r.ReadVarint();
  TDB_RETURN_IF_ERROR(r.Check());
  roots_.clear();
  for (uint64_t i = 0; i < num_roots; ++i) {
    std::string name = r.ReadString();
    uint32_t root = r.ReadU32();
    roots_[name] = root;
  }
  uint64_t num_free = r.ReadVarint();
  TDB_RETURN_IF_ERROR(r.Check());
  std::vector<uint32_t> free_pages;
  for (uint64_t i = 0; i < num_free; ++i) {
    free_pages.push_back(r.ReadU32());
  }
  TDB_RETURN_IF_ERROR(r.Check());
  pager_.SetFreeList(std::move(free_pages));
  return OkStatus();
}

Status Xdb::StoreHeader() {
  if (!header_dirty_) {
    return OkStatus();
  }
  PickleWriter w;
  w.WriteU32(kXdbMagic);
  w.WriteVarint(roots_.size());
  for (const auto& [name, root] : roots_) {
    w.WriteString(name);
    w.WriteU32(root);
  }
  std::vector<uint32_t> free_pages = pager_.free_list();
  w.WriteVarint(free_pages.size());
  for (uint32_t page : free_pages) {
    w.WriteU32(page);
  }
  TDB_RETURN_IF_ERROR(pager_.Write(0, w.Take()));
  header_dirty_ = false;
  return OkStatus();
}

Status Xdb::CreateTree(const std::string& name) {
  if (roots_.count(name) > 0) {
    return AlreadyExistsError("tree '" + name + "' exists");
  }
  TDB_ASSIGN_OR_RETURN(uint32_t root, BTree::CreateEmpty(&pager_));
  roots_[name] = root;
  header_dirty_ = true;
  return OkStatus();
}

bool Xdb::HasTree(const std::string& name) const {
  return roots_.count(name) > 0;
}

std::vector<std::string> Xdb::TreeNames() const {
  std::vector<std::string> names;
  names.reserve(roots_.size());
  for (const auto& [name, _] : roots_) {
    names.push_back(name);
  }
  return names;
}

Result<BTree> Xdb::TreeFor(const std::string& name) {
  auto it = roots_.find(name);
  if (it == roots_.end()) {
    return NotFoundError("no tree named '" + name + "'");
  }
  return BTree(&pager_, it->second);
}

Status Xdb::SaveRoot(const std::string& name, uint32_t root) {
  if (roots_[name] != root) {
    roots_[name] = root;
    header_dirty_ = true;
  }
  return OkStatus();
}

Status Xdb::Put(const std::string& tree, ByteView key, ByteView value) {
  TDB_ASSIGN_OR_RETURN(BTree btree, TreeFor(tree));
  TDB_RETURN_IF_ERROR(btree.Put(key, value));
  return SaveRoot(tree, btree.root());
}

Result<Bytes> Xdb::Get(const std::string& tree, ByteView key) {
  TDB_ASSIGN_OR_RETURN(BTree btree, TreeFor(tree));
  return btree.Get(key);
}

Status Xdb::Delete(const std::string& tree, ByteView key) {
  TDB_ASSIGN_OR_RETURN(BTree btree, TreeFor(tree));
  TDB_RETURN_IF_ERROR(btree.Delete(key));
  return SaveRoot(tree, btree.root());
}

Status Xdb::Scan(const std::string& tree, ByteView lo, ByteView hi,
                 const BTree::ScanFn& fn) {
  TDB_ASSIGN_OR_RETURN(BTree btree, TreeFor(tree));
  return btree.Scan(lo, hi, fn);
}

Status Xdb::ScanAll(const std::string& tree, const BTree::ScanFn& fn) {
  TDB_ASSIGN_OR_RETURN(BTree btree, TreeFor(tree));
  return btree.ScanAll(fn);
}

Status Xdb::Commit() {
  TDB_RETURN_IF_ERROR(StoreHeader());
  const auto& dirty = pager_.dirty_pages();
  if (dirty.empty()) {
    return OkStatus();
  }
  // 1. Make the redo log durable.
  TDB_RETURN_IF_ERROR(wal_.LogCommit(dirty));
  stats_.pages_logged += dirty.size();
  ++stats_.commits;
  if (options_.simulate_crash_after_log) {
    // Test hook: the data pages never reach the device; Open() must recover
    // them from the log.
    options_.simulate_crash_after_log = false;
    pager_.DropCache();
    return OkStatus();
  }
  // 2. Write the pages in place and flush the data file.
  return pager_.FlushDirty();
}

void Xdb::Abort() {
  pager_.DropCache();
  header_dirty_ = false;
  // Header and roots may have diverged from disk; reload.
  (void)LoadHeader();
}

}  // namespace tdb
