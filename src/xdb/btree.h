// A B+-tree over fixed-size pages: XDB's ordered index structure. Keys and
// values are byte strings; interior nodes hold separator keys, leaves are
// chained for range scans. Nodes are (de)serialized whole from their pages,
// which keeps the layout logic simple at a small CPU cost.

#ifndef SRC_XDB_BTREE_H_
#define SRC_XDB_BTREE_H_

#include <functional>
#include <optional>
#include <vector>

#include "src/xdb/pager.h"

namespace tdb {

class BTree {
 public:
  // Visits (key, value); return false to stop the scan.
  using ScanFn = std::function<bool(ByteView key, ByteView value)>;

  // Allocates an empty leaf root and returns its page number.
  static Result<uint32_t> CreateEmpty(Pager* pager);

  BTree(Pager* pager, uint32_t root_page)
      : pager_(pager), root_(root_page) {}

  // The root may move after structural changes; persist it after mutations.
  uint32_t root() const { return root_; }

  // Upserts. Fails with kInvalidArgument if the record cannot fit.
  Status Put(ByteView key, ByteView value);
  Result<Bytes> Get(ByteView key);
  Status Delete(ByteView key);

  // Inclusive range scan in key order.
  Status Scan(ByteView lo, ByteView hi, const ScanFn& fn);
  Status ScanAll(const ScanFn& fn);

  // Largest key+value the tree accepts (two records must fit in a page).
  size_t max_record_size() const;

  // Diagnostics: number of (leaf) records, via a full scan.
  Result<uint64_t> Count();

 private:
  struct LeafNode {
    std::vector<std::pair<Bytes, Bytes>> entries;
    uint32_t next_leaf = 0;  // 0 = none (page 0 is never a tree node)
  };
  struct InteriorNode {
    std::vector<Bytes> keys;        // keys[i] = min key of children[i+1]
    std::vector<uint32_t> children;  // keys.size() + 1
  };
  struct Node {
    bool is_leaf = true;
    LeafNode leaf;
    InteriorNode interior;
  };
  struct SplitResult {
    Bytes separator;  // min key of the new right sibling
    uint32_t right_page = 0;
  };

  Result<Node> ReadNode(uint32_t page_no);
  Status WriteNode(uint32_t page_no, const Node& node);
  static Bytes Serialize(const Node& node);
  static Result<Node> Deserialize(ByteView data);
  size_t NodeSizeLimit() const;

  Result<std::optional<SplitResult>> PutRec(uint32_t page_no, ByteView key,
                                            ByteView value);
  Result<bool> DeleteRec(uint32_t page_no, ByteView key);

  Pager* pager_;
  uint32_t root_;
};

}  // namespace tdb

#endif  // SRC_XDB_BTREE_H_
