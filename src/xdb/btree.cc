#include "src/xdb/btree.h"

#include <algorithm>

#include "src/common/pickle.h"
#include "src/obs/metrics.h"

namespace tdb {

namespace {

bool Less(ByteView a, ByteView b) {
  return std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end());
}

bool Equal(ByteView a, ByteView b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

bool LessEqual(ByteView a, ByteView b) { return !Less(b, a); }

}  // namespace

Result<uint32_t> BTree::CreateEmpty(Pager* pager) {
  TDB_ASSIGN_OR_RETURN(uint32_t page, pager->AllocatePage());
  BTree tree(pager, page);
  Node node;
  node.is_leaf = true;
  TDB_RETURN_IF_ERROR(tree.WriteNode(page, node));
  return page;
}

Bytes BTree::Serialize(const Node& node) {
  PickleWriter w;
  w.WriteU8(node.is_leaf ? 1 : 2);
  if (node.is_leaf) {
    w.WriteU32(node.leaf.next_leaf);
    w.WriteVarint(node.leaf.entries.size());
    for (const auto& [key, value] : node.leaf.entries) {
      w.WriteBytes(key);
      w.WriteBytes(value);
    }
  } else {
    w.WriteVarint(node.interior.keys.size());
    for (const Bytes& key : node.interior.keys) {
      w.WriteBytes(key);
    }
    for (uint32_t child : node.interior.children) {
      w.WriteU32(child);
    }
  }
  return w.Take();
}

Result<BTree::Node> BTree::Deserialize(ByteView data) {
  PickleReader r(data);
  Node node;
  uint8_t type = r.ReadU8();
  if (type == 1) {
    node.is_leaf = true;
    node.leaf.next_leaf = r.ReadU32();
    uint64_t n = r.ReadVarint();
    TDB_RETURN_IF_ERROR(r.Check());
    node.leaf.entries.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      Bytes key = r.ReadBytes();
      Bytes value = r.ReadBytes();
      node.leaf.entries.emplace_back(std::move(key), std::move(value));
    }
  } else if (type == 2) {
    node.is_leaf = false;
    uint64_t n = r.ReadVarint();
    TDB_RETURN_IF_ERROR(r.Check());
    node.interior.keys.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      node.interior.keys.push_back(r.ReadBytes());
    }
    node.interior.children.reserve(n + 1);
    for (uint64_t i = 0; i < n + 1; ++i) {
      node.interior.children.push_back(r.ReadU32());
    }
  } else {
    return CorruptionError("unknown b-tree node type");
  }
  TDB_RETURN_IF_ERROR(r.Check());
  return node;
}

Result<BTree::Node> BTree::ReadNode(uint32_t page_no) {
  TDB_ASSIGN_OR_RETURN(Bytes page, pager_->Read(page_no));
  return Deserialize(page);
}

Status BTree::WriteNode(uint32_t page_no, const Node& node) {
  return pager_->Write(page_no, Serialize(node));
}

size_t BTree::NodeSizeLimit() const { return pager_->page_size() - 16; }

size_t BTree::max_record_size() const { return (NodeSizeLimit() - 32) / 2; }

Result<std::optional<BTree::SplitResult>> BTree::PutRec(uint32_t page_no,
                                                        ByteView key,
                                                        ByteView value) {
  TDB_ASSIGN_OR_RETURN(Node node, ReadNode(page_no));
  if (node.is_leaf) {
    auto pos = std::lower_bound(
        node.leaf.entries.begin(), node.leaf.entries.end(), key,
        [](const auto& entry, ByteView k) { return Less(entry.first, k); });
    if (pos != node.leaf.entries.end() && Equal(pos->first, key)) {
      pos->second.assign(value.begin(), value.end());
    } else {
      node.leaf.entries.insert(pos, {Bytes(key.begin(), key.end()),
                                     Bytes(value.begin(), value.end())});
    }
    if (Serialize(node).size() <= NodeSizeLimit()) {
      TDB_RETURN_IF_ERROR(WriteNode(page_no, node));
      return std::optional<SplitResult>{};
    }
    // Split the leaf in half.
    obs::Count("xdb.btree_leaf_splits");
    size_t mid = node.leaf.entries.size() / 2;
    Node right;
    right.is_leaf = true;
    right.leaf.entries.assign(node.leaf.entries.begin() + mid,
                              node.leaf.entries.end());
    node.leaf.entries.resize(mid);
    right.leaf.next_leaf = node.leaf.next_leaf;
    TDB_ASSIGN_OR_RETURN(uint32_t right_page, pager_->AllocatePage());
    node.leaf.next_leaf = right_page;
    TDB_RETURN_IF_ERROR(WriteNode(right_page, right));
    TDB_RETURN_IF_ERROR(WriteNode(page_no, node));
    SplitResult split;
    split.separator = right.leaf.entries.front().first;
    split.right_page = right_page;
    return std::optional<SplitResult>(std::move(split));
  }

  // Interior: pick the child whose range contains key.
  size_t idx = std::upper_bound(node.interior.keys.begin(),
                                node.interior.keys.end(), key,
                                [](ByteView k, const Bytes& sep) {
                                  return Less(k, sep);
                                }) -
               node.interior.keys.begin();
  TDB_ASSIGN_OR_RETURN(std::optional<SplitResult> child_split,
                       PutRec(node.interior.children[idx], key, value));
  if (!child_split.has_value()) {
    return std::optional<SplitResult>{};
  }
  node.interior.keys.insert(node.interior.keys.begin() + idx,
                            child_split->separator);
  node.interior.children.insert(node.interior.children.begin() + idx + 1,
                                child_split->right_page);
  if (Serialize(node).size() <= NodeSizeLimit()) {
    TDB_RETURN_IF_ERROR(WriteNode(page_no, node));
    return std::optional<SplitResult>{};
  }
  // Split the interior node: the middle key moves up.
  obs::Count("xdb.btree_interior_splits");
  size_t mid = node.interior.keys.size() / 2;
  Node right;
  right.is_leaf = false;
  Bytes separator = node.interior.keys[mid];
  right.interior.keys.assign(node.interior.keys.begin() + mid + 1,
                             node.interior.keys.end());
  right.interior.children.assign(node.interior.children.begin() + mid + 1,
                                 node.interior.children.end());
  node.interior.keys.resize(mid);
  node.interior.children.resize(mid + 1);
  TDB_ASSIGN_OR_RETURN(uint32_t right_page, pager_->AllocatePage());
  TDB_RETURN_IF_ERROR(WriteNode(right_page, right));
  TDB_RETURN_IF_ERROR(WriteNode(page_no, node));
  SplitResult split;
  split.separator = std::move(separator);
  split.right_page = right_page;
  return std::optional<SplitResult>(std::move(split));
}

Status BTree::Put(ByteView key, ByteView value) {
  if (key.size() + value.size() > max_record_size()) {
    return InvalidArgumentError("record too large for b-tree page");
  }
  TDB_ASSIGN_OR_RETURN(std::optional<SplitResult> split,
                       PutRec(root_, key, value));
  if (split.has_value()) {
    Node new_root;
    new_root.is_leaf = false;
    new_root.interior.keys.push_back(split->separator);
    new_root.interior.children.push_back(root_);
    new_root.interior.children.push_back(split->right_page);
    TDB_ASSIGN_OR_RETURN(uint32_t new_root_page, pager_->AllocatePage());
    TDB_RETURN_IF_ERROR(WriteNode(new_root_page, new_root));
    root_ = new_root_page;
  }
  return OkStatus();
}

Result<Bytes> BTree::Get(ByteView key) {
  uint32_t page_no = root_;
  while (true) {
    TDB_ASSIGN_OR_RETURN(Node node, ReadNode(page_no));
    if (node.is_leaf) {
      auto pos = std::lower_bound(
          node.leaf.entries.begin(), node.leaf.entries.end(), key,
          [](const auto& entry, ByteView k) { return Less(entry.first, k); });
      if (pos != node.leaf.entries.end() && Equal(pos->first, key)) {
        return pos->second;
      }
      return NotFoundError("key not found");
    }
    size_t idx = std::upper_bound(node.interior.keys.begin(),
                                  node.interior.keys.end(), key,
                                  [](ByteView k, const Bytes& sep) {
                                    return Less(k, sep);
                                  }) -
                 node.interior.keys.begin();
    page_no = node.interior.children[idx];
  }
}

Result<bool> BTree::DeleteRec(uint32_t page_no, ByteView key) {
  TDB_ASSIGN_OR_RETURN(Node node, ReadNode(page_no));
  if (node.is_leaf) {
    auto pos = std::lower_bound(
        node.leaf.entries.begin(), node.leaf.entries.end(), key,
        [](const auto& entry, ByteView k) { return Less(entry.first, k); });
    if (pos == node.leaf.entries.end() || !Equal(pos->first, key)) {
      return false;
    }
    node.leaf.entries.erase(pos);
    TDB_RETURN_IF_ERROR(WriteNode(page_no, node));
    return true;
  }
  size_t idx = std::upper_bound(node.interior.keys.begin(),
                                node.interior.keys.end(), key,
                                [](ByteView k, const Bytes& sep) {
                                  return Less(k, sep);
                                }) -
               node.interior.keys.begin();
  // Underfull nodes are tolerated (no rebalancing): deletes are rare in the
  // intended workloads and lookups remain correct.
  return DeleteRec(node.interior.children[idx], key);
}

Status BTree::Delete(ByteView key) {
  TDB_ASSIGN_OR_RETURN(bool removed, DeleteRec(root_, key));
  if (!removed) {
    return NotFoundError("key not found");
  }
  return OkStatus();
}

Status BTree::Scan(ByteView lo, ByteView hi, const ScanFn& fn) {
  // Descend to the leaf containing lo.
  uint32_t page_no = root_;
  while (true) {
    TDB_ASSIGN_OR_RETURN(Node node, ReadNode(page_no));
    if (node.is_leaf) {
      break;
    }
    size_t idx = std::upper_bound(node.interior.keys.begin(),
                                  node.interior.keys.end(), lo,
                                  [](ByteView k, const Bytes& sep) {
                                    return Less(k, sep);
                                  }) -
                 node.interior.keys.begin();
    page_no = node.interior.children[idx];
  }
  while (page_no != 0) {
    TDB_ASSIGN_OR_RETURN(Node node, ReadNode(page_no));
    for (const auto& [key, value] : node.leaf.entries) {
      if (Less(key, lo)) {
        continue;
      }
      if (!LessEqual(key, hi)) {
        return OkStatus();
      }
      if (!fn(key, value)) {
        return OkStatus();
      }
    }
    page_no = node.leaf.next_leaf;
  }
  return OkStatus();
}

Status BTree::ScanAll(const ScanFn& fn) {
  // Descend along the leftmost spine, then walk the leaf chain.
  uint32_t page_no = root_;
  while (true) {
    TDB_ASSIGN_OR_RETURN(Node node, ReadNode(page_no));
    if (node.is_leaf) {
      break;
    }
    page_no = node.interior.children[0];
  }
  while (page_no != 0) {
    TDB_ASSIGN_OR_RETURN(Node node, ReadNode(page_no));
    for (const auto& [key, value] : node.leaf.entries) {
      if (!fn(key, value)) {
        return OkStatus();
      }
    }
    page_no = node.leaf.next_leaf;
  }
  return OkStatus();
}

Result<uint64_t> BTree::Count() {
  uint64_t count = 0;
  TDB_RETURN_IF_ERROR(ScanAll([&count](ByteView, ByteView) {
    ++count;
    return true;
  }));
  return count;
}

}  // namespace tdb
