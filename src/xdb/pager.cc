#include "src/xdb/pager.h"

#include <algorithm>
#include <cstring>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace tdb {

Result<Bytes> MemPageFile::ReadPage(uint32_t page_no) const {
  if (page_no >= pages_.size()) {
    return InvalidArgumentError("page out of range");
  }
  return pages_[page_no];
}

Status MemPageFile::WritePage(uint32_t page_no, ByteView data) {
  if (page_no >= pages_.size()) {
    return InvalidArgumentError("page out of range");
  }
  if (data.size() > page_size_) {
    return InvalidArgumentError("page data too large");
  }
  Bytes& page = pages_[page_no];
  page.assign(data.begin(), data.end());
  page.resize(page_size_, 0);
  ++pages_written_;
  return OkStatus();
}

Status MemPageFile::Extend(uint32_t new_page_count) {
  if (new_page_count < pages_.size()) {
    return InvalidArgumentError("cannot shrink page file");
  }
  pages_.resize(new_page_count, Bytes(page_size_, 0));
  return OkStatus();
}

Status MemPageFile::Flush() {
  ++flush_count_;
  return OkStatus();
}

Status MemAppendFile::Append(ByteView data) {
  tdb::Append(data_, data);
  return OkStatus();
}

Status MemAppendFile::Flush() {
  ++flush_count_;
  return OkStatus();
}

Status MemAppendFile::Truncate() {
  data_.clear();
  return OkStatus();
}

void Pager::Touch(uint32_t page_no) {
  auto it = cache_.find(page_no);
  if (it != cache_.end()) {
    lru_.erase(it->second.lru_it);
    lru_.push_front(page_no);
    it->second.lru_it = lru_.begin();
  }
}

void Pager::InsertClean(uint32_t page_no, Bytes data) {
  lru_.push_front(page_no);
  cache_[page_no] = Entry{std::move(data), lru_.begin()};
  while (cache_.size() > capacity_ && !lru_.empty()) {
    // Evict the least recently used non-dirty page.
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
      if (dirty_.count(*it) == 0) {
        uint32_t victim = *it;
        lru_.erase(std::next(it).base());
        cache_.erase(victim);
        obs::Count("xdb.page_cache_evictions");
        obs::TraceEmit(obs::TraceKind::kCacheEviction, "xdb_pager", victim);
        break;
      }
    }
    break;  // only one eviction attempt per insert
  }
}

Result<Bytes> Pager::Read(uint32_t page_no) {
  auto dirty_it = dirty_.find(page_no);
  if (dirty_it != dirty_.end()) {
    ++hits_;
    obs::Count("xdb.page_cache_hits");
    obs::TraceEmit(obs::TraceKind::kCacheHit, "xdb_pager", page_no);
    return dirty_it->second;
  }
  auto it = cache_.find(page_no);
  if (it != cache_.end()) {
    ++hits_;
    obs::Count("xdb.page_cache_hits");
    obs::TraceEmit(obs::TraceKind::kCacheHit, "xdb_pager", page_no);
    Touch(page_no);
    return it->second.data;
  }
  ++misses_;
  obs::Count("xdb.page_cache_misses");
  obs::TraceEmit(obs::TraceKind::kCacheMiss, "xdb_pager", page_no);
  TDB_ASSIGN_OR_RETURN(Bytes data, file_->ReadPage(page_no));
  InsertClean(page_no, data);
  return data;
}

Status Pager::Write(uint32_t page_no, Bytes data) {
  if (data.size() > page_size()) {
    return InvalidArgumentError("page data exceeds page size");
  }
  dirty_[page_no] = std::move(data);
  return OkStatus();
}

Result<uint32_t> Pager::AllocatePage() {
  if (!free_pages_.empty()) {
    uint32_t page = free_pages_.back();
    free_pages_.pop_back();
    return page;
  }
  uint32_t page = file_->page_count();
  TDB_RETURN_IF_ERROR(file_->Extend(page + 1));
  return page;
}

void Pager::SetFreeList(std::vector<uint32_t> free_pages) {
  free_pages_ = std::move(free_pages);
}

void Pager::FreePage(uint32_t page_no) {
  dirty_.erase(page_no);
  auto it = cache_.find(page_no);
  if (it != cache_.end()) {
    lru_.erase(it->second.lru_it);
    cache_.erase(it);
  }
  free_pages_.push_back(page_no);
}

Status Pager::FlushDirty() {
  // Write in page-number order: deterministic device traffic (crash-point
  // replays must see the same write sequence every run) and sequential I/O.
  std::vector<uint32_t> order;
  order.reserve(dirty_.size());
  for (const auto& [page_no, data] : dirty_) {
    order.push_back(page_no);
  }
  std::sort(order.begin(), order.end());
  for (uint32_t page_no : order) {
    const Bytes& data = dirty_[page_no];
    TDB_RETURN_IF_ERROR(file_->WritePage(page_no, data));
    // Refresh the clean cache with the flushed contents.
    auto it = cache_.find(page_no);
    if (it != cache_.end()) {
      it->second.data = data;
    } else {
      InsertClean(page_no, data);
    }
  }
  dirty_.clear();
  return file_->Flush();
}

void Pager::DropCache() {
  cache_.clear();
  lru_.clear();
  dirty_.clear();
}

}  // namespace tdb
