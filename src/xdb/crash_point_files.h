// Crash-point injection wrappers for XDB's storage devices (see
// src/common/crash_point.h for the protocol).
//
// Point inventory:
//   PageFile::WritePage    one point, tearable — a torn page keeps the old
//                          contents with a prefix of the new data over it
//   PageFile::Extend       one point (crash = the file was never extended)
//   PageFile::Flush        one point
//   AppendFile::Append     one point, tearable (prefix of the record appended)
//   AppendFile::Flush      one point
//   AppendFile::Truncate   one point (crash = the log was never truncated)
// Reads pass through until the crash trips and fail afterwards.

#ifndef SRC_XDB_CRASH_POINT_FILES_H_
#define SRC_XDB_CRASH_POINT_FILES_H_

#include "src/common/crash_point.h"
#include "src/xdb/pager.h"

namespace tdb {

class CrashPointPageFile final : public PageFile {
 public:
  CrashPointPageFile(PageFile* base, CrashPointController* controller)
      : base_(base), controller_(controller) {}

  size_t page_size() const override { return base_->page_size(); }
  uint32_t page_count() const override { return base_->page_count(); }
  Result<Bytes> ReadPage(uint32_t page_no) const override;
  Status WritePage(uint32_t page_no, ByteView data) override;
  Status Extend(uint32_t new_page_count) override;
  Status Flush() override;

 private:
  PageFile* base_;
  CrashPointController* controller_;
};

class CrashPointAppendFile final : public AppendFile {
 public:
  CrashPointAppendFile(AppendFile* base, CrashPointController* controller)
      : base_(base), controller_(controller) {}

  Status Append(ByteView data) override;
  Status Flush() override;
  Result<Bytes> ReadAll() const override;
  Status Truncate() override;
  uint64_t size() const override { return base_->size(); }

 private:
  AppendFile* base_;
  CrashPointController* controller_;
};

}  // namespace tdb

#endif  // SRC_XDB_CRASH_POINT_FILES_H_
