#include "src/xdb/crypto_layer.h"

namespace tdb {

Bytes SecureXdb::MacInput(const std::string& tree, ByteView key,
                          ByteView value) const {
  PickleWriter w;
  w.WriteString(tree);
  w.WriteBytes(key);
  w.WriteBytes(value);
  return w.Take();
}

Status SecureXdb::Put(const std::string& tree, ByteView key, ByteView value) {
  Bytes ciphertext = suite_.Encrypt(value);
  Bytes mac = suite_.Mac(MacInput(tree, key, value));
  PickleWriter w;
  w.WriteBytes(ciphertext);
  w.WriteBytes(mac);
  return db_->Put(tree, key, w.data());
}

Result<Bytes> SecureXdb::Get(const std::string& tree, ByteView key) {
  TDB_ASSIGN_OR_RETURN(Bytes stored, db_->Get(tree, key));
  PickleReader r(stored);
  Bytes ciphertext = r.ReadBytes();
  Bytes mac = r.ReadBytes();
  TDB_RETURN_IF_ERROR(r.Done());
  Result<Bytes> value = suite_.Decrypt(ciphertext);
  if (!value.ok()) {
    return TamperDetectedError("record fails to decrypt");
  }
  if (!ConstantTimeEqual(suite_.Mac(MacInput(tree, key, *value)), mac)) {
    return TamperDetectedError("record MAC mismatch");
  }
  return value;
}

Status SecureXdb::Delete(const std::string& tree, ByteView key) {
  return db_->Delete(tree, key);
}

Status SecureXdb::Scan(const std::string& tree, ByteView lo, ByteView hi,
                       const BTree::ScanFn& fn) {
  Status verify = OkStatus();
  TDB_RETURN_IF_ERROR(db_->Scan(
      tree, lo, hi, [&](ByteView key, ByteView stored) {
        PickleReader r(stored);
        Bytes ciphertext = r.ReadBytes();
        Bytes mac = r.ReadBytes();
        if (!r.Done().ok()) {
          verify = TamperDetectedError("malformed stored record");
          return false;
        }
        Result<Bytes> value = suite_.Decrypt(ciphertext);
        if (!value.ok() ||
            !ConstantTimeEqual(suite_.Mac(MacInput(tree, key, *value)), mac)) {
          verify = TamperDetectedError("record fails validation during scan");
          return false;
        }
        return fn(key, *value);
      }));
  return verify;
}

Status SecureXdb::Commit() {
  TDB_RETURN_IF_ERROR(db_->Commit());
  ++commit_count_;
  if (commit_count_ % flush_interval_ == 0) {
    TDB_ASSIGN_OR_RETURN(uint64_t current, counter_->Read());
    TDB_RETURN_IF_ERROR(counter_->AdvanceTo(current + flush_interval_));
  }
  return OkStatus();
}

}  // namespace tdb
