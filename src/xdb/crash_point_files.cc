#include "src/xdb/crash_point_files.h"

#include <cstring>

namespace tdb {

Result<Bytes> CrashPointPageFile::ReadPage(uint32_t page_no) const {
  if (controller_->crashed()) return CrashPointController::CrashedStatus();
  return base_->ReadPage(page_no);
}

Status CrashPointPageFile::WritePage(uint32_t page_no, ByteView data) {
  switch (controller_->OnPoint()) {
    case CrashPointController::Decision::kProceed:
      return base_->WritePage(page_no, data);
    case CrashPointController::Decision::kCrashNow: {
      size_t keep = controller_->TornPrefix(data.size());
      if (keep > 0) {
        // A torn in-place page update: the sectors already written carry the
        // new data, the rest still carry the old page.
        Result<Bytes> old = base_->ReadPage(page_no);
        if (old.ok()) {
          Bytes merged = std::move(*old);
          if (merged.size() < data.size()) merged.resize(data.size(), 0);
          std::memcpy(merged.data(), data.data(), keep);
          (void)base_->WritePage(page_no, merged);
        }
      }
      return CrashPointController::CrashedStatus();
    }
    case CrashPointController::Decision::kDead:
      break;
  }
  return CrashPointController::CrashedStatus();
}

Status CrashPointPageFile::Extend(uint32_t new_page_count) {
  if (controller_->OnPoint() == CrashPointController::Decision::kProceed) {
    return base_->Extend(new_page_count);
  }
  return CrashPointController::CrashedStatus();
}

Status CrashPointPageFile::Flush() {
  if (controller_->OnPoint() == CrashPointController::Decision::kProceed) {
    return base_->Flush();
  }
  return CrashPointController::CrashedStatus();
}

Status CrashPointAppendFile::Append(ByteView data) {
  switch (controller_->OnPoint()) {
    case CrashPointController::Decision::kProceed:
      return base_->Append(data);
    case CrashPointController::Decision::kCrashNow: {
      size_t keep = controller_->TornPrefix(data.size());
      if (keep > 0) (void)base_->Append(data.first(keep));
      return CrashPointController::CrashedStatus();
    }
    case CrashPointController::Decision::kDead:
      break;
  }
  return CrashPointController::CrashedStatus();
}

Status CrashPointAppendFile::Flush() {
  if (controller_->OnPoint() == CrashPointController::Decision::kProceed) {
    return base_->Flush();
  }
  return CrashPointController::CrashedStatus();
}

Result<Bytes> CrashPointAppendFile::ReadAll() const {
  if (controller_->crashed()) return CrashPointController::CrashedStatus();
  return base_->ReadAll();
}

Status CrashPointAppendFile::Truncate() {
  if (controller_->OnPoint() == CrashPointController::Decision::kProceed) {
    return base_->Truncate();
  }
  return CrashPointController::CrashedStatus();
}

}  // namespace tdb
