// XDB: a conventional page-based embedded database, the baseline system of
// §9.5. Named B+-trees over a pager with a write-ahead redo log. Commits
// flush the log and then write dirty pages in place and flush the data file
// — the "multiple disk writes at commit" the paper measures against TDB's
// single sequential log append.
//
// XDB provides NO trust properties on its own; SecureXdb (crypto_layer.h)
// layers encryption and MACs on top of it, the architecture the paper argues
// against (§1.2: the layer "would not protect the metadata inside the
// database system").

#ifndef SRC_XDB_XDB_H_
#define SRC_XDB_XDB_H_

#include <map>
#include <memory>
#include <string>

#include "src/xdb/btree.h"
#include "src/xdb/wal.h"

namespace tdb {

struct XdbOptions {
  size_t cache_pages = 512;
  // Test hook: the next Commit makes the log durable but "crashes" before
  // writing the data pages, to exercise WAL recovery.
  bool simulate_crash_after_log = false;
};

class Xdb {
 public:
  static Result<std::unique_ptr<Xdb>> Create(PageFile* data, AppendFile* log,
                                             XdbOptions options = {});
  // Opens an existing database, replaying the write-ahead log.
  static Result<std::unique_ptr<Xdb>> Open(PageFile* data, AppendFile* log,
                                           XdbOptions options = {});

  Status CreateTree(const std::string& name);
  bool HasTree(const std::string& name) const;
  std::vector<std::string> TreeNames() const;

  // Mutations are buffered in the page cache until Commit.
  Status Put(const std::string& tree, ByteView key, ByteView value);
  Result<Bytes> Get(const std::string& tree, ByteView key);
  Status Delete(const std::string& tree, ByteView key);
  Status Scan(const std::string& tree, ByteView lo, ByteView hi,
              const BTree::ScanFn& fn);
  Status ScanAll(const std::string& tree, const BTree::ScanFn& fn);

  // Atomically applies all buffered mutations (log flush + in-place page
  // writes + data flush).
  Status Commit();
  // Discards all buffered mutations.
  void Abort();

  // Truncates the WAL once the data file is known durable.
  Status Checkpoint() { return wal_.Checkpoint(); }

  struct Stats {
    uint64_t commits = 0;
    uint64_t pages_logged = 0;
    uint64_t log_bytes = 0;
  };
  Stats stats() const { return stats_; }

  void set_simulate_crash_after_log(bool v) {
    options_.simulate_crash_after_log = v;
  }

 private:
  Xdb(PageFile* data, AppendFile* log, XdbOptions options)
      : options_(options), pager_(data, options.cache_pages), wal_(log) {}

  Status LoadHeader();
  Status StoreHeader();
  Result<BTree> TreeFor(const std::string& name);
  Status SaveRoot(const std::string& name, uint32_t root);

  XdbOptions options_;
  Pager pager_;
  Wal wal_;
  std::map<std::string, uint32_t> roots_;
  bool header_dirty_ = false;
  Stats stats_;
};

}  // namespace tdb

#endif  // SRC_XDB_XDB_H_
