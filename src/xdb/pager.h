// Page-oriented storage for XDB, the conventional embedded-database baseline
// of §9.5. XDB is deliberately built the way embedded databases of the
// paper's era were: fixed-size pages updated in place, a page cache, and a
// write-ahead redo log — which is why it performs "multiple disk writes at
// commit" (§9.5.2), the cost TDB's log-structured design avoids.

#ifndef SRC_XDB_PAGER_H_
#define SRC_XDB_PAGER_H_

#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"

namespace tdb {

// Random-access fixed-page storage.
class PageFile {
 public:
  virtual ~PageFile() = default;
  virtual size_t page_size() const = 0;
  virtual uint32_t page_count() const = 0;
  virtual Result<Bytes> ReadPage(uint32_t page_no) const = 0;
  virtual Status WritePage(uint32_t page_no, ByteView data) = 0;
  virtual Status Extend(uint32_t new_page_count) = 0;
  virtual Status Flush() = 0;
};

// Append-only byte stream with truncation (the WAL device).
class AppendFile {
 public:
  virtual ~AppendFile() = default;
  virtual Status Append(ByteView data) = 0;
  virtual Status Flush() = 0;
  virtual Result<Bytes> ReadAll() const = 0;
  virtual Status Truncate() = 0;
  virtual uint64_t size() const = 0;
};

class MemPageFile final : public PageFile {
 public:
  explicit MemPageFile(size_t page_size) : page_size_(page_size) {}

  size_t page_size() const override { return page_size_; }
  uint32_t page_count() const override {
    return static_cast<uint32_t>(pages_.size());
  }
  Result<Bytes> ReadPage(uint32_t page_no) const override;
  Status WritePage(uint32_t page_no, ByteView data) override;
  Status Extend(uint32_t new_page_count) override;
  Status Flush() override;

  uint64_t flush_count() const { return flush_count_; }
  uint64_t pages_written() const { return pages_written_; }

 private:
  size_t page_size_;
  std::vector<Bytes> pages_;
  uint64_t flush_count_ = 0;
  uint64_t pages_written_ = 0;
};

class MemAppendFile final : public AppendFile {
 public:
  Status Append(ByteView data) override;
  Status Flush() override;
  Result<Bytes> ReadAll() const override { return data_; }
  Status Truncate() override;
  uint64_t size() const override { return data_.size(); }

  uint64_t flush_count() const { return flush_count_; }

 private:
  Bytes data_;
  uint64_t flush_count_ = 0;
};

// LRU page cache over a PageFile, with dirty-page tracking. Pages are plain
// byte buffers; callers parse/serialize node structures.
class Pager {
 public:
  Pager(PageFile* file, size_t cache_pages)
      : file_(file), capacity_(cache_pages) {}

  size_t page_size() const { return file_->page_size(); }

  // Returns a copy of the page contents (through the cache).
  Result<Bytes> Read(uint32_t page_no);
  // Buffers new contents for the page; durable only after FlushDirty.
  Status Write(uint32_t page_no, Bytes data);

  Result<uint32_t> AllocatePage();
  // Note: freed pages are recycled through an in-memory free list persisted
  // in the header by the caller (XDB keeps it in page 0).
  void SetFreeList(std::vector<uint32_t> free_pages);
  std::vector<uint32_t> free_list() const { return free_pages_; }
  void FreePage(uint32_t page_no);

  const std::unordered_map<uint32_t, Bytes>& dirty_pages() const {
    return dirty_;
  }
  // Writes all dirty pages in place and flushes the device.
  Status FlushDirty();
  // Discards all cached state (transaction abort / crash simulation).
  void DropCache();

  uint64_t cache_hits() const { return hits_; }
  uint64_t cache_misses() const { return misses_; }

 private:
  void Touch(uint32_t page_no);
  void InsertClean(uint32_t page_no, Bytes data);

  PageFile* file_;
  size_t capacity_;
  struct Entry {
    Bytes data;
    std::list<uint32_t>::iterator lru_it;
  };
  std::unordered_map<uint32_t, Entry> cache_;
  std::list<uint32_t> lru_;
  std::unordered_map<uint32_t, Bytes> dirty_;  // pinned until flush
  std::vector<uint32_t> free_pages_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace tdb

#endif  // SRC_XDB_PAGER_H_
