#include "src/xdb/wal.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "src/common/pickle.h"
#include "src/crypto/sha256.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace tdb {

namespace {
constexpr uint32_t kCommitMarker = 0xC0FFEE01;
}  // namespace

Status Wal::LogCommit(const std::unordered_map<uint32_t, Bytes>& pages) {
  // Pickle pages in page-number order: hash-table iteration order must not
  // leak into the log image, or identical commits produce different WAL
  // bytes and break the byte-identical determinism the store layer promises.
  std::vector<std::pair<uint32_t, const Bytes*>> ordered;
  ordered.reserve(pages.size());
  for (const auto& [page_no, data] : pages) {
    ordered.emplace_back(page_no, &data);
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  PickleWriter w;
  w.WriteU32(static_cast<uint32_t>(ordered.size()));
  Sha256 check;
  for (const auto& [page_no, data] : ordered) {
    w.WriteU32(page_no);
    w.WriteBytes(*data);
    Bytes no_bytes;
    PutU32(no_bytes, page_no);
    check.Update(no_bytes);
    check.Update(*data);
  }
  w.WriteU32(kCommitMarker);
  w.WriteBytes(check.Finish());
  obs::Count("xdb.wal_appends");
  obs::Count("xdb.wal_bytes_appended", w.data().size());
  obs::TraceEmit(obs::TraceKind::kWalAppend, "xdb_wal", pages.size(),
                 w.data().size());
  TDB_RETURN_IF_ERROR(log_->Append(w.data()));
  return log_->Flush();
}

Status Wal::Recover(
    const std::function<Status(uint32_t page_no, ByteView data)>& apply) {
  TDB_ASSIGN_OR_RETURN(Bytes log, log_->ReadAll());
  PickleReader r(log);
  uint64_t commits_replayed = 0;
  uint64_t pages_replayed = 0;
  while (r.remaining() > 0) {
    uint32_t count = r.ReadU32();
    if (!r.ok()) {
      break;
    }
    std::vector<std::pair<uint32_t, Bytes>> pages;
    Sha256 check;
    bool truncated = false;
    for (uint32_t i = 0; i < count; ++i) {
      uint32_t page_no = r.ReadU32();
      Bytes data = r.ReadBytes();
      if (!r.ok()) {
        truncated = true;
        break;
      }
      Bytes no_bytes;
      PutU32(no_bytes, page_no);
      check.Update(no_bytes);
      check.Update(data);
      pages.emplace_back(page_no, std::move(data));
    }
    if (truncated) {
      break;
    }
    uint32_t marker = r.ReadU32();
    Bytes checksum = r.ReadBytes();
    if (!r.ok() || marker != kCommitMarker ||
        !ConstantTimeEqual(checksum, check.Finish())) {
      break;  // incomplete last commit: ignore it
    }
    for (const auto& [page_no, data] : pages) {
      TDB_RETURN_IF_ERROR(apply(page_no, data));
    }
    ++commits_replayed;
    pages_replayed += pages.size();
  }
  obs::Count("xdb.wal_commits_replayed", commits_replayed);
  obs::Count("xdb.wal_pages_replayed", pages_replayed);
  obs::TraceEmit(obs::TraceKind::kWalReplay, "xdb_wal", commits_replayed,
                 pages_replayed);
  return OkStatus();
}

}  // namespace tdb
