// XDB's write-ahead redo log: each commit appends the full images of its
// dirty pages followed by a commit marker, flushes the log, writes the pages
// in place, and flushes the data file — the classic embedded-DB commit path
// whose multiple synchronous writes the paper identifies as XDB's overhead
// (§9.5.2). Recovery replays complete commit records.

#ifndef SRC_XDB_WAL_H_
#define SRC_XDB_WAL_H_

#include <functional>
#include <unordered_map>

#include "src/xdb/pager.h"

namespace tdb {

class Wal {
 public:
  explicit Wal(AppendFile* log) : log_(log) {}

  // Appends one commit's page images + marker and flushes the log.
  Status LogCommit(const std::unordered_map<uint32_t, Bytes>& pages);

  // After the data file is known durable, the log can be discarded.
  Status Checkpoint() { return log_->Truncate(); }

  // Replays every *complete* commit record in order. `apply` writes a page
  // image to the data file.
  Status Recover(
      const std::function<Status(uint32_t page_no, ByteView data)>& apply);

 private:
  AppendFile* log_;
};

}  // namespace tdb

#endif  // SRC_XDB_WAL_H_
