// The "cryptography layered on top of a conventional database" architecture
// that the paper compares TDB against (§1.2, §9.5): records are encrypted
// and MACed before being handed to XDB, and a commit sequence number is kept
// in the tamper-resistant store.
//
// This layer deliberately has the weaknesses the paper describes:
//  * XDB's metadata (B-tree structure, the record *keys* used for ordering)
//    is not protected — an attacker with store access can delete or reorder
//    records undetectably at the storage level.
//  * Individual record replay is not detected (no hash tree over records).
//  * Ordered indexes over encrypted fields are impossible, so the layer
//    stores keys in plaintext to keep range queries working.
// TDB's integrated design is the fix; this layer exists to reproduce the
// paper's comparison, not as a recommended system.

#ifndef SRC_XDB_CRYPTO_LAYER_H_
#define SRC_XDB_CRYPTO_LAYER_H_

#include <memory>

#include "src/crypto/suite.h"
#include "src/platform/trusted_store.h"
#include "src/xdb/xdb.h"

namespace tdb {

class SecureXdb {
 public:
  // `counter` plays the role of the tamper-resistant store; a commit
  // sequence number is advanced once per `counter_flush_interval` commits,
  // mirroring TDB's delta_ut configuration (§9.1).
  SecureXdb(Xdb* db, CryptoSuite suite, MonotonicCounter* counter,
            uint32_t counter_flush_interval = 1)
      : db_(db),
        suite_(std::move(suite)),
        counter_(counter),
        flush_interval_(std::max<uint32_t>(counter_flush_interval, 1)) {}

  Status CreateTree(const std::string& name) { return db_->CreateTree(name); }

  // Values are encrypted and MACed (over tree || key || value).
  Status Put(const std::string& tree, ByteView key, ByteView value);
  Result<Bytes> Get(const std::string& tree, ByteView key);
  Status Delete(const std::string& tree, ByteView key);
  // Scans decrypt and verify each visited record.
  Status Scan(const std::string& tree, ByteView lo, ByteView hi,
              const BTree::ScanFn& fn);

  Status Commit();

  Xdb* raw() { return db_; }

 private:
  Bytes MacInput(const std::string& tree, ByteView key, ByteView value) const;

  Xdb* db_;
  CryptoSuite suite_;
  MonotonicCounter* counter_;
  uint32_t flush_interval_;
  uint64_t commit_count_ = 0;
};

}  // namespace tdb

#endif  // SRC_XDB_CRYPTO_LAYER_H_
