// Chunk naming (§4.3, §5.1).
//
// A chunk id is (partition, position) where position = (height, rank):
// height 0 holds data chunks, heights ≥ 1 hold map chunks, and the id of a
// chunk encodes its place in the chunk-map tree, so the map can be navigated
// by id arithmetic without storing ids explicitly. Partition leaders are the
// data chunks of the reserved *system* partition: the leader of partition P
// is chunk {kSystemPartition, 0, P}.

#ifndef SRC_CHUNK_CHUNK_ID_H_
#define SRC_CHUNK_CHUNK_ID_H_

#include <cstdint>
#include <functional>
#include <string>

namespace tdb {

using PartitionId = uint16_t;

// The system partition holds the partition map (§5.2).
inline constexpr PartitionId kSystemPartition = 0;

// Fanout of the chunk-map tree: descriptors per map chunk. The paper's
// experiments use 64 (§9.2.2).
inline constexpr uint64_t kMapFanout = 64;

struct ChunkPosition {
  uint8_t height = 0;  // 0 = data chunk, >=1 = map chunk
  uint64_t rank = 0;   // index from the left among chunks at this height

  ChunkPosition() = default;
  ChunkPosition(uint8_t h, uint64_t r) : height(h), rank(r) {}

  // The position of the map chunk whose descriptor vector covers this chunk.
  ChunkPosition Parent() const {
    return ChunkPosition(static_cast<uint8_t>(height + 1), rank / kMapFanout);
  }
  // This chunk's slot within its parent's descriptor vector.
  uint64_t SlotInParent() const { return rank % kMapFanout; }

  bool operator==(const ChunkPosition&) const = default;
  auto operator<=>(const ChunkPosition&) const = default;
};

struct ChunkId {
  PartitionId partition = 0;
  ChunkPosition position;

  ChunkId() = default;
  ChunkId(PartitionId p, ChunkPosition pos) : partition(p), position(pos) {}
  ChunkId(PartitionId p, uint8_t height, uint64_t rank)
      : partition(p), position(height, rank) {}

  bool operator==(const ChunkId&) const = default;
  auto operator<=>(const ChunkId&) const = default;

  std::string ToString() const;

  // Packs into 64 bits: 16-bit partition, 8-bit height, 40-bit rank.
  uint64_t Pack() const;
  static ChunkId Unpack(uint64_t packed);
};

// A chunk version's place in the untrusted store.
struct Location {
  uint32_t segment = 0;
  uint32_t offset = 0;

  bool operator==(const Location&) const = default;
  auto operator<=>(const Location&) const = default;

  uint64_t Pack() const {
    return static_cast<uint64_t>(segment) << 32 | offset;
  }
  static Location Unpack(uint64_t packed) {
    return Location{static_cast<uint32_t>(packed >> 32),
                    static_cast<uint32_t>(packed)};
  }
  std::string ToString() const;
};

}  // namespace tdb

template <>
struct std::hash<tdb::ChunkId> {
  size_t operator()(const tdb::ChunkId& id) const noexcept {
    return std::hash<uint64_t>()(id.Pack());
  }
};

#endif  // SRC_CHUNK_CHUNK_ID_H_
