#include "src/chunk/descriptor.h"

namespace tdb {

void Descriptor::Pickle(PickleWriter& w) const {
  w.WriteU8(static_cast<uint8_t>(status));
  if (status == ChunkStatus::kWritten) {
    w.WriteU32(location.segment);
    w.WriteU32(location.offset);
    w.WriteU32(stored_size);
    w.WriteBytes(hash);
  }
}

Result<Descriptor> Descriptor::Unpickle(PickleReader& r) {
  Descriptor d;
  uint8_t status = r.ReadU8();
  if (status > static_cast<uint8_t>(ChunkStatus::kFree)) {
    return CorruptionError("bad chunk status in descriptor");
  }
  d.status = static_cast<ChunkStatus>(status);
  if (d.status == ChunkStatus::kWritten) {
    d.location.segment = r.ReadU32();
    d.location.offset = r.ReadU32();
    d.stored_size = r.ReadU32();
    d.hash = r.ReadBytes();
  }
  TDB_RETURN_IF_ERROR(r.Check());
  return d;
}

Bytes MapChunk::Pickle() const {
  PickleWriter w;
  for (const Descriptor& d : slots) {
    d.Pickle(w);
  }
  return w.Take();
}

Result<MapChunk> MapChunk::Unpickle(ByteView data) {
  PickleReader r(data);
  MapChunk map;
  for (uint64_t i = 0; i < kMapFanout; ++i) {
    TDB_ASSIGN_OR_RETURN(map.slots[i], Descriptor::Unpickle(r));
  }
  TDB_RETURN_IF_ERROR(r.Done());
  return map;
}

void PartitionLeader::Pickle(PickleWriter& w) const {
  params.Pickle(w);
  w.WriteU8(tree_height);
  root.Pickle(w);
  w.WriteVarint(num_positions);
  w.WriteVarint(free_ranks.size());
  for (uint64_t rank : free_ranks) {
    w.WriteVarint(rank);
  }
  w.WriteVarint(copies.size());
  for (PartitionId p : copies) {
    w.WriteU16(p);
  }
  w.WriteU16(copied_from);
}

Result<PartitionLeader> PartitionLeader::Unpickle(PickleReader& r) {
  PartitionLeader leader;
  TDB_ASSIGN_OR_RETURN(leader.params, CryptoParams::Unpickle(r));
  leader.tree_height = r.ReadU8();
  TDB_ASSIGN_OR_RETURN(leader.root, Descriptor::Unpickle(r));
  leader.num_positions = r.ReadVarint();
  uint64_t num_free = r.ReadVarint();
  if (num_free > leader.num_positions) {
    return CorruptionError("free list larger than position space");
  }
  // Each free rank occupies at least one input byte; a count beyond the
  // remaining data is forged. Checking it bounds the reserve() below, which
  // would otherwise throw on an adversarial 2^60-entry count.
  if (!r.ok() || num_free > r.remaining()) {
    return CorruptionError("free list larger than input");
  }
  leader.free_ranks.reserve(num_free);
  for (uint64_t i = 0; i < num_free; ++i) {
    leader.free_ranks.push_back(r.ReadVarint());
  }
  uint64_t num_copies = r.ReadVarint();
  if (!r.ok() || num_copies > 65536) {
    return CorruptionError("bad copy list in leader");
  }
  leader.copies.reserve(num_copies);
  for (uint64_t i = 0; i < num_copies; ++i) {
    leader.copies.push_back(r.ReadU16());
  }
  leader.copied_from = r.ReadU16();
  TDB_RETURN_IF_ERROR(r.Check());
  return leader;
}

Bytes PartitionLeader::PickleToBytes() const {
  PickleWriter w;
  Pickle(w);
  return w.Take();
}

Result<PartitionLeader> PartitionLeader::UnpickleFromBytes(ByteView data) {
  PickleReader r(data);
  TDB_ASSIGN_OR_RETURN(PartitionLeader leader, Unpickle(r));
  TDB_RETURN_IF_ERROR(r.Done());
  return leader;
}

uint8_t PartitionLeader::HeightFor(uint64_t num_positions) {
  if (num_positions == 0) {
    return 0;
  }
  uint8_t height = 1;
  uint64_t covered = kMapFanout;
  while (covered < num_positions) {
    covered *= kMapFanout;
    ++height;
  }
  return height;
}

}  // namespace tdb
