#include "src/chunk/validator.h"

#include "src/common/pickle.h"
#include "src/obs/metrics.h"

namespace tdb {

Bytes DirectHashValidator::CurrentDigest() const {
  StreamingHash copy = stream_;
  return copy.Finish();
}

Status DirectHashValidator::WriteRegister(Location head, Location tail) {
  PickleWriter w;
  w.WriteBytes(CurrentDigest());
  w.WriteU64(head.Pack());
  w.WriteU64(tail.Pack());
  obs::Count("validator.register_writes");
  return reg_->Write(w.data());
}

Result<DirectHashValidator::RegisterState> DirectHashValidator::ReadRegister()
    const {
  TDB_ASSIGN_OR_RETURN(Bytes raw, reg_->Read());
  if (raw.empty()) {
    return NotFoundError("tamper-resistant register is empty");
  }
  PickleReader r(raw);
  RegisterState state;
  state.digest = r.ReadBytes();
  state.head = Location::Unpack(r.ReadU64());
  state.tail = Location::Unpack(r.ReadU64());
  TDB_RETURN_IF_ERROR(r.Done());
  return state;
}

Status CounterValidator::Init(uint64_t count) {
  count_ = count;
  TDB_ASSIGN_OR_RETURN(uint64_t trusted, counter_->Read());
  last_flushed_ = trusted;
  return OkStatus();
}

Status CounterValidator::MaybeFlush(bool force) {
  if (count_ <= last_flushed_) {
    return OkStatus();
  }
  if (!force && count_ - last_flushed_ < std::max<uint32_t>(delta_ut_, 1)) {
    return OkStatus();
  }
  obs::Count("validator.counter_flushes");
  TDB_RETURN_IF_ERROR(counter_->AdvanceTo(count_));
  last_flushed_ = count_;
  return OkStatus();
}

Status CounterValidator::RecoveryCheck(uint64_t log_count, uint32_t delta_tu) {
  TDB_ASSIGN_OR_RETURN(uint64_t trusted, counter_->Read());
  // The log may be ahead of the counter by at most delta_ut (unflushed
  // counter updates) and behind it by at most delta_tu (unflushed log).
  if (log_count + delta_tu < trusted) {
    return TamperDetectedError(
        "commit count in log is behind the trusted counter: commit sets were "
        "deleted or an old copy of the store was replayed");
  }
  // The log may legitimately be ahead by up to max(delta_ut, 1): the counter
  // write happens after the commit set is durable, so a crash in that window
  // leaves one (or, with lag, delta_ut) signed-but-uncounted commits. Being
  // ahead requires valid signed commit chunks, which an attacker cannot
  // forge, so accepting this window does not weaken replay protection.
  if (log_count > trusted + std::max<uint32_t>(delta_ut_, 1)) {
    return TamperDetectedError(
        "commit count in log is ahead of the trusted counter beyond the "
        "allowed window");
  }
  count_ = log_count;
  if (log_count > trusted) {
    TDB_RETURN_IF_ERROR(counter_->AdvanceTo(log_count));
    last_flushed_ = log_count;
  } else {
    last_flushed_ = trusted;
  }
  return OkStatus();
}

}  // namespace tdb
