// The descriptor cache of the chunk map (§4.5, §4.6).
//
// Validated descriptors are cached by chunk id. Descriptors updated by
// commits are buffered here as *dirty* entries: they are pinned (never
// evicted) until a checkpoint writes the affected map chunks, and the
// bottom-up search during reads guarantees a stale descriptor stored in a
// parent map chunk is never used while a dirty entry exists.

#ifndef SRC_CHUNK_CHUNK_MAP_H_
#define SRC_CHUNK_CHUNK_MAP_H_

#include <list>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/chunk/descriptor.h"

namespace tdb {

class DescriptorCache {
 public:
  explicit DescriptorCache(size_t capacity) : capacity_(capacity) {}

  // Looks up a descriptor, refreshing its LRU position.
  std::optional<Descriptor> Get(const ChunkId& id);

  // Inserts a clean (validated, persisted) descriptor if no entry exists;
  // may evict the least recently used clean entry.
  void PutClean(const ChunkId& id, const Descriptor& desc);

  // Inserts or overwrites with a dirty (buffered) descriptor.
  void PutDirty(const ChunkId& id, const Descriptor& desc);

  // Transitions one dirty entry to clean (after its map chunk was written).
  void MarkClean(const ChunkId& id);

  void Drop(const ChunkId& id);
  void DropPartition(PartitionId partition);

  size_t size() const { return entries_.size(); }
  size_t dirty_count() const { return dirty_count_; }

  // Dirty entries of one partition at one tree height, ordered by rank.
  std::vector<std::pair<ChunkId, Descriptor>> DirtyEntries(
      PartitionId partition, uint8_t height) const;

  // Partitions that currently have dirty entries at the given height.
  std::vector<PartitionId> DirtyPartitions(uint8_t height) const;

 private:
  struct Entry {
    Descriptor desc;
    bool dirty = false;
    std::list<ChunkId>::iterator lru_it;  // valid iff !dirty
  };

  void EvictIfNeeded();

  size_t capacity_;
  size_t dirty_count_ = 0;
  std::unordered_map<ChunkId, Entry> entries_;
  std::list<ChunkId> lru_;  // front = most recent; clean entries only
};

}  // namespace tdb

#endif  // SRC_CHUNK_CHUNK_MAP_H_
