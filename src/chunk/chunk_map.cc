#include "src/chunk/chunk_map.h"

#include <algorithm>

namespace tdb {

std::optional<Descriptor> DescriptorCache::Get(const ChunkId& id) {
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    return std::nullopt;
  }
  if (!it->second.dirty) {
    lru_.erase(it->second.lru_it);
    lru_.push_front(id);
    it->second.lru_it = lru_.begin();
  }
  return it->second.desc;
}

void DescriptorCache::PutClean(const ChunkId& id, const Descriptor& desc) {
  if (entries_.count(id) > 0) {
    return;  // never downgrade an existing (possibly dirty) entry
  }
  lru_.push_front(id);
  entries_[id] = Entry{desc, false, lru_.begin()};
  EvictIfNeeded();
}

void DescriptorCache::PutDirty(const ChunkId& id, const Descriptor& desc) {
  auto it = entries_.find(id);
  if (it != entries_.end()) {
    if (!it->second.dirty) {
      lru_.erase(it->second.lru_it);
      it->second.dirty = true;
      ++dirty_count_;
    }
    it->second.desc = desc;
    return;
  }
  entries_[id] = Entry{desc, true, lru_.end()};
  ++dirty_count_;
}

void DescriptorCache::MarkClean(const ChunkId& id) {
  auto it = entries_.find(id);
  if (it == entries_.end() || !it->second.dirty) {
    return;
  }
  it->second.dirty = false;
  --dirty_count_;
  lru_.push_front(id);
  it->second.lru_it = lru_.begin();
  EvictIfNeeded();
}

void DescriptorCache::Drop(const ChunkId& id) {
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    return;
  }
  if (it->second.dirty) {
    --dirty_count_;
  } else {
    lru_.erase(it->second.lru_it);
  }
  entries_.erase(it);
}

void DescriptorCache::DropPartition(PartitionId partition) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first.partition == partition) {
      if (it->second.dirty) {
        --dirty_count_;
      } else {
        lru_.erase(it->second.lru_it);
      }
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<std::pair<ChunkId, Descriptor>> DescriptorCache::DirtyEntries(
    PartitionId partition, uint8_t height) const {
  std::vector<std::pair<ChunkId, Descriptor>> out;
  for (const auto& [id, entry] : entries_) {
    if (entry.dirty && id.partition == partition &&
        id.position.height == height) {
      out.emplace_back(id, entry.desc);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

std::vector<PartitionId> DescriptorCache::DirtyPartitions(
    uint8_t height) const {
  std::vector<PartitionId> out;
  for (const auto& [id, entry] : entries_) {
    if (entry.dirty && id.position.height == height) {
      out.push_back(id.partition);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void DescriptorCache::EvictIfNeeded() {
  while (entries_.size() > capacity_ && !lru_.empty()) {
    ChunkId victim = lru_.back();
    lru_.pop_back();
    entries_.erase(victim);
  }
}

}  // namespace tdb
