#include "src/chunk/log_manager.h"

#include <algorithm>

#include "src/obs/metrics.h"

namespace tdb {

void SegmentInfo::Pickle(PickleWriter& w) const {
  w.WriteU8(static_cast<uint8_t>(state));
  w.WriteU32(bytes_used);
  w.WriteU32(live_bytes);
}

Result<SegmentInfo> SegmentInfo::Unpickle(PickleReader& r) {
  SegmentInfo info;
  uint8_t state = r.ReadU8();
  if (state > static_cast<uint8_t>(State::kCleaned)) {
    return CorruptionError("bad segment state");
  }
  info.state = static_cast<State>(state);
  info.bytes_used = r.ReadU32();
  info.live_bytes = r.ReadU32();
  TDB_RETURN_IF_ERROR(r.Check());
  return info;
}

Bytes SystemLeaderRecord::Pickle() const {
  PickleWriter w;
  system_tree.Pickle(w);
  w.WriteVarint(segments.size());
  for (const SegmentInfo& s : segments) {
    s.Pickle(w);
  }
  w.WriteU64(commit_count);
  return w.Take();
}

Result<SystemLeaderRecord> SystemLeaderRecord::Unpickle(ByteView data) {
  PickleReader r(data);
  SystemLeaderRecord rec;
  TDB_ASSIGN_OR_RETURN(rec.system_tree, PartitionLeader::Unpickle(r));
  uint64_t num_segments = r.ReadVarint();
  // Each SegmentInfo occupies at least one input byte, so a count beyond the
  // remaining data is forged — reject it before reserving memory for it.
  if (!r.ok() || num_segments > (1u << 24) || num_segments > r.remaining()) {
    return CorruptionError("bad segment table");
  }
  rec.segments.reserve(num_segments);
  for (uint64_t i = 0; i < num_segments; ++i) {
    TDB_ASSIGN_OR_RETURN(SegmentInfo info, SegmentInfo::Unpickle(r));
    rec.segments.push_back(info);
  }
  rec.commit_count = r.ReadU64();
  TDB_RETURN_IF_ERROR(r.Done());
  return rec;
}

LogManager::LogManager(UntrustedStore* store, const CryptoSuite* system_suite)
    : store_(store), system_suite_(system_suite) {
  segments_.resize(store->num_segments());
}

size_t LogManager::header_ct_size() const {
  return HeaderCipherSize(*system_suite_);
}

size_t LogManager::next_segment_blob_size() const {
  // NextSegmentRecord pickles to a fixed 4 bytes.
  return header_ct_size() + system_suite_->CiphertextSize(4);
}

size_t LogManager::max_blob_size() const {
  return segment_size() - next_segment_blob_size();
}

Status LogManager::InitFresh() {
  for (SegmentInfo& s : segments_) {
    s = SegmentInfo{};
  }
  segments_[0].state = SegmentInfo::State::kLive;
  residual_ = {0};
  tail_ = Location{0, 0};
  return OkStatus();
}

Status LogManager::LoadFromCheckpoint(std::vector<SegmentInfo> table,
                                      Location leader_loc,
                                      uint32_t leader_size) {
  if (table.size() != segments_.size()) {
    return CorruptionError("segment table size mismatch");
  }
  if (leader_loc.segment >= table.size() ||
      static_cast<size_t>(leader_loc.offset) + leader_size > segment_size()) {
    return TamperDetectedError("checkpoint leader location out of range");
  }
  segments_ = std::move(table);
  SegmentInfo& leader_seg = segments_[leader_loc.segment];
  leader_seg.state = SegmentInfo::State::kLive;
  leader_seg.bytes_used =
      std::max(leader_seg.bytes_used, leader_loc.offset + leader_size);
  leader_seg.live_bytes += leader_size;
  residual_ = {leader_loc.segment};
  tail_ = Location{leader_loc.segment, leader_loc.offset + leader_size};
  return OkStatus();
}

Result<uint32_t> LogManager::PickFreeSegment() {
  for (uint32_t i = 0; i < segments_.size(); ++i) {
    if (segments_[i].state == SegmentInfo::State::kFree) {
      return i;
    }
  }
  return OutOfSpaceError("no free segments in untrusted store");
}

Result<std::vector<Location>> LogManager::Append(
    const std::vector<Blob>& blobs,
    const std::function<void(ByteView, bool is_link)>& on_append) {
  std::vector<Location> locations;
  locations.reserve(blobs.size());
  const size_t seg_size = segment_size();
  const size_t reserve = next_segment_blob_size();

  for (const Blob& blob : blobs) {
    if (blob.bytes.size() > max_blob_size()) {
      return InvalidArgumentError("chunk version exceeds segment size");
    }
    if (tail_.offset + blob.bytes.size() + reserve > seg_size) {
      // Link to a fresh segment with a next-segment chunk.
      TDB_ASSIGN_OR_RETURN(uint32_t next, PickFreeSegment());
      NextSegmentRecord rec{next};
      Bytes body = system_suite_->Encrypt(rec.Pickle());
      VersionHeader header = VersionHeader::Unnamed(
          UnnamedType::kNextSegment, static_cast<uint32_t>(body.size()));
      Bytes link = EncodeHeader(*system_suite_, header);
      tdb::Append(link, body);
      TDB_RETURN_IF_ERROR(store_->Write(tail_.segment, tail_.offset, link));
      if (on_append) {
        on_append(link, /*is_link=*/true);
      }
      segments_[tail_.segment].bytes_used =
          tail_.offset + static_cast<uint32_t>(link.size());
      segments_[next].state = SegmentInfo::State::kLive;
      segments_[next].bytes_used = 0;
      segments_[next].live_bytes = 0;
      residual_.push_back(next);
      tail_ = Location{next, 0};
      obs::Count("log.segment_links");
    }
    TDB_RETURN_IF_ERROR(store_->Write(tail_.segment, tail_.offset, blob.bytes));
    if (on_append) {
      on_append(blob.bytes, /*is_link=*/false);
    }
    locations.push_back(tail_);
    SegmentInfo& info = segments_[tail_.segment];
    tail_.offset += static_cast<uint32_t>(blob.bytes.size());
    info.bytes_used = tail_.offset;
    if (blob.live) {
      info.live_bytes += static_cast<uint32_t>(blob.bytes.size());
    }
  }
  return locations;
}

void LogManager::ReleaseLive(Location loc, uint32_t size) {
  SegmentInfo& info = segments_[loc.segment];
  info.live_bytes = info.live_bytes >= size ? info.live_bytes - size : 0;
}

void LogManager::AddLive(Location loc, uint32_t size) {
  segments_[loc.segment].live_bytes += size;
}

void LogManager::SetTailForRecovery(Location tail) {
  tail_ = tail;
  segments_[tail.segment].state = SegmentInfo::State::kLive;
  segments_[tail.segment].bytes_used =
      std::max(segments_[tail.segment].bytes_used, tail.offset);
}

void LogManager::NoteScanned(uint32_t segment, uint32_t end_offset) {
  SegmentInfo& info = segments_[segment];
  info.state = SegmentInfo::State::kLive;
  info.bytes_used = std::max(info.bytes_used, end_offset);
}

void LogManager::SetResidualChain(std::vector<uint32_t> segments) {
  residual_ = std::move(segments);
}

void LogManager::OnCheckpointComplete(Location leader_loc) {
  // The residual log now starts at the leader; everything before it is
  // checkpointed log.
  auto it = std::find(residual_.begin(), residual_.end(), leader_loc.segment);
  if (it != residual_.end()) {
    residual_.erase(residual_.begin(), it);
  } else {
    residual_ = {leader_loc.segment};
  }
  // Cleaned segments are safe to reuse once the checkpointed tree no longer
  // references them.
  for (SegmentInfo& s : segments_) {
    if (s.state == SegmentInfo::State::kCleaned) {
      s = SegmentInfo{};
    }
  }
}

bool LogManager::InResidual(uint32_t segment) const {
  return std::find(residual_.begin(), residual_.end(), segment) !=
         residual_.end();
}

std::vector<uint32_t> LogManager::CleanableSegments() const {
  std::vector<uint32_t> out;
  for (uint32_t i = 0; i < segments_.size(); ++i) {
    const SegmentInfo& s = segments_[i];
    if (s.state == SegmentInfo::State::kLive && !InResidual(i) &&
        s.bytes_used > 0) {
      out.push_back(i);
    }
  }
  std::sort(out.begin(), out.end(), [this](uint32_t a, uint32_t b) {
    return segments_[a].live_bytes < segments_[b].live_bytes;
  });
  return out;
}

void LogManager::MarkCleaned(uint32_t segment) {
  segments_[segment].state = SegmentInfo::State::kCleaned;
  segments_[segment].live_bytes = 0;
}

uint32_t LogManager::free_segment_count() const {
  uint32_t n = 0;
  for (const SegmentInfo& s : segments_) {
    if (s.state == SegmentInfo::State::kFree) {
      ++n;
    }
  }
  return n;
}

uint64_t LogManager::total_live_bytes() const {
  uint64_t n = 0;
  for (const SegmentInfo& s : segments_) {
    n += s.live_bytes;
  }
  return n;
}

uint64_t LogManager::total_used_bytes() const {
  uint64_t n = 0;
  for (const SegmentInfo& s : segments_) {
    if (s.state != SegmentInfo::State::kFree) {
      n += s.bytes_used;
    }
  }
  return n;
}

Result<std::optional<LogManager::Scanned>> LogManager::Scanner::Next() {
  const size_t header_size = log_->header_ct_size();
  const size_t seg_size = log_->segment_size();
  if (pos_.segment >= log_->segments_.size()) {
    return CorruptionError("scan position outside store");
  }
  if (pos_.offset + header_size > seg_size) {
    return std::optional<Scanned>{};
  }
  TDB_ASSIGN_OR_RETURN(Bytes header_ct,
                       log_->store_->Read(pos_.segment, pos_.offset,
                                          header_size));
  Result<VersionHeader> header =
      DecodeHeader(*log_->system_suite_, header_ct);
  if (!header.ok()) {
    // Unparsable header: end of log (or garbage tail after a crash).
    return std::optional<Scanned>{};
  }
  if (pos_.offset + header_size + header->body_size > seg_size) {
    return std::optional<Scanned>{};
  }
  TDB_ASSIGN_OR_RETURN(
      Bytes body_ct,
      log_->store_->Read(pos_.segment, pos_.offset + header_size,
                         header->body_size));
  Scanned scanned;
  scanned.location = pos_;
  scanned.header = *header;
  scanned.raw = header_ct;
  tdb::Append(scanned.raw, body_ct);
  scanned.body_ct = std::move(body_ct);
  scanned.end = Location{
      pos_.segment,
      pos_.offset + static_cast<uint32_t>(header_size) + header->body_size};

  if (header->unnamed && header->type == UnnamedType::kNextSegment) {
    // A link record whose body fails to decrypt or parse is a torn final
    // write (the header landed, the body did not): end of log, exactly like
    // an unparsable header. Truncation attacks that masquerade as torn
    // links are still caught downstream — the register tail check in direct
    // mode, the counter window in counter mode.
    Result<Bytes> plain = log_->system_suite_->Decrypt(scanned.body_ct);
    if (!plain.ok()) {
      return std::optional<Scanned>{};
    }
    Result<NextSegmentRecord> rec_or = NextSegmentRecord::Unpickle(*plain);
    if (!rec_or.ok()) {
      return std::optional<Scanned>{};
    }
    NextSegmentRecord rec = *rec_or;
    if (rec.next_segment >= log_->segments_.size()) {
      return CorruptionError("next-segment link outside store");
    }
    // A legitimate residual chain never revisits a segment; a cycle here
    // means spliced (replayed) link records and would otherwise make the
    // scan loop forever.
    if (std::find(visited_.begin(), visited_.end(), rec.next_segment) !=
        visited_.end()) {
      return TamperDetectedError("next-segment link cycle: log was spliced");
    }
    pos_ = Location{rec.next_segment, 0};
    visited_.push_back(rec.next_segment);
  } else {
    pos_ = scanned.end;
  }
  return std::optional<Scanned>(std::move(scanned));
}

}  // namespace tdb
