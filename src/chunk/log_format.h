// On-log representation of chunks (§4.9).
//
// The log is a sequence of chunk *versions*. Each version is a fixed-size
// encrypted header followed by an encrypted body. Headers are encrypted with
// the system cipher so that cleaning and recovery can identify and demarcate
// chunks without knowing the owning partition's parameters (§5.4); bodies
// are encrypted with the owning partition's cipher.
//
// Unnamed chunks (no position in the chunk map) carry log-management records:
// deallocations (§4.8.1), commit chunks for counter-based validation
// (§4.8.2.2), next-segment links (§4.9.4), and cleaner records (§5.5).

#ifndef SRC_CHUNK_LOG_FORMAT_H_
#define SRC_CHUNK_LOG_FORMAT_H_

#include <vector>

#include "src/chunk/chunk_id.h"
#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/crypto/suite.h"

namespace tdb {

// Reserved marker values in version headers.
inline constexpr PartitionId kUnnamedPartition = 0xFFFF;
// Reserved height marking the system leader chunk, whose position in the
// tree changes as the tree grows and which therefore has a reserved id
// (§4.3).
inline constexpr uint8_t kLeaderHeight = 0xFF;

enum class UnnamedType : uint8_t {
  kDeallocate = 1,
  kCommit = 2,
  kNextSegment = 3,
  kCleaner = 4,
};

struct VersionHeader {
  bool unnamed = false;
  ChunkId id;                                     // valid iff !unnamed
  UnnamedType type = UnnamedType::kDeallocate;    // valid iff unnamed
  uint32_t body_size = 0;                         // ciphertext bytes

  static VersionHeader Named(ChunkId id, uint32_t body_size) {
    VersionHeader h;
    h.id = id;
    h.body_size = body_size;
    return h;
  }
  static VersionHeader Unnamed(UnnamedType type, uint32_t body_size) {
    VersionHeader h;
    h.unnamed = true;
    h.type = type;
    h.body_size = body_size;
    return h;
  }
};

// Fixed plaintext size of a header; its ciphertext size is deterministic for
// a given system cipher, which is what makes the log scannable.
inline constexpr size_t kHeaderPlainSize = 15;

size_t HeaderCipherSize(const CryptoSuite& system);

// Encrypts/decrypts a version header with the system cipher. Headers use
// deterministic per-message IVs from the cipher; DecodeHeader returns
// kCorruption when the bytes do not parse (used by counter-mode recovery to
// find the log tail).
Bytes EncodeHeader(const CryptoSuite& system, const VersionHeader& header);
// As EncodeHeader, but under an IV sequence number previously claimed with
// system.ReserveSeqs — safe to call from crypto worker threads.
Bytes EncodeHeaderWithSeq(const CryptoSuite& system, uint64_t seq,
                          const VersionHeader& header);
Result<VersionHeader> DecodeHeader(const CryptoSuite& system, ByteView ct);

// ---- Unnamed chunk payloads (plaintext forms; bodies are encrypted with
// the system suite by the caller) ----

struct DeallocateRecord {
  std::vector<ChunkId> chunks;
  std::vector<PartitionId> partitions;

  Bytes Pickle() const;
  static Result<DeallocateRecord> Unpickle(ByteView data);
};

struct CommitRecord {
  uint64_t count = 0;
  Bytes set_digest;  // system hash of the commit set's version bytes
  Bytes mac;         // HMAC(system key, count || set_digest)

  // Computes the MAC field from count and set_digest.
  void Sign(const CryptoSuite& system);
  bool VerifySignature(const CryptoSuite& system) const;

  Bytes Pickle() const;
  static Result<CommitRecord> Unpickle(ByteView data);
};

struct NextSegmentRecord {
  uint32_t next_segment = 0;

  Bytes Pickle() const;
  static Result<NextSegmentRecord> Unpickle(ByteView data);
};

// One cleaner-moved chunk version: the position it occupies, the partitions
// in which the rewritten version is current, and where it was rewritten.
struct CleanerEntry {
  ChunkId original_id;                  // id stamped in the version header
  std::vector<PartitionId> current_in;  // partitions whose descriptors move
  Location new_location;
  uint32_t stored_size = 0;
};

struct CleanerRecord {
  std::vector<CleanerEntry> entries;

  Bytes Pickle() const;
  static Result<CleanerRecord> Unpickle(ByteView data);
};

}  // namespace tdb

#endif  // SRC_CHUNK_LOG_FORMAT_H_
