#include "src/chunk/chunk_id.h"

namespace tdb {

std::string ChunkId::ToString() const {
  return std::to_string(partition) + ":" + std::to_string(position.height) +
         "." + std::to_string(position.rank);
}

uint64_t ChunkId::Pack() const {
  return static_cast<uint64_t>(partition) << 48 |
         static_cast<uint64_t>(position.height) << 40 |
         (position.rank & 0xFFFFFFFFFFULL);
}

ChunkId ChunkId::Unpack(uint64_t packed) {
  ChunkId id;
  id.partition = static_cast<PartitionId>(packed >> 48);
  id.position.height = static_cast<uint8_t>(packed >> 40);
  id.position.rank = packed & 0xFFFFFFFFFFULL;
  return id;
}

std::string Location::ToString() const {
  return std::to_string(segment) + "+" + std::to_string(offset);
}

}  // namespace tdb
