// The chunk store: TDB's trusted storage layer (§4, §5).
//
// Provides named, variable-sized chunks grouped into partitions with
// per-partition cryptographic parameters; atomic multi-chunk commits;
// copy-on-write partition copies (snapshots) and diffs; tamper detection
// rooted in a tamper-resistant register or monotonic counter; checkpointed,
// log-structured storage with roll-forward crash recovery and cleaning.
//
// Mutating operations are serialized by an internal mutex (§4.2:
// serializability via mutual exclusion, geared to low concurrency). Reads of
// recently validated chunks are served from a sharded validated-chunk cache
// without that mutex: entries are decrypted, hash-verified plaintexts,
// invalidated precisely when a commit overwrites or deallocates them and
// coarsely (via a generation counter) on clean/restore/recovery.

#ifndef SRC_CHUNK_CHUNK_STORE_H_
#define SRC_CHUNK_CHUNK_STORE_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <vector>

#include "src/chunk/chunk_map.h"
#include "src/chunk/log_manager.h"
#include "src/chunk/validator.h"
#include "src/common/bytes.h"
#include "src/common/sharded_cache.h"
#include "src/common/status.h"
#include "src/common/thread_pool.h"
#include "src/crypto/suite.h"
#include "src/platform/trusted_store.h"
#include "src/store/untrusted_store.h"

namespace tdb {

// The trusted stores the chunk store is built on (§2.1). `register_store`
// is needed for direct-hash validation, `counter` for counter-based
// validation; `secret` always.
struct TrustedServices {
  SecretStore* secret = nullptr;
  TamperResistantRegister* register_store = nullptr;
  MonotonicCounter* counter = nullptr;
};

struct ChunkStoreOptions {
  ValidationConfig validation;

  // System-partition cipher and hash ("a fixed cipher and hash function that
  // are considered secure", §5.2). The key comes from the secret store.
  CipherAlg system_cipher = CipherAlg::kAes128;
  HashAlg system_hash = HashAlg::kSha256;

  // Descriptor-cache sizing. A checkpoint is forced when the number of dirty
  // descriptors reaches checkpoint_dirty_threshold (§4.7).
  size_t descriptor_cache_capacity = 16384;
  size_t checkpoint_dirty_threshold = 4096;
  bool auto_checkpoint = true;

  // Clean when free segments drop below this fraction of the store.
  double clean_low_water = 0.125;

  // Validated-chunk cache: decrypted, hash-verified chunk plaintexts served
  // on repeat reads without the store mutex (and without redoing decrypt +
  // hash verification). 0 disables it. Shards: 0 = next power of two >=
  // hardware concurrency.
  size_t validated_cache_capacity = 8192;  // chunks
  size_t validated_cache_shards = 0;

  // Threads used for per-chunk crypto (hashing + encryption) during commit,
  // checkpoint materialization, cleaning, and backup. 0 (or 1) runs strictly
  // serially on the calling thread. The parallel path reserves IV sequence
  // numbers serially in batch order, so the untrusted-store image is
  // byte-identical at every setting.
  size_t crypto_threads = HardwareConcurrency();
};

class ChunkStore {
 public:
  // A batch of mutations applied atomically by Commit (§4.1, §5.1).
  class Batch {
   public:
    // Sets the state of an allocated or written chunk.
    void WriteChunk(ChunkId id, Bytes state);
    // Deallocates a written chunk; its id becomes reusable.
    void DeallocateChunk(ChunkId id);
    // Writes an allocated partition id as a fresh, empty partition.
    void WritePartition(PartitionId id, CryptoParams params);
    // Writes an allocated partition id as a copy (snapshot) of `source`.
    void CopyPartition(PartitionId id, PartitionId source);
    // Deallocates a partition, all of its chunks, and all of its copies.
    void DeallocatePartition(PartitionId id);

    // --- privileged restore operations (backup store, §6.3) ---
    // Writes a chunk at an exact position, allocating the rank if needed, so
    // restored chunks keep the ids they had when backed up.
    void RestoreChunk(ChunkId id, Bytes state);
    // Writes (or overwrites) a partition at an exact id with the given
    // parameters, preserving existing chunks if the partition exists.
    void RestorePartition(PartitionId id, CryptoParams params);

    // Moves every operation of `other` onto the end of this batch (per
    // operation kind, preserving order within each kind). Used by the
    // group-commit scheduler to coalesce transactions whose lock sets are
    // disjoint; callers must guarantee the merged operations touch disjoint
    // ids, as a single Commit applies them with no internal ordering
    // between the merged transactions.
    void Append(Batch&& other);

    bool empty() const;

   private:
    friend class ChunkStore;
    struct PartitionOp {
      PartitionId id;
      bool is_copy = false;
      bool is_restore = false;
      PartitionId source = 0;   // iff is_copy
      CryptoParams params;      // iff !is_copy
    };
    struct ChunkWrite {
      ChunkId id;
      Bytes state;
      bool is_restore = false;
    };
    std::vector<PartitionOp> partition_writes;
    std::vector<ChunkWrite> chunk_writes;
    std::vector<ChunkId> chunk_deallocs;
    std::vector<PartitionId> partition_deallocs;
  };

  // Formats a fresh store (writes the initial checkpoint) / opens an
  // existing one (runs crash recovery and validates the residual log).
  static Result<std::unique_ptr<ChunkStore>> Create(UntrustedStore* store,
                                                    TrustedServices trusted,
                                                    ChunkStoreOptions options);
  static Result<std::unique_ptr<ChunkStore>> Open(UntrustedStore* store,
                                                  TrustedServices trusted,
                                                  ChunkStoreOptions options);

  // --- partition operations (§5.1) ---
  Result<PartitionId> AllocatePartition();
  bool PartitionExists(PartitionId id);
  Result<CryptoParams> PartitionParams(PartitionId id);
  Result<uint64_t> PartitionNumPositions(PartitionId id);
  Result<std::vector<PartitionId>> PartitionCopies(PartitionId id);
  Result<PartitionId> PartitionCopiedFrom(PartitionId id);
  std::vector<PartitionId> ListPartitions();

  // Positions whose state differs between two partitions (§5.1 Diff;
  // commonly two snapshots of the same partition).
  Result<std::vector<ChunkPosition>> Diff(PartitionId old_partition,
                                          PartitionId new_partition);

  // --- chunk operations (§4.1) ---
  Result<ChunkId> AllocateChunk(PartitionId partition);
  Result<Bytes> Read(ChunkId id);
  // True if the chunk is written (readable).
  bool ChunkWritten(ChunkId id);

  // Applies all operations in `batch` atomically with respect to crashes.
  Status Commit(Batch batch);

  // Convenience single-op commits.
  Status WriteChunk(ChunkId id, Bytes state);
  Status DeallocateChunk(ChunkId id);

  // Consolidates buffered descriptor updates into the chunk map (§4.7).
  Status Checkpoint();

  // Cleans up to `max_segments` low-utilization segments (§4.9.5).
  // Returns the number of segments cleaned.
  Result<size_t> Clean(size_t max_segments);

  struct Stats {
    uint64_t commits = 0;
    uint64_t checkpoints = 0;
    uint64_t segments_cleaned = 0;
    uint64_t chunks_written = 0;
    uint64_t bytes_committed = 0;       // plaintext bytes
    uint64_t log_bytes_appended = 0;    // on-log bytes incl. overhead
    uint64_t cache_size = 0;
    uint64_t dirty_descriptors = 0;
    uint64_t free_segments = 0;
    uint64_t live_log_bytes = 0;
    uint64_t used_log_bytes = 0;
  };
  Stats GetStats();

  // Introspection for tests and tooling: where a chunk's current version
  // lives in the untrusted store and how many bytes it occupies.
  Result<std::pair<Location, uint32_t>> DebugChunkLocation(ChunkId id);

  const CryptoSuite& system_suite() const { return *system_suite_; }

  // Worker pool for crypto fan-out; null when crypto_threads <= 1. Shared
  // with the backup store so backups reuse the same knob.
  ThreadPool* crypto_pool() const { return crypto_pool_.get(); }

  ~ChunkStore();

 private:
  struct LeaderEntry {
    PartitionLeader leader;
    CryptoSuite suite;
    bool dirty = false;
    // In-memory id management: ranks available for reuse and ranks handed
    // out by Allocate but not yet written (auto-freed on restart, §4.4).
    std::vector<uint64_t> avail_ranks;
    std::set<uint64_t> allocated_ranks;

    LeaderEntry(PartitionLeader l, CryptoSuite s)
        : leader(std::move(l)), suite(std::move(s)) {
      avail_ranks = leader.free_ranks;
    }
  };

  ChunkStore(UntrustedStore* store, TrustedServices trusted,
             ChunkStoreOptions options, CryptoSuite system_suite);

  // --- shared plumbing ---
  Result<LeaderEntry*> GetLeader(PartitionId id);
  Result<Descriptor> GetDescriptor(const ChunkId& id);
  // Reads, decrypts and hash-verifies one stored version. Touches only the
  // device and the (thread-safe) suite, so callers holding a consistent
  // descriptor may run it outside mu_. With raise_alarm=false a validation
  // failure returns kCorruption without emitting a tamper alarm — used by the
  // optimistic read path, whose failures are retried authoritatively under
  // mu_ (a concurrent clean may have relocated the chunk mid-read).
  Result<Bytes> ReadVersion(const ChunkId& id, const Descriptor& desc,
                            const CryptoSuite& suite, bool raise_alarm = true);
  Result<Bytes> ReadLocked(ChunkId id);
  Result<Descriptor> LeaderChunkDescriptor(PartitionId id);

  // Builds a version blob (header ct || body ct) and its new descriptor.
  // stored_size duplicates blob.size() so it survives the blob being moved
  // into a LogManager::Blob.
  struct BuiltVersion {
    Bytes blob;
    Bytes hash;
    uint32_t stored_size = 0;
  };
  BuiltVersion BuildVersion(const ChunkId& id, ByteView plain,
                            const CryptoSuite& suite);
  // The thread-safe core of BuildVersion: encrypts under IV sequence numbers
  // the caller reserved serially (body from `suite`, header from the system
  // suite), touching no mutable store state.
  BuiltVersion BuildVersionWithSeqs(const ChunkId& id, ByteView plain,
                                    const CryptoSuite& suite,
                                    uint64_t body_seq, uint64_t header_seq);
  // Batched BuildVersion: reserves each task's IV sequence numbers serially
  // in task order (matching what serial BuildVersion calls would consume),
  // then fans the hash+encrypt work across the crypto pool. Results are in
  // task order; the produced bytes are identical at any thread count.
  struct BuildTask {
    ChunkId id;
    ByteView plain;            // must stay alive until BuildVersions returns
    const CryptoSuite* suite;  // body cipher/hash (header uses the system's)
  };
  std::vector<BuiltVersion> BuildVersions(const std::vector<BuildTask>& tasks);
  Bytes BuildUnnamed(UnnamedType type, ByteView plain);

  // Appends blobs as part of the current commit set, absorbing bytes into
  // the validators' streams.
  Result<std::vector<Location>> AppendToCommitSet(
      std::vector<LogManager::Blob> blobs);

  // Writes all dirty map chunks of a partition bottom-up and updates its
  // leader's root descriptor (used by checkpoints and partition copies).
  Status MaterializeTree(PartitionId partition);

  Status CommitLocked(Batch& batch, bool is_cleaner_commit);
  Status CheckpointLocked();
  Status FinishCommitSet();           // flush + trusted-store update
  Status WriteSuperblock(Location leader_loc, uint32_t leader_size);
  Result<std::pair<Location, uint32_t>> ReadSuperblock();

  // Gathers a partition and all its transitive copies.
  Result<std::vector<PartitionId>> PartitionClosure(PartitionId id);

  Status RecoverLocked();
  Status ApplyRecoveredVersion(const LogManager::Scanned& scanned,
                               std::map<uint64_t, CleanerEntry>& overrides);

  Result<size_t> CleanLocked(size_t max_segments);
  Status CleanSegment(uint32_t segment);

  Status CheckUsable() const;

  std::mutex mu_;
  UntrustedStore* store_;
  TrustedServices trusted_;
  ChunkStoreOptions options_;
  std::unique_ptr<CryptoSuite> system_suite_;
  std::unique_ptr<ThreadPool> crypto_pool_;  // null when running serially
  LogManager log_;
  DescriptorCache cache_;
  std::map<PartitionId, LeaderEntry> leaders_;

  std::optional<DirectHashValidator> direct_;
  // Set by CheckpointLocked: the direct-hash stream restarts at the next
  // non-link append (the checkpoint leader), not before. See AppendToCommitSet.
  bool direct_reset_pending_ = false;
  std::optional<CounterValidator> counter_;

  // Commit-set digest accumulator (counter mode) — reset per commit.
  std::optional<StreamingHash> set_hash_;

  Location last_leader_loc_;
  uint32_t last_leader_size_ = 0;

  // Poisoned by a mid-commit I/O failure. Atomic because the lock-free
  // validated-cache hit path consults it without mu_.
  std::atomic<bool> failed_{false};
  bool in_checkpoint_ = false;

  // Validated-chunk cache (see ChunkStoreOptions). Lookups take only the
  // shard mutex; fills happen under mu_ right after ReadLocked so a fill can
  // never reinstall data that a concurrent commit just invalidated
  // (invalidation also runs under mu_). An entry is served only while its
  // generation matches read_gen_; the generation is bumped by coarse events
  // (clean, restore, recovery replay) whose precise invalidation set is not
  // worth auditing, while commit overwrites/deallocations erase precisely.
  struct ValidatedChunk {
    uint64_t gen = 0;
    std::shared_ptr<const Bytes> plain;
  };
  ShardedLruCache<ValidatedChunk> vcache_;
  std::atomic<uint64_t> read_gen_{1};

  // Monotonic counters behind GetStats(). All writers hold mu_ today, but
  // the cells are relaxed atomics so they can be read without the store
  // mutex and stay race-free if a future path bumps them off-lock (the
  // crypto workers share this object); updates also mirror into the
  // process-wide obs::MetricsRegistry when observability is enabled.
  struct StatCells {
    std::atomic<uint64_t> commits{0};
    std::atomic<uint64_t> checkpoints{0};
    std::atomic<uint64_t> segments_cleaned{0};
    std::atomic<uint64_t> chunks_written{0};
    std::atomic<uint64_t> bytes_committed{0};
    std::atomic<uint64_t> log_bytes_appended{0};
  };
  StatCells stats_;
};

}  // namespace tdb

#endif  // SRC_CHUNK_CHUNK_STORE_H_
