#include "src/chunk/log_format.h"

namespace tdb {

size_t HeaderCipherSize(const CryptoSuite& system) {
  return system.CiphertextSize(kHeaderPlainSize);
}

namespace {
Bytes HeaderPlain(const VersionHeader& header) {
  Bytes plain;
  plain.reserve(kHeaderPlainSize);
  if (header.unnamed) {
    PutU16(plain, kUnnamedPartition);
    plain.push_back(static_cast<uint8_t>(header.type));
    PutU64(plain, 0);
  } else {
    PutU16(plain, header.id.partition);
    plain.push_back(header.id.position.height);
    PutU64(plain, header.id.position.rank);
  }
  PutU32(plain, header.body_size);
  return plain;
}
}  // namespace

Bytes EncodeHeader(const CryptoSuite& system, const VersionHeader& header) {
  return system.Encrypt(HeaderPlain(header));
}

Bytes EncodeHeaderWithSeq(const CryptoSuite& system, uint64_t seq,
                          const VersionHeader& header) {
  return system.EncryptWithSeq(seq, HeaderPlain(header));
}

Result<VersionHeader> DecodeHeader(const CryptoSuite& system, ByteView ct) {
  TDB_ASSIGN_OR_RETURN(Bytes plain, system.Decrypt(ct));
  if (plain.size() != kHeaderPlainSize) {
    return CorruptionError("version header has wrong size");
  }
  VersionHeader h;
  uint16_t partition = GetU16(plain.data());
  uint8_t height_or_type = plain[2];
  uint64_t rank = GetU64(plain.data() + 3);
  h.body_size = GetU32(plain.data() + 11);
  if (partition == kUnnamedPartition) {
    h.unnamed = true;
    if (height_or_type < static_cast<uint8_t>(UnnamedType::kDeallocate) ||
        height_or_type > static_cast<uint8_t>(UnnamedType::kCleaner)) {
      return CorruptionError("unknown unnamed chunk type");
    }
    h.type = static_cast<UnnamedType>(height_or_type);
  } else {
    h.id = ChunkId(partition, height_or_type, rank);
  }
  return h;
}

Bytes DeallocateRecord::Pickle() const {
  PickleWriter w;
  w.WriteVarint(chunks.size());
  for (const ChunkId& id : chunks) {
    w.WriteU64(id.Pack());
  }
  w.WriteVarint(partitions.size());
  for (PartitionId p : partitions) {
    w.WriteU16(p);
  }
  return w.Take();
}

Result<DeallocateRecord> DeallocateRecord::Unpickle(ByteView data) {
  PickleReader r(data);
  DeallocateRecord rec;
  uint64_t num_chunks = r.ReadVarint();
  if (!r.ok() || num_chunks > data.size()) {
    return CorruptionError("bad deallocate record");
  }
  rec.chunks.reserve(num_chunks);
  for (uint64_t i = 0; i < num_chunks; ++i) {
    rec.chunks.push_back(ChunkId::Unpack(r.ReadU64()));
  }
  uint64_t num_partitions = r.ReadVarint();
  if (!r.ok() || num_partitions > data.size()) {
    return CorruptionError("bad deallocate record");
  }
  rec.partitions.reserve(num_partitions);
  for (uint64_t i = 0; i < num_partitions; ++i) {
    rec.partitions.push_back(r.ReadU16());
  }
  TDB_RETURN_IF_ERROR(r.Done());
  return rec;
}

namespace {
Bytes CommitMacInput(uint64_t count, ByteView digest) {
  Bytes input;
  PutU64(input, count);
  Append(input, digest);
  return input;
}
}  // namespace

void CommitRecord::Sign(const CryptoSuite& system) {
  mac = system.Mac(CommitMacInput(count, set_digest));
}

bool CommitRecord::VerifySignature(const CryptoSuite& system) const {
  return ConstantTimeEqual(system.Mac(CommitMacInput(count, set_digest)), mac);
}

Bytes CommitRecord::Pickle() const {
  PickleWriter w;
  w.WriteU64(count);
  w.WriteBytes(set_digest);
  w.WriteBytes(mac);
  return w.Take();
}

Result<CommitRecord> CommitRecord::Unpickle(ByteView data) {
  PickleReader r(data);
  CommitRecord rec;
  rec.count = r.ReadU64();
  rec.set_digest = r.ReadBytes();
  rec.mac = r.ReadBytes();
  TDB_RETURN_IF_ERROR(r.Done());
  return rec;
}

Bytes NextSegmentRecord::Pickle() const {
  PickleWriter w;
  w.WriteU32(next_segment);
  return w.Take();
}

Result<NextSegmentRecord> NextSegmentRecord::Unpickle(ByteView data) {
  PickleReader r(data);
  NextSegmentRecord rec;
  rec.next_segment = r.ReadU32();
  TDB_RETURN_IF_ERROR(r.Done());
  return rec;
}

Bytes CleanerRecord::Pickle() const {
  PickleWriter w;
  w.WriteVarint(entries.size());
  for (const CleanerEntry& e : entries) {
    w.WriteU64(e.original_id.Pack());
    w.WriteU64(e.new_location.Pack());
    w.WriteU32(e.stored_size);
    w.WriteVarint(e.current_in.size());
    for (PartitionId p : e.current_in) {
      w.WriteU16(p);
    }
  }
  return w.Take();
}

Result<CleanerRecord> CleanerRecord::Unpickle(ByteView data) {
  PickleReader r(data);
  CleanerRecord rec;
  uint64_t num = r.ReadVarint();
  if (!r.ok() || num > data.size()) {
    return CorruptionError("bad cleaner record");
  }
  rec.entries.reserve(num);
  for (uint64_t i = 0; i < num; ++i) {
    CleanerEntry e;
    e.original_id = ChunkId::Unpack(r.ReadU64());
    e.new_location = Location::Unpack(r.ReadU64());
    e.stored_size = r.ReadU32();
    uint64_t num_parts = r.ReadVarint();
    if (!r.ok() || num_parts > data.size()) {
      return CorruptionError("bad cleaner record");
    }
    e.current_in.reserve(num_parts);
    for (uint64_t j = 0; j < num_parts; ++j) {
      e.current_in.push_back(r.ReadU16());
    }
    rec.entries.push_back(std::move(e));
  }
  TDB_RETURN_IF_ERROR(r.Done());
  return rec;
}

}  // namespace tdb
