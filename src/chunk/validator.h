// The two ways TDB keeps the tamper-resistant store current with the
// residual log (§4.8.2).
//
// Direct hash validation (§4.8.2.1): the tamper-resistant register holds a
// sequential hash of the residual log together with the head (leader) and
// tail locations; it is rewritten after every commit, once the untrusted
// store is durable. The register write is the real commit point.
//
// Counter-based validation (§4.8.2.2): every commit appends a signed commit
// chunk carrying a commit count and a hash of the commit set; the
// tamper-resistant store is only a monotonic counter, and may lag the log by
// up to delta_ut commits (trading security for fewer counter writes) or lead
// it by up to delta_tu commits (tolerating lazily flushed untrusted stores).

#ifndef SRC_CHUNK_VALIDATOR_H_
#define SRC_CHUNK_VALIDATOR_H_

#include "src/chunk/chunk_id.h"
#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/crypto/suite.h"
#include "src/platform/trusted_store.h"

namespace tdb {

enum class ValidationMode : uint8_t {
  kDirectHash = 0,
  kCounter = 1,
};

struct ValidationConfig {
  ValidationMode mode = ValidationMode::kCounter;
  // Counter mode: flush the counter once per delta_ut commits (0 = every
  // commit). An attacker can delete up to delta_ut unflushed commit sets.
  uint32_t delta_ut = 0;
  // Counter mode: accept logs up to delta_tu commits *behind* the counter,
  // for untrusted stores that are flushed lazily.
  uint32_t delta_tu = 0;
  // Flush the untrusted store on every commit (§9.1 flushes every commit;
  // set false to model a lazy device together with delta_tu > 0).
  bool flush_every_commit = true;
};

class DirectHashValidator {
 public:
  DirectHashValidator(TamperResistantRegister* reg, HashAlg alg)
      : reg_(reg), alg_(alg), stream_(alg) {}

  // Absorbs bytes appended to the residual log, in log order.
  void Absorb(ByteView bytes) { stream_.Update(bytes); }

  // Starts a new residual log (at a checkpoint, before absorbing the new
  // leader's bytes).
  void ResetStream() { stream_ = StreamingHash(alg_); }

  // The digest of everything absorbed so far (does not disturb the stream).
  Bytes CurrentDigest() const;

  struct RegisterState {
    Bytes digest;
    Location head;  // leader location
    Location tail;  // position after the last committed byte
  };

  // Commit point: durably records digest/head/tail in the register.
  Status WriteRegister(Location head, Location tail);
  Result<RegisterState> ReadRegister() const;

 private:
  TamperResistantRegister* reg_;
  HashAlg alg_;
  StreamingHash stream_;
};

class CounterValidator {
 public:
  CounterValidator(MonotonicCounter* counter, uint32_t delta_ut)
      : counter_(counter), delta_ut_(delta_ut) {}

  // Initializes in-memory count and the flush watermark (at open/create).
  Status Init(uint64_t count);

  uint64_t count() const { return count_; }
  uint64_t NextCount() { return ++count_; }

  // Advances the trusted counter if the lag reached delta_ut (or if forced).
  Status MaybeFlush(bool force);

  Result<uint64_t> ReadTrusted() const { return counter_->Read(); }

  // Recovery: checks the last commit count found in the log against the
  // trusted counter, honouring the delta windows, and resynchronizes.
  Status RecoveryCheck(uint64_t log_count, uint32_t delta_tu);

 private:
  MonotonicCounter* counter_;
  uint32_t delta_ut_;
  uint64_t count_ = 0;
  uint64_t last_flushed_ = 0;
};

}  // namespace tdb

#endif  // SRC_CHUNK_VALIDATOR_H_
