#include "src/chunk/chunk_store.h"

#include <algorithm>
#include <cassert>
#include <iterator>

#include "src/obs/metrics.h"
#include "src/obs/profiler.h"
#include "src/obs/trace.h"

namespace tdb {

namespace {

constexpr uint32_t kSuperblockMagic = 0x54444201;  // "TDB" v1

// The reserved id of the system leader chunk, whose tree position changes as
// the partition map grows (§4.3).
ChunkId SystemLeaderId() {
  return ChunkId(kSystemPartition, kLeaderHeight, 0);
}

ChunkId LeaderChunkId(PartitionId partition) {
  return ChunkId(kSystemPartition, 0, partition);
}

}  // namespace

// ---------------------------------------------------------------------------
// Batch

void ChunkStore::Batch::WriteChunk(ChunkId id, Bytes state) {
  chunk_writes.push_back(ChunkWrite{id, std::move(state), false});
}

void ChunkStore::Batch::RestoreChunk(ChunkId id, Bytes state) {
  chunk_writes.push_back(ChunkWrite{id, std::move(state), true});
}

void ChunkStore::Batch::RestorePartition(PartitionId id, CryptoParams params) {
  PartitionOp op;
  op.id = id;
  op.is_restore = true;
  op.params = std::move(params);
  partition_writes.push_back(std::move(op));
}

void ChunkStore::Batch::DeallocateChunk(ChunkId id) {
  chunk_deallocs.push_back(id);
}

void ChunkStore::Batch::WritePartition(PartitionId id, CryptoParams params) {
  PartitionOp op;
  op.id = id;
  op.params = std::move(params);
  partition_writes.push_back(std::move(op));
}

void ChunkStore::Batch::CopyPartition(PartitionId id, PartitionId source) {
  PartitionOp op;
  op.id = id;
  op.is_copy = true;
  op.source = source;
  partition_writes.push_back(std::move(op));
}

void ChunkStore::Batch::DeallocatePartition(PartitionId id) {
  partition_deallocs.push_back(id);
}

void ChunkStore::Batch::Append(Batch&& other) {
  auto splice = [](auto& dst, auto& src) {
    dst.insert(dst.end(), std::make_move_iterator(src.begin()),
               std::make_move_iterator(src.end()));
    src.clear();
  };
  splice(partition_writes, other.partition_writes);
  splice(chunk_writes, other.chunk_writes);
  splice(chunk_deallocs, other.chunk_deallocs);
  splice(partition_deallocs, other.partition_deallocs);
}

bool ChunkStore::Batch::empty() const {
  return partition_writes.empty() && chunk_writes.empty() &&
         chunk_deallocs.empty() && partition_deallocs.empty();
}

// ---------------------------------------------------------------------------
// Construction / open / create

ChunkStore::ChunkStore(UntrustedStore* store, TrustedServices trusted,
                       ChunkStoreOptions options, CryptoSuite system_suite)
    : store_(store),
      trusted_(trusted),
      options_(options),
      system_suite_(std::make_unique<CryptoSuite>(std::move(system_suite))),
      log_(store, system_suite_.get()),
      cache_(options.descriptor_cache_capacity),
      vcache_(options.validated_cache_capacity, options.validated_cache_shards,
              {"chunk.vcache_evictions", "chunk_vcache"}) {
  if (options_.validation.mode == ValidationMode::kDirectHash) {
    direct_.emplace(trusted_.register_store, system_suite_->hash_alg());
  } else {
    counter_.emplace(trusted_.counter, options_.validation.delta_ut);
  }
  if (options_.crypto_threads > 1) {
    // The committing thread participates in every ParallelFor, so a budget
    // of N threads needs only N-1 pool workers.
    crypto_pool_ = std::make_unique<ThreadPool>(options_.crypto_threads - 1);
  }
}

ChunkStore::~ChunkStore() = default;

namespace {
Result<CryptoSuite> MakeSystemSuite(const TrustedServices& trusted,
                                    const ChunkStoreOptions& options) {
  if (trusted.secret == nullptr) {
    return InvalidArgumentError("a secret store is required");
  }
  if (options.validation.mode == ValidationMode::kDirectHash &&
      trusted.register_store == nullptr) {
    return InvalidArgumentError(
        "direct-hash validation requires a tamper-resistant register");
  }
  if (options.validation.mode == ValidationMode::kCounter &&
      trusted.counter == nullptr) {
    return InvalidArgumentError(
        "counter-based validation requires a monotonic counter");
  }
  TDB_ASSIGN_OR_RETURN(Bytes secret, trusted.secret->Read());
  CryptoParams params;
  params.cipher = options.system_cipher;
  params.hash = options.system_hash;
  size_t key_size = CipherKeySize(params.cipher);
  if (secret.size() < key_size) {
    return InvalidArgumentError("secret is too short for the system cipher");
  }
  params.key = Bytes(secret.begin(), secret.begin() + key_size);
  return CryptoSuite::Create(std::move(params));
}
}  // namespace

Result<std::unique_ptr<ChunkStore>> ChunkStore::Create(
    UntrustedStore* store, TrustedServices trusted,
    ChunkStoreOptions options) {
  TDB_ASSIGN_OR_RETURN(CryptoSuite suite, MakeSystemSuite(trusted, options));
  auto cs = std::unique_ptr<ChunkStore>(
      new ChunkStore(store, trusted, options, std::move(suite)));
  TDB_RETURN_IF_ERROR(cs->log_.InitFresh());

  PartitionLeader system_leader;
  system_leader.params = cs->system_suite_->params();
  system_leader.num_positions = 1;  // rank 0 is reserved for the system
  cs->leaders_.emplace(
      kSystemPartition,
      LeaderEntry(std::move(system_leader), *cs->system_suite_));

  if (cs->counter_) {
    TDB_ASSIGN_OR_RETURN(uint64_t trusted_count, trusted.counter->Read());
    TDB_RETURN_IF_ERROR(cs->counter_->Init(trusted_count));
  }

  std::lock_guard<std::mutex> lock(cs->mu_);
  TDB_RETURN_IF_ERROR(cs->CheckpointLocked());
  return cs;
}

Result<std::unique_ptr<ChunkStore>> ChunkStore::Open(UntrustedStore* store,
                                                     TrustedServices trusted,
                                                     ChunkStoreOptions options) {
  TDB_ASSIGN_OR_RETURN(CryptoSuite suite, MakeSystemSuite(trusted, options));
  auto cs = std::unique_ptr<ChunkStore>(
      new ChunkStore(store, trusted, options, std::move(suite)));
  std::lock_guard<std::mutex> lock(cs->mu_);
  TDB_RETURN_IF_ERROR(cs->RecoverLocked());
  return cs;
}

// ---------------------------------------------------------------------------
// Superblock

Status ChunkStore::WriteSuperblock(Location leader_loc, uint32_t leader_size) {
  PickleWriter w;
  w.WriteU32(kSuperblockMagic);
  w.WriteU64(leader_loc.Pack());
  w.WriteU32(leader_size);
  return store_->WriteSuperblock(w.data());
}

Result<std::pair<Location, uint32_t>> ChunkStore::ReadSuperblock() {
  TDB_ASSIGN_OR_RETURN(Bytes raw, store_->ReadSuperblock());
  if (raw.empty()) {
    return NotFoundError("superblock is empty: not a TDB store");
  }
  // A non-empty but malformed superblock is adversarial, not a torn write:
  // the UntrustedStore contract makes superblock writes atomic and durable.
  PickleReader r(raw);
  if (r.ReadU32() != kSuperblockMagic) {
    return TamperDetectedError("bad superblock magic");
  }
  Location loc = Location::Unpack(r.ReadU64());
  uint32_t size = r.ReadU32();
  if (!r.Done().ok()) {
    return TamperDetectedError("superblock is truncated or oversized");
  }
  return std::make_pair(loc, size);
}

// ---------------------------------------------------------------------------
// Leaders and descriptors

Result<ChunkStore::LeaderEntry*> ChunkStore::GetLeader(PartitionId id) {
  auto it = leaders_.find(id);
  if (it != leaders_.end()) {
    return &it->second;
  }
  if (id == kSystemPartition) {
    return FailedPreconditionError("system leader not loaded");
  }
  TDB_ASSIGN_OR_RETURN(Descriptor desc, GetDescriptor(LeaderChunkId(id)));
  if (!desc.written()) {
    return NotFoundError("partition " + std::to_string(id) + " not written");
  }
  TDB_ASSIGN_OR_RETURN(Bytes plain,
                       ReadVersion(LeaderChunkId(id), desc, *system_suite_));
  TDB_ASSIGN_OR_RETURN(PartitionLeader leader,
                       PartitionLeader::UnpickleFromBytes(plain));
  TDB_ASSIGN_OR_RETURN(CryptoSuite suite, CryptoSuite::Create(leader.params));
  auto [pos, _] =
      leaders_.emplace(id, LeaderEntry(std::move(leader), std::move(suite)));
  return &pos->second;
}

Result<Descriptor> ChunkStore::LeaderChunkDescriptor(PartitionId id) {
  return GetDescriptor(LeaderChunkId(id));
}

Result<Descriptor> ChunkStore::GetDescriptor(const ChunkId& id) {
  if (std::optional<Descriptor> cached = cache_.Get(id)) {
    return *cached;
  }
  TDB_ASSIGN_OR_RETURN(LeaderEntry* entry, GetLeader(id.partition));
  const PartitionLeader& leader = entry->leader;
  if (leader.tree_height == 0) {
    // No checkpointed map yet; everything written is in the cache.
    return Descriptor{};
  }
  if (id.position.height == leader.tree_height) {
    if (id.position.rank != 0) {
      return Descriptor{};
    }
    Descriptor root = leader.root;
    if (root.written()) {
      cache_.PutClean(id, root);
    }
    return root;
  }
  if (id.position.height > leader.tree_height) {
    return Descriptor{};
  }
  ChunkId parent(id.partition, id.position.Parent());
  TDB_ASSIGN_OR_RETURN(Descriptor parent_desc, GetDescriptor(parent));
  if (!parent_desc.written()) {
    return Descriptor{};
  }
  TDB_ASSIGN_OR_RETURN(Bytes content,
                       ReadVersion(parent, parent_desc, entry->suite));
  TDB_ASSIGN_OR_RETURN(MapChunk map, MapChunk::Unpickle(content));
  // Cache every written descriptor from this map chunk; PutClean never
  // overwrites dirty entries, so buffered updates stay authoritative.
  uint64_t base = parent.position.rank * kMapFanout;
  uint8_t child_height = static_cast<uint8_t>(parent.position.height - 1);
  for (uint64_t i = 0; i < kMapFanout; ++i) {
    if (map.slots[i].written()) {
      cache_.PutClean(ChunkId(id.partition, child_height, base + i),
                      map.slots[i]);
    }
  }
  // The dirty entry (if any) still wins over the just-read map content.
  if (std::optional<Descriptor> cached = cache_.Get(id)) {
    return *cached;
  }
  return map.slots[id.position.SlotInParent()];
}

Result<Bytes> ChunkStore::ReadVersion(const ChunkId& id,
                                      const Descriptor& desc,
                                      const CryptoSuite& suite,
                                      bool raise_alarm) {
  auto invalid = [raise_alarm](std::string message) {
    return raise_alarm ? TamperDetectedError(std::move(message))
                       : CorruptionError(std::move(message));
  };
  size_t header_size = HeaderCipherSize(*system_suite_);
  TDB_ASSIGN_OR_RETURN(
      Bytes header_ct,
      store_->Read(desc.location.segment, desc.location.offset, header_size));
  Result<VersionHeader> header = DecodeHeader(*system_suite_, header_ct);
  if (!header.ok()) {
    return invalid("chunk header fails to decode at " +
                   desc.location.ToString());
  }
  if (header->unnamed || header->id.position != id.position) {
    return invalid("chunk at " + desc.location.ToString() +
                   " does not match id " + id.ToString());
  }
  if (header_size + header->body_size != desc.stored_size) {
    return invalid("chunk size mismatch for " + id.ToString());
  }
  TDB_ASSIGN_OR_RETURN(
      Bytes body_ct,
      store_->Read(desc.location.segment,
                   desc.location.offset + static_cast<uint32_t>(header_size),
                   header->body_size));
  Result<Bytes> plain = [&] {
    ProfileScope decrypt_scope("encryption");
    return suite.Decrypt(body_ct);
  }();
  if (!plain.ok()) {
    return invalid("chunk body fails to decrypt for " + id.ToString());
  }
  Bytes computed_hash;
  {
    ProfileScope hash_scope("hashing");
    computed_hash = suite.Hash(*plain);
  }
  if (!ConstantTimeEqual(computed_hash, desc.hash)) {
    return invalid("hash mismatch for chunk " + id.ToString());
  }
  return plain;
}

// ---------------------------------------------------------------------------
// Public reads and queries

Result<Bytes> ChunkStore::Read(ChunkId id) {
  if (vcache_.enabled()) {
    // Lock-free fast path: a hit returns validated plaintext without mu_,
    // decryption, or hash verification. The generation check rejects entries
    // that a clean/restore/recovery may have invalidated wholesale; precise
    // per-id invalidation at commit time handles overwrites and deallocs.
    uint64_t gen = read_gen_.load(std::memory_order_acquire);
    std::optional<ValidatedChunk> hit = vcache_.Get(id);
    if (hit.has_value() && hit->gen == gen &&
        !failed_.load(std::memory_order_acquire)) {
      obs::Count("cache.shard_hits");
      obs::Count("chunk.vcache_hits");
      obs::TraceEmit(obs::TraceKind::kCacheHit, "chunk_vcache",
                     id.position.rank);
      return Bytes(*hit->plain);
    }
    obs::Count("cache.shard_misses");
    obs::Count("chunk.vcache_misses");
    obs::TraceEmit(obs::TraceKind::kCacheMiss, "chunk_vcache",
                   id.position.rank);
  }
  // Cold path: resolve the descriptor under mu_, then run the expensive part
  // (device read + decrypt + hash verify) outside it so concurrent cold reads
  // validate in parallel instead of serializing on the store mutex.
  Descriptor desc;
  std::optional<CryptoSuite> suite;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ProfileScope scope("chunk_store");
    TDB_RETURN_IF_ERROR(CheckUsable());
    if (id.partition == kUnnamedPartition || id.position.height != 0) {
      return InvalidArgumentError("not a data chunk id: " + id.ToString());
    }
    TDB_ASSIGN_OR_RETURN(desc, GetDescriptor(id));
    if (!desc.written()) {
      return NotFoundError("chunk " + id.ToString() + " is not written");
    }
    TDB_ASSIGN_OR_RETURN(LeaderEntry * entry, GetLeader(id.partition));
    suite = entry->suite;
  }
  Result<Bytes> out = ReadVersion(id, desc, *suite, /*raise_alarm=*/false);
  std::lock_guard<std::mutex> lock(mu_);
  ProfileScope scope("chunk_store");
  if (!out.ok()) {
    // A concurrent clean may have relocated the chunk between descriptor
    // resolution and the device read, leaving stale bytes at the old
    // location. Retry under mu_, where descriptor and device state are
    // consistent; only this authoritative attempt raises tamper alarms.
    out = ReadLocked(id);
    if (!out.ok()) {
      return out;
    }
  } else if (vcache_.enabled()) {
    // Fill only if the descriptor is unchanged: an overwrite committed while
    // we validated outside mu_ must not be resurrected with the superseded
    // plaintext. (Returning the old plaintext itself is fine — the read
    // linearizes at descriptor-resolution time.)
    Result<Descriptor> now = GetDescriptor(id);
    if (!now.ok() || !(*now == desc)) {
      return out;
    }
  }
  if (vcache_.enabled()) {
    // Fill under mu_: a commit that invalidates this id also runs under mu_,
    // so a fill can never resurrect a superseded version.
    vcache_.Put(id,
                ValidatedChunk{read_gen_.load(std::memory_order_relaxed),
                               std::make_shared<const Bytes>(*out)});
  }
  return out;
}

Result<Bytes> ChunkStore::ReadLocked(ChunkId id) {
  TDB_RETURN_IF_ERROR(CheckUsable());
  if (id.partition == kUnnamedPartition || id.position.height != 0) {
    return InvalidArgumentError("not a data chunk id: " + id.ToString());
  }
  TDB_ASSIGN_OR_RETURN(Descriptor desc, GetDescriptor(id));
  if (!desc.written()) {
    return NotFoundError("chunk " + id.ToString() + " is not written");
  }
  TDB_ASSIGN_OR_RETURN(LeaderEntry* entry, GetLeader(id.partition));
  return ReadVersion(id, desc, entry->suite);
}

bool ChunkStore::ChunkWritten(ChunkId id) {
  std::lock_guard<std::mutex> lock(mu_);
  Result<Descriptor> desc = GetDescriptor(id);
  return desc.ok() && desc->written();
}

bool ChunkStore::PartitionExists(PartitionId id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id == kSystemPartition) {
    return false;
  }
  return GetLeader(id).ok();
}

Result<CryptoParams> ChunkStore::PartitionParams(PartitionId id) {
  std::lock_guard<std::mutex> lock(mu_);
  TDB_ASSIGN_OR_RETURN(LeaderEntry* entry, GetLeader(id));
  return entry->leader.params;
}

Result<uint64_t> ChunkStore::PartitionNumPositions(PartitionId id) {
  std::lock_guard<std::mutex> lock(mu_);
  TDB_ASSIGN_OR_RETURN(LeaderEntry* entry, GetLeader(id));
  return entry->leader.num_positions;
}

Result<std::vector<PartitionId>> ChunkStore::PartitionCopies(PartitionId id) {
  std::lock_guard<std::mutex> lock(mu_);
  TDB_ASSIGN_OR_RETURN(LeaderEntry* entry, GetLeader(id));
  return entry->leader.copies;
}

Result<PartitionId> ChunkStore::PartitionCopiedFrom(PartitionId id) {
  std::lock_guard<std::mutex> lock(mu_);
  TDB_ASSIGN_OR_RETURN(LeaderEntry* entry, GetLeader(id));
  return entry->leader.copied_from;
}

std::vector<PartitionId> ChunkStore::ListPartitions() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PartitionId> out;
  auto it = leaders_.find(kSystemPartition);
  if (it == leaders_.end()) {
    return out;
  }
  uint64_t n = it->second.leader.num_positions;
  for (uint64_t rank = 1; rank < n; ++rank) {
    Result<Descriptor> desc =
        GetDescriptor(LeaderChunkId(static_cast<PartitionId>(rank)));
    if (desc.ok() && desc->written()) {
      out.push_back(static_cast<PartitionId>(rank));
    }
  }
  return out;
}

Result<std::vector<ChunkPosition>> ChunkStore::Diff(
    PartitionId old_partition, PartitionId new_partition) {
  std::lock_guard<std::mutex> lock(mu_);
  ProfileScope scope("chunk_store");
  TDB_RETURN_IF_ERROR(CheckUsable());
  TDB_ASSIGN_OR_RETURN(LeaderEntry* old_entry, GetLeader(old_partition));
  TDB_ASSIGN_OR_RETURN(LeaderEntry* new_entry, GetLeader(new_partition));
  uint64_t max_rank = std::max(old_entry->leader.num_positions,
                               new_entry->leader.num_positions);
  std::vector<ChunkPosition> out;
  for (uint64_t rank = 0; rank < max_rank; ++rank) {
    TDB_ASSIGN_OR_RETURN(Descriptor d_old,
                         GetDescriptor(ChunkId(old_partition, 0, rank)));
    TDB_ASSIGN_OR_RETURN(Descriptor d_new,
                         GetDescriptor(ChunkId(new_partition, 0, rank)));
    bool same;
    if (d_old.written() != d_new.written()) {
      same = false;
    } else if (!d_old.written()) {
      same = true;
    } else {
      same = d_old.hash == d_new.hash;
    }
    if (!same) {
      out.emplace_back(0, rank);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Allocation

Result<PartitionId> ChunkStore::AllocatePartition() {
  std::lock_guard<std::mutex> lock(mu_);
  TDB_RETURN_IF_ERROR(CheckUsable());
  TDB_ASSIGN_OR_RETURN(LeaderEntry* sys, GetLeader(kSystemPartition));
  uint64_t rank;
  if (!sys->avail_ranks.empty()) {
    rank = sys->avail_ranks.back();
    sys->avail_ranks.pop_back();
  } else {
    rank = sys->leader.num_positions++;
  }
  if (rank >= kUnnamedPartition) {
    return OutOfSpaceError("partition id space exhausted");
  }
  sys->allocated_ranks.insert(rank);
  return static_cast<PartitionId>(rank);
}

Result<ChunkId> ChunkStore::AllocateChunk(PartitionId partition) {
  std::lock_guard<std::mutex> lock(mu_);
  ProfileScope scope("chunk_store");
  TDB_RETURN_IF_ERROR(CheckUsable());
  if (partition == kSystemPartition || partition == kUnnamedPartition) {
    return InvalidArgumentError("cannot allocate chunks in this partition");
  }
  TDB_ASSIGN_OR_RETURN(LeaderEntry* entry, GetLeader(partition));
  uint64_t rank;
  if (!entry->avail_ranks.empty()) {
    rank = entry->avail_ranks.back();
    entry->avail_ranks.pop_back();
  } else {
    rank = entry->leader.num_positions++;
  }
  entry->allocated_ranks.insert(rank);
  return ChunkId(partition, 0, rank);
}

// ---------------------------------------------------------------------------
// Version building and the commit set

ChunkStore::BuiltVersion ChunkStore::BuildVersion(const ChunkId& id,
                                                  ByteView plain,
                                                  const CryptoSuite& suite) {
  uint64_t body_seq = suite.ReserveSeqs(1);
  uint64_t header_seq = system_suite_->ReserveSeqs(1);
  return BuildVersionWithSeqs(id, plain, suite, body_seq, header_seq);
}

ChunkStore::BuiltVersion ChunkStore::BuildVersionWithSeqs(
    const ChunkId& id, ByteView plain, const CryptoSuite& suite,
    uint64_t body_seq, uint64_t header_seq) {
  BuiltVersion built;
  {
    ProfileScope hash_scope("hashing");
    built.hash = suite.Hash(plain);
  }
  Bytes body_ct;
  {
    ProfileScope encrypt_scope("encryption");
    body_ct = suite.EncryptWithSeq(body_seq, plain);
  }
  VersionHeader header =
      VersionHeader::Named(id, static_cast<uint32_t>(body_ct.size()));
  Bytes header_ct;
  {
    ProfileScope encrypt_scope("encryption");
    header_ct = EncodeHeaderWithSeq(*system_suite_, header_seq, header);
  }
  built.blob.reserve(header_ct.size() + body_ct.size());
  Append(built.blob, header_ct);
  Append(built.blob, body_ct);
  built.stored_size = static_cast<uint32_t>(built.blob.size());
  return built;
}

std::vector<ChunkStore::BuiltVersion> ChunkStore::BuildVersions(
    const std::vector<BuildTask>& tasks) {
  // Reserve IV sequence numbers serially, in exactly the order the serial
  // path consumes them (per task: body from the task's suite, then header
  // from the system suite). After this, each task's crypto is pure.
  std::vector<std::pair<uint64_t, uint64_t>> seqs;
  seqs.reserve(tasks.size());
  for (const BuildTask& t : tasks) {
    uint64_t body_seq = t.suite->ReserveSeqs(1);
    seqs.emplace_back(body_seq, system_suite_->ReserveSeqs(1));
  }
  std::vector<BuiltVersion> built(tasks.size());
  ParallelFor(crypto_pool_.get(), tasks.size(), [&](size_t i) {
    built[i] = BuildVersionWithSeqs(tasks[i].id, tasks[i].plain,
                                    *tasks[i].suite, seqs[i].first,
                                    seqs[i].second);
  });
  return built;
}

Bytes ChunkStore::BuildUnnamed(UnnamedType type, ByteView plain) {
  Bytes body_ct = system_suite_->Encrypt(plain);
  VersionHeader header =
      VersionHeader::Unnamed(type, static_cast<uint32_t>(body_ct.size()));
  Bytes blob = EncodeHeader(*system_suite_, header);
  Append(blob, body_ct);
  return blob;
}

Result<std::vector<Location>> ChunkStore::AppendToCommitSet(
    std::vector<LogManager::Blob> blobs) {
  auto on_append = [this](ByteView bytes, bool is_link) {
    ProfileScope hash_scope("hashing");
    if (direct_) {
      // A checkpoint restarts the stream at the leader chunk: recovery scans
      // from the leader's location, so a link emitted just before it (to
      // step to a fresh segment) is invisible to recovery and must stay out
      // of the new stream.
      if (direct_reset_pending_ && !is_link) {
        direct_->ResetStream();
        direct_reset_pending_ = false;
      }
      if (!direct_reset_pending_) {
        direct_->Absorb(bytes);
      }
    }
    if (set_hash_ && !is_link) {
      set_hash_->Update(bytes);
    }
    stats_.log_bytes_appended.fetch_add(bytes.size(),
                                        std::memory_order_relaxed);
    obs::Count("chunk.log_bytes_appended", bytes.size());
  };
  Result<std::vector<Location>> locations = log_.Append(blobs, on_append);
  if (!locations.ok()) {
    failed_ = true;  // the in-memory commit set is now inconsistent
  }
  return locations;
}

Status ChunkStore::CheckUsable() const {
  if (failed_) {
    return FailedPreconditionError(
        "chunk store is poisoned by an earlier mid-commit failure; reopen to "
        "recover");
  }
  return OkStatus();
}

// ---------------------------------------------------------------------------
// Commit

Status ChunkStore::WriteChunk(ChunkId id, Bytes state) {
  Batch batch;
  batch.WriteChunk(id, std::move(state));
  return Commit(std::move(batch));
}

Status ChunkStore::DeallocateChunk(ChunkId id) {
  Batch batch;
  batch.DeallocateChunk(id);
  return Commit(std::move(batch));
}

Status ChunkStore::Commit(Batch batch) {
  std::lock_guard<std::mutex> lock(mu_);
  ProfileScope scope("chunk_store");
  TDB_RETURN_IF_ERROR(CommitLocked(batch, /*is_cleaner_commit=*/false));
  if (options_.auto_checkpoint &&
      cache_.dirty_count() >= options_.checkpoint_dirty_threshold &&
      !in_checkpoint_) {
    TDB_RETURN_IF_ERROR(CheckpointLocked());
  }
  // Reclaim space when free segments run low (§4.9.5: the cleaner "may be
  // invoked synchronously when space is low").
  if (options_.auto_checkpoint && !in_checkpoint_ &&
      log_.free_segment_count() <
          options_.clean_low_water * store_->num_segments()) {
    TDB_RETURN_IF_ERROR(CleanLocked(8).status());
  }
  return OkStatus();
}

Result<std::vector<PartitionId>> ChunkStore::PartitionClosure(PartitionId id) {
  std::vector<PartitionId> closure;
  std::vector<PartitionId> work{id};
  while (!work.empty()) {
    PartitionId p = work.back();
    work.pop_back();
    if (std::find(closure.begin(), closure.end(), p) != closure.end()) {
      continue;
    }
    closure.push_back(p);
    TDB_ASSIGN_OR_RETURN(LeaderEntry* entry, GetLeader(p));
    for (PartitionId copy : entry->leader.copies) {
      work.push_back(copy);
    }
  }
  return closure;
}

Status ChunkStore::CommitLocked(Batch& batch, bool is_cleaner_commit) {
  TDB_RETURN_IF_ERROR(CheckUsable());
  if (batch.empty()) {
    return OkStatus();
  }
  obs::LatencyTimer commit_timer(is_cleaner_commit ? "cleaner.commit_us"
                                                   : "chunk.commit_us");

  // ---- validation phase (no mutation, no log writes) ----
  TDB_ASSIGN_OR_RETURN(LeaderEntry* sys, GetLeader(kSystemPartition));
  for (const Batch::PartitionOp& op : batch.partition_writes) {
    if (op.is_restore) {
      if (op.id == kSystemPartition || op.id == kUnnamedPartition) {
        return InvalidArgumentError("cannot restore onto a reserved id");
      }
      Result<LeaderEntry*> existing = GetLeader(op.id);
      if (existing.ok() &&
          ((*existing)->leader.params.cipher != op.params.cipher ||
           (*existing)->leader.params.hash != op.params.hash ||
           (*existing)->leader.params.key != op.params.key)) {
        return InvalidArgumentError(
            "restore target partition exists with different parameters");
      }
      TDB_RETURN_IF_ERROR(CryptoSuite::Create(op.params).status());
      continue;
    }
    if (sys->allocated_ranks.count(op.id) == 0) {
      return NotFoundError("partition id " + std::to_string(op.id) +
                           " is not allocated");
    }
    if (op.is_copy) {
      if (op.source == kSystemPartition) {
        return InvalidArgumentError("cannot copy the system partition");
      }
      TDB_RETURN_IF_ERROR(GetLeader(op.source).status());
    } else {
      TDB_RETURN_IF_ERROR(CryptoSuite::Create(op.params).status());
    }
  }
  struct PlannedWrite {
    ChunkId id;
    const Bytes* plain;
    Descriptor old_desc;
    const CryptoSuite* suite;
    bool is_restore;
  };
  // Suites for partitions that are restored and populated in one batch.
  std::vector<std::unique_ptr<CryptoSuite>> restore_suites;
  auto restore_op_for = [&batch](PartitionId pid) -> const Batch::PartitionOp* {
    for (const Batch::PartitionOp& op : batch.partition_writes) {
      if (op.id == pid && op.is_restore) {
        return &op;
      }
    }
    return nullptr;
  };
  std::vector<PlannedWrite> writes;
  writes.reserve(batch.chunk_writes.size());
  for (auto& write : batch.chunk_writes) {
    const ChunkId& id = write.id;
    if (id.position.height != 0 || id.partition == kSystemPartition ||
        id.partition == kUnnamedPartition) {
      return InvalidArgumentError("not a writable data chunk id: " +
                                  id.ToString());
    }
    Result<LeaderEntry*> entry = GetLeader(id.partition);
    const CryptoSuite* suite = nullptr;
    Descriptor old_desc;
    if (entry.ok()) {
      suite = &(*entry)->suite;
      TDB_ASSIGN_OR_RETURN(old_desc, GetDescriptor(id));
      bool allocated = (*entry)->allocated_ranks.count(id.position.rank) > 0;
      if (!old_desc.written() && !allocated && !write.is_restore) {
        return NotFoundError("chunk " + id.ToString() + " is not allocated");
      }
    } else if (write.is_restore) {
      const Batch::PartitionOp* op = restore_op_for(id.partition);
      if (op == nullptr) {
        return entry.status();
      }
      TDB_ASSIGN_OR_RETURN(CryptoSuite tmp, CryptoSuite::Create(op->params));
      restore_suites.push_back(std::make_unique<CryptoSuite>(std::move(tmp)));
      suite = restore_suites.back().get();
    } else {
      return entry.status();
    }
    writes.push_back(
        PlannedWrite{id, &write.state, old_desc, suite, write.is_restore});
  }
  struct PlannedDealloc {
    ChunkId id;
    Descriptor old_desc;
    LeaderEntry* entry;
  };
  std::vector<PlannedDealloc> deallocs;
  for (const ChunkId& id : batch.chunk_deallocs) {
    if (id.position.height != 0 || id.partition == kSystemPartition) {
      return InvalidArgumentError("not a deallocatable chunk id: " +
                                  id.ToString());
    }
    TDB_ASSIGN_OR_RETURN(LeaderEntry* entry, GetLeader(id.partition));
    TDB_ASSIGN_OR_RETURN(Descriptor old_desc, GetDescriptor(id));
    if (!old_desc.written()) {
      return NotFoundError("chunk " + id.ToString() + " is not written");
    }
    deallocs.push_back(PlannedDealloc{id, old_desc, entry});
  }
  std::vector<PartitionId> dealloc_closure;
  for (PartitionId pid : batch.partition_deallocs) {
    if (pid == kSystemPartition) {
      return InvalidArgumentError("cannot deallocate the system partition");
    }
    TDB_ASSIGN_OR_RETURN(std::vector<PartitionId> closure,
                         PartitionClosure(pid));
    for (PartitionId p : closure) {
      if (std::find(dealloc_closure.begin(), dealloc_closure.end(), p) ==
          dealloc_closure.end()) {
        dealloc_closure.push_back(p);
      }
    }
  }

  // ---- build & append phase ----
  if (counter_) {
    set_hash_.emplace(system_suite_->hash_alg());
  }

  // Copies first: a copy shares the source's position map, so the source's
  // buffered descriptors must be materialized into map chunks first (the
  // copied leader can only reference persisted state).
  for (const Batch::PartitionOp& op : batch.partition_writes) {
    if (op.is_copy) {
      TDB_RETURN_IF_ERROR(MaterializeTree(op.source));
    }
  }

  // Partition leader versions (creations and copies, plus rewritten source
  // leaders so the copy lists and materialized roots are durable).
  struct PlannedLeaderWrite {
    PartitionId id;
    PartitionLeader leader;
    Descriptor old_desc;
  };
  std::vector<PlannedLeaderWrite> leader_writes;
  for (const Batch::PartitionOp& op : batch.partition_writes) {
    PlannedLeaderWrite lw;
    lw.id = op.id;
    TDB_ASSIGN_OR_RETURN(lw.old_desc, GetDescriptor(LeaderChunkId(op.id)));
    if (op.is_restore) {
      Result<LeaderEntry*> existing = GetLeader(op.id);
      if (existing.ok()) {
        // Same parameters (validated above): rewrite the current leader so
        // the restore commit is self-contained in the log.
        lw.leader = (*existing)->leader;
        lw.leader.free_ranks = (*existing)->avail_ranks;
      } else {
        lw.leader.params = op.params;
      }
      leader_writes.push_back(std::move(lw));
      continue;
    }
    if (op.is_copy) {
      TDB_ASSIGN_OR_RETURN(LeaderEntry* src, GetLeader(op.source));
      lw.leader = src->leader;
      lw.leader.free_ranks = src->avail_ranks;
      lw.leader.free_ranks.insert(lw.leader.free_ranks.end(),
                                  src->allocated_ranks.begin(),
                                  src->allocated_ranks.end());
      lw.leader.copies.clear();
      lw.leader.copied_from = op.source;
      // The source records its new copy and is rewritten below.
      src->leader.copies.push_back(op.id);
      PlannedLeaderWrite src_lw;
      src_lw.id = op.source;
      TDB_ASSIGN_OR_RETURN(src_lw.old_desc,
                           GetDescriptor(LeaderChunkId(op.source)));
      src_lw.leader = src->leader;
      src_lw.leader.free_ranks = src->avail_ranks;
      src_lw.leader.free_ranks.insert(src_lw.leader.free_ranks.end(),
                                      src->allocated_ranks.begin(),
                                      src->allocated_ranks.end());
      leader_writes.push_back(std::move(src_lw));
    } else {
      lw.leader.params = op.params;
    }
    leader_writes.push_back(std::move(lw));
  }

  // Every chunk version in the batch is hashed and encrypted independently,
  // so build them as one fan-out batch and append in deterministic order.
  std::vector<Bytes> leader_plains;
  leader_plains.reserve(leader_writes.size());
  std::vector<BuildTask> tasks;
  tasks.reserve(leader_writes.size() + writes.size());
  for (const PlannedLeaderWrite& lw : leader_writes) {
    leader_plains.push_back(lw.leader.PickleToBytes());
    tasks.push_back(
        BuildTask{LeaderChunkId(lw.id), leader_plains.back(),
                  system_suite_.get()});
  }
  uint64_t batch_plain_bytes = 0;
  for (const PlannedWrite& w : writes) {
    tasks.push_back(BuildTask{w.id, *w.plain, w.suite});
    batch_plain_bytes += w.plain->size();
  }
  stats_.bytes_committed.fetch_add(batch_plain_bytes,
                                   std::memory_order_relaxed);
  std::vector<BuiltVersion> built = BuildVersions(tasks);
  std::vector<LogManager::Blob> blobs;
  blobs.reserve(built.size() + 1);
  for (BuiltVersion& bv : built) {
    blobs.push_back(LogManager::Blob{std::move(bv.blob), true});
  }
  if (!deallocs.empty() || !dealloc_closure.empty()) {
    DeallocateRecord record;
    for (const PlannedDealloc& d : deallocs) {
      record.chunks.push_back(d.id);
    }
    record.partitions = dealloc_closure;
    blobs.push_back(LogManager::Blob{
        BuildUnnamed(UnnamedType::kDeallocate, record.Pickle()), false});
  }

  TDB_ASSIGN_OR_RETURN(std::vector<Location> locations,
                       AppendToCommitSet(std::move(blobs)));

  // Commit chunk (counter mode): count + commit-set digest, signed.
  if (counter_) {
    CommitRecord record;
    record.count = counter_->NextCount();
    record.set_digest = set_hash_->Finish();
    record.Sign(*system_suite_);
    std::vector<LogManager::Blob> tail;
    tail.push_back(LogManager::Blob{
        BuildUnnamed(UnnamedType::kCommit, record.Pickle()), false});
    TDB_RETURN_IF_ERROR(AppendToCommitSet(std::move(tail)).status());
  }

  // ---- apply phase (descriptors, leaders, accounting) ----
  size_t loc_index = 0;
  for (const PlannedLeaderWrite& lw : leader_writes) {
    const BuiltVersion& bv = built[loc_index];
    Descriptor desc;
    desc.status = ChunkStatus::kWritten;
    desc.location = locations[loc_index];
    desc.stored_size = bv.stored_size;
    desc.hash = bv.hash;
    cache_.PutDirty(LeaderChunkId(lw.id), desc);
    if (lw.old_desc.written()) {
      log_.ReleaseLive(lw.old_desc.location, lw.old_desc.stored_size);
    }
    // Install / refresh the in-memory leader.
    auto it = leaders_.find(lw.id);
    if (it != leaders_.end()) {
      it->second.leader = lw.leader;
      it->second.dirty = false;
    } else {
      TDB_ASSIGN_OR_RETURN(CryptoSuite suite,
                           CryptoSuite::Create(lw.leader.params));
      leaders_.emplace(lw.id, LeaderEntry(lw.leader, std::move(suite)));
    }
    sys->allocated_ranks.erase(lw.id);
    std::erase(sys->avail_ranks, static_cast<uint64_t>(lw.id));
    if (lw.id >= sys->leader.num_positions) {
      sys->leader.num_positions = lw.id + 1;
    }
    ++loc_index;
  }
  for (const PlannedWrite& w : writes) {
    const BuiltVersion& bv = built[loc_index];
    Descriptor desc;
    desc.status = ChunkStatus::kWritten;
    desc.location = locations[loc_index];
    desc.stored_size = bv.stored_size;
    desc.hash = bv.hash;
    cache_.PutDirty(w.id, desc);
    vcache_.Erase(w.id);
    if (w.old_desc.written()) {
      log_.ReleaseLive(w.old_desc.location, w.old_desc.stored_size);
    }
    // Leader writes were applied above, so restored partitions resolve now.
    TDB_ASSIGN_OR_RETURN(LeaderEntry* entry, GetLeader(w.id.partition));
    entry->allocated_ranks.erase(w.id.position.rank);
    if (w.is_restore) {
      std::erase(entry->avail_ranks, w.id.position.rank);
      if (w.id.position.rank >= entry->leader.num_positions) {
        entry->leader.num_positions = w.id.position.rank + 1;
        entry->dirty = true;
      }
    }
    stats_.chunks_written.fetch_add(1, std::memory_order_relaxed);
    ++loc_index;
  }
  for (const PlannedDealloc& d : deallocs) {
    Descriptor free_desc;
    free_desc.status = ChunkStatus::kFree;
    cache_.PutDirty(d.id, free_desc);
    vcache_.Erase(d.id);
    log_.ReleaseLive(d.old_desc.location, d.old_desc.stored_size);
    d.entry->avail_ranks.push_back(d.id.position.rank);
  }
  for (PartitionId pid : dealloc_closure) {
    // Detach the partition from its source's copies list. The cleaner (and
    // dealloc validation) walk source→copies to gather every owner of a
    // chunk version; a dangling entry makes that closure fail, and the
    // cleaner then judges every version of the *surviving* source dead.
    Result<LeaderEntry*> dead = GetLeader(pid);
    if (dead.ok()) {
      PartitionId src = (*dead)->leader.copied_from;
      if (src != kSystemPartition &&
          std::find(dealloc_closure.begin(), dealloc_closure.end(), src) ==
              dealloc_closure.end()) {
        Result<LeaderEntry*> source = GetLeader(src);
        if (source.ok()) {
          std::erase((*source)->leader.copies, pid);
          (*source)->dirty = true;  // persisted by the next checkpoint
        }
      }
    }
    Result<Descriptor> old_desc = GetDescriptor(LeaderChunkId(pid));
    if (old_desc.ok() && old_desc->written()) {
      log_.ReleaseLive(old_desc->location, old_desc->stored_size);
    }
    Descriptor free_desc;
    free_desc.status = ChunkStatus::kFree;
    cache_.PutDirty(LeaderChunkId(pid), free_desc);
    cache_.DropPartition(pid);
    vcache_.ErasePartition(pid);
    leaders_.erase(pid);
    sys->avail_ranks.push_back(pid);
  }
  // Restores may rewrite arbitrary positions (and partition parameters), so
  // invalidate the validated cache wholesale rather than auditing the set.
  bool has_restore = false;
  for (const Batch::PartitionOp& op : batch.partition_writes) {
    has_restore = has_restore || op.is_restore;
  }
  for (const Batch::ChunkWrite& w : batch.chunk_writes) {
    has_restore = has_restore || w.is_restore;
  }
  if (has_restore) {
    read_gen_.fetch_add(1, std::memory_order_acq_rel);
  }

  TDB_RETURN_IF_ERROR(FinishCommitSet());
  if (!is_cleaner_commit) {
    stats_.commits.fetch_add(1, std::memory_order_relaxed);
    obs::Count("chunk.commits");
    obs::Count("chunk.chunks_written", writes.size());
    obs::Count("chunk.bytes_committed", batch_plain_bytes);
    obs::TraceEmit(obs::TraceKind::kCommit, "chunk_store", writes.size(),
                   batch_plain_bytes);
  }
  return OkStatus();
}

Status ChunkStore::FinishCommitSet() {
  set_hash_.reset();
  if (direct_ || options_.validation.flush_every_commit) {
    ProfileScope scope("untrusted_store_write");
    TDB_RETURN_IF_ERROR(log_.FlushStore());
  }
  ProfileScope scope("tamper_resistant_store");
  if (direct_) {
    TDB_RETURN_IF_ERROR(direct_->WriteRegister(last_leader_loc_, log_.tail()));
  } else {
    TDB_RETURN_IF_ERROR(counter_->MaybeFlush(/*force=*/false));
  }
  return OkStatus();
}

// ---------------------------------------------------------------------------
// Materialization & checkpoint

Status ChunkStore::MaterializeTree(PartitionId partition) {
  TDB_ASSIGN_OR_RETURN(LeaderEntry* entry, GetLeader(partition));
  PartitionLeader& leader = entry->leader;

  std::vector<std::pair<ChunkId, Descriptor>> pending =
      cache_.DirtyEntries(partition, 0);
  uint8_t target_height = PartitionLeader::HeightFor(leader.num_positions);
  if (pending.empty() && leader.tree_height == target_height) {
    return OkStatus();
  }
  std::vector<ChunkId> to_mark_clean;
  to_mark_clean.reserve(pending.size());
  for (const auto& [id, _] : pending) {
    to_mark_clean.push_back(id);
  }

  uint8_t old_height = leader.tree_height;
  uint8_t top = std::max<uint8_t>(target_height, old_height);
  if (top == 0) {
    return OkStatus();  // empty partition, nothing to persist
  }

  for (uint8_t h = 1; h <= top; ++h) {
    // Splice the old root into its new parent when the tree grows.
    if (old_height >= 1 && h == old_height + 1 && leader.root.written()) {
      bool overridden = false;
      for (const auto& [id, _] : pending) {
        if (id.position.rank == 0) {
          overridden = true;
          break;
        }
      }
      if (!overridden) {
        pending.emplace_back(ChunkId(partition, old_height, 0), leader.root);
      }
    }
    if (pending.empty()) {
      break;
    }
    // Group pending child descriptors by parent map chunk rank.
    std::map<uint64_t, std::vector<std::pair<ChunkId, Descriptor>>> by_parent;
    for (auto& p : pending) {
      by_parent[p.first.position.rank / kMapFanout].push_back(std::move(p));
    }
    pending.clear();
    // Serial pass: read/merge existing map chunks and pickle the updated
    // ones. Levels stay sequential (parents hash children), but within a
    // level every map chunk builds independently.
    std::vector<ChunkId> map_ids;
    std::vector<Bytes> map_plains;
    map_ids.reserve(by_parent.size());
    map_plains.reserve(by_parent.size());
    for (auto& [parent_rank, children] : by_parent) {
      ChunkId map_id(partition, h, parent_rank);
      MapChunk map;
      if (h <= old_height) {
        TDB_ASSIGN_OR_RETURN(Descriptor existing, GetDescriptor(map_id));
        if (existing.written()) {
          TDB_ASSIGN_OR_RETURN(Bytes content,
                               ReadVersion(map_id, existing, entry->suite));
          TDB_ASSIGN_OR_RETURN(map, MapChunk::Unpickle(content));
          log_.ReleaseLive(existing.location, existing.stored_size);
        }
      }
      for (const auto& [child_id, child_desc] : children) {
        map.slots[child_id.position.SlotInParent()] = child_desc;
      }
      map_ids.push_back(map_id);
      map_plains.push_back(map.Pickle());
    }
    std::vector<BuildTask> tasks;
    tasks.reserve(map_ids.size());
    for (size_t i = 0; i < map_ids.size(); ++i) {
      tasks.push_back(BuildTask{map_ids[i], map_plains[i], &entry->suite});
    }
    std::vector<BuiltVersion> built = BuildVersions(tasks);
    std::vector<LogManager::Blob> blobs;
    blobs.reserve(built.size());
    for (BuiltVersion& bv : built) {
      blobs.push_back(LogManager::Blob{std::move(bv.blob), true});
    }
    TDB_ASSIGN_OR_RETURN(std::vector<Location> locs,
                         AppendToCommitSet(std::move(blobs)));
    for (size_t i = 0; i < map_ids.size(); ++i) {
      Descriptor desc;
      desc.status = ChunkStatus::kWritten;
      desc.location = locs[i];
      desc.stored_size = built[i].stored_size;
      desc.hash = built[i].hash;
      cache_.PutDirty(map_ids[i], desc);
      to_mark_clean.push_back(map_ids[i]);
      pending.emplace_back(map_ids[i], desc);
    }
  }

  if (pending.size() == 1) {
    leader.root = pending[0].second;
    leader.tree_height = top;
    entry->dirty = true;
  } else if (!pending.empty()) {
    failed_ = true;
    return CorruptionError("map materialization did not converge to a root");
  }
  for (const ChunkId& id : to_mark_clean) {
    cache_.MarkClean(id);
  }
  return OkStatus();
}

Status ChunkStore::Checkpoint() {
  std::lock_guard<std::mutex> lock(mu_);
  ProfileScope scope("chunk_store");
  return CheckpointLocked();
}

Status ChunkStore::CheckpointLocked() {
  TDB_RETURN_IF_ERROR(CheckUsable());
  obs::LatencyTimer checkpoint_timer("chunk.checkpoint_us");
  const uint64_t dirty_at_entry = cache_.dirty_count();
  in_checkpoint_ = true;
  if (counter_) {
    set_hash_.emplace(system_suite_->hash_alg());
  }

  // 1. Materialize every user partition with buffered descriptors.
  for (PartitionId p : cache_.DirtyPartitions(0)) {
    if (p != kSystemPartition) {
      TDB_RETURN_IF_ERROR(MaterializeTree(p));
    }
  }

  // 2. Write dirty partition leaders as system data chunks, built as one
  // fan-out batch in leader-id order.
  TDB_ASSIGN_OR_RETURN(LeaderEntry* sys, GetLeader(kSystemPartition));
  std::vector<PartitionId> dirty_pids;
  std::vector<Descriptor> dirty_old_descs;
  std::vector<Bytes> dirty_plains;
  for (auto& [pid, entry] : leaders_) {
    if (pid == kSystemPartition || !entry.dirty) {
      continue;
    }
    PartitionLeader to_write = entry.leader;
    to_write.free_ranks = entry.avail_ranks;
    to_write.free_ranks.insert(to_write.free_ranks.end(),
                               entry.allocated_ranks.begin(),
                               entry.allocated_ranks.end());
    TDB_ASSIGN_OR_RETURN(Descriptor old_desc,
                         GetDescriptor(LeaderChunkId(pid)));
    dirty_pids.push_back(pid);
    dirty_old_descs.push_back(old_desc);
    dirty_plains.push_back(to_write.PickleToBytes());
    entry.dirty = false;
  }
  if (!dirty_pids.empty()) {
    std::vector<BuildTask> tasks;
    tasks.reserve(dirty_pids.size());
    for (size_t i = 0; i < dirty_pids.size(); ++i) {
      tasks.push_back(BuildTask{LeaderChunkId(dirty_pids[i]), dirty_plains[i],
                                system_suite_.get()});
    }
    std::vector<BuiltVersion> built = BuildVersions(tasks);
    std::vector<LogManager::Blob> blobs;
    blobs.reserve(built.size());
    for (BuiltVersion& bv : built) {
      blobs.push_back(LogManager::Blob{std::move(bv.blob), true});
    }
    TDB_ASSIGN_OR_RETURN(std::vector<Location> locs,
                         AppendToCommitSet(std::move(blobs)));
    for (size_t i = 0; i < dirty_pids.size(); ++i) {
      Descriptor desc;
      desc.status = ChunkStatus::kWritten;
      desc.location = locs[i];
      desc.stored_size = built[i].stored_size;
      desc.hash = built[i].hash;
      cache_.PutDirty(LeaderChunkId(dirty_pids[i]), desc);
      if (dirty_old_descs[i].written()) {
        log_.ReleaseLive(dirty_old_descs[i].location,
                         dirty_old_descs[i].stored_size);
      }
    }
  }

  // 3. Materialize the system tree (partition map).
  TDB_RETURN_IF_ERROR(MaterializeTree(kSystemPartition));

  // 4. Build and append the system leader (the head of the new residual log).
  SystemLeaderRecord record;
  record.system_tree = sys->leader;
  record.system_tree.free_ranks = sys->avail_ranks;
  record.system_tree.free_ranks.insert(record.system_tree.free_ranks.end(),
                                       sys->allocated_ranks.begin(),
                                       sys->allocated_ranks.end());
  if (counter_) {
    record.commit_count = counter_->NextCount();
  }
  // Release the previous leader version's bytes.
  if (last_leader_size_ > 0) {
    log_.ReleaseLive(last_leader_loc_, last_leader_size_);
  }
  record.segments = log_.SegmentTableSnapshot();

  if (direct_) {
    // Deferred: the reset takes effect at the leader append below, so that a
    // segment link emitted ahead of the leader lands in the old stream.
    direct_reset_pending_ = true;
  }
  set_hash_.reset();
  if (counter_) {
    set_hash_.emplace(system_suite_->hash_alg());
  }
  BuiltVersion leader_bv =
      BuildVersion(SystemLeaderId(), record.Pickle(), *system_suite_);
  std::vector<LogManager::Blob> leader_blob;
  leader_blob.push_back(LogManager::Blob{std::move(leader_bv.blob), true});
  TDB_ASSIGN_OR_RETURN(std::vector<Location> leader_locs,
                       AppendToCommitSet(std::move(leader_blob)));
  Location leader_loc = leader_locs[0];

  if (counter_) {
    // "A checkpoint is followed by a commit chunk containing the hash of the
    // leader chunk, as if the leader were the only chunk in the commit set."
    CommitRecord commit;
    commit.count = record.commit_count;
    commit.set_digest = set_hash_->Finish();
    commit.Sign(*system_suite_);
    std::vector<LogManager::Blob> tail;
    tail.push_back(LogManager::Blob{
        BuildUnnamed(UnnamedType::kCommit, commit.Pickle()), false});
    TDB_RETURN_IF_ERROR(AppendToCommitSet(std::move(tail)).status());
  }
  set_hash_.reset();

  // 5./6. Durability ordering differs by mode.
  //
  // Direct mode: flush -> register (which carries the new head) -> super-
  // block; the register write is the commit point and recovery uses its
  // head, so a crash anywhere leaves a consistent triple.
  //
  // Counter mode: flush -> superblock -> counter. The superblock write marks
  // checkpoint completion (§4.9.2). If it were written *after* the counter
  // advanced, a crash in between would leave recovery scanning from the old
  // leader while the trusted counter already counts the checkpoint's commit
  // chunk — a false tamper positive. With this order, a crash between
  // superblock and counter leaves the log at most one commit ahead, inside
  // the accepted window, and recovery resynchronizes the counter.
  {
    ProfileScope io_scope("untrusted_store_write");
    TDB_RETURN_IF_ERROR(log_.FlushStore());
  }
  if (direct_) {
    {
      ProfileScope trs_scope("tamper_resistant_store");
      TDB_RETURN_IF_ERROR(direct_->WriteRegister(leader_loc, log_.tail()));
    }
    TDB_RETURN_IF_ERROR(WriteSuperblock(leader_loc, leader_bv.stored_size));
  } else {
    TDB_RETURN_IF_ERROR(WriteSuperblock(leader_loc, leader_bv.stored_size));
    ProfileScope trs_scope("tamper_resistant_store");
    TDB_RETURN_IF_ERROR(counter_->MaybeFlush(/*force=*/true));
  }

  last_leader_loc_ = leader_loc;
  last_leader_size_ = leader_bv.stored_size;
  log_.OnCheckpointComplete(leader_loc);
  stats_.checkpoints.fetch_add(1, std::memory_order_relaxed);
  obs::Count("chunk.checkpoints");
  obs::TraceEmit(obs::TraceKind::kCheckpoint, "chunk_store", dirty_at_entry,
                 leader_loc.segment);
  in_checkpoint_ = false;
  return OkStatus();
}

// ---------------------------------------------------------------------------
// Recovery

Status ChunkStore::RecoverLocked() {
  // Replay may change any chunk; drop all validated-cache claims (the store
  // is freshly opened so the cache is empty today — this guards refactors).
  read_gen_.fetch_add(1, std::memory_order_acq_rel);
  // Locate the head (leader) of the residual log.
  Location head;
  uint32_t leader_size_hint = 0;
  std::optional<DirectHashValidator::RegisterState> reg_state;
  if (direct_) {
    TDB_ASSIGN_OR_RETURN(DirectHashValidator::RegisterState state,
                         direct_->ReadRegister());
    head = state.head;
    reg_state = state;
  } else {
    TDB_ASSIGN_OR_RETURN(auto super, ReadSuperblock());
    head = super.first;
    leader_size_hint = super.second;
  }
  (void)leader_size_hint;

  // Bootstrap: read and parse the leader version. A head location that falls
  // outside the store, or a leader that does not fit in its segment, can
  // only come from a forged superblock/register — treat reads that miss the
  // device as tampering, not I/O misuse.
  size_t header_size = HeaderCipherSize(*system_suite_);
  if (head.segment >= store_->num_segments() ||
      static_cast<size_t>(head.offset) + header_size > store_->segment_size()) {
    return TamperDetectedError("stored head location is outside the store");
  }
  TDB_ASSIGN_OR_RETURN(Bytes header_ct,
                       store_->Read(head.segment, head.offset, header_size));
  Result<VersionHeader> header = DecodeHeader(*system_suite_, header_ct);
  if (!header.ok() || header->unnamed ||
      header->id.position.height != kLeaderHeight) {
    return TamperDetectedError("no leader chunk at the stored head location");
  }
  if (static_cast<size_t>(head.offset) + header_size + header->body_size >
      store_->segment_size()) {
    return TamperDetectedError("leader chunk extends past its segment");
  }
  TDB_ASSIGN_OR_RETURN(
      Bytes body_ct,
      store_->Read(head.segment, head.offset + static_cast<uint32_t>(header_size),
                   header->body_size));
  Result<Bytes> leader_plain = system_suite_->Decrypt(body_ct);
  if (!leader_plain.ok()) {
    return TamperDetectedError("leader chunk fails to decrypt");
  }
  Result<SystemLeaderRecord> record = SystemLeaderRecord::Unpickle(*leader_plain);
  if (!record.ok()) {
    return TamperDetectedError("leader chunk fails to parse");
  }
  uint32_t leader_size =
      static_cast<uint32_t>(header_size) + header->body_size;

  obs::Count("recovery.runs");
  obs::TraceEmit(obs::TraceKind::kRecoveryStep, "recovery", head.segment,
                 head.offset, "head leader located and parsed");

  leaders_.clear();
  leaders_.emplace(kSystemPartition,
                   LeaderEntry(record->system_tree, *system_suite_));
  TDB_RETURN_IF_ERROR(
      log_.LoadFromCheckpoint(record->segments, head, leader_size));
  last_leader_loc_ = head;
  last_leader_size_ = leader_size;
  if (counter_) {
    TDB_RETURN_IF_ERROR(counter_->Init(record->commit_count));
  }

  // Roll forward through the residual log.
  LogManager::Scanner scanner = log_.MakeScanner(head);
  StreamingHash accum(system_suite_->hash_alg());
  std::vector<LogManager::Scanned> pending;    // current (unconfirmed) set
  std::vector<LogManager::Scanned> confirmed;  // validated, to apply
  Location tail = Location{head.segment, head.offset + leader_size};
  uint64_t expected_count = record->commit_count;
  uint64_t last_valid_count = record->commit_count;
  bool first = true;
  bool hit_register_tail = false;

  while (true) {
    if (direct_ && scanner.position() == reg_state->tail) {
      hit_register_tail = true;
      break;
    }
    TDB_ASSIGN_OR_RETURN(std::optional<LogManager::Scanned> item,
                         scanner.Next());
    if (!item.has_value()) {
      break;
    }
    log_.NoteScanned(item->location.segment,
                     item->location.offset +
                         static_cast<uint32_t>(item->raw.size()));
    if (first) {
      // The leader itself: absorbed into the hash, not applied.
      first = false;
      accum.Update(item->raw);
      if (direct_) {
        direct_->Absorb(item->raw);
        tail = scanner.position();
      }
      continue;
    }
    if (counter_) {
      if (item->header.unnamed && item->header.type == UnnamedType::kCommit) {
        // Verify the commit set that just ended.
        StreamingHash digest_copy = accum;
        Bytes expected_digest = digest_copy.Finish();
        Result<Bytes> plain = system_suite_->Decrypt(item->body_ct);
        if (!plain.ok()) {
          break;
        }
        Result<CommitRecord> commit = CommitRecord::Unpickle(*plain);
        if (!commit.ok() || !commit->VerifySignature(*system_suite_) ||
            commit->count != expected_count ||
            !ConstantTimeEqual(commit->set_digest, expected_digest)) {
#ifdef TDB_RECOVERY_DEBUG
          fprintf(stderr, "recovery stop: ok=%d sig=%d count=%llu exp=%llu digest_ok=%d\n",
                  commit.ok(), commit.ok() ? commit->VerifySignature(*system_suite_) : -1,
                  commit.ok() ? (unsigned long long)commit->count : 0,
                  (unsigned long long)expected_count,
                  commit.ok() ? ConstantTimeEqual(commit->set_digest, expected_digest) : -1);
#endif
          break;  // torn tail (or tampering caught by the counter window)
        }
        // The set is valid: confirm it.
        for (LogManager::Scanned& s : pending) {
          confirmed.push_back(std::move(s));
        }
        pending.clear();
        last_valid_count = commit->count;
        ++expected_count;
        tail = scanner.position();
        accum = StreamingHash(system_suite_->hash_alg());
      } else if (item->header.unnamed &&
                 item->header.type == UnnamedType::kNextSegment) {
        // Link chunks carry no state and are excluded from commit-set
        // digests (they may be inserted after a digest was computed).
      } else {
        accum.Update(item->raw);
        pending.push_back(std::move(*item));
      }
    } else {
      direct_->Absorb(item->raw);
      accum.Update(item->raw);
      confirmed.push_back(std::move(*item));
      tail = scanner.position();
    }
  }

  obs::Count("recovery.records_confirmed", confirmed.size());
  obs::Count("recovery.records_pending_discarded", pending.size());
  obs::TraceEmit(obs::TraceKind::kRecoveryStep, "recovery", confirmed.size(),
                 pending.size(), "residual log scanned");

  if (direct_) {
    if (!hit_register_tail && !(reg_state->tail == tail)) {
      return TamperDetectedError(
          "residual log ends before the trusted tail: the log was truncated");
    }
    if (!ConstantTimeEqual(direct_->CurrentDigest(), reg_state->digest)) {
      return TamperDetectedError(
          "residual log hash does not match the tamper-resistant store");
    }
  } else {
    TDB_RETURN_IF_ERROR(counter_->RecoveryCheck(
        last_valid_count, options_.validation.delta_tu));
  }

  // Apply the confirmed history: first collect cleaner overrides, then redo
  // every update in order.
  std::map<uint64_t, CleanerEntry> overrides;
  for (const LogManager::Scanned& item : confirmed) {
    if (item.header.unnamed && item.header.type == UnnamedType::kCleaner) {
      TDB_ASSIGN_OR_RETURN(Bytes plain, system_suite_->Decrypt(item.body_ct));
      TDB_ASSIGN_OR_RETURN(CleanerRecord rec, CleanerRecord::Unpickle(plain));
      for (CleanerEntry& e : rec.entries) {
        overrides[e.new_location.Pack()] = std::move(e);
      }
    }
  }
  for (const LogManager::Scanned& item : confirmed) {
    TDB_RETURN_IF_ERROR(ApplyRecoveredVersion(item, overrides));
  }

  log_.SetTailForRecovery(tail);
  log_.SetResidualChain(scanner.visited_segments());
  obs::TraceEmit(obs::TraceKind::kRecoveryStep, "recovery", tail.segment,
                 tail.offset, "confirmed history applied");
  return OkStatus();
}

Status ChunkStore::ApplyRecoveredVersion(
    const LogManager::Scanned& scanned,
    std::map<uint64_t, CleanerEntry>& overrides) {
  const VersionHeader& header = scanned.header;
  if (header.unnamed) {
    if (header.type == UnnamedType::kDeallocate) {
      TDB_ASSIGN_OR_RETURN(Bytes plain,
                           system_suite_->Decrypt(scanned.body_ct));
      TDB_ASSIGN_OR_RETURN(DeallocateRecord rec,
                           DeallocateRecord::Unpickle(plain));
      for (const ChunkId& id : rec.chunks) {
        Result<LeaderEntry*> entry = GetLeader(id.partition);
        if (!entry.ok()) {
          continue;  // partition deallocated later in the log
        }
        Result<Descriptor> old_desc = GetDescriptor(id);
        if (old_desc.ok() && old_desc->written()) {
          log_.ReleaseLive(old_desc->location, old_desc->stored_size);
        }
        Descriptor free_desc;
        free_desc.status = ChunkStatus::kFree;
        cache_.PutDirty(id, free_desc);
        (*entry)->avail_ranks.push_back(id.position.rank);
      }
      TDB_ASSIGN_OR_RETURN(LeaderEntry* sys, GetLeader(kSystemPartition));
      for (PartitionId pid : rec.partitions) {
        // Mirror CommitLocked: a recovered deallocation also detaches the
        // partition from its source's copies list (the persisted source
        // leader may still name it if no checkpoint intervened).
        Result<LeaderEntry*> dead = GetLeader(pid);
        if (dead.ok()) {
          PartitionId src = (*dead)->leader.copied_from;
          if (src != kSystemPartition &&
              std::find(rec.partitions.begin(), rec.partitions.end(), src) ==
                  rec.partitions.end()) {
            Result<LeaderEntry*> source = GetLeader(src);
            if (source.ok()) {
              std::erase((*source)->leader.copies, pid);
              (*source)->dirty = true;
            }
          }
        }
        Result<Descriptor> old_desc = GetDescriptor(LeaderChunkId(pid));
        if (old_desc.ok() && old_desc->written()) {
          log_.ReleaseLive(old_desc->location, old_desc->stored_size);
        }
        Descriptor free_desc;
        free_desc.status = ChunkStatus::kFree;
        cache_.PutDirty(LeaderChunkId(pid), free_desc);
        cache_.DropPartition(pid);
        leaders_.erase(pid);
        sys->avail_ranks.push_back(pid);
      }
    }
    // Commit, next-segment, and cleaner records carry no further state.
    return OkStatus();
  }
  if (header.id.position.height == kLeaderHeight) {
    return OkStatus();  // an abandoned checkpoint's leader: ignore
  }

  auto it = overrides.find(scanned.location.Pack());
  if (it != overrides.end()) {
    // A cleaner-moved version: current in the listed partitions only.
    const CleanerEntry& entry = it->second;
    if (entry.current_in.empty()) {
      return OkStatus();
    }
    TDB_ASSIGN_OR_RETURN(LeaderEntry* first_leader,
                         GetLeader(entry.current_in[0]));
    Result<Bytes> plain = first_leader->suite.Decrypt(scanned.body_ct);
    if (!plain.ok()) {
      return TamperDetectedError("cleaner-moved chunk fails to decrypt");
    }
    Bytes hash = first_leader->suite.Hash(*plain);
    bool released = false;
    for (PartitionId pid : entry.current_in) {
      ChunkId cid(pid, header.id.position);
      Result<Descriptor> old_desc = GetDescriptor(cid);
      if (!released && old_desc.ok() && old_desc->written()) {
        log_.ReleaseLive(old_desc->location, old_desc->stored_size);
        released = true;  // the old physical version is shared
      }
      Descriptor desc;
      desc.status = ChunkStatus::kWritten;
      desc.location = scanned.location;
      desc.stored_size = static_cast<uint32_t>(scanned.raw.size());
      desc.hash = hash;
      cache_.PutDirty(cid, desc);
    }
    log_.AddLive(scanned.location, static_cast<uint32_t>(scanned.raw.size()));
    return OkStatus();
  }

  // Ordinary named version: redo the descriptor update.
  const ChunkId& id = header.id;
  Result<LeaderEntry*> entry_result = GetLeader(id.partition);
  if (!entry_result.ok() &&
      !(id.partition == kSystemPartition && id.position.height == 0)) {
    // The partition is unknown (deallocated later in the log, perhaps);
    // leave the version to the cleaner.
    return OkStatus();
  }

  if (id.partition == kSystemPartition && id.position.height == 0) {
    // A partition leader version.
    PartitionId pid = static_cast<PartitionId>(id.position.rank);
    Result<Bytes> plain = system_suite_->Decrypt(scanned.body_ct);
    if (!plain.ok()) {
      return TamperDetectedError("recovered leader fails to decrypt");
    }
    TDB_ASSIGN_OR_RETURN(PartitionLeader leader,
                         PartitionLeader::UnpickleFromBytes(*plain));
    Result<Descriptor> old_desc = GetDescriptor(id);
    if (old_desc.ok() && old_desc->written()) {
      log_.ReleaseLive(old_desc->location, old_desc->stored_size);
    }
    Descriptor desc;
    desc.status = ChunkStatus::kWritten;
    desc.location = scanned.location;
    desc.stored_size = static_cast<uint32_t>(scanned.raw.size());
    desc.hash = system_suite_->Hash(*plain);
    cache_.PutDirty(id, desc);
    log_.AddLive(scanned.location, desc.stored_size);
    TDB_ASSIGN_OR_RETURN(CryptoSuite suite, CryptoSuite::Create(leader.params));
    auto lit = leaders_.find(pid);
    if (lit != leaders_.end()) {
      lit->second.leader = leader;
      lit->second.avail_ranks = leader.free_ranks;
      lit->second.allocated_ranks.clear();
      lit->second.dirty = true;
    } else {
      auto [pos, _] =
          leaders_.emplace(pid, LeaderEntry(std::move(leader), std::move(suite)));
      pos->second.dirty = true;
    }
    // Partition-id bookkeeping on the system tree.
    TDB_ASSIGN_OR_RETURN(LeaderEntry* sys, GetLeader(kSystemPartition));
    std::erase(sys->avail_ranks, id.position.rank);
    sys->allocated_ranks.erase(id.position.rank);
    if (id.position.rank >= sys->leader.num_positions) {
      sys->leader.num_positions = id.position.rank + 1;
    }
    return OkStatus();
  }

  LeaderEntry* entry = *entry_result;
  Result<Bytes> plain = entry->suite.Decrypt(scanned.body_ct);
  if (!plain.ok()) {
    return TamperDetectedError("recovered chunk fails to decrypt: " +
                               id.ToString());
  }
  Result<Descriptor> old_desc = GetDescriptor(id);
  if (old_desc.ok() && old_desc->written()) {
    log_.ReleaseLive(old_desc->location, old_desc->stored_size);
  }
  Descriptor desc;
  desc.status = ChunkStatus::kWritten;
  desc.location = scanned.location;
  desc.stored_size = static_cast<uint32_t>(scanned.raw.size());
  desc.hash = entry->suite.Hash(*plain);
  cache_.PutDirty(id, desc);
  log_.AddLive(scanned.location, desc.stored_size);
  if (id.position.height == 0) {
    std::erase(entry->avail_ranks, id.position.rank);
    entry->allocated_ranks.erase(id.position.rank);
    if (id.position.rank >= entry->leader.num_positions) {
      entry->leader.num_positions = id.position.rank + 1;
    }
  }
  return OkStatus();
}

// ---------------------------------------------------------------------------
// Stats

Result<std::pair<Location, uint32_t>> ChunkStore::DebugChunkLocation(
    ChunkId id) {
  std::lock_guard<std::mutex> lock(mu_);
  TDB_ASSIGN_OR_RETURN(Descriptor desc, GetDescriptor(id));
  if (!desc.written()) {
    return NotFoundError("chunk " + id.ToString() + " is not written");
  }
  return std::make_pair(desc.location, desc.stored_size);
}

ChunkStore::Stats ChunkStore::GetStats() {
  Stats s;
  // The monotonic cells are atomics: no lock needed, so stats polling never
  // blocks behind a long commit.
  s.commits = stats_.commits.load(std::memory_order_relaxed);
  s.checkpoints = stats_.checkpoints.load(std::memory_order_relaxed);
  s.segments_cleaned = stats_.segments_cleaned.load(std::memory_order_relaxed);
  s.chunks_written = stats_.chunks_written.load(std::memory_order_relaxed);
  s.bytes_committed = stats_.bytes_committed.load(std::memory_order_relaxed);
  s.log_bytes_appended =
      stats_.log_bytes_appended.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  s.cache_size = cache_.size();
  s.dirty_descriptors = cache_.dirty_count();
  s.free_segments = log_.free_segment_count();
  s.live_log_bytes = log_.total_live_bytes();
  s.used_log_bytes = log_.total_used_bytes();
  // Publish the point-in-time fields as registry gauges so one snapshot
  // carries both the registry counters and the store's current shape.
  obs::SetGauge("chunk.cache_size", static_cast<double>(s.cache_size));
  obs::SetGauge("chunk.dirty_descriptors",
                static_cast<double>(s.dirty_descriptors));
  obs::SetGauge("chunk.free_segments", static_cast<double>(s.free_segments));
  obs::SetGauge("chunk.live_log_bytes",
                static_cast<double>(s.live_log_bytes));
  obs::SetGauge("chunk.used_log_bytes",
                static_cast<double>(s.used_log_bytes));
  obs::SetGauge("chunk.vcache_size", static_cast<double>(vcache_.size()));
  return s;
}

}  // namespace tdb
