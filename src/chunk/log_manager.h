// Log-structured storage management (§4.9): the untrusted store is divided
// into fixed-size segments; the log is a sequence of potentially non-adjacent
// segments linked by unnamed next-segment chunks. The LogManager owns the
// segment table, the append path, and the sequential scanner used by
// recovery (§4.8) and the cleaner (§4.9.5).
//
// Invariant maintained by Append: after every version there is room for at
// least a next-segment chunk in its segment, so a scanner positioned after
// any version can always read a header-sized ciphertext.

#ifndef SRC_CHUNK_LOG_MANAGER_H_
#define SRC_CHUNK_LOG_MANAGER_H_

#include <functional>
#include <optional>
#include <vector>

#include "src/chunk/descriptor.h"
#include "src/chunk/log_format.h"
#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/crypto/suite.h"
#include "src/store/untrusted_store.h"

namespace tdb {

struct SegmentInfo {
  enum class State : uint8_t {
    kFree = 0,
    kLive = 1,
    // Cleaned segments hold stale bytes that pre-checkpoint recovery state
    // may still reference; they become kFree at the next checkpoint.
    kCleaned = 2,
  };

  State state = State::kFree;
  uint32_t bytes_used = 0;  // append high-water mark
  uint32_t live_bytes = 0;  // bytes of current (non-obsolete) named versions

  void Pickle(PickleWriter& w) const;
  static Result<SegmentInfo> Unpickle(PickleReader& r);
};

// Plaintext of the system leader chunk: the system partition's leader state
// (whose position map is the partition map), the segment table, and the
// commit count as of the checkpoint (counter-based validation).
struct SystemLeaderRecord {
  PartitionLeader system_tree;
  std::vector<SegmentInfo> segments;
  uint64_t commit_count = 0;

  Bytes Pickle() const;
  static Result<SystemLeaderRecord> Unpickle(ByteView data);
};

class LogManager {
 public:
  LogManager(UntrustedStore* store, const CryptoSuite* system_suite);

  // Fresh store: all segments free; appending starts at segment 0.
  Status InitFresh();
  // Warm start from a checkpointed segment table. `leader_loc`/`leader_size`
  // fix up the leader's own bytes, which the table (pickled before the
  // leader was written) cannot include.
  Status LoadFromCheckpoint(std::vector<SegmentInfo> table, Location leader_loc,
                            uint32_t leader_size);

  struct Blob {
    Bytes bytes;
    bool live = true;  // false for unnamed chunks (obsolete once checkpointed)
  };

  // Appends blobs in order, inserting next-segment chunks as needed.
  // `on_append` observes every byte string written, in log order (including
  // generated next-segment chunks) — this feeds direct-hash validation.
  // `is_link` is true for generated next-segment chunks, which commit-set
  // digests must exclude (a link may be inserted between a commit set's
  // blobs and its commit record, after the digest was computed).
  // Returns the location of each input blob.
  Result<std::vector<Location>> Append(
      const std::vector<Blob>& blobs,
      const std::function<void(ByteView, bool is_link)>& on_append);

  Status FlushStore() { return store_->Flush(); }

  Location tail() const { return tail_; }

  // Live-bytes accounting, driven by descriptor updates in the chunk store.
  void ReleaseLive(Location loc, uint32_t size);
  void AddLive(Location loc, uint32_t size);

  // --- recovery support ---
  void SetTailForRecovery(Location tail);
  void NoteScanned(uint32_t segment, uint32_t end_offset);
  void SetResidualChain(std::vector<uint32_t> segments);

  // --- checkpoint & cleaning support ---
  // Rotates the residual log to start at the new leader and releases cleaned
  // segments for reuse.
  void OnCheckpointComplete(Location leader_loc);
  bool InResidual(uint32_t segment) const;
  // Segments eligible for cleaning, lowest utilization first.
  std::vector<uint32_t> CleanableSegments() const;
  void MarkCleaned(uint32_t segment);

  const std::vector<SegmentInfo>& segments() const { return segments_; }
  std::vector<SegmentInfo> SegmentTableSnapshot() const { return segments_; }
  size_t segment_size() const { return store_->segment_size(); }
  // Largest version that fits in a segment alongside a next-segment chunk.
  size_t max_blob_size() const;
  uint32_t free_segment_count() const;
  uint64_t total_live_bytes() const;
  uint64_t total_used_bytes() const;

  // --- sequential scanning ---
  struct Scanned {
    Location location;
    VersionHeader header;
    Bytes raw;      // header ciphertext || body ciphertext, as stored
    Bytes body_ct;  // body ciphertext only
    Location end;   // position immediately after this version
  };

  class Scanner {
   public:
    // Returns the next version, or nullopt when no valid version header can
    // be read at the current position (the log tail in counter mode). I/O
    // failures surface as errors. Next-segment chunks are returned like any
    // other version, after which the scanner continues in the next segment.
    Result<std::optional<Scanned>> Next();

    Location position() const { return pos_; }
    const std::vector<uint32_t>& visited_segments() const { return visited_; }

   private:
    friend class LogManager;
    Scanner(const LogManager* log, Location start)
        : log_(log), pos_(start), visited_{start.segment} {}

    const LogManager* log_;
    Location pos_;
    std::vector<uint32_t> visited_;
  };

  Scanner MakeScanner(Location start) const { return Scanner(this, start); }

  UntrustedStore* store() { return store_; }
  const UntrustedStore* store() const { return store_; }

 private:
  size_t header_ct_size() const;
  size_t next_segment_blob_size() const;
  Result<uint32_t> PickFreeSegment();

  UntrustedStore* store_;
  const CryptoSuite* system_suite_;
  std::vector<SegmentInfo> segments_;
  std::vector<uint32_t> residual_;  // ordered residual-log segment chain
  Location tail_;
};

}  // namespace tdb

#endif  // SRC_CHUNK_LOG_MANAGER_H_
