// Log cleaning (§4.9.5, §5.5): reclaims the storage of obsolete chunk
// versions by scanning low-utilization segments of the checkpointed log,
// revalidating and rewriting the versions that are still current in some
// partition, and appending a cleaner chunk naming those partitions so
// recovery can redo the moves.
//
// Cleaned segments are quarantined (kCleaned) until the next checkpoint: the
// pre-checkpoint recovery state may still reference their old bytes, so they
// must not be overwritten before a new checkpoint supersedes that state.

#include "src/chunk/chunk_store.h"
#include "src/obs/metrics.h"
#include "src/obs/profiler.h"
#include "src/obs/trace.h"

namespace tdb {

Result<size_t> ChunkStore::Clean(size_t max_segments) {
  std::lock_guard<std::mutex> lock(mu_);
  ProfileScope scope("chunk_store");
  return CleanLocked(max_segments);
}

Result<size_t> ChunkStore::CleanLocked(size_t max_segments) {
  TDB_RETURN_IF_ERROR(CheckUsable());
  std::vector<uint32_t> candidates = log_.CleanableSegments();
  size_t cleaned = 0;
  for (uint32_t segment : candidates) {
    if (cleaned >= max_segments) {
      break;
    }
    if (log_.free_segment_count() == 0) {
      break;  // no room to rewrite live data
    }
    TDB_RETURN_IF_ERROR(CleanSegment(segment));
    ++cleaned;
    stats_.segments_cleaned.fetch_add(1, std::memory_order_relaxed);
    obs::Count("cleaner.segments_cleaned");
  }
  if (cleaned > 0) {
    // Checkpointing supersedes all references into the cleaned segments and
    // releases them for reuse.
    TDB_RETURN_IF_ERROR(CheckpointLocked());
    // Defensive: cleaning only relocates versions (plaintext is unchanged),
    // but the validated cache does not assume that — cached entries are
    // re-verified against the moved versions on their next read.
    read_gen_.fetch_add(1, std::memory_order_acq_rel);
  }
  return cleaned;
}

Status ChunkStore::CleanSegment(uint32_t segment) {
  obs::LatencyTimer clean_timer("cleaner.segment_us");
  const uint32_t bytes_used = log_.segments()[segment].bytes_used;

  struct LiveVersion {
    ChunkId original_id;
    Bytes body_ct;  // encrypted body, pending revalidation
    Bytes plain;    // filled by revalidation
    Location location;
    const CryptoSuite* suite = nullptr;  // owning partition's suite
    std::vector<PartitionId> current_in;
    std::vector<Descriptor> old_descs;  // parallel to current_in
  };
  std::vector<LiveVersion> live;

  LogManager::Scanner scanner = log_.MakeScanner(Location{segment, 0});
  while (scanner.position().segment == segment &&
         scanner.position().offset < bytes_used) {
    TDB_ASSIGN_OR_RETURN(std::optional<LogManager::Scanned> item,
                         scanner.Next());
    if (!item.has_value()) {
      break;
    }
    const VersionHeader& header = item->header;
    if (header.unnamed || header.id.position.height == kLeaderHeight) {
      // Unnamed chunks are always obsolete in the checkpointed log (§4.9.5);
      // a stale system leader is obsolete by definition.
      continue;
    }
    // Check current-ness in the owning partition and all transitive copies
    // (a partition cannot be deallocated while its copies survive, so the
    // closure covers every possible owner).
    Result<std::vector<PartitionId>> closure =
        PartitionClosure(header.id.partition);
    if (!closure.ok()) {
      continue;  // owning partition deallocated: version is dead
    }
    LiveVersion lv;
    lv.original_id = header.id;
    for (PartitionId q : *closure) {
      ChunkId qid(q, header.id.position);
      Result<Descriptor> desc = GetDescriptor(qid);
      if (desc.ok() && desc->written() && desc->location == item->location) {
        lv.current_in.push_back(q);
        lv.old_descs.push_back(*desc);
      }
    }
    if (lv.current_in.empty()) {
      continue;
    }
    // LeaderEntry pointers are stable (leaders_ is a std::map), so the suite
    // pointer stays valid for the fan-out below.
    TDB_ASSIGN_OR_RETURN(LeaderEntry* owner, GetLeader(lv.current_in[0]));
    lv.suite = &owner->suite;
    lv.body_ct = std::move(item->body_ct);
    lv.location = item->location;
    live.push_back(std::move(lv));
  }

  // Revalidate every surviving version before rewriting so the cleaner
  // cannot launder tampered chunks (§4.9.5: hashes are recomputed by the
  // rewrite commit). Each decrypt+hash is independent, so fan out; verdicts
  // land in per-slot flags and the first failure (in log order) wins.
  std::vector<uint8_t> tampered(live.size(), 0);
  ParallelFor(crypto_pool_.get(), live.size(), [&](size_t i) {
    LiveVersion& lv = live[i];
    Result<Bytes> plain = lv.suite->Decrypt(lv.body_ct);
    if (!plain.ok() ||
        !ConstantTimeEqual(lv.suite->Hash(*plain), lv.old_descs[0].hash)) {
      tampered[i] = 1;
      return;
    }
    lv.plain = std::move(*plain);
  });
  for (size_t i = 0; i < live.size(); ++i) {
    if (tampered[i] != 0) {
      return TamperDetectedError("cleaner found a tampered chunk at " +
                                 live[i].location.ToString());
    }
  }

  // Rewrite the live versions as one commit, cleaner record last.
  if (counter_) {
    set_hash_.emplace(system_suite_->hash_alg());
  }
  std::vector<BuildTask> tasks;
  tasks.reserve(live.size());
  for (const LiveVersion& lv : live) {
    tasks.push_back(BuildTask{lv.original_id, lv.plain, lv.suite});
  }
  std::vector<BuiltVersion> built = BuildVersions(tasks);
  std::vector<LogManager::Blob> blobs;
  blobs.reserve(built.size());
  for (BuiltVersion& bv : built) {
    blobs.push_back(LogManager::Blob{std::move(bv.blob), true});
  }
  TDB_ASSIGN_OR_RETURN(std::vector<Location> locations,
                       AppendToCommitSet(std::move(blobs)));

  CleanerRecord record;
  for (size_t i = 0; i < live.size(); ++i) {
    CleanerEntry entry;
    entry.original_id = live[i].original_id;
    entry.current_in = live[i].current_in;
    entry.new_location = locations[i];
    entry.stored_size = built[i].stored_size;
    record.entries.push_back(std::move(entry));
  }
  if (!record.entries.empty() || counter_) {
    std::vector<LogManager::Blob> tail;
    if (!record.entries.empty()) {
      tail.push_back(LogManager::Blob{
          BuildUnnamed(UnnamedType::kCleaner, record.Pickle()), false});
    }
    if (counter_) {
      CommitRecord commit;
      commit.count = counter_->NextCount();
      // The cleaner blob must be appended before the digest is taken, so
      // split the appends.
      if (!tail.empty()) {
        TDB_RETURN_IF_ERROR(AppendToCommitSet(std::move(tail)).status());
        tail.clear();
      }
      commit.set_digest = set_hash_->Finish();
      commit.Sign(*system_suite_);
      tail.push_back(LogManager::Blob{
          BuildUnnamed(UnnamedType::kCommit, commit.Pickle()), false});
    }
    TDB_RETURN_IF_ERROR(AppendToCommitSet(std::move(tail)).status());
  }

  // Update descriptors for every partition in which a version is current.
  for (size_t i = 0; i < live.size(); ++i) {
    Descriptor desc;
    desc.status = ChunkStatus::kWritten;
    desc.location = locations[i];
    desc.stored_size = built[i].stored_size;
    desc.hash = built[i].hash;
    for (PartitionId q : live[i].current_in) {
      cache_.PutDirty(ChunkId(q, live[i].original_id.position), desc);
    }
  }

  TDB_RETURN_IF_ERROR(FinishCommitSet());
  log_.MarkCleaned(segment);
  uint64_t bytes_rewritten = 0;
  for (const BuiltVersion& bv : built) {
    bytes_rewritten += bv.stored_size;
  }
  obs::Count("cleaner.chunks_rewritten", live.size());
  obs::Count("cleaner.bytes_rewritten", bytes_rewritten);
  obs::TraceEmit(obs::TraceKind::kSegmentClean, "cleaner", segment,
                 bytes_rewritten);
  return OkStatus();
}

}  // namespace tdb
