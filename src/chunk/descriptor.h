// Chunk descriptors, map chunks, and partition leaders (§4.3, §5.2).
//
// A descriptor records a chunk's status, the location and stored size of its
// current version, and the expected hash of its plaintext state. Map chunks
// are fixed-fanout vectors of descriptors. A partition leader carries the
// partition's cryptographic parameters, the root descriptor and shape of its
// position map, the free list, and the ids of its direct copies.

#ifndef SRC_CHUNK_DESCRIPTOR_H_
#define SRC_CHUNK_DESCRIPTOR_H_

#include <vector>

#include "src/chunk/chunk_id.h"
#include "src/common/bytes.h"
#include "src/common/pickle.h"
#include "src/common/status.h"
#include "src/crypto/suite.h"

namespace tdb {

enum class ChunkStatus : uint8_t {
  kUnallocated = 0,
  kWritten = 1,
  kFree = 2,  // deallocated, id awaiting reuse
};

struct Descriptor {
  ChunkStatus status = ChunkStatus::kUnallocated;
  Location location;         // valid iff status == kWritten
  uint32_t stored_size = 0;  // total bytes of the version in the log
  Bytes hash;                // partition hash of the plaintext chunk state

  bool written() const { return status == ChunkStatus::kWritten; }

  void Pickle(PickleWriter& w) const;
  static Result<Descriptor> Unpickle(PickleReader& r);

  bool operator==(const Descriptor&) const = default;
};

// The state of a map chunk: kMapFanout descriptor slots.
struct MapChunk {
  std::vector<Descriptor> slots;  // always kMapFanout entries

  MapChunk() : slots(kMapFanout) {}

  Bytes Pickle() const;
  static Result<MapChunk> Unpickle(ByteView data);
};

// Partition leader state (§5.2). For the system partition this same struct
// describes the partition map; its extra log-level fields live in
// SystemLeader (log_manager.h).
struct PartitionLeader {
  CryptoParams params;

  // Position-map shape. tree_height == 0 means the partition has no chunks
  // yet (no root map chunk exists).
  uint8_t tree_height = 0;
  Descriptor root;          // descriptor of the root map chunk
  uint64_t num_positions = 0;  // data ranks ever allocated (tree width)

  // Ids of deallocated data chunks available for reuse. The paper embeds
  // this list in the descriptors; we store it in the leader, which is
  // equivalent for recovery purposes and simpler (documented in DESIGN.md).
  std::vector<uint64_t> free_ranks;

  // Direct copies of this partition (§5.5), for cleaner current-ness checks.
  std::vector<PartitionId> copies;

  // The partition this one was copied from (0 = none); used by Diff and by
  // backups to identify snapshot lineage.
  PartitionId copied_from = 0;

  void Pickle(PickleWriter& w) const;
  static Result<PartitionLeader> Unpickle(PickleReader& r);

  Bytes PickleToBytes() const;
  static Result<PartitionLeader> UnpickleFromBytes(ByteView data);

  // Number of map-tree levels needed to cover `num_positions` data ranks.
  static uint8_t HeightFor(uint64_t num_positions);
};

}  // namespace tdb

#endif  // SRC_CHUNK_DESCRIPTOR_H_
