// Module-level time accounting used to regenerate Figure 12 ("TDB runtime
// analysis"): per-module wall time where "the time reported for each module
// excludes nested calls to other reported modules".
//
// Implementation: a per-thread stack of active scopes. Entering a scope
// pauses the enclosing scope's accumulation; leaving resumes it. Samples
// accumulate into per-thread blocks (so crypto workers never contend on a
// global lock) and are merged when a snapshot is taken.
//
// Profiling is compiled in but costs only a few nanoseconds per scope when
// disabled (a single relaxed atomic load).

#ifndef SRC_OBS_PROFILER_H_
#define SRC_OBS_PROFILER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tdb {

class Profiler {
 public:
  struct Entry {
    std::string module;
    double total_us = 0.0;
    uint64_t calls = 0;
  };

  static Profiler& Instance();

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void Reset();
  void AddSample(const char* module, double us);
  std::vector<Entry> Snapshot() const;

  // Named event counters (e.g., store flush counts for §9.5.3).
  void AddCount(const char* counter, uint64_t n = 1);
  uint64_t GetCount(const std::string& counter) const;
  std::map<std::string, uint64_t> Counters() const;

 private:
  struct ThreadBlock;

  Profiler() = default;

  // The calling thread's sample block, registered on first use. Blocks are
  // never removed from the registry (threads may outlive a Reset), only
  // cleared, so the thread_local handle in LocalBlock stays valid.
  ThreadBlock& LocalBlock();

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;  // guards the block registry and counters_
  std::vector<std::shared_ptr<ThreadBlock>> blocks_;
  std::map<std::string, uint64_t> counters_;
};

// RAII scope that attributes elapsed time to `module`, excluding time spent
// in nested ProfileScopes (which is attributed to their own modules).
class ProfileScope {
 public:
  explicit ProfileScope(const char* module);
  ~ProfileScope();

  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  using Clock = std::chrono::steady_clock;

  const char* module_ = nullptr;
  bool active_ = false;
  double self_us_ = 0.0;       // accumulated while this scope is on top
  Clock::time_point started_;  // start of the current on-top interval
  ProfileScope* parent_ = nullptr;
};

// Convenience: counts an event if profiling is enabled.
inline void ProfileCount(const char* counter, uint64_t n = 1) {
  Profiler& p = Profiler::Instance();
  if (p.enabled()) {
    p.AddCount(counter, n);
  }
}

}  // namespace tdb

#endif  // SRC_OBS_PROFILER_H_
