// Process-wide metrics registry: named counters, gauges, and latency
// histograms.
//
// Counters and histogram samples accumulate into per-thread sharded blocks
// (the same design as the Profiler) so crypto workers never contend on a
// global lock; blocks are merged when a snapshot is taken. Gauges are
// last-writer-wins and live under the registry mutex — they are set from
// slow paths (GetStats, snapshots), never from hot loops.
//
// The registry is compiled in but costs a single relaxed atomic load per
// site when disabled (use the Count/SetGauge/Observe helpers below).

#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/percentile.h"

namespace tdb::obs {

class MetricsRegistry {
 public:
  struct HistogramSnapshot {
    std::string name;
    uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    // Log-scaled bucket counts (percentile.h layout), merged across thread
    // blocks; empty when the histogram never saw a sample.
    std::vector<uint64_t> buckets;

    double mean() const { return count == 0 ? 0.0 : sum / count; }

    // Interpolated quantile from the buckets, clamped to the exact observed
    // [min, max]. Relative error is bounded by kQuantileRelativeError
    // (6.25%) for values >= 1 (microseconds, in this codebase).
    double Quantile(double q) const;
  };

  static MetricsRegistry& Instance();

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void Reset();

  // Adds `n` to a named counter on the calling thread's block.
  void Add(const char* counter, uint64_t n = 1);
  // Sets a named gauge (last writer wins).
  void SetGauge(const char* gauge, double value);
  // Records one sample into a named histogram on the calling thread's block.
  void Observe(const char* histogram, double value);

  // Merged views across all thread blocks.
  uint64_t GetCounter(const std::string& counter) const;
  std::map<std::string, uint64_t> Counters() const;
  std::map<std::string, double> Gauges() const;
  std::vector<HistogramSnapshot> Histograms() const;

 private:
  struct ThreadBlock;

  MetricsRegistry() = default;

  // The calling thread's block, registered on first use. Blocks are never
  // removed (threads may outlive a Reset), only cleared, so the
  // thread_local handle stays valid.
  ThreadBlock& LocalBlock();

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;  // guards the block registry and gauges_
  std::vector<std::shared_ptr<ThreadBlock>> blocks_;
  std::map<std::string, double> gauges_;
};

// Instrumentation-site helpers: one relaxed atomic load when disabled.
inline void Count(const char* counter, uint64_t n = 1) {
  MetricsRegistry& m = MetricsRegistry::Instance();
  if (m.enabled()) {
    m.Add(counter, n);
  }
}

inline void SetGauge(const char* gauge, double value) {
  MetricsRegistry& m = MetricsRegistry::Instance();
  if (m.enabled()) {
    m.SetGauge(gauge, value);
  }
}

inline void Observe(const char* histogram, double value) {
  MetricsRegistry& m = MetricsRegistry::Instance();
  if (m.enabled()) {
    m.Observe(histogram, value);
  }
}

// RAII latency sampler: observes elapsed microseconds into `histogram` on
// destruction. Reads the clock only when the registry is enabled at
// construction time, so the disabled path is a single relaxed load.
class LatencyTimer {
 public:
  explicit LatencyTimer(const char* histogram)
      : histogram_(histogram),
        armed_(MetricsRegistry::Instance().enabled()) {
    if (armed_) {
      started_ = Clock::now();
    }
  }

  ~LatencyTimer() {
    if (armed_) {
      MetricsRegistry::Instance().Observe(
          histogram_,
          std::chrono::duration<double, std::micro>(Clock::now() - started_)
              .count());
    }
  }

  LatencyTimer(const LatencyTimer&) = delete;
  LatencyTimer& operator=(const LatencyTimer&) = delete;

 private:
  using Clock = std::chrono::steady_clock;

  const char* histogram_;
  bool armed_;
  Clock::time_point started_;
};

}  // namespace tdb::obs

#endif  // SRC_OBS_METRICS_H_
