// Structured trace-event journal: a bounded ring buffer of typed events
// (commits, checkpoints, segment cleans, cache hits/misses/evictions, page
// faults/writebacks, WAL appends/replays, backup writes/restores, recovery
// steps, and tamper alarms with location + cause).
//
// The ring keeps the most recent `capacity()` events for inspection; exact
// per-kind totals are kept separately in atomics so counts stay correct
// after the ring wraps. Tracing is compiled in but costs a single relaxed
// atomic load per site when disabled (use the TraceEmit helper).

#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace tdb::obs {

enum class TraceKind : uint8_t {
  kCommit = 0,
  kCheckpoint,
  kSegmentClean,
  kCacheHit,
  kCacheMiss,
  kCacheEviction,
  kPageFault,
  kPageWriteback,
  kWalAppend,
  kWalReplay,
  kBackupWrite,
  kBackupRestore,
  kRecoveryStep,
  kTamperDetected,
  kSlowRequest,
  // Live partition hand-off milestones (a = partition id, detail = target
  // address): first export shipped / ownership cut over (drain + final
  // incremental) / directory marked moved.
  kPartitionHandoffBegin,
  kPartitionHandoffCutover,
  kPartitionHandoffComplete,
  kNumKinds,  // sentinel; not a valid event kind
};

inline constexpr size_t kNumTraceKinds =
    static_cast<size_t>(TraceKind::kNumKinds);

// Stable snake_case name used in JSON snapshots (e.g. "tamper_detected").
const char* TraceKindName(TraceKind kind);

struct TraceEvent {
  uint64_t seq = 0;   // global emission order since the last Reset, 0-based
  uint64_t t_us = 0;  // microseconds since process start
  TraceKind kind = TraceKind::kCommit;
  const char* module = "";  // emitting subsystem; must be a static string
  // Kind-specific operands (e.g. chunk count + byte count for a commit,
  // segment number for a clean, page number for a fault).
  uint64_t a = 0;
  uint64_t b = 0;
  std::string detail;  // human-readable location/cause; set on tamper alarms
};

class TraceJournal {
 public:
  static TraceJournal& Instance();

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Drops retained events and resets all per-kind totals and the sequence
  // number; capacity and the enabled flag are unchanged.
  void Reset();

  // Resizes the ring (dropping retained events). Capacity is clamped to at
  // least 1.
  void SetCapacity(size_t capacity);
  size_t capacity() const;

  void Emit(TraceKind kind, const char* module, uint64_t a = 0, uint64_t b = 0,
            std::string detail = {});

  // Retained events, oldest first. At most capacity() entries; older events
  // have been overwritten but are still reflected in CountOf/TotalEmitted.
  std::vector<TraceEvent> Snapshot() const;

  // Exact number of events of `kind` emitted since the last Reset,
  // regardless of ring wrap.
  uint64_t CountOf(TraceKind kind) const;
  uint64_t TotalEmitted() const;

 private:
  TraceJournal();

  std::atomic<bool> enabled_{false};
  std::array<std::atomic<uint64_t>, kNumTraceKinds> counts_{};

  mutable std::mutex mu_;  // guards the ring
  std::vector<TraceEvent> ring_;
  size_t cap_;
  uint64_t next_seq_ = 0;
};

// Emission helper for instrumentation sites: one relaxed atomic load when
// tracing is disabled.
inline void TraceEmit(TraceKind kind, const char* module, uint64_t a = 0,
                      uint64_t b = 0, std::string detail = {}) {
  TraceJournal& j = TraceJournal::Instance();
  if (j.enabled()) {
    j.Emit(kind, module, a, b, std::move(detail));
  }
}

}  // namespace tdb::obs

#endif  // SRC_OBS_TRACE_H_
