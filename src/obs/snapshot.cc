#include "src/obs/snapshot.h"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/profiler.h"
#include "src/obs/trace.h"

namespace tdb::obs {
namespace {

void AppendF(std::string& out, const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  out += buf;
}

void AppendU(std::string& out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

// Adds num/den to `out` under `key` when the denominator is nonzero.
void AddRatio(std::map<std::string, double>& out, const char* key,
              uint64_t num, uint64_t den) {
  if (den != 0) {
    out[key] = static_cast<double>(num) / static_cast<double>(den);
  }
}

}  // namespace

void EnableAll() {
  Profiler::Instance().Enable();
  MetricsRegistry::Instance().Enable();
  TraceJournal::Instance().Enable();
}

void DisableAll() {
  Profiler::Instance().Disable();
  MetricsRegistry::Instance().Disable();
  TraceJournal::Instance().Disable();
}

void ResetAll() {
  Profiler::Instance().Reset();
  MetricsRegistry::Instance().Reset();
  TraceJournal::Instance().Reset();
}

bool AnyEnabled() {
  return Profiler::Instance().enabled() ||
         MetricsRegistry::Instance().enabled() ||
         TraceJournal::Instance().enabled();
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::map<std::string, double> DerivedRatios() {
  MetricsRegistry& m = MetricsRegistry::Instance();
  std::map<std::string, uint64_t> c = m.Counters();
  auto counter = [&c](const char* name) -> uint64_t {
    auto it = c.find(name);
    return it == c.end() ? 0 : it->second;
  };

  std::map<std::string, double> out;
  AddRatio(out, "object_cache_hit_ratio", counter("object.cache_hits"),
           counter("object.cache_hits") + counter("object.cache_misses"));
  AddRatio(out, "xdb_page_cache_hit_ratio", counter("xdb.page_cache_hits"),
           counter("xdb.page_cache_hits") + counter("xdb.page_cache_misses"));
  // Bytes of log appended per byte of user plaintext committed (>= 1:
  // headers, maps, leaders, cleaning).
  AddRatio(out, "write_amplification", counter("chunk.log_bytes_appended"),
           counter("chunk.bytes_committed"));
  // Fraction of appended log bytes written by the cleaner (the paper's
  // cleaning overhead, driven by segment utilization u — §9.4).
  AddRatio(out, "cleaning_overhead", counter("cleaner.bytes_rewritten"),
           counter("chunk.log_bytes_appended"));

  std::map<std::string, double> gauges = m.Gauges();
  auto live = gauges.find("chunk.live_log_bytes");
  auto used = gauges.find("chunk.used_log_bytes");
  if (live != gauges.end() && used != gauges.end() && used->second > 0) {
    out["log_utilization"] = live->second / used->second;
  }
  return out;
}

std::string SnapshotJson(size_t max_trace_events) {
  Profiler& prof = Profiler::Instance();
  MetricsRegistry& metrics = MetricsRegistry::Instance();
  TraceJournal& trace = TraceJournal::Instance();

  std::string out;
  out.reserve(4096);
  out += "{\n";

  // Enabled flags: a snapshot with everything disabled is still valid, it
  // just reflects whatever was recorded while enabled.
  out += "  \"enabled\": {\"profiler\": ";
  out += prof.enabled() ? "true" : "false";
  out += ", \"metrics\": ";
  out += metrics.enabled() ? "true" : "false";
  out += ", \"trace\": ";
  out += trace.enabled() ? "true" : "false";
  out += "},\n";

  // Per-module self time (Figure-12 style), largest first.
  std::vector<Profiler::Entry> modules = prof.Snapshot();
  std::sort(modules.begin(), modules.end(),
            [](const Profiler::Entry& x, const Profiler::Entry& y) {
              return x.total_us > y.total_us;
            });
  out += "  \"modules\": [";
  for (size_t i = 0; i < modules.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"module\": \"" + JsonEscape(modules[i].module) +
           "\", \"total_us\": ";
    AppendF(out, "%.3f", modules[i].total_us);
    out += ", \"calls\": ";
    AppendU(out, modules[i].calls);
    out += "}";
  }
  out += modules.empty() ? "],\n" : "\n  ],\n";

  // Profiler event counters (flush counts etc.) kept distinct from registry
  // counters so existing consumers keep their names.
  out += "  \"profile_counters\": {";
  {
    std::map<std::string, uint64_t> counters = prof.Counters();
    size_t i = 0;
    for (const auto& [name, n] : counters) {
      out += i++ == 0 ? "\n" : ",\n";
      out += "    \"" + JsonEscape(name) + "\": ";
      AppendU(out, n);
    }
    out += counters.empty() ? "},\n" : "\n  },\n";
  }

  out += "  \"counters\": {";
  {
    std::map<std::string, uint64_t> counters = metrics.Counters();
    size_t i = 0;
    for (const auto& [name, n] : counters) {
      out += i++ == 0 ? "\n" : ",\n";
      out += "    \"" + JsonEscape(name) + "\": ";
      AppendU(out, n);
    }
    out += counters.empty() ? "},\n" : "\n  },\n";
  }

  out += "  \"gauges\": {";
  {
    std::map<std::string, double> gauges = metrics.Gauges();
    size_t i = 0;
    for (const auto& [name, v] : gauges) {
      out += i++ == 0 ? "\n" : ",\n";
      out += "    \"" + JsonEscape(name) + "\": ";
      AppendF(out, "%.3f", v);
    }
    out += gauges.empty() ? "},\n" : "\n  },\n";
  }

  out += "  \"histograms\": [";
  {
    std::vector<MetricsRegistry::HistogramSnapshot> hists =
        metrics.Histograms();
    for (size_t i = 0; i < hists.size(); ++i) {
      const auto& h = hists[i];
      out += i == 0 ? "\n" : ",\n";
      out += "    {\"name\": \"" + JsonEscape(h.name) + "\", \"count\": ";
      AppendU(out, h.count);
      out += ", \"sum\": ";
      AppendF(out, "%.3f", h.sum);
      out += ", \"mean\": ";
      AppendF(out, "%.3f", h.mean());
      out += ", \"min\": ";
      AppendF(out, "%.3f", h.min);
      out += ", \"max\": ";
      AppendF(out, "%.3f", h.max);
      out += ", \"p50\": ";
      AppendF(out, "%.3f", h.Quantile(0.50));
      out += ", \"p95\": ";
      AppendF(out, "%.3f", h.Quantile(0.95));
      out += ", \"p99\": ";
      AppendF(out, "%.3f", h.Quantile(0.99));
      out += ", \"p999\": ";
      AppendF(out, "%.3f", h.Quantile(0.999));
      out += "}";
    }
    out += hists.empty() ? "],\n" : "\n  ],\n";
  }

  out += "  \"derived\": {";
  {
    std::map<std::string, double> derived = DerivedRatios();
    size_t i = 0;
    for (const auto& [name, v] : derived) {
      out += i++ == 0 ? "\n" : ",\n";
      out += "    \"" + JsonEscape(name) + "\": ";
      AppendF(out, "%.6f", v);
    }
    out += derived.empty() ? "},\n" : "\n  },\n";
  }

  out += "  \"trace\": {\n    \"capacity\": ";
  AppendU(out, trace.capacity());
  out += ",\n    \"total_emitted\": ";
  AppendU(out, trace.TotalEmitted());
  out += ",\n    \"counts\": {";
  {
    size_t emitted = 0;
    for (size_t k = 0; k < kNumTraceKinds; ++k) {
      TraceKind kind = static_cast<TraceKind>(k);
      uint64_t n = trace.CountOf(kind);
      if (n == 0) {
        continue;
      }
      out += emitted++ == 0 ? "\n" : ",\n";
      out += "      \"";
      out += TraceKindName(kind);
      out += "\": ";
      AppendU(out, n);
    }
    out += emitted == 0 ? "},\n" : "\n    },\n";
  }
  out += "    \"events\": [";
  {
    std::vector<TraceEvent> events = trace.Snapshot();
    size_t start =
        events.size() > max_trace_events ? events.size() - max_trace_events : 0;
    size_t emitted = 0;
    for (size_t i = start; i < events.size(); ++i) {
      const TraceEvent& e = events[i];
      out += emitted++ == 0 ? "\n" : ",\n";
      out += "      {\"seq\": ";
      AppendU(out, e.seq);
      out += ", \"t_us\": ";
      AppendU(out, e.t_us);
      out += ", \"kind\": \"";
      out += TraceKindName(e.kind);
      out += "\", \"module\": \"";
      out += JsonEscape(e.module);
      out += "\", \"a\": ";
      AppendU(out, e.a);
      out += ", \"b\": ";
      AppendU(out, e.b);
      out += ", \"detail\": \"" + JsonEscape(e.detail) + "\"}";
    }
    out += emitted == 0 ? "]\n" : "\n    ]\n";
  }
  out += "  }\n}\n";
  return out;
}

}  // namespace tdb::obs
