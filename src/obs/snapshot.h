// One unified observability snapshot: merges the module Profiler, the
// MetricsRegistry (counters/gauges/histograms), derived ratios (cache hit
// rates, log utilization, cleaning overhead), and the trace journal into a
// single JSON object. This is what `examples/tdb_stats` dumps and what
// every `--json` bench embeds alongside its timings.

#ifndef SRC_OBS_SNAPSHOT_H_
#define SRC_OBS_SNAPSHOT_H_

#include <cstddef>
#include <map>
#include <string>

namespace tdb::obs {

// Convenience toggles for the whole observability stack (Profiler +
// MetricsRegistry + TraceJournal).
void EnableAll();
void DisableAll();
void ResetAll();
bool AnyEnabled();

// Derived ratios computed from live counters/gauges; only ratios whose
// denominators are nonzero are present. Keys include
// "object_cache_hit_ratio", "xdb_page_cache_hit_ratio", "log_utilization",
// "write_amplification", and "cleaning_overhead" (see DESIGN.md
// "Observability" for the formulas).
std::map<std::string, double> DerivedRatios();

// The full snapshot as a JSON object (pretty-printed, two-space indent).
// At most `max_trace_events` of the most recent trace events are embedded;
// exact per-kind totals are always present.
std::string SnapshotJson(size_t max_trace_events = 64);

// Escapes a string for embedding in JSON (quotes not included).
std::string JsonEscape(const std::string& s);

}  // namespace tdb::obs

#endif  // SRC_OBS_SNAPSHOT_H_
