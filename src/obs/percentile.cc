#include "src/obs/percentile.h"

#include <algorithm>
#include <cmath>

namespace tdb::obs {

double Mean(const std::vector<double>& samples) {
  if (samples.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double s : samples) {
    sum += s;
  }
  return sum / static_cast<double>(samples.size());
}

double SampleStddev(const std::vector<double>& samples) {
  if (samples.size() < 2) {
    return 0.0;
  }
  double mean = Mean(samples);
  double var = 0.0;
  for (double s : samples) {
    double d = s - mean;
    var += d * d;
  }
  return std::sqrt(var / static_cast<double>(samples.size() - 1));
}

double SortedQuantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  double pos = q * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = lo + 1 < sorted.size() ? lo + 1 : lo;
  double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double Quantile(std::vector<double> samples, double q) {
  std::sort(samples.begin(), samples.end());
  return SortedQuantile(samples, q);
}

size_t BucketIndex(double value) {
  if (!(value >= 1.0)) {  // NaN and v < 1 both land in the underflow bucket
    return 0;
  }
  int exp = 0;
  double frac = std::frexp(value, &exp);  // value = frac * 2^exp, frac in [0.5, 1)
  size_t octave = static_cast<size_t>(exp - 1);  // 2^octave <= value < 2^(octave+1)
  if (octave >= kOctaves) {
    return kNumLatencyBuckets - 1;
  }
  // frac - 0.5 in [0, 0.5) maps linearly onto the octave's sub-buckets.
  size_t sub = static_cast<size_t>((frac - 0.5) * 2.0 *
                                   static_cast<double>(kSubBuckets));
  if (sub >= kSubBuckets) {
    sub = kSubBuckets - 1;
  }
  return 1 + octave * kSubBuckets + sub;
}

double BucketLowerBound(size_t index) {
  if (index == 0) {
    return 0.0;
  }
  if (index >= kNumLatencyBuckets - 1) {
    return std::ldexp(1.0, static_cast<int>(kOctaves));
  }
  size_t octave = (index - 1) / kSubBuckets;
  size_t sub = (index - 1) % kSubBuckets;
  return std::ldexp(1.0 + static_cast<double>(sub) /
                              static_cast<double>(kSubBuckets),
                    static_cast<int>(octave));
}

double BucketWidth(size_t index) {
  if (index == 0) {
    return 1.0;
  }
  if (index >= kNumLatencyBuckets - 1) {
    return 0.0;
  }
  size_t octave = (index - 1) / kSubBuckets;
  return std::ldexp(1.0 / static_cast<double>(kSubBuckets),
                    static_cast<int>(octave));
}

double BucketQuantile(const std::vector<uint64_t>& buckets, uint64_t count,
                      double q) {
  if (count == 0 || buckets.empty()) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  // Cumulative-rank convention: the q-quantile is the value at position
  // q * count of the cumulative distribution. The rank must land in the
  // bucket holding the ceil(rank)-th observation — never an earlier one —
  // so a high quantile over a few spread-out samples reports the top
  // sample's bucket, not the bottom's.
  double rank = q * static_cast<double>(count);
  double cumulative = 0.0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) {
      continue;
    }
    double in_bucket = static_cast<double>(buckets[i]);
    if (rank <= cumulative + in_bucket) {
      // Interpolate within the bucket: observations are assumed uniform
      // across its width, so the estimate is off by at most one bucket
      // width, i.e. a relative error of 1/kSubBuckets.
      double frac = (rank - cumulative) / in_bucket;
      frac = std::clamp(frac, 0.0, 1.0);
      return BucketLowerBound(i) + BucketWidth(i) * frac;
    }
    cumulative += in_bucket;
  }
  // Unreachable when the bucket counts sum to `count`; be safe if they
  // drifted (e.g. a racing snapshot) and report the top occupied edge.
  for (size_t i = buckets.size(); i-- > 0;) {
    if (buckets[i] != 0) {
      return BucketLowerBound(i) + BucketWidth(i);
    }
  }
  return 0.0;
}

}  // namespace tdb::obs
