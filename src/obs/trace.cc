#include "src/obs/trace.h"

#include <algorithm>
#include <chrono>

namespace tdb::obs {
namespace {

constexpr size_t kDefaultCapacity = 4096;

uint64_t NowMicros() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            start)
          .count());
}

}  // namespace

const char* TraceKindName(TraceKind kind) {
  switch (kind) {
    case TraceKind::kCommit:
      return "commit";
    case TraceKind::kCheckpoint:
      return "checkpoint";
    case TraceKind::kSegmentClean:
      return "segment_clean";
    case TraceKind::kCacheHit:
      return "cache_hit";
    case TraceKind::kCacheMiss:
      return "cache_miss";
    case TraceKind::kCacheEviction:
      return "cache_eviction";
    case TraceKind::kPageFault:
      return "page_fault";
    case TraceKind::kPageWriteback:
      return "page_writeback";
    case TraceKind::kWalAppend:
      return "wal_append";
    case TraceKind::kWalReplay:
      return "wal_replay";
    case TraceKind::kBackupWrite:
      return "backup_write";
    case TraceKind::kBackupRestore:
      return "backup_restore";
    case TraceKind::kRecoveryStep:
      return "recovery_step";
    case TraceKind::kTamperDetected:
      return "tamper_detected";
    case TraceKind::kSlowRequest:
      return "slow_request";
    case TraceKind::kPartitionHandoffBegin:
      return "partition_handoff_begin";
    case TraceKind::kPartitionHandoffCutover:
      return "partition_handoff_cutover";
    case TraceKind::kPartitionHandoffComplete:
      return "partition_handoff_complete";
    case TraceKind::kNumKinds:
      break;
  }
  return "unknown";
}

TraceJournal::TraceJournal() : cap_(kDefaultCapacity) {
  ring_.reserve(cap_);
}

TraceJournal& TraceJournal::Instance() {
  static TraceJournal instance;
  return instance;
}

void TraceJournal::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_seq_ = 0;
  for (auto& c : counts_) {
    c.store(0, std::memory_order_relaxed);
  }
}

void TraceJournal::SetCapacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  cap_ = capacity == 0 ? 1 : capacity;
  ring_.clear();
  ring_.reserve(cap_ < kDefaultCapacity ? cap_ : kDefaultCapacity);
}

size_t TraceJournal::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cap_;
}

void TraceJournal::Emit(TraceKind kind, const char* module, uint64_t a,
                        uint64_t b, std::string detail) {
  if (kind >= TraceKind::kNumKinds) {
    return;
  }
  uint64_t t_us = NowMicros();
  counts_[static_cast<size_t>(kind)].fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  TraceEvent event{next_seq_++, t_us, kind, module, a, b, std::move(detail)};
  if (ring_.size() < cap_) {
    ring_.push_back(std::move(event));
  } else {
    // Overwrite the oldest retained slot; seq keeps events ordered.
    ring_[event.seq % cap_] = std::move(event);
  }
}

std::vector<TraceEvent> TraceJournal::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out(ring_);
  // The ring is filled round-robin by seq; restore emission order.
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& x, const TraceEvent& y) {
              return x.seq < y.seq;
            });
  return out;
}

uint64_t TraceJournal::CountOf(TraceKind kind) const {
  if (kind >= TraceKind::kNumKinds) {
    return 0;
  }
  return counts_[static_cast<size_t>(kind)].load(std::memory_order_relaxed);
}

uint64_t TraceJournal::TotalEmitted() const {
  uint64_t total = 0;
  for (const auto& c : counts_) {
    total += c.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace tdb::obs
