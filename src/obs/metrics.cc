#include "src/obs/metrics.h"

#include <algorithm>

namespace tdb::obs {

namespace {

struct Hist {
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  // Log-scaled bucket counts (percentile.h layout), allocated on the first
  // observation so idle histogram names cost nothing.
  std::vector<uint64_t> buckets;
};

}  // namespace

// Metrics for one thread. Its mutex is uncontended on the hot path (only
// merge/Reset ever take it from another thread).
struct MetricsRegistry::ThreadBlock {
  std::mutex mu;
  std::map<std::string, uint64_t> counters;
  std::map<std::string, Hist> histograms;
};

MetricsRegistry& MetricsRegistry::Instance() {
  static MetricsRegistry instance;
  return instance;
}

MetricsRegistry::ThreadBlock& MetricsRegistry::LocalBlock() {
  thread_local std::shared_ptr<ThreadBlock> block;
  if (block == nullptr) {
    block = std::make_shared<ThreadBlock>();
    std::lock_guard<std::mutex> lock(mu_);
    blocks_.push_back(block);
  }
  return *block;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& b : blocks_) {
    std::lock_guard<std::mutex> block_lock(b->mu);
    b->counters.clear();
    b->histograms.clear();
  }
  gauges_.clear();
}

void MetricsRegistry::Add(const char* counter, uint64_t n) {
  ThreadBlock& b = LocalBlock();
  std::lock_guard<std::mutex> lock(b.mu);
  b.counters[counter] += n;
}

void MetricsRegistry::SetGauge(const char* gauge, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[gauge] = value;
}

void MetricsRegistry::Observe(const char* histogram, double value) {
  ThreadBlock& b = LocalBlock();
  std::lock_guard<std::mutex> lock(b.mu);
  Hist& h = b.histograms[histogram];
  if (h.count == 0 || value < h.min) {
    h.min = value;
  }
  if (h.count == 0 || value > h.max) {
    h.max = value;
  }
  h.count += 1;
  h.sum += value;
  if (h.buckets.empty()) {
    h.buckets.resize(kNumLatencyBuckets, 0);
  }
  h.buckets[BucketIndex(value)] += 1;
}

uint64_t MetricsRegistry::GetCounter(const std::string& counter) const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& b : blocks_) {
    std::lock_guard<std::mutex> block_lock(b->mu);
    auto it = b->counters.find(counter);
    if (it != b->counters.end()) {
      total += it->second;
    }
  }
  return total;
}

std::map<std::string, uint64_t> MetricsRegistry::Counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, uint64_t> merged;
  for (const auto& b : blocks_) {
    std::lock_guard<std::mutex> block_lock(b->mu);
    for (const auto& [name, n] : b->counters) {
      merged[name] += n;
    }
  }
  return merged;
}

std::map<std::string, double> MetricsRegistry::Gauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  return gauges_;
}

std::vector<MetricsRegistry::HistogramSnapshot> MetricsRegistry::Histograms()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, HistogramSnapshot> merged;
  for (const auto& b : blocks_) {
    std::lock_guard<std::mutex> block_lock(b->mu);
    for (const auto& [name, h] : b->histograms) {
      HistogramSnapshot& m = merged[name];
      if (m.count == 0 || h.min < m.min) {
        m.min = h.min;
      }
      if (m.count == 0 || h.max > m.max) {
        m.max = h.max;
      }
      m.name = name;
      m.count += h.count;
      m.sum += h.sum;
      if (!h.buckets.empty()) {
        if (m.buckets.empty()) {
          m.buckets.resize(kNumLatencyBuckets, 0);
        }
        for (size_t i = 0; i < h.buckets.size(); ++i) {
          m.buckets[i] += h.buckets[i];
        }
      }
    }
  }
  std::vector<HistogramSnapshot> out;
  out.reserve(merged.size());
  for (auto& [_, h] : merged) {
    out.push_back(std::move(h));
  }
  return out;
}

double MetricsRegistry::HistogramSnapshot::Quantile(double q) const {
  if (count == 0) {
    return 0.0;
  }
  // The snapshot tracks the exact extremes, so the endpoints need no bucket
  // interpolation; interior quantiles are bounded by them.
  if (q <= 0.0) {
    return min;
  }
  if (q >= 1.0) {
    return max;
  }
  return std::clamp(BucketQuantile(buckets, count, q), min, max);
}

}  // namespace tdb::obs
