#include "src/obs/profiler.h"

namespace tdb {

namespace {
thread_local ProfileScope* g_top = nullptr;
}  // namespace

// Samples for one thread. Its mutex is uncontended on the hot path (only
// Snapshot/Reset ever take it from another thread).
struct Profiler::ThreadBlock {
  std::mutex mu;
  std::map<std::string, Entry> entries;
};

Profiler& Profiler::Instance() {
  static Profiler instance;
  return instance;
}

Profiler::ThreadBlock& Profiler::LocalBlock() {
  thread_local std::shared_ptr<ThreadBlock> block;
  if (block == nullptr) {
    block = std::make_shared<ThreadBlock>();
    std::lock_guard<std::mutex> lock(mu_);
    blocks_.push_back(block);
  }
  return *block;
}

void Profiler::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& b : blocks_) {
    std::lock_guard<std::mutex> block_lock(b->mu);
    b->entries.clear();
  }
  counters_.clear();
}

void Profiler::AddSample(const char* module, double us) {
  ThreadBlock& b = LocalBlock();
  std::lock_guard<std::mutex> lock(b.mu);
  Entry& e = b.entries[module];
  e.module = module;
  e.total_us += us;
  e.calls += 1;
}

std::vector<Profiler::Entry> Profiler::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, Entry> merged;
  for (const auto& b : blocks_) {
    std::lock_guard<std::mutex> block_lock(b->mu);
    for (const auto& [name, e] : b->entries) {
      Entry& m = merged[name];
      m.module = name;
      m.total_us += e.total_us;
      m.calls += e.calls;
    }
  }
  std::vector<Entry> out;
  out.reserve(merged.size());
  for (auto& [_, e] : merged) {
    out.push_back(std::move(e));
  }
  return out;
}

void Profiler::AddCount(const char* counter, uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[counter] += n;
}

uint64_t Profiler::GetCount(const std::string& counter) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(counter);
  return it == counters_.end() ? 0 : it->second;
}

std::map<std::string, uint64_t> Profiler::Counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

ProfileScope::ProfileScope(const char* module) : module_(module) {
  if (!Profiler::Instance().enabled()) {
    return;
  }
  active_ = true;
  parent_ = g_top;
  Clock::time_point now = Clock::now();
  if (parent_ != nullptr) {
    // Pause the parent: bank its on-top interval.
    parent_->self_us_ +=
        std::chrono::duration<double, std::micro>(now - parent_->started_)
            .count();
  }
  started_ = now;
  g_top = this;
}

ProfileScope::~ProfileScope() {
  if (!active_) {
    return;
  }
  Clock::time_point now = Clock::now();
  self_us_ +=
      std::chrono::duration<double, std::micro>(now - started_).count();
  Profiler::Instance().AddSample(module_, self_us_);
  g_top = parent_;
  if (parent_ != nullptr) {
    // Resume the parent's on-top interval.
    parent_->started_ = now;
  }
}

}  // namespace tdb
