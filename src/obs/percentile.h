// The one quantile implementation in the tree. Two estimators live here and
// are tested against each other (tests/obs_test.cc) so they cannot drift:
//
//  * SortedQuantile — exact linear-interpolation quantile over a sorted
//    sample vector. Used by the YCSB driver's LatencySummary and the bench
//    harness (bench_util.h), which hold every sample.
//  * Log-scaled latency buckets + BucketQuantile — the registry histograms
//    (metrics.h) cannot keep samples, so they accumulate counts into
//    log-scaled buckets: one underflow bucket for values < 1, then
//    kSubBuckets linearly-spaced buckets per power of two ("octave") across
//    kOctaves octaves, then one overflow bucket. Within an octave the bucket
//    width is 2^k / kSubBuckets, so an interpolated quantile read back from
//    the buckets is within a relative error of 1 / kSubBuckets (6.25%) of
//    the true value for any value in [1, 2^kOctaves) — independent of the
//    distribution. Values are microseconds everywhere in this codebase, so
//    the covered range is 1 us .. ~13 days.
//
// Everything is allocation-free on the observation path: BucketIndex is a
// frexp plus integer arithmetic.

#ifndef SRC_OBS_PERCENTILE_H_
#define SRC_OBS_PERCENTILE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tdb::obs {

// --------------------------------------------------------------------------
// Exact sample statistics (the holder keeps every sample).

double Mean(const std::vector<double>& samples);

// Sample standard deviation (n-1 denominator); 0 with fewer than 2 samples.
double SampleStddev(const std::vector<double>& samples);

// Interpolated quantile of an ascending-sorted sample vector: the value at
// rank q*(n-1), linearly interpolated between neighbors. q is clamped to
// [0, 1]; an empty vector yields 0.
double SortedQuantile(const std::vector<double>& sorted, double q);

// Convenience for one-off use: sorts a copy. Callers needing several
// quantiles should sort once and call SortedQuantile.
double Quantile(std::vector<double> samples, double q);

// --------------------------------------------------------------------------
// Log-scaled latency buckets (the holder keeps only counts).

inline constexpr size_t kSubBuckets = 16;  // linear buckets per octave
inline constexpr size_t kOctaves = 40;     // covers [1, 2^40) ~ 13 days in us
inline constexpr size_t kNumLatencyBuckets = 2 + kOctaves * kSubBuckets;

// Maximum relative error of BucketQuantile for values in [1, 2^kOctaves).
inline constexpr double kQuantileRelativeError = 1.0 / kSubBuckets;

// Bucket for a value: 0 for v < 1 (underflow), kNumLatencyBuckets-1 for
// v >= 2^kOctaves (overflow), otherwise 1 + octave*kSubBuckets + sub.
size_t BucketIndex(double value);

// Inclusive lower bound and width of a bucket (the underflow bucket spans
// [0, 1); the overflow bucket reports width 0).
double BucketLowerBound(size_t index);
double BucketWidth(size_t index);

// Interpolated quantile over bucket counts (`buckets` sized
// kNumLatencyBuckets, `count` = total observations). Walks the cumulative
// distribution to the bucket containing rank q*(count-1) and interpolates
// linearly inside it; the caller should clamp to its observed [min, max] to
// tighten the edges. q is clamped to [0, 1]; count == 0 yields 0.
double BucketQuantile(const std::vector<uint64_t>& buckets, uint64_t count,
                      double q);

}  // namespace tdb::obs

#endif  // SRC_OBS_PERCENTILE_H_
