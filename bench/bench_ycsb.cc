// E15: the YCSB A–F mixes (Cooper et al.) over the full TDB stack, each run
// against both access paths:
//
//  * local — driver threads open ObjectStore transactions in-process;
//  * wire  — driver threads are TdbClients speaking the wire protocol to a
//    TdbServer over the loopback transport (framing, sessions, group commit).
//
// The rig is the paper's §9.1 configuration with a modelled 500 us flush
// (NVMe-class; the paper's 15 ms disk only widens the gaps), group commit
// on, and a dataset larger than the object cache so steady-state reads take
// the chunk read/validate path. Reported per mix×backend: throughput and
// the committed-transaction latency distribution (p50/p95/p99/p999).
//
// Flags: --json <path>, --obs, --seed <n> (embedded in the JSON),
// --ops <n>, --records <n>, --threads <n>, --sweep-only 1 (skip the A-F
// matrix and run just the scaling sweeps).

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/net/loopback.h"
#include "src/server/blob.h"
#include "src/server/server.h"
#include "src/workload/ycsb.h"

namespace tdb::bench {
namespace {

using workload::DriverOptions;
using workload::DriverResult;
using workload::InProcessBackend;
using workload::KeyDistributionName;
using workload::KeyTable;
using workload::WireBackend;
using workload::WorkloadSpec;
using workload::YcsbBackend;
using workload::YcsbDriver;

constexpr std::chrono::microseconds kFlushLatency{500};
constexpr size_t kObjectCacheCapacity = 512;  // < records: reads miss cache

uint64_t FlagU64(int argc, char** argv, const char* flag, uint64_t def) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      return std::strtoull(argv[i + 1], nullptr, 10);
    }
  }
  return def;
}

// Registry tails for the run that just finished (the registry is reset at
// the start of each RunOne, so these are per-configuration).
struct RegistryTails {
  obs::MetricsRegistry::HistogramSnapshot txn;     // ycsb.txn_us
  obs::MetricsRegistry::HistogramSnapshot commit;  // ycsb.commit_us
};

DriverResult RunOne(const WorkloadSpec& spec, bool wire, uint64_t ops,
                    int threads, bool snapshot_reads = false,
                    uint64_t ops_per_txn = 1, RegistryTails* tails = nullptr) {
  Rig rig = MakeRig(/*segment_size=*/256 * 1024, /*num_segments=*/2048,
                    ValidationMode::kCounter, /*delta_ut=*/5,
                    /*crypto_threads=*/SIZE_MAX, kFlushLatency);
  PartitionId partition = MakePartition(*rig.chunks);
  TypeRegistry registry;
  if (!RegisterType<server::BlobValue>(registry).ok()) {
    std::abort();
  }

  DriverOptions options;
  options.operations = ops;
  options.seed = BenchSeed();
  options.snapshot_reads = snapshot_reads;
  options.ops_per_txn = ops_per_txn;
  YcsbDriver driver(spec, options);
  KeyTable table;

  std::unique_ptr<ObjectStore> objects;
  std::unique_ptr<net::LoopbackTransport> transport;
  std::unique_ptr<server::TdbServer> server;
  std::vector<std::unique_ptr<YcsbBackend>> backends;

  if (wire) {
    transport = std::make_unique<net::LoopbackTransport>();
    server::TdbServerOptions server_options;
    server_options.group_commit = true;
    server_options.cache_capacity = kObjectCacheCapacity;
    server = std::make_unique<server::TdbServer>(rig.chunks.get(), partition,
                                                 &registry, server_options);
    if (!server->Start(transport.get(), "bench").ok()) {
      std::fprintf(stderr, "server start failed\n");
      std::abort();
    }
    for (int t = 0; t < threads; ++t) {
      auto backend = std::make_unique<WireBackend>(&registry);
      if (!backend->Connect(transport.get(), server->address()).ok()) {
        std::fprintf(stderr, "client connect failed\n");
        std::abort();
      }
      backends.push_back(std::move(backend));
    }
  } else {
    ObjectStoreOptions object_options;
    object_options.group_commit = true;
    object_options.cache_capacity = kObjectCacheCapacity;
    objects = std::make_unique<ObjectStore>(rig.chunks.get(), partition,
                                            &registry, object_options);
    for (int t = 0; t < threads; ++t) {
      backends.push_back(std::make_unique<InProcessBackend>(objects.get()));
    }
  }

  Status loaded = driver.Load(*backends.front(), table);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n", loaded.ToString().c_str());
    std::abort();
  }

  std::vector<YcsbBackend*> ptrs;
  for (auto& b : backends) {
    ptrs.push_back(b.get());
  }
  obs::MetricsRegistry::Instance().Reset();  // per-config registry tails
  DriverResult result = driver.Run(ptrs, table);
  if (!result.status.ok()) {
    std::fprintf(stderr, "run failed: %s\n", result.status.ToString().c_str());
    std::abort();
  }
  if (tails != nullptr) {
    tails->txn = RegistryHistogram("ycsb.txn_us");
    tails->commit = RegistryHistogram("ycsb.commit_us");
  }
  if (server != nullptr) {
    backends.clear();  // disconnect before the server goes down
    server->Stop();
  }
  return result;
}

int Run(int argc, char** argv) {
  const char* json_path = BenchJson::ParseArgs(argc, argv);
  BenchJson json;
  // The registry's ycsb.txn_us/ycsb.commit_us histograms feed the
  // registry-derived tails in the emitted params; profiler/trace stay
  // behind --obs.
  obs::MetricsRegistry::Instance().Enable();

  const uint64_t ops = FlagU64(argc, argv, "--ops", 2500);
  const uint64_t records = FlagU64(argc, argv, "--records", 2000);
  const int threads =
      static_cast<int>(FlagU64(argc, argv, "--threads", 4));
  const bool sweep_only = FlagU64(argc, argv, "--sweep-only", 0) != 0;

  if (!sweep_only) {
    PrintHeader("YCSB A-F, local object store vs wire client/server");
    std::printf("%4s %-8s %-8s %10s %10s %10s %10s %10s %8s\n", "mix", "backend",
                "dist", "ops/s", "p50 us", "p95 us", "p99 us", "p999 us",
                "aborts");

    for (char mix : {'A', 'B', 'C', 'D', 'E', 'F'}) {
      auto spec = WorkloadSpec::StandardMix(mix);
      if (!spec.ok()) {
        std::abort();
      }
      spec->record_count = records;
      for (bool wire : {false, true}) {
        RegistryTails tails;
        DriverResult r = RunOne(*spec, wire, ops, threads,
                                /*snapshot_reads=*/false, /*ops_per_txn=*/1,
                                &tails);
        const char* backend = wire ? "wire" : "local";
        // Tails come from the registry's bucketed ycsb.txn_us histogram —
        // the same numbers a remote tdb_stats would compute — rather than
        // the driver's sample vectors.
        const auto& lat = tails.txn;
        std::printf("%4c %-8s %-8s %10.0f %10.1f %10.1f %10.1f %10.1f %8llu\n",
                    mix, backend, KeyDistributionName(spec->dist),
                    r.ops_per_sec(), lat.Quantile(0.50), lat.Quantile(0.95),
                    lat.Quantile(0.99), lat.Quantile(0.999),
                    static_cast<unsigned long long>(r.txns_aborted));
        char params[256];
        std::snprintf(
            params, sizeof(params),
            "mix=%c,backend=%s,dist=%s,threads=%d,records=%llu,ops=%llu,"
            "ops_per_sec=%.0f,p50_us=%.1f,p95_us=%.1f,p99_us=%.1f,p999_us=%.1f,"
            "commit_p99_us=%.1f,aborts=%llu",
            mix, backend, KeyDistributionName(spec->dist), threads,
            static_cast<unsigned long long>(records),
            static_cast<unsigned long long>(ops), r.ops_per_sec(),
            lat.Quantile(0.50), lat.Quantile(0.95), lat.Quantile(0.99),
            lat.Quantile(0.999), tails.commit.Quantile(0.99),
            static_cast<unsigned long long>(r.txns_aborted));
        double bytes_per_sec =
            r.wall_us > 0.0
                ? 1e6 * static_cast<double>(r.bytes_read + r.bytes_written) /
                      r.wall_us
                : 0.0;
        json.Add(std::string("ycsb_") + mix, params, r.txn_latency.mean_us,
                 r.txn_latency.stddev_us, bytes_per_sec);
      }
    }
  }

  // Read-mostly client scaling: mix C (pure reads) across client counts,
  // with the classic 2PL path and with lock-free snapshot reads. The spread
  // between the two columns is the cost of shared locks + the single-mutex
  // caches this sweep exists to watch.
  PrintHeader("YCSB C read scaling: clients x snapshot off/on");
  std::printf("%-8s %8s %10s %12s %12s %10s\n", "backend", "clients", "snap",
              "ops/s", "p99 us", "speedup");
  auto spec_c = WorkloadSpec::StandardMix('C');
  if (!spec_c.ok()) {
    std::abort();
  }
  spec_c->record_count = records;
  for (bool wire : {false, true}) {
    for (int clients : {1, 2, 4, 8}) {
      double off_rate = 0.0;
      for (bool snapshot : {false, true}) {
        DriverResult r = RunOne(*spec_c, wire, ops, clients, snapshot);
        if (!snapshot) {
          off_rate = r.ops_per_sec();
        }
        const auto& lat = r.txn_latency;
        std::printf("%-8s %8d %10s %12.0f %12.1f %9.2fx\n",
                    wire ? "wire" : "local", clients, snapshot ? "on" : "off",
                    r.ops_per_sec(), lat.p99_us,
                    off_rate > 0.0 ? r.ops_per_sec() / off_rate : 1.0);
        char params[256];
        std::snprintf(params, sizeof(params),
                      "mix=C,backend=%s,clients=%d,snapshot=%s,records=%llu,"
                      "ops=%llu,ops_per_sec=%.0f,p50_us=%.1f,p99_us=%.1f,"
                      "p999_us=%.1f",
                      wire ? "wire" : "local", clients, snapshot ? "on" : "off",
                      static_cast<unsigned long long>(records),
                      static_cast<unsigned long long>(ops), r.ops_per_sec(),
                      lat.p50_us, lat.p99_us, lat.p999_us);
        double bytes_per_sec =
            r.wall_us > 0.0
                ? 1e6 * static_cast<double>(r.bytes_read + r.bytes_written) /
                      r.wall_us
                : 0.0;
        json.Add("ycsb_scale_C", params, lat.mean_us, lat.stddev_us,
                 bytes_per_sec);
      }
    }
  }

  // Contended read-mostly scaling: mix B (95/5) batched 8 ops per
  // transaction, so most transactions are all-read (eligible for snapshot
  // mode) while updates keep retiring the snapshot and X-locking the zipfian
  // hot keys. With 2PL the readers queue behind those X locks (watch p99 and
  // aborts climb with clients); snapshot readers never touch the lock table
  // and pay instead with periodic partition copies.
  PrintHeader("YCSB B contended scaling (8 ops/txn): clients x snapshot");
  std::printf("%-8s %8s %10s %12s %12s %12s %8s\n", "backend", "clients",
              "snap", "ops/s", "p99 us", "p999 us", "aborts");
  auto spec_b = WorkloadSpec::StandardMix('B');
  if (!spec_b.ok()) {
    std::abort();
  }
  spec_b->record_count = records;
  for (bool wire : {false, true}) {
    for (int clients : {1, 2, 4, 8}) {
      for (bool snapshot : {false, true}) {
        DriverResult r =
            RunOne(*spec_b, wire, ops, clients, snapshot, /*ops_per_txn=*/8);
        const auto& lat = r.txn_latency;
        std::printf("%-8s %8d %10s %12.0f %12.1f %12.1f %8llu\n",
                    wire ? "wire" : "local", clients, snapshot ? "on" : "off",
                    r.ops_per_sec(), lat.p99_us, lat.p999_us,
                    static_cast<unsigned long long>(r.txns_aborted));
        char params[256];
        std::snprintf(params, sizeof(params),
                      "mix=B,backend=%s,clients=%d,snapshot=%s,ops_per_txn=8,"
                      "records=%llu,ops=%llu,ops_per_sec=%.0f,p50_us=%.1f,"
                      "p99_us=%.1f,p999_us=%.1f,aborts=%llu",
                      wire ? "wire" : "local", clients, snapshot ? "on" : "off",
                      static_cast<unsigned long long>(records),
                      static_cast<unsigned long long>(ops), r.ops_per_sec(),
                      lat.p50_us, lat.p99_us, lat.p999_us,
                      static_cast<unsigned long long>(r.txns_aborted));
        double bytes_per_sec =
            r.wall_us > 0.0
                ? 1e6 * static_cast<double>(r.bytes_read + r.bytes_written) /
                      r.wall_us
                : 0.0;
        json.Add("ycsb_contended_B", params, lat.mean_us, lat.stddev_us,
                 bytes_per_sec);
      }
    }
  }

  if (json_path != nullptr && !json.Write(json_path, "bench_ycsb")) {
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace tdb::bench

int main(int argc, char** argv) { return tdb::bench::Run(argc, argv); }
