// Shared helpers for the benchmark harness: a standard in-memory TDB rig
// configured like the paper's platform (§9.1: counter-based validation,
// delta_ut = 5, untrusted store flushed every commit), wall-clock timing,
// and table formatting.
//
// The paper separates computational overhead from device latency, reporting
// the latter symbolically as l_u (untrusted store) and l_t (tamper-resistant
// store). These benches do the same: they measure computational time on an
// in-memory store, count flushes, and also report a *modelled* total using
// the paper's device constants so shapes are directly comparable.

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/chunk/chunk_store.h"
#include "src/obs/metrics.h"
#include "src/obs/percentile.h"
#include "src/obs/snapshot.h"
#include "src/platform/trusted_store.h"
#include "src/store/untrusted_store.h"

namespace tdb::bench {

// Paper device model (§9.1, §9.2.1): NTFS-file disk writes 10-20 ms (we use
// 15 ms), tamper-resistant store ≈ EEPROM at 5 ms.
inline constexpr double kModelUntrustedFlushMs = 15.0;
inline constexpr double kModelTrustedWriteMs = 5.0;

// Process-wide bench seed, set with `--seed <n>` (default 42). Benches
// derive every Rng stream from this value (site offsets keep the streams
// distinct) and emitted JSON embeds it, so any run can be reproduced.
inline uint64_t& MutableBenchSeed() {
  static uint64_t seed = 42;
  return seed;
}
inline uint64_t BenchSeed() { return MutableBenchSeed(); }

struct Rig {
  std::unique_ptr<MemUntrustedStore> store;
  std::unique_ptr<MemSecretStore> secret;
  std::unique_ptr<MemTamperResistantRegister> reg;
  std::unique_ptr<MemMonotonicCounter> counter;
  ChunkStoreOptions options;
  std::unique_ptr<ChunkStore> chunks;

  TrustedServices trusted() {
    return TrustedServices{secret.get(), reg.get(), counter.get()};
  }
};

// Builds a fresh store with the paper's §9.1 configuration.
// `crypto_threads` of SIZE_MAX keeps the ChunkStoreOptions default
// (hardware concurrency); pass 0 for the strictly serial pipeline or an
// explicit worker count for the parallel one. A nonzero `flush_latency`
// turns on the store's modelled device latency per Flush — for benches
// whose subject is flush amortization rather than computational cost.
inline Rig MakeRig(size_t segment_size = 256 * 1024,
                   uint32_t num_segments = 2048,
                   ValidationMode mode = ValidationMode::kCounter,
                   uint32_t delta_ut = 5, size_t crypto_threads = SIZE_MAX,
                   std::chrono::microseconds flush_latency = {}) {
  Rig rig;
  rig.store = std::make_unique<MemUntrustedStore>(
      UntrustedStoreOptions{.segment_size = segment_size,
                            .num_segments = num_segments,
                            .flush_latency = flush_latency});
  rig.secret = std::make_unique<MemSecretStore>(Bytes(32, 0xA5));
  rig.reg = std::make_unique<MemTamperResistantRegister>();
  rig.counter = std::make_unique<MemMonotonicCounter>();
  rig.options.validation.mode = mode;
  rig.options.validation.delta_ut = delta_ut;
  if (crypto_threads != SIZE_MAX) {
    rig.options.crypto_threads = crypto_threads;
  }
  auto cs = ChunkStore::Create(rig.store.get(), rig.trusted(), rig.options);
  if (!cs.ok()) {
    std::fprintf(stderr, "rig creation failed: %s\n",
                 cs.status().ToString().c_str());
    std::abort();
  }
  rig.chunks = std::move(*cs);
  return rig;
}

inline CryptoParams PaperPartitionParams() {
  // Ordinary partitions in the paper: DES-CBC + SHA-1 (§9.2.1).
  return CryptoParams{CipherAlg::kDes, HashAlg::kSha1, Bytes(8, 0x5C)};
}

inline PartitionId MakePartition(ChunkStore& chunks,
                                 CryptoParams params = PaperPartitionParams()) {
  auto pid = chunks.AllocatePartition();
  ChunkStore::Batch batch;
  batch.WritePartition(*pid, std::move(params));
  Status status = chunks.Commit(std::move(batch));
  if (!status.ok()) {
    std::fprintf(stderr, "partition creation failed: %s\n",
                 status.ToString().c_str());
    std::abort();
  }
  return *pid;
}

// Microsecond wall-clock timer.
inline double TimeUs(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(end - start).count();
}

// Summary statistics delegate to the shared obs helpers (percentile.h) so
// the benches, the YCSB driver, and the registry histograms all agree.
// Benches feed SampleStddev per-repetition means, or per-thread/per-txn
// samples when a configuration is only run once, so emitted stddev_us is
// never a placeholder zero.
inline double Mean(const std::vector<double>& samples) {
  return obs::Mean(samples);
}

inline double SampleStddev(const std::vector<double>& samples) {
  return obs::SampleStddev(samples);
}

// Interpolated quantile (sorts a copy; see obs::SortedQuantile for the
// convention shared with the YCSB LatencySummary).
inline double Quantile(const std::vector<double>& samples, double q) {
  return obs::Quantile(samples, q);
}

// Merged cross-thread snapshot of one named registry histogram (a zero
// snapshot if it was never observed). Benches read their tail latencies
// from these instead of keeping their own sample vectors.
inline obs::MetricsRegistry::HistogramSnapshot RegistryHistogram(
    const std::string& name) {
  for (auto& h : obs::MetricsRegistry::Instance().Histograms()) {
    if (h.name == name) {
      return h;
    }
  }
  return {};
}

inline void PrintHeader(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

// Machine-readable results. Each bench that supports `--json <path>` builds
// one BenchJson, Add()s a record per measured configuration, and writes a
// JSON array on exit. Records carry the operation name, a flat string of
// bench parameters, the mean latency, its standard deviation, and (when the
// operation moves bytes) the implied throughput. The file also embeds the
// unified observability snapshot (obs::SnapshotJson) so metrics ride along
// with timings; pass `--obs` to enable instrumentation for the run
// (benches default to disabled so timings stay comparable with earlier
// baselines).
class BenchJson {
 public:
  // Returns the path following a `--json` flag, or nullptr.
  static const char* PathFromArgs(int argc, char** argv) {
    for (int i = 1; i + 1 < argc; ++i) {
      if (std::strcmp(argv[i], "--json") == 0) {
        return argv[i + 1];
      }
    }
    return nullptr;
  }

  // True if `--obs` was passed.
  static bool ObsFromArgs(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--obs") == 0) {
        return true;
      }
    }
    return false;
  }

  // Returns the value following a `--seed` flag, or `def`.
  static uint64_t SeedFromArgs(int argc, char** argv, uint64_t def = 42) {
    for (int i = 1; i + 1 < argc; ++i) {
      if (std::strcmp(argv[i], "--seed") == 0) {
        return std::strtoull(argv[i + 1], nullptr, 10);
      }
    }
    return def;
  }

  // Standard bench prologue: enables the full observability stack when
  // `--obs` was passed, installs `--seed` as the process-wide bench seed,
  // and returns the `--json` path (or nullptr).
  static const char* ParseArgs(int argc, char** argv) {
    if (ObsFromArgs(argc, argv)) {
      obs::EnableAll();
    }
    MutableBenchSeed() = SeedFromArgs(argc, argv);
    return PathFromArgs(argc, argv);
  }

  void Add(std::string op, std::string params, double mean_us,
           double stddev_us, double bytes_per_second = 0.0) {
    records_.push_back(Record{std::move(op), std::move(params), mean_us,
                              stddev_us, bytes_per_second});
  }

  // Writes the collected records; returns false (with a note on stderr) if
  // the file cannot be opened. `bench` names the producing binary.
  bool Write(const char* path, const char* bench) const {
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", path);
      return false;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n", bench);
    std::fprintf(f, "  \"seed\": %llu,\n",
                 static_cast<unsigned long long>(BenchSeed()));
    std::fprintf(f, "  \"hardware_concurrency\": %zu,\n",
                 HardwareConcurrency());
    std::fprintf(f, "  \"results\": [\n");
    for (size_t i = 0; i < records_.size(); ++i) {
      const Record& r = records_[i];
      std::fprintf(f,
                   "    {\"op\": \"%s\", \"params\": \"%s\", "
                   "\"mean_us\": %.3f, \"stddev_us\": %.3f, "
                   "\"bytes_per_second\": %.0f}%s\n",
                   r.op.c_str(), r.params.c_str(), r.mean_us, r.stddev_us,
                   r.bytes_per_second, i + 1 < records_.size() ? "," : "");
    }
    // The observability snapshot always rides along; its "enabled" flags
    // record whether instrumentation was on for this run.
    std::string metrics = obs::SnapshotJson();
    while (!metrics.empty() && metrics.back() == '\n') {
      metrics.pop_back();
    }
    std::fprintf(f, "  ],\n  \"metrics\": %s\n}\n", metrics.c_str());
    std::fclose(f);
    std::printf("\nwrote %zu results to %s\n", records_.size(), path);
    return true;
  }

 private:
  struct Record {
    std::string op;
    std::string params;
    double mean_us;
    double stddev_us;
    double bytes_per_second;
  };
  std::vector<Record> records_;
};

}  // namespace tdb::bench

#endif  // BENCH_BENCH_UTIL_H_
