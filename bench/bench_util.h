// Shared helpers for the benchmark harness: a standard in-memory TDB rig
// configured like the paper's platform (§9.1: counter-based validation,
// delta_ut = 5, untrusted store flushed every commit), wall-clock timing,
// and table formatting.
//
// The paper separates computational overhead from device latency, reporting
// the latter symbolically as l_u (untrusted store) and l_t (tamper-resistant
// store). These benches do the same: they measure computational time on an
// in-memory store, count flushes, and also report a *modelled* total using
// the paper's device constants so shapes are directly comparable.

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>

#include "src/chunk/chunk_store.h"
#include "src/platform/trusted_store.h"
#include "src/store/untrusted_store.h"

namespace tdb::bench {

// Paper device model (§9.1, §9.2.1): NTFS-file disk writes 10-20 ms (we use
// 15 ms), tamper-resistant store ≈ EEPROM at 5 ms.
inline constexpr double kModelUntrustedFlushMs = 15.0;
inline constexpr double kModelTrustedWriteMs = 5.0;

struct Rig {
  std::unique_ptr<MemUntrustedStore> store;
  std::unique_ptr<MemSecretStore> secret;
  std::unique_ptr<MemTamperResistantRegister> reg;
  std::unique_ptr<MemMonotonicCounter> counter;
  ChunkStoreOptions options;
  std::unique_ptr<ChunkStore> chunks;

  TrustedServices trusted() {
    return TrustedServices{secret.get(), reg.get(), counter.get()};
  }
};

// Builds a fresh store with the paper's §9.1 configuration.
inline Rig MakeRig(size_t segment_size = 256 * 1024,
                   uint32_t num_segments = 2048,
                   ValidationMode mode = ValidationMode::kCounter,
                   uint32_t delta_ut = 5) {
  Rig rig;
  rig.store = std::make_unique<MemUntrustedStore>(
      UntrustedStoreOptions{.segment_size = segment_size,
                            .num_segments = num_segments});
  rig.secret = std::make_unique<MemSecretStore>(Bytes(32, 0xA5));
  rig.reg = std::make_unique<MemTamperResistantRegister>();
  rig.counter = std::make_unique<MemMonotonicCounter>();
  rig.options.validation.mode = mode;
  rig.options.validation.delta_ut = delta_ut;
  auto cs = ChunkStore::Create(rig.store.get(), rig.trusted(), rig.options);
  if (!cs.ok()) {
    std::fprintf(stderr, "rig creation failed: %s\n",
                 cs.status().ToString().c_str());
    std::abort();
  }
  rig.chunks = std::move(*cs);
  return rig;
}

inline CryptoParams PaperPartitionParams() {
  // Ordinary partitions in the paper: DES-CBC + SHA-1 (§9.2.1).
  return CryptoParams{CipherAlg::kDes, HashAlg::kSha1, Bytes(8, 0x5C)};
}

inline PartitionId MakePartition(ChunkStore& chunks,
                                 CryptoParams params = PaperPartitionParams()) {
  auto pid = chunks.AllocatePartition();
  ChunkStore::Batch batch;
  batch.WritePartition(*pid, std::move(params));
  Status status = chunks.Commit(std::move(batch));
  if (!status.ok()) {
    std::fprintf(stderr, "partition creation failed: %s\n",
                 status.ToString().c_str());
    std::abort();
  }
  return *pid;
}

// Microsecond wall-clock timer.
inline double TimeUs(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(end - start).count();
}

inline void PrintHeader(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

}  // namespace tdb::bench

#endif  // BENCH_BENCH_UTIL_H_
