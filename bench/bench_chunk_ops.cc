// E3 + E5 (§9.2.2): allocate-chunk latency (paper: ~6 us) and read-chunk
// cost. The paper fits reads with a cached descriptor at 47 us + 0.18
// us/byte, and notes that a cache miss walks parental map chunks bottom-up
// (64 descriptors, ~1.5 KB per map chunk). We reproduce: allocation latency,
// the cached-read per-size model, and the cached vs uncached read gap.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/common/stats.h"

namespace tdb::bench {
namespace {

void BenchAllocate(BenchJson& json) {
  PrintHeader("E3: allocate chunk id (paper: ~6 us)");
  Rig rig = MakeRig();
  PartitionId partition = MakePartition(*rig.chunks);
  const int kAllocations = 20000;
  double us = TimeUs([&] {
    for (int i = 0; i < kAllocations; ++i) {
      auto id = rig.chunks->AllocateChunk(partition);
      if (!id.ok()) {
        std::abort();
      }
    }
  });
  std::printf("allocate: %.3f us/op over %d ops\n", us / kAllocations,
              kAllocations);
  char params[48];
  std::snprintf(params, sizeof(params), "ops=%d", kAllocations);
  json.Add("allocate_chunk", params, us / kAllocations, /*stddev_us=*/0.0);
}

void BenchCachedRead(BenchJson& json) {
  PrintHeader("E5a: read chunk, descriptor cached (paper: 47 us + 0.18 us/B)");
  std::printf("%10s %12s %12s\n", "bytes", "read_us", "us/byte");
  LinearRegression regression(1);
  Rng rng(BenchSeed() + 3);
  for (size_t size : {128u, 512u, 2048u, 8192u, 16384u}) {
    Rig rig = MakeRig();
    PartitionId partition = MakePartition(*rig.chunks);
    ChunkId id = *rig.chunks->AllocateChunk(partition);
    (void)rig.chunks->WriteChunk(id, rng.NextBytes(size));
    (void)rig.chunks->Read(id);  // warm
    RunningStats stats;
    const int kReads = 200;
    for (int i = 0; i < kReads; ++i) {
      double us = TimeUs([&] {
        auto data = rig.chunks->Read(id);
        if (!data.ok()) {
          std::abort();
        }
      });
      stats.Add(us);
      regression.Add({static_cast<double>(size)}, us);
    }
    std::printf("%10zu %12.2f %12.4f\n", size, stats.mean(),
                stats.mean() / size);
    char params[48];
    std::snprintf(params, sizeof(params), "chunk_bytes=%zu,cache=warm", size);
    json.Add("read_chunk", params, stats.mean(), stats.stddev(),
             1e6 * static_cast<double>(size) / stats.mean());
  }
  std::vector<double> beta = regression.Solve();
  if (beta.size() == 2) {
    std::printf("fitted: %.2f us + %.4f us/byte (r^2 = %.4f)\n", beta[0],
                beta[1], regression.RSquared(beta));
  }
}

void BenchUncachedRead(BenchJson& json) {
  PrintHeader("E5b: read chunk, cold descriptor cache (bottom-up map walk)");
  // Small descriptor cache forces misses; the map has 64-way fanout, so
  // 20000 chunks give a three-level tree.
  Rig rig = MakeRig(/*segment_size=*/512 * 1024, /*num_segments=*/2048);
  rig.options.descriptor_cache_capacity = 128;
  auto cs = ChunkStore::Create(rig.store.get(), rig.trusted(), rig.options);
  rig.chunks = std::move(*cs);
  PartitionId partition = MakePartition(*rig.chunks);
  Rng rng(BenchSeed() + 5);
  const int kChunks = 20000;
  std::vector<ChunkId> ids;
  ids.reserve(kChunks);
  for (int i = 0; i < kChunks; ++i) {
    ids.push_back(*rig.chunks->AllocateChunk(partition));
  }
  for (int base = 0; base < kChunks; base += 256) {
    ChunkStore::Batch batch;
    for (int i = base; i < base + 256 && i < kChunks; ++i) {
      batch.WriteChunk(ids[i], rng.NextBytes(512));
    }
    (void)rig.chunks->Commit(std::move(batch));
  }
  (void)rig.chunks->Checkpoint();

  RunningStats cold;
  const int kReads = 2000;
  for (int i = 0; i < kReads; ++i) {
    ChunkId id = ids[rng.NextBelow(kChunks)];
    cold.Add(TimeUs([&] {
      auto data = rig.chunks->Read(id);
      if (!data.ok()) {
        std::abort();
      }
    }));
  }
  std::printf(
      "random 512 B reads over %d chunks with a %d-descriptor cache: %.2f "
      "us/read (sigma %.2f)\n",
      kChunks, 128, cold.mean(), cold.stddev());
  std::printf(
      "each miss reads parental map chunks (64 descriptors each) until a "
      "cached one is found, then validates back down (paper 4.5)\n");
  char params[64];
  std::snprintf(params, sizeof(params),
                "chunk_bytes=512,cache=cold,chunks=%d", kChunks);
  json.Add("read_chunk", params, cold.mean(), cold.stddev(),
           1e6 * 512.0 / cold.mean());
}

}  // namespace
}  // namespace tdb::bench

int main(int argc, char** argv) {
  const char* json_path = tdb::bench::BenchJson::ParseArgs(argc, argv);
  tdb::bench::BenchJson json;
  tdb::bench::BenchAllocate(json);
  tdb::bench::BenchCachedRead(json);
  tdb::bench::BenchUncachedRead(json);
  if (json_path != nullptr && !json.Write(json_path, "bench_chunk_ops")) {
    return 1;
  }
  return 0;
}
