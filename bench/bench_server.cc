// Service-layer bench: N client threads drive commit-heavy transactions
// through the full wire path (pickle → frame → session → transaction →
// chunk-store commit) over the loopback transport, with group commit off
// and on. Group commit amortizes the chunk-store commit (log append,
// trusted-counter bump, flush) across concurrent sessions, so throughput
// should scale with clients when it is on and flatten when it is off;
// single-client runs show the price of the extra queue hop.
//
// What group commit amortizes is the per-commit durability barrier, so the
// rig models device latency on Flush (500 us, an NVMe-class device; the
// paper's disk is 15 ms, which would only widen the gap). On a
// zero-latency in-memory store both paths just measure the crypto pipeline
// and the queue hop — run with kFlushLatency = 0 to see that floor.
//
// Each client owns a distinct object, so transactions never conflict and
// lock waits stay out of the measurement.
//
// The metrics registry is always on for this bench: the per-op wire
// histograms (wire.op.commit.us, wire.op.get.us) are where the reported
// tail latencies come from — the registry is reset before each timed
// configuration so its tails are per-config. `--json <path>` writes every
// measured configuration; `--obs` additionally enables the profiler and
// trace journal for the embedded snapshot.

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/net/loopback.h"
#include "src/server/blob.h"
#include "src/server/client.h"
#include "src/server/server.h"
#include "src/shard/directory.h"

namespace tdb::bench {
namespace {

using server::BlobValue;
using server::TdbClient;
using server::TdbServer;
using server::TdbServerOptions;

struct RunResult {
  double wall_us = 0.0;
  uint64_t commits = 0;
  // Per-transaction begin..commit latencies, merged across clients.
  std::vector<double> latencies_us;
  // Registry histogram for the run's dominant op (server handle+send time),
  // captured after the timed section; tails are read from its buckets.
  obs::MetricsRegistry::HistogramSnapshot op_hist;

  double commits_per_sec() const { return 1e6 * commits / wall_us; }
  double mean_us() const { return Mean(latencies_us); }
  double stddev_us() const { return SampleStddev(latencies_us); }
};

constexpr std::chrono::microseconds kFlushLatency{500};

RunResult RunClients(int clients, bool group_commit, int commits_per_client) {
  Rig rig = MakeRig(/*segment_size=*/256 * 1024, /*num_segments=*/2048,
                    ValidationMode::kCounter, /*delta_ut=*/5,
                    /*crypto_threads=*/SIZE_MAX, kFlushLatency);
  PartitionId partition = MakePartition(*rig.chunks);
  TypeRegistry registry;
  if (!RegisterType<BlobValue>(registry).ok()) {
    std::abort();
  }

  net::LoopbackTransport transport;
  TdbServerOptions options;
  options.group_commit = group_commit;
  TdbServer server(rig.chunks.get(), partition, &registry, options);
  if (!server.Start(&transport, "bench").ok()) {
    std::fprintf(stderr, "server start failed\n");
    std::abort();
  }

  // One object per client: commits contend only on the commit path itself.
  std::vector<ObjectId> ids(clients);
  {
    TdbClient setup(&registry);
    (void)setup.Connect(&transport, server.address());
    (void)setup.Begin();
    for (int c = 0; c < clients; ++c) {
      auto id = setup.Insert(BlobValue("seed"));
      if (!id.ok()) {
        std::abort();
      }
      ids[c] = *id;
    }
    if (!setup.Commit().ok()) {
      std::abort();
    }
  }

  RunResult result;
  result.commits = static_cast<uint64_t>(clients) * commits_per_client;
  std::vector<std::vector<double>> per_client(clients);
  obs::MetricsRegistry::Instance().Reset();  // per-config tails
  result.wall_us = TimeUs([&] {
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        TdbClient client(&registry);
        if (!client.Connect(&transport, server.address()).ok()) {
          std::abort();
        }
        per_client[c].reserve(commits_per_client);
        for (int i = 0; i < commits_per_client; ++i) {
          double us = TimeUs([&] {
            if (!client.Begin().ok() ||
                !client.Put(ids[c], BlobValue("v" + std::to_string(i))).ok() ||
                !client.Commit().ok()) {
              std::fprintf(stderr, "client %d commit %d failed\n", c, i);
              std::abort();
            }
          });
          per_client[c].push_back(us);
        }
      });
    }
    for (auto& t : threads) {
      t.join();
    }
  });
  server.Stop();
  result.op_hist = RegistryHistogram("wire.op.commit.us");
  for (auto& samples : per_client) {
    result.latencies_us.insert(result.latencies_us.end(), samples.begin(),
                               samples.end());
  }
  return result;
}

// Sharded sweep: `partitions` engines over one chunk store, each driven by
// `clients_per_partition` commit-heavy clients. All engines chain into the
// store-level combiner (two-level group commit), so leaders of different
// partitions merge into a single chunk-store commit and one flush amortizes
// across the whole fleet — aggregate commits/s should grow with partitions
// even though the chunk store serializes commits.
RunResult RunPartitioned(int partitions, int clients_per_partition,
                         int commits_per_client) {
  Rig rig = MakeRig(/*segment_size=*/256 * 1024, /*num_segments=*/2048,
                    ValidationMode::kCounter, /*delta_ut=*/5,
                    /*crypto_threads=*/SIZE_MAX, kFlushLatency);
  TypeRegistry registry;
  if (!RegisterType<BlobValue>(registry).ok()) {
    std::abort();
  }
  auto directory = shard::PartitionDirectory::Open(rig.chunks.get(),
                                                   PaperPartitionParams());
  if (!directory.ok()) {
    std::fprintf(stderr, "directory open failed\n");
    std::abort();
  }
  std::vector<PartitionId> pids;
  for (int p = 0; p < partitions; ++p) {
    auto entry =
        (*directory)->Create("p" + std::to_string(p), PaperPartitionParams());
    if (!entry.ok()) {
      std::abort();
    }
    pids.push_back(entry->id);
  }

  net::LoopbackTransport transport;
  TdbServerOptions options;
  options.group_commit = true;  // combine_commits defaults on
  TdbServer server(rig.chunks.get(), directory->get(), &registry, options);
  if (!server.Start(&transport, "bench").ok()) {
    std::fprintf(stderr, "server start failed\n");
    std::abort();
  }

  // One object per client, each in its client's partition: commits contend
  // only on the commit path.
  const int total_clients = partitions * clients_per_partition;
  std::vector<ObjectId> ids(total_clients);
  {
    TdbClient setup(&registry);
    (void)setup.Connect(&transport, server.address());
    for (int p = 0; p < partitions; ++p) {
      if (!setup.Begin(pids[p]).ok()) {
        std::abort();
      }
      for (int c = 0; c < clients_per_partition; ++c) {
        auto id = setup.Insert(BlobValue("seed"));
        if (!id.ok()) {
          std::abort();
        }
        ids[p * clients_per_partition + c] = *id;
      }
      if (!setup.Commit().ok()) {
        std::abort();
      }
    }
  }

  RunResult result;
  result.commits = static_cast<uint64_t>(total_clients) * commits_per_client;
  std::vector<std::vector<double>> per_client(total_clients);
  obs::MetricsRegistry::Instance().Reset();  // per-config tails
  result.wall_us = TimeUs([&] {
    std::vector<std::thread> threads;
    threads.reserve(total_clients);
    for (int t = 0; t < total_clients; ++t) {
      threads.emplace_back([&, t] {
        const PartitionId pid = pids[t / clients_per_partition];
        TdbClient client(&registry);
        if (!client.Connect(&transport, server.address()).ok()) {
          std::abort();
        }
        per_client[t].reserve(commits_per_client);
        for (int i = 0; i < commits_per_client; ++i) {
          double us = TimeUs([&] {
            if (!client.Begin(pid).ok() ||
                !client.Put(ids[t], BlobValue("v" + std::to_string(i))).ok() ||
                !client.Commit().ok()) {
              std::fprintf(stderr, "client %d commit %d failed\n", t, i);
              std::abort();
            }
          });
          per_client[t].push_back(us);
        }
      });
    }
    for (auto& th : threads) {
      th.join();
    }
  });
  server.Stop();
  result.op_hist = RegistryHistogram("wire.op.commit.us");
  for (auto& samples : per_client) {
    result.latencies_us.insert(result.latencies_us.end(), samples.begin(),
                               samples.end());
  }
  return result;
}

// Read-mostly sweep: each transaction is a begin, `reads_per_txn` Gets over
// this client's objects, and a commit — with the begin either a classic 2PL
// Begin (shared locks per Get) or a lock-free snapshot BeginReadOnly. The
// spread between the two is the read path's locking + single-mutex-cache
// cost at each client count.
RunResult RunReaders(int clients, bool snapshot, int txns_per_client,
                     int reads_per_txn) {
  Rig rig = MakeRig(/*segment_size=*/256 * 1024, /*num_segments=*/2048,
                    ValidationMode::kCounter, /*delta_ut=*/5,
                    /*crypto_threads=*/SIZE_MAX, kFlushLatency);
  PartitionId partition = MakePartition(*rig.chunks);
  TypeRegistry registry;
  if (!RegisterType<BlobValue>(registry).ok()) {
    std::abort();
  }

  net::LoopbackTransport transport;
  TdbServerOptions options;
  options.group_commit = true;
  TdbServer server(rig.chunks.get(), partition, &registry, options);
  if (!server.Start(&transport, "bench").ok()) {
    std::fprintf(stderr, "server start failed\n");
    std::abort();
  }

  std::vector<ObjectId> ids(clients);
  {
    TdbClient setup(&registry);
    (void)setup.Connect(&transport, server.address());
    (void)setup.Begin();
    for (int c = 0; c < clients; ++c) {
      auto id = setup.Insert(BlobValue("seed"));
      if (!id.ok()) {
        std::abort();
      }
      ids[c] = *id;
    }
    if (!setup.Commit().ok()) {
      std::abort();
    }
  }

  RunResult result;
  result.commits = static_cast<uint64_t>(clients) * txns_per_client;
  std::vector<std::vector<double>> per_client(clients);
  obs::MetricsRegistry::Instance().Reset();  // per-config tails
  result.wall_us = TimeUs([&] {
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        TdbClient client(&registry);
        if (!client.Connect(&transport, server.address()).ok()) {
          std::abort();
        }
        per_client[c].reserve(txns_per_client);
        for (int i = 0; i < txns_per_client; ++i) {
          double us = TimeUs([&] {
            Status begin =
                snapshot ? client.BeginReadOnly() : client.Begin();
            if (!begin.ok()) {
              std::fprintf(stderr, "client %d begin failed\n", c);
              std::abort();
            }
            for (int r = 0; r < reads_per_txn; ++r) {
              if (!client.Get(ids[c]).ok()) {
                std::fprintf(stderr, "client %d read failed\n", c);
                std::abort();
              }
            }
            if (!client.Commit().ok()) {
              std::fprintf(stderr, "client %d commit failed\n", c);
              std::abort();
            }
          });
          per_client[c].push_back(us);
        }
      });
    }
    for (auto& t : threads) {
      t.join();
    }
  });
  server.Stop();
  result.op_hist = RegistryHistogram("wire.op.get.us");
  for (auto& samples : per_client) {
    result.latencies_us.insert(result.latencies_us.end(), samples.begin(),
                               samples.end());
  }
  return result;
}

int Run(int argc, char** argv) {
  const char* json_path = BenchJson::ParseArgs(argc, argv);
  BenchJson json;
  // The registry feeds the tail columns below; profiler/trace stay behind
  // --obs.
  obs::MetricsRegistry::Instance().Enable();

  constexpr int kCommitsPerClient = 200;
  const int kClientCounts[] = {1, 2, 4, 8};

  PrintHeader("server: commit throughput vs clients, group commit off/on");
  std::printf("%8s %8s %14s %14s %10s %10s %10s %12s\n", "clients", "group",
              "commits/s", "mean us/txn", "p50 us", "p99 us", "p999 us",
              "speedup");
  for (int clients : kClientCounts) {
    double off_rate = 0.0;
    for (bool group : {false, true}) {
      RunResult r = RunClients(clients, group, kCommitsPerClient);
      if (!group) {
        off_rate = r.commits_per_sec();
      }
      // Tail columns come from the server's wire.op.commit.us registry
      // histogram, not the client-side sample vector.
      std::printf("%8d %8s %14.0f %14.1f %10.0f %10.0f %10.0f %11.2fx\n",
                  clients, group ? "on" : "off", r.commits_per_sec(),
                  r.mean_us(), r.op_hist.Quantile(0.50),
                  r.op_hist.Quantile(0.99), r.op_hist.Quantile(0.999),
                  r.commits_per_sec() / off_rate);
      char params[192];
      std::snprintf(params, sizeof(params),
                    "clients=%d,group_commit=%s,commits_per_sec=%.0f,"
                    "p50_us=%.0f,p99_us=%.0f,p999_us=%.0f",
                    clients, group ? "on" : "off", r.commits_per_sec(),
                    r.op_hist.Quantile(0.50), r.op_hist.Quantile(0.99),
                    r.op_hist.Quantile(0.999));
      json.Add("server_commit", params, r.mean_us(), r.stddev_us());
    }
  }

  constexpr int kTxnsPerClient = 200;
  constexpr int kReadsPerTxn = 8;
  PrintHeader("server: read-only txns vs clients, snapshot off/on");
  std::printf("%8s %8s %14s %14s %14s %12s\n", "clients", "snap", "reads/s",
              "txns/s", "mean us/txn", "speedup");
  for (int clients : kClientCounts) {
    double off_rate = 0.0;
    for (bool snapshot : {false, true}) {
      RunResult r = RunReaders(clients, snapshot, kTxnsPerClient, kReadsPerTxn);
      if (!snapshot) {
        off_rate = r.commits_per_sec();
      }
      double reads_per_sec = r.commits_per_sec() * kReadsPerTxn;
      std::printf("%8d %8s %14.0f %14.0f %14.1f %11.2fx\n", clients,
                  snapshot ? "on" : "off", reads_per_sec, r.commits_per_sec(),
                  r.mean_us(), r.commits_per_sec() / off_rate);
      char params[224];
      std::snprintf(params, sizeof(params),
                    "clients=%d,snapshot=%s,reads_per_txn=%d,reads_per_sec="
                    "%.0f,txns_per_sec=%.0f,get_p50_us=%.0f,get_p99_us=%.0f,"
                    "get_p999_us=%.0f",
                    clients, snapshot ? "on" : "off", kReadsPerTxn,
                    reads_per_sec, r.commits_per_sec(),
                    r.op_hist.Quantile(0.50), r.op_hist.Quantile(0.99),
                    r.op_hist.Quantile(0.999));
      json.Add("server_read", params, r.mean_us(), r.stddev_us());
    }
  }

  const int kPartitionCounts[] = {1, 2, 4};
  PrintHeader("server: commit throughput vs partitions, 8 clients each");
  std::printf("%10s %8s %14s %14s %10s %10s %10s %12s\n", "partitions",
              "clients", "commits/s", "mean us/txn", "p50 us", "p99 us",
              "p999 us", "speedup");
  double one_partition_rate = 0.0;
  for (int partitions : kPartitionCounts) {
    constexpr int kClientsPerPartition = 8;
    RunResult r =
        RunPartitioned(partitions, kClientsPerPartition, kCommitsPerClient);
    if (partitions == 1) {
      one_partition_rate = r.commits_per_sec();
    }
    std::printf("%10d %8d %14.0f %14.1f %10.0f %10.0f %10.0f %11.2fx\n",
                partitions, partitions * kClientsPerPartition,
                r.commits_per_sec(), r.mean_us(), r.op_hist.Quantile(0.50),
                r.op_hist.Quantile(0.99), r.op_hist.Quantile(0.999),
                r.commits_per_sec() / one_partition_rate);
    char params[224];
    std::snprintf(params, sizeof(params),
                  "partitions=%d,clients_per_partition=%d,total_clients=%d,"
                  "commits_per_sec=%.0f,p50_us=%.0f,p99_us=%.0f,p999_us=%.0f,"
                  "speedup_vs_1p=%.2f",
                  partitions, kClientsPerPartition,
                  partitions * kClientsPerPartition, r.commits_per_sec(),
                  r.op_hist.Quantile(0.50), r.op_hist.Quantile(0.99),
                  r.op_hist.Quantile(0.999),
                  r.commits_per_sec() / one_partition_rate);
    json.Add("server_commit_partitioned", params, r.mean_us(), r.stddev_us());
  }

  // Honesty rows: same 8 clients total, split across partitions — shows how
  // much of the scaling above is extra offered load vs genuine sharding win.
  PrintHeader("server: commit throughput vs partitions, 8 clients total");
  std::printf("%10s %8s %14s %14s %12s\n", "partitions", "clients",
              "commits/s", "mean us/txn", "speedup");
  double fixed_base_rate = 0.0;
  for (int partitions : kPartitionCounts) {
    const int clients_per_partition = 8 / partitions;
    RunResult r =
        RunPartitioned(partitions, clients_per_partition, kCommitsPerClient);
    if (partitions == 1) {
      fixed_base_rate = r.commits_per_sec();
    }
    std::printf("%10d %8d %14.0f %14.1f %11.2fx\n", partitions, 8,
                r.commits_per_sec(), r.mean_us(),
                r.commits_per_sec() / fixed_base_rate);
    char params[224];
    std::snprintf(params, sizeof(params),
                  "partitions=%d,clients_per_partition=%d,total_clients=8,"
                  "commits_per_sec=%.0f,p50_us=%.0f,p99_us=%.0f,p999_us=%.0f,"
                  "speedup_vs_1p=%.2f",
                  partitions, clients_per_partition, r.commits_per_sec(),
                  r.op_hist.Quantile(0.50), r.op_hist.Quantile(0.99),
                  r.op_hist.Quantile(0.999),
                  r.commits_per_sec() / fixed_base_rate);
    json.Add("server_commit_partitioned_fixed", params, r.mean_us(),
             r.stddev_us());
  }

  if (json_path != nullptr && !json.Write(json_path, "bench_server")) {
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace tdb::bench

int main(int argc, char** argv) { return tdb::bench::Run(argc, argv); }
