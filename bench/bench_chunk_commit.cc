// E4 (§9.2.2, "Write chunks + commit"): the paper sweeps commit sets of
// 1-128 chunks of 128 B-16 KB and fits, by linear regression, the model
//
//   latency = 132 us + 36 us/chunk + 0.24 us/byte         (450 MHz P-II)
//
// plus I/O of l_u + l_t/delta_ut + bytes/b_u. This bench reproduces the
// sweep on the in-memory store (computational overhead only, as the paper
// separates), fits the same two-predictor model, and reports flush counts
// so the I/O term can be added symbolically.
//
// A second sweep measures the parallel crypto pipeline: the same commit at
// crypto_threads 0/1/2/4/8, where per-chunk hashing and encryption fan out
// across a worker pool while IV reservation stays serial (the untrusted
// image is byte-identical at every setting). Speedups require cores; on a
// single-CPU host all settings degenerate to the serial path.
//
// `--json <path>` additionally writes every measured configuration as JSON.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/common/stats.h"

namespace tdb::bench {
namespace {

// One timed commit of `count` chunks of `size` bytes, repeated; the store is
// fresh and the tree paths pre-allocated so checkpoints and cleaning stay
// out of the measurement.
RunningStats TimeCommits(size_t crypto_threads, int count, size_t size,
                         int repetitions, LinearRegression* regression) {
  Rng rng(BenchSeed() + 7);
  Rig rig = MakeRig(/*segment_size=*/512 * 1024, /*num_segments=*/2048,
                    ValidationMode::kCounter, /*delta_ut=*/5, crypto_threads);
  PartitionId partition = MakePartition(*rig.chunks);
  std::vector<ChunkId> ids;
  for (int i = 0; i < count; ++i) {
    ids.push_back(*rig.chunks->AllocateChunk(partition));
  }
  {
    ChunkStore::Batch batch;
    for (ChunkId id : ids) {
      batch.WriteChunk(id, rng.NextBytes(size));
    }
    (void)rig.chunks->Commit(std::move(batch));
  }
  RunningStats stats;
  for (int rep = 0; rep < repetitions; ++rep) {
    std::vector<Bytes> payloads;
    payloads.reserve(ids.size());
    for (size_t i = 0; i < ids.size(); ++i) {
      payloads.push_back(rng.NextBytes(size));
    }
    double us = TimeUs([&] {
      ChunkStore::Batch batch;
      for (size_t i = 0; i < ids.size(); ++i) {
        batch.WriteChunk(ids[i], std::move(payloads[i]));
      }
      Status status = rig.chunks->Commit(std::move(batch));
      if (!status.ok()) {
        std::fprintf(stderr, "commit failed: %s\n", status.ToString().c_str());
        std::abort();
      }
    });
    stats.Add(us);
    if (regression != nullptr) {
      regression->Add(
          {static_cast<double>(count), static_cast<double>(count) * size}, us);
    }
  }
  return stats;
}

int Run(int argc, char** argv) {
  const char* json_path = BenchJson::ParseArgs(argc, argv);
  BenchJson json;

  PrintHeader("E4: write chunks + commit (cost model, cf. paper 9.2.2)");
  std::printf(
      "paper reference: 132 us + 36 us/chunk + 0.24 us/byte (450 MHz "
      "Pentium II)\n\n");
  std::printf("%8s %10s %14s %14s\n", "chunks", "bytes/ch", "commit_us",
              "us/chunk");

  LinearRegression regression(2);
  const int kChunkCounts[] = {1, 2, 4, 8, 16, 32, 64, 128};
  const size_t kChunkSizes[] = {128, 512, 2048, 16384};
  const int kRepetitions = 8;

  for (size_t size : kChunkSizes) {
    for (int count : kChunkCounts) {
      // The model sweep runs the serial pipeline: the paper's cost model is
      // single-threaded, and this keeps the fit comparable across hosts.
      RunningStats stats =
          TimeCommits(/*crypto_threads=*/0, count, size, kRepetitions,
                      &regression);
      std::printf("%8d %10zu %14.1f %14.2f\n", count, size, stats.mean(),
                  stats.mean() / count);
      char params[96];
      std::snprintf(params, sizeof(params),
                    "chunks=%d,chunk_bytes=%zu,crypto_threads=0", count, size);
      json.Add("commit", params, stats.mean(), stats.stddev(),
               1e6 * static_cast<double>(count) * size / stats.mean());
    }
  }

  std::vector<double> beta = regression.Solve();
  if (beta.size() == 3) {
    std::printf(
        "\nfitted model: %.1f us + %.2f us/chunk + %.4f us/byte   (r^2 = "
        "%.4f)\n",
        beta[0], beta[1], beta[2], regression.RSquared(beta));
  }
  std::printf(
      "I/O term (symbolic, as the paper reports): l_u + l_t/delta_ut + "
      "bytes/b_u per commit;\nwith delta_ut = 5 the untrusted store is "
      "flushed every commit and the counter once per 5 commits.\n");

  PrintHeader("parallel crypto pipeline: commit of 32 x 8 KiB");
  std::printf("host reports %zu hardware threads\n\n", HardwareConcurrency());
  std::printf("%16s %14s %10s\n", "crypto_threads", "commit_us", "speedup");
  const int kParCount = 32;
  const size_t kParSize = 8192;
  const size_t kThreadSettings[] = {0, 1, 2, 4, 8};
  double serial_us = 0.0;
  for (size_t threads : kThreadSettings) {
    RunningStats stats =
        TimeCommits(threads, kParCount, kParSize, kRepetitions, nullptr);
    if (threads == 0) {
      serial_us = stats.mean();
    }
    std::printf("%16zu %14.1f %9.2fx\n", threads, stats.mean(),
                serial_us / stats.mean());
    char params[96];
    std::snprintf(params, sizeof(params),
                  "chunks=%d,chunk_bytes=%zu,crypto_threads=%zu", kParCount,
                  kParSize, threads);
    json.Add("commit_parallel", params, stats.mean(), stats.stddev(),
             1e6 * static_cast<double>(kParCount) * kParSize / stats.mean());
  }

  if (json_path != nullptr && !json.Write(json_path, "bench_chunk_commit")) {
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace tdb::bench

int main(int argc, char** argv) { return tdb::bench::Run(argc, argv); }
