// E4 (§9.2.2, "Write chunks + commit"): the paper sweeps commit sets of
// 1-128 chunks of 128 B-16 KB and fits, by linear regression, the model
//
//   latency = 132 us + 36 us/chunk + 0.24 us/byte         (450 MHz P-II)
//
// plus I/O of l_u + l_t/delta_ut + bytes/b_u. This bench reproduces the
// sweep on the in-memory store (computational overhead only, as the paper
// separates), fits the same two-predictor model, and reports flush counts
// so the I/O term can be added symbolically.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/common/stats.h"

namespace tdb::bench {
namespace {

int Run() {
  PrintHeader("E4: write chunks + commit (cost model, cf. paper 9.2.2)");
  std::printf(
      "paper reference: 132 us + 36 us/chunk + 0.24 us/byte (450 MHz "
      "Pentium II)\n\n");
  std::printf("%8s %10s %14s %14s\n", "chunks", "bytes/ch", "commit_us",
              "us/chunk");

  LinearRegression regression(2);
  Rng rng(7);
  const int kChunkCounts[] = {1, 2, 4, 8, 16, 32, 64, 128};
  const size_t kChunkSizes[] = {128, 512, 2048, 16384};
  const int kRepetitions = 8;

  for (size_t size : kChunkSizes) {
    for (int count : kChunkCounts) {
      // A fresh store per configuration keeps checkpoints and cleaning out
      // of the measurement (the paper's store had "no checkpoint or log
      // cleaning during the experiment").
      Rig rig = MakeRig(/*segment_size=*/512 * 1024, /*num_segments=*/2048);
      PartitionId partition = MakePartition(*rig.chunks);
      std::vector<ChunkId> ids;
      for (int i = 0; i < count; ++i) {
        ids.push_back(*rig.chunks->AllocateChunk(partition));
      }
      // Prime: first write allocates tree paths.
      {
        ChunkStore::Batch batch;
        for (ChunkId id : ids) {
          batch.WriteChunk(id, rng.NextBytes(size));
        }
        (void)rig.chunks->Commit(std::move(batch));
      }
      RunningStats stats;
      for (int rep = 0; rep < kRepetitions; ++rep) {
        std::vector<Bytes> payloads;
        payloads.reserve(ids.size());
        for (size_t i = 0; i < ids.size(); ++i) {
          payloads.push_back(rng.NextBytes(size));
        }
        double us = TimeUs([&] {
          ChunkStore::Batch batch;
          for (size_t i = 0; i < ids.size(); ++i) {
            batch.WriteChunk(ids[i], std::move(payloads[i]));
          }
          Status status = rig.chunks->Commit(std::move(batch));
          if (!status.ok()) {
            std::fprintf(stderr, "commit failed: %s\n",
                         status.ToString().c_str());
            std::abort();
          }
        });
        stats.Add(us);
        regression.Add({static_cast<double>(count),
                        static_cast<double>(count) * size},
                       us);
      }
      std::printf("%8d %10zu %14.1f %14.2f\n", count, size, stats.mean(),
                  stats.mean() / count);
    }
  }

  std::vector<double> beta = regression.Solve();
  if (beta.size() == 3) {
    std::printf(
        "\nfitted model: %.1f us + %.2f us/chunk + %.4f us/byte   (r^2 = "
        "%.4f)\n",
        beta[0], beta[1], beta[2], regression.RSquared(beta));
  }
  std::printf(
      "I/O term (symbolic, as the paper reports): l_u + l_t/delta_ut + "
      "bytes/b_u per commit;\nwith delta_ut = 5 the untrusted store is "
      "flushed every commit and the counter once per 5 commits.\n");
  return 0;
}

}  // namespace
}  // namespace tdb::bench

int main() { return tdb::bench::Run(); }
