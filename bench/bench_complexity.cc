// E9 (Figure 9): code complexity in semicolons per module, the paper's own
// metric. The paper reports: collection store 1,388; object store 512;
// backup store 516; chunk store 2,570; common utilities 1,070; total 6,056.
// This binary counts semicolons in this repository's sources (string and
// comment semicolons excluded with a small lexer) and prints the same table.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"

#ifndef TDB_SOURCE_DIR
#define TDB_SOURCE_DIR "."
#endif

namespace {

// Counts semicolons outside of comments, string, and char literals.
size_t CountSemicolons(const std::string& source) {
  size_t count = 0;
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (size_t i = 0; i < source.size(); ++i) {
    char c = source[i];
    char next = i + 1 < source.size() ? source[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'') {
          state = State::kChar;
        } else if (c == ';') {
          ++count;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          ++i;
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          state = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        }
        break;
    }
  }
  return count;
}

size_t CountDirectory(const std::filesystem::path& dir) {
  size_t total = 0;
  if (!std::filesystem::exists(dir)) {
    return 0;
  }
  for (const auto& entry : std::filesystem::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file()) {
      continue;
    }
    std::string ext = entry.path().extension().string();
    if (ext != ".cc" && ext != ".h") {
      continue;
    }
    std::ifstream in(entry.path());
    std::stringstream buffer;
    buffer << in.rdbuf();
    total += CountSemicolons(buffer.str());
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  tdb::bench::BenchJson::ParseArgs(argc, argv);  // --seed, --obs (uniformity)
  std::filesystem::path root(TDB_SOURCE_DIR);
  struct Row {
    const char* label;
    const char* subdir;
    int paper;
  };
  // Paper modules mapped onto this repository's layout.
  const Row rows[] = {
      {"Collection store", "src/collect", 1388},
      {"Object store", "src/object", 512},
      {"Backup store", "src/backup", 516},
      {"Chunk store", "src/chunk", 2570},
      {"Common utilities (common+crypto+platform+store)", "", 1070},
  };
  std::printf("=== E9 / Figure 9: code complexity (semicolons) ===\n");
  std::printf("%-50s %10s %10s\n", "module", "this repo", "paper");
  size_t total = 0;
  for (const Row& row : rows) {
    size_t count;
    if (row.subdir[0] != '\0') {
      count = CountDirectory(root / row.subdir);
    } else {
      count = CountDirectory(root / "src/common") +
              CountDirectory(root / "src/crypto") +
              CountDirectory(root / "src/platform") +
              CountDirectory(root / "src/store");
    }
    total += count;
    std::printf("%-50s %10zu %10d\n", row.label, count, row.paper);
  }
  std::printf("%-50s %10zu %10d\n", "TOTAL (paper-scope modules)", total, 6056);
  std::printf("%-50s %10zu %10s\n", "XDB baseline (not in paper's table)",
              CountDirectory(root / "src/xdb"), "-");
  std::printf("%-50s %10zu %10s\n", "Workload", CountDirectory(root / "src/workload"),
              "-");
  std::printf("%-50s %10zu %10s\n", "Trusted paging (paper 10 extension)",
              CountDirectory(root / "src/paging"), "-");
  std::printf(
      "\n(the paper's crypto and platform code were external libraries; here "
      "they are built from scratch,\nwhich inflates 'common utilities')\n");
  return 0;
}
