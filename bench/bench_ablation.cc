// Ablations of TDB's design choices (DESIGN.md §4):
//
//  A1: direct-hash vs counter-based validation (§4.8.2) — commit cost and
//      tamper-resistant-store write counts.
//  A2: the delta_ut security/performance trade-off (§4.8.2.2) — commit cost
//      with modelled trusted-store latency as the flush lag grows.
//  A3: cleaning cost vs log utilization (§4.9.5, §9.3) — how expensive
//      reclaiming a segment is as the fraction of live data grows.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/obs/profiler.h"
#include "src/common/rng.h"
#include "src/common/stats.h"

namespace tdb::bench {
namespace {

void AblationValidationModes() {
  PrintHeader("A1: validation mode ablation (direct hash vs counter)");
  std::printf("%-12s %12s %18s\n", "mode", "commit_us", "trusted_writes");
  for (ValidationMode mode :
       {ValidationMode::kDirectHash, ValidationMode::kCounter}) {
    Rig rig = MakeRig(/*segment_size=*/256 * 1024, /*num_segments=*/1024, mode,
                      /*delta_ut=*/5);
    PartitionId partition = MakePartition(*rig.chunks);
    ChunkId id = *rig.chunks->AllocateChunk(partition);
    Rng rng(BenchSeed() + 3);
    (void)rig.chunks->WriteChunk(id, rng.NextBytes(512));
    Profiler& profiler = Profiler::Instance();
    profiler.Reset();
    profiler.Enable();
    RunningStats stats;
    const int kCommits = 200;
    for (int i = 0; i < kCommits; ++i) {
      Bytes payload = rng.NextBytes(512);
      stats.Add(TimeUs([&] {
        if (!rig.chunks->WriteChunk(id, std::move(payload)).ok()) {
          std::abort();
        }
      }));
    }
    profiler.Disable();
    std::printf("%-12s %12.1f %18llu\n",
                mode == ValidationMode::kDirectHash ? "direct" : "counter",
                stats.mean(),
                (unsigned long long)profiler.GetCount(
                    "tamper_resistant_store.writes"));
  }
  std::printf(
      "direct mode writes the register every commit; counter mode once per "
      "delta_ut commits\n");
}

void AblationDeltaUt() {
  PrintHeader(
      "A2: delta_ut sweep (counter lag) with modelled trusted-store latency");
  std::printf("%8s %14s %16s %20s\n", "delta_ut", "commit_us",
              "trusted_writes", "modeled_us/commit");
  Rng rng(BenchSeed() + 4);
  const int kCommits = 200;
  for (uint32_t delta_ut : {1u, 2u, 5u, 10u, 20u}) {
    Rig rig = MakeRig(/*segment_size=*/256 * 1024, /*num_segments=*/1024,
                      ValidationMode::kCounter, delta_ut);
    PartitionId partition = MakePartition(*rig.chunks);
    ChunkId id = *rig.chunks->AllocateChunk(partition);
    (void)rig.chunks->WriteChunk(id, rng.NextBytes(512));
    Profiler& profiler = Profiler::Instance();
    profiler.Reset();
    profiler.Enable();
    RunningStats stats;
    for (int i = 0; i < kCommits; ++i) {
      Bytes payload = rng.NextBytes(512);
      stats.Add(TimeUs([&] {
        (void)rig.chunks->WriteChunk(id, std::move(payload));
      }));
    }
    profiler.Disable();
    uint64_t trusted_writes =
        profiler.GetCount("tamper_resistant_store.writes");
    double modeled =
        stats.mean() +
        (static_cast<double>(trusted_writes) / kCommits) *
            kModelTrustedWriteMs * 1000.0;
    std::printf("%8u %14.1f %16llu %20.1f\n", delta_ut, stats.mean(),
                (unsigned long long)trusted_writes, modeled);
  }
  std::printf(
      "security cost: an attacker may delete up to delta_ut commit sets from "
      "the log tail undetected\n");
}

void AblationCleaning() {
  PrintHeader("A3: cleaning cost vs segment utilization");
  std::printf("%14s %16s %16s\n", "live_fraction", "clean_us/segment",
              "segments_cleaned");
  for (double live_fraction : {0.1, 0.3, 0.6, 0.9}) {
    Rig rig = MakeRig(/*segment_size=*/64 * 1024, /*num_segments=*/1024);
    PartitionId partition = MakePartition(*rig.chunks);
    Rng rng(BenchSeed() + 5);
    // Write rounds of chunks; overwrite (1 - live_fraction) of them so that
    // roughly live_fraction of each early segment stays live.
    const int kChunks = 600;
    std::vector<ChunkId> ids;
    for (int i = 0; i < kChunks; ++i) {
      ids.push_back(*rig.chunks->AllocateChunk(partition));
    }
    ChunkStore::Batch batch;
    for (ChunkId id : ids) {
      batch.WriteChunk(id, rng.NextBytes(512));
    }
    (void)rig.chunks->Commit(std::move(batch));
    int rewrite = static_cast<int>(kChunks * (1.0 - live_fraction));
    ChunkStore::Batch rewrite_batch;
    for (int i = 0; i < rewrite; ++i) {
      rewrite_batch.WriteChunk(ids[i], rng.NextBytes(512));
    }
    (void)rig.chunks->Commit(std::move(rewrite_batch));
    (void)rig.chunks->Checkpoint();

    size_t cleaned = 0;
    double us = TimeUs([&] {
      auto result = rig.chunks->Clean(8);
      if (result.ok()) {
        cleaned = *result;
      }
    });
    std::printf("%14.1f %16.1f %16zu\n", live_fraction,
                cleaned > 0 ? us / cleaned : 0.0, cleaned);
  }
  std::printf(
      "cleaning a mostly-dead segment is cheap; live data must be "
      "revalidated and rewritten (paper 4.9.5)\n");
}

}  // namespace
}  // namespace tdb::bench

int main(int argc, char** argv) {
  tdb::bench::BenchJson::ParseArgs(argc, argv);  // --seed, --obs
  tdb::bench::AblationValidationModes();
  tdb::bench::AblationDeltaUt();
  tdb::bench::AblationCleaning();
  return 0;
}
