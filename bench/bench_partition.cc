// E6 (§9.2.2, "Write partition + commit"): creating a fresh partition
// (paper: 223 us) and copying one (paper: 386 us, *independent of the
// number of chunks in the source* thanks to copy-on-write). The
// size-independence is the headline: we sweep the source size over two
// orders of magnitude and show the copy cost stays flat.
//
// `--json <path>` writes every measured configuration (plus the unified
// observability snapshot) as JSON; `--obs` enables instrumentation.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/common/stats.h"

namespace tdb::bench {
namespace {

void BenchCreatePartition(BenchJson& json) {
  PrintHeader("E6a: write (create) partition + commit (paper: 223 us)");
  Rig rig = MakeRig();
  RunningStats stats;
  for (int i = 0; i < 50; ++i) {
    auto pid = rig.chunks->AllocatePartition();
    stats.Add(TimeUs([&] {
      ChunkStore::Batch batch;
      batch.WritePartition(*pid, PaperPartitionParams());
      if (!rig.chunks->Commit(std::move(batch)).ok()) {
        std::abort();
      }
    }));
  }
  std::printf("create partition: %.1f us (sigma %.1f)\n", stats.mean(),
              stats.stddev());
  json.Add("create_partition", "reps=50", stats.mean(), stats.stddev());
}

void BenchCopyPartition(BenchJson& json) {
  PrintHeader(
      "E6b: copy partition + commit vs source size (paper: 386 us, "
      "size-independent)");
  std::printf("%14s %14s\n", "source_chunks", "copy_us");
  Rng rng(BenchSeed() + 9);
  for (int source_chunks : {16, 64, 256, 1024, 4096}) {
    Rig rig = MakeRig(/*segment_size=*/512 * 1024, /*num_segments=*/2048);
    PartitionId source = MakePartition(*rig.chunks);
    for (int base = 0; base < source_chunks; base += 256) {
      ChunkStore::Batch batch;
      for (int i = base; i < base + 256 && i < source_chunks; ++i) {
        ChunkId id = *rig.chunks->AllocateChunk(source);
        batch.WriteChunk(id, rng.NextBytes(512));
      }
      (void)rig.chunks->Commit(std::move(batch));
    }
    // Materialize the source tree once so each copy measures only the
    // copy-on-write leader duplication, as in the paper's steady state.
    (void)rig.chunks->Checkpoint();
    RunningStats stats;
    for (int rep = 0; rep < 20; ++rep) {
      auto snap = rig.chunks->AllocatePartition();
      stats.Add(TimeUs([&] {
        ChunkStore::Batch batch;
        batch.CopyPartition(*snap, source);
        if (!rig.chunks->Commit(std::move(batch)).ok()) {
          std::abort();
        }
      }));
    }
    std::printf("%14d %14.1f\n", source_chunks, stats.mean());
    char params[64];
    std::snprintf(params, sizeof(params), "source_chunks=%d", source_chunks);
    json.Add("copy_partition", params, stats.mean(), stats.stddev());
  }
  std::printf("copy cost should stay flat across the sweep (copy-on-write)\n");
}

int Run(int argc, char** argv) {
  const char* json_path = BenchJson::ParseArgs(argc, argv);
  BenchJson json;
  BenchCreatePartition(json);
  BenchCopyPartition(json);
  if (json_path != nullptr && !json.Write(json_path, "bench_partition")) {
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace tdb::bench

int main(int argc, char** argv) { return tdb::bench::Run(argc, argv); }
