// E7 (§9.2.3): incremental backup cost and size. With 512-byte chunks the
// paper fits
//   latency = 675 us + 9 us/chunk-in-partition + 278 us/updated-chunk
//   size    = 456 B + 528 B/updated-chunk
// The per-partition-chunk term is the snapshot diff; the per-updated-chunk
// term is chunk copying. We sweep partition size x update count and fit the
// same models.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/backup/backup_store.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/store/archival_store.h"

namespace tdb::bench {
namespace {

int Run(int argc, char** argv) {
  const char* json_path = BenchJson::ParseArgs(argc, argv);
  BenchJson json;

  PrintHeader(
      "E7: incremental backup (paper: 675 us + 9 us/chunk + 278 us/updated; "
      "size 456 B + 528 B/updated)");
  std::printf("%12s %10s %12s %14s\n", "part_chunks", "updated", "create_us",
              "backup_bytes");

  LinearRegression time_fit(2);
  LinearRegression size_fit(1);
  Rng rng(BenchSeed() + 13);
  const int kPartitionSizes[] = {256, 1024, 4096};
  const int kUpdateCounts[] = {16, 64, 256};

  for (int partition_chunks : kPartitionSizes) {
    for (int updated : kUpdateCounts) {
      Rig rig = MakeRig(/*segment_size=*/512 * 1024, /*num_segments=*/4096);
      BackupStore backup(rig.chunks.get());
      PartitionId partition = MakePartition(*rig.chunks);
      std::vector<ChunkId> ids;
      for (int base = 0; base < partition_chunks; base += 256) {
        ChunkStore::Batch batch;
        for (int i = base; i < base + 256 && i < partition_chunks; ++i) {
          ChunkId id = *rig.chunks->AllocateChunk(partition);
          ids.push_back(id);
          batch.WriteChunk(id, rng.NextBytes(512));
        }
        (void)rig.chunks->Commit(std::move(batch));
      }
      (void)rig.chunks->Checkpoint();
      MemArchive archive;
      // Base (full) backup establishes the snapshot to diff against.
      auto base_sink = archive.OpenSink("base");
      auto base = backup.CreateBackupSet({{partition, 0}}, 1, 0,
                                         base_sink.get());
      if (!base.ok()) {
        std::abort();
      }
      (void)base_sink->Close();
      // Update a subset.
      {
        ChunkStore::Batch batch;
        for (int i = 0; i < updated; ++i) {
          batch.WriteChunk(ids[rng.NextBelow(ids.size())], rng.NextBytes(512));
        }
        (void)rig.chunks->Commit(std::move(batch));
      }
      // Time the incremental backup.
      auto inc_sink = archive.OpenSink("inc");
      double us = TimeUs([&] {
        auto inc = backup.CreateBackupSet({{partition, base->snapshots[0]}}, 2,
                                          1, inc_sink.get());
        if (!inc.ok()) {
          std::abort();
        }
      });
      (void)inc_sink->Close();
      size_t backup_bytes = archive.StreamSize("inc");
      std::printf("%12d %10d %12.0f %14zu\n", partition_chunks, updated, us,
                  backup_bytes);
      time_fit.Add({static_cast<double>(partition_chunks),
                    static_cast<double>(updated)},
                   us);
      size_fit.Add({static_cast<double>(updated)},
                   static_cast<double>(backup_bytes));
      char params[96];
      std::snprintf(params, sizeof(params),
                    "partition_chunks=%d,updated=%d,backup_bytes=%zu",
                    partition_chunks, updated, backup_bytes);
      json.Add("incremental_backup", params, us, 0.0,
               1e6 * static_cast<double>(backup_bytes) / us);
    }
  }

  std::vector<double> tb = time_fit.Solve();
  if (tb.size() == 3) {
    std::printf(
        "\nfitted latency: %.0f us + %.2f us/partition-chunk + %.1f "
        "us/updated-chunk (r^2 = %.4f)\n",
        tb[0], tb[1], tb[2], time_fit.RSquared(tb));
  }
  std::vector<double> sb = size_fit.Solve();
  if (sb.size() == 2) {
    std::printf("fitted size: %.0f B + %.1f B/updated-chunk (r^2 = %.4f)\n",
                sb[0], sb[1], size_fit.RSquared(sb));
  }
  std::printf(
      "note: updates may hit the same chunk twice, so the diff can be "
      "slightly smaller than the update count\n");

  if (json_path != nullptr && !json.Write(json_path, "bench_backup")) {
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace tdb::bench

int main(int argc, char** argv) { return tdb::bench::Run(argc, argv); }
