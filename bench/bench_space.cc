// E8 (§9.3): space overhead. The paper reports ~52 bytes of overhead per
// chunk (descriptor + header + cipher padding, with an 8-byte-block
// cipher), a small amortized chunk-map cost thanks to the fanout of 64, and
// log utilization kept around 90% by idle-period cleaning (60% in the
// comparison experiment). We measure stored-vs-logical bytes and the
// utilization the cleaner restores after churn.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/rng.h"

namespace tdb::bench {
namespace {

void BenchPerChunkOverhead() {
  PrintHeader("E8a: per-chunk space overhead (paper: ~52 B/chunk)");
  std::printf("%10s %14s %14s %12s\n", "chunk_B", "logical_B", "stored_B",
              "overhead/ch");
  Rng rng(BenchSeed() + 21);
  for (size_t chunk_size : {128u, 512u, 2048u}) {
    Rig rig = MakeRig(/*segment_size=*/512 * 1024, /*num_segments=*/2048);
    PartitionId partition = MakePartition(*rig.chunks);
    const int kChunks = 2000;
    for (int base = 0; base < kChunks; base += 250) {
      ChunkStore::Batch batch;
      for (int i = base; i < base + 250; ++i) {
        ChunkId id = *rig.chunks->AllocateChunk(partition);
        batch.WriteChunk(id, rng.NextBytes(chunk_size));
      }
      (void)rig.chunks->Commit(std::move(batch));
    }
    (void)rig.chunks->Checkpoint();
    ChunkStore::Stats stats = rig.chunks->GetStats();
    uint64_t logical = static_cast<uint64_t>(kChunks) * chunk_size;
    double overhead =
        (static_cast<double>(stats.live_log_bytes) - logical) / kChunks;
    std::printf("%10zu %14llu %14llu %12.1f\n", chunk_size,
                static_cast<unsigned long long>(logical),
                static_cast<unsigned long long>(stats.live_log_bytes),
                overhead);
  }
  std::printf(
      "(live bytes include map chunks and partition leaders; map amortizes "
      "across the 64-way fanout)\n");
}

void BenchLogUtilization() {
  PrintHeader("E8b: log utilization after churn and cleaning (paper: 60-90%)");
  Rig rig = MakeRig(/*segment_size=*/128 * 1024, /*num_segments=*/512);
  PartitionId partition = MakePartition(*rig.chunks);
  Rng rng(BenchSeed() + 22);
  std::vector<ChunkId> ids;
  for (int i = 0; i < 500; ++i) {
    ids.push_back(*rig.chunks->AllocateChunk(partition));
  }
  // Churn: rewrite everything several times, leaving obsolete versions.
  for (int round = 0; round < 10; ++round) {
    ChunkStore::Batch batch;
    for (ChunkId id : ids) {
      batch.WriteChunk(id, rng.NextBytes(512));
    }
    (void)rig.chunks->Commit(std::move(batch));
  }
  (void)rig.chunks->Checkpoint();
  ChunkStore::Stats before = rig.chunks->GetStats();
  double util_before = static_cast<double>(before.live_log_bytes) /
                       static_cast<double>(before.used_log_bytes);
  auto cleaned = rig.chunks->Clean(10000);
  ChunkStore::Stats after = rig.chunks->GetStats();
  double util_after = static_cast<double>(after.live_log_bytes) /
                      static_cast<double>(after.used_log_bytes);
  std::printf("utilization before cleaning: %5.1f%%  (used %llu, live %llu)\n",
              util_before * 100.0,
              static_cast<unsigned long long>(before.used_log_bytes),
              static_cast<unsigned long long>(before.live_log_bytes));
  std::printf(
      "after cleaning %zu segments:  %5.1f%%  (used %llu, live %llu, free "
      "segments %llu -> %llu)\n",
      cleaned.ok() ? *cleaned : 0, util_after * 100.0,
      static_cast<unsigned long long>(after.used_log_bytes),
      static_cast<unsigned long long>(after.live_log_bytes),
      static_cast<unsigned long long>(before.free_segments),
      static_cast<unsigned long long>(after.free_segments));
}

}  // namespace
}  // namespace tdb::bench

int main(int argc, char** argv) {
  tdb::bench::BenchJson::ParseArgs(argc, argv);  // --seed, --obs
  tdb::bench::BenchPerChunkOverhead();
  tdb::bench::BenchLogUtilization();
  return 0;
}
