// E2 (§9.2.1): raw store operations. The paper measures l_u (untrusted
// store flush latency, 10-40 ms on its NTFS disks), l_t (tamper-resistant
// store write, ~5 ms EEPROM), and b_u (store bandwidth, 3.5-4.7 MB/s). We
// benchmark the in-memory store (computational floor), the file-backed
// store with fdatasync (a real l_u on this machine), and trusted-store
// writes.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

#include <cstdio>
#include <filesystem>

#include "src/common/rng.h"
#include "src/platform/trusted_store.h"
#include "src/store/untrusted_store.h"

namespace tdb {
namespace {

void BM_MemStoreWrite(benchmark::State& state) {
  MemUntrustedStore store({.segment_size = 256 * 1024, .num_segments = 64});
  Rng rng(bench::BenchSeed() + 1);
  Bytes data = rng.NextBytes(static_cast<size_t>(state.range(0)));
  uint32_t offset = 0;
  for (auto _ : state) {
    if (offset + data.size() > store.segment_size()) {
      offset = 0;
    }
    benchmark::DoNotOptimize(store.Write(0, offset, data));
    offset += static_cast<uint32_t>(data.size());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_MemStoreWrite)->Arg(512)->Arg(4096)->Arg(65536);

void BM_MemStoreRead(benchmark::State& state) {
  MemUntrustedStore store({.segment_size = 256 * 1024, .num_segments = 64});
  size_t size = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.Read(0, 0, size));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_MemStoreRead)->Arg(512)->Arg(65536);

void BM_FileStoreWriteAndFlush(benchmark::State& state) {
  std::string path =
      (std::filesystem::temp_directory_path() / "tdb_bench_store.bin").string();
  auto store = FileUntrustedStore::Open(
      path, {.segment_size = 256 * 1024, .num_segments = 16});
  if (!store.ok()) {
    state.SkipWithError("cannot open file store");
    return;
  }
  Rng rng(bench::BenchSeed() + 1);
  Bytes data = rng.NextBytes(static_cast<size_t>(state.range(0)));
  uint32_t offset = 0;
  for (auto _ : state) {
    if (offset + data.size() > (*store)->segment_size()) {
      offset = 0;
    }
    (void)(*store)->Write(0, offset, data);
    (void)(*store)->Flush();  // this is l_u on this machine
    offset += static_cast<uint32_t>(data.size());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
  std::remove(path.c_str());
}
BENCHMARK(BM_FileStoreWriteAndFlush)->Arg(512)->Arg(65536);

void BM_MemRegisterWrite(benchmark::State& state) {
  MemTamperResistantRegister reg;
  Bytes value(40, 0x7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(reg.Write(value));
  }
}
BENCHMARK(BM_MemRegisterWrite);

void BM_FileRegisterWrite(benchmark::State& state) {
  std::string path =
      (std::filesystem::temp_directory_path() / "tdb_bench_reg").string();
  auto reg = FileTamperResistantRegister::Open(path);
  if (!reg.ok()) {
    state.SkipWithError("cannot open file register");
    return;
  }
  Bytes value(40, 0x7);
  for (auto _ : state) {
    benchmark::DoNotOptimize((*reg)->Write(value));  // this is l_t
  }
  std::remove((path + ".slot0").c_str());
  std::remove((path + ".slot1").c_str());
}
BENCHMARK(BM_FileRegisterWrite);

void BM_MemCounterAdvance(benchmark::State& state) {
  MemMonotonicCounter counter;
  uint64_t next = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(counter.AdvanceTo(next++));
  }
}
BENCHMARK(BM_MemCounterAdvance);

}  // namespace
}  // namespace tdb

// Hand-rolled main instead of BENCHMARK_MAIN so `--seed` (which google
// benchmark would reject as unrecognized) is consumed before Initialize.
int main(int argc, char** argv) {
  tdb::bench::MutableBenchSeed() =
      tdb::bench::BenchJson::SeedFromArgs(argc, argv);
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      ++i;  // skip the flag and its value
      continue;
    }
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
