// E10-E13: the high-level comparison of §9.5.
//
//   Figure 10: database operations per 10-op experiment (reads / updates /
//              deletes / adds / commits) for release and bind.
//   Figure 11: runtime comparison, TDB vs XDB-with-crypto-layer, for both
//              experiments. We report measured computational time plus a
//              modelled total that charges the paper's device latencies per
//              flush (l_u = 15 ms untrusted, l_t = 5 ms tamper-resistant),
//              since both systems run on in-memory stores here.
//   Figure 12: TDB module breakdown for the release experiment (mu, sigma,
//              %), with nested-call exclusion like the paper's table.
//   E13:       flush counts (the paper observed 96 untrusted-store flushes
//              and 19 tamper-resistant-store flushes per release experiment
//              with delta_ut = 5).
//
// Both systems use the same cryptographic parameters (DES-CBC + SHA-1 for
// data), the same flush discipline, and literally the same workload logic.

#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "src/obs/profiler.h"
#include "src/common/stats.h"
#include "src/workload/tdb_backend.h"
#include "src/workload/vending.h"
#include "src/workload/xdb_backend.h"

namespace tdb::bench {
namespace {

constexpr int kRepetitions = 10;
constexpr int kOpsPerExperiment = 10;

struct ExperimentResult {
  RunningStats total_ms;            // wall computational time per run
  RunningStats modeled_ms;          // + flush count x device model
  WorkloadCounts ops;               // Figure 10 (per experiment)
  double untrusted_flushes = 0;     // mean per run
  double trusted_writes = 0;        // mean per run
  std::map<std::string, RunningStats> module_ms;  // Figure 12
};

ExperimentResult RunTdb(bool bind) {
  ExperimentResult result;
  Rig rig = MakeRig(/*segment_size=*/256 * 1024, /*num_segments=*/4096);
  auto ws = TdbWorkloadStore::Create(rig.chunks.get());
  if (!ws.ok()) {
    std::abort();
  }
  VendingWorkload workload(ws->get(), VendingConfig{});
  if (!workload.Setup().ok()) {
    std::abort();
  }
  for (int rep = 0; rep < kRepetitions; ++rep) {
    (*ws)->ResetCounts();
    Profiler& profiler = Profiler::Instance();
    profiler.Reset();
    profiler.Enable();
    double us = TimeUs([&] {
      Status status = bind ? workload.RunBindExperiment(kOpsPerExperiment)
                           : workload.RunReleaseExperiment(kOpsPerExperiment);
      if (!status.ok()) {
        std::fprintf(stderr, "experiment failed: %s\n",
                     status.ToString().c_str());
        std::abort();
      }
    });
    profiler.Disable();
    result.total_ms.Add(us / 1000.0);
    uint64_t flushes = profiler.GetCount("untrusted_store.flushes");
    uint64_t trusted = profiler.GetCount("tamper_resistant_store.writes");
    result.untrusted_flushes += static_cast<double>(flushes) / kRepetitions;
    result.trusted_writes += static_cast<double>(trusted) / kRepetitions;
    result.modeled_ms.Add(us / 1000.0 + flushes * kModelUntrustedFlushMs +
                          trusted * kModelTrustedWriteMs);
    for (const Profiler::Entry& entry : profiler.Snapshot()) {
      result.module_ms[entry.module].Add(entry.total_us / 1000.0);
    }
    result.ops = (*ws)->counts();
  }
  return result;
}

ExperimentResult RunXdb(bool bind) {
  ExperimentResult result;
  MemPageFile data(8192);
  MemAppendFile log;
  MemMonotonicCounter counter;
  auto db = Xdb::Create(&data, &log, XdbOptions{.cache_pages = 2048});
  if (!db.ok()) {
    std::abort();
  }
  auto ws = XdbWorkloadStore::Create(db->get(), &counter, /*delta_ut=*/5);
  if (!ws.ok()) {
    std::abort();
  }
  VendingWorkload workload(ws->get(), VendingConfig{});
  if (!workload.Setup().ok()) {
    std::abort();
  }
  for (int rep = 0; rep < kRepetitions; ++rep) {
    (*ws)->ResetCounts();
    uint64_t data_flushes_before = data.flush_count();
    uint64_t log_flushes_before = log.flush_count();
    double us = TimeUs([&] {
      Status status = bind ? workload.RunBindExperiment(kOpsPerExperiment)
                           : workload.RunReleaseExperiment(kOpsPerExperiment);
      if (!status.ok()) {
        std::fprintf(stderr, "xdb experiment failed: %s\n",
                     status.ToString().c_str());
        std::abort();
      }
    });
    // XDB flushes both the log and the data file at commit.
    uint64_t flushes = (data.flush_count() - data_flushes_before) +
                       (log.flush_count() - log_flushes_before);
    uint64_t trusted = (*ws)->counts().commits / 5;  // delta_ut = 5
    result.total_ms.Add(us / 1000.0);
    result.untrusted_flushes += static_cast<double>(flushes) / kRepetitions;
    result.trusted_writes += static_cast<double>(trusted) / kRepetitions;
    result.modeled_ms.Add(us / 1000.0 + flushes * kModelUntrustedFlushMs +
                          trusted * kModelTrustedWriteMs);
    result.ops = (*ws)->counts();
  }
  return result;
}

void PrintFigure10(const ExperimentResult& release,
                   const ExperimentResult& bind) {
  PrintHeader("E10 / Figure 10: database operations per 10-op experiment");
  std::printf("%-10s %8s %8s %8s %8s %8s\n", "", "read", "update", "delete",
              "add", "commit");
  std::printf("%-10s %8llu %8llu %8llu %8llu %8llu\n", "release",
              (unsigned long long)release.ops.reads,
              (unsigned long long)release.ops.updates,
              (unsigned long long)release.ops.deletes,
              (unsigned long long)release.ops.adds,
              (unsigned long long)release.ops.commits);
  std::printf("%-10s %8llu %8llu %8llu %8llu %8llu\n", "bind",
              (unsigned long long)bind.ops.reads,
              (unsigned long long)bind.ops.updates,
              (unsigned long long)bind.ops.deletes,
              (unsigned long long)bind.ops.adds,
              (unsigned long long)bind.ops.commits);
  std::printf("paper:     release 781/181/10/4/10; bind 722/733/10/220/20\n");
}

void PrintFigure11(const ExperimentResult& tdb_release,
                   const ExperimentResult& tdb_bind,
                   const ExperimentResult& xdb_release,
                   const ExperimentResult& xdb_bind) {
  PrintHeader("E11 / Figure 11: runtime comparison (per 10-op experiment)");
  std::printf("%-22s %14s %14s %16s\n", "system/experiment", "compute_ms",
              "sigma", "modeled_total_ms");
  auto row = [](const char* label, const ExperimentResult& r) {
    std::printf("%-22s %14.2f %14.2f %16.1f\n", label, r.total_ms.mean(),
                r.total_ms.stddev(), r.modeled_ms.mean());
  };
  row("TDB release", tdb_release);
  row("XDB release", xdb_release);
  row("TDB bind", tdb_bind);
  row("XDB bind", xdb_bind);
  std::printf(
      "\nmodeled total = compute + untrusted flushes x %.0f ms + "
      "tamper-resistant writes x %.0f ms\n",
      kModelUntrustedFlushMs, kModelTrustedWriteMs);
  std::printf(
      "paper (Figure 11): TDB outperformed XDB on both experiments, "
      "primarily through faster commits.\n");
}

void PrintFigure12(const ExperimentResult& tdb_release) {
  PrintHeader(
      "E12 / Figure 12: TDB runtime analysis, release experiment (module "
      "times exclude nested calls)");
  double compute_total = tdb_release.total_ms.mean();
  double io_untrusted = tdb_release.untrusted_flushes * kModelUntrustedFlushMs;
  double io_trusted = tdb_release.trusted_writes * kModelTrustedWriteMs;
  double total = compute_total + io_untrusted + io_trusted;
  std::printf("%-26s %10s %10s %6s\n", "module", "mu(ms)", "sigma(ms)", "%");
  std::printf("%-26s %10.1f %10.1f %6.0f\n", "DB TOTAL (modeled)", total,
              tdb_release.total_ms.stddev(), 100.0);
  const char* kModules[] = {"collection_store", "object_store", "chunk_store",
                            "encryption", "hashing"};
  for (const char* module : kModules) {
    auto it = tdb_release.module_ms.find(module);
    double mean = it == tdb_release.module_ms.end() ? 0 : it->second.mean();
    double sigma = it == tdb_release.module_ms.end() ? 0 : it->second.stddev();
    std::printf("%-26s %10.2f %10.2f %6.1f\n", module, mean, sigma,
                100.0 * mean / total);
  }
  std::printf("%-26s %10.1f %10s %6.1f  (modeled: %.0f flushes x %.0f ms)\n",
              "untrusted store write", io_untrusted, "-",
              100.0 * io_untrusted / total, tdb_release.untrusted_flushes,
              kModelUntrustedFlushMs);
  std::printf("%-26s %10.1f %10s %6.1f  (modeled: %.0f writes x %.0f ms)\n",
              "tamper-resistant store", io_trusted, "-",
              100.0 * io_trusted / total, tdb_release.trusted_writes,
              kModelTrustedWriteMs);
  std::printf(
      "paper: DB TOTAL 4209 ms; untrusted store write 81%%, "
      "tamper-resistant 5%%, encryption+hashing 6%%\n");
}

void PrintFlushCounts(const ExperimentResult& tdb_release) {
  PrintHeader("E13: store flush accounting, TDB release experiment");
  std::printf("untrusted store flushes per experiment: %.0f (paper: 96)\n",
              tdb_release.untrusted_flushes);
  std::printf(
      "tamper-resistant store writes per experiment: %.0f (paper: 19, "
      "delta_ut = 5)\n",
      tdb_release.trusted_writes);
}

}  // namespace
}  // namespace tdb::bench

int main(int argc, char** argv) {
  using namespace tdb::bench;
  const char* json_path = BenchJson::ParseArgs(argc, argv);
  std::printf("vending benchmark (9.5): %d repetitions of %d operations\n",
              kRepetitions, kOpsPerExperiment);
  ExperimentResult tdb_release = RunTdb(/*bind=*/false);
  ExperimentResult tdb_bind = RunTdb(/*bind=*/true);
  ExperimentResult xdb_release = RunXdb(/*bind=*/false);
  ExperimentResult xdb_bind = RunXdb(/*bind=*/true);
  PrintFigure10(tdb_release, tdb_bind);
  PrintFigure11(tdb_release, tdb_bind, xdb_release, xdb_bind);
  PrintFigure12(tdb_release);
  PrintFlushCounts(tdb_release);

  if (json_path != nullptr) {
    BenchJson json;
    auto add = [&json](const char* op, const char* system,
                       const ExperimentResult& r) {
      char params[128];
      std::snprintf(params, sizeof(params),
                    "system=%s,ops=%d,untrusted_flushes=%.0f,"
                    "trusted_writes=%.0f,modeled_total_ms=%.1f",
                    system, kOpsPerExperiment, r.untrusted_flushes,
                    r.trusted_writes, r.modeled_ms.mean());
      json.Add(op, params, r.total_ms.mean() * 1000.0,
               r.total_ms.stddev() * 1000.0);
    };
    add("vending_release", "tdb", tdb_release);
    add("vending_bind", "tdb", tdb_bind);
    add("vending_release", "xdb", xdb_release);
    add("vending_bind", "xdb", xdb_bind);
    if (!json.Write(json_path, "bench_vending")) {
      return 1;
    }
  }
  return 0;
}
