// E1 (§9.2.1): cryptographic bandwidths. The paper reports 3DES-CBC at
// 2.5 MB/s, DES-CBC at 7.2 MB/s, SHA-1 at 21.1 MB/s, and a fixed hash
// "finalization" overhead of ~5 µs on a 450 MHz Pentium II. Absolute
// numbers on modern hardware are far higher; the *ordering* (3DES slowest,
// DES ~3x faster, hashing much faster than encryption) should reproduce.

#include <benchmark/benchmark.h>

#include "src/common/rng.h"
#include "src/crypto/hmac.h"
#include "src/crypto/sha1.h"
#include "src/crypto/sha256.h"
#include "src/crypto/suite.h"

namespace tdb {
namespace {

Bytes TestData(size_t size) {
  Rng rng(42);
  return rng.NextBytes(size);
}

void BM_Sha1(benchmark::State& state) {
  Bytes data = TestData(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha1::Hash(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha1)->Arg(1 << 20);

void BM_Sha256(benchmark::State& state) {
  Bytes data = TestData(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Hash(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(1 << 20);

// The fixed "finalization" overhead: hashing a tiny input is dominated by
// padding + one compression round (the paper's 5 µs constant).
void BM_Sha1Finalization(benchmark::State& state) {
  Bytes data = TestData(16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha1::Hash(data));
  }
}
BENCHMARK(BM_Sha1Finalization);

void CipherBench(benchmark::State& state, CipherAlg alg) {
  CryptoParams params{alg, HashAlg::kSha1, Bytes(CipherKeySize(alg), 0x42)};
  auto suite = CryptoSuite::Create(params);
  Bytes data = TestData(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(suite->Encrypt(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}

void BM_EncryptDes(benchmark::State& state) {
  CipherBench(state, CipherAlg::kDes);
}
BENCHMARK(BM_EncryptDes)->Arg(1 << 18);

void BM_Encrypt3Des(benchmark::State& state) {
  CipherBench(state, CipherAlg::kTripleDes);
}
BENCHMARK(BM_Encrypt3Des)->Arg(1 << 18);

void BM_EncryptAes128(benchmark::State& state) {
  CipherBench(state, CipherAlg::kAes128);
}
BENCHMARK(BM_EncryptAes128)->Arg(1 << 18);

void DecryptBench(benchmark::State& state, CipherAlg alg) {
  CryptoParams params{alg, HashAlg::kSha1, Bytes(CipherKeySize(alg), 0x42)};
  auto suite = CryptoSuite::Create(params);
  Bytes ct = suite->Encrypt(TestData(static_cast<size_t>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(suite->Decrypt(ct));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}

void BM_DecryptDes(benchmark::State& state) {
  DecryptBench(state, CipherAlg::kDes);
}
BENCHMARK(BM_DecryptDes)->Arg(1 << 18);

void BM_Decrypt3Des(benchmark::State& state) {
  DecryptBench(state, CipherAlg::kTripleDes);
}
BENCHMARK(BM_Decrypt3Des)->Arg(1 << 18);

void BM_DecryptAes128(benchmark::State& state) {
  DecryptBench(state, CipherAlg::kAes128);
}
BENCHMARK(BM_DecryptAes128)->Arg(1 << 18);

void BM_HmacSha1(benchmark::State& state) {
  Bytes key(20, 0x0b);
  Bytes data = TestData(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(HmacSha1(key, data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_HmacSha1)->Arg(1 << 18);

}  // namespace
}  // namespace tdb

BENCHMARK_MAIN();
