// E1 (§9.2.1): cryptographic bandwidths. The paper reports 3DES-CBC at
// 2.5 MB/s, DES-CBC at 7.2 MB/s, SHA-1 at 21.1 MB/s, and a fixed hash
// "finalization" overhead of ~5 µs on a 450 MHz Pentium II. Absolute
// numbers on modern hardware are far higher; the *ordering* (3DES slowest,
// DES ~3x faster, hashing much faster than encryption) should reproduce.
//
// `--json <path>` writes each measured primitive as a JSON record.

#include <cstdio>
#include <functional>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/crypto/hmac.h"
#include "src/crypto/sha1.h"
#include "src/crypto/sha256.h"
#include "src/crypto/suite.h"

namespace tdb::bench {
namespace {

Bytes TestData(size_t size) {
  Rng rng(BenchSeed());
  return rng.NextBytes(size);
}

// Times `fn` over enough repetitions to smooth scheduler noise and records
// one table row + JSON record. `bytes` of 0 suppresses the bandwidth column
// (for fixed-overhead measurements).
void Measure(BenchJson& json, const char* op, size_t bytes, int repetitions,
             const std::function<void()>& fn) {
  fn();  // warm caches and key schedules
  RunningStats stats;
  for (int i = 0; i < repetitions; ++i) {
    stats.Add(TimeUs(fn));
  }
  double mbps =
      bytes > 0 ? static_cast<double>(bytes) / stats.mean() : 0.0;
  if (bytes > 0) {
    std::printf("%-18s %10zu B %12.1f us %10.1f MB/s\n", op, bytes,
                stats.mean(), mbps);
  } else {
    std::printf("%-18s %12s %12.2f us\n", op, "", stats.mean());
  }
  char params[48];
  std::snprintf(params, sizeof(params), "bytes=%zu", bytes);
  json.Add(op, params, stats.mean(), stats.stddev(),
           bytes > 0 ? 1e6 * static_cast<double>(bytes) / stats.mean() : 0.0);
}

void CipherBenches(BenchJson& json, const char* name, CipherAlg alg,
                   size_t bytes, int repetitions) {
  CryptoParams params{alg, HashAlg::kSha1, Bytes(CipherKeySize(alg), 0x42)};
  auto suite = CryptoSuite::Create(params);
  Bytes data = TestData(bytes);
  char op[32];
  std::snprintf(op, sizeof(op), "encrypt_%s", name);
  Measure(json, op, bytes, repetitions,
          [&] { (void)suite->Encrypt(data); });
  Bytes ct = suite->Encrypt(data);
  std::snprintf(op, sizeof(op), "decrypt_%s", name);
  Measure(json, op, bytes, repetitions, [&] { (void)suite->Decrypt(ct); });
}

int Run(int argc, char** argv) {
  const char* json_path = BenchJson::ParseArgs(argc, argv);
  BenchJson json;

  PrintHeader("E1: crypto bandwidth (cf. paper 9.2.1)");
  std::printf(
      "paper reference (450 MHz P-II): 3DES 2.5 MB/s, DES 7.2 MB/s, SHA-1 "
      "21.1 MB/s,\nhash finalization ~5 us\n\n");

  const size_t kHashBytes = 1 << 20;
  const size_t kCipherBytes = 1 << 18;
  const int kRepetitions = 12;

  Bytes hash_data = TestData(kHashBytes);
  Measure(json, "sha1", kHashBytes, kRepetitions,
          [&] { (void)Sha1::Hash(hash_data); });
  Measure(json, "sha256", kHashBytes, kRepetitions,
          [&] { (void)Sha256::Hash(hash_data); });

  Bytes tiny = TestData(16);
  Measure(json, "sha1_finalization", 0, kRepetitions, [&] {
    for (int i = 0; i < 1000; ++i) {
      (void)Sha1::Hash(tiny);
    }
  });

  CipherBenches(json, "des", CipherAlg::kDes, kCipherBytes, kRepetitions);
  CipherBenches(json, "3des", CipherAlg::kTripleDes, kCipherBytes,
                kRepetitions);
  CipherBenches(json, "aes128", CipherAlg::kAes128, kCipherBytes,
                kRepetitions);

  Bytes hmac_key(20, 0x0b);
  Bytes hmac_data = TestData(kCipherBytes);
  Measure(json, "hmac_sha1", kCipherBytes, kRepetitions,
          [&] { (void)HmacSha1(hmac_key, hmac_data); });

  std::printf(
      "\nnote: sha1_finalization times 1000 16-byte hashes (divide by 1000 "
      "for the paper's per-hash constant)\n");

  if (json_path != nullptr && !json.Write(json_path, "bench_crypto")) {
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace tdb::bench

int main(int argc, char** argv) { return tdb::bench::Run(argc, argv); }
