# Empty compiler generated dependencies file for tdb_paging.
# This may be replaced when dependencies are built.
