file(REMOVE_RECURSE
  "libtdb_paging.a"
)
