file(REMOVE_RECURSE
  "CMakeFiles/tdb_paging.dir/paging/trusted_pager.cc.o"
  "CMakeFiles/tdb_paging.dir/paging/trusted_pager.cc.o.d"
  "libtdb_paging.a"
  "libtdb_paging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdb_paging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
