file(REMOVE_RECURSE
  "CMakeFiles/tdb_object.dir/object/lock_manager.cc.o"
  "CMakeFiles/tdb_object.dir/object/lock_manager.cc.o.d"
  "CMakeFiles/tdb_object.dir/object/object_store.cc.o"
  "CMakeFiles/tdb_object.dir/object/object_store.cc.o.d"
  "CMakeFiles/tdb_object.dir/object/pickler.cc.o"
  "CMakeFiles/tdb_object.dir/object/pickler.cc.o.d"
  "libtdb_object.a"
  "libtdb_object.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdb_object.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
