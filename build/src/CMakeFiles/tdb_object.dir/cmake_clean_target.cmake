file(REMOVE_RECURSE
  "libtdb_object.a"
)
