
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chunk/chunk_id.cc" "src/CMakeFiles/tdb_chunk.dir/chunk/chunk_id.cc.o" "gcc" "src/CMakeFiles/tdb_chunk.dir/chunk/chunk_id.cc.o.d"
  "/root/repo/src/chunk/chunk_map.cc" "src/CMakeFiles/tdb_chunk.dir/chunk/chunk_map.cc.o" "gcc" "src/CMakeFiles/tdb_chunk.dir/chunk/chunk_map.cc.o.d"
  "/root/repo/src/chunk/chunk_store.cc" "src/CMakeFiles/tdb_chunk.dir/chunk/chunk_store.cc.o" "gcc" "src/CMakeFiles/tdb_chunk.dir/chunk/chunk_store.cc.o.d"
  "/root/repo/src/chunk/cleaner.cc" "src/CMakeFiles/tdb_chunk.dir/chunk/cleaner.cc.o" "gcc" "src/CMakeFiles/tdb_chunk.dir/chunk/cleaner.cc.o.d"
  "/root/repo/src/chunk/descriptor.cc" "src/CMakeFiles/tdb_chunk.dir/chunk/descriptor.cc.o" "gcc" "src/CMakeFiles/tdb_chunk.dir/chunk/descriptor.cc.o.d"
  "/root/repo/src/chunk/log_format.cc" "src/CMakeFiles/tdb_chunk.dir/chunk/log_format.cc.o" "gcc" "src/CMakeFiles/tdb_chunk.dir/chunk/log_format.cc.o.d"
  "/root/repo/src/chunk/log_manager.cc" "src/CMakeFiles/tdb_chunk.dir/chunk/log_manager.cc.o" "gcc" "src/CMakeFiles/tdb_chunk.dir/chunk/log_manager.cc.o.d"
  "/root/repo/src/chunk/validator.cc" "src/CMakeFiles/tdb_chunk.dir/chunk/validator.cc.o" "gcc" "src/CMakeFiles/tdb_chunk.dir/chunk/validator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tdb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tdb_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tdb_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tdb_store.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
