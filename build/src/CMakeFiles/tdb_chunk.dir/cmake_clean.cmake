file(REMOVE_RECURSE
  "CMakeFiles/tdb_chunk.dir/chunk/chunk_id.cc.o"
  "CMakeFiles/tdb_chunk.dir/chunk/chunk_id.cc.o.d"
  "CMakeFiles/tdb_chunk.dir/chunk/chunk_map.cc.o"
  "CMakeFiles/tdb_chunk.dir/chunk/chunk_map.cc.o.d"
  "CMakeFiles/tdb_chunk.dir/chunk/chunk_store.cc.o"
  "CMakeFiles/tdb_chunk.dir/chunk/chunk_store.cc.o.d"
  "CMakeFiles/tdb_chunk.dir/chunk/cleaner.cc.o"
  "CMakeFiles/tdb_chunk.dir/chunk/cleaner.cc.o.d"
  "CMakeFiles/tdb_chunk.dir/chunk/descriptor.cc.o"
  "CMakeFiles/tdb_chunk.dir/chunk/descriptor.cc.o.d"
  "CMakeFiles/tdb_chunk.dir/chunk/log_format.cc.o"
  "CMakeFiles/tdb_chunk.dir/chunk/log_format.cc.o.d"
  "CMakeFiles/tdb_chunk.dir/chunk/log_manager.cc.o"
  "CMakeFiles/tdb_chunk.dir/chunk/log_manager.cc.o.d"
  "CMakeFiles/tdb_chunk.dir/chunk/validator.cc.o"
  "CMakeFiles/tdb_chunk.dir/chunk/validator.cc.o.d"
  "libtdb_chunk.a"
  "libtdb_chunk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdb_chunk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
