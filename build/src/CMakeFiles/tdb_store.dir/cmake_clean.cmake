file(REMOVE_RECURSE
  "CMakeFiles/tdb_store.dir/store/archival_store.cc.o"
  "CMakeFiles/tdb_store.dir/store/archival_store.cc.o.d"
  "CMakeFiles/tdb_store.dir/store/faulty_store.cc.o"
  "CMakeFiles/tdb_store.dir/store/faulty_store.cc.o.d"
  "CMakeFiles/tdb_store.dir/store/untrusted_store.cc.o"
  "CMakeFiles/tdb_store.dir/store/untrusted_store.cc.o.d"
  "libtdb_store.a"
  "libtdb_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdb_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
