# Empty compiler generated dependencies file for tdb_store.
# This may be replaced when dependencies are built.
