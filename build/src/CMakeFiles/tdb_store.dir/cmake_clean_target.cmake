file(REMOVE_RECURSE
  "libtdb_store.a"
)
