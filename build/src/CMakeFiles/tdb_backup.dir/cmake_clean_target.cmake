file(REMOVE_RECURSE
  "libtdb_backup.a"
)
