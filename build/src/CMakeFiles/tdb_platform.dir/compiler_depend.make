# Empty compiler generated dependencies file for tdb_platform.
# This may be replaced when dependencies are built.
