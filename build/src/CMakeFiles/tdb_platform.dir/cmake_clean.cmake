file(REMOVE_RECURSE
  "CMakeFiles/tdb_platform.dir/platform/trusted_store.cc.o"
  "CMakeFiles/tdb_platform.dir/platform/trusted_store.cc.o.d"
  "libtdb_platform.a"
  "libtdb_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdb_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
