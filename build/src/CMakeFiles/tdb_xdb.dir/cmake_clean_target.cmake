file(REMOVE_RECURSE
  "libtdb_xdb.a"
)
