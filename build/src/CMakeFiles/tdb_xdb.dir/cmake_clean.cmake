file(REMOVE_RECURSE
  "CMakeFiles/tdb_xdb.dir/xdb/btree.cc.o"
  "CMakeFiles/tdb_xdb.dir/xdb/btree.cc.o.d"
  "CMakeFiles/tdb_xdb.dir/xdb/crypto_layer.cc.o"
  "CMakeFiles/tdb_xdb.dir/xdb/crypto_layer.cc.o.d"
  "CMakeFiles/tdb_xdb.dir/xdb/pager.cc.o"
  "CMakeFiles/tdb_xdb.dir/xdb/pager.cc.o.d"
  "CMakeFiles/tdb_xdb.dir/xdb/wal.cc.o"
  "CMakeFiles/tdb_xdb.dir/xdb/wal.cc.o.d"
  "CMakeFiles/tdb_xdb.dir/xdb/xdb.cc.o"
  "CMakeFiles/tdb_xdb.dir/xdb/xdb.cc.o.d"
  "libtdb_xdb.a"
  "libtdb_xdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdb_xdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
