# Empty compiler generated dependencies file for tdb_xdb.
# This may be replaced when dependencies are built.
