
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xdb/btree.cc" "src/CMakeFiles/tdb_xdb.dir/xdb/btree.cc.o" "gcc" "src/CMakeFiles/tdb_xdb.dir/xdb/btree.cc.o.d"
  "/root/repo/src/xdb/crypto_layer.cc" "src/CMakeFiles/tdb_xdb.dir/xdb/crypto_layer.cc.o" "gcc" "src/CMakeFiles/tdb_xdb.dir/xdb/crypto_layer.cc.o.d"
  "/root/repo/src/xdb/pager.cc" "src/CMakeFiles/tdb_xdb.dir/xdb/pager.cc.o" "gcc" "src/CMakeFiles/tdb_xdb.dir/xdb/pager.cc.o.d"
  "/root/repo/src/xdb/wal.cc" "src/CMakeFiles/tdb_xdb.dir/xdb/wal.cc.o" "gcc" "src/CMakeFiles/tdb_xdb.dir/xdb/wal.cc.o.d"
  "/root/repo/src/xdb/xdb.cc" "src/CMakeFiles/tdb_xdb.dir/xdb/xdb.cc.o" "gcc" "src/CMakeFiles/tdb_xdb.dir/xdb/xdb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tdb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tdb_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tdb_platform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
