file(REMOVE_RECURSE
  "CMakeFiles/tdb_workload.dir/workload/tdb_backend.cc.o"
  "CMakeFiles/tdb_workload.dir/workload/tdb_backend.cc.o.d"
  "CMakeFiles/tdb_workload.dir/workload/vending.cc.o"
  "CMakeFiles/tdb_workload.dir/workload/vending.cc.o.d"
  "CMakeFiles/tdb_workload.dir/workload/xdb_backend.cc.o"
  "CMakeFiles/tdb_workload.dir/workload/xdb_backend.cc.o.d"
  "libtdb_workload.a"
  "libtdb_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdb_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
