file(REMOVE_RECURSE
  "libtdb_workload.a"
)
