# Empty dependencies file for tdb_workload.
# This may be replaced when dependencies are built.
