# Empty compiler generated dependencies file for tdb_collect.
# This may be replaced when dependencies are built.
