file(REMOVE_RECURSE
  "CMakeFiles/tdb_collect.dir/collect/collection_store.cc.o"
  "CMakeFiles/tdb_collect.dir/collect/collection_store.cc.o.d"
  "CMakeFiles/tdb_collect.dir/collect/index.cc.o"
  "CMakeFiles/tdb_collect.dir/collect/index.cc.o.d"
  "CMakeFiles/tdb_collect.dir/collect/object_btree.cc.o"
  "CMakeFiles/tdb_collect.dir/collect/object_btree.cc.o.d"
  "libtdb_collect.a"
  "libtdb_collect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdb_collect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
