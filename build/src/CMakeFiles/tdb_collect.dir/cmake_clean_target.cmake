file(REMOVE_RECURSE
  "libtdb_collect.a"
)
