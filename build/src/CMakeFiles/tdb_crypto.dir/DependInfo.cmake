
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/aes.cc" "src/CMakeFiles/tdb_crypto.dir/crypto/aes.cc.o" "gcc" "src/CMakeFiles/tdb_crypto.dir/crypto/aes.cc.o.d"
  "/root/repo/src/crypto/cbc.cc" "src/CMakeFiles/tdb_crypto.dir/crypto/cbc.cc.o" "gcc" "src/CMakeFiles/tdb_crypto.dir/crypto/cbc.cc.o.d"
  "/root/repo/src/crypto/des.cc" "src/CMakeFiles/tdb_crypto.dir/crypto/des.cc.o" "gcc" "src/CMakeFiles/tdb_crypto.dir/crypto/des.cc.o.d"
  "/root/repo/src/crypto/hmac.cc" "src/CMakeFiles/tdb_crypto.dir/crypto/hmac.cc.o" "gcc" "src/CMakeFiles/tdb_crypto.dir/crypto/hmac.cc.o.d"
  "/root/repo/src/crypto/sha1.cc" "src/CMakeFiles/tdb_crypto.dir/crypto/sha1.cc.o" "gcc" "src/CMakeFiles/tdb_crypto.dir/crypto/sha1.cc.o.d"
  "/root/repo/src/crypto/sha256.cc" "src/CMakeFiles/tdb_crypto.dir/crypto/sha256.cc.o" "gcc" "src/CMakeFiles/tdb_crypto.dir/crypto/sha256.cc.o.d"
  "/root/repo/src/crypto/suite.cc" "src/CMakeFiles/tdb_crypto.dir/crypto/suite.cc.o" "gcc" "src/CMakeFiles/tdb_crypto.dir/crypto/suite.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
