file(REMOVE_RECURSE
  "libtdb_crypto.a"
)
