file(REMOVE_RECURSE
  "CMakeFiles/tdb_crypto.dir/crypto/aes.cc.o"
  "CMakeFiles/tdb_crypto.dir/crypto/aes.cc.o.d"
  "CMakeFiles/tdb_crypto.dir/crypto/cbc.cc.o"
  "CMakeFiles/tdb_crypto.dir/crypto/cbc.cc.o.d"
  "CMakeFiles/tdb_crypto.dir/crypto/des.cc.o"
  "CMakeFiles/tdb_crypto.dir/crypto/des.cc.o.d"
  "CMakeFiles/tdb_crypto.dir/crypto/hmac.cc.o"
  "CMakeFiles/tdb_crypto.dir/crypto/hmac.cc.o.d"
  "CMakeFiles/tdb_crypto.dir/crypto/sha1.cc.o"
  "CMakeFiles/tdb_crypto.dir/crypto/sha1.cc.o.d"
  "CMakeFiles/tdb_crypto.dir/crypto/sha256.cc.o"
  "CMakeFiles/tdb_crypto.dir/crypto/sha256.cc.o.d"
  "CMakeFiles/tdb_crypto.dir/crypto/suite.cc.o"
  "CMakeFiles/tdb_crypto.dir/crypto/suite.cc.o.d"
  "libtdb_crypto.a"
  "libtdb_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdb_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
