# Empty dependencies file for tdb_common.
# This may be replaced when dependencies are built.
