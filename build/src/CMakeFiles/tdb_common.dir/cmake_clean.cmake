file(REMOVE_RECURSE
  "CMakeFiles/tdb_common.dir/common/bytes.cc.o"
  "CMakeFiles/tdb_common.dir/common/bytes.cc.o.d"
  "CMakeFiles/tdb_common.dir/common/pickle.cc.o"
  "CMakeFiles/tdb_common.dir/common/pickle.cc.o.d"
  "CMakeFiles/tdb_common.dir/common/profiler.cc.o"
  "CMakeFiles/tdb_common.dir/common/profiler.cc.o.d"
  "CMakeFiles/tdb_common.dir/common/rng.cc.o"
  "CMakeFiles/tdb_common.dir/common/rng.cc.o.d"
  "CMakeFiles/tdb_common.dir/common/stats.cc.o"
  "CMakeFiles/tdb_common.dir/common/stats.cc.o.d"
  "CMakeFiles/tdb_common.dir/common/status.cc.o"
  "CMakeFiles/tdb_common.dir/common/status.cc.o.d"
  "libtdb_common.a"
  "libtdb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
