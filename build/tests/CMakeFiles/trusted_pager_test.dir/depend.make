# Empty dependencies file for trusted_pager_test.
# This may be replaced when dependencies are built.
