file(REMOVE_RECURSE
  "CMakeFiles/trusted_pager_test.dir/trusted_pager_test.cc.o"
  "CMakeFiles/trusted_pager_test.dir/trusted_pager_test.cc.o.d"
  "trusted_pager_test"
  "trusted_pager_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trusted_pager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
