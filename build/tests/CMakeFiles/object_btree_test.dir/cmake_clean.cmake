file(REMOVE_RECURSE
  "CMakeFiles/object_btree_test.dir/object_btree_test.cc.o"
  "CMakeFiles/object_btree_test.dir/object_btree_test.cc.o.d"
  "object_btree_test"
  "object_btree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/object_btree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
