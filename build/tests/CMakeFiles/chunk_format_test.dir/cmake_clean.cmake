file(REMOVE_RECURSE
  "CMakeFiles/chunk_format_test.dir/chunk_format_test.cc.o"
  "CMakeFiles/chunk_format_test.dir/chunk_format_test.cc.o.d"
  "chunk_format_test"
  "chunk_format_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chunk_format_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
