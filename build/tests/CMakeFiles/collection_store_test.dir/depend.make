# Empty dependencies file for collection_store_test.
# This may be replaced when dependencies are built.
