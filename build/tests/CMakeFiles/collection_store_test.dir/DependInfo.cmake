
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/collection_store_test.cc" "tests/CMakeFiles/collection_store_test.dir/collection_store_test.cc.o" "gcc" "tests/CMakeFiles/collection_store_test.dir/collection_store_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tdb_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tdb_collect.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tdb_object.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tdb_backup.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tdb_paging.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tdb_chunk.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tdb_store.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tdb_xdb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tdb_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tdb_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
