file(REMOVE_RECURSE
  "CMakeFiles/vending_test.dir/vending_test.cc.o"
  "CMakeFiles/vending_test.dir/vending_test.cc.o.d"
  "vending_test"
  "vending_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vending_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
