# Empty compiler generated dependencies file for vending_test.
# This may be replaced when dependencies are built.
