file(REMOVE_RECURSE
  "CMakeFiles/backup_tool.dir/backup_tool.cpp.o"
  "CMakeFiles/backup_tool.dir/backup_tool.cpp.o.d"
  "backup_tool"
  "backup_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backup_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
