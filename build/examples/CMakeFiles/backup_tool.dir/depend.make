# Empty dependencies file for backup_tool.
# This may be replaced when dependencies are built.
