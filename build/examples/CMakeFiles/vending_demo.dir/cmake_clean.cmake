file(REMOVE_RECURSE
  "CMakeFiles/vending_demo.dir/vending_demo.cpp.o"
  "CMakeFiles/vending_demo.dir/vending_demo.cpp.o.d"
  "vending_demo"
  "vending_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vending_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
