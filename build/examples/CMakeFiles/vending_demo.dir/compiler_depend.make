# Empty compiler generated dependencies file for vending_demo.
# This may be replaced when dependencies are built.
