# Empty compiler generated dependencies file for bench_chunk_commit.
# This may be replaced when dependencies are built.
