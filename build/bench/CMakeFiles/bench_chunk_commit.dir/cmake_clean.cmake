file(REMOVE_RECURSE
  "CMakeFiles/bench_chunk_commit.dir/bench_chunk_commit.cc.o"
  "CMakeFiles/bench_chunk_commit.dir/bench_chunk_commit.cc.o.d"
  "bench_chunk_commit"
  "bench_chunk_commit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_chunk_commit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
