# Empty compiler generated dependencies file for bench_vending.
# This may be replaced when dependencies are built.
