file(REMOVE_RECURSE
  "CMakeFiles/bench_vending.dir/bench_vending.cc.o"
  "CMakeFiles/bench_vending.dir/bench_vending.cc.o.d"
  "bench_vending"
  "bench_vending.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vending.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
