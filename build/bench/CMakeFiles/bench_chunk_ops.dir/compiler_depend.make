# Empty compiler generated dependencies file for bench_chunk_ops.
# This may be replaced when dependencies are built.
