file(REMOVE_RECURSE
  "CMakeFiles/bench_chunk_ops.dir/bench_chunk_ops.cc.o"
  "CMakeFiles/bench_chunk_ops.dir/bench_chunk_ops.cc.o.d"
  "bench_chunk_ops"
  "bench_chunk_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_chunk_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
