// Attack gallery: every storage-level attack from the paper's threat model,
// run against a live store, with the expected detection result:
//
//   1. bit flip in a data chunk                -> tamper detected on read
//   2. bit flip in a *map* chunk (metadata!)   -> tamper detected on read
//   3. swapping two stored chunk versions      -> tamper detected on read
//   4. replaying an old copy of the database   -> tamper detected at open
//   5. truncating committed data off the log   -> tamper detected at open
//   6. the same attacks against the layered XDB design, showing the
//      metadata gap TDB closes (§1.2).

#include <cstdio>

#include "src/chunk/chunk_store.h"
#include "src/platform/trusted_store.h"
#include "src/store/untrusted_store.h"
#include "src/xdb/crypto_layer.h"

using namespace tdb;

namespace {

int g_failures = 0;

void Expect(const char* attack, const Status& status, StatusCode expected) {
  bool ok = status.code() == expected;
  std::printf("%-52s %s (%s)\n", attack, ok ? "DETECTED" : "** MISSED **",
              status.ToString().c_str());
  if (!ok) {
    ++g_failures;
  }
}

struct Rig {
  Rig() : disk({.segment_size = 32 * 1024, .num_segments = 256}),
          secret(Bytes(32, 0xA5)) {
    options.validation.mode = ValidationMode::kCounter;
    auto cs = ChunkStore::Create(&disk,
                                 TrustedServices{&secret, nullptr, &counter},
                                 options);
    chunks = std::move(*cs);
    auto pid = chunks->AllocatePartition();
    ChunkStore::Batch batch;
    batch.WritePartition(*pid, CryptoParams{CipherAlg::kAes128,
                                            HashAlg::kSha256, Bytes(16, 2)});
    (void)chunks->Commit(std::move(batch));
    partition = *pid;
  }
  Result<std::unique_ptr<ChunkStore>> Reopen() {
    chunks.reset();
    return ChunkStore::Open(&disk,
                            TrustedServices{&secret, nullptr, &counter},
                            options);
  }
  MemUntrustedStore disk;
  MemSecretStore secret;
  MemMonotonicCounter counter;
  ChunkStoreOptions options;
  std::unique_ptr<ChunkStore> chunks;
  PartitionId partition;
};

}  // namespace

int main() {
  std::printf("== TDB tamper-detection gallery ==\n\n");

  {  // 1. data chunk bit flip
    Rig rig;
    ChunkId id = *rig.chunks->AllocateChunk(rig.partition);
    (void)rig.chunks->WriteChunk(id, Bytes(400, 'd'));
    auto loc = *rig.chunks->DebugChunkLocation(id);
    rig.disk.CorruptByte(loc.first.segment, loc.first.offset + loc.second / 2,
                         0x40);
    Expect("1. bit flip in a data chunk", rig.chunks->Read(id).status(),
           StatusCode::kTamperDetected);
  }

  {  // 2. map chunk (metadata) bit flip
    Rig rig;
    ChunkId id = *rig.chunks->AllocateChunk(rig.partition);
    (void)rig.chunks->WriteChunk(id, Bytes(100, 'm'));
    (void)rig.chunks->Checkpoint();
    auto map_loc = *rig.chunks->DebugChunkLocation(ChunkId(rig.partition, 1, 0));
    rig.disk.CorruptByte(map_loc.first.segment,
                         map_loc.first.offset + map_loc.second - 1, 0x01);
    auto reopened = rig.Reopen();
    Status result = reopened.ok() ? (*reopened)->Read(id).status()
                                  : reopened.status();
    Expect("2. bit flip in a map chunk (metadata attack)", result,
           StatusCode::kTamperDetected);
  }

  {  // 3. swapping two chunks' stored bytes
    Rig rig;
    ChunkId a = *rig.chunks->AllocateChunk(rig.partition);
    ChunkId b = *rig.chunks->AllocateChunk(rig.partition);
    ChunkStore::Batch batch;
    batch.WriteChunk(a, Bytes(256, 'a'));
    batch.WriteChunk(b, Bytes(256, 'b'));
    (void)rig.chunks->Commit(std::move(batch));
    auto la = *rig.chunks->DebugChunkLocation(a);
    auto lb = *rig.chunks->DebugChunkLocation(b);
    Bytes va = *rig.disk.Read(la.first.segment, la.first.offset, la.second);
    Bytes vb = *rig.disk.Read(lb.first.segment, lb.first.offset, lb.second);
    rig.disk.CorruptRange(la.first.segment, la.first.offset, vb);
    rig.disk.CorruptRange(lb.first.segment, lb.first.offset, va);
    Expect("3. swapping two stored chunk versions",
           rig.chunks->Read(a).status(), StatusCode::kTamperDetected);
  }

  {  // 4. whole-database replay
    Rig rig;
    ChunkId id = *rig.chunks->AllocateChunk(rig.partition);
    (void)rig.chunks->WriteChunk(id, BytesFromString("balance=100"));
    std::vector<Bytes> saved;
    for (uint32_t s = 0; s < rig.disk.num_segments(); ++s) {
      saved.push_back(rig.disk.DumpSegment(s));
    }
    Bytes superblock = rig.disk.DumpSuperblock();
    (void)rig.chunks->WriteChunk(id, BytesFromString("balance=0"));
    rig.chunks.reset();
    for (uint32_t s = 0; s < rig.disk.num_segments(); ++s) {
      rig.disk.RestoreSegment(s, saved[s]);
    }
    rig.disk.RestoreSuperblock(superblock);
    auto replayed = ChunkStore::Open(
        &rig.disk, TrustedServices{&rig.secret, nullptr, &rig.counter},
        rig.options);
    Expect("4. replaying an old copy of the database", replayed.status(),
           StatusCode::kTamperDetected);
  }

  {  // 5. truncating the log tail
    Rig rig;
    ChunkId id = *rig.chunks->AllocateChunk(rig.partition);
    (void)rig.chunks->WriteChunk(id, BytesFromString("v1"));
    std::vector<Bytes> saved;
    for (uint32_t s = 0; s < rig.disk.num_segments(); ++s) {
      saved.push_back(rig.disk.DumpSegment(s));
    }
    (void)rig.chunks->WriteChunk(id, BytesFromString("v2"));
    rig.chunks.reset();
    for (uint32_t s = 0; s < rig.disk.num_segments(); ++s) {
      rig.disk.RestoreSegment(s, saved[s]);  // superblock left current
    }
    auto reopened = ChunkStore::Open(
        &rig.disk, TrustedServices{&rig.secret, nullptr, &rig.counter},
        rig.options);
    Expect("5. deleting committed data from the log tail", reopened.status(),
           StatusCode::kTamperDetected);
  }

  {  // 6. the layered design's metadata gap
    std::printf("\n-- the same storage-level deletion against the layered "
                "XDB design --\n");
    MemPageFile data(4096);
    MemAppendFile log;
    MemMonotonicCounter counter;
    auto db = Xdb::Create(&data, &log);
    auto suite = CryptoSuite::Create(
        CryptoParams{CipherAlg::kAes128, HashAlg::kSha256, Bytes(16, 9)});
    SecureXdb secure(db->get(), *suite, &counter);
    (void)secure.CreateTree("t");
    (void)secure.Put("t", BytesFromString("license"), BytesFromString("valid"));
    (void)secure.Commit();
    // The attacker deletes the record through the unprotected B-tree.
    (void)(*db)->Delete("t", BytesFromString("license"));
    (void)(*db)->Commit();
    Status result = secure.Get("t", BytesFromString("license")).status();
    std::printf("%-52s %s (%s)\n",
                "6. record deletion via unprotected metadata",
                result.code() == StatusCode::kTamperDetected
                    ? "DETECTED"
                    : "UNDETECTED -- the layered design cannot see it",
                result.ToString().c_str());
    std::printf("   (TDB protects data and metadata uniformly; attack 3 "
                "above is the equivalent and IS detected)\n");
  }

  std::printf("\n%s\n", g_failures == 0 ? "all TDB attacks detected"
                                        : "SOME ATTACKS WENT UNDETECTED");
  return g_failures;
}
