// tdb_stats: drives a representative workload through every layer of the
// stack with the unified observability layer enabled, then reproduces the
// paper's Figure-12-style runtime breakdown, the cleaning overhead u
// (§9.4), and the cache hit ratios from one metrics snapshot.
//
//   tdb_stats [--json <path>]
//   tdb_stats --connect <host:port> [--reset] [--json <path>]
//
// With `--connect` no local workload runs: the tool fetches the live
// server's snapshot over the wire (the kStats op), prints the same module
// breakdown, derived ratios, and a per-op latency tail table
// (p50/p95/p99/p999 of the wire.op.* histograms), and — with `--reset` —
// then zeroes the server's metrics so the next fetch covers a fresh
// interval.
//
// With `--json` the full obs::SnapshotJson() document (local or fetched)
// is written to <path>; otherwise it is printed after the human-readable
// tables. The local phases:
//
//   1. vending   - the §9.5 vending workload (collection store, object
//                  store, chunk store, crypto) for module attribution
//   2. cleaning  - churn a partition until segments go cold, checkpoint,
//                  and clean them (cleaner + log manager counters)
//   3. paging    - a TrustedPager loop larger than its resident set
//                  (fault / eviction / writeback counters)
//   4. backup    - a full backup set into an in-memory archive
//   5. snapshot  - read-only snapshot transactions over an object store
//                  (sharded-cache and snapshot lifecycle counters)

#include <cctype>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "src/backup/backup_store.h"
#include "src/chunk/chunk_store.h"
#include "src/common/rng.h"
#include "src/object/object_store.h"
#include "src/obs/metrics.h"
#include "src/server/blob.h"
#include "src/net/tcp.h"
#include "src/obs/profiler.h"
#include "src/obs/snapshot.h"
#include "src/paging/trusted_pager.h"
#include "src/server/client.h"
#include "src/platform/trusted_store.h"
#include "src/store/untrusted_store.h"
#include "src/workload/tdb_backend.h"
#include "src/workload/vending.h"

using namespace tdb;

namespace {

void Fail(const char* what, const Status& status) {
  std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
  std::abort();
}

uint64_t Counter(const char* name) {
  return obs::MetricsRegistry::Instance().GetCounter(name);
}

void RunVendingPhase(ChunkStore* chunks) {
  auto ws = TdbWorkloadStore::Create(chunks);
  if (!ws.ok()) {
    Fail("workload store", ws.status());
  }
  VendingWorkload workload(ws->get(), VendingConfig{});
  if (Status s = workload.Setup(); !s.ok()) {
    Fail("vending setup", s);
  }
  if (Status s = workload.RunReleaseExperiment(10); !s.ok()) {
    Fail("release experiment", s);
  }
  if (Status s = workload.RunBindExperiment(10); !s.ok()) {
    Fail("bind experiment", s);
  }
}

void RunCleaningPhase(ChunkStore* chunks) {
  auto pid = chunks->AllocatePartition();
  {
    ChunkStore::Batch batch;
    batch.WritePartition(
        *pid, CryptoParams{CipherAlg::kDes, HashAlg::kSha1, Bytes(8, 0x5C)});
    if (Status s = chunks->Commit(std::move(batch)); !s.ok()) {
      Fail("churn partition", s);
    }
  }
  Rng rng(7);
  std::vector<ChunkId> ids;
  for (int i = 0; i < 512; ++i) {
    ids.push_back(*chunks->AllocateChunk(*pid));
  }
  // Several overwrite rounds leave the early segments mostly dead, which is
  // exactly the state the cleaner is for (§4.9.5).
  for (int round = 0; round < 4; ++round) {
    for (size_t base = 0; base < ids.size(); base += 128) {
      ChunkStore::Batch batch;
      for (size_t i = base; i < base + 128 && i < ids.size(); ++i) {
        batch.WriteChunk(ids[i], rng.NextBytes(512));
      }
      if (Status s = chunks->Commit(std::move(batch)); !s.ok()) {
        Fail("churn commit", s);
      }
    }
  }
  if (Status s = chunks->Checkpoint(); !s.ok()) {
    Fail("checkpoint", s);
  }
  auto cleaned = chunks->Clean(/*max_segments=*/16);
  if (!cleaned.ok()) {
    Fail("clean", cleaned.status());
  }
  std::printf("cleaning phase: %zu segments cleaned\n", *cleaned);
}

void RunPagingPhase(ChunkStore* chunks) {
  auto pager = TrustedPager::Create(
      chunks, CryptoParams{CipherAlg::kAes128, HashAlg::kSha256, Bytes(16, 3)},
      TrustedPagerOptions{.page_size = 4096, .resident_pages = 8});
  if (!pager.ok()) {
    Fail("pager", pager.status());
  }
  Rng rng(11);
  // Touch 4x the resident set, twice, so the second pass faults pages back
  // in from the chunk store.
  for (int pass = 0; pass < 2; ++pass) {
    for (uint64_t page = 0; page < 32; ++page) {
      uint64_t address = page * 4096;
      if (Status s = (*pager)->Write(address, rng.NextBytes(256)); !s.ok()) {
        Fail("pager write", s);
      }
      auto read = (*pager)->Read(address, 256);
      if (!read.ok()) {
        Fail("pager read", read.status());
      }
    }
  }
  if (Status s = (*pager)->FlushAll(); !s.ok()) {
    Fail("pager flush", s);
  }
}

void RunBackupPhase(ChunkStore* chunks) {
  auto pid = chunks->AllocatePartition();
  {
    ChunkStore::Batch batch;
    batch.WritePartition(
        *pid, CryptoParams{CipherAlg::kDes, HashAlg::kSha1, Bytes(8, 0x77)});
    if (Status s = chunks->Commit(std::move(batch)); !s.ok()) {
      Fail("backup partition", s);
    }
  }
  Rng rng(17);
  ChunkStore::Batch batch;
  for (int i = 0; i < 256; ++i) {
    batch.WriteChunk(*chunks->AllocateChunk(*pid), rng.NextBytes(512));
  }
  if (Status s = chunks->Commit(std::move(batch)); !s.ok()) {
    Fail("backup data", s);
  }
  BackupStore backup(chunks);
  MemArchive archive;
  auto sink = archive.OpenSink("full");
  auto set = backup.CreateBackupSet({{*pid, 0}}, 1, 0, sink.get());
  if (!set.ok()) {
    Fail("backup set", set.status());
  }
  if (Status s = sink->Close(); !s.ok()) {
    Fail("backup sink", s);
  }
  std::printf("backup phase: %llu chunks, %zu bytes archived\n",
              (unsigned long long)set->chunks_written,
              archive.StreamSize("full"));
}

void RunSnapshotPhase(ChunkStore* chunks) {
  auto pid = chunks->AllocatePartition();
  {
    ChunkStore::Batch batch;
    batch.WritePartition(
        *pid, CryptoParams{CipherAlg::kAes128, HashAlg::kSha256, Bytes(16, 9)});
    if (Status s = chunks->Commit(std::move(batch)); !s.ok()) {
      Fail("snapshot partition", s);
    }
  }
  TypeRegistry registry;
  if (Status s = RegisterType<server::BlobValue>(registry); !s.ok()) {
    Fail("blob type", s);
  }
  ObjectStore objects(chunks, *pid, &registry);
  std::vector<ObjectId> ids;
  {
    auto txn = objects.Begin();
    for (int i = 0; i < 64; ++i) {
      auto id = txn->Insert(std::make_shared<server::BlobValue>("snap"));
      if (!id.ok()) {
        Fail("snapshot insert", id.status());
      }
      ids.push_back(*id);
    }
    if (Status s = txn->Commit(); !s.ok()) {
      Fail("snapshot load", s);
    }
  }
  // Alternate read-only snapshot rounds with write commits so the phase
  // exercises both snapshot reuse and retire-and-recopy.
  for (int round = 0; round < 4; ++round) {
    for (int repeat = 0; repeat < 2; ++repeat) {
      auto ro = objects.BeginReadOnly();
      if (!ro.ok()) {
        Fail("begin read-only", ro.status());
      }
      for (const ObjectId& id : ids) {
        if (auto got = (*ro)->Get(id); !got.ok()) {
          Fail("snapshot read", got.status());
        }
      }
      if (Status s = (*ro)->Commit(); !s.ok()) {
        Fail("snapshot commit", s);
      }
    }
    auto txn = objects.Begin();
    if (Status s = txn->Put(ids[0], std::make_shared<server::BlobValue>("v"));
        !s.ok()) {
      Fail("snapshot writer put", s);
    }
    if (Status s = txn->Commit(); !s.ok()) {
      Fail("snapshot writer commit", s);
    }
  }
}

// Figure 12 reports per-module runtime with nested calls excluded; the
// Profiler's ProfileScope does the same exclusion, so the table is a direct
// readout of its snapshot.
void PrintModuleBreakdown() {
  std::vector<Profiler::Entry> entries = Profiler::Instance().Snapshot();
  double total_us = 0;
  for (const Profiler::Entry& e : entries) {
    total_us += e.total_us;
  }
  std::printf("\n== Figure-12-style module breakdown (all phases) ==\n");
  std::printf("%-26s %12s %10s %7s\n", "module", "total_ms", "calls", "%");
  for (const Profiler::Entry& e : entries) {
    std::printf("%-26s %12.2f %10llu %6.1f%%\n", e.module.c_str(),
                e.total_us / 1000.0, (unsigned long long)e.calls,
                total_us > 0 ? 100.0 * e.total_us / total_us : 0.0);
  }
  std::printf("%-26s %12.2f %10s %6.1f%%\n", "TOTAL (instrumented)",
              total_us / 1000.0, "-", 100.0);
  std::printf(
      "untrusted store flushes: %llu, tamper-resistant writes: %llu "
      "(device latency is modeled, not measured; see bench_vending)\n",
      (unsigned long long)Profiler::Instance().GetCount(
          "untrusted_store.flushes"),
      (unsigned long long)Profiler::Instance().GetCount(
          "tamper_resistant_store.writes"));
}

void PrintDerived() {
  std::printf("\n== cleaning overhead and cache ratios ==\n");
  uint64_t appended = Counter("chunk.log_bytes_appended");
  uint64_t rewritten = Counter("cleaner.bytes_rewritten");
  std::printf(
      "cleaning overhead u = bytes rewritten by cleaner / bytes appended "
      "= %llu / %llu = %.4f\n",
      (unsigned long long)rewritten, (unsigned long long)appended,
      appended > 0 ? static_cast<double>(rewritten) / appended : 0.0);
  for (const auto& [name, value] : obs::DerivedRatios()) {
    std::printf("%-28s %.4f\n", name.c_str(), value);
  }
  std::printf("object cache: %llu hits, %llu misses; pager: %llu faults, "
              "%llu evictions, %llu writebacks\n",
              (unsigned long long)Counter("object.cache_hits"),
              (unsigned long long)Counter("object.cache_misses"),
              (unsigned long long)Counter("paging.faults"),
              (unsigned long long)Counter("paging.evictions"),
              (unsigned long long)Counter("paging.writebacks"));
  std::printf("sharded caches: %llu hits, %llu misses, %llu evictions; "
              "validated chunks: %llu hits, %llu misses\n",
              (unsigned long long)Counter("cache.shard_hits"),
              (unsigned long long)Counter("cache.shard_misses"),
              (unsigned long long)Counter("cache.shard_evictions"),
              (unsigned long long)Counter("chunk.vcache_hits"),
              (unsigned long long)Counter("chunk.vcache_misses"));
  std::printf("snapshots: %llu created, %llu reused, %llu deallocated\n",
              (unsigned long long)Counter("snapshot.created"),
              (unsigned long long)Counter("snapshot.reused"),
              (unsigned long long)Counter("snapshot.deallocated"));
}

// Latency tails straight from the in-process registry's bucketed
// histograms (commit, lock wait, group-commit batch/wait, wire ops, ...).
void PrintLocalTails() {
  auto hists = obs::MetricsRegistry::Instance().Histograms();
  if (hists.empty()) {
    return;
  }
  std::printf("\n== latency tails (us, registry histograms) ==\n");
  std::printf("%-30s %10s %10s %10s %10s %10s %10s\n", "histogram", "count",
              "mean", "p50", "p95", "p99", "p999");
  for (const auto& h : hists) {
    std::printf("%-30s %10llu %10.1f %10.1f %10.1f %10.1f %10.1f\n",
                h.name.c_str(), (unsigned long long)h.count, h.mean(),
                h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99),
                h.Quantile(0.999));
  }
}

// ---------------------------------------------------------------------------
// Remote mode: fetch a live server's snapshot over the wire and render the
// same tables from the JSON instead of the in-process registries.

// Just enough JSON to read obs::SnapshotJson(): objects, arrays, strings,
// numbers, booleans. No escapes beyond the ones JsonEscape emits.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue* Find(const std::string& key) const {
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
  double NumberOr(const std::string& key, double def = 0.0) const {
    const JsonValue* v = Find(key);
    return v != nullptr && v->type == Type::kNumber ? v->number : def;
  }
  std::string StringOr(const std::string& key) const {
    const JsonValue* v = Find(key);
    return v != nullptr && v->type == Type::kString ? v->string : std::string();
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue& out) { return ParseValue(out) && (Skip(), pos_ == text_.size()); }

 private:
  void Skip() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Literal(const char* word) {
    size_t n = std::strlen(word);
    if (text_.compare(pos_, n, word) != 0) {
      return false;
    }
    pos_ += n;
    return true;
  }

  bool ParseString(std::string& out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return false;
    }
    ++pos_;
    out.clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        char e = text_[pos_++];
        switch (e) {
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u':
            // JsonEscape only emits \u00xx for control bytes; decode the
            // low byte and drop the rest.
            if (pos_ + 4 <= text_.size()) {
              out += static_cast<char>(
                  std::strtoul(text_.substr(pos_ + 2, 2).c_str(), nullptr, 16));
              pos_ += 4;
            }
            break;
          default: out += e;
        }
      } else {
        out += c;
      }
    }
    if (pos_ >= text_.size()) {
      return false;
    }
    ++pos_;  // closing quote
    return true;
  }

  bool ParseValue(JsonValue& out) {
    Skip();
    if (pos_ >= text_.size()) {
      return false;
    }
    char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out.type = JsonValue::Type::kObject;
      Skip();
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      while (true) {
        Skip();
        std::string key;
        if (!ParseString(key)) {
          return false;
        }
        Skip();
        if (pos_ >= text_.size() || text_[pos_++] != ':') {
          return false;
        }
        if (!ParseValue(out.object[key])) {
          return false;
        }
        Skip();
        if (pos_ >= text_.size()) {
          return false;
        }
        char d = text_[pos_++];
        if (d == '}') {
          return true;
        }
        if (d != ',') {
          return false;
        }
      }
    }
    if (c == '[') {
      ++pos_;
      out.type = JsonValue::Type::kArray;
      Skip();
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      while (true) {
        out.array.emplace_back();
        if (!ParseValue(out.array.back())) {
          return false;
        }
        Skip();
        if (pos_ >= text_.size()) {
          return false;
        }
        char d = text_[pos_++];
        if (d == ']') {
          return true;
        }
        if (d != ',') {
          return false;
        }
      }
    }
    if (c == '"') {
      out.type = JsonValue::Type::kString;
      return ParseString(out.string);
    }
    if (c == 't' || c == 'f') {
      out.type = JsonValue::Type::kBool;
      out.boolean = c == 't';
      return Literal(c == 't' ? "true" : "false");
    }
    if (c == 'n') {
      out.type = JsonValue::Type::kNull;
      return Literal("null");
    }
    char* end = nullptr;
    out.number = std::strtod(text_.c_str() + pos_, &end);
    if (end == text_.c_str() + pos_) {
      return false;
    }
    out.type = JsonValue::Type::kNumber;
    pos_ = static_cast<size_t>(end - text_.c_str());
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

void PrintRemoteModules(const JsonValue& root) {
  const JsonValue* modules = root.Find("modules");
  if (modules == nullptr || modules->type != JsonValue::Type::kArray) {
    return;
  }
  double total_us = 0.0;
  for (const JsonValue& m : modules->array) {
    total_us += m.NumberOr("total_us");
  }
  std::printf("\n== Figure-12-style module breakdown (remote) ==\n");
  std::printf("%-26s %12s %10s %7s\n", "module", "total_ms", "calls", "%");
  for (const JsonValue& m : modules->array) {
    double us = m.NumberOr("total_us");
    std::printf("%-26s %12.2f %10llu %6.1f%%\n", m.StringOr("module").c_str(),
                us / 1000.0, (unsigned long long)m.NumberOr("calls"),
                total_us > 0 ? 100.0 * us / total_us : 0.0);
  }
  std::printf("%-26s %12.2f %10s %6.1f%%\n", "TOTAL (instrumented)",
              total_us / 1000.0, "-", 100.0);
}

void PrintRemoteDerived(const JsonValue& root) {
  const JsonValue* derived = root.Find("derived");
  if (derived != nullptr && !derived->object.empty()) {
    std::printf("\n== derived ratios (remote) ==\n");
    for (const auto& [name, v] : derived->object) {
      std::printf("%-28s %.4f\n", name.c_str(), v.number);
    }
  }
  const JsonValue* gauges = root.Find("gauges");
  if (gauges != nullptr && !gauges->object.empty()) {
    std::printf("\n== server gauges ==\n");
    for (const auto& [name, v] : gauges->object) {
      std::printf("%-34s %.0f\n", name.c_str(), v.number);
    }
  }
}

// The per-partition table of a sharded server, reassembled from the
// shard.partition.<id>.* gauges the server publishes on every kStats.
void PrintRemotePartitions(const JsonValue& root) {
  const JsonValue* gauges = root.Find("gauges");
  if (gauges == nullptr) {
    return;
  }
  struct Row {
    double sessions = 0, commits = 0, queue_depth = 0, state = 0;
  };
  std::map<long, Row> rows;
  const std::string prefix = "shard.partition.";
  for (const auto& [name, v] : gauges->object) {
    if (name.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    char* end = nullptr;
    long id = std::strtol(name.c_str() + prefix.size(), &end, 10);
    if (end == nullptr || *end != '.') {
      continue;
    }
    const std::string field = end + 1;
    Row& row = rows[id];
    if (field == "sessions") row.sessions = v.number;
    else if (field == "commits") row.commits = v.number;
    else if (field == "queue_depth") row.queue_depth = v.number;
    else if (field == "state") row.state = v.number;
  }
  if (rows.empty()) {
    return;
  }
  static const char* kStates[] = {"serving", "draining", "moved"};
  std::printf("\n== partitions ==\n");
  std::printf("%-10s %10s %10s %12s %10s\n", "partition", "sessions",
              "commits", "queue_depth", "state");
  for (const auto& [id, row] : rows) {
    int state = static_cast<int>(row.state);
    std::printf("%-10ld %10.0f %10.0f %12.0f %10s\n", id, row.sessions,
                row.commits, row.queue_depth,
                state >= 0 && state <= 2 ? kStates[state] : "?");
  }
}

void PrintRemoteTails(const JsonValue& root) {
  const JsonValue* hists = root.Find("histograms");
  if (hists == nullptr || hists->type != JsonValue::Type::kArray) {
    return;
  }
  std::printf("\n== latency tails (us, remote registry histograms) ==\n");
  std::printf("%-30s %10s %10s %10s %10s %10s %10s\n", "histogram", "count",
              "mean", "p50", "p95", "p99", "p999");
  for (const JsonValue& h : hists->array) {
    std::printf("%-30s %10llu %10.1f %10.1f %10.1f %10.1f %10.1f\n",
                h.StringOr("name").c_str(),
                (unsigned long long)h.NumberOr("count"), h.NumberOr("mean"),
                h.NumberOr("p50"), h.NumberOr("p95"), h.NumberOr("p99"),
                h.NumberOr("p999"));
  }
}

int RunRemote(const char* address, bool reset, const char* json_path) {
  TypeRegistry registry;  // kStats/kStatsReset exchange no typed objects
  net::TcpTransport tcp;
  server::TdbClient client(&registry);
  if (Status s = client.Connect(&tcp, address); !s.ok()) {
    std::fprintf(stderr, "connect to %s failed: %s\n", address,
                 s.ToString().c_str());
    return 1;
  }
  auto json = client.FetchStats();
  if (!json.ok()) {
    std::fprintf(stderr, "stats fetch failed: %s\n",
                 json.status().ToString().c_str());
    return 1;
  }
  JsonValue root;
  if (!JsonParser(*json).Parse(root)) {
    std::fprintf(stderr, "server snapshot is not parseable JSON\n");
    return 1;
  }
  std::printf("== tdb_stats: remote snapshot from %s ==\n", address);
  PrintRemoteModules(root);
  PrintRemoteDerived(root);
  PrintRemotePartitions(root);
  PrintRemoteTails(root);
  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path);
      return 1;
    }
    std::fwrite(json->data(), 1, json->size(), f);
    std::fclose(f);
    std::printf("\nwrote remote snapshot to %s\n", json_path);
  }
  if (reset) {
    if (Status s = client.ResetStats(); !s.ok()) {
      std::fprintf(stderr, "stats reset failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("\nserver stats reset\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  const char* connect = nullptr;
  bool reset = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[i + 1];
    } else if (std::strcmp(argv[i], "--connect") == 0 && i + 1 < argc) {
      connect = argv[i + 1];
    } else if (std::strcmp(argv[i], "--reset") == 0) {
      reset = true;
    }
  }

  if (connect != nullptr) {
    return RunRemote(connect, reset, json_path);
  }

  obs::EnableAll();

  MemUntrustedStore disk(
      UntrustedStoreOptions{.segment_size = 64 * 1024, .num_segments = 4096});
  MemSecretStore secret(Bytes(32, 0xA5));
  MemMonotonicCounter counter;
  ChunkStoreOptions options;
  options.validation.mode = ValidationMode::kCounter;
  options.validation.delta_ut = 5;
  auto chunks =
      ChunkStore::Create(&disk, TrustedServices{&secret, nullptr, &counter},
                         options);
  if (!chunks.ok()) {
    Fail("chunk store", chunks.status());
  }

  std::printf("== tdb_stats: instrumented whole-stack run ==\n");
  RunVendingPhase(chunks->get());
  RunCleaningPhase(chunks->get());
  RunPagingPhase(chunks->get());
  RunBackupPhase(chunks->get());
  RunSnapshotPhase(chunks->get());
  (void)(*chunks)->GetStats();  // publishes the store gauges

  PrintModuleBreakdown();
  PrintDerived();
  PrintLocalTails();

  std::string json = obs::SnapshotJson(/*max_trace_events=*/32);
  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path);
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("\nwrote metrics snapshot to %s\n", json_path);
  } else {
    std::printf("\n== metrics snapshot (obs::SnapshotJson) ==\n%s",
                json.c_str());
  }
  return 0;
}
