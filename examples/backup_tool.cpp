// Backup walkthrough (§6): full and incremental backups to an (untrusted)
// archive, disaster recovery onto a fresh machine, and the restore
// constraints — broken chains and tampered archives are rejected, and a
// trusted-program policy hook can refuse old backups.

#include <cstdio>

#include "src/backup/backup_store.h"
#include "src/platform/trusted_store.h"
#include "src/store/archival_store.h"
#include "src/store/untrusted_store.h"

using namespace tdb;

namespace {

struct Machine {
  Machine()
      : disk({.segment_size = 64 * 1024, .num_segments = 512}),
        secret(Bytes(32, 0xA5)) {
    options.validation.mode = ValidationMode::kCounter;
  }
  Result<std::unique_ptr<ChunkStore>> Boot() {
    return ChunkStore::Create(&disk,
                              TrustedServices{&secret, nullptr, &counter},
                              options);
  }
  MemUntrustedStore disk;
  MemSecretStore secret;  // the *platform* secret, shared across machines
  MemMonotonicCounter counter;
  ChunkStoreOptions options;
};

}  // namespace

int main() {
  std::printf("== TDB backup tool walkthrough ==\n\n");
  Machine machine_a;
  auto store = machine_a.Boot();
  if (!store.ok()) {
    return 1;
  }
  BackupStore backup(store->get());
  MemArchive archive;  // an untrusted ftp server / tape

  // Populate a partition.
  PartitionId partition;
  {
    auto pid = (*store)->AllocatePartition();
    ChunkStore::Batch batch;
    batch.WritePartition(*pid, CryptoParams{CipherAlg::kAes128,
                                            HashAlg::kSha256, Bytes(16, 3)});
    (void)(*store)->Commit(std::move(batch));
    partition = *pid;
  }
  std::vector<ChunkId> ids;
  for (int i = 0; i < 20; ++i) {
    ChunkId id = *(*store)->AllocateChunk(partition);
    ids.push_back(id);
    (void)(*store)->WriteChunk(id,
                               BytesFromString("record " + std::to_string(i)));
  }

  // Day 0: full backup.
  auto full_sink = archive.OpenSink("day0-full");
  auto full = backup.CreateBackupSet({{partition, 0}}, /*set_id=*/1001,
                                     /*created_unix=*/1000, full_sink.get());
  (void)full_sink->Close();
  std::printf("day 0: full backup, %llu chunks, %zu bytes archived\n",
              (unsigned long long)full->chunks_written,
              archive.StreamSize("day0-full"));

  // Day 1: small changes, incremental backup against the day-0 snapshot.
  (void)(*store)->WriteChunk(ids[3], BytesFromString("record 3 v2"));
  (void)(*store)->DeallocateChunk(ids[7]);
  auto inc_sink = archive.OpenSink("day1-inc");
  auto inc = backup.CreateBackupSet({{partition, full->snapshots[0]}}, 1002,
                                    2000, inc_sink.get());
  (void)inc_sink->Close();
  std::printf("day 1: incremental backup, %llu changed chunks, %zu bytes "
              "(vs %zu full)\n",
              (unsigned long long)inc->chunks_written,
              archive.StreamSize("day1-inc"), archive.StreamSize("day0-full"));

  // Disaster: machine A's disk dies. Restore onto machine B (same platform
  // secret, fresh everything else).
  std::printf("\ndisk failure; restoring the chain onto a fresh machine\n");
  Machine machine_b;
  auto store_b = machine_b.Boot();
  BackupStore backup_b(store_b->get());
  {
    // Stream = full backup followed by the incremental.
    auto chain_sink = archive.OpenSink("chain");
    auto full_src = archive.OpenSource("day0-full");
    auto inc_src = archive.OpenSource("day1-inc");
    (void)chain_sink->Write(*(*full_src)->Read(1 << 24));
    (void)chain_sink->Write(*(*inc_src)->Read(1 << 24));
    (void)chain_sink->Close();
    auto chain_src = archive.OpenSource("chain");
    auto restored = backup_b.RestoreStream(chain_src->get());
    if (!restored.ok()) {
      std::printf("restore failed: %s\n", restored.status().ToString().c_str());
      return 1;
    }
    std::printf("restored %zu partition(s), %llu chunks applied\n",
                restored->restored.size(),
                (unsigned long long)restored->chunks_applied);
  }
  std::printf("machine B reads chunk 3: \"%s\"\n",
              StringFromBytes(*(*store_b)->Read(ids[3])).c_str());
  std::printf("machine B reads chunk 7: %s (deallocated in the incremental)\n",
              (*store_b)->Read(ids[7]).status().ToString().c_str());

  // Constraint 1: an incremental without its predecessor is refused.
  {
    Machine machine_c;
    auto store_c = machine_c.Boot();
    BackupStore backup_c(store_c->get());
    auto src = archive.OpenSource("day1-inc");
    auto restored = backup_c.RestoreStream(src->get());
    std::printf("\nrestoring the incremental alone: %s\n",
                restored.status().ToString().c_str());
  }

  // Constraint 2: a tampered archive is refused.
  {
    (void)archive.Corrupt("day0-full", archive.StreamSize("day0-full") / 2, 0x1);
    Machine machine_d;
    auto store_d = machine_d.Boot();
    BackupStore backup_d(store_d->get());
    auto src = archive.OpenSource("day0-full");
    auto restored = backup_d.RestoreStream(src->get());
    std::printf("restoring a tampered archive: %s\n",
                restored.status().ToString().c_str());
  }

  // Constraint 3: policy — the trusted program refuses old backups (§6.3).
  {
    Machine machine_e;
    auto store_e = machine_e.Boot();
    BackupStore backup_e(store_e->get());
    auto src = archive.OpenSource("day1-inc");
    auto restored = backup_e.RestoreStream(
        src->get(), [](const BackupDescriptor& d) -> Status {
          if (d.created_unix < 5000) {
            return FailedPreconditionError(
                "policy: backups older than t=5000 may not be restored");
          }
          return OkStatus();
        });
    std::printf("restoring against a freshness policy: %s\n",
                restored.status().ToString().c_str());
  }
  return 0;
}
