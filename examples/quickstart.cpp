// Quickstart: the TDB chunk store in five minutes.
//
// Creates a trusted store over an (untrusted) in-memory device, writes and
// reads chunks, takes a copy-on-write snapshot, survives a restart, and
// demonstrates that a tampering attack on the untrusted store is detected.

#include <cstdio>

#include "src/chunk/chunk_store.h"
#include "src/platform/trusted_store.h"
#include "src/store/untrusted_store.h"

using namespace tdb;

int main() {
  std::printf("== TDB quickstart ==\n\n");

  // The trusted platform (§2.1): a secret key and a monotonic counter. In a
  // real deployment these live in a secure coprocessor or smartcard; here
  // they are in-memory stand-ins.
  MemSecretStore secret(Bytes(32, 0xA5));
  MemMonotonicCounter counter;
  // The untrusted bulk store: the adversary can read and write all of it.
  MemUntrustedStore disk({.segment_size = 64 * 1024, .num_segments = 512});

  ChunkStoreOptions options;
  options.validation.mode = ValidationMode::kCounter;
  options.validation.delta_ut = 5;  // flush the counter once per 5 commits

  TrustedServices trusted{&secret, nullptr, &counter};
  auto store = ChunkStore::Create(&disk, trusted, options);
  if (!store.ok()) {
    std::printf("create failed: %s\n", store.status().ToString().c_str());
    return 1;
  }

  // Partitions group chunks under their own cryptographic parameters (§5).
  PartitionId partition;
  {
    auto pid = (*store)->AllocatePartition();
    ChunkStore::Batch batch;
    batch.WritePartition(
        *pid, CryptoParams{CipherAlg::kAes128, HashAlg::kSha256,
                           Bytes(16, 0x11)});
    if (!(*store)->Commit(std::move(batch)).ok()) {
      return 1;
    }
    partition = *pid;
    std::printf("created partition %u (AES-128-CBC, SHA-256)\n", partition);
  }

  // Write two chunks atomically; read one back.
  ChunkId balance = *(*store)->AllocateChunk(partition);
  ChunkId license = *(*store)->AllocateChunk(partition);
  {
    ChunkStore::Batch batch;
    batch.WriteChunk(balance, BytesFromString("balance=100"));
    batch.WriteChunk(license, BytesFromString("license: 3 plays left"));
    if (!(*store)->Commit(std::move(batch)).ok()) {
      return 1;
    }
  }
  std::printf("read %s -> \"%s\"\n", balance.ToString().c_str(),
              StringFromBytes(*(*store)->Read(balance)).c_str());

  // Copy-on-write snapshot: cheap regardless of partition size (§5.3).
  PartitionId snapshot = *(*store)->AllocatePartition();
  {
    ChunkStore::Batch batch;
    batch.CopyPartition(snapshot, partition);
    (void)(*store)->Commit(std::move(batch));
  }
  (void)(*store)->WriteChunk(balance, BytesFromString("balance=90"));
  std::printf("after an update: live=\"%s\", snapshot=\"%s\"\n",
              StringFromBytes(*(*store)->Read(balance)).c_str(),
              StringFromBytes(
                  *(*store)->Read(ChunkId(snapshot, balance.position)))
                  .c_str());

  // Restart: close and recover from the untrusted store + trusted counter.
  store->reset();
  auto reopened = ChunkStore::Open(&disk, trusted, options);
  if (!reopened.ok()) {
    std::printf("recovery failed: %s\n", reopened.status().ToString().c_str());
    return 1;
  }
  std::printf("recovered after restart: balance=\"%s\"\n",
              StringFromBytes(*(*reopened)->Read(balance)).c_str());

  // The attack: flip one bit of the stored chunk in the untrusted store. The
  // read above left a validated copy in the store's in-memory validated-chunk
  // cache — trusted memory the adversary cannot reach — so to show the device
  // actually being re-validated we restart once more (cold caches) before
  // flipping the bit.
  auto where = (*reopened)->DebugChunkLocation(balance);
  reopened->reset();
  auto attacked = ChunkStore::Open(&disk, trusted, options);
  if (!attacked.ok()) {
    std::printf("recovery failed: %s\n", attacked.status().ToString().c_str());
    return 1;
  }
  disk.CorruptByte(where->first.segment, where->first.offset + where->second / 2,
                   0x01);
  Status tampered = (*attacked)->Read(balance).status();
  std::printf("after flipping one stored bit, read says: %s\n",
              tampered.ToString().c_str());
  return tampered.code() == StatusCode::kTamperDetected ? 0 : 1;
}
