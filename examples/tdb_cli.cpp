// tdb_cli: an interactive client for tdb_server.
//
// Reads commands from stdin and drives them over the wire protocol:
//
//   begin                 open a transaction (on the session's partition)
//   insert <text>         store a new BlobValue, prints its object id
//   get <id>              read an object (id as printed by insert)
//   put <id> <text>       replace an object
//   del <id>              delete an object
//   commit | abort        finish the transaction
//   partitions            list the server's partition directory
//   create <name>         create (and serve) a new partition
//   use <name>            switch the session to another partition
//   ping                  liveness round trip
//   quit
//
// Usage: tdb_cli [ip:port] [--partition name]   (default 127.0.0.1:7478)
//
// With --partition (or `use`), transactions are routed to that named
// partition — two tdb_cli sessions on two partitions of one server get
// fully isolated data and their commits still share group-commit flushes.
// If the partition has been handed off to another server, begin reports
// the kMoved redirect with the new address to dial.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

#include "src/net/tcp.h"
#include "src/server/blob.h"
#include "src/server/client.h"

using namespace tdb;
using server::BlobValue;
using server::ObjectId;

namespace {

bool ParseId(const std::string& token, ObjectId* id) {
  char* end = nullptr;
  unsigned long long packed = std::strtoull(token.c_str(), &end, 0);
  if (end == token.c_str() || *end != '\0') {
    return false;
  }
  *id = ChunkId::Unpack(packed);
  return true;
}

void Report(const Status& status) {
  std::printf("%s\n", status.ok() ? "ok" : status.ToString().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const char* address = "127.0.0.1:7478";
  const char* partition_name = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--partition" && i + 1 < argc) {
      partition_name = argv[++i];
    } else {
      address = argv[i];
    }
  }

  TypeRegistry registry;
  if (!RegisterType<BlobValue>(registry).ok()) {
    return 1;
  }
  net::TcpTransport tcp;
  server::TdbClient client(&registry);
  Status connected = client.Connect(&tcp, address);
  if (!connected.ok()) {
    std::printf("connect %s: %s\n", address, connected.ToString().c_str());
    return 1;
  }

  // 0 routes to the server's sole partition; a name pins the session.
  PartitionId partition = 0;
  if (partition_name != nullptr) {
    auto entry = client.PartitionLookup(partition_name);
    if (!entry.ok()) {
      std::printf("partition '%s': %s\n", partition_name,
                  entry.status().ToString().c_str());
      return 1;
    }
    if (entry->moved) {
      std::printf("partition '%s' moved to %s — connect there\n",
                  partition_name, entry->moved_to.c_str());
      return 1;
    }
    partition = entry->id;
    std::printf("connected to %s, partition %u '%s'\n", address, partition,
                partition_name);
  } else {
    std::printf("connected to %s\n", address);
  }

  std::string line;
  while (std::printf("tdb> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty()) {
      continue;
    }
    if (cmd == "quit" || cmd == "exit") {
      break;
    }
    if (cmd == "ping") {
      Report(client.Ping());
    } else if (cmd == "begin") {
      Status begun = client.Begin(partition);
      if (begun.code() == StatusCode::kMoved) {
        std::printf("partition moved — reconnect to %s\n",
                    begun.message().c_str());
      } else {
        Report(begun);
      }
    } else if (cmd == "partitions") {
      auto entries = client.PartitionList();
      if (!entries.ok()) {
        Report(entries.status());
        continue;
      }
      for (const auto& entry : *entries) {
        std::printf("  %u '%s'%s%s (epoch %llu)\n", entry.id,
                    entry.name.c_str(), entry.moved ? " moved to " : "",
                    entry.moved ? entry.moved_to.c_str() : "",
                    static_cast<unsigned long long>(entry.epoch));
      }
    } else if (cmd == "create") {
      std::string name;
      if (!(in >> name)) {
        std::printf("usage: create <name>\n");
        continue;
      }
      auto pid = client.PartitionCreate(name);
      if (pid.ok()) {
        std::printf("partition %u '%s'\n", *pid, name.c_str());
      } else {
        Report(pid.status());
      }
    } else if (cmd == "use") {
      std::string name;
      if (!(in >> name)) {
        std::printf("usage: use <name>\n");
        continue;
      }
      auto entry = client.PartitionLookup(name);
      if (!entry.ok()) {
        Report(entry.status());
      } else if (entry->moved) {
        std::printf("partition '%s' moved to %s\n", name.c_str(),
                    entry->moved_to.c_str());
      } else {
        partition = entry->id;
        std::printf("using partition %u '%s'\n", partition, name.c_str());
      }
    } else if (cmd == "commit") {
      Report(client.Commit());
    } else if (cmd == "abort") {
      Report(client.Abort());
    } else if (cmd == "insert") {
      std::string text;
      std::getline(in >> std::ws, text);
      auto id = client.Insert(BlobValue(text));
      if (id.ok()) {
        std::printf("id %#llx (%s)\n",
                    static_cast<unsigned long long>(id->Pack()),
                    id->ToString().c_str());
      } else {
        Report(id.status());
      }
    } else if (cmd == "get") {
      std::string token;
      ObjectId id;
      if (!(in >> token) || !ParseId(token, &id)) {
        std::printf("usage: get <id>\n");
        continue;
      }
      auto object = client.Get(id);
      if (object.ok()) {
        std::printf("\"%s\"\n",
                    dynamic_cast<const BlobValue&>(**object).value.c_str());
      } else {
        Report(object.status());
      }
    } else if (cmd == "put") {
      std::string token, text;
      ObjectId id;
      if (!(in >> token) || !ParseId(token, &id)) {
        std::printf("usage: put <id> <text>\n");
        continue;
      }
      std::getline(in >> std::ws, text);
      Report(client.Put(id, BlobValue(text)));
    } else if (cmd == "del") {
      std::string token;
      ObjectId id;
      if (!(in >> token) || !ParseId(token, &id)) {
        std::printf("usage: del <id>\n");
        continue;
      }
      Report(client.Delete(id));
    } else {
      std::printf(
          "commands: begin insert get put del commit abort partitions "
          "create use ping quit\n");
    }
  }
  client.Disconnect();
  return 0;
}
