// tdb_cli: an interactive client for tdb_server.
//
// Reads commands from stdin and drives them over the wire protocol:
//
//   begin                 open a transaction
//   insert <text>         store a new BlobValue, prints its object id
//   get <id>              read an object (id as printed by insert)
//   put <id> <text>       replace an object
//   del <id>              delete an object
//   commit | abort        finish the transaction
//   ping                  liveness round trip
//   quit
//
// Usage: tdb_cli [ip:port]             (default 127.0.0.1:7478)

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

#include "src/net/tcp.h"
#include "src/server/blob.h"
#include "src/server/client.h"

using namespace tdb;
using server::BlobValue;
using server::ObjectId;

namespace {

bool ParseId(const std::string& token, ObjectId* id) {
  char* end = nullptr;
  unsigned long long packed = std::strtoull(token.c_str(), &end, 0);
  if (end == token.c_str() || *end != '\0') {
    return false;
  }
  *id = ChunkId::Unpack(packed);
  return true;
}

void Report(const Status& status) {
  std::printf("%s\n", status.ok() ? "ok" : status.ToString().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const char* address = argc > 1 ? argv[1] : "127.0.0.1:7478";

  TypeRegistry registry;
  if (!RegisterType<BlobValue>(registry).ok()) {
    return 1;
  }
  net::TcpTransport tcp;
  server::TdbClient client(&registry);
  Status connected = client.Connect(&tcp, address);
  if (!connected.ok()) {
    std::printf("connect %s: %s\n", address, connected.ToString().c_str());
    return 1;
  }
  std::printf("connected to %s\n", address);

  std::string line;
  while (std::printf("tdb> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty()) {
      continue;
    }
    if (cmd == "quit" || cmd == "exit") {
      break;
    }
    if (cmd == "ping") {
      Report(client.Ping());
    } else if (cmd == "begin") {
      Report(client.Begin());
    } else if (cmd == "commit") {
      Report(client.Commit());
    } else if (cmd == "abort") {
      Report(client.Abort());
    } else if (cmd == "insert") {
      std::string text;
      std::getline(in >> std::ws, text);
      auto id = client.Insert(BlobValue(text));
      if (id.ok()) {
        std::printf("id %#llx (%s)\n",
                    static_cast<unsigned long long>(id->Pack()),
                    id->ToString().c_str());
      } else {
        Report(id.status());
      }
    } else if (cmd == "get") {
      std::string token;
      ObjectId id;
      if (!(in >> token) || !ParseId(token, &id)) {
        std::printf("usage: get <id>\n");
        continue;
      }
      auto object = client.Get(id);
      if (object.ok()) {
        std::printf("\"%s\"\n",
                    dynamic_cast<const BlobValue&>(**object).value.c_str());
      } else {
        Report(object.status());
      }
    } else if (cmd == "put") {
      std::string token, text;
      ObjectId id;
      if (!(in >> token) || !ParseId(token, &id)) {
        std::printf("usage: put <id> <text>\n");
        continue;
      }
      std::getline(in >> std::ws, text);
      Report(client.Put(id, BlobValue(text)));
    } else if (cmd == "del") {
      std::string token;
      ObjectId id;
      if (!(in >> token) || !ParseId(token, &id)) {
        std::printf("usage: del <id>\n");
        continue;
      }
      Report(client.Delete(id));
    } else {
      std::printf("commands: begin insert get put del commit abort ping quit\n");
    }
  }
  client.Disconnect();
  return 0;
}
