// tdb_server: a sharded TDB service over TCP.
//
// Stands up the full trusted-database stack — in-memory untrusted store,
// trusted secret + monotonic counter, chunk store, partition directory —
// and serves it to networked clients (see tdb_cli.cpp) with group commit
// on. Every partition named with --partitions is created (if missing) and
// served by its own engine; their commits merge in the store-level
// combiner. With a single partition, clients that do not name one are
// routed to it. Objects are BlobValue strings; Ctrl-C shuts down
// gracefully.
//
// Usage: tdb_server [ip:port] [--partitions name1,name2,...]
//        (default 127.0.0.1:7478, one partition named "default")

#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/net/tcp.h"
#include "src/obs/snapshot.h"
#include "src/server/blob.h"
#include "src/server/server.h"
#include "src/shard/directory.h"

using namespace tdb;

namespace {
volatile std::sig_atomic_t g_stop = 0;
void OnSignal(int) { g_stop = 1; }

std::vector<std::string> SplitNames(const char* list) {
  std::vector<std::string> names;
  std::string current;
  for (const char* p = list;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!current.empty()) {
        names.push_back(current);
      }
      current.clear();
      if (*p == '\0') {
        break;
      }
    } else {
      current += *p;
    }
  }
  return names;
}
}  // namespace

int main(int argc, char** argv) {
  const char* address = "127.0.0.1:7478";
  std::vector<std::string> partitions = {"default"};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--partitions") == 0 && i + 1 < argc) {
      partitions = SplitNames(argv[++i]);
    } else {
      address = argv[i];
    }
  }
  if (partitions.empty()) {
    std::printf("--partitions needs at least one name\n");
    return 1;
  }

  // Full observability on: remote clients can pull the module breakdown,
  // derived ratios, per-op tails, and the shard.partition.* gauges with
  // `tdb_stats --connect <addr>`.
  obs::EnableAll();

  MemSecretStore secret(Bytes(32, 0xA5));
  MemMonotonicCounter counter;
  MemUntrustedStore disk({.segment_size = 64 * 1024, .num_segments = 2048});
  ChunkStoreOptions options;
  options.validation.mode = ValidationMode::kCounter;
  auto chunks = ChunkStore::Create(
      &disk, TrustedServices{&secret, nullptr, &counter}, options);
  if (!chunks.ok()) {
    std::printf("chunk store: %s\n", chunks.status().ToString().c_str());
    return 1;
  }

  const CryptoParams tenant_params{CipherAlg::kAes128, HashAlg::kSha256,
                                   Bytes(16, 0x11)};
  auto directory = shard::PartitionDirectory::Open(chunks->get(),
                                                   tenant_params);
  if (!directory.ok()) {
    std::printf("directory: %s\n", directory.status().ToString().c_str());
    return 1;
  }
  for (const std::string& name : partitions) {
    if ((*directory)->Lookup(name).ok()) {
      continue;
    }
    auto created = (*directory)->Create(name, tenant_params);
    if (!created.ok()) {
      std::printf("create partition '%s': %s\n", name.c_str(),
                  created.status().ToString().c_str());
      return 1;
    }
  }

  TypeRegistry registry;
  if (!RegisterType<server::BlobValue>(registry).ok()) {
    return 1;
  }

  net::TcpTransport tcp;
  server::TdbServerOptions server_options;
  // Partitions created over the wire (kPartitionCreate) get this keying.
  server_options.new_partition_params = tenant_params;
  server::TdbServer srv((*chunks).get(), directory->get(), &registry,
                        server_options);
  Status started = srv.Start(&tcp, address);
  if (!started.ok()) {
    std::printf("start: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("tdb_server: %s (Ctrl-C to stop)\n", srv.address().c_str());
  for (const shard::PartitionEntry& entry : (*directory)->List()) {
    std::printf("  partition %u '%s'%s%s\n", entry.id, entry.name.c_str(),
                entry.moved ? " moved to " : "",
                entry.moved ? entry.moved_to.c_str() : "");
  }

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  std::printf("\nshutting down...\n");
  srv.Stop();
  server::TdbServer::Stats stats = srv.GetStats();
  std::printf("served %llu sessions, %llu requests (%llu rejected)\n",
              static_cast<unsigned long long>(stats.sessions_opened),
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.sessions_rejected));
  return 0;
}
