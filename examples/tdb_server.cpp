// tdb_server: a TDB service over TCP.
//
// Stands up the full trusted-database stack — in-memory untrusted store,
// trusted secret + monotonic counter, chunk store, one data partition —
// and serves it to networked clients (see tdb_cli.cpp) with group commit
// on. Objects are BlobValue strings; Ctrl-C shuts down gracefully.
//
// Usage: tdb_server [ip:port]          (default 127.0.0.1:7478)

#include <csignal>
#include <cstdio>
#include <thread>

#include "src/net/tcp.h"
#include "src/obs/snapshot.h"
#include "src/server/blob.h"
#include "src/server/server.h"

using namespace tdb;

namespace {
volatile std::sig_atomic_t g_stop = 0;
void OnSignal(int) { g_stop = 1; }
}  // namespace

int main(int argc, char** argv) {
  const char* address = argc > 1 ? argv[1] : "127.0.0.1:7478";

  // Full observability on: remote clients can pull the module breakdown,
  // derived ratios, and per-op tails with `tdb_stats --connect <addr>`.
  obs::EnableAll();

  MemSecretStore secret(Bytes(32, 0xA5));
  MemMonotonicCounter counter;
  MemUntrustedStore disk({.segment_size = 64 * 1024, .num_segments = 2048});
  ChunkStoreOptions options;
  options.validation.mode = ValidationMode::kCounter;
  auto chunks = ChunkStore::Create(
      &disk, TrustedServices{&secret, nullptr, &counter}, options);
  if (!chunks.ok()) {
    std::printf("chunk store: %s\n", chunks.status().ToString().c_str());
    return 1;
  }

  PartitionId partition;
  {
    auto pid = (*chunks)->AllocatePartition();
    ChunkStore::Batch batch;
    batch.WritePartition(*pid, CryptoParams{CipherAlg::kAes128,
                                            HashAlg::kSha256, Bytes(16, 0x11)});
    if (!(*chunks)->Commit(std::move(batch)).ok()) {
      return 1;
    }
    partition = *pid;
  }

  TypeRegistry registry;
  if (!RegisterType<server::BlobValue>(registry).ok()) {
    return 1;
  }

  net::TcpTransport tcp;
  server::TdbServer srv((*chunks).get(), partition, &registry, {});
  Status started = srv.Start(&tcp, address);
  if (!started.ok()) {
    std::printf("start: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("tdb_server: partition %u on %s (Ctrl-C to stop)\n", partition,
              srv.address().c_str());

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  std::printf("\nshutting down...\n");
  srv.Stop();
  server::TdbServer::Stats stats = srv.GetStats();
  std::printf("served %llu sessions, %llu requests (%llu rejected)\n",
              static_cast<unsigned long long>(stats.sessions_opened),
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.sessions_rejected));
  return 0;
}
