// The paper's motivating application (§1, §9.5.1): a digital-goods vendor
// whose trusted program runs on the consumer's machine and keeps contracts,
// accounts, and usage state in TDB. Demonstrates the full stack: collection
// store + functional indexes + transactions over the trusted chunk store.

#include <cstdio>

#include "src/collect/collection_store.h"
#include "src/platform/trusted_store.h"
#include "src/store/untrusted_store.h"

using namespace tdb;

namespace {

// A digital good offered by the vendor.
class Good final : public Pickled {
 public:
  static constexpr uint32_t kTypeTag = 1;
  Good() = default;
  Good(std::string title, uint64_t vendor) : title(std::move(title)), vendor(vendor) {}
  std::string title;
  uint64_t vendor = 0;

  uint32_t type_tag() const override { return kTypeTag; }
  void PickleFields(PickleWriter& w) const override {
    w.WriteString(title);
    w.WriteVarint(vendor);
  }
  static Result<ObjectPtr> UnpickleFields(PickleReader& r) {
    auto good = std::make_shared<Good>();
    good->title = r.ReadString();
    good->vendor = r.ReadVarint();
    return ObjectPtr(good);
  }
};

// A usage contract: pay-per-use with a price, bound to a good.
class Contract final : public Pickled {
 public:
  static constexpr uint32_t kTypeTag = 2;
  Contract() = default;
  Contract(uint64_t good, uint64_t price, std::string kind)
      : good(good), price(price), kind(std::move(kind)) {}
  uint64_t good = 0;
  uint64_t price = 0;
  std::string kind;

  uint32_t type_tag() const override { return kTypeTag; }
  void PickleFields(PickleWriter& w) const override {
    w.WriteVarint(good);
    w.WriteVarint(price);
    w.WriteString(kind);
  }
  static Result<ObjectPtr> UnpickleFields(PickleReader& r) {
    auto contract = std::make_shared<Contract>();
    contract->good = r.ReadVarint();
    contract->price = r.ReadVarint();
    contract->kind = r.ReadString();
    return ObjectPtr(contract);
  }
};

// The consumer's prepaid account — exactly the state a consumer would love
// to roll back after spending it (§1's replay attack).
class Account final : public Pickled {
 public:
  static constexpr uint32_t kTypeTag = 3;
  Account() = default;
  explicit Account(int64_t balance) : balance(balance) {}
  int64_t balance = 0;

  uint32_t type_tag() const override { return kTypeTag; }
  void PickleFields(PickleWriter& w) const override { w.WriteI64(balance); }
  static Result<ObjectPtr> UnpickleFields(PickleReader& r) {
    auto account = std::make_shared<Account>();
    account->balance = r.ReadI64();
    return ObjectPtr(account);
  }
};

}  // namespace

int main() {
  std::printf("== TDB vending demo ==\n\n");
  MemSecretStore secret(Bytes(32, 0xA5));
  MemMonotonicCounter counter;
  MemUntrustedStore disk({.segment_size = 64 * 1024, .num_segments = 1024});
  ChunkStoreOptions options;
  options.validation.mode = ValidationMode::kCounter;
  options.validation.delta_ut = 5;
  auto chunks = ChunkStore::Create(
      &disk, TrustedServices{&secret, nullptr, &counter}, options);
  if (!chunks.ok()) {
    return 1;
  }

  // Schema plumbing: types, key functions, a partition, the object store.
  TypeRegistry types;
  (void)RegisterType<Good>(types);
  (void)RegisterType<Contract>(types);
  (void)RegisterType<Account>(types);
  (void)CollectionStore::RegisterTypes(types);
  KeyFunctionRegistry keys;
  (void)keys.Register("contract.good", [](const Pickled& object) -> Result<Bytes> {
    return EncodeU64Key(dynamic_cast<const Contract&>(object).good);
  });
  (void)keys.Register("contract.price", [](const Pickled& object) -> Result<Bytes> {
    return EncodeU64Key(dynamic_cast<const Contract&>(object).price);
  });

  auto pid = (*chunks)->AllocatePartition();
  {
    ChunkStore::Batch batch;
    batch.WritePartition(*pid, CryptoParams{CipherAlg::kAes128,
                                            HashAlg::kSha256, Bytes(16, 7)});
    (void)(*chunks)->Commit(std::move(batch));
  }
  ObjectStore objects(chunks->get(), *pid, &types);
  ObjectId directory;
  {
    auto txn = objects.Begin();
    directory = *CollectionStore::Format(*txn);
    (void)txn->Commit();
  }
  CollectionStore collections(&objects, &keys, directory);

  // The vendor publishes a good and binds three alternative contracts.
  ObjectId catalog, account_id, good_id;
  {
    auto txn = objects.Begin();
    catalog = *collections.CreateCollection(
        *txn, "contracts",
        {{"by_good", "contract.good", false},
         {"by_price", "contract.price", true}});
    good_id = *txn->Insert(std::make_shared<Good>("Goldberg Variations", 1));
    uint64_t g = good_id.Pack();
    (void)collections.Insert(*txn, catalog,
                             std::make_shared<Contract>(g, 5, "pay-per-play"));
    (void)collections.Insert(*txn, catalog,
                             std::make_shared<Contract>(g, 40, "own-forever"));
    (void)collections.Insert(*txn, catalog,
                             std::make_shared<Contract>(g, 0, "free-trial"));
    account_id = *txn->Insert(std::make_shared<Account>(100));
    if (!txn->Commit().ok()) {
      return 1;
    }
  }
  std::printf("vendor bound 3 contracts to \"Goldberg Variations\"\n");

  // The consumer browses contracts by price (a range query over a sorted
  // index on *decrypted* data — impossible in the layered design, §1.2).
  {
    auto txn = objects.Begin();
    auto affordable = collections.LookupRange(
        *txn, catalog, "by_price", EncodeU64Key(0), EncodeU64Key(10));
    std::printf("contracts costing <= 10:\n");
    for (ObjectId id : *affordable) {
      auto contract =
          std::dynamic_pointer_cast<const Contract>(*txn->Get(id));
      std::printf("  %-14s price=%llu\n", contract->kind.c_str(),
                  (unsigned long long)contract->price);
    }
  }

  // The consumer releases the good under pay-per-play: debit 5 atomically.
  {
    auto txn = objects.Begin();
    auto account =
        std::dynamic_pointer_cast<const Account>(*txn->GetForUpdate(account_id));
    (void)txn->Put(account_id, std::make_shared<Account>(account->balance - 5));
    if (!txn->Commit().ok()) {
      return 1;
    }
  }
  {
    auto txn = objects.Begin();
    auto account = std::dynamic_pointer_cast<const Account>(*txn->Get(account_id));
    std::printf("after one pay-per-play release, balance = %lld\n",
                static_cast<long long>(account->balance));
  }

  // The replay attack: snapshot the whole untrusted store *before* spending,
  // spend, then restore the old bytes to claw the payment back.
  std::printf("\nconsumer snapshots the raw database, spends 5 more...\n");
  std::vector<Bytes> stolen_segments;
  for (uint32_t s = 0; s < disk.num_segments(); ++s) {
    stolen_segments.push_back(disk.DumpSegment(s));
  }
  Bytes stolen_superblock = disk.DumpSuperblock();
  {
    auto txn = objects.Begin();
    auto account =
        std::dynamic_pointer_cast<const Account>(*txn->GetForUpdate(account_id));
    (void)txn->Put(account_id, std::make_shared<Account>(account->balance - 5));
    (void)txn->Commit();
  }
  chunks->reset();  // close the trusted program

  std::printf("...and replays the saved copy over the untrusted store\n");
  for (uint32_t s = 0; s < disk.num_segments(); ++s) {
    disk.RestoreSegment(s, stolen_segments[s]);
  }
  disk.RestoreSuperblock(stolen_superblock);

  auto replayed = ChunkStore::Open(
      &disk, TrustedServices{&secret, nullptr, &counter}, options);
  if (replayed.ok()) {
    std::printf("!! replay went undetected\n");
    return 1;
  }
  std::printf("trusted program refuses to start: %s\n",
              replayed.status().ToString().c_str());
  std::printf("\nthe monotonic counter outlives the replayed bytes, so the "
              "rollback is detected (1.1)\n");
  return 0;
}
