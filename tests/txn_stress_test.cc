// Multi-threaded transaction stress: concurrent transactions with
// conflicting read/write sets, lock upgrades, and timeout-broken deadlocks,
// asserting serializability (money conservation, no lost updates) with
// group commit both off and on. Carries the tsan label so the thread
// sanitizer build exercises the lock manager, the group-commit queue, and
// the object cache under real contention.

#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <thread>
#include <vector>

#include "src/obs/metrics.h"
#include "src/object/object_store.h"
#include "src/platform/trusted_store.h"
#include "src/store/untrusted_store.h"

namespace tdb {
namespace {

class Account final : public Pickled {
 public:
  static constexpr uint32_t kTypeTag = 100;

  Account() = default;
  explicit Account(int64_t balance) : balance(balance) {}

  int64_t balance = 0;

  uint32_t type_tag() const override { return kTypeTag; }
  void PickleFields(PickleWriter& w) const override { w.WriteI64(balance); }
  static Result<ObjectPtr> UnpickleFields(PickleReader& r) {
    auto account = std::make_shared<Account>();
    account->balance = r.ReadI64();
    return ObjectPtr(account);
  }
};

int64_t Balance(const ObjectPtr& object) {
  return dynamic_cast<const Account&>(*object).balance;
}

// Parameterized on group commit so both commit paths face the same
// contention.
class TxnStressTest : public ::testing::TestWithParam<bool> {
 protected:
  TxnStressTest()
      : store_({.segment_size = 16384, .num_segments = 1024}),
        secret_(Bytes(32, 0xA5)) {
    chunk_options_.validation.mode = ValidationMode::kCounter;
    auto cs = ChunkStore::Create(
        &store_, TrustedServices{&secret_, nullptr, &counter_}, chunk_options_);
    EXPECT_TRUE(cs.ok());
    chunks_ = std::move(*cs);
    EXPECT_TRUE(RegisterType<Account>(registry_).ok());
    auto pid = chunks_->AllocatePartition();
    ChunkStore::Batch batch;
    batch.WritePartition(
        *pid, CryptoParams{CipherAlg::kAes128, HashAlg::kSha256, Bytes(16, 1)});
    EXPECT_TRUE(chunks_->Commit(std::move(batch)).ok());
    ObjectStoreOptions options;
    options.lock_timeout = std::chrono::milliseconds(50);
    options.group_commit = GetParam();
    objects_ =
        std::make_unique<ObjectStore>(chunks_.get(), *pid, &registry_, options);
  }

  std::vector<ObjectId> SeedAccounts(int n, int64_t balance) {
    auto setup = objects_->Begin();
    std::vector<ObjectId> ids;
    ids.reserve(n);
    for (int i = 0; i < n; ++i) {
      auto id = setup->Insert(std::make_shared<Account>(balance));
      EXPECT_TRUE(id.ok());
      ids.push_back(*id);
    }
    EXPECT_TRUE(setup->Commit().ok());
    return ids;
  }

  MemUntrustedStore store_;
  MemSecretStore secret_;
  MemMonotonicCounter counter_;
  ChunkStoreOptions chunk_options_;
  TypeRegistry registry_;
  std::unique_ptr<ChunkStore> chunks_;
  std::unique_ptr<ObjectStore> objects_;
};

// Threads transfer money between overlapping pairs of accounts; every
// transaction either commits in full or leaves no trace, so the total is
// conserved no matter how the timeouts interleave.
TEST_P(TxnStressTest, ConcurrentTransfersConserveMoney) {
  constexpr int kAccounts = 8;
  constexpr int kThreads = 8;
  constexpr int kTransfersPerThread = 40;
  constexpr int64_t kSeedBalance = 1000;
  std::vector<ObjectId> ids = SeedAccounts(kAccounts, kSeedBalance);

  std::atomic<int> committed{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937 rng(t * 7919 + 1);
      std::uniform_int_distribution<int> pick(0, kAccounts - 1);
      for (int i = 0; i < kTransfersPerThread; ++i) {
        int from = pick(rng);
        int to = pick(rng);
        if (from == to) {
          continue;
        }
        // Deadlocks between opposite-order transfers are broken by lock
        // timeouts; a timed-out transaction aborts and the transfer is
        // simply dropped (retry would also be correct — conservation is
        // what we assert).
        auto txn = objects_->Begin();
        auto src = txn->GetForUpdate(ids[from]);
        if (!src.ok()) {
          txn->Abort();
          continue;
        }
        auto dst = txn->GetForUpdate(ids[to]);
        if (!dst.ok()) {
          txn->Abort();
          continue;
        }
        if (!txn->Put(ids[from],
                      std::make_shared<Account>(Balance(*src) - 1))
                 .ok() ||
            !txn->Put(ids[to], std::make_shared<Account>(Balance(*dst) + 1))
                 .ok()) {
          txn->Abort();
          continue;
        }
        if (txn->Commit().ok()) {
          committed.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_GT(committed.load(), 0) << "every single transfer timed out";

  auto check = objects_->Begin();
  int64_t total = 0;
  for (const ObjectId& id : ids) {
    auto account = check->Get(id);
    ASSERT_TRUE(account.ok());
    total += Balance(*account);
  }
  EXPECT_EQ(total, kAccounts * kSeedBalance);
}

// All threads increment the same counter through a shared-then-exclusive
// upgrade (Get, then Put). Upgrades deadlock when two readers both try to
// upgrade; timeouts break the deadlock and the loser retries, so no
// increment may ever be lost.
TEST_P(TxnStressTest, UpgradeContentionLosesNoUpdates) {
  constexpr int kThreads = 8;
  constexpr int kIncrementsPerThread = 25;
  std::vector<ObjectId> ids = SeedAccounts(1, 0);
  ObjectId id = ids[0];

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrementsPerThread; ++i) {
        // Retry until this increment commits.
        while (true) {
          auto txn = objects_->Begin();
          auto current = txn->Get(id);  // shared lock first — forces upgrade
          if (!current.ok()) {
            txn->Abort();
            continue;
          }
          if (!txn->Put(id,
                        std::make_shared<Account>(Balance(*current) + 1))
                   .ok()) {
            txn->Abort();
            continue;
          }
          if (txn->Commit().ok()) {
            break;
          }
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }

  auto check = objects_->Begin();
  auto account = check->Get(id);
  ASSERT_TRUE(account.ok());
  EXPECT_EQ(Balance(*account), kThreads * kIncrementsPerThread);
}

// The lock manager reports its traffic: acquires count both grants and
// waits, the contended/timeout counters only fire under conflict, and the
// wait-time histogram only collects samples from waiters.
TEST_P(TxnStressTest, LockMetricsReportContention) {
  obs::MetricsRegistry::Instance().Reset();
  obs::MetricsRegistry::Instance().Enable();

  std::vector<ObjectId> ids = SeedAccounts(1, 0);
  ObjectId id = ids[0];

  // Uncontended traffic first: acquires move, timeouts don't.
  {
    auto txn = objects_->Begin();
    ASSERT_TRUE(txn->Get(id).ok());
    txn->Abort();
  }
  auto& metrics = obs::MetricsRegistry::Instance();
  EXPECT_GT(metrics.GetCounter("lock.acquires"), 0u);
  EXPECT_EQ(metrics.GetCounter("lock.timeouts"), 0u);

  // A guaranteed conflict: the holder keeps the exclusive lock until the
  // contender has timed out.
  auto holder = objects_->Begin();
  ASSERT_TRUE(holder->GetForUpdate(id).ok());
  auto contender = objects_->Begin();
  EXPECT_EQ(contender->GetForUpdate(id).status().code(), StatusCode::kTimeout);
  holder->Abort();
  contender->Abort();

  EXPECT_GE(metrics.GetCounter("lock.contended"), 1u);
  EXPECT_GE(metrics.GetCounter("lock.timeouts"), 1u);
  bool saw_wait_histogram = false;
  for (const auto& h : metrics.Histograms()) {
    if (h.name == "lock.wait_us") {
      saw_wait_histogram = true;
      EXPECT_GE(h.count, 1u);
      // The contender waited out its full 50ms lock timeout.
      EXPECT_GE(h.max, 1000.0);
    }
  }
  EXPECT_TRUE(saw_wait_histogram);
  obs::MetricsRegistry::Instance().Disable();
}

INSTANTIATE_TEST_SUITE_P(GroupCommit, TxnStressTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "On" : "Off";
                         });

}  // namespace
}  // namespace tdb
