// Tests for the sharded service: per-partition engines over one chunk
// store, the durable partition directory, cross-partition isolation at the
// wire boundary, concurrent multi-partition traffic through the two-level
// group commit, and live partition hand-off — including crash injection at
// every hand-off stage (source crash before cut-over, torn and tampered
// streams, crash mid-cut-over, crash after the move persisted) with both
// sides recoverable and no false tamper alarms.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/net/loopback.h"
#include "src/platform/trusted_store.h"
#include "src/server/blob.h"
#include "src/server/client.h"
#include "src/server/handoff.h"
#include "src/server/server.h"
#include "src/shard/directory.h"
#include "src/shard/partition_engine.h"
#include "src/store/untrusted_store.h"

namespace tdb::server {
namespace {

const BlobValue& AsBlob(const ObjectPtr& object) {
  return dynamic_cast<const BlobValue&>(*object);
}

CryptoParams TenantParams() {
  return CryptoParams{CipherAlg::kAes128, HashAlg::kSha256, Bytes(16, 1)};
}

// One server machine: its own untrusted segments, trusted counter, chunk
// store, directory and server — crashable and reopenable. Every node uses
// the same secret bytes, the hand-off prerequisite (backup streams are
// encrypted with the system suite both sides must share).
class Node {
 public:
  Node()
      : store_({.segment_size = 8192,
                .num_segments = 512,
                .flush_latency = std::chrono::microseconds(100)}),
        secret_(Bytes(32, 0xA5)) {
    chunk_options_.validation.mode = ValidationMode::kCounter;
    EXPECT_TRUE(RegisterType<BlobValue>(registry_).ok());
  }

  void Open() {
    auto cs = ChunkStore::Create(
        &store_, TrustedServices{&secret_, nullptr, &counter_},
        chunk_options_);
    ASSERT_TRUE(cs.ok()) << cs.status().ToString();
    chunks_ = std::move(*cs);
    OpenDirectory();
  }

  // Models a crash: every in-memory structure (server sessions, engine
  // states, staged hand-off streams, snapshot chains) is lost; the
  // untrusted segments and the trusted counter survive, as on a real
  // machine.
  void Crash() {
    server_.reset();
    directory_.reset();
    chunks_.reset();
  }

  void Reopen() {
    auto cs = ChunkStore::Open(
        &store_, TrustedServices{&secret_, nullptr, &counter_},
        chunk_options_);
    ASSERT_TRUE(cs.ok()) << cs.status().ToString();
    chunks_ = std::move(*cs);
    OpenDirectory();
  }

  void Start(net::Transport* transport, const std::string& address,
             TdbServerOptions options = {}) {
    options.new_partition_params = TenantParams();
    server_ = std::make_unique<TdbServer>(chunks_.get(), directory_.get(),
                                          &registry_, options);
    ASSERT_TRUE(server_->Start(transport, address).ok());
  }

  std::unique_ptr<TdbClient> NewClient(net::Transport* transport) {
    auto client = std::make_unique<TdbClient>(&registry_);
    EXPECT_TRUE(client->Connect(transport, server_->address()).ok());
    return client;
  }

  ChunkStore* chunks() { return chunks_.get(); }
  shard::PartitionDirectory* directory() { return directory_.get(); }
  TdbServer* server() { return server_.get(); }
  const TypeRegistry* registry() const { return &registry_; }

 private:
  void OpenDirectory() {
    auto dir = shard::PartitionDirectory::Open(chunks_.get(), TenantParams());
    ASSERT_TRUE(dir.ok()) << dir.status().ToString();
    directory_ = std::move(*dir);
  }

  MemUntrustedStore store_;
  MemSecretStore secret_;
  MemMonotonicCounter counter_;
  ChunkStoreOptions chunk_options_;
  TypeRegistry registry_;
  std::unique_ptr<ChunkStore> chunks_;
  std::unique_ptr<shard::PartitionDirectory> directory_;
  std::unique_ptr<TdbServer> server_;
};

class ShardTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_.Open();
    b_.Open();
  }

  void StartBoth(TdbServerOptions options = {}) {
    a_.Start(&transport_, "node-a", options);
    b_.Start(&transport_, "node-b", options);
  }

  net::LoopbackTransport transport_;
  Node a_;
  Node b_;
};

// --- Partition directory ----------------------------------------------------

TEST_F(ShardTest, DirectoryCatalogsAndSurvivesReopen) {
  auto alpha = a_.directory()->Create("alpha", TenantParams());
  ASSERT_TRUE(alpha.ok());
  auto beta = a_.directory()->Create("beta", TenantParams());
  ASSERT_TRUE(beta.ok());
  EXPECT_NE(alpha->id, beta->id);
  // Names are unique.
  EXPECT_EQ(a_.directory()->Create("alpha", TenantParams()).status().code(),
            StatusCode::kAlreadyExists);
  ASSERT_TRUE(a_.directory()->MarkMoved(beta->id, "node-b").ok());

  a_.Crash();
  a_.Reopen();

  // The catalog — names, ids, ownership, epochs — came back from the store.
  auto entries = a_.directory()->List();
  ASSERT_EQ(entries.size(), 2u);
  auto found = a_.directory()->Lookup("alpha");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found->id, alpha->id);
  EXPECT_FALSE(found->moved);
  found = a_.directory()->Lookup("beta");
  ASSERT_TRUE(found.ok());
  EXPECT_TRUE(found->moved);
  EXPECT_EQ(found->moved_to, "node-b");
  EXPECT_GT(found->epoch, beta->epoch);

  // Drop removes the entry and the partition's chunks in one commit.
  ASSERT_TRUE(a_.directory()->Drop("beta").ok());
  EXPECT_FALSE(a_.chunks()->PartitionExists(beta->id));
  EXPECT_EQ(a_.directory()->Drop("beta").code(), StatusCode::kNotFound);
}

TEST_F(ShardTest, PartitionCrudOverTheWire) {
  StartBoth();
  auto client = a_.NewClient(&transport_);

  auto accounts = client->PartitionCreate("accounts");
  ASSERT_TRUE(accounts.ok());
  auto orders = client->PartitionCreate("orders");
  ASSERT_TRUE(orders.ok());
  EXPECT_EQ(client->PartitionCreate("accounts").status().code(),
            StatusCode::kAlreadyExists);

  auto list = client->PartitionList();
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list->size(), 2u);
  auto looked = client->PartitionLookup("orders");
  ASSERT_TRUE(looked.ok());
  EXPECT_EQ(looked->id, *orders);

  // A freshly created partition serves transactions right away.
  ASSERT_TRUE(client->Begin(*accounts).ok());
  auto id = client->Insert(BlobValue("balance=10"));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(client->Commit().ok());

  ASSERT_TRUE(client->PartitionDrop("orders").ok());
  EXPECT_EQ(client->PartitionLookup("orders").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(client->Begin(*orders).code(), StatusCode::kNotFound);
}

// --- Cross-partition isolation at the wire boundary -------------------------

TEST_F(ShardTest, CrossPartitionIsolationOverTheWire) {
  StartBoth();
  auto admin = a_.NewClient(&transport_);
  auto accounts = admin->PartitionCreate("accounts");
  ASSERT_TRUE(accounts.ok());
  auto orders = admin->PartitionCreate("orders");
  ASSERT_TRUE(orders.ok());

  // With several partitions served there is no default route: begin must
  // name one, and unknown ids are refused.
  EXPECT_EQ(admin->Begin().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(admin->Begin(999).code(), StatusCode::kNotFound);

  auto alice = a_.NewClient(&transport_);
  ASSERT_TRUE(alice->Begin(*accounts).ok());
  auto account_row = alice->Insert(BlobValue("alice: 100"));
  ASSERT_TRUE(account_row.ok());
  ASSERT_TRUE(alice->Commit().ok());
  EXPECT_EQ(account_row->partition, *accounts);

  // A session begun on `orders` cannot address `accounts` rows — reads and
  // writes with a foreign id are rejected before they reach any store.
  auto bob = a_.NewClient(&transport_);
  ASSERT_TRUE(bob->Begin(*orders).ok());
  EXPECT_EQ(bob->Get(*account_row).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(bob->Put(*account_row, BlobValue("alice: 0")).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(bob->Delete(*account_row).code(), StatusCode::kInvalidArgument);
  auto order_row = bob->Insert(BlobValue("order #1"));
  ASSERT_TRUE(order_row.ok());
  EXPECT_EQ(order_row->partition, *orders);
  ASSERT_TRUE(bob->Commit().ok());

  // The foreign write attempts above left `accounts` untouched.
  ASSERT_TRUE(alice->BeginReadOnly(*accounts).ok());
  auto row = alice->Get(*account_row);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(AsBlob(*row).value, "alice: 100");
  ASSERT_TRUE(alice->Abort().ok());
}

// --- Concurrent multi-partition traffic (two-level group commit) ------------

TEST_F(ShardTest, ConcurrentTrafficAcrossFourPartitions) {
  StartBoth();
  auto admin = a_.NewClient(&transport_);
  constexpr int kPartitions = 4;
  constexpr int kClientsPerPartition = 2;
  constexpr int kTxnsPerClient = 12;
  std::vector<PartitionId> pids;
  for (int p = 0; p < kPartitions; ++p) {
    auto pid = admin->PartitionCreate("tenant-" + std::to_string(p));
    ASSERT_TRUE(pid.ok());
    pids.push_back(*pid);
  }

  // Every commit funnels through the per-partition leaders into the shared
  // store-level combiner; all must ack, and every acked row must land in
  // the partition its session was begun on.
  std::vector<std::vector<ObjectId>> acked(kPartitions * kClientsPerPartition);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kPartitions; ++p) {
    for (int c = 0; c < kClientsPerPartition; ++c) {
      const int slot = p * kClientsPerPartition + c;
      threads.emplace_back([&, p, slot] {
        auto client = a_.NewClient(&transport_);
        for (int t = 0; t < kTxnsPerClient; ++t) {
          if (!client->Begin(pids[p]).ok()) {
            failures.fetch_add(1);
            continue;
          }
          auto id = client->Insert(BlobValue("p" + std::to_string(p) + " t" +
                                             std::to_string(t)));
          if (!id.ok() || !client->Commit().ok()) {
            failures.fetch_add(1);
            continue;
          }
          acked[slot].push_back(*id);
        }
      });
    }
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(failures.load(), 0);

  auto reader = a_.NewClient(&transport_);
  for (int p = 0; p < kPartitions; ++p) {
    ASSERT_TRUE(reader->BeginReadOnly(pids[p]).ok());
    for (int c = 0; c < kClientsPerPartition; ++c) {
      for (ObjectId id : acked[p * kClientsPerPartition + c]) {
        EXPECT_EQ(id.partition, pids[p]);
        EXPECT_TRUE(reader->Get(id).ok()) << id.ToString();
      }
    }
    ASSERT_TRUE(reader->Abort().ok());
  }
}

// --- Live hand-off -----------------------------------------------------------

TEST_F(ShardTest, HandoffMovesDataAndRedirectsClients) {
  StartBoth();
  auto source = a_.NewClient(&transport_);
  auto target = b_.NewClient(&transport_);
  auto pid = source->PartitionCreate("accounts");
  ASSERT_TRUE(pid.ok());

  std::vector<std::pair<ObjectId, std::string>> rows;
  ASSERT_TRUE(source->Begin(*pid).ok());
  for (int i = 0; i < 3; ++i) {
    std::string value = "row " + std::to_string(i);
    auto id = source->Insert(BlobValue(value));
    ASSERT_TRUE(id.ok());
    rows.emplace_back(*id, value);
  }
  ASSERT_TRUE(source->Commit().ok());

  ASSERT_TRUE(
      MovePartition(*source, *target, "accounts", b_.server()->address())
          .ok());

  // The source now redirects — a retryable kMoved carrying the new address.
  Status moved = source->Begin(*pid);
  EXPECT_EQ(moved.code(), StatusCode::kMoved);
  EXPECT_EQ(moved.message(), b_.server()->address());
  auto entry = source->PartitionLookup("accounts");
  ASSERT_TRUE(entry.ok());
  EXPECT_TRUE(entry->moved);

  // Every row is on the target under its original id, and the partition
  // takes new writes there.
  ASSERT_TRUE(target->Begin(*pid).ok());
  for (const auto& [id, value] : rows) {
    auto row = target->Get(id);
    ASSERT_TRUE(row.ok()) << id.ToString();
    EXPECT_EQ(AsBlob(*row).value, value);
  }
  ASSERT_TRUE(target->Insert(BlobValue("post-move row")).ok());
  ASSERT_TRUE(target->Commit().ok());
}

TEST_F(ShardTest, HandoffUnderLiveTrafficLosesNoAckedCommit) {
  StartBoth();
  auto admin = a_.NewClient(&transport_);
  auto pid = admin->PartitionCreate("accounts");
  ASSERT_TRUE(pid.ok());

  // Writers hammer the partition while it moves. Each follows the client
  // contract: on kMoved, retry against the target. Every acknowledged
  // commit is recorded and must be readable after the move.
  constexpr int kWriters = 3;
  std::atomic<bool> move_done{false};
  std::atomic<int> redirects{0};
  std::atomic<int> stuck{0};
  std::vector<std::vector<std::pair<ObjectId, std::string>>> acked(kWriters);
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      auto on_source = a_.NewClient(&transport_);
      auto on_target = b_.NewClient(&transport_);
      bool use_target = false;
      int written = 0;
      int attempts = 0;
      // Keep writing until the move finished AND at least one write landed
      // after it — so every writer provably crosses the redirect.
      int writes_after_move = 0;
      while (writes_after_move < 1 || written < 5) {
        if (++attempts > 3000) {
          stuck.fetch_add(1);
          return;
        }
        const bool move_was_done = move_done.load();
        TdbClient* client = use_target ? on_target.get() : on_source.get();
        Status begun = client->Begin(*pid);
        if (begun.code() == StatusCode::kMoved) {
          // Redirect (or mid-drain retry): switch to the target and retry.
          if (!use_target) {
            use_target = true;
            redirects.fetch_add(1);
          }
          continue;
        }
        if (!begun.ok()) {
          // e.g. the target has not activated the partition yet.
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          continue;
        }
        std::string value =
            "w" + std::to_string(w) + " n" + std::to_string(written);
        auto id = client->Insert(BlobValue(value));
        if (!id.ok() || !client->Commit().ok()) {
          continue;  // not acknowledged: no durability claim to check
        }
        acked[w].emplace_back(*id, value);
        ++written;
        if (move_was_done) {
          ++writes_after_move;
        }
      }
    });
  }

  auto source = a_.NewClient(&transport_);
  auto target = b_.NewClient(&transport_);
  Status moved = MovePartition(*source, *target, "accounts",
                               b_.server()->address());
  move_done.store(true);
  for (std::thread& t : writers) {
    t.join();
  }
  ASSERT_TRUE(moved.ok()) << moved.ToString();
  EXPECT_EQ(stuck.load(), 0);
  // Every writer ended up on the target (their post-move write cannot have
  // landed anywhere else).
  EXPECT_EQ(redirects.load(), kWriters);

  // Zero acked-commit loss: every acknowledged row reads back on the target.
  auto reader = b_.NewClient(&transport_);
  size_t total = 0;
  ASSERT_TRUE(reader->BeginReadOnly(*pid).ok());
  for (const auto& rows : acked) {
    for (const auto& [id, value] : rows) {
      auto row = reader->Get(id);
      ASSERT_TRUE(row.ok()) << id.ToString();
      EXPECT_EQ(AsBlob(*row).value, value);
      ++total;
    }
  }
  ASSERT_TRUE(reader->Abort().ok());
  EXPECT_GE(total, static_cast<size_t>(kWriters * 5));
}

// --- Hand-off crash injection -----------------------------------------------

// Shared setup for the crash-stage tests: partition "accounts" on node A
// with one committed row; returns its id.
ObjectId SeedAccounts(TdbClient& client, PartitionId pid,
                      const std::string& value) {
  EXPECT_TRUE(client.Begin(pid).ok());
  auto id = client.Insert(BlobValue(value));
  EXPECT_TRUE(id.ok());
  EXPECT_TRUE(client.Commit().ok());
  return *id;
}

TEST_F(ShardTest, SourceCrashBeforeCutoverIsRecoverableAndRetryable) {
  StartBoth();
  auto source = a_.NewClient(&transport_);
  auto target = b_.NewClient(&transport_);
  auto pid = source->PartitionCreate("accounts");
  ASSERT_TRUE(pid.ok());
  ObjectId row = SeedAccounts(*source, *pid, "survives");

  // The hand-off got as far as shipping the full copy...
  auto full = source->HandoffExport(*pid, 0);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(target->HandoffImport(*pid, 0, full->stream).ok());

  // ...then the source died. Ownership never changed (the directory's
  // serving state is the durable truth), so after recovery it serves as if
  // the hand-off never happened.
  a_.Crash();
  a_.Reopen();
  a_.Start(&transport_, "node-a");
  auto recovered = a_.NewClient(&transport_);
  ASSERT_TRUE(recovered->Begin(*pid).ok());
  auto read = recovered->Get(row);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(AsBlob(*read).value, "survives");
  ASSERT_TRUE(recovered->Abort().ok());

  // The retry restarts from a fresh full export; the target's stale staged
  // stream is reset by it (a full stream restarts the staging buffer).
  ASSERT_TRUE(
      MovePartition(*recovered, *target, "accounts", b_.server()->address())
          .ok());
  ASSERT_TRUE(target->BeginReadOnly(*pid).ok());
  EXPECT_TRUE(target->Get(row).ok());
  ASSERT_TRUE(target->Abort().ok());
  EXPECT_EQ(recovered->Begin(*pid).code(), StatusCode::kMoved);
}

TEST_F(ShardTest, TornStreamFailsActivationAtomicallyWithoutTamperAlarm) {
  StartBoth();
  auto source = a_.NewClient(&transport_);
  auto target = b_.NewClient(&transport_);
  auto pid = source->PartitionCreate("accounts");
  ASSERT_TRUE(pid.ok());
  ObjectId row = SeedAccounts(*source, *pid, "torn transfer");

  auto full = source->HandoffExport(*pid, 0);
  ASSERT_TRUE(full.ok());

  // The stream tears in transit: the target stages only a prefix. Activate
  // must fail atomically — and as corruption, not a tamper alarm: a torn
  // copy is an operational fault, not evidence of an attack.
  Bytes torn(full->stream.begin(),
             full->stream.begin() + full->stream.size() / 2);
  ASSERT_TRUE(target->HandoffImport(*pid, 0, torn).ok());
  Status activated = target->HandoffActivate(*pid, "accounts");
  ASSERT_FALSE(activated.ok());
  EXPECT_EQ(activated.code(), StatusCode::kCorruption);
  EXPECT_EQ(target->Begin(*pid).code(), StatusCode::kNotFound);

  // A tampered stream (bit flipped mid-payload) IS a tamper alarm — the
  // true-positive case — and is equally atomic.
  Bytes flipped = full->stream;
  flipped[flipped.size() / 2] ^= 0x40;
  ASSERT_TRUE(target->HandoffImport(*pid, 0, flipped).ok());
  activated = target->HandoffActivate(*pid, "accounts");
  ASSERT_FALSE(activated.ok());
  EXPECT_EQ(activated.code(), StatusCode::kTamperDetected);
  EXPECT_EQ(target->Begin(*pid).code(), StatusCode::kNotFound);

  // The source never stopped serving; the intact retry completes the move.
  ASSERT_TRUE(source->Begin(*pid).ok());
  ASSERT_TRUE(source->Abort().ok());
  ASSERT_TRUE(
      MovePartition(*source, *target, "accounts", b_.server()->address())
          .ok());
  ASSERT_TRUE(target->BeginReadOnly(*pid).ok());
  auto read = target->Get(row);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(AsBlob(*read).value, "torn transfer");
  ASSERT_TRUE(target->Abort().ok());
}

TEST_F(ShardTest, SourceCrashDuringCutoverRollsBackToServing) {
  StartBoth();
  auto source = a_.NewClient(&transport_);
  auto target = b_.NewClient(&transport_);
  auto pid = source->PartitionCreate("accounts");
  ASSERT_TRUE(pid.ok());
  ObjectId row = SeedAccounts(*source, *pid, "mid-cutover");

  auto full = source->HandoffExport(*pid, 0);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(target->HandoffImport(*pid, 0, full->stream).ok());

  // Cut-over succeeded — the source is draining and refusing new
  // transactions — but the coordinator (and the source) die before the
  // finish step persisted anything.
  auto final_delta =
      source->HandoffCutover(*pid, b_.server()->address(), full->snapshot);
  ASSERT_TRUE(final_delta.ok());
  EXPECT_EQ(source->Begin(*pid).code(), StatusCode::kMoved);

  a_.Crash();
  a_.Reopen();
  a_.Start(&transport_, "node-a");

  // Draining was transient in-memory state: the recovered source serves
  // again, with every acknowledged commit intact. No acked commit can have
  // been lost in the window — a draining partition admits no writers.
  auto recovered = a_.NewClient(&transport_);
  ASSERT_TRUE(recovered->Begin(*pid).ok());
  auto read = recovered->Get(row);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(AsBlob(*read).value, "mid-cutover");
  ASSERT_TRUE(recovered->Commit().ok());

  // The target never activated its staged chain; the retry ships a fresh
  // full copy and completes.
  ASSERT_TRUE(
      MovePartition(*recovered, *target, "accounts", b_.server()->address())
          .ok());
  ASSERT_TRUE(target->BeginReadOnly(*pid).ok());
  EXPECT_TRUE(target->Get(row).ok());
  ASSERT_TRUE(target->Abort().ok());
}

TEST_F(ShardTest, AbortAfterCutoverResumesServingWithoutLoss) {
  StartBoth();
  auto source = a_.NewClient(&transport_);
  auto target = b_.NewClient(&transport_);
  auto pid = source->PartitionCreate("accounts");
  ASSERT_TRUE(pid.ok());
  ObjectId row = SeedAccounts(*source, *pid, "aborted move");

  auto full = source->HandoffExport(*pid, 0);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(target->HandoffImport(*pid, 0, full->stream).ok());
  auto final_delta =
      source->HandoffCutover(*pid, b_.server()->address(), full->snapshot);
  ASSERT_TRUE(final_delta.ok());
  EXPECT_EQ(source->Begin(*pid).code(), StatusCode::kMoved);

  // The coordinator decides to abort (say, the target is unhealthy): an
  // empty-target finish reclaims ownership without a restart.
  ASSERT_TRUE(source->HandoffFinish(*pid, "").ok());
  ASSERT_TRUE(source->Begin(*pid).ok());
  EXPECT_TRUE(source->Get(row).ok());
  ASSERT_TRUE(source->Insert(BlobValue("post-abort write")).ok());
  ASSERT_TRUE(source->Commit().ok());
}

TEST_F(ShardTest, FinishedMoveSurvivesSourceRestart) {
  StartBoth();
  auto source = a_.NewClient(&transport_);
  auto target = b_.NewClient(&transport_);
  auto pid = source->PartitionCreate("accounts");
  ASSERT_TRUE(pid.ok());
  ObjectId row = SeedAccounts(*source, *pid, "moved for good");

  ASSERT_TRUE(
      MovePartition(*source, *target, "accounts", b_.server()->address())
          .ok());

  // The moved state is durable on the source: after a crash it still
  // redirects rather than serving a stale copy (split-brain prevention) —
  // though the data is retained until an operator drops it.
  a_.Crash();
  a_.Reopen();
  a_.Start(&transport_, "node-a");
  auto recovered = a_.NewClient(&transport_);
  Status begun = recovered->Begin(*pid);
  EXPECT_EQ(begun.code(), StatusCode::kMoved);
  EXPECT_EQ(begun.message(), b_.server()->address());
  EXPECT_TRUE(a_.chunks()->PartitionExists(*pid));

  ASSERT_TRUE(target->BeginReadOnly(*pid).ok());
  auto read = target->Get(row);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(AsBlob(*read).value, "moved for good");
  ASSERT_TRUE(target->Abort().ok());
}

// --- Engine state machine (unit level) ---------------------------------------

TEST_F(ShardTest, EngineAdmissionFollowsTheHandoffStateMachine) {
  auto entry = a_.directory()->Create("accounts", TenantParams());
  ASSERT_TRUE(entry.ok());
  shard::EngineRegistry registry(a_.chunks(), a_.registry());
  auto engine = registry.Add(entry->id);
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ(registry.Add(entry->id).status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(registry.Add(999).status().code(), StatusCode::kNotFound);

  // Serving: transactions are admitted and counted until finished.
  auto txn = (*engine)->Begin();
  ASSERT_TRUE(txn.ok());
  EXPECT_EQ((*engine)->active_txns(), 1u);
  EXPECT_FALSE((*engine)->WaitDrained(std::chrono::milliseconds(10)));

  // Draining: no new admissions, but the in-flight one runs to completion
  // and its finish is what drains the engine.
  ASSERT_TRUE((*engine)->StartDraining("node-b").ok());
  EXPECT_EQ((*engine)->Begin().status().code(), StatusCode::kMoved);
  EXPECT_EQ((*engine)->BeginReadOnly().status().code(), StatusCode::kMoved);
  (*txn)->Abort();
  txn->reset();
  (*engine)->TxnFinished();
  EXPECT_TRUE((*engine)->WaitDrained(std::chrono::milliseconds(10)));

  // Rollback path: resume serving clears the redirect.
  ASSERT_TRUE((*engine)->ResumeServing().ok());
  auto again = (*engine)->Begin();
  ASSERT_TRUE(again.ok());
  (*again)->Abort();
  again->reset();
  (*engine)->TxnFinished();

  // Moved is terminal: admissions carry the target address and the state
  // cannot be resumed.
  ASSERT_TRUE((*engine)->StartDraining("node-b").ok());
  ASSERT_TRUE((*engine)->MarkMoved("node-b").ok());
  Status refused = (*engine)->Begin().status();
  EXPECT_EQ(refused.code(), StatusCode::kMoved);
  EXPECT_EQ(refused.message(), "node-b");
  EXPECT_EQ((*engine)->ResumeServing().code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace tdb::server
