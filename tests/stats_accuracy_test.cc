// Stats accuracy (the numbers behind Figure 12 and the cleaning overhead u
// must be trustworthy): ChunkStore::Stats byte counters reconcile against
// the actual bytes the untrusted store received, across commit, checkpoint,
// and cleaning; cache hit/miss counters sum to the number of accesses in
// eviction-heavy workloads.

#include <gtest/gtest.h>

#include <numeric>

#include "src/chunk/chunk_store.h"
#include "src/common/rng.h"
#include "src/obs/metrics.h"
#include "src/obs/snapshot.h"
#include "src/paging/trusted_pager.h"
#include "src/platform/trusted_store.h"
#include "src/store/untrusted_store.h"
#include "src/xdb/pager.h"

namespace tdb {
namespace {

struct Rig {
  MemUntrustedStore store{{.segment_size = 32 * 1024, .num_segments = 256}};
  MemSecretStore secret{Bytes(32, 0xA5)};
  MemTamperResistantRegister reg;
  MemMonotonicCounter counter;
  std::unique_ptr<ChunkStore> chunks;
  PartitionId pid;

  explicit Rig(uint32_t delta_ut = 5) {
    ChunkStoreOptions options;
    options.validation.mode = ValidationMode::kCounter;
    options.validation.delta_ut = delta_ut;
    auto cs = ChunkStore::Create(
        &store, TrustedServices{&secret, &reg, &counter}, options);
    EXPECT_TRUE(cs.ok()) << cs.status();
    chunks = std::move(*cs);
    pid = *chunks->AllocatePartition();
    ChunkStore::Batch batch;
    batch.WritePartition(
        pid, CryptoParams{CipherAlg::kAes128, HashAlg::kSha256,
                          Bytes(16, 0x21)});
    EXPECT_TRUE(chunks->Commit(std::move(batch)).ok());
  }
};

class StatsAccuracyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::ResetAll();
    obs::EnableAll();
  }
  void TearDown() override {
    obs::DisableAll();
    obs::ResetAll();
  }
};

// Every byte the untrusted store's segments receive flows through the log
// (the superblock has its own write path and its own counter), so
// log_bytes_appended must equal the store's own byte count exactly — after
// plain commits, after a checkpoint, and after cleaning rewrites live data.
TEST_F(StatsAccuracyTest, LogBytesReconcileAgainstUntrustedStore) {
  Rig rig;
  Rng rng(3);
  std::vector<ChunkId> ids;
  uint64_t payload_bytes = 0;
  for (int round = 0; round < 3; ++round) {
    ChunkStore::Batch batch;
    for (int i = 0; i < 64; ++i) {
      ChunkId id = round == 0 ? *rig.chunks->AllocateChunk(rig.pid)
                              : ids[static_cast<size_t>(i) * 3 % ids.size()];
      if (round == 0) {
        ids.push_back(id);
      }
      Bytes payload = rng.NextBytes(300);
      payload_bytes += payload.size();
      batch.WriteChunk(id, std::move(payload));
    }
    ASSERT_TRUE(rig.chunks->Commit(std::move(batch)).ok());
  }

  ChunkStore::Stats stats = rig.chunks->GetStats();
  EXPECT_EQ(stats.log_bytes_appended, rig.store.bytes_written());
  // The registry counter tracks the same quantity.
  EXPECT_EQ(obs::MetricsRegistry::Instance().GetCounter(
                "chunk.log_bytes_appended"),
            stats.log_bytes_appended);
  // Committed plaintext: every data payload, no more than the log grew by
  // (the log adds headers, hashes, and cipher padding on top).
  EXPECT_GE(stats.bytes_committed, payload_bytes);
  EXPECT_LT(stats.bytes_committed, stats.log_bytes_appended);
  EXPECT_EQ(obs::MetricsRegistry::Instance().GetCounter(
                "chunk.bytes_committed"),
            stats.bytes_committed);
  // Nothing reclaimed yet: the log never shrinks without cleaning.
  EXPECT_LE(stats.live_log_bytes, stats.used_log_bytes);
  EXPECT_LE(stats.used_log_bytes, stats.log_bytes_appended);

  ASSERT_TRUE(rig.chunks->Checkpoint().ok());
  stats = rig.chunks->GetStats();
  EXPECT_EQ(stats.log_bytes_appended, rig.store.bytes_written());

  // Churn the same chunks so early segments go mostly dead, then clean.
  for (int round = 0; round < 6; ++round) {
    ChunkStore::Batch batch;
    for (size_t i = 0; i < ids.size(); ++i) {
      batch.WriteChunk(ids[i], rng.NextBytes(300));
    }
    ASSERT_TRUE(rig.chunks->Commit(std::move(batch)).ok());
  }
  ASSERT_TRUE(rig.chunks->Checkpoint().ok());
  auto cleaned = rig.chunks->Clean(/*max_segments=*/8);
  ASSERT_TRUE(cleaned.ok()) << cleaned.status();
  EXPECT_GT(*cleaned, 0u);

  stats = rig.chunks->GetStats();
  // The cleaner's rewrites are log appends too, so the identity still holds.
  EXPECT_EQ(stats.log_bytes_appended, rig.store.bytes_written());
  // Cleaning freed segments: the used log is now strictly smaller than
  // everything ever appended.
  EXPECT_LT(stats.used_log_bytes, stats.log_bytes_appended);
  EXPECT_LE(stats.live_log_bytes, stats.used_log_bytes);
  // The cleaning overhead numerator is exactly what the cleaner rewrote.
  EXPECT_GT(obs::MetricsRegistry::Instance().GetCounter(
                "cleaner.bytes_rewritten"),
            0u);
}

// The XDB page cache: every Read is exactly one hit or one miss, even when
// the working set is much larger than the cache and eviction runs
// constantly. The registry counters must agree with the pager's own.
TEST_F(StatsAccuracyTest, PagerHitsPlusMissesEqualsReads) {
  MemPageFile file(512);
  ASSERT_TRUE(file.Extend(64).ok());
  Pager pager(&file, /*cache_pages=*/4);

  uint64_t hits_before =
      obs::MetricsRegistry::Instance().GetCounter("xdb.page_cache_hits");
  uint64_t misses_before =
      obs::MetricsRegistry::Instance().GetCounter("xdb.page_cache_misses");

  // Eviction-heavy: stride across 64 pages with a 4-page cache, with enough
  // locality that both hits and misses occur.
  uint64_t reads = 0;
  for (int pass = 0; pass < 8; ++pass) {
    for (uint32_t page = 0; page < 64; ++page) {
      ASSERT_TRUE(pager.Read(page).ok());
      ++reads;
      if (page % 4 == 0) {
        ASSERT_TRUE(pager.Read(page).ok());  // immediate re-read: a hit
        ++reads;
      }
    }
  }

  uint64_t hits =
      obs::MetricsRegistry::Instance().GetCounter("xdb.page_cache_hits") -
      hits_before;
  uint64_t misses =
      obs::MetricsRegistry::Instance().GetCounter("xdb.page_cache_misses") -
      misses_before;
  EXPECT_EQ(hits + misses, reads);
  EXPECT_EQ(hits, pager.cache_hits());
  EXPECT_EQ(misses, pager.cache_misses());
  EXPECT_GT(hits, 0u);
  EXPECT_GT(misses, 0u);
}

// The trusted pager: every byte-addressed access within one page is exactly
// one touch, and each touch is a resident hit, a fault from the chunk
// store, or a zero-fill of a never-written page.
TEST_F(StatsAccuracyTest, TrustedPagerTouchesAreFullyAccounted) {
  Rig rig;
  auto pager = TrustedPager::Create(
      rig.chunks.get(),
      CryptoParams{CipherAlg::kAes128, HashAlg::kSha256, Bytes(16, 3)},
      TrustedPagerOptions{.page_size = 1024, .resident_pages = 4});
  ASSERT_TRUE(pager.ok()) << pager.status();

  auto counter = [](const char* name) {
    return obs::MetricsRegistry::Instance().GetCounter(name);
  };
  uint64_t before = counter("paging.page_hits") + counter("paging.faults") +
                    counter("paging.zero_fills");

  Rng rng(5);
  uint64_t touches = 0;
  for (int pass = 0; pass < 3; ++pass) {
    for (uint64_t page = 0; page < 16; ++page) {
      ASSERT_TRUE((*pager)->Write(page * 1024, rng.NextBytes(128)).ok());
      ++touches;
      ASSERT_TRUE((*pager)->Read(page * 1024, 128).ok());
      ++touches;
    }
  }

  uint64_t after = counter("paging.page_hits") + counter("paging.faults") +
                   counter("paging.zero_fills");
  EXPECT_EQ(after - before, touches);
  // The workload pages out and faults back in: all three classes occur.
  EXPECT_GT(counter("paging.faults"), 0u);
  EXPECT_GT(counter("paging.page_hits"), 0u);
  EXPECT_GT(counter("paging.zero_fills"), 0u);
  TrustedPager::Stats stats = (*pager)->stats();
  EXPECT_EQ(stats.faults, counter("paging.faults"));
}

}  // namespace
}  // namespace tdb
