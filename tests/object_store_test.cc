// Tests for the object store: typed pickling, transactions, two-phase
// locking, deadlock breaking via timeouts, no-steal commit buffering,
// caching, and persistence through the chunk store.

#include <gtest/gtest.h>

#include <thread>

#include "src/object/object_store.h"
#include "src/platform/trusted_store.h"
#include "src/store/untrusted_store.h"

namespace tdb {
namespace {

// A simple application object: a consumer account with a balance.
class Account final : public Pickled {
 public:
  static constexpr uint32_t kTypeTag = 100;

  Account() = default;
  Account(std::string owner, int64_t balance)
      : owner(std::move(owner)), balance(balance) {}

  std::string owner;
  int64_t balance = 0;

  uint32_t type_tag() const override { return kTypeTag; }
  void PickleFields(PickleWriter& w) const override {
    w.WriteString(owner);
    w.WriteI64(balance);
  }
  static Result<ObjectPtr> UnpickleFields(PickleReader& r) {
    auto account = std::make_shared<Account>();
    account->owner = r.ReadString();
    account->balance = r.ReadI64();
    return ObjectPtr(account);
  }
};

class ObjectStoreTest : public ::testing::Test {
 protected:
  ObjectStoreTest()
      : store_({.segment_size = 8192, .num_segments = 256}),
        secret_(Bytes(32, 0xA5)) {
    options_.validation.mode = ValidationMode::kCounter;
    auto cs = ChunkStore::Create(
        &store_, TrustedServices{&secret_, nullptr, &counter_}, options_);
    EXPECT_TRUE(cs.ok());
    chunks_ = std::move(*cs);
    EXPECT_TRUE(RegisterType<Account>(registry_).ok());
    auto pid = chunks_->AllocatePartition();
    ChunkStore::Batch batch;
    batch.WritePartition(
        *pid, CryptoParams{CipherAlg::kAes128, HashAlg::kSha256, Bytes(16, 1)});
    EXPECT_TRUE(chunks_->Commit(std::move(batch)).ok());
    partition_ = *pid;
    objects_ = std::make_unique<ObjectStore>(chunks_.get(), partition_,
                                             &registry_, object_options_);
  }

  MemUntrustedStore store_;
  MemSecretStore secret_;
  MemMonotonicCounter counter_;
  ChunkStoreOptions options_;
  ObjectStoreOptions object_options_{.lock_timeout =
                                         std::chrono::milliseconds(100)};
  TypeRegistry registry_;
  std::unique_ptr<ChunkStore> chunks_;
  PartitionId partition_ = 0;
  std::unique_ptr<ObjectStore> objects_;
};

const Account& AsAccount(const ObjectPtr& object) {
  return dynamic_cast<const Account&>(*object);
}

TEST_F(ObjectStoreTest, InsertGetRoundTrip) {
  auto txn = objects_->Begin();
  auto id = txn->Insert(std::make_shared<Account>("alice", 100));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(txn->Commit().ok());

  auto txn2 = objects_->Begin();
  auto account = txn2->Get(*id);
  ASSERT_TRUE(account.ok());
  EXPECT_EQ(AsAccount(*account).owner, "alice");
  EXPECT_EQ(AsAccount(*account).balance, 100);
}

TEST_F(ObjectStoreTest, UncommittedWritesInvisibleToOthers) {
  ObjectId id;
  {
    auto txn = objects_->Begin();
    id = *txn->Insert(std::make_shared<Account>("bob", 10));
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto writer = objects_->Begin();
  ASSERT_TRUE(writer->Put(id, std::make_shared<Account>("bob", 999)).ok());
  // The writer sees its own buffered value.
  EXPECT_EQ(AsAccount(*writer->Get(id)).balance, 999);
  writer->Abort();
  // After abort, the old value is intact.
  auto reader = objects_->Begin();
  EXPECT_EQ(AsAccount(*reader->Get(id)).balance, 10);
}

TEST_F(ObjectStoreTest, MultiObjectCommitIsAtomic) {
  auto txn = objects_->Begin();
  auto a = txn->Insert(std::make_shared<Account>("a", 1));
  auto b = txn->Insert(std::make_shared<Account>("b", 2));
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(txn->Commit().ok());

  // Transfer between the two in one transaction.
  auto transfer = objects_->Begin();
  auto from = transfer->GetForUpdate(*a);
  auto to = transfer->GetForUpdate(*b);
  ASSERT_TRUE(from.ok() && to.ok());
  ASSERT_TRUE(
      transfer
          ->Put(*a, std::make_shared<Account>("a", AsAccount(*from).balance - 1))
          .ok());
  ASSERT_TRUE(
      transfer
          ->Put(*b, std::make_shared<Account>("b", AsAccount(*to).balance + 1))
          .ok());
  ASSERT_TRUE(transfer->Commit().ok());

  auto check = objects_->Begin();
  EXPECT_EQ(AsAccount(*check->Get(*a)).balance, 0);
  EXPECT_EQ(AsAccount(*check->Get(*b)).balance, 3);
}

TEST_F(ObjectStoreTest, DeleteRemovesObject) {
  auto txn = objects_->Begin();
  ObjectId id = *txn->Insert(std::make_shared<Account>("gone", 0));
  ASSERT_TRUE(txn->Commit().ok());
  auto txn2 = objects_->Begin();
  ASSERT_TRUE(txn2->Delete(id).ok());
  ASSERT_TRUE(txn2->Commit().ok());
  auto txn3 = objects_->Begin();
  EXPECT_EQ(txn3->Get(id).status().code(), StatusCode::kNotFound);
}

TEST_F(ObjectStoreTest, InsertThenDeleteInSameTransactionIsNoop) {
  auto txn = objects_->Begin();
  ObjectId id = *txn->Insert(std::make_shared<Account>("fleeting", 0));
  ASSERT_TRUE(txn->Delete(id).ok());
  ASSERT_TRUE(txn->Commit().ok());
  auto txn2 = objects_->Begin();
  EXPECT_EQ(txn2->Get(id).status().code(), StatusCode::kNotFound);
}

TEST_F(ObjectStoreTest, ConflictingWritersTimeOut) {
  auto setup = objects_->Begin();
  ObjectId id = *setup->Insert(std::make_shared<Account>("contested", 0));
  ASSERT_TRUE(setup->Commit().ok());

  auto t1 = objects_->Begin();
  ASSERT_TRUE(t1->GetForUpdate(id).ok());
  auto t2 = objects_->Begin();
  // t2 cannot acquire the exclusive lock while t1 holds it.
  EXPECT_EQ(t2->GetForUpdate(id).status().code(), StatusCode::kTimeout);
  t1->Abort();
  // After t1 releases, t2 can proceed.
  EXPECT_TRUE(t2->GetForUpdate(id).ok());
}

TEST_F(ObjectStoreTest, SharedReadersDoNotBlockEachOther) {
  auto setup = objects_->Begin();
  ObjectId id = *setup->Insert(std::make_shared<Account>("shared", 5));
  ASSERT_TRUE(setup->Commit().ok());
  auto t1 = objects_->Begin();
  auto t2 = objects_->Begin();
  EXPECT_TRUE(t1->Get(id).ok());
  EXPECT_TRUE(t2->Get(id).ok());
}

TEST_F(ObjectStoreTest, DeadlockBrokenByTimeout) {
  auto setup = objects_->Begin();
  ObjectId a = *setup->Insert(std::make_shared<Account>("a", 0));
  ObjectId b = *setup->Insert(std::make_shared<Account>("b", 0));
  ASSERT_TRUE(setup->Commit().ok());

  auto t1 = objects_->Begin();
  auto t2 = objects_->Begin();
  ASSERT_TRUE(t1->GetForUpdate(a).ok());
  ASSERT_TRUE(t2->GetForUpdate(b).ok());

  // t1 wants b while t2 wants a: a deadlock; both waits time out rather
  // than hanging forever.
  Status s1, s2;
  std::thread th1([&] { s1 = t1->GetForUpdate(b).status(); });
  std::thread th2([&] { s2 = t2->GetForUpdate(a).status(); });
  th1.join();
  th2.join();
  EXPECT_TRUE(s1.code() == StatusCode::kTimeout ||
              s2.code() == StatusCode::kTimeout);
}

TEST_F(ObjectStoreTest, SurvivesRestart) {
  ObjectId id;
  {
    auto txn = objects_->Begin();
    id = *txn->Insert(std::make_shared<Account>("durable", 77));
    ASSERT_TRUE(txn->Commit().ok());
  }
  objects_.reset();
  chunks_.reset();
  auto reopened = ChunkStore::Open(
      &store_, TrustedServices{&secret_, nullptr, &counter_}, options_);
  ASSERT_TRUE(reopened.ok());
  ObjectStore objects2(reopened->get(), partition_, &registry_);
  auto txn = objects2.Begin();
  auto account = txn->Get(id);
  ASSERT_TRUE(account.ok());
  EXPECT_EQ(AsAccount(*account).owner, "durable");
  EXPECT_EQ(AsAccount(*account).balance, 77);
}

TEST_F(ObjectStoreTest, CountsMatchFigure10Shape) {
  objects_->ResetCounts();
  auto txn = objects_->Begin();
  ObjectId id = *txn->Insert(std::make_shared<Account>("x", 1));
  ASSERT_TRUE(txn->Commit().ok());
  auto txn2 = objects_->Begin();
  ASSERT_TRUE(txn2->Get(id).ok());
  ASSERT_TRUE(txn2->Put(id, std::make_shared<Account>("x", 2)).ok());
  ASSERT_TRUE(txn2->Commit().ok());
  ObjectStore::OpCounts counts = objects_->counts();
  EXPECT_EQ(counts.adds, 1u);
  EXPECT_GE(counts.reads, 1u);
  EXPECT_EQ(counts.updates, 1u);
  EXPECT_EQ(counts.commits, 2u);
}

TEST_F(ObjectStoreTest, FinishedTransactionRejectsFurtherOps) {
  auto txn = objects_->Begin();
  ObjectId id = *txn->Insert(std::make_shared<Account>("x", 1));
  ASSERT_TRUE(txn->Commit().ok());
  EXPECT_EQ(txn->Get(id).status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(txn->Commit().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ObjectStoreTest, CacheServesRepeatedReads) {
  auto txn = objects_->Begin();
  ObjectId id = *txn->Insert(std::make_shared<Account>("cached", 3));
  ASSERT_TRUE(txn->Commit().ok());
  EXPECT_GE(objects_->cache_size(), 1u);
  auto txn2 = objects_->Begin();
  ObjectPtr first = *txn2->Get(id);
  ObjectPtr second = *txn2->Get(id);
  // Identical pointers: the cache serves the same validated object.
  EXPECT_EQ(first.get(), second.get());
}

}  // namespace
}  // namespace tdb
