// Tests for trusted paging (§10): eviction and fault-in round trips, zero
// fill, cross-page access, write-back batching, and tamper detection on
// paged-out state.

#include <gtest/gtest.h>

#include "src/paging/trusted_pager.h"
#include "src/platform/trusted_store.h"
#include "src/store/untrusted_store.h"

namespace tdb {
namespace {

class TrustedPagerTest : public ::testing::Test {
 protected:
  TrustedPagerTest()
      : store_({.segment_size = 32 * 1024, .num_segments = 512}),
        secret_(Bytes(32, 0xA5)) {
    options_.validation.mode = ValidationMode::kCounter;
    auto cs = ChunkStore::Create(
        &store_, TrustedServices{&secret_, nullptr, &counter_}, options_);
    EXPECT_TRUE(cs.ok());
    chunks_ = std::move(*cs);
  }

  std::unique_ptr<TrustedPager> MakePager(size_t resident_pages,
                                          size_t page_size = 256) {
    auto pager = TrustedPager::Create(
        chunks_.get(),
        CryptoParams{CipherAlg::kAes128, HashAlg::kSha256, Bytes(16, 4)},
        TrustedPagerOptions{.page_size = page_size,
                            .resident_pages = resident_pages,
                            .writeback_batch = 2});
    EXPECT_TRUE(pager.ok());
    return std::move(*pager);
  }

  MemUntrustedStore store_;
  MemSecretStore secret_;
  MemMonotonicCounter counter_;
  ChunkStoreOptions options_;
  std::unique_ptr<ChunkStore> chunks_;
};

TEST_F(TrustedPagerTest, ReadOfUntouchedMemoryIsZero) {
  auto pager = MakePager(4);
  auto data = pager->Read(1000, 64);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, Bytes(64, 0));
}

TEST_F(TrustedPagerTest, WriteReadRoundTripWithinPage) {
  auto pager = MakePager(4);
  ASSERT_TRUE(pager->Write(100, BytesFromString("hello paging")).ok());
  EXPECT_EQ(*pager->Read(100, 12), BytesFromString("hello paging"));
  // Neighbouring bytes still zero.
  EXPECT_EQ(*pager->Read(112, 4), Bytes(4, 0));
}

TEST_F(TrustedPagerTest, CrossPageAccess) {
  auto pager = MakePager(4, /*page_size=*/128);
  Bytes data(300);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i);
  }
  ASSERT_TRUE(pager->Write(100, data).ok());  // spans 3+ pages
  EXPECT_EQ(*pager->Read(100, 300), data);
}

TEST_F(TrustedPagerTest, EvictionAndFaultInPreserveContents) {
  auto pager = MakePager(/*resident_pages=*/3, /*page_size=*/128);
  // Touch many more pages than fit in trusted memory.
  for (uint64_t page = 0; page < 20; ++page) {
    Bytes data(128, static_cast<uint8_t>(page + 1));
    ASSERT_TRUE(pager->Write(page * 128, data).ok());
  }
  EXPECT_LE(pager->resident_count(), 3u);
  EXPECT_GT(pager->stats().evictions, 0u);
  EXPECT_GT(pager->stats().writebacks, 0u);
  // Everything reads back (faulting pages in from the chunk store).
  for (uint64_t page = 0; page < 20; ++page) {
    auto data = pager->Read(page * 128, 128);
    ASSERT_TRUE(data.ok()) << "page " << page;
    EXPECT_EQ(*data, Bytes(128, static_cast<uint8_t>(page + 1)));
  }
  EXPECT_GT(pager->stats().faults, 0u);
}

TEST_F(TrustedPagerTest, CleanPagesEvictWithoutWriteback) {
  auto pager = MakePager(/*resident_pages=*/2, /*page_size=*/128);
  ASSERT_TRUE(pager->Write(0, Bytes(128, 1)).ok());
  ASSERT_TRUE(pager->FlushAll().ok());
  uint64_t writebacks_after_flush = pager->stats().writebacks;
  // Re-read the page repeatedly while touching others: the page is clean,
  // so its evictions must not add writebacks.
  for (uint64_t page = 1; page < 10; ++page) {
    ASSERT_TRUE(pager->Read(page * 128, 1).ok());
    ASSERT_TRUE(pager->Read(0, 1).ok());
  }
  EXPECT_EQ(pager->stats().writebacks, writebacks_after_flush);
}

TEST_F(TrustedPagerTest, TamperWithPagedOutPageDetected) {
  auto pager = MakePager(/*resident_pages=*/2, /*page_size=*/128);
  ASSERT_TRUE(pager->Write(0, Bytes(128, 0x55)).ok());
  ASSERT_TRUE(pager->FlushAll().ok());
  // Force page 0 out of trusted memory.
  for (uint64_t page = 1; page < 8; ++page) {
    ASSERT_TRUE(pager->Write(page * 128, Bytes(128, 1)).ok());
  }
  // Attack the paged-out page in the untrusted store.
  ChunkId page0(pager->partition(), 0, 0);
  auto loc = chunks_->DebugChunkLocation(page0);
  ASSERT_TRUE(loc.ok());
  store_.CorruptByte(loc->first.segment, loc->first.offset + loc->second / 2,
                     0x80);
  auto read = pager->Read(0, 128);
  EXPECT_EQ(read.status().code(), StatusCode::kTamperDetected);
}

TEST_F(TrustedPagerTest, PagedStateSurvivesRestart) {
  PartitionId partition;
  {
    auto pager = MakePager(2, 128);
    partition = pager->partition();
    ASSERT_TRUE(pager->Write(0, BytesFromString("persist me")).ok());
    ASSERT_TRUE(pager->FlushAll().ok());
  }
  chunks_.reset();
  auto reopened = ChunkStore::Open(
      &store_, TrustedServices{&secret_, nullptr, &counter_}, options_);
  ASSERT_TRUE(reopened.ok());
  auto data = (*reopened)->Read(ChunkId(partition, 0, 0));
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(StringFromBytes(*data).substr(0, 10), "persist me");
}

}  // namespace
}  // namespace tdb
