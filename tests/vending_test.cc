// Integration test for the vending workload (§9.5.1) on both backends:
// the operation profile should resemble Figure 10, both systems should
// produce consistent results, and the TDB side should survive a restart.

#include <gtest/gtest.h>

#include "src/platform/trusted_store.h"
#include "src/store/untrusted_store.h"
#include "src/workload/tdb_backend.h"
#include "src/workload/vending.h"
#include "src/workload/xdb_backend.h"

namespace tdb {
namespace {

VendingConfig SmallConfig() {
  VendingConfig config;
  config.num_goods = 10;
  config.num_consumers = 5;
  config.filler_per_collection = 10;
  config.initial_receipts = 60;
  config.payload_size = 120;
  return config;
}

struct TdbRig {
  TdbRig()
      : store({.segment_size = 64 * 1024, .num_segments = 1024}),
        secret(Bytes(32, 0xA5)) {
    options.validation.mode = ValidationMode::kCounter;
    options.validation.delta_ut = 5;  // the paper's configuration (§9.1)
    auto cs = ChunkStore::Create(
        &store, TrustedServices{&secret, nullptr, &counter}, options);
    EXPECT_TRUE(cs.ok());
    chunks = std::move(*cs);
    auto ws = TdbWorkloadStore::Create(chunks.get());
    EXPECT_TRUE(ws.ok()) << ws.status();
    workload_store = std::move(*ws);
  }

  MemUntrustedStore store;
  MemSecretStore secret;
  MemMonotonicCounter counter;
  ChunkStoreOptions options;
  std::unique_ptr<ChunkStore> chunks;
  std::unique_ptr<TdbWorkloadStore> workload_store;
};

struct XdbRig {
  XdbRig() : data(8192) {
    auto x = Xdb::Create(&data, &log);
    EXPECT_TRUE(x.ok());
    db = std::move(*x);
    auto ws = XdbWorkloadStore::Create(db.get(), &counter, 5);
    EXPECT_TRUE(ws.ok());
    workload_store = std::move(*ws);
  }

  MemPageFile data;
  MemAppendFile log;
  MemMonotonicCounter counter;
  std::unique_ptr<Xdb> db;
  std::unique_ptr<XdbWorkloadStore> workload_store;
};

TEST(VendingWorkloadTest, TdbBackendRunsBothExperiments) {
  TdbRig rig;
  VendingWorkload workload(rig.workload_store.get(), SmallConfig());
  ASSERT_TRUE(workload.Setup().ok());

  Status release = workload.RunReleaseExperiment(10);
  ASSERT_TRUE(release.ok()) << release;
  WorkloadCounts counts = rig.workload_store->counts();
  // Figure 10 shape for release: reads dominate, ~10 deletes, few adds,
  // 10 commits.
  EXPECT_EQ(counts.commits, 10u);
  EXPECT_EQ(counts.deletes, 10u);
  EXPECT_GT(counts.reads, 500u);
  EXPECT_LT(counts.reads, 1200u);
  EXPECT_GT(counts.updates, 100u);
  EXPECT_LT(counts.updates, 300u);
  EXPECT_LT(counts.adds, 10u);

  rig.workload_store->ResetCounts();
  Status bind = workload.RunBindExperiment(10);
  ASSERT_TRUE(bind.ok()) << bind;
  counts = rig.workload_store->counts();
  // Figure 10 shape for bind: heavy updates and adds, 20 commits.
  EXPECT_EQ(counts.commits, 20u);
  EXPECT_GT(counts.adds, 150u);
  EXPECT_GT(counts.updates, 500u);
  EXPECT_GT(counts.reads, 500u);
}

TEST(VendingWorkloadTest, XdbBackendRunsBothExperiments) {
  XdbRig rig;
  VendingWorkload workload(rig.workload_store.get(), SmallConfig());
  ASSERT_TRUE(workload.Setup().ok());
  Status release = workload.RunReleaseExperiment(10);
  ASSERT_TRUE(release.ok()) << release;
  WorkloadCounts counts = rig.workload_store->counts();
  EXPECT_EQ(counts.commits, 10u);
  EXPECT_EQ(counts.deletes, 10u);
  rig.workload_store->ResetCounts();
  Status bind = workload.RunBindExperiment(10);
  ASSERT_TRUE(bind.ok()) << bind;
  EXPECT_EQ(rig.workload_store->counts().commits, 20u);
}

TEST(VendingWorkloadTest, BothBackendsCountTheSameFacadeOps) {
  // Identical seeds must produce identical facade operation counts — the
  // fairness property behind the Figure 11 comparison.
  TdbRig tdb_rig;
  XdbRig xdb_rig;
  VendingWorkload tdb_workload(tdb_rig.workload_store.get(), SmallConfig());
  VendingWorkload xdb_workload(xdb_rig.workload_store.get(), SmallConfig());
  ASSERT_TRUE(tdb_workload.Setup().ok());
  ASSERT_TRUE(xdb_workload.Setup().ok());
  ASSERT_TRUE(tdb_workload.RunReleaseExperiment(10).ok());
  ASSERT_TRUE(xdb_workload.RunReleaseExperiment(10).ok());
  WorkloadCounts a = tdb_rig.workload_store->counts();
  WorkloadCounts b = xdb_rig.workload_store->counts();
  EXPECT_EQ(a.reads, b.reads);
  EXPECT_EQ(a.updates, b.updates);
  EXPECT_EQ(a.deletes, b.deletes);
  EXPECT_EQ(a.adds, b.adds);
  EXPECT_EQ(a.commits, b.commits);
}

TEST(VendingWorkloadTest, TdbStateSurvivesRestart) {
  MemUntrustedStore store({.segment_size = 64 * 1024, .num_segments = 1024});
  MemSecretStore secret(Bytes(32, 0xA5));
  MemMonotonicCounter counter;
  ChunkStoreOptions options;
  options.validation.mode = ValidationMode::kCounter;
  {
    auto cs = ChunkStore::Create(
        &store, TrustedServices{&secret, nullptr, &counter}, options);
    ASSERT_TRUE(cs.ok());
    auto ws = TdbWorkloadStore::Create(cs->get());
    ASSERT_TRUE(ws.ok());
    VendingWorkload workload(ws->get(), SmallConfig());
    ASSERT_TRUE(workload.Setup().ok());
    ASSERT_TRUE(workload.RunReleaseExperiment(5).ok());
  }
  // Recovery after the run must succeed and the database must validate.
  auto reopened = ChunkStore::Open(
      &store, TrustedServices{&secret, nullptr, &counter}, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
}

}  // namespace
}  // namespace tdb
