// Fuzz-style robustness tests for every parser that consumes bytes from the
// untrusted store or an archival stream. Two generators, both driven by a
// deterministic seeded Rng so failures reproduce:
//
//   1. pure-random byte strings of every length 0..N, and
//   2. single-bit flips of valid pickles (the adversarially interesting
//      neighborhood: almost-valid input).
//
// Every parser must return either a valid object or a clean non-OK Status —
// no crash, no unbounded allocation, no hang. Length-bomb regressions (huge
// varint element counts that used to reach vector::reserve) are pinned
// explicitly.

#include <gtest/gtest.h>

#include <string>

#include "src/backup/backup_store.h"
#include "src/chunk/descriptor.h"
#include "src/chunk/log_format.h"
#include "src/chunk/log_manager.h"
#include "src/common/pickle.h"
#include "src/common/rng.h"
#include "src/crypto/suite.h"

namespace tdb {
namespace {

// A parser under test: consumes bytes, returns a Status. The object result
// is discarded — the contract under fuzzing is only "no crash, clean error".
using Parser = Status (*)(ByteView);

Status ParseDescriptor(ByteView data) {
  PickleReader r(data);
  return Descriptor::Unpickle(r).status();
}
Status ParseMapChunk(ByteView data) {
  return MapChunk::Unpickle(data).status();
}
Status ParsePartitionLeader(ByteView data) {
  return PartitionLeader::UnpickleFromBytes(data).status();
}
Status ParseSystemLeader(ByteView data) {
  return SystemLeaderRecord::Unpickle(data).status();
}
Status ParseSegmentInfo(ByteView data) {
  PickleReader r(data);
  return SegmentInfo::Unpickle(r).status();
}
Status ParseDeallocate(ByteView data) {
  return DeallocateRecord::Unpickle(data).status();
}
Status ParseCommit(ByteView data) {
  return CommitRecord::Unpickle(data).status();
}
Status ParseNextSegment(ByteView data) {
  return NextSegmentRecord::Unpickle(data).status();
}
Status ParseCleaner(ByteView data) {
  return CleanerRecord::Unpickle(data).status();
}
Status ParseBackupDescriptor(ByteView data) {
  return BackupDescriptor::Unpickle(data).status();
}

struct NamedParser {
  const char* name;
  Parser parse;
};

const NamedParser kParsers[] = {
    {"Descriptor", ParseDescriptor},
    {"MapChunk", ParseMapChunk},
    {"PartitionLeader", ParsePartitionLeader},
    {"SystemLeaderRecord", ParseSystemLeader},
    {"SegmentInfo", ParseSegmentInfo},
    {"DeallocateRecord", ParseDeallocate},
    {"CommitRecord", ParseCommit},
    {"NextSegmentRecord", ParseNextSegment},
    {"CleanerRecord", ParseCleaner},
    {"BackupDescriptor", ParseBackupDescriptor},
};

// ---- Valid exemplars for the bit-flip neighborhood ----

CryptoParams ValidParams() {
  return CryptoParams{CipherAlg::kAes128, HashAlg::kSha256, Bytes(16, 0x5C)};
}

Descriptor ValidDescriptor() {
  Descriptor d;
  d.status = ChunkStatus::kWritten;
  d.location = Location{3, 4096};
  d.stored_size = 321;
  d.hash = Bytes(32, 0xAB);
  return d;
}

Bytes ValidDescriptorBytes() {
  PickleWriter w;
  ValidDescriptor().Pickle(w);
  return w.Take();
}

Bytes ValidMapChunkBytes() {
  MapChunk map;
  for (uint64_t i = 0; i < kMapFanout; i += 3) {
    map.slots[i] = ValidDescriptor();
  }
  return map.Pickle();
}

PartitionLeader ValidLeader() {
  PartitionLeader leader;
  leader.params = ValidParams();
  leader.tree_height = 2;
  leader.root = ValidDescriptor();
  leader.num_positions = 100;
  leader.free_ranks = {7, 8, 90};
  leader.copies = {4, 5};
  leader.copied_from = 2;
  return leader;
}

Bytes ValidSystemLeaderBytes() {
  SystemLeaderRecord rec;
  rec.system_tree = ValidLeader();
  rec.segments.resize(8);
  rec.segments[0].state = SegmentInfo::State::kLive;
  rec.segments[0].bytes_used = 1000;
  rec.segments[0].live_bytes = 600;
  rec.commit_count = 42;
  return rec.Pickle();
}

Bytes ValidDeallocateBytes() {
  DeallocateRecord rec;
  rec.chunks = {ChunkId(1, 0, 5), ChunkId(2, 1, 0)};
  rec.partitions = {9};
  return rec.Pickle();
}

Bytes ValidCommitBytes() {
  CommitRecord rec;
  rec.count = 17;
  rec.set_digest = Bytes(32, 0x11);
  rec.mac = Bytes(32, 0x22);
  return rec.Pickle();
}

Bytes ValidCleanerBytes() {
  CleanerRecord rec;
  CleanerEntry e;
  e.original_id = ChunkId(3, 0, 12);
  e.current_in = {3, 7};
  e.new_location = Location{5, 128};
  e.stored_size = 77;
  rec.entries.push_back(e);
  return rec.Pickle();
}

Bytes ValidBackupDescriptorBytes() {
  BackupDescriptor d;
  d.source = 3;
  d.snapshot = 9;
  d.base_snapshot = 4;
  d.backup_set_id = 0xDEADBEEF;
  d.set_size = 2;
  d.params = ValidParams();
  d.created_unix = 1700000000;
  return d.Pickle();
}

Bytes ValidExemplar(const std::string& name) {
  if (name == "Descriptor") return ValidDescriptorBytes();
  if (name == "MapChunk") return ValidMapChunkBytes();
  if (name == "PartitionLeader") return ValidLeader().PickleToBytes();
  if (name == "SystemLeaderRecord") return ValidSystemLeaderBytes();
  if (name == "SegmentInfo") {
    PickleWriter w;
    SegmentInfo info;
    info.state = SegmentInfo::State::kLive;
    info.bytes_used = 512;
    info.live_bytes = 256;
    info.Pickle(w);
    return w.Take();
  }
  if (name == "DeallocateRecord") return ValidDeallocateBytes();
  if (name == "CommitRecord") return ValidCommitBytes();
  if (name == "NextSegmentRecord") return NextSegmentRecord{6}.Pickle();
  if (name == "CleanerRecord") return ValidCleanerBytes();
  if (name == "BackupDescriptor") return ValidBackupDescriptorBytes();
  ADD_FAILURE() << "no exemplar for " << name;
  return {};
}

// Random byte strings of every length 0..256 through every parser. 16
// strings per length keeps the test fast while covering each parser's early
// length checks and each varint width.
TEST(ParserFuzzTest, RandomBytesNeverCrash) {
  Rng rng(0xF0021);
  for (size_t len = 0; len <= 256; ++len) {
    for (int trial = 0; trial < 16; ++trial) {
      Bytes data = rng.NextBytes(len);
      for (const NamedParser& p : kParsers) {
        Status s = p.parse(data);
        // OK on random bytes is astronomically unlikely for the structured
        // parsers, but not a bug by itself (e.g. a 1-byte kFree descriptor);
        // the contract is simply: return, and return something well-formed.
        if (!s.ok()) {
          EXPECT_FALSE(s.message().empty())
              << p.name << " returned a status with no message";
        }
      }
    }
  }
}

// Long random inputs exercise the length-prefixed paths (ReadBytes, element
// counts) where a mis-read length could trigger a huge allocation.
TEST(ParserFuzzTest, LongRandomBytesNeverCrash) {
  Rng rng(0xF0022);
  for (int trial = 0; trial < 64; ++trial) {
    Bytes data = rng.NextBytes(8192);
    for (const NamedParser& p : kParsers) {
      (void)p.parse(data);
    }
  }
}

// Every single-bit flip of each parser's valid exemplar must parse cleanly
// or fail cleanly. This walks the entire radius-1 Hamming neighborhood —
// every length field, every enum, every count gets each of its bits flipped.
TEST(ParserFuzzTest, SingleBitFlipsOfValidInputNeverCrash) {
  for (const NamedParser& p : kParsers) {
    Bytes valid = ValidExemplar(p.name);
    ASSERT_TRUE(p.parse(valid).ok())
        << p.name << " exemplar does not round-trip: " << p.parse(valid);
    for (size_t byte = 0; byte < valid.size(); ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        Bytes mutated = valid;
        mutated[byte] ^= static_cast<uint8_t>(1u << bit);
        Status s = p.parse(mutated);
        if (!s.ok()) {
          EXPECT_FALSE(s.message().empty())
              << p.name << " byte " << byte << " bit " << bit;
        }
      }
    }
  }
}

// Truncations of valid input (every prefix) must fail cleanly, not read past
// the end or succeed on partial data plus trailing garbage semantics.
TEST(ParserFuzzTest, TruncatedValidInputFailsCleanly) {
  for (const NamedParser& p : kParsers) {
    Bytes valid = ValidExemplar(p.name);
    for (size_t len = 0; len < valid.size(); ++len) {
      Bytes prefix(valid.begin(), valid.begin() + len);
      (void)p.parse(prefix);  // must not crash; result may be ok for parsers
                              // that allow trailing-truncated optional parts
    }
  }
}

// Regression: adversarial varint counts (2^60 elements) used to reach
// vector::reserve and abort with bad_alloc / length_error. They must come
// back as a clean Status.
TEST(ParserFuzzTest, LengthBombsFailCleanlyInsteadOfAllocating) {
  // PartitionLeader with num_positions and num_free both 2^60.
  {
    PickleWriter w;
    ValidParams().Pickle(w);
    w.WriteU8(1);  // tree_height
    ValidDescriptor().Pickle(w);
    w.WriteVarint(uint64_t{1} << 60);  // num_positions
    w.WriteVarint(uint64_t{1} << 60);  // num_free
    Status s = ParsePartitionLeader(w.data());
    EXPECT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::kCorruption) << s;
  }
  // SystemLeaderRecord with a 2^60-entry segment table.
  {
    PickleWriter w;
    ValidLeader().Pickle(w);
    w.WriteVarint(uint64_t{1} << 60);  // num_segments
    Status s = ParseSystemLeader(w.data());
    EXPECT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::kCorruption) << s;
  }
  // PartitionLeader with a 2^60-entry copy list.
  {
    PartitionLeader leader = ValidLeader();
    leader.copies.clear();
    PickleWriter w;
    leader.params.Pickle(w);
    w.WriteU8(leader.tree_height);
    leader.root.Pickle(w);
    w.WriteVarint(leader.num_positions);
    w.WriteVarint(0);                  // num_free
    w.WriteVarint(uint64_t{1} << 60);  // num_copies
    Status s = ParsePartitionLeader(w.data());
    EXPECT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::kCorruption) << s;
  }
}

// DecodeHeader against a real system suite: random ciphertext blocks of the
// exact header size, random sizes around it, and single-bit flips of a valid
// encoded header. DecodeHeader is the recovery scanner's probe for the log
// tail, so it sees raw untrusted bytes constantly.
TEST(ParserFuzzTest, DecodeHeaderNeverCrashes) {
  auto suite = CryptoSuite::Create(ValidParams());
  ASSERT_TRUE(suite.ok()) << suite.status();
  const size_t ct_size = HeaderCipherSize(*suite);

  Rng rng(0xF0023);
  for (int trial = 0; trial < 256; ++trial) {
    (void)DecodeHeader(*suite, rng.NextBytes(ct_size));
  }
  for (size_t len = 0; len <= 2 * ct_size; ++len) {
    (void)DecodeHeader(*suite, rng.NextBytes(len));
  }

  Bytes valid = EncodeHeader(
      *suite, VersionHeader::Named(ChunkId(1, 0, 9), /*body_size=*/400));
  ASSERT_TRUE(DecodeHeader(*suite, valid).ok());
  for (size_t byte = 0; byte < valid.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes mutated = valid;
      mutated[byte] ^= static_cast<uint8_t>(1u << bit);
      Result<VersionHeader> h = DecodeHeader(*suite, mutated);
      if (!h.ok()) {
        EXPECT_FALSE(h.status().message().empty());
      }
    }
  }
}

}  // namespace
}  // namespace tdb
